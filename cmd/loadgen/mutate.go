package main

import (
	"bufio"
	"bytes"
	"encoding/json"
	"fmt"
	"math/rand"
	"net/http"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
	"time"
)

// The mutation workload drives a second, mutable DB (disjoint constants
// from the hot fixtures, whose reference answer sets must stay frozen):
// workers post add/retract batches while one subscriber per level holds
// a live query over the same DB and folds the SSE delta stream into its
// snapshot. At level end the harness checks the subscriber invariant —
// snapshot + accumulated deltas must equal a fresh exact query — which
// fails if the server ever loses, duplicates, or mis-orders a delta.

const (
	mutCQ    = "T(X,Y) -> Ans(X,Y)."
	mutNodes = 13
)

func mutFacts() string {
	var b strings.Builder
	for i := 0; i < mutNodes-1; i++ {
		fmt.Fprintf(&b, "E(u%d,u%d). ", i, i+1)
	}
	return b.String()
}

// opMutate posts one add-or-retract batch against the mutable DB.
func (h *harness) opMutate(rng *rand.Rand) {
	fact := fmt.Sprintf("E(u%d,u%d).", rng.Intn(mutNodes), rng.Intn(mutNodes))
	body := map[string]string{}
	if rng.Intn(100) < 60 {
		body["add"] = fact
	} else {
		body["retract"] = fact
	}
	start := time.Now()
	code, err := h.postChecked429("/v1/dbs/"+h.mutDBID+"/facts", body, nil)
	h.recordByStatus("facts_batch", time.Since(start), code, err, 200)
}

// subscriber is one live SSE stream plus the answer set it maintains
// from the snapshot and every delta event.
type subscriber struct {
	h    *harness
	resp *http.Response
	done chan struct{}

	mu      sync.Mutex
	acc     map[string]bool
	version atomic.Uint64 // last event version seen
	events  atomic.Int64
}

// startSubscriber registers a live query over the mutable DB; nil means
// registration failed (already recorded as a violation).
func (h *harness) startSubscriber() *subscriber {
	blob, _ := json.Marshal(map[string]string{"theory_id": h.thID, "cq": mutCQ})
	req, err := http.NewRequest(http.MethodPost, h.base+"/v1/dbs/"+h.mutDBID+"/subscribe", bytes.NewReader(blob))
	if err != nil {
		h.violate("subscribe: building request: %v", err)
		return nil
	}
	req.Header.Set("Content-Type", "application/json")
	resp, err := h.streamClient.Do(req)
	if err != nil {
		h.violate("subscribe: %v", err)
		return nil
	}
	if resp.StatusCode != 200 {
		resp.Body.Close()
		h.violate("subscribe: status %d", resp.StatusCode)
		return nil
	}
	s := &subscriber{h: h, resp: resp, done: make(chan struct{}), acc: map[string]bool{}}
	go s.loop()
	return s
}

// loop parses SSE frames until the server or finishSubscriber closes
// the stream.
func (s *subscriber) loop() {
	defer close(s.done)
	defer s.resp.Body.Close()
	sc := bufio.NewScanner(s.resp.Body)
	var event, data string
	for sc.Scan() {
		line := sc.Text()
		switch {
		case strings.HasPrefix(line, "event: "):
			event = strings.TrimPrefix(line, "event: ")
		case strings.HasPrefix(line, "data: "):
			data = strings.TrimPrefix(line, "data: ")
		case line == "" && event != "":
			s.handle(event, data)
			event, data = "", ""
		}
	}
}

func (s *subscriber) handle(event, data string) {
	s.events.Add(1)
	switch event {
	case "snapshot":
		var snap struct {
			Version uint64     `json:"version"`
			Answers [][]string `json:"answers"`
		}
		if err := json.Unmarshal([]byte(data), &snap); err != nil {
			s.h.violate("subscriber: bad snapshot payload: %v", err)
			return
		}
		s.mu.Lock()
		for _, row := range snap.Answers {
			s.acc[fmt.Sprint(row)] = true
		}
		s.mu.Unlock()
		s.version.Store(snap.Version)
	case "delta":
		var d struct {
			Version uint64     `json:"version"`
			Added   [][]string `json:"added"`
			Removed [][]string `json:"removed"`
		}
		if err := json.Unmarshal([]byte(data), &d); err != nil {
			s.h.violate("subscriber: bad delta payload: %v", err)
			return
		}
		if last := s.version.Load(); d.Version <= last {
			s.h.violate("subscriber: delta version %d after %d (out of order)", d.Version, last)
		}
		s.mu.Lock()
		for _, row := range d.Added {
			s.acc[fmt.Sprint(row)] = true
		}
		for _, row := range d.Removed {
			delete(s.acc, fmt.Sprint(row))
		}
		s.mu.Unlock()
		s.version.Store(d.Version)
	case "error":
		// The mutation workload never injects faults into its own batches,
		// so a dropped subscriber is a real serving failure.
		s.h.violate("subscriber dropped by server: %s", data)
	}
}

// finishSubscriber quiesces the stream and checks the invariant. The
// workers are already stopped; a sentinel batch (a fact outside the
// query's relations) bumps the version one final time, and commit-order
// delivery guarantees that seeing the sentinel's delta means every
// earlier delta arrived too.
func (h *harness) finishSubscriber(s *subscriber) {
	if s == nil {
		return
	}
	defer func() {
		s.resp.Body.Close()
		<-s.done
	}()

	var fr struct {
		Version uint64 `json:"version"`
	}
	sentinel := map[string]string{"add": fmt.Sprintf("SubSync(s%d).", h.novel.Add(1))}
	committed := false
	for attempt := 0; attempt < 20 && !committed; attempt++ {
		code, err := h.post("/v1/dbs/"+h.mutDBID+"/facts", sentinel, &fr)
		switch {
		case err == nil && code == 200:
			committed = true
		case code == 429:
			time.Sleep(50 * time.Millisecond) // tier still draining
		default:
			h.violate("subscriber sentinel batch: code %d err %v", code, err)
			return
		}
	}
	if !committed {
		h.violate("subscriber sentinel batch: shed on every attempt")
		return
	}
	deadline := time.Now().Add(5 * time.Second)
	for time.Now().Before(deadline) && s.version.Load() < fr.Version {
		time.Sleep(10 * time.Millisecond)
	}
	if got := s.version.Load(); got < fr.Version {
		h.violate("subscriber: stream stuck at version %d, sentinel committed %d", got, fr.Version)
		return
	}

	ref, err := h.mutReferenceAnswers()
	if err != nil {
		h.violate("subscriber reference query: %v", err)
		return
	}
	s.mu.Lock()
	got := make([]string, 0, len(s.acc))
	for k := range s.acc {
		got = append(got, k)
	}
	s.mu.Unlock()
	want := make([]string, 0, len(ref))
	for k := range ref {
		want = append(want, k)
	}
	sort.Strings(got)
	sort.Strings(want)
	if fmt.Sprint(got) != fmt.Sprint(want) {
		h.violate("subscriber invariant: snapshot+deltas (%d answers) != exact recompute (%d answers)", len(got), len(want))
	}
}

// mutReferenceAnswers recomputes the subscribed query exactly.
func (h *harness) mutReferenceAnswers() (map[string]bool, error) {
	var res struct {
		Answers [][]string `json:"answers"`
		Exact   bool       `json:"exact"`
	}
	// The plan is hot by construction (the subscription interned it), so
	// this is light-tier work that cannot be shed by a draining heavy gate.
	code, err := h.post("/v1/query", map[string]any{"theory_id": h.thID, "db_id": h.mutDBID, "cq": mutCQ}, &res)
	if err != nil || code != 200 || !res.Exact {
		return nil, fmt.Errorf("code %d exact %v err %v", code, res.Exact, err)
	}
	set := make(map[string]bool, len(res.Answers))
	for _, a := range res.Answers {
		set[fmt.Sprint(a)] = true
	}
	return set, nil
}
