package main

import (
	"testing"
	"time"
)

// A short chaotic run against an in-process server must finish with
// zero invariant violations: the process survives panics, disconnects,
// slow-loris and malformed payloads; truncated answers stay sound;
// counters stay monotone; goroutines return to baseline.
func TestHarnessChaosRunCleans(t *testing.T) {
	if testing.Short() {
		t.Skip("load harness run")
	}
	rep, err := runHarness(harnessConfig{
		Duration: 4 * time.Second,
		Levels:   []int{2, 8},
		Chaos:    true,
		Seed:     1,
	})
	if err != nil {
		t.Fatalf("harness: %v", err)
	}
	if len(rep.Violations) != 0 {
		t.Fatalf("invariant violations:\n%v", rep.Violations)
	}
	if len(rep.Runs) == 0 {
		t.Fatal("no workload stats recorded")
	}
	var total, panics, sheds int
	byName := map[string]bool{}
	for _, r := range rep.Runs {
		total += r.Count
		byName[r.Workload] = true
		if r.Workload == "chaos_panic_handler" || r.Workload == "chaos_panic_engine" {
			panics += r.Count
		}
		sheds += r.Shed
	}
	if total < 50 {
		t.Fatalf("suspiciously few operations: %d", total)
	}
	for _, want := range []string{"query_hot", "theories_miss", "chaos_malformed", "facts_batch"} {
		if !byName[want] {
			t.Fatalf("workload %s never ran (runs: %v)", want, byName)
		}
	}
	// Each level held a live subscription whose accumulated deltas were
	// checked against an exact recompute (a mismatch is a violation, so
	// reaching here means the invariant held); the server must have
	// delivered its events and dropped no subscriber.
	if rep.Final["subs_events"] == 0 {
		t.Fatalf("no subscription events delivered: %v", rep.Final)
	}
	if rep.Final["subs_dropped"] != 0 {
		t.Fatalf("subscribers dropped during a clean workload: %v", rep.Final)
	}
	if rep.Final["fact_batches"] == 0 {
		t.Fatal("no mutation batches committed")
	}
	if panics == 0 {
		t.Fatal("chaos run never injected a panic")
	}
	if rep.Final["panics_recovered"]+rep.Final["engine_panics"] == 0 {
		t.Fatalf("no contained panics in final metrics: %v", rep.Final)
	}
	t.Logf("ops=%d sheds=%d contained_panics=%d+%d", total, sheds,
		rep.Final["panics_recovered"], rep.Final["engine_panics"])
}
