package main

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"math/rand"
	"net"
	"net/http"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"guardedrules/internal/server"
)

// harnessConfig parameterizes one load run.
type harnessConfig struct {
	Addr     string        // target base URL; "" boots in-process
	Duration time.Duration // total, split across Levels
	Levels   []int         // client concurrency sweep
	Chaos    bool          // include fault-injection ops
	Seed     int64
}

// runStat is the latency summary of one workload at one concurrency.
type runStat struct {
	Workload string `json:"workload"`
	Workers  int    `json:"workers"`
	Count    int    `json:"count"`
	Errors   int    `json:"errors"` // unexpected statuses/transport failures
	Shed     int    `json:"shed"`   // 429s (expected under saturation)
	P50us    int64  `json:"p50_us"`
	P95us    int64  `json:"p95_us"`
	P99us    int64  `json:"p99_us"`
}

// report is the harness outcome; Violations empty means every invariant
// held for the whole run.
type report struct {
	Target     string           `json:"target"`
	DurationS  float64          `json:"duration_s"`
	Chaos      bool             `json:"chaos"`
	Runs       []runStat        `json:"runs"`
	Violations []string         `json:"violations"`
	Final      map[string]int64 `json:"final_metrics"`
}

func (r *report) JSON() []byte {
	blob, err := json.MarshalIndent(r, "", "  ")
	if err != nil {
		return []byte(fmt.Sprintf(`{"error": %q}`, err.Error()))
	}
	return blob
}

// gaugeKeys are the /metrics keys free to move in both directions;
// every other key must be monotone across snapshots.
var gaugeKeys = map[string]bool{
	"dbs": true, "kbs": true, "ready": true,
	"in_flight": true, "in_flight_heavy": true, "in_flight_light": true,
	"queued_heavy": true, "queued_light": true,
	"goroutines": true, "subscriptions": true,
}

const (
	hotSource = `
		A(X) -> exists Y. R(X,Y).
		R(X,Y) -> B(X).
		E(X,Y) -> T(X,Y).
		T(X,Y), T(Y,Z) -> T(X,Z).
		T(X,Y), B(X), B(Y) -> Linked(X,Y).
	`
	hotCQ    = "Linked(X,Y) -> Ans(X,Y)."
	fanoutCQ = "T(X,Y), T(Y,Z), B(X), B(Y) -> Ans(X,Z)."
	hotAtom  = "T(v0,Y)"
)

func hotFacts() string {
	var b strings.Builder
	for i := 0; i < 40; i++ {
		fmt.Fprintf(&b, "E(v%d,v%d). A(v%d). ", i, i+1, i)
	}
	return b.String()
}

// harness is the mutable state of one run.
type harness struct {
	cfg    harnessConfig
	base   string
	client *http.Client
	// streamClient has no request timeout: it holds SSE subscriptions
	// open for a whole level.
	streamClient *http.Client

	thID, dbID string
	mutDBID    string // the mutable DB the mutation workload batches against
	refHot     map[string]bool // full answer set of hotCQ
	refFanout  map[string]bool // full answer set of fanoutCQ
	novel      atomic.Int64    // novel-theory counter (compile-miss storm)

	mu         sync.Mutex
	latencies  map[string][]time.Duration // workload -> samples (current level)
	errs       map[string]int
	shed       map[string]int
	violations []string
}

func (h *harness) violate(format string, args ...any) {
	h.mu.Lock()
	defer h.mu.Unlock()
	if len(h.violations) < 100 { // don't let a broken server OOM the report
		h.violations = append(h.violations, fmt.Sprintf(format, args...))
	}
}

func (h *harness) record(workload string, d time.Duration, unexpected bool, shed bool) {
	h.mu.Lock()
	defer h.mu.Unlock()
	h.latencies[workload] = append(h.latencies[workload], d)
	if unexpected {
		h.errs[workload]++
	}
	if shed {
		h.shed[workload]++
	}
}

// runHarness executes the configured sweep and returns the report.
func runHarness(cfg harnessConfig) (*report, error) {
	h := &harness{cfg: cfg}
	h.client = &http.Client{
		Timeout: 30 * time.Second,
		Transport: &http.Transport{
			MaxIdleConns:        256,
			MaxIdleConnsPerHost: 256,
		},
	}
	h.streamClient = &http.Client{Transport: h.client.Transport}

	var shutdown func() error
	if cfg.Addr == "" {
		base, stop, err := bootInProcess()
		if err != nil {
			return nil, err
		}
		h.base = base
		shutdown = stop
	} else {
		h.base = strings.TrimRight(cfg.Addr, "/")
	}

	if err := h.setup(); err != nil {
		return nil, err
	}
	baselineGoroutines := h.metricsGauge("goroutines")

	rep := &report{Target: h.base, Chaos: cfg.Chaos, Violations: []string{}}
	start := time.Now()
	perLevel := cfg.Duration / time.Duration(len(cfg.Levels))
	prev := h.metricsSnapshot()
	for _, workers := range cfg.Levels {
		h.mu.Lock()
		h.latencies = map[string][]time.Duration{}
		h.errs = map[string]int{}
		h.shed = map[string]int{}
		h.mu.Unlock()

		// One live query rides the whole level; after the workers stop,
		// its accumulated deltas must equal an exact recompute.
		sub := h.startSubscriber()
		h.runLevel(workers, perLevel)
		h.finishSubscriber(sub)

		// Liveness after each level: a dead process fails every remaining
		// check anyway, but name the level it died in.
		if !h.healthy() {
			h.violate("healthz not 200 after level workers=%d", workers)
		}
		cur := h.metricsSnapshot()
		h.checkMonotonic(prev, cur, workers)
		prev = cur

		rep.Runs = append(rep.Runs, h.summarize(workers)...)
	}
	rep.DurationS = time.Since(start).Seconds()

	// Goroutine-leak check: after the load stops, the gauge must return
	// to the post-setup baseline (slack for server-internal churn).
	h.awaitGoroutineBaseline(baselineGoroutines)

	rep.Final = h.metricsSnapshot()
	if shutdown != nil {
		if err := shutdown(); err != nil {
			h.violate("in-process server drain failed: %v", err)
		}
	}
	h.mu.Lock()
	rep.Violations = append(rep.Violations, h.violations...)
	h.mu.Unlock()
	return rep, nil
}

// bootInProcess starts a chaos-enabled server on a loopback port,
// returning its base URL and a graceful-drain closure.
func bootInProcess() (base string, stop func() error, err error) {
	srv := server.New(server.Config{
		DefaultTimeout: 10 * time.Second,
		MaxFacts:       500_000,
		HeavyLimit:     1,
		HeavyQueue:     1,
		MaxQueueWait:   100 * time.Millisecond,
		Chaos:          true,
	})
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		return "", nil, err
	}
	hs := &http.Server{
		Handler:           srv.Handler(),
		ReadHeaderTimeout: 2 * time.Second,
		IdleTimeout:       time.Minute,
	}
	go hs.Serve(ln)
	return "http://" + ln.Addr().String(), func() error {
		srv.BeginDrain()
		ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
		defer cancel()
		return hs.Shutdown(ctx)
	}, nil
}

// setup registers the hot fixtures and captures the reference (full,
// exact) answer sets that soundness checks compare against.
func (h *harness) setup() error {
	var th struct {
		ID string `json:"id"`
	}
	if code, err := h.post("/v1/theories", map[string]string{"source": hotSource}, &th); err != nil || code != 200 {
		return fmt.Errorf("setup: register hot theory: code %d err %v", code, err)
	}
	h.thID = th.ID
	var db struct {
		ID string `json:"id"`
	}
	if code, err := h.post("/v1/dbs", map[string]string{"facts": hotFacts()}, &db); err != nil || code != 200 {
		return fmt.Errorf("setup: load facts: code %d err %v", code, err)
	}
	h.dbID = db.ID
	var mut struct {
		ID string `json:"id"`
	}
	if code, err := h.post("/v1/dbs", map[string]string{"facts": mutFacts()}, &mut); err != nil || code != 200 {
		return fmt.Errorf("setup: load mutable facts: code %d err %v", code, err)
	}
	h.mutDBID = mut.ID
	var err error
	if h.refHot, err = h.referenceAnswers(hotCQ); err != nil {
		return fmt.Errorf("setup: hot reference: %w", err)
	}
	if h.refFanout, err = h.referenceAnswers(fanoutCQ); err != nil {
		return fmt.Errorf("setup: fanout reference: %w", err)
	}
	return nil
}

func (h *harness) referenceAnswers(cq string) (map[string]bool, error) {
	var res struct {
		Answers [][]string `json:"answers"`
		Exact   bool       `json:"exact"`
	}
	code, err := h.post("/v1/query", map[string]any{"theory_id": h.thID, "db_id": h.dbID, "cq": cq}, &res)
	if err != nil || code != 200 || !res.Exact {
		return nil, fmt.Errorf("code %d exact %v err %v", code, res.Exact, err)
	}
	set := make(map[string]bool, len(res.Answers))
	for _, a := range res.Answers {
		set[fmt.Sprint(a)] = true
	}
	return set, nil
}

// runLevel drives the mixed workload at the given client concurrency
// until the deadline.
func (h *harness) runLevel(workers int, d time.Duration) {
	deadline := time.Now().Add(d)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(h.cfg.Seed + int64(w)*7919))
			for time.Now().Before(deadline) {
				h.step(rng)
			}
		}(w)
	}
	wg.Wait()
}

// step executes one randomly drawn operation.
func (h *harness) step(rng *rand.Rand) {
	n := rng.Intn(100)
	switch {
	case n < 30:
		h.opQuery(rng, "query_hot", hotCQ, h.refHot)
	case n < 44:
		h.opQuery(rng, "query_fanout", fanoutCQ, h.refFanout)
	case n < 54:
		h.opAtom(rng)
	case n < 64:
		h.opCompileMiss(rng)
	case n < 70:
		h.opRegisterHot(rng)
	case n < 75:
		h.opLoadDB(rng)
	case n < 84:
		h.opMutate(rng)
	default:
		if !h.cfg.Chaos {
			h.opQuery(rng, "query_hot", hotCQ, h.refHot)
			return
		}
		switch c := rng.Intn(100); {
		case c < 22:
			h.opFailAt(rng)
		case c < 36:
			h.opPanicEngine(rng)
		case c < 45:
			h.opPanicHandler(rng)
		case c < 58:
			h.opMalformed(rng)
		case c < 76:
			h.opDisconnect(rng)
		case c < 88:
			h.opHog(rng)
		default:
			h.opSlowLoris(rng)
		}
	}
}

// opQuery posts a CQ and validates the response against the reference.
func (h *harness) opQuery(rng *rand.Rand, workload, cq string, ref map[string]bool) {
	start := time.Now()
	var res struct {
		Answers   [][]string `json:"answers"`
		Exact     bool       `json:"exact"`
		Truncated bool       `json:"truncated"`
	}
	code, err := h.postChecked429("/v1/query", map[string]any{
		"theory_id": h.thID, "db_id": h.dbID, "cq": cq,
	}, &res)
	d := time.Since(start)
	switch {
	case err != nil:
		h.record(workload, d, true, false)
	case code == 429:
		h.record(workload, d, false, true)
	case code != 200:
		h.record(workload, d, true, false)
		h.violate("%s: unexpected status %d", workload, code)
	default:
		if res.Exact && len(res.Answers) != len(ref) {
			h.violate("%s: exact answer count %d != reference %d", workload, len(res.Answers), len(ref))
		}
		h.checkSubset(workload, res.Answers, ref)
		h.record(workload, d, false, false)
	}
}

func (h *harness) opAtom(rng *rand.Rand) {
	start := time.Now()
	code, err := h.postChecked429("/v1/query", map[string]any{
		"theory_id": h.thID, "db_id": h.dbID, "atom": hotAtom,
	}, nil)
	h.recordByStatus("query_atom", time.Since(start), code, err, 200)
}

// opCompileMiss registers a fresh never-seen theory: the compile-miss
// storm that must be absorbed by the heavy tier.
func (h *harness) opCompileMiss(rng *rand.Rand) {
	id := h.novel.Add(1)
	src := fmt.Sprintf(
		"A%d(X) -> exists Y. R%d(X,Y). R%d(X,Y) -> B%d(X). E%d(X,Y) -> T%d(X,Y). T%d(X,Y), T%d(Y,Z) -> T%d(X,Z).",
		id, id, id, id, id, id, id, id, id)
	start := time.Now()
	code, err := h.postChecked429("/v1/theories", map[string]string{"source": src}, nil)
	h.recordByStatus("theories_miss", time.Since(start), code, err, 200)
}

func (h *harness) opRegisterHot(rng *rand.Rand) {
	start := time.Now()
	code, err := h.postChecked429("/v1/theories", map[string]string{"source": hotSource}, nil)
	h.recordByStatus("theories_hit", time.Since(start), code, err, 200)
}

func (h *harness) opLoadDB(rng *rand.Rand) {
	start := time.Now()
	code, err := h.postChecked429("/v1/dbs", map[string]string{"facts": hotFacts()}, nil)
	h.recordByStatus("dbs", time.Since(start), code, err, 200)
}

// opFailAt injects budget exhaustion mid-evaluation: the response must
// be a sound truncated subset of the reference fixpoint.
func (h *harness) opFailAt(rng *rand.Rand) {
	start := time.Now()
	var res struct {
		Answers   [][]string `json:"answers"`
		Truncated bool       `json:"truncated"`
		Exact     bool       `json:"exact"`
	}
	code, err := h.postChecked429("/v1/query", map[string]any{
		"theory_id": h.thID, "db_id": h.dbID, "cq": fanoutCQ,
		"fail_at": 1 + rng.Intn(60),
	}, &res)
	d := time.Since(start)
	switch {
	case err != nil:
		h.record("chaos_failat", d, true, false)
	case code == 429:
		h.record("chaos_failat", d, false, true)
	case code != 200:
		h.record("chaos_failat", d, true, false)
		h.violate("chaos_failat: unexpected status %d", code)
	default:
		// Either the budget tripped (truncated partial) or the injection
		// point was past the run's checkpoints (exact). Both must be
		// subsets of the reference fixpoint.
		h.checkSubset("chaos_failat", res.Answers, h.refFanout)
		if !res.Truncated && !res.Exact {
			h.violate("chaos_failat: neither truncated nor exact")
		}
		h.record("chaos_failat", d, false, false)
	}
}

// opPanicEngine injects a panic at an engine checkpoint: the contained
// outcome is a 500 (or a 200 when the injection point was never
// reached); anything else — especially a dead process — is a violation.
func (h *harness) opPanicEngine(rng *rand.Rand) {
	start := time.Now()
	code, err := h.postChecked429("/v1/query", map[string]any{
		"theory_id": h.thID, "db_id": h.dbID, "cq": fanoutCQ,
		"panic_at": 1 + rng.Intn(40),
	}, nil)
	d := time.Since(start)
	switch {
	case err != nil:
		h.record("chaos_panic_engine", d, true, false)
		h.violate("chaos_panic_engine: transport error (server died?): %v", err)
	case code == 200 || code == 500:
		h.record("chaos_panic_engine", d, false, false)
	case code == 429:
		h.record("chaos_panic_engine", d, false, true)
	default:
		h.record("chaos_panic_engine", d, true, false)
		h.violate("chaos_panic_engine: unexpected status %d", code)
	}
}

func (h *harness) opPanicHandler(rng *rand.Rand) {
	start := time.Now()
	code, err := h.postChecked429("/v1/query", map[string]any{
		"theory_id": h.thID, "db_id": h.dbID, "cq": hotCQ,
		"panic_handler": true,
	}, nil)
	d := time.Since(start)
	switch {
	case err != nil:
		h.record("chaos_panic_handler", d, true, false)
		h.violate("chaos_panic_handler: transport error (server died?): %v", err)
	case code == 500:
		h.record("chaos_panic_handler", d, false, false)
	case code == 429:
		h.record("chaos_panic_handler", d, false, true)
	default:
		h.record("chaos_panic_handler", d, true, false)
		h.violate("chaos_panic_handler: status %d, want 500", code)
	}
}

// opMalformed posts garbage and expects a clean 400.
func (h *harness) opMalformed(rng *rand.Rand) {
	start := time.Now()
	resp, err := h.client.Post(h.base+"/v1/query", "application/json",
		strings.NewReader(`{"theory_id": "x", truncated garbage`))
	d := time.Since(start)
	if err != nil {
		h.record("chaos_malformed", d, true, false)
		return
	}
	resp.Body.Close()
	if resp.StatusCode != 400 {
		h.violate("chaos_malformed: status %d, want 400", resp.StatusCode)
		h.record("chaos_malformed", d, true, false)
		return
	}
	h.record("chaos_malformed", d, false, false)
}

// opDisconnect abandons a slow request mid-flight; the server must
// absorb the cancellation (checked globally via health + leak gauges).
func (h *harness) opDisconnect(rng *rand.Rand) {
	start := time.Now()
	body, _ := json.Marshal(map[string]any{
		"theory_id": h.thID, "db_id": h.dbID, "cq": fanoutCQ,
		"delay_ms": 200,
	})
	ctx, cancel := context.WithTimeout(context.Background(), 20*time.Millisecond)
	defer cancel()
	req, _ := http.NewRequestWithContext(ctx, http.MethodPost, h.base+"/v1/query", bytes.NewReader(body))
	req.Header.Set("Content-Type", "application/json")
	resp, err := h.client.Do(req)
	if err == nil {
		resp.Body.Close()
	}
	h.record("chaos_disconnect", time.Since(start), false, false)
}

// opHog parks on a heavy admission slot (an uncached query shape plus
// an injected delay), driving the tier toward saturation so the shed
// path — 429 + Retry-After — is exercised under real concurrency.
func (h *harness) opHog(rng *rand.Rand) {
	start := time.Now()
	code, err := h.postChecked429("/v1/query", map[string]any{
		"theory_id": h.thID, "db_id": h.dbID,
		// A fresh body constant makes every hog a distinct query shape
		// (CQKey hashes the body atoms, not the answer-relation name),
		// hence a plan miss routed through the heavy tier.
		"cq":       fmt.Sprintf("T(X,Y), T(Y,hog%d) -> AnsHog(X).", h.novel.Add(1)),
		"delay_ms": 100 + rng.Intn(200),
	}, nil)
	h.recordByStatus("chaos_hog", time.Since(start), code, err, 200)
}

// opSlowLoris opens a raw connection, dribbles half a request line, and
// abandons it; ReadHeaderTimeout must reap it without operator help.
func (h *harness) opSlowLoris(rng *rand.Rand) {
	start := time.Now()
	addr := strings.TrimPrefix(h.base, "http://")
	conn, err := net.DialTimeout("tcp", addr, 2*time.Second)
	if err != nil {
		h.record("chaos_sloworis", time.Since(start), true, false)
		h.violate("chaos_sloworis: dial failed (server died?): %v", err)
		return
	}
	conn.Write([]byte("POST /v1/query HTTP/1.1\r\nHost: loadgen\r\nContent-Le"))
	time.Sleep(10 * time.Millisecond)
	conn.Close()
	h.record("chaos_sloworis", time.Since(start), false, false)
}

// recordByStatus treats okCode as success, 429 as shed, all else error.
func (h *harness) recordByStatus(workload string, d time.Duration, code int, err error, okCode int) {
	switch {
	case err != nil:
		h.record(workload, d, true, false)
	case code == okCode:
		h.record(workload, d, false, false)
	case code == 429:
		h.record(workload, d, false, true)
	default:
		h.record(workload, d, true, false)
		h.violate("%s: unexpected status %d", workload, code)
	}
}

func (h *harness) checkSubset(workload string, answers [][]string, ref map[string]bool) {
	for _, a := range answers {
		if !ref[fmt.Sprint(a)] {
			h.violate("%s: answer %v not in the reference fixpoint (unsound partial)", workload, a)
			return
		}
	}
}

// post sends a JSON body and decodes a JSON response.
func (h *harness) post(path string, body any, out any) (int, error) {
	blob, err := json.Marshal(body)
	if err != nil {
		return 0, err
	}
	resp, err := h.client.Post(h.base+path, "application/json", bytes.NewReader(blob))
	if err != nil {
		return 0, err
	}
	defer resp.Body.Close()
	if out != nil && resp.StatusCode == 200 {
		if err := json.NewDecoder(resp.Body).Decode(out); err != nil {
			return resp.StatusCode, err
		}
	}
	return resp.StatusCode, nil
}

// postChecked429 is post plus the shed invariant: every 429 must carry
// Retry-After.
func (h *harness) postChecked429(path string, body any, out any) (int, error) {
	blob, err := json.Marshal(body)
	if err != nil {
		return 0, err
	}
	resp, err := h.client.Post(h.base+path, "application/json", bytes.NewReader(blob))
	if err != nil {
		return 0, err
	}
	defer resp.Body.Close()
	if resp.StatusCode == 429 && resp.Header.Get("Retry-After") == "" {
		h.violate("%s: 429 without Retry-After", path)
	}
	if out != nil && resp.StatusCode == 200 {
		if err := json.NewDecoder(resp.Body).Decode(out); err != nil {
			return resp.StatusCode, err
		}
	}
	return resp.StatusCode, nil
}

func (h *harness) healthy() bool {
	resp, err := h.client.Get(h.base + "/healthz")
	if err != nil {
		return false
	}
	resp.Body.Close()
	return resp.StatusCode == 200
}

func (h *harness) metricsSnapshot() map[string]int64 {
	resp, err := h.client.Get(h.base + "/metrics")
	if err != nil {
		h.violate("metrics unreachable: %v", err)
		return nil
	}
	defer resp.Body.Close()
	var m map[string]int64
	if err := json.NewDecoder(resp.Body).Decode(&m); err != nil {
		h.violate("metrics undecodable: %v", err)
		return nil
	}
	return m
}

func (h *harness) metricsGauge(key string) int64 {
	if m := h.metricsSnapshot(); m != nil {
		return m[key]
	}
	return -1
}

// checkMonotonic verifies every non-gauge key moved forward (or held)
// between snapshots.
func (h *harness) checkMonotonic(prev, cur map[string]int64, workers int) {
	if prev == nil || cur == nil {
		return
	}
	for k, before := range prev {
		if gaugeKeys[k] {
			continue
		}
		if after, ok := cur[k]; ok && after < before {
			h.violate("metrics counter %s went backwards (%d -> %d) at workers=%d", k, before, after, workers)
		}
	}
}

// awaitGoroutineBaseline polls the goroutines gauge until it returns to
// the post-setup baseline (plus slack for server-internal pools), or
// flags a leak.
func (h *harness) awaitGoroutineBaseline(baseline int64) {
	if baseline < 0 {
		return
	}
	const slack = 24
	deadline := time.Now().Add(10 * time.Second)
	var last int64
	for time.Now().Before(deadline) {
		last = h.metricsGauge("goroutines")
		if last >= 0 && last <= baseline+slack {
			return
		}
		time.Sleep(100 * time.Millisecond)
	}
	h.violate("goroutine leak: gauge stuck at %d, baseline %d (+%d slack)", last, baseline, slack)
}

// summarize turns the level's samples into per-workload percentiles.
func (h *harness) summarize(workers int) []runStat {
	h.mu.Lock()
	defer h.mu.Unlock()
	names := make([]string, 0, len(h.latencies))
	for name := range h.latencies {
		names = append(names, name)
	}
	sort.Strings(names)
	out := make([]runStat, 0, len(names))
	for _, name := range names {
		samples := h.latencies[name]
		sort.Slice(samples, func(i, j int) bool { return samples[i] < samples[j] })
		pct := func(p int) int64 {
			if len(samples) == 0 {
				return 0
			}
			return samples[p*(len(samples)-1)/100].Microseconds()
		}
		out = append(out, runStat{
			Workload: name,
			Workers:  workers,
			Count:    len(samples),
			Errors:   h.errs[name],
			Shed:     h.shed[name],
			P50us:    pct(50),
			P95us:    pct(95),
			P99us:    pct(99),
		})
	}
	return out
}
