// Command loadgen replays mixed workloads against a rulekit serve
// instance — compile-miss storms, hot plan-hit repeats, large CQ
// fan-out, fact mutation batches against a live-subscribed DB — with
// optional fault injection (budget fail_at, injected engine/handler
// panics, slow-loris connections, malformed payloads, mid-request
// disconnects), while verifying the serving invariants:
//
//   - the process never dies (healthz stays 200 throughout),
//   - no goroutine leak (the goroutines gauge returns to baseline),
//   - truncated answers are sound subsets of the full fixpoint,
//   - a subscriber's snapshot plus accumulated SSE deltas equals an
//     exact recompute after the level's mutation batches settle,
//   - /metrics counters are monotone (gauges whitelisted),
//   - every 429 carries Retry-After.
//
// It sweeps client concurrency levels and emits p50/p95/p99 latency per
// workload to a BENCH_serve.json-style report. With no -addr it boots
// an in-process server (chaos enabled) and tears it down afterwards.
//
// Usage:
//
//	loadgen [-addr http://host:port] [-duration 30s] [-levels 1,2,4,8]
//	        [-chaos] [-seed 1] [-out BENCH_serve.json]
//
// Exit status is non-zero when any invariant was violated.
package main

import (
	"flag"
	"fmt"
	"os"
	"strconv"
	"strings"
	"time"
)

func main() {
	addr := flag.String("addr", "", "target base URL (empty: boot an in-process server with chaos enabled)")
	duration := flag.Duration("duration", 30*time.Second, "total run time, split across concurrency levels")
	levels := flag.String("levels", "1,2,4,8", "comma-separated client concurrency sweep")
	chaos := flag.Bool("chaos", false, "inject faults (requires the target to run with -chaos; implied for in-process)")
	seed := flag.Int64("seed", 1, "workload RNG seed")
	out := flag.String("out", "", "write the JSON report here as well as stdout")
	flag.Parse()

	var lv []int
	for _, s := range strings.Split(*levels, ",") {
		n, err := strconv.Atoi(strings.TrimSpace(s))
		if err != nil || n < 1 {
			fmt.Fprintf(os.Stderr, "loadgen: bad -levels entry %q\n", s)
			os.Exit(2)
		}
		lv = append(lv, n)
	}

	cfg := harnessConfig{
		Addr:     *addr,
		Duration: *duration,
		Levels:   lv,
		Chaos:    *chaos || *addr == "",
		Seed:     *seed,
	}
	report, err := runHarness(cfg)
	if err != nil {
		fmt.Fprintf(os.Stderr, "loadgen: %v\n", err)
		os.Exit(1)
	}
	blob := report.JSON()
	fmt.Println(string(blob))
	if *out != "" {
		if err := os.WriteFile(*out, blob, 0o644); err != nil {
			fmt.Fprintf(os.Stderr, "loadgen: writing %s: %v\n", *out, err)
			os.Exit(1)
		}
	}
	if len(report.Violations) > 0 {
		fmt.Fprintf(os.Stderr, "loadgen: %d invariant violation(s)\n", len(report.Violations))
		os.Exit(1)
	}
}
