package main

import (
	"context"
	"flag"
	"fmt"
	"net"
	"net/http"
	"os"
	"os/signal"
	"syscall"
	"time"

	"guardedrules/internal/kbcache"
	"guardedrules/internal/server"
)

// cmdServe boots the compiled-KB HTTP server: register theories once,
// load fact databases, answer queries against the cached artifacts.
// SIGINT/SIGTERM shut it down gracefully.
func cmdServe(args []string) error {
	fs := flag.NewFlagSet("serve", flag.ExitOnError)
	addr := fs.String("addr", "127.0.0.1:0", "listen address (port 0 picks a free port)")
	timeout := fs.Duration("timeout", 30*time.Second, "per-request engine budget (0 = request context only)")
	maxFacts := fs.Int("max-facts", 1_000_000, "per-request derived-fact ceiling for uncertified theories (0 = none; certified theories run budget-free)")
	maxKBs := fs.Int("max-kbs", 32, "compiled-KB cache capacity")
	maxPlans := fs.Int("max-plans", 64, "query-plan cache capacity per KB")
	maxDBs := fs.Int("max-dbs", 32, "loaded-database cache capacity")
	compileTimeout := fs.Duration("compile-timeout", 30*time.Second, "per-compilation budget (translations included)")
	workers := fs.Int("workers", 0, "per-round engine parallelism (0 = all CPUs)")
	fs.Parse(args)
	if fs.NArg() != 0 {
		return fmt.Errorf("serve: unexpected arguments %v", fs.Args())
	}

	srv := server.New(server.Config{
		Store: kbcache.Config{
			MaxKBs:         *maxKBs,
			MaxPlansPerKB:  *maxPlans,
			CompileTimeout: *compileTimeout,
		},
		MaxDBs:         *maxDBs,
		DefaultTimeout: *timeout,
		MaxFacts:       *maxFacts,
		Workers:        *workers,
	})
	ln, err := net.Listen("tcp", *addr)
	if err != nil {
		return err
	}
	fmt.Printf("listening on http://%s\n", ln.Addr())

	hs := &http.Server{Handler: srv.Handler()}
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	errCh := make(chan error, 1)
	go func() { errCh <- hs.Serve(ln) }()
	select {
	case <-ctx.Done():
		fmt.Fprintln(os.Stderr, "serve: shutting down")
		shctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
		defer cancel()
		return hs.Shutdown(shctx)
	case err := <-errCh:
		if err == http.ErrServerClosed {
			return nil
		}
		return err
	}
}
