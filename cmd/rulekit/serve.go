package main

import (
	"context"
	"flag"
	"fmt"
	"io"
	"net"
	"net/http"
	"os"
	"os/signal"
	"syscall"
	"time"

	"guardedrules/internal/kbcache"
	"guardedrules/internal/server"
)

// serveOptions is the parsed flag set of one serve invocation, split
// out so tests can drive the full boot/drain lifecycle in-process.
type serveOptions struct {
	cfg               server.Config
	addr              string
	lameDuck          time.Duration
	drainTimeout      time.Duration
	readHeaderTimeout time.Duration
	readTimeout       time.Duration
	idleTimeout       time.Duration
}

// cmdServe boots the compiled-KB HTTP server: register theories once,
// load fact databases, answer queries against the cached artifacts.
// SIGINT/SIGTERM drain gracefully: /readyz flips to 503 immediately so
// load balancers stop routing, in-flight requests finish (up to
// -drain-timeout), then the process exits 0.
func cmdServe(args []string) error {
	fs := flag.NewFlagSet("serve", flag.ExitOnError)
	addr := fs.String("addr", "127.0.0.1:0", "listen address (port 0 picks a free port)")
	timeout := fs.Duration("timeout", 30*time.Second, "per-request engine budget (0 = request context only)")
	maxFacts := fs.Int("max-facts", 1_000_000, "per-request derived-fact ceiling for uncertified theories (0 = none; certified theories run budget-free)")
	maxKBs := fs.Int("max-kbs", 32, "compiled-KB cache capacity")
	maxPlans := fs.Int("max-plans", 64, "query-plan cache capacity per KB")
	maxDBs := fs.Int("max-dbs", 32, "loaded-database cache capacity")
	compileTimeout := fs.Duration("compile-timeout", 30*time.Second, "per-compilation budget (translations included)")
	workers := fs.Int("workers", 0, "per-round engine parallelism (0 = all CPUs)")
	heavyLimit := fs.Int("heavy-limit", 0, "concurrent compile/cold-plan/chase requests (0 = default 4)")
	heavyQueue := fs.Int("heavy-queue", 0, "heavy admission queue depth (0 = 2x limit)")
	lightLimit := fs.Int("light-limit", 0, "concurrent plan-hit requests (0 = default 64)")
	lightQueue := fs.Int("light-queue", 0, "light admission queue depth (0 = 2x limit)")
	queueWait := fs.Duration("queue-wait", time.Second, "max time a request waits for an admission slot before 429")
	maxBody := fs.Int64("max-body-bytes", 4<<20, "POST body size cap (413 beyond it)")
	maxSubs := fs.Int("max-subs", 64, "concurrent live-query subscriptions (429 beyond it)")
	chaos := fs.Bool("chaos", false, "enable fault-injection request fields (load harness only)")
	dataDir := fs.String("data-dir", "", "persistence root: fact DBs journal to segment stores and theories persist compiled artifacts; reopened at boot (empty = in-memory)")
	syncWrites := fs.Bool("sync", false, "fsync every durable commit (power-loss safety at a per-batch fsync cost)")
	lameDuck := fs.Duration("lame-duck", time.Second, "after SIGTERM, keep serving (readyz 503) this long so load balancers stop routing")
	drainTimeout := fs.Duration("drain-timeout", 15*time.Second, "grace period for in-flight requests on shutdown")
	readHeaderTimeout := fs.Duration("read-header-timeout", 5*time.Second, "http.Server ReadHeaderTimeout (slow-loris guard)")
	readTimeout := fs.Duration("read-timeout", 60*time.Second, "http.Server ReadTimeout (whole-request read ceiling)")
	idleTimeout := fs.Duration("idle-timeout", 120*time.Second, "http.Server IdleTimeout (keep-alive reaping)")
	fs.Parse(args)
	if fs.NArg() != 0 {
		return fmt.Errorf("serve: unexpected arguments %v", fs.Args())
	}

	opts := serveOptions{
		cfg: server.Config{
			Store: kbcache.Config{
				MaxKBs:         *maxKBs,
				MaxPlansPerKB:  *maxPlans,
				CompileTimeout: *compileTimeout,
			},
			MaxDBs:         *maxDBs,
			DefaultTimeout: *timeout,
			MaxFacts:       *maxFacts,
			Workers:        *workers,
			HeavyLimit:     *heavyLimit,
			HeavyQueue:     *heavyQueue,
			LightLimit:     *lightLimit,
			LightQueue:     *lightQueue,
			MaxQueueWait:   *queueWait,
			MaxBodyBytes:   *maxBody,
			MaxSubs:        *maxSubs,
			Chaos:          *chaos,
			DataDir:        *dataDir,
			SyncWrites:     *syncWrites,
		},
		addr:              *addr,
		lameDuck:          *lameDuck,
		drainTimeout:      *drainTimeout,
		readHeaderTimeout: *readHeaderTimeout,
		readTimeout:       *readTimeout,
		idleTimeout:       *idleTimeout,
	}
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	return runServe(ctx, opts, os.Stdout, os.Stderr)
}

// runServe is the testable core of cmdServe: it serves until ctx is
// canceled (the signal), then drains — readiness flips first, in-flight
// requests get drainTimeout to finish — and returns nil on a clean
// drain so the process exits 0.
func runServe(ctx context.Context, opts serveOptions, stdout, stderr io.Writer) error {
	srv := server.New(opts.cfg)
	if err := srv.RestoreData(); err != nil {
		return fmt.Errorf("serve: restore data dir: %w", err)
	}
	ln, err := net.Listen("tcp", opts.addr)
	if err != nil {
		return err
	}
	fmt.Fprintf(stdout, "listening on http://%s\n", ln.Addr())

	hs := &http.Server{
		Handler:           srv.Handler(),
		ReadHeaderTimeout: opts.readHeaderTimeout,
		ReadTimeout:       opts.readTimeout,
		IdleTimeout:       opts.idleTimeout,
	}
	errCh := make(chan error, 1)
	go func() { errCh <- hs.Serve(ln) }()
	select {
	case <-ctx.Done():
		fmt.Fprintln(stderr, "serve: draining (readiness down, finishing in-flight requests)")
		srv.BeginDrain()
		// Lame-duck window: readiness is already 503, but the listener
		// stays open so load balancers health-checking /readyz observe
		// the flip and stop routing before connections start refusing.
		if opts.lameDuck > 0 {
			select {
			case <-time.After(opts.lameDuck):
			case err := <-errCh:
				return err
			}
		}
		shctx, cancel := context.WithTimeout(context.Background(), opts.drainTimeout)
		defer cancel()
		if err := hs.Shutdown(shctx); err != nil {
			return fmt.Errorf("serve: drain incomplete: %w", err)
		}
		if err := srv.CloseData(); err != nil {
			return fmt.Errorf("serve: closing data dir: %w", err)
		}
		fmt.Fprintln(stderr, "serve: drained")
		return nil
	case err := <-errCh:
		if err == http.ErrServerClosed {
			return nil
		}
		return err
	}
}
