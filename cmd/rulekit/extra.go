package main

import (
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"strings"

	"guardedrules"
	"guardedrules/internal/chase"
	"guardedrules/internal/database"
	"guardedrules/internal/datalog"
	"guardedrules/internal/normalize"
	"guardedrules/internal/parser"
	"guardedrules/internal/termination"
)

// cmdTermination reports the full acyclicity-hierarchy analysis of a
// theory: weak acyclicity, joint acyclicity, the critical-instance
// check, and the machine-checkable certificate behind the verdict.
func cmdTermination(args []string) error {
	fs := flag.NewFlagSet("termination", flag.ExitOnError)
	verbose := fs.Bool("v", false, "print the position dependency graph and the full certificate")
	asJSON := fs.Bool("json", false, "print the report as JSON")
	fs.Parse(args)
	if fs.NArg() != 1 {
		return fmt.Errorf("termination: expected one theory file")
	}
	th, err := loadTheory(fs.Arg(0))
	if err != nil {
		return err
	}
	rep := termination.Analyze(th)
	if *asJSON {
		enc := json.NewEncoder(os.Stdout)
		enc.SetIndent("", "  ")
		return enc.Encode(rep)
	}
	fmt.Printf("termination class: %s\n", rep.Class)
	switch rep.Class {
	case termination.ClassWA:
		fmt.Printf("weakly acyclic: the restricted chase terminates on every database (max special-edge rank %d)\n", rep.Bound.MaxRank)
		fmt.Println("a certified per-database fact bound is available (rulekit chase prints it)")
	case termination.ClassJA:
		fmt.Printf("NOT weakly acyclic: value invention at %v feeds back into %v\n", rep.Witness.To, rep.Witness.From)
		fmt.Printf("jointly acyclic: no existential variable consumes its own nulls; order %s\n", evarList(rep.Certificate.Order))
	case termination.ClassSWA:
		fmt.Printf("NOT jointly acyclic: dependency cycle %s\n", evarList(rep.JACycle))
		fmt.Printf("critically terminating: the all-star critical-instance chase saturates in %d facts / %d rounds — the chase (both variants) terminates on every database\n",
			rep.Critical.Facts, rep.Critical.Rounds)
	default:
		fmt.Printf("no termination certificate: not weakly acyclic (witness: %v => %v, special)", rep.Witness.From, rep.Witness.To)
		if len(rep.JACycle) > 0 {
			fmt.Printf("; not jointly acyclic (cycle %s)", evarList(rep.JACycle))
		}
		fmt.Println()
		if rep.Critical != nil {
			switch {
			case len(rep.Critical.LineageCycle) > 0:
				fmt.Printf("critical-instance chase mints nulls along the cycle %s: the chase is INFINITE on the all-star instance\n",
					evarList(rep.Critical.LineageCycle))
			case rep.Critical.Exhausted:
				fmt.Println("critical-instance chase exhausted its budget without a verdict")
			}
		}
	}
	if rep.Certificate != nil {
		if err := rep.Certificate.Verify(th); err != nil {
			return fmt.Errorf("termination: certificate failed verification: %w", err)
		}
		fmt.Println("certificate: verified")
	}
	if *verbose {
		for _, e := range rep.Edges {
			kind := "regular"
			if e.Special {
				kind = "special"
			}
			fmt.Printf("  %v -> %v  (%s)\n", e.From, e.To, kind)
		}
		if rep.Certificate != nil {
			blob, err := json.MarshalIndent(rep.Certificate, "  ", "  ")
			if err != nil {
				return err
			}
			fmt.Printf("  certificate: %s\n", blob)
		}
	}
	return nil
}

// evarList renders an existential-variable sequence for messages.
func evarList(vs []termination.EVar) string {
	parts := make([]string, len(vs))
	for i, v := range vs {
		parts[i] = v.String()
	}
	return strings.Join(parts, " -> ")
}

// cmdContains decides CQ containment between two query files.
func cmdContains(args []string) error {
	fs := flag.NewFlagSet("contains", flag.ExitOnError)
	fs.Parse(args)
	if fs.NArg() != 2 {
		return fmt.Errorf("contains: expected two query files (q1 q2; decides q1 ⊑ q2)")
	}
	load := func(path string) (guardedrules.CQ, error) {
		src, err := os.ReadFile(path)
		if err != nil {
			return guardedrules.CQ{}, err
		}
		return guardedrules.ParseCQ(string(src))
	}
	q1, err := load(fs.Arg(0))
	if err != nil {
		return err
	}
	q2, err := load(fs.Arg(1))
	if err != nil {
		return err
	}
	ok, err := guardedrules.CQContained(q1, q2)
	if err != nil {
		return err
	}
	if ok {
		fmt.Println("q1 is contained in q2: every answer of q1 is an answer of q2 on every database")
	} else {
		fmt.Println("q1 is NOT contained in q2")
	}
	return nil
}

// cmdCore minimizes a fact file to its core. The endomorphism search is
// governed: -timeout and -max-steps bound it, and an exhausted run
// reports the (sound) current set with exact=false.
func cmdCore(args []string) error {
	fs := flag.NewFlagSet("core", flag.ExitOnError)
	maxSteps := fs.Int("max-steps", 0, "cap on candidate endomorphisms inspected (0 = none)")
	bf := addBudgetFlags(fs)
	fs.Parse(args)
	if fs.NArg() != 1 {
		return fmt.Errorf("core: expected one facts file")
	}
	d, err := loadFacts(fs.Arg(0))
	if err != nil {
		return err
	}
	atoms := d.UserFacts()
	opts := bf.options()
	opts.MaxSteps = *maxSteps
	coreAtoms, exact, err := guardedrules.CoreOfCtx(context.Background(), atoms, opts)
	if err != nil {
		if !guardedrules.IsBudgetError(err) {
			return err
		}
		fmt.Fprintf(os.Stderr, "core: warning: search truncated (%v); result is sound but may not be minimal\n", err)
	}
	for _, a := range coreAtoms {
		fmt.Println(parser.PrintAtom(a) + ".")
	}
	fmt.Fprintf(os.Stderr, "core: %d -> %d atoms (exact=%v)\n", len(atoms), len(coreAtoms), exact)
	return nil
}

// cmdTree prints the chase tree of a normal frontier-guarded theory.
func cmdTree(args []string) error {
	fs := flag.NewFlagSet("tree", flag.ExitOnError)
	data := fs.String("data", "", "facts file")
	depth := fs.Int("depth", 6, "null-depth bound")
	bf := addBudgetFlags(fs)
	fs.Parse(args)
	if fs.NArg() != 1 || *data == "" {
		return fmt.Errorf("tree: expected -data and one theory file")
	}
	th, err := loadTheory(fs.Arg(0))
	if err != nil {
		return err
	}
	d, err := loadFacts(*data)
	if err != nil {
		return err
	}
	norm := normalize.Normalize(th)
	tree, res, err := chase.RunTree(norm, toInternal(d), chase.Options{
		Variant: chase.Oblivious, MaxDepth: *depth, MaxFacts: 500_000,
		Budget: bf.budget(),
	})
	if err != nil {
		if !guardedrules.IsBudgetError(err) || tree == nil {
			return err
		}
		fmt.Fprintf(os.Stderr, "tree: warning: chase truncated (%v); printing the partial tree\n", err)
	}
	var print func(n *chase.Node, indent string)
	print = func(n *chase.Node, indent string) {
		label := "node"
		if n.Parent == nil {
			label = "root"
		}
		fmt.Printf("%s%s %d (%d atoms, %d terms)\n", indent, label, n.ID, len(n.Atoms), len(n.Terms()))
		for _, a := range n.Atoms {
			fmt.Printf("%s    %v\n", indent, a)
		}
		for _, c := range tree.Nodes {
			if c.Parent == n {
				print(c, indent+"  ")
			}
		}
	}
	print(tree.Root, "")
	fmt.Fprintf(os.Stderr, "tree: %d nodes, depth %d, width %d; chase saturated=%v\n",
		len(tree.Nodes), tree.Depth(), tree.Width(), res.Saturated)
	if err := tree.VerifyProposition2(norm, toInternal(d)); err != nil {
		fmt.Fprintf(os.Stderr, "tree: Proposition 2 check FAILED: %v\n", err)
	} else {
		fmt.Fprintln(os.Stderr, "tree: Proposition 2 (P1)-(P3) verified")
	}
	return nil
}

// toInternal is an identity helper documenting that the facade Database is
// the internal one.
func toInternal(d *guardedrules.Database) *database.Database { return d }

// cmdExplain prints the proof tree of a ground atom under the chase.
func cmdExplain(args []string) error {
	fs := flag.NewFlagSet("explain", flag.ExitOnError)
	data := fs.String("data", "", "facts file")
	atomSrc := fs.String("atom", "", "ground atom to explain, e.g. 'Q(a1)'")
	depth := fs.Int("depth", 8, "null-depth bound")
	bf := addBudgetFlags(fs)
	fs.Parse(args)
	if fs.NArg() != 1 || *data == "" || *atomSrc == "" {
		return fmt.Errorf("explain: expected -data, -atom and one theory file")
	}
	th, err := loadTheory(fs.Arg(0))
	if err != nil {
		return err
	}
	d, err := loadFacts(*data)
	if err != nil {
		return err
	}
	atoms, err := parser.ParseFacts(*atomSrc + ".")
	if err != nil || len(atoms) != 1 {
		return fmt.Errorf("explain: -atom must be a single ground atom: %v", err)
	}
	res, prov, err := chase.RunWithProvenance(th, toInternal(d), chase.Options{
		Variant: chase.Restricted, MaxDepth: *depth, MaxFacts: 2_000_000,
		Budget: bf.budget(),
	})
	if err != nil {
		if !guardedrules.IsBudgetError(err) || res == nil {
			return err
		}
		fmt.Fprintf(os.Stderr, "explain: warning: chase truncated (%v); proofs reflect the partial run\n", err)
	}
	if !res.Entails(atoms[0]) {
		fmt.Printf("%v is NOT entailed", atoms[0])
		if !res.Saturated {
			fmt.Print(" within the chase bounds (truncated run)")
		}
		fmt.Println()
		return nil
	}
	tree := prov.Explain(atoms[0], toInternal(d))
	if tree == nil {
		fmt.Printf("%v holds in the input database\n", atoms[0])
		return nil
	}
	fmt.Print(tree.String())
	fmt.Fprintf(os.Stderr, "explain: proof with %d nodes, depth %d\n", tree.Size(), tree.Depth())
	return nil
}

// cmdMagic answers a Datalog goal with the magic-sets rewriting.
func cmdMagic(args []string) error {
	fs := flag.NewFlagSet("magic", flag.ExitOnError)
	data := fs.String("data", "", "facts file")
	goal := fs.String("goal", "", "goal atom with constants bound, e.g. 'Anc(a0,Y)'")
	bf := addBudgetFlags(fs)
	fs.Parse(args)
	if fs.NArg() != 1 || *data == "" || *goal == "" {
		return fmt.Errorf("magic: expected -data, -goal and one theory file")
	}
	th, err := loadTheory(fs.Arg(0))
	if err != nil {
		return err
	}
	d, err := loadFacts(*data)
	if err != nil {
		return err
	}
	// Parse the goal as a rule body to allow variables.
	goalTheory, err := parser.ParseTheory(*goal + " -> GoalDummy__().")
	if err != nil {
		return fmt.Errorf("magic: bad goal: %v", err)
	}
	body := goalTheory.Rules[0].PositiveBody()
	if len(body) != 1 {
		return fmt.Errorf("magic: goal must be a single atom")
	}
	ans, _, err := datalog.AnswerWithMagicOpts(th, body[0], toInternal(d), datalog.Options{Budget: bf.budget()})
	if err != nil {
		if !guardedrules.IsBudgetError(err) {
			return err
		}
		fmt.Fprintf(os.Stderr, "magic: warning: evaluation truncated (%v); answers are a sound under-approximation\n", err)
	}
	for _, tuple := range ans {
		parts := make([]string, len(tuple))
		for i, t := range tuple {
			parts[i] = t.String()
		}
		fmt.Printf("%s(%s)\n", body[0].Relation, strings.Join(parts, ","))
	}
	fmt.Fprintf(os.Stderr, "magic: %d answers\n", len(ans))
	return nil
}
