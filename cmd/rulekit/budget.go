package main

import (
	"flag"
	"time"

	"guardedrules"
)

// budgetFlags holds the shared resource-governance flags every
// engine-running subcommand accepts. A zero value of both flags means
// ungoverned (nil budget), preserving the legacy behavior.
type budgetFlags struct {
	timeout  time.Duration
	maxFacts int
}

// addBudgetFlags registers -timeout and -max-facts on the subcommand's
// flag set.
func addBudgetFlags(fs *flag.FlagSet) *budgetFlags {
	bf := &budgetFlags{}
	fs.DurationVar(&bf.timeout, "timeout", 0, "wall-clock budget for engine runs, e.g. 30s (0 = none)")
	fs.IntVar(&bf.maxFacts, "max-facts", 0, "fact ceiling for engine runs (0 = none)")
	return bf
}

// budget builds the *Budget the flags describe, or nil when ungoverned.
func (bf *budgetFlags) budget() *guardedrules.Budget {
	if bf.timeout == 0 && bf.maxFacts == 0 {
		return nil
	}
	return &guardedrules.Budget{Timeout: bf.timeout, MaxFacts: bf.maxFacts}
}

// options lifts the flags into the unified facade Options (the v2 API).
func (bf *budgetFlags) options() guardedrules.Options {
	return guardedrules.Options{Timeout: bf.timeout, MaxFacts: bf.maxFacts}
}
