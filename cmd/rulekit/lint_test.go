package main

import (
	"encoding/json"
	"os"
	"path/filepath"
	"testing"

	"guardedrules/internal/lint"
)

// captureExit routes lintExit into a variable for the duration of fn.
func captureExit(t *testing.T, fn func()) int {
	t.Helper()
	code := -1
	orig := lintExit
	lintExit = func(c int) { code = c }
	defer func() { lintExit = orig }()
	fn()
	return code
}

const brokenFixture = "../../testdata/lint/broken.rules"

func TestCmdLintBrokenFixtureExitsNonZero(t *testing.T) {
	code := captureExit(t, func() {
		if err := cmdLint([]string{brokenFixture}); err != nil {
			t.Fatal(err)
		}
	})
	if code != 2 {
		t.Errorf("exit code = %d, want 2 (error findings)", code)
	}
}

func TestCmdLintJSONRoundTrips(t *testing.T) {
	findings, err := lintFiles([]string{brokenFixture}, lint.Info)
	if err != nil {
		t.Fatal(err)
	}
	// The broken fixture must surface all four defect classes.
	want := map[string]bool{"GR001": false, "SF001": false, "ST001": false, "TM001": false}
	for _, f := range findings {
		if _, ok := want[f.Code]; ok {
			want[f.Code] = true
		}
		if !f.Span.Known() {
			t.Errorf("%s finding has no source position: %v", f.Code, f)
		}
	}
	for code, seen := range want {
		if !seen {
			t.Errorf("broken fixture must trigger %s", code)
		}
	}
	// JSON round trip through encoding/json.
	data, err := json.Marshal(findings)
	if err != nil {
		t.Fatal(err)
	}
	var back []lint.Finding
	if err := json.Unmarshal(data, &back); err != nil {
		t.Fatal(err)
	}
	if len(back) != len(findings) {
		t.Errorf("round trip changed finding count: %d vs %d", len(back), len(findings))
	}
}

func TestCmdLintSeverityThresholdAndCleanExit(t *testing.T) {
	rules, _ := fixtures(t)
	code := captureExit(t, func() {
		if err := cmdLint([]string{"-min-severity", "warning", rules}); err != nil {
			t.Fatal(err)
		}
	})
	if code != 0 {
		t.Errorf("clean fixture exit code = %d, want 0", code)
	}
	findings, err := lintFiles([]string{brokenFixture}, lint.Error)
	if err != nil {
		t.Fatal(err)
	}
	for _, f := range findings {
		if f.Severity < lint.Error {
			t.Errorf("threshold leak: %v", f)
		}
	}
}

func TestCmdLintBadArgs(t *testing.T) {
	if err := cmdLint([]string{}); err == nil {
		t.Error("missing file must error")
	}
	if err := cmdLint([]string{"-format", "yaml", brokenFixture}); err == nil {
		t.Error("unknown format must error")
	}
	if err := cmdLint([]string{"-min-severity", "fatal", brokenFixture}); err == nil {
		t.Error("unknown severity must error")
	}
	if err := cmdLint([]string{filepath.Join(t.TempDir(), "missing.rules")}); err == nil {
		t.Error("nonexistent file must error")
	}
}

// A syntactically broken file is a lint error, not a crash; an unsafe
// rule alone parses leniently and lints.
func TestCmdLintLenientParsing(t *testing.T) {
	dir := t.TempDir()
	unsafe := filepath.Join(dir, "unsafe.rules")
	if err := os.WriteFile(unsafe, []byte("R(X) -> P(X,W).\n"), 0o644); err != nil {
		t.Fatal(err)
	}
	code := captureExit(t, func() {
		if err := cmdLint([]string{unsafe}); err != nil {
			t.Fatalf("unsafe rule must lint, not fail parsing: %v", err)
		}
	})
	if code != 2 {
		t.Errorf("exit code = %d, want 2", code)
	}
	bad := filepath.Join(dir, "bad.rules")
	if err := os.WriteFile(bad, []byte("R(X -> .\n"), 0o644); err != nil {
		t.Fatal(err)
	}
	if err := cmdLint([]string{bad}); err == nil {
		t.Error("syntax error must be reported")
	}
}

func TestCmdClassifyExplain(t *testing.T) {
	rules, _ := fixtures(t)
	if err := cmdClassify([]string{"-explain", rules}); err != nil {
		t.Fatal(err)
	}
}
