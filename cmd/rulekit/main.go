// Command rulekit is a command-line front end to the guardedrules
// library: parsing, classification, normalization, the paper's
// translations, the chase, and query answering.
//
// Usage:
//
//	rulekit classify theory.rules
//	rulekit normalize theory.rules
//	rulekit translate -to ng|wg|datalog theory.rules
//	rulekit chase -data db.facts [-depth N] [-variant restricted] theory.rules
//	rulekit query -data db.facts -rel Q [-depth N] theory.rules
//	rulekit capture -machine even-length -word one,zero
package main

import (
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"strings"

	"guardedrules"
	"guardedrules/internal/classify"
	"guardedrules/internal/datalog"
	"guardedrules/internal/lint"
	"guardedrules/internal/parser"
	"guardedrules/internal/termination"
	"guardedrules/internal/tm"
)

func main() {
	if len(os.Args) < 2 {
		usage()
		os.Exit(2)
	}
	var err error
	switch os.Args[1] {
	case "classify":
		err = cmdClassify(os.Args[2:])
	case "lint":
		err = cmdLint(os.Args[2:])
	case "normalize":
		err = cmdNormalize(os.Args[2:])
	case "translate":
		err = cmdTranslate(os.Args[2:])
	case "chase":
		err = cmdChase(os.Args[2:])
	case "query":
		err = cmdQuery(os.Args[2:])
	case "capture":
		err = cmdCapture(os.Args[2:])
	case "termination":
		err = cmdTermination(os.Args[2:])
	case "contains":
		err = cmdContains(os.Args[2:])
	case "core":
		err = cmdCore(os.Args[2:])
	case "tree":
		err = cmdTree(os.Args[2:])
	case "explain":
		err = cmdExplain(os.Args[2:])
	case "magic":
		err = cmdMagic(os.Args[2:])
	case "serve":
		err = cmdServe(os.Args[2:])
	case "help", "-h", "--help":
		usage()
	default:
		fmt.Fprintf(os.Stderr, "rulekit: unknown command %q\n", os.Args[1])
		usage()
		os.Exit(2)
	}
	if err != nil {
		fmt.Fprintln(os.Stderr, "rulekit:", err)
		os.Exit(1)
	}
}

func usage() {
	fmt.Fprint(os.Stderr, `rulekit — guarded existential rule toolkit (PODS 2014 reproduction)

commands:
  classify  [-explain] <theory>          report Figure 1 fragment membership
  lint      [-format text|json] [-min-severity info|warning|error] <theory>...
                                         static analysis with positioned diagnostics
                                         (exit 2 on errors, 1 on warnings)
  normalize <theory>                     print the Proposition 1 normal form
  translate -to ng|wg|datalog <theory>   run the paper's translations
  chase     -data <facts> [-depth N] [-variant oblivious|restricted] [-format text|json] <theory>
  query     -data <facts> -rel Q [-depth N] <theory>
  capture   -machine even-length|even-count|some|all -word s1,s2,...
  termination [-v] <theory>              weak-acyclicity chase-termination check
  contains  <q1> <q2>                    CQ containment q1 ⊑ q2
  core      <facts>                      minimize an instance to its core
  tree      -data <facts> [-depth N] <theory>   print the Section 4 chase tree
  explain   -data <facts> -atom 'Q(a)' <theory> print a derivation proof tree
  magic     -data <facts> -goal 'Anc(a,Y)' <theory>  goal-directed Datalog answers
  serve     [-addr host:port] [-timeout D] [-max-facts N]
                                         HTTP server over compiled KBs: register
                                         theories, load databases, answer queries

engine-running subcommands (translate, chase, query, capture, tree,
explain, magic) also accept -timeout <dur> and -max-facts <n>: the run is
governed by a resource budget, and on exhaustion the partial result is
reported with a typed truncation reason instead of running away.
`)
}

func loadTheory(path string) (*guardedrules.Theory, error) {
	src, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	return guardedrules.ParseTheory(string(src))
}

func loadFacts(path string) (*guardedrules.Database, error) {
	src, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	facts, err := guardedrules.ParseFacts(string(src))
	if err != nil {
		return nil, err
	}
	return guardedrules.NewDatabase(facts...), nil
}

func cmdClassify(args []string) error {
	fs := flag.NewFlagSet("classify", flag.ExitOnError)
	explain := fs.Bool("explain", false, "explain failed memberships with the lint fragment explainers")
	fs.Parse(args)
	if fs.NArg() != 1 {
		return fmt.Errorf("classify: expected one theory file")
	}
	th, err := loadTheory(fs.Arg(0))
	if err != nil {
		return err
	}
	rep := guardedrules.Classify(th)
	for f := classify.Datalog; f <= classify.WeaklyFrontierGuarded; f++ {
		status := "no "
		if rep.Member[f] {
			status = "yes"
		}
		fmt.Printf("%-26s %s", f, status)
		if !rep.Member[f] && rep.Offender[f] != nil {
			fmt.Printf("   (offender: %v)", rep.Offender[f])
		}
		fmt.Println()
	}
	if ap := rep.SortedAP(); len(ap) > 0 {
		fmt.Print("affected positions:")
		for _, p := range ap {
			fmt.Printf(" %v", p)
		}
		fmt.Println()
	}
	if *explain {
		// The same explainer passes back `rulekit lint`, so classify and
		// lint cannot drift apart on why membership fails — nor on the
		// termination verdict.
		fragments, _ := lint.Lookup("fragments")
		term, _ := lint.Lookup("termination")
		lctx := &lint.Context{Theory: th}
		diags := lint.RunWithContext(lctx, []lint.Pass{fragments, term})
		if len(diags) > 0 {
			fmt.Println()
			if err := lint.WriteText(os.Stdout, lint.Findings(fs.Arg(0), diags)); err != nil {
				return err
			}
		}
		trep := lctx.Termination()
		fmt.Printf("\ntermination class: %s", trep.Class)
		if trep.Class.Terminating() {
			fmt.Print(" (chase terminates; certificate machine-checkable, see rulekit termination)")
		} else {
			fmt.Print(" (no termination certificate)")
		}
		fmt.Println()
	}
	return nil
}

func cmdNormalize(args []string) error {
	fs := flag.NewFlagSet("normalize", flag.ExitOnError)
	fs.Parse(args)
	if fs.NArg() != 1 {
		return fmt.Errorf("normalize: expected one theory file")
	}
	th, err := loadTheory(fs.Arg(0))
	if err != nil {
		return err
	}
	fmt.Print(guardedrules.PrintTheory(guardedrules.Normalize(th)))
	return nil
}

func cmdTranslate(args []string) error {
	fs := flag.NewFlagSet("translate", flag.ExitOnError)
	to := fs.String("to", "", "target language: ng (Theorem 1), wg (Theorem 2), datalog (Theorem 3 / Proposition 6)")
	maxRules := fs.Int("max-rules", 0, "cap on intermediate rule counts")
	bf := addBudgetFlags(fs)
	fs.Parse(args)
	if fs.NArg() != 1 || *to == "" {
		return fmt.Errorf("translate: expected -to and one theory file")
	}
	th, err := loadTheory(fs.Arg(0))
	if err != nil {
		return err
	}
	opts := bf.options()
	opts.MaxRules = *maxRules
	var target guardedrules.Target
	switch *to {
	case "ng":
		target = guardedrules.ToNearlyGuarded
	case "wg":
		target = guardedrules.ToWeaklyGuarded
	case "datalog":
		target = guardedrules.ToDatalog
	default:
		return fmt.Errorf("translate: unknown target %q", *to)
	}
	out, err := guardedrules.TranslateCtx(context.Background(), th, target, opts)
	if err != nil {
		return err
	}
	fmt.Print(guardedrules.PrintTheory(out))
	return nil
}

// chaseReport is the -format json serialization of a chase run,
// including the truncation reason and resource usage of governed runs.
type chaseReport struct {
	Facts     []string `json:"facts"`
	Count     int      `json:"count"`
	Steps     int      `json:"steps"`
	Saturated bool     `json:"saturated"`
	Truncated bool     `json:"truncated"`
	Reason    string   `json:"reason,omitempty"`
	Usage     struct {
		Facts     int   `json:"facts"`
		Rules     int   `json:"rules"`
		Rounds    int   `json:"rounds"`
		Steps     int   `json:"steps"`
		ElapsedMS int64 `json:"elapsed_ms"`
	} `json:"usage"`
}

func cmdChase(args []string) error {
	fs := flag.NewFlagSet("chase", flag.ExitOnError)
	data := fs.String("data", "", "facts file")
	depth := fs.Int("depth", 0, "null-depth bound (0 = unbounded)")
	variant := fs.String("variant", "restricted", "oblivious or restricted")
	format := fs.String("format", "text", "output format: text or json")
	bf := addBudgetFlags(fs)
	fs.Parse(args)
	if fs.NArg() != 1 || *data == "" {
		return fmt.Errorf("chase: expected -data and one theory file")
	}
	th, err := loadTheory(fs.Arg(0))
	if err != nil {
		return err
	}
	d, err := loadFacts(*data)
	if err != nil {
		return err
	}
	opts := bf.options()
	opts.MaxDepth = *depth
	if *variant == "oblivious" {
		opts.Variant = guardedrules.Oblivious
	} else {
		opts.Variant = guardedrules.Restricted
	}
	// Certified-termination reporting: with a certificate covering the
	// requested variant (WA/JA certify the restricted chase only, the
	// critical-instance check certifies both), announce the verdict, and
	// for weakly acyclic theories price the derived per-database bound —
	// replacing the engine's blanket fact default with the certified
	// ceiling, or noting when the bound is tighter than -max-facts.
	trep := termination.Analyze(th)
	if trep.Class.Terminating() && (trep.Class == termination.ClassSWA || *variant != "oblivious") {
		fmt.Fprintf(os.Stderr, "chase: termination certificate (class %s): this chase terminates on every database\n", trep.Class)
		if trep.Bound != nil {
			n0 := toInternal(d).InternEpoch() + len(th.Constants())
			if bound, ok := trep.Bound.Facts(n0, d.Len()); ok {
				fmt.Fprintf(os.Stderr, "chase: certified fact bound for this database: %d\n", bound)
				switch {
				case bf.maxFacts == 0 && *depth == 0:
					// +1 headroom so a fixpoint landing exactly on the bound
					// is not mistaken for truncation.
					opts.MaxFacts = bound + 1
					fmt.Fprintln(os.Stderr, "chase: running budget-free under the certified bound (engine default ceiling dropped)")
				case bf.maxFacts > 0 && bound < bf.maxFacts:
					fmt.Fprintf(os.Stderr, "chase: certified bound %d is tighter than -max-facts %d\n", bound, bf.maxFacts)
				}
			}
		}
	}
	res, err := guardedrules.ChaseCtx(context.Background(), th, d, opts)
	if err != nil && !guardedrules.IsBudgetError(err) {
		return err
	}
	// A budget-exhausted run still carries the partial database; report
	// it with its truncation reason instead of failing.
	switch *format {
	case "json":
		rep := chaseReport{
			Steps:     res.Steps,
			Saturated: res.Saturated,
			Truncated: res.Truncated,
		}
		for _, a := range res.DB.UserFacts() {
			rep.Facts = append(rep.Facts, parser.PrintAtom(a))
		}
		rep.Count = len(rep.Facts)
		if res.Reason != nil {
			rep.Reason = res.Reason.Error()
		}
		rep.Usage.Facts = res.Usage.Facts
		rep.Usage.Rules = res.Usage.Rules
		rep.Usage.Rounds = res.Usage.Rounds
		rep.Usage.Steps = res.Usage.Steps
		rep.Usage.ElapsedMS = res.Usage.Elapsed.Milliseconds()
		enc := json.NewEncoder(os.Stdout)
		enc.SetIndent("", "  ")
		if err := enc.Encode(rep); err != nil {
			return err
		}
	case "text":
		for _, a := range res.DB.UserFacts() {
			fmt.Println(parser.PrintAtom(a) + ".")
		}
		fmt.Fprintf(os.Stderr, "chase: %d facts, %d steps, saturated=%v\n",
			res.DB.Len(), res.Steps, res.Saturated)
		if res.Truncated && res.Reason != nil {
			fmt.Fprintf(os.Stderr, "chase: truncated: %v\n", res.Reason)
		}
	default:
		return fmt.Errorf("chase: unknown format %q", *format)
	}
	return nil
}

func cmdQuery(args []string) error {
	fs := flag.NewFlagSet("query", flag.ExitOnError)
	data := fs.String("data", "", "facts file")
	rel := fs.String("rel", "", "output relation")
	depth := fs.Int("depth", 8, "null-depth bound for existential theories")
	bf := addBudgetFlags(fs)
	fs.Parse(args)
	if fs.NArg() != 1 || *data == "" || *rel == "" {
		return fmt.Errorf("query: expected -data, -rel and one theory file")
	}
	th, err := loadTheory(fs.Arg(0))
	if err != nil {
		return err
	}
	d, err := loadFacts(*data)
	if err != nil {
		return err
	}
	var ans [][]guardedrules.Term
	if guardedrules.Classify(th).Member[classify.Datalog] && !th.HasNegation() {
		fix, qerr := guardedrules.EvalDatalogCtx(context.Background(), th, d, bf.options())
		if qerr != nil {
			if fix == nil || !guardedrules.IsBudgetError(qerr) {
				return qerr
			}
			fmt.Fprintf(os.Stderr, "query: warning: evaluation truncated (%v); answers are a sound under-approximation\n", qerr)
		}
		ans = datalog.CollectAnswers(fix, *rel)
	} else {
		copts := bf.options()
		copts.Variant = guardedrules.Restricted
		copts.MaxDepth = *depth
		res, cerr := guardedrules.ChaseCtx(context.Background(), th, d, copts)
		if cerr != nil && !guardedrules.IsBudgetError(cerr) {
			return cerr
		}
		if !res.Saturated {
			fmt.Fprintln(os.Stderr, "query: warning: chase truncated; answers are a sound under-approximation")
		}
		ans = datalog.CollectAnswers(res.DB, *rel)
	}
	for _, tuple := range ans {
		parts := make([]string, len(tuple))
		for i, t := range tuple {
			parts[i] = t.String()
		}
		fmt.Printf("%s(%s)\n", *rel, strings.Join(parts, ","))
	}
	return nil
}

func cmdCapture(args []string) error {
	fs := flag.NewFlagSet("capture", flag.ExitOnError)
	machine := fs.String("machine", "even-length", "even-length, even-count, some or all")
	word := fs.String("word", "", "comma-separated word over {zero,one}")
	bf := addBudgetFlags(fs)
	fs.Parse(args)
	if *word == "" {
		return fmt.Errorf("capture: expected -word")
	}
	alpha := []string{"zero", "one"}
	var m *guardedrules.ATM
	switch *machine {
	case "even-length":
		m = tm.EvenLength(alpha)
	case "even-count":
		m = tm.EvenCount("one", alpha)
	case "some":
		m = tm.SomeSymbol("one", alpha)
	case "all":
		m = tm.AllSymbols("one", alpha)
	default:
		return fmt.Errorf("capture: unknown machine %q", *machine)
	}
	w := strings.Split(*word, ",")
	th, err := guardedrules.CompileATM(m, 1, alpha)
	if err != nil {
		return err
	}
	d, err := guardedrules.EncodeWord(w, 1, alpha)
	if err != nil {
		return err
	}
	copts := bf.options()
	copts.Variant = guardedrules.Restricted
	copts.MaxDepth = 3*len(w) + 6
	if copts.MaxFacts == 0 {
		copts.MaxFacts = 2_000_000
	}
	res, err := guardedrules.ChaseCtx(context.Background(), th, d, copts)
	if err != nil {
		return err
	}
	sim, err := m.Accepts(w, 0)
	if err != nil {
		return err
	}
	got := res.Entails(guardedrules.NewAtom(guardedrules.AcceptRel))
	fmt.Printf("machine %s on %v: compiled theory says %v, simulator says %v\n",
		m.Name, w, got, sim.Accepted)
	if got != sim.Accepted {
		return fmt.Errorf("capture: mismatch between Σ_M and the machine")
	}
	return nil
}
