package main

import (
	"bytes"
	"context"
	"encoding/json"
	"net"
	"net/http"
	"regexp"
	"strings"
	"sync"
	"testing"
	"time"
)

// bootServe starts runServe on a free port with a cancelable lifetime
// standing in for the SIGTERM path, returning the base URL and the
// runServe exit channel.
func bootServe(t *testing.T, extra func(*serveOptions)) (base string, cancel context.CancelFunc, exit chan error) {
	t.Helper()
	ctx, cancelCtx := context.WithCancel(context.Background())
	opts := serveOptions{
		addr:              "127.0.0.1:0",
		lameDuck:          500 * time.Millisecond,
		drainTimeout:      10 * time.Second,
		readHeaderTimeout: 5 * time.Second,
		readTimeout:       60 * time.Second,
		idleTimeout:       time.Minute,
	}
	opts.cfg.DefaultTimeout = 10 * time.Second
	if extra != nil {
		extra(&opts)
	}
	var stdout lockedBuffer
	exit = make(chan error, 1)
	go func() { exit <- runServe(ctx, opts, &stdout, &stdout) }()

	deadline := time.Now().Add(5 * time.Second)
	re := regexp.MustCompile(`listening on (http://[\d.:]+)`)
	for {
		if m := re.FindStringSubmatch(stdout.String()); m != nil {
			base = m[1]
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("server never announced its address: %q", stdout.String())
		}
		time.Sleep(5 * time.Millisecond)
	}
	t.Cleanup(cancelCtx)
	return base, cancelCtx, exit
}

type lockedBuffer struct {
	mu  sync.Mutex
	buf bytes.Buffer
}

func (b *lockedBuffer) Write(p []byte) (int, error) {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.buf.Write(p)
}

func (b *lockedBuffer) String() string {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.buf.String()
}

func postJSON(t *testing.T, url string, body any, out any) int {
	t.Helper()
	buf, err := json.Marshal(body)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.Post(url, "application/json", bytes.NewReader(buf))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if out != nil {
		if err := json.NewDecoder(resp.Body).Decode(out); err != nil {
			t.Fatal(err)
		}
	}
	return resp.StatusCode
}

// A signal-driven drain flips readiness before the listener closes,
// lets an in-flight slow query finish, and exits clean (the process's
// exit-0 path).
func TestServeGracefulDrain(t *testing.T) {
	base, cancel, exit := bootServe(t, func(o *serveOptions) { o.cfg.Chaos = true })

	var th struct {
		ID string `json:"id"`
	}
	if code := postJSON(t, base+"/v1/theories", map[string]string{
		"source": "E(X,Y) -> T(X,Y). T(X,Y), T(Y,Z) -> T(X,Z).",
	}, &th); code != 200 {
		t.Fatalf("register: status %d", code)
	}
	var db struct {
		ID string `json:"id"`
	}
	if code := postJSON(t, base+"/v1/dbs", map[string]string{
		"facts": "E(a,b). E(b,c).",
	}, &db); code != 200 {
		t.Fatalf("dbs: status %d", code)
	}

	// Launch a slow in-flight query, then "SIGTERM" mid-flight.
	slow := make(chan int, 1)
	go func() {
		slow <- postJSON(t, base+"/v1/query", map[string]any{
			"theory_id": th.ID, "db_id": db.ID,
			"cq": "T(X,Y) -> Ans(X,Y).", "delay_ms": 500,
		}, nil)
	}()
	// Wait until the slow query is inside the handler.
	deadline := time.Now().Add(5 * time.Second)
	for {
		var m map[string]int64
		postCode := func() int {
			resp, err := http.Get(base + "/metrics")
			if err != nil {
				t.Fatal(err)
			}
			defer resp.Body.Close()
			json.NewDecoder(resp.Body).Decode(&m)
			return resp.StatusCode
		}()
		if postCode == 200 && m["in_flight"] >= 2 { // slow query + this /metrics request
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("slow query never went in-flight")
		}
		time.Sleep(5 * time.Millisecond)
	}

	cancel() // stands in for SIGTERM via signal.NotifyContext

	// Readiness must flip promptly while the drain is still in progress.
	readyDown := false
	deadline = time.Now().Add(5 * time.Second)
	for time.Now().Before(deadline) {
		resp, err := http.Get(base + "/readyz")
		if err != nil {
			break // listener already closed: drain finished
		}
		code := resp.StatusCode
		resp.Body.Close()
		if code == http.StatusServiceUnavailable {
			readyDown = true
			break
		}
		time.Sleep(2 * time.Millisecond)
	}
	if !readyDown {
		t.Fatal("readyz never flipped to 503 during drain")
	}

	if code := <-slow; code != 200 {
		t.Fatalf("in-flight query across drain: status %d, want 200", code)
	}
	select {
	case err := <-exit:
		if err != nil {
			t.Fatalf("drain exit: %v, want nil (exit 0)", err)
		}
	case <-time.After(10 * time.Second):
		t.Fatal("runServe never returned after drain")
	}
}

// The serve flags configure real http.Server timeouts: a connection
// that sends no headers is reaped by ReadHeaderTimeout instead of
// holding a socket forever.
func TestServeSlowLorisReaped(t *testing.T) {
	base, _, _ := bootServe(t, func(o *serveOptions) {
		o.readHeaderTimeout = 100 * time.Millisecond
	})
	addr := strings.TrimPrefix(base, "http://")
	conn, err := net.DialTimeout("tcp", addr, 5*time.Second)
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()
	// Dribble a partial request line and stall.
	if _, err := conn.Write([]byte("POST /v1/query HTTP/1.1\r\nHost: x\r\n")); err != nil {
		t.Fatal(err)
	}
	conn.SetReadDeadline(time.Now().Add(5 * time.Second))
	buf := make([]byte, 256)
	n, _ := conn.Read(buf)
	// The server must close the connection (possibly after a 408); what
	// it must NOT do is leave us hanging until our own deadline with the
	// socket open. A zero-byte read with a closed conn is the reap.
	if n > 0 && !bytes.Contains(buf[:n], []byte("408")) {
		t.Fatalf("unexpected response to stalled request: %q", buf[:n])
	}
	// Server still healthy afterwards.
	resp, err := http.Get(base + "/healthz")
	if err != nil {
		t.Fatalf("healthz after slow-loris: %v", err)
	}
	resp.Body.Close()
	if resp.StatusCode != 200 {
		t.Fatalf("healthz after slow-loris: %d", resp.StatusCode)
	}
}
