package main

import (
	"bytes"
	"encoding/json"
	"io"
	"os"
	"strings"
	"testing"

	"guardedrules"
)

// captureStdout runs f with os.Stdout redirected and returns what it
// printed.
func captureStdout(t *testing.T, f func() error) string {
	t.Helper()
	r, w, err := os.Pipe()
	if err != nil {
		t.Fatal(err)
	}
	old := os.Stdout
	os.Stdout = w
	defer func() { os.Stdout = old }()
	done := make(chan string)
	go func() {
		var buf bytes.Buffer
		io.Copy(&buf, r)
		done <- buf.String()
	}()
	ferr := f()
	w.Close()
	out := <-done
	if ferr != nil {
		t.Fatalf("command failed: %v\noutput: %s", ferr, out)
	}
	return out
}

func infiniteFixtures(t *testing.T) (string, string) {
	t.Helper()
	dir := t.TempDir()
	rules := write(t, dir, "inf.rules", `
		N(X) -> exists Y. E(X,Y).
		E(X,Y) -> N(Y).
	`)
	facts := write(t, dir, "inf.facts", `N(a).`)
	return rules, facts
}

// A MaxFacts-truncated chase must serialize a well-formed partial result:
// the truncation reason appears in the JSON output, every fact round-trips
// through the parser, and the run is deterministic byte for byte.
func TestChaseTruncationGoldenJSON(t *testing.T) {
	rules, facts := infiniteFixtures(t)
	args := []string{"-data", facts, "-max-facts", "10", "-format", "json", rules}
	out := captureStdout(t, func() error { return cmdChase(args) })

	var rep chaseReport
	if err := json.Unmarshal([]byte(out), &rep); err != nil {
		t.Fatalf("output is not valid JSON: %v\n%s", err, out)
	}
	if !rep.Truncated {
		t.Fatal("truncated run must serialize truncated=true")
	}
	if !strings.Contains(rep.Reason, "fact limit") {
		t.Fatalf("reason %q must name the fact limit", rep.Reason)
	}
	if rep.Saturated {
		t.Fatal("a truncated run is not saturated")
	}
	if len(rep.Facts) == 0 || rep.Count != len(rep.Facts) {
		t.Fatalf("count %d must match the %d serialized facts", rep.Count, len(rep.Facts))
	}
	if rep.Usage.Facts == 0 {
		t.Fatal("usage snapshot must record the derived facts")
	}
	// Round-trip: every serialized fact must parse back.
	if _, err := guardedrules.ParseFacts(strings.Join(rep.Facts, ". ") + "."); err != nil {
		t.Fatalf("serialized facts do not round-trip: %v", err)
	}
	// Determinism: a second truncated run is byte-identical.
	if again := captureStdout(t, func() error { return cmdChase(args) }); again != out {
		t.Fatal("truncated chase output is not deterministic")
	}
}

// The facts a truncated chase reports are a subset of the saturated run's.
func TestChaseTruncatedOutputIsSubset(t *testing.T) {
	rules, facts := fixtures(t)
	full := captureStdout(t, func() error {
		return cmdChase([]string{"-data", facts, "-depth", "4", rules})
	})
	fullSet := map[string]bool{}
	for _, line := range strings.Split(full, "\n") {
		if line != "" {
			fullSet[line] = true
		}
	}
	part := captureStdout(t, func() error {
		return cmdChase([]string{"-data", facts, "-depth", "4", "-max-facts", "5", rules})
	})
	for _, line := range strings.Split(part, "\n") {
		if line != "" && !fullSet[line] {
			t.Fatalf("truncated run printed %q, absent from the full run", line)
		}
	}
}
