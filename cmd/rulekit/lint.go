package main

import (
	"flag"
	"fmt"
	"os"

	"guardedrules/internal/lint"
	"guardedrules/internal/parser"
)

// cmdLint runs the static analyzer over one or more theory files and
// prints positioned diagnostics. The exit code is severity based: 2 with
// any error, 1 with any warning, 0 otherwise (lintExit performs the
// exit so main's generic error path is not taken).
func cmdLint(args []string) error {
	fs := flag.NewFlagSet("lint", flag.ExitOnError)
	format := fs.String("format", "text", "output format: text or json")
	minSev := fs.String("min-severity", "info", "suppress findings below this severity: info, warning or error")
	fs.Parse(args)
	if fs.NArg() < 1 {
		return fmt.Errorf("lint: expected at least one theory file")
	}
	if *format != "text" && *format != "json" {
		return fmt.Errorf("lint: unknown format %q (want text or json)", *format)
	}
	threshold, err := lint.ParseSeverity(*minSev)
	if err != nil {
		return fmt.Errorf("lint: %v", err)
	}
	findings, err := lintFiles(fs.Args(), threshold)
	if err != nil {
		return err
	}
	switch *format {
	case "json":
		if err := lint.WriteJSON(os.Stdout, findings); err != nil {
			return err
		}
	default:
		if err := lint.WriteText(os.Stdout, findings); err != nil {
			return err
		}
	}
	diags := make([]lint.Diagnostic, len(findings))
	for i, f := range findings {
		diags[i] = f.Diagnostic
	}
	lintExit(lint.ExitCode(diags))
	return nil
}

// lintExit is swapped out by tests to observe the exit code.
var lintExit = os.Exit

// lintFiles lints each file leniently — rule-safety violations become
// SF diagnostics rather than parse failures — and keeps findings at or
// above the threshold.
func lintFiles(paths []string, threshold lint.Severity) ([]lint.Finding, error) {
	var findings []lint.Finding
	for _, path := range paths {
		src, err := os.ReadFile(path)
		if err != nil {
			return nil, err
		}
		prog, err := parser.ParseLenient(string(src))
		if err != nil {
			return nil, fmt.Errorf("%s: %v", path, err)
		}
		for _, d := range lint.Run(prog.Theory) {
			if d.Severity >= threshold {
				findings = append(findings, lint.Finding{File: path, Diagnostic: d})
			}
		}
	}
	return findings, nil
}
