package main

import (
	"os"
	"path/filepath"
	"testing"
)

// write puts a fixture file into the test's temp dir.
func write(t *testing.T, dir, name, content string) string {
	t.Helper()
	path := filepath.Join(dir, name)
	if err := os.WriteFile(path, []byte(content), 0o644); err != nil {
		t.Fatal(err)
	}
	return path
}

func fixtures(t *testing.T) (string, string) {
	t.Helper()
	dir := t.TempDir()
	rules := write(t, dir, "pub.rules", `
		Publication(X) -> exists K1,K2. Keywords(X,K1,K2).
		Keywords(X,K1,K2) -> hasTopic(X,K1).
		hasAuthor(X,Y), hasTopic(X,Z), Scientific(Z) -> Q(Y).
	`)
	facts := write(t, dir, "pub.facts", `
		Publication(p1). hasAuthor(p1,a1). hasTopic(p1,t1). Scientific(t1).
	`)
	return rules, facts
}

func TestCmdClassify(t *testing.T) {
	rules, _ := fixtures(t)
	if err := cmdClassify([]string{rules}); err != nil {
		t.Fatal(err)
	}
	if err := cmdClassify([]string{}); err == nil {
		t.Error("missing file must error")
	}
	if err := cmdClassify([]string{filepath.Join(t.TempDir(), "missing.rules")}); err == nil {
		t.Error("nonexistent file must error")
	}
}

func TestCmdNormalizeAndTranslate(t *testing.T) {
	rules, _ := fixtures(t)
	if err := cmdNormalize([]string{rules}); err != nil {
		t.Fatal(err)
	}
	if err := cmdTranslate([]string{"-to", "ng", rules}); err != nil {
		t.Fatal(err)
	}
	if err := cmdTranslate([]string{"-to", "nonsense", rules}); err == nil {
		t.Error("unknown target must error")
	}
}

func TestCmdChaseAndQuery(t *testing.T) {
	rules, facts := fixtures(t)
	if err := cmdChase([]string{"-data", facts, "-depth", "4", rules}); err != nil {
		t.Fatal(err)
	}
	if err := cmdQuery([]string{"-data", facts, "-rel", "Q", rules}); err != nil {
		t.Fatal(err)
	}
	if err := cmdQuery([]string{"-rel", "Q", rules}); err == nil {
		t.Error("missing -data must error")
	}
}

func TestCmdCapture(t *testing.T) {
	if err := cmdCapture([]string{"-machine", "even-length", "-word", "one,zero"}); err != nil {
		t.Fatal(err)
	}
	if err := cmdCapture([]string{"-machine", "bogus", "-word", "one"}); err == nil {
		t.Error("unknown machine must error")
	}
}

func TestCmdTerminationTreeExplainCore(t *testing.T) {
	rules, facts := fixtures(t)
	if err := cmdTermination([]string{"-v", rules}); err != nil {
		t.Fatal(err)
	}
	if err := cmdTree([]string{"-data", facts, rules}); err != nil {
		t.Fatal(err)
	}
	if err := cmdExplain([]string{"-data", facts, "-atom", "Q(a1)", rules}); err != nil {
		t.Fatal(err)
	}
	if err := cmdCore([]string{facts}); err != nil {
		t.Fatal(err)
	}
}

func TestCmdContains(t *testing.T) {
	dir := t.TempDir()
	q1 := write(t, dir, "q1.cq", `E(X,Y), E(Y,Z) -> Ans(X).`)
	q2 := write(t, dir, "q2.cq", `E(X,W) -> Ans(X).`)
	if err := cmdContains([]string{q1, q2}); err != nil {
		t.Fatal(err)
	}
	if err := cmdContains([]string{q1}); err == nil {
		t.Error("two files required")
	}
}

func TestCmdMagic(t *testing.T) {
	dir := t.TempDir()
	rules := write(t, dir, "anc.rules", `
		Par(X,Y) -> Anc(X,Y).
		Par(X,Z), Anc(Z,Y) -> Anc(X,Y).
	`)
	facts := write(t, dir, "anc.facts", `Par(a,b). Par(b,c).`)
	if err := cmdMagic([]string{"-data", facts, "-goal", "Anc(a,Y)", rules}); err != nil {
		t.Fatal(err)
	}
	if err := cmdMagic([]string{"-data", facts, rules}); err == nil {
		t.Error("missing goal must error")
	}
}
