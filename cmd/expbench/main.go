// Command expbench regenerates the experiment tables of EXPERIMENTS.md:
// one experiment per arrow of Figure 1 of the paper plus the capture
// results (E1–E12 of DESIGN.md).
//
// Usage:
//
//	expbench             # run all experiments
//	expbench -exp E1,E4  # run a subset
//	expbench -quick      # smaller workloads
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	"guardedrules/internal/budget"
	"guardedrules/internal/chase"
)

// benchBudget, when non-nil, governs every engine run of every
// experiment: exceeding it fails the experiment with a typed budget
// error instead of letting a blown-up workload run away.
var benchBudget *budget.T

// govern attaches the global bench budget to a chase option literal.
func govern(o chase.Options) chase.Options {
	o.Budget = benchBudget
	return o
}

type experiment struct {
	id    string
	title string
	run   func(quick bool) error
}

func main() {
	expFlag := flag.String("exp", "", "comma-separated experiment ids (default: all)")
	quick := flag.Bool("quick", false, "smaller workloads")
	timeout := flag.Duration("timeout", 0, "wall-clock budget per engine run, e.g. 30s (0 = none)")
	maxFacts := flag.Int("max-facts", 0, "fact ceiling per engine run (0 = none)")
	flag.Parse()
	if *timeout != 0 || *maxFacts != 0 {
		benchBudget = &budget.T{Timeout: *timeout, MaxFacts: *maxFacts}
	}

	all := []experiment{
		{"E1", "Theorem 1: frontier-guarded -> nearly guarded", runE1},
		{"E2", "Proposition 4: nearly frontier-guarded -> nearly guarded", runE2},
		{"E3", "Theorem 2: weakly frontier-guarded -> weakly guarded", runE3},
		{"E4", "Theorem 3: guarded -> Datalog (saturation)", runE4},
		{"E5", "Proposition 6: nearly guarded -> Datalog", runE5},
		{"E6", "Propositions 1-2: normalization and chase trees", runE6},
		{"E7", "Theorem 4: EXPTIME string queries as weakly guarded theories", runE7},
		{"E8", "Theorem 5: stratified weakly guarded capture", runE8},
		{"E9", "Figure 1: syntactic inclusions and separations", runE9},
		{"E10", "Section 7: knowledge-base query pipeline", runE10},
		{"E11", "Data complexity: PTime fragments vs weakly guarded", runE11},
		{"E12", "Proposition 5: ACDom axiomatization", runE12},
		{"A1", "Ablation: native semi-naive vs chase-based Datalog", runA1},
		{"A2", "Ablation: oblivious vs restricted chase", runA2},
		{"A3", "Ablation: weak acyclicity as a termination oracle", runA3},
		{"A4", "Ablation: core minimization of chase results", runA4},
		{"A5", "Ablation: magic sets vs full bottom-up evaluation", runA5},
		{"A6", "Ablation: parallel trigger collection in the chase", runA6},
		{"A7", "Ablation: cost-based join planning vs static greedy order", runA7},
		{"A8", "Ablation: certified budget-free chase vs bounded fallback", runA8},
	}

	want := map[string]bool{}
	if *expFlag != "" {
		for _, id := range strings.Split(*expFlag, ",") {
			want[strings.TrimSpace(id)] = true
		}
	}
	failed := 0
	for _, e := range all {
		if len(want) > 0 && !want[e.id] {
			continue
		}
		fmt.Printf("== %s: %s ==\n", e.id, e.title)
		if err := e.run(*quick); err != nil {
			failed++
			fmt.Printf("%s FAILED: %v\n", e.id, err)
		}
		fmt.Println()
	}
	if failed > 0 {
		os.Exit(1)
	}
}
