package main

import (
	"fmt"
	"time"

	"guardedrules/internal/chase"
	"guardedrules/internal/core"
	"guardedrules/internal/database"
	"guardedrules/internal/datalog"
	"guardedrules/internal/gen"
	"guardedrules/internal/hom"
	"guardedrules/internal/parser"
	"guardedrules/internal/termination"
)

// runA1: ablation — the native semi-naive Datalog evaluator vs routing
// evaluation through the generic chase engine (which pays a trigger memo
// that Datalog does not need).
func runA1(quick bool) error {
	th := parser.MustParseTheory(`
		E(X,Y) -> T(X,Y).
		T(X,Y), T(Y,Z) -> T(X,Z).
	`)
	sizes := []int{16, 32, 48}
	if quick {
		sizes = []int{16, 32}
	}
	fmt.Printf("%-8s %-14s %-14s %-8s\n", "n", "semi-naive", "via chase", "speedup")
	for _, n := range sizes {
		d := gen.Path(n)
		t0 := time.Now()
		a, err := datalog.EvalSemiNaive(th, d)
		if err != nil {
			return err
		}
		native := time.Since(t0)
		t1 := time.Now()
		b, err := datalog.EvalViaChase(th, d)
		if err != nil {
			return err
		}
		viaChase := time.Since(t1)
		if ok, diff := database.SameGroundAtoms(a, b); !ok {
			return fmt.Errorf("engines disagree: %s", diff)
		}
		fmt.Printf("%-8d %-14v %-14v %.1fx\n",
			n, native.Round(time.Microsecond), viaChase.Round(time.Microsecond),
			float64(viaChase)/float64(native))
	}
	return nil
}

// runA2: ablation — oblivious vs restricted chase: the restricted chase
// skips triggers whose head is already satisfied and stays smaller, while
// both stay homomorphically equivalent (same core).
func runA2(quick bool) error {
	th := parser.MustParseTheory(`
		Publication(X) -> exists K1,K2. Keywords(X,K1,K2).
		Keywords(X,K1,K2) -> hasTopic(X,K1).
		hasTopic(X,Z) -> exists W. Keywords(X,Z,W).
	`)
	sizes := []int{2, 4, 8}
	if quick {
		sizes = []int{2, 4}
	}
	fmt.Printf("%-6s %-12s %-12s %-12s %-12s %-12s %s\n",
		"n", "oblivious", "ob time", "restricted", "re time", "same core", "ground agree")
	for _, n := range sizes {
		d := gen.CitationGraph(n)
		t0 := time.Now()
		ob, err := chase.Run(th, d, govern(chase.Options{Variant: chase.Oblivious, MaxDepth: 3, MaxFacts: 500_000}))
		if err != nil {
			return err
		}
		obTime := time.Since(t0)
		t1 := time.Now()
		re, err := chase.Run(th, d, govern(chase.Options{Variant: chase.Restricted, MaxDepth: 3, MaxFacts: 500_000}))
		if err != nil {
			return err
		}
		reTime := time.Since(t1)
		same, what := database.SameGroundAtoms(ob.DB, re.DB)
		coreAgree := hom.Equivalent(ob.DB.UserFacts(), re.DB.UserFacts())
		fmt.Printf("%-6d %-12d %-12v %-12d %-12v %-12v %s\n",
			n, ob.DB.Len(), obTime.Round(time.Microsecond),
			re.DB.Len(), reTime.Round(time.Microsecond), coreAgree, check(same, what))
		if !same || !coreAgree {
			return fmt.Errorf("variants disagree at n=%d", n)
		}
		if re.DB.Len() > ob.DB.Len() {
			return fmt.Errorf("restricted chase larger than oblivious at n=%d", n)
		}
	}
	return nil
}

// runA3: ablation — weak-acyclicity analysis as a chase-termination
// oracle, cross-checked against actual chase behaviour on generated
// theories.
func runA3(quick bool) error {
	n := 30
	if quick {
		n = 12
	}
	wa, nonWA, waSaturated, checked := 0, 0, 0, 0
	for seed := int64(0); seed < int64(n); seed++ {
		th := gen.RandomFrontierGuardedTheory(gen.FGTheoryOptions{Rules: 5, Seed: seed})
		if termination.IsWeaklyAcyclic(th) {
			wa++
			d := gen.ABDatabase(5, seed)
			res, err := chase.Run(th, d, govern(chase.Options{Variant: chase.Restricted, MaxFacts: 200_000, MaxRounds: 5_000}))
			if err != nil {
				return err
			}
			checked++
			if res.Saturated {
				waSaturated++
			} else {
				return fmt.Errorf("seed %d: weakly acyclic theory did not saturate", seed)
			}
		} else {
			nonWA++
		}
	}
	fmt.Printf("theories: %d weakly acyclic, %d not\n", wa, nonWA)
	fmt.Printf("chase saturated on %d/%d weakly acyclic samples (must be all)\n", waSaturated, checked)
	// The classic infinite example is flagged.
	loop := parser.MustParseTheory(`Person(X) -> exists Y. hasParent(X,Y). hasParent(X,Y) -> Person(Y).`)
	rep := termination.Analyze(loop)
	kind := "normal"
	if rep.Witness.Special {
		kind = "special"
	}
	fmt.Printf("ancestor loop flagged non-terminating: %v (witness %v -> %v, %s)\n",
		!rep.WeaklyAcyclic, rep.Witness.From, rep.Witness.To, kind)
	if rep.WeaklyAcyclic {
		return fmt.Errorf("ancestor loop not flagged")
	}
	return nil
}

// runA4: ablation — core minimization of chase results: the oblivious
// chase of the running example carries redundant nulls that the core
// removes, certifying the universal model minimal.
func runA4(bool) error {
	th := parser.MustParseTheory(`
		A(X) -> exists Y. R(X,Y).
		R(X,Y) -> B(Y).
	`)
	d := database.FromAtoms(parser.MustParseFacts(`A(a). A(b). R(a,c).`))
	ob, err := chase.Run(th, d, govern(chase.Options{Variant: chase.Oblivious}))
	if err != nil {
		return err
	}
	coreAtoms, exact := hom.Core(ob.DB.UserFacts(), 0)
	fmt.Printf("oblivious chase: %d atoms; core: %d atoms (exact=%v)\n",
		len(ob.DB.UserFacts()), len(coreAtoms), exact)
	if !hom.Equivalent(ob.DB.UserFacts(), coreAtoms) {
		return fmt.Errorf("core not equivalent to chase")
	}
	if !hom.IsCore(coreAtoms, 0) {
		return fmt.Errorf("result is not a core")
	}
	return nil
}

// runA5: ablation — magic sets vs full bottom-up evaluation: the rewritten
// program only explores the part of the data reachable from the query's
// bound constants.
func runA5(quick bool) error {
	th := parser.MustParseTheory(`
		Par(X,Y) -> Anc(X,Y).
		Par(X,Z), Anc(Z,Y) -> Anc(X,Y).
	`)
	sizes := []int{16, 32}
	if quick {
		sizes = []int{16}
	}
	fmt.Printf("%-6s %-12s %-12s %-12s %-12s\n", "n", "full facts", "magic facts", "full time", "magic time")
	for _, n := range sizes {
		d := database.New()
		for i := 0; i+1 < n; i++ {
			d.Add(core.NewAtom("Par", core.Const(fmt.Sprintf("a%d", i)), core.Const(fmt.Sprintf("a%d", i+1))))
			d.Add(core.NewAtom("Par", core.Const(fmt.Sprintf("z%d", i)), core.Const(fmt.Sprintf("z%d", i+1))))
		}
		t0 := time.Now()
		full, err := datalog.Eval(th, d)
		if err != nil {
			return err
		}
		fullTime := time.Since(t0)
		t1 := time.Now()
		ans, fix, err := datalog.AnswerWithMagic(th, core.NewAtom("Anc", core.Const("a0"), core.Var("Y")), d)
		if err != nil {
			return err
		}
		magicTime := time.Since(t1)
		if len(ans) != n-1 {
			return fmt.Errorf("n=%d: expected %d answers, got %d", n, n-1, len(ans))
		}
		fmt.Printf("%-6d %-12d %-12d %-12v %-12v\n",
			n, full.Len(), fix.Len(), fullTime.Round(time.Microsecond), magicTime.Round(time.Microsecond))
	}
	return nil
}

// runA6: ablation — parallel trigger collection: rule matching reads the
// database only, so it parallelizes across (rule × delta-shard) work
// items over a fixed worker pool; work items are merged in deterministic
// order, so the result is byte-identical to the sequential one.
func runA6(quick bool) error {
	th := parser.MustParseTheory(`
		Obj(X) -> exists U. OMin(X,U).
		OMin(X,U), Obj(Y) -> exists V. Edge(X,Y,U,V).
		Edge(X,Y,U,V) -> Seen(Y,V).
		Edge(X,Y,U,V), Seen(X,U) -> Chain(X,Y).
		Seen(Y,V), Obj(Y) -> Mark(Y).
	`)
	n := 24
	if quick {
		n = 12
	}
	d := database.New()
	for i := 0; i < n; i++ {
		d.Add(core.NewAtom("Obj", core.Const(fmt.Sprintf("o%d", i))))
	}
	opts := govern(chase.Options{Variant: chase.Restricted, MaxDepth: 3, MaxFacts: 3_000_000})
	t0 := time.Now()
	seq, err := chase.Run(th, d, opts)
	if err != nil {
		return err
	}
	seqTime := time.Since(t0)
	seqStr := seq.DB.String()
	fmt.Printf("%-9s %-12s %-12s %-8s\n", "workers", "facts", "time", "speedup")
	fmt.Printf("%-9d %-12d %-12v %-8s\n", 1, seq.DB.Len(), seqTime.Round(time.Millisecond), "1.0x")
	for _, w := range []int{2, 4, 8} {
		opts.Workers = w
		t1 := time.Now()
		par, err := chase.Run(th, d, opts)
		if err != nil {
			return err
		}
		dt := time.Since(t1)
		if par.Steps != seq.Steps || par.DB.String() != seqStr {
			return fmt.Errorf("workers=%d diverged from the sequential run", w)
		}
		fmt.Printf("%-9d %-12d %-12v %.1fx\n", w, par.DB.Len(), dt.Round(time.Millisecond),
			float64(seqTime)/float64(dt))
	}
	return nil
}

// runA7: ablation — cost-based join planning vs the legacy static greedy
// order, both executed through the shared id-space plan runner. The cost
// planner re-plans every work item each round from the database's live
// cardinality statistics; results must be byte-identical (the plan only
// fixes the enumeration order, never the fact set).
func runA7(quick bool) error {
	cases := []struct {
		name   string
		theory string
		db     *database.Database
	}{
		{"closure", `
			E(X,Y) -> T(X,Y).
			T(X,Y), T(Y,Z) -> T(X,Z).
		`, gen.ChainForest(20, 50)},
		{"triangles", `
			E(X,Y) -> T(X,Y).
			T(X,Y), T(Y,Z), E(X,Z) -> Tri(X,Y).
		`, gen.RandomGraph(120, 600, 11)},
	}
	if quick {
		cases[0].db = gen.ChainForest(6, 30)
		cases[1].db = gen.RandomGraph(60, 240, 11)
	}
	fmt.Printf("%-11s %-10s %-14s %-14s %-8s\n", "workload", "facts", "greedy", "cost", "ratio")
	var js datalog.JoinStats
	// Best of 3 per configuration: single-shot fixpoint timings on a
	// shared machine swing by 2-3x from GC and scheduling noise.
	best := func(opts datalog.Options, th *core.Theory, d *database.Database) (*database.Database, time.Duration, error) {
		var fix *database.Database
		var bestDt time.Duration
		for r := 0; r < 3; r++ {
			t0 := time.Now()
			out, err := datalog.EvalSemiNaiveOpts(th, d, opts)
			if err != nil {
				return nil, 0, err
			}
			if dt := time.Since(t0); r == 0 || dt < bestDt {
				bestDt = dt
			}
			fix = out
		}
		return fix, bestDt, nil
	}
	for _, c := range cases {
		th := parser.MustParseTheory(c.theory)
		g, greedyTime, err := best(datalog.Options{Planner: datalog.PlannerGreedy}, th, c.db)
		if err != nil {
			return err
		}
		p, costTime, err := best(datalog.Options{Planner: datalog.PlannerCost, Stats: &js}, th, c.db)
		if err != nil {
			return err
		}
		if g.String() != p.String() {
			return fmt.Errorf("%s: planners derived different fixpoints", c.name)
		}
		fmt.Printf("%-11s %-10d %-14v %-14v %.2fx\n",
			c.name, p.Len(), greedyTime.Round(time.Microsecond), costTime.Round(time.Microsecond),
			float64(greedyTime)/float64(costTime))
	}
	fmt.Printf("cost planner activity: %d round plans, %d hash tables, %d probe steps\n",
		js.RoundPlans.Load(), js.HashTables.Load(), js.ProbeSteps.Load())
	return nil
}

// runA8: ablation — certified budget-free chase vs the bounded fallback.
// The termination analyzer certifies each theory's class and, for weakly
// acyclic ones, derives an exact fact bound for the concrete database;
// chase.RunCertified then runs with no user-supplied ceiling at all
// (the certificate IS the ceiling) and must saturate. The bounded
// fallback runs the same chase under the generic defensive budget. Both
// paths must produce byte-identical fixpoints.
func runA8(quick bool) error {
	cases := []struct {
		name   string
		theory *core.Theory
		db     *database.Database
	}{
		{"publication", parser.MustParseTheory(`
			Publication(X) -> exists K1,K2. Keywords(X,K1,K2).
			Keywords(X,K1,K2) -> hasTopic(X,K1).
		`), gen.CitationGraph(12)},
		{"wa-chain", gen.WAChainTheory(12), gen.ABDatabase(40, 3)},
		{"ja-not-wa", gen.JANotWATheory(3), gen.ABDatabase(30, 5)},
	}
	if quick {
		cases[0].db = gen.CitationGraph(4)
		cases[1].db = gen.ABDatabase(12, 3)
		cases[2].db = gen.ABDatabase(10, 5)
	}
	fmt.Printf("%-13s %-7s %-10s %-10s %-14s %-14s %-8s\n",
		"workload", "class", "bound", "facts", "certified", "bounded", "ratio")
	for _, c := range cases {
		rep := termination.Analyze(c.theory)
		if !rep.Class.Terminating() {
			return fmt.Errorf("%s: expected a terminating class, got %s", c.name, rep.Class)
		}
		if err := rep.Certificate.Verify(c.theory); err != nil {
			return fmt.Errorf("%s: certificate fails verification: %v", c.name, err)
		}
		bound := 0
		boundStr := "-"
		if rep.Bound != nil {
			n0 := c.db.InternEpoch() + len(c.theory.Constants())
			if b, ok := rep.Bound.Facts(n0, c.db.Len()); ok {
				bound = b
				boundStr = fmt.Sprintf("%d", b)
			}
		}
		// Best of 3 per path: single-shot chase timings swing with GC noise.
		var certRes *chase.Result
		var certTime time.Duration
		for r := 0; r < 3; r++ {
			t0 := time.Now()
			res, err := chase.RunCertified(c.theory, c.db, bound, chase.Options{Variant: chase.Restricted})
			if err != nil {
				return fmt.Errorf("%s: certified chase: %v", c.name, err)
			}
			if dt := time.Since(t0); r == 0 || dt < certTime {
				certTime = dt
			}
			certRes = res
		}
		if !certRes.Saturated {
			return fmt.Errorf("%s: certified chase did not saturate", c.name)
		}
		var boundRes *chase.Result
		var boundTime time.Duration
		for r := 0; r < 3; r++ {
			t0 := time.Now()
			res, err := chase.Run(c.theory, c.db, govern(chase.Options{Variant: chase.Restricted, MaxDepth: 12, MaxFacts: 500_000}))
			if err != nil {
				return fmt.Errorf("%s: bounded chase: %v", c.name, err)
			}
			if dt := time.Since(t0); r == 0 || dt < boundTime {
				boundTime = dt
			}
			boundRes = res
		}
		if certRes.DB.String() != boundRes.DB.String() {
			return fmt.Errorf("%s: certified and bounded chases derived different fixpoints", c.name)
		}
		fmt.Printf("%-13s %-7s %-10s %-10d %-14v %-14v %.2fx\n",
			c.name, rep.Class, boundStr, certRes.DB.Len(),
			certTime.Round(time.Microsecond), boundTime.Round(time.Microsecond),
			float64(boundTime)/float64(certTime))
	}
	return nil
}
