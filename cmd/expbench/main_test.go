package main

import "testing"

// Every experiment must run clean in quick mode; this is the harness's own
// regression test (the full tables are recorded in EXPERIMENTS.md).
func TestAllExperimentsQuick(t *testing.T) {
	if testing.Short() {
		t.Skip("experiment harness smoke test")
	}
	for _, e := range []struct {
		id  string
		run func(bool) error
	}{
		{"E1", runE1}, {"E2", runE2}, {"E3", runE3}, {"E4", runE4},
		{"E5", runE5}, {"E6", runE6}, {"E7", runE7}, {"E8", runE8},
		{"E9", runE9}, {"E10", runE10}, {"E11", runE11}, {"E12", runE12},
		{"A1", runA1}, {"A2", runA2}, {"A3", runA3}, {"A4", runA4}, {"A5", runA5}, {"A6", runA6},
	} {
		e := e
		t.Run(e.id, func(t *testing.T) {
			if err := e.run(true); err != nil {
				t.Fatal(err)
			}
		})
	}
}
