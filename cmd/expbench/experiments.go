package main

import (
	"fmt"
	"time"

	"guardedrules/internal/annotate"
	"guardedrules/internal/capture"
	"guardedrules/internal/chase"
	"guardedrules/internal/classify"
	"guardedrules/internal/core"
	"guardedrules/internal/database"
	"guardedrules/internal/datalog"
	"guardedrules/internal/gen"
	"guardedrules/internal/kb"
	"guardedrules/internal/normalize"
	"guardedrules/internal/parser"
	"guardedrules/internal/rewrite"
	"guardedrules/internal/saturate"
	"guardedrules/internal/stratified"
	"guardedrules/internal/tm"
)

// sigmaP is Σp of Example 1 with the query rule σ4.
const sigmaP = `
Publication(X) -> exists K1,K2. Keywords(X,K1,K2).
Keywords(X,K1,K2) -> hasTopic(X,K1).
hasTopic(X,Z), hasAuthor(X,U), hasAuthor(Y,U),
  hasTopic(Y,Z2), Scientific(Z2), citedIn(Y,X) -> Scientific(Z).
hasAuthor(X,Y), hasTopic(X,Z), Scientific(Z) -> Q(Y).
`

// exampleSeven is the guarded theory of Example 7.
const exampleSeven = `
A(X) -> exists Y. R(X,Y).
R(X,Y) -> S(Y,Y).
S(X,Y) -> exists Z. T(X,Y,Z).
T(X,X,Y) -> B(X).
C(X), R(X,Y), B(Y) -> D(X).
`

// groundAtomsOver restricts a chase result to the named relations.
func groundAtomsOver(db *database.Database, th *core.Theory) *database.Database {
	rels := make(map[string]bool)
	for _, rk := range th.Relations() {
		rels[rk.Name] = true
	}
	return db.Restrict(func(k core.RelKey) bool { return rels[k.Name] })
}

func check(ok bool, what string) string {
	if ok {
		return "ok"
	}
	return "MISMATCH(" + what + ")"
}

// runE1: Theorem 1 on Σp over growing citation graphs: answer preservation
// and translation size.
func runE1(quick bool) error {
	orig := parser.MustParseTheory(sigmaP)
	norm := normalize.Normalize(orig)
	t0 := time.Now()
	rew, stats, err := rewrite.Rewrite(norm, rewrite.Options{Budget: benchBudget})
	if err != nil {
		return err
	}
	trTime := time.Since(t0)
	rep := classify.Classify(rew)
	fmt.Printf("translation: %d input rules -> %d rules (%d selections, %d splits) in %v; nearly guarded: %v\n",
		stats.InputRules, stats.ExpansionRules, stats.Selections, stats.Splits, trTime.Round(time.Millisecond),
		rep.Member[classify.NearlyGuarded])
	sizes := []int{2, 4, 8, 16}
	if quick {
		sizes = []int{2, 4}
	}
	fmt.Printf("%-6s %-8s %-14s %-14s %-10s %s\n", "n", "|D|", "chase(Σ)", "chase(rew(Σ))", "Q answers", "agree")
	for _, n := range sizes {
		d := gen.CitationGraph(n)
		r1, err := chase.Run(orig, d, govern(chase.Options{Variant: chase.Restricted, MaxDepth: 6, MaxFacts: 2_000_000}))
		if err != nil {
			return err
		}
		r2, err := chase.Run(rew, d, govern(chase.Options{Variant: chase.Restricted, MaxDepth: 6, MaxFacts: 2_000_000}))
		if err != nil {
			return err
		}
		a := groundAtomsOver(r1.DB, orig)
		b := groundAtomsOver(r2.DB, orig)
		same, what := database.SameGroundAtoms(a, b)
		ans := datalog.CollectAnswers(r1.DB, "Q")
		fmt.Printf("%-6d %-8d %-14d %-14d %-10d %s\n",
			n, d.Len(), r1.DB.Len(), r2.DB.Len(), len(ans), check(same, what))
		if !same {
			return fmt.Errorf("answer preservation failed at n=%d", n)
		}
	}
	return nil
}

// runE2: Proposition 4 — the safe Datalog periphery passes through and
// transitive closure survives.
func runE2(quick bool) error {
	th := normalize.Normalize(parser.MustParseTheory(`
		A(X) -> exists Y. R(X,Y).
		R(X,Y), B(X) -> S(Y).
		E(X,Y) -> T(X,Y).
		T(X,Y), T(Y,Z) -> T(X,Z).
		T(X,Y), B(X) -> Linked(X,Y).
	`))
	rew, stats, err := rewrite.Rewrite(th, rewrite.Options{Budget: benchBudget})
	if err != nil {
		return err
	}
	fmt.Printf("passthrough safe Datalog rules: %d; expansion: %d rules\n",
		stats.Passthrough, stats.ExpansionRules)
	sizes := []int{8, 16, 32}
	if quick {
		sizes = []int{8}
	}
	fmt.Printf("%-6s %-10s %-10s %s\n", "n", "T facts", "Linked", "agree")
	for _, n := range sizes {
		d := gen.Path(n)
		for i := 0; i < n; i += 2 {
			d.Add(core.NewAtom("B", core.Const(fmt.Sprintf("v%d", i))))
			d.Add(core.NewAtom("A", core.Const(fmt.Sprintf("v%d", i))))
		}
		r1, err := chase.Run(th, d, govern(chase.Options{Variant: chase.Restricted, MaxDepth: 4, MaxFacts: 2_000_000}))
		if err != nil {
			return err
		}
		r2, err := chase.Run(rew, d, govern(chase.Options{Variant: chase.Restricted, MaxDepth: 4, MaxFacts: 2_000_000}))
		if err != nil {
			return err
		}
		a := groundAtomsOver(r1.DB, th)
		b := groundAtomsOver(r2.DB, th)
		same, what := database.SameGroundAtoms(a, b)
		tKey := core.RelKey{Name: "T", Arity: 2}
		lKey := core.RelKey{Name: "Linked", Arity: 2}
		fmt.Printf("%-6d %-10d %-10d %s\n",
			n, len(r1.DB.Facts(tKey)), len(r1.DB.Facts(lKey)), check(same, what))
		if !same {
			return fmt.Errorf("mismatch at n=%d", n)
		}
	}
	return nil
}

// runE3: Theorem 2 on weakly frontier-guarded theories.
func runE3(quick bool) error {
	cases := []struct {
		name   string
		theory string
		facts  func(n int) *database.Database
	}{
		{
			"null-join",
			`A(X) -> exists Y. R(Y,X).
			 R(Y,X), B(X) -> S(Y).
			 R(Y,X), S(Y) -> Hit(X).`,
			func(n int) *database.Database {
				d := database.New()
				for i := 0; i < n; i++ {
					c := core.Const(fmt.Sprintf("c%d", i))
					d.Add(core.NewAtom("A", c))
					if i%2 == 0 {
						d.Add(core.NewAtom("B", c))
					}
				}
				return d
			},
		},
		{
			"carry-chain",
			`Start(X) -> exists N. Node(N,X).
			 Node(N,X), Step(X,X2) -> exists M. Node(M,X2).
			 Node(N,X), Final(X) -> Reached(X).`,
			func(n int) *database.Database {
				d := database.New()
				d.Add(core.NewAtom("Start", core.Const("s0")))
				for i := 0; i+1 < n; i++ {
					d.Add(core.NewAtom("Step",
						core.Const(fmt.Sprintf("s%d", i)), core.Const(fmt.Sprintf("s%d", i+1))))
				}
				d.Add(core.NewAtom("Final", core.Const(fmt.Sprintf("s%d", n-1))))
				return d
			},
		},
	}
	sizes := []int{3, 5}
	if quick {
		sizes = []int{3}
	}
	fmt.Printf("%-12s %-6s %-10s %-8s %s\n", "case", "n", "rew rules", "wg", "agree")
	for _, c := range cases {
		th := parser.MustParseTheory(c.theory)
		res, err := annotate.RewriteWFG(th, rewrite.Options{Budget: benchBudget})
		if err != nil {
			return fmt.Errorf("%s: %v", c.name, err)
		}
		wg := classify.Classify(res.Rewritten).Member[classify.WeaklyGuarded]
		for _, n := range sizes {
			d := c.facts(n)
			depth := n + 3
			r1, err := chase.Run(th, d, govern(chase.Options{Variant: chase.Restricted, MaxDepth: depth, MaxFacts: 2_000_000}))
			if err != nil {
				return err
			}
			dRe := res.Reorder.Database(d)
			r2, err := chase.Run(res.Rewritten, dRe, govern(chase.Options{Variant: chase.Restricted, MaxDepth: depth, MaxFacts: 2_000_000}))
			if err != nil {
				return err
			}
			a := groundAtomsOver(r1.DB, th)
			b := groundAtomsOver(res.Reorder.UndoDatabase(r2.DB), th)
			same, what := database.SameGroundAtoms(a, b)
			fmt.Printf("%-12s %-6d %-10d %-8v %s\n",
				c.name, n, len(res.Rewritten.Rules), wg, check(same, what))
			if !same || !wg {
				return fmt.Errorf("%s failed at n=%d", c.name, n)
			}
		}
	}
	return nil
}

// runE4: Theorem 3 — Example 7 plus random guarded theories; saturation
// growth.
func runE4(quick bool) error {
	th := parser.MustParseTheory(exampleSeven)
	t0 := time.Now()
	dat, stats, err := saturate.Datalog(th, saturate.Options{Budget: benchBudget})
	if err != nil {
		return err
	}
	fmt.Printf("Example 7: %d rules -> closure %d -> dat %d in %v\n",
		stats.InputRules, stats.ClosureRules, stats.DatalogRules, time.Since(t0).Round(time.Millisecond))
	d := database.FromAtoms(parser.MustParseFacts(`A(c). C(c).`))
	fix, err := datalog.Eval(dat, d)
	if err != nil {
		return err
	}
	fmt.Printf("D(c) derived (Example 7 regression): %v\n",
		fix.Has(core.NewAtom("D", core.Const("c"))))
	// Growth over random guarded theories of increasing size.
	sizes := []int{4, 8, 12}
	if quick {
		sizes = []int{4}
	}
	fmt.Printf("%-8s %-10s %-10s %-10s %s\n", "rules", "closure", "datalog", "time", "chase-agree")
	for _, n := range sizes {
		g := gen.RandomGuardedTheory(n, int64(n))
		t1 := time.Now()
		dg, st, err := saturate.Datalog(g, saturate.Options{Budget: benchBudget})
		if err != nil {
			return err
		}
		dt := time.Since(t1)
		db := gen.ABDatabase(6, int64(n))
		r, err := chase.Run(g, db, govern(chase.Options{Variant: chase.Restricted, MaxDepth: 8, MaxFacts: 500_000}))
		if err != nil {
			return err
		}
		agree := "skipped(truncated)"
		if r.Saturated {
			fix, err := datalog.Eval(dg, db)
			if err != nil {
				return err
			}
			same, what := database.SameGroundAtoms(groundAtomsOver(r.DB, g), groundAtomsOver(fix, g))
			agree = check(same, what)
			if !same {
				return fmt.Errorf("mismatch at size %d", n)
			}
		}
		fmt.Printf("%-8d %-10d %-10d %-10v %s\n", n, st.ClosureRules, st.DatalogRules, dt.Round(time.Millisecond), agree)
	}
	return nil
}

// runE5: Proposition 6 on a nearly guarded theory with a safe periphery.
func runE5(quick bool) error {
	th := parser.MustParseTheory(`
		A(X) -> exists Y. R(X,Y).
		R(X,Y) -> B(X).
		E(X,Y) -> T(X,Y).
		T(X,Y), T(Y,Z) -> T(X,Z).
		T(X,Y), B(X), B(Y) -> Linked(X,Y).
	`)
	dat, stats, err := saturate.NearlyGuardedToDatalog(th, saturate.Options{Budget: benchBudget})
	if err != nil {
		return err
	}
	fmt.Printf("dat(Σg) ∪ Σd: %d rules (closure %d)\n", stats.DatalogRules, stats.ClosureRules)
	sizes := []int{8, 16}
	if quick {
		sizes = []int{8}
	}
	fmt.Printf("%-6s %-10s %s\n", "n", "Linked", "agree")
	for _, n := range sizes {
		d := gen.Path(n)
		for i := 0; i < n; i++ {
			d.Add(core.NewAtom("A", core.Const(fmt.Sprintf("v%d", i))))
		}
		fix, err := datalog.Eval(dat, d)
		if err != nil {
			return err
		}
		r, err := chase.Run(th, d, govern(chase.Options{Variant: chase.Restricted, MaxFacts: 2_000_000}))
		if err != nil {
			return err
		}
		same, what := database.SameGroundAtoms(groundAtomsOver(fix, th), groundAtomsOver(r.DB, th))
		lKey := core.RelKey{Name: "Linked", Arity: 2}
		fmt.Printf("%-6d %-10d %s\n", n, len(fix.Facts(lKey)), check(same, what))
		if !same {
			return fmt.Errorf("mismatch at n=%d", n)
		}
	}
	return nil
}

// runE6: Propositions 1 and 2 — normalization and chase-tree properties.
func runE6(quick bool) error {
	seeds := []int64{1, 2, 3, 4, 5, 6}
	if quick {
		seeds = seeds[:3]
	}
	fmt.Printf("%-6s %-8s %-8s %-8s %-8s %-6s %s\n",
		"seed", "rules", "normal", "nodes", "depth", "width", "P1-P3")
	for _, seed := range seeds {
		th := gen.RandomFrontierGuardedTheory(gen.FGTheoryOptions{Rules: 5, Seed: seed})
		norm := normalize.Normalize(th)
		if !normalize.IsNormal(norm) {
			return fmt.Errorf("seed %d: normalization failed", seed)
		}
		d := gen.ABDatabase(6, seed)
		tree, res, err := chase.RunTree(norm, d, govern(chase.Options{Variant: chase.Oblivious, MaxDepth: 4, MaxFacts: 100_000}))
		if err != nil {
			return err
		}
		perr := tree.VerifyProposition2(norm, d)
		status := "ok"
		if perr != nil {
			status = perr.Error()
		}
		fmt.Printf("%-6d %-8d %-8d %-8d %-8d %-6d %s\n",
			seed, len(th.Rules), len(norm.Rules), len(tree.Nodes), tree.Depth(), tree.Width(), status)
		if perr != nil {
			return perr
		}
		_ = res
	}
	return nil
}

// runE7: Theorem 4 — compiled machines vs the simulator over all words up
// to a length.
func runE7(quick bool) error {
	alpha := []string{"zero", "one"}
	machines := []*tm.ATM{
		tm.EvenLength(alpha),
		tm.EvenCount("one", alpha),
		tm.SomeSymbol("one", alpha),
		tm.AllSymbols("one", alpha),
	}
	maxLen := 4
	if quick {
		maxLen = 3
	}
	var words func(n int) [][]string
	words = func(n int) [][]string {
		if n == 0 {
			return [][]string{{}}
		}
		var out [][]string
		for _, w := range words(n - 1) {
			out = append(out, append(append([]string(nil), w...), "zero"))
			out = append(out, append(append([]string(nil), w...), "one"))
		}
		return out
	}
	fmt.Printf("%-14s %-8s %-8s %-10s %s\n", "machine", "rules", "wg", "words", "agree")
	for _, m := range machines {
		th, err := capture.Compile(m, 1, alpha)
		if err != nil {
			return err
		}
		wg := classify.Classify(th).Member[classify.WeaklyGuarded]
		tested, agreed := 0, 0
		for n := 1; n <= maxLen; n++ {
			for _, w := range words(n) {
				sim, err := m.Accepts(w, 0)
				if err != nil {
					return err
				}
				db, err := capture.Encode(w, 1, alpha)
				if err != nil {
					return err
				}
				r, err := chase.Run(th, db, govern(chase.Options{Variant: chase.Restricted, MaxDepth: 3*n + 6, MaxFacts: 500_000}))
				if err != nil {
					return err
				}
				tested++
				if r.Entails(core.NewAtom(capture.AcceptRel)) == sim.Accepted {
					agreed++
				}
			}
		}
		fmt.Printf("%-14s %-8d %-8v %-10d %d/%d\n", m.Name, len(th.Rules), wg, tested, agreed, tested)
		if agreed != tested || !wg {
			return fmt.Errorf("machine %s disagreed", m.Name)
		}
	}
	return nil
}

// runE8: Theorem 5 — Σsucc order enumeration and the even-constants
// Boolean query.
func runE8(quick bool) error {
	maxD := 3
	if !quick {
		maxD = 4
	}
	fmt.Printf("%-4s %-12s %-10s\n", "d", "good orders", "expected d!")
	for d := 1; d <= maxD; d++ {
		db := database.New()
		for i := 0; i < d; i++ {
			db.Add(core.NewAtom("Obj", core.Const(fmt.Sprintf("c%d", i))))
		}
		res, err := stratified.Eval(capture.SuccProgram(), db, stratified.Options{
			Chase: govern(chase.Options{Variant: chase.Restricted, MaxDepth: d + 1, MaxFacts: 2_000_000}),
		})
		if err != nil {
			return err
		}
		orders := capture.GoodOrderings(res.DB)
		fact := 1
		for i := 2; i <= d; i++ {
			fact *= i
		}
		fmt.Printf("%-4d %-12d %-10d\n", d, len(orders), fact)
		if len(orders) != fact {
			return fmt.Errorf("d=%d: %d orders, want %d", d, len(orders), fact)
		}
	}
	m := tm.EvenLength(capture.ChrAlphabet(1))
	th, err := capture.BooleanQuery(m, []string{"R"})
	if err != nil {
		return err
	}
	fmt.Printf("even-constants theory: %d rules; stratified wg: %v\n",
		len(th.Rules), stratified.IsWeaklyGuarded(th))
	fmt.Printf("%-4s %-8s %-8s\n", "d", "QBool", "want")
	for d := 1; d <= maxD; d++ {
		db := database.New()
		for i := 0; i < d; i++ {
			db.Add(core.NewAtom("R", core.Const(fmt.Sprintf("c%d", i))))
		}
		got, _, err := capture.EvalBoolean(th, db, d+2)
		if err != nil {
			return err
		}
		want := d%2 == 0
		fmt.Printf("%-4d %-8v %-8v\n", d, got, want)
		if got != want {
			return fmt.Errorf("even-constants failed at d=%d", d)
		}
	}
	return nil
}

// runE9: the '*' inclusions of Figure 1 on sample theories, plus the
// separation: frontier-guarded rules cannot relate unrelated constants
// (so no transitive closure).
func runE9(bool) error {
	samples := []struct {
		name string
		src  string
	}{
		{"sigmaP", sigmaP},
		{"example7", exampleSeven},
		{"transitive", `E(X,Y) -> T(X,Y). T(X,Y), T(Y,Z) -> T(X,Z).`},
		{"weakly-g", `A(X) -> exists Y. R(X,Y). R(X,Y), B(Z) -> P(Y,Z).`},
	}
	fmt.Printf("%-12s %-4s %-4s %-4s %-4s %-4s %-4s %-4s\n",
		"theory", "dlog", "g", "fg", "ng", "nfg", "wg", "wfg")
	for _, s := range samples {
		rep := classify.Classify(parser.MustParseTheory(s.src))
		y := func(f classify.Fragment) string {
			if rep.Member[f] {
				return "yes"
			}
			return "-"
		}
		fmt.Printf("%-12s %-4s %-4s %-4s %-4s %-4s %-4s %-4s\n", s.name,
			y(classify.Datalog), y(classify.Guarded), y(classify.FrontierGuarded),
			y(classify.NearlyGuarded), y(classify.NearlyFrontierGuarded),
			y(classify.WeaklyGuarded), y(classify.WeaklyFrontierGuarded))
		// Syntactic inclusions.
		m := rep.Member
		if m[classify.Guarded] && !(m[classify.FrontierGuarded] && m[classify.NearlyGuarded] && m[classify.WeaklyGuarded]) ||
			m[classify.Datalog] && !(m[classify.NearlyGuarded] && m[classify.WeaklyGuarded]) ||
			m[classify.NearlyGuarded] && !m[classify.NearlyFrontierGuarded] ||
			m[classify.WeaklyGuarded] && !m[classify.WeaklyFrontierGuarded] {
			return fmt.Errorf("inclusion violated for %s", s.name)
		}
	}
	// Separation: a binary-output frontier-guarded theory only relates
	// constants co-occurring in an input atom (Section 3's argument).
	sep := parser.MustParseTheory(`
		E(X,Y) -> exists Z. W(X,Y,Z).
		W(X,Y,Z) -> Pair(X,Y).
	`)
	d := gen.Path(4)
	r, err := chase.Run(sep, d, govern(chase.Options{Variant: chase.Restricted, MaxDepth: 3}))
	if err != nil {
		return err
	}
	violations := 0
	for _, p := range datalog.CollectAnswers(r.DB, "Pair") {
		if !d.Has(core.NewAtom("E", p[0], p[1])) {
			violations++
		}
	}
	fmt.Printf("fg separation: derived pairs beyond co-occurring constants: %d (must be 0; Datalog's T(v0,v2) is out of reach)\n", violations)
	if violations > 0 {
		return fmt.Errorf("frontier-guarded separation violated")
	}
	return nil
}

// runE10: the Section 7 pipeline vs the direct chase.
func runE10(bool) error {
	th := parser.MustParseTheory(`
		A(X) -> exists Y. R(Y,X).
		R(Y,X), B(X) -> S(Y).
	`)
	q := kb.CQ{
		Answer: []core.Term{core.Var("X")},
		Atoms: []core.Atom{
			core.NewAtom("R", core.Var("Y"), core.Var("X")),
			core.NewAtom("S", core.Var("Y")),
		},
	}
	d := database.FromAtoms(parser.MustParseFacts(`A(a). A(b). A(c). B(a). B(c).`))
	chaseAns, _, err := kb.AnswerByChase(th, q, d, govern(chase.Options{Variant: chase.Restricted, MaxDepth: 5}))
	if err != nil {
		return err
	}
	pipeAns, stats, err := kb.AnswerByPipeline(th, q, d, rewrite.Options{Budget: benchBudget}, saturate.Options{Budget: benchBudget})
	if err != nil {
		return err
	}
	same, what := datalog.SameAnswers(chaseAns, pipeAns)
	fmt.Printf("pipeline sizes: rew=%d rules, pg=%d rules, dat=%d rules\n",
		stats.RewrittenRules, stats.GroundedRules, stats.DatalogRules)
	fmt.Printf("answers: chase=%d pipeline=%d agree=%s\n", len(chaseAns), len(pipeAns), check(same, what))
	if !same {
		return fmt.Errorf("pipeline disagrees with chase")
	}
	return nil
}

// runE11: data-complexity shapes — the Datalog translation evaluates in
// polynomial time in |D| while the weakly guarded capture construction
// grows exponentially with the domain.
func runE11(quick bool) error {
	// PTime side: dat of a guarded theory over growing paths.
	th := parser.MustParseTheory(`
		A(X) -> exists Y. R(X,Y).
		R(X,Y), B(X) -> S(Y).
		R(X,Y), S(Y) -> Hit(X).
	`)
	ng, _, err := rewrite.Rewrite(normalize.Normalize(th), rewrite.Options{Budget: benchBudget})
	if err != nil {
		return err
	}
	dat, _, err := saturate.NearlyGuardedToDatalog(ng, saturate.Options{Budget: benchBudget})
	if err != nil {
		return err
	}
	sizes := []int{16, 32, 64}
	if quick {
		sizes = []int{16, 32}
	}
	fmt.Printf("PTime side (fixed Datalog translation, growing data):\n")
	fmt.Printf("%-8s %-10s %-12s\n", "n", "facts", "time")
	for _, n := range sizes {
		d := database.New()
		for i := 0; i < n; i++ {
			c := core.Const(fmt.Sprintf("c%d", i))
			d.Add(core.NewAtom("A", c))
			if i%2 == 0 {
				d.Add(core.NewAtom("B", c))
			}
		}
		t0 := time.Now()
		fix, err := datalog.Eval(dat, d)
		if err != nil {
			return err
		}
		fmt.Printf("%-8d %-10d %-12v\n", n, fix.Len(), time.Since(t0).Round(time.Microsecond))
	}
	// EXPTIME side: the ordering forest of Σsucc grows super-polynomially
	// with the domain (d! good orders among d^(d+1) candidates).
	maxD := 4
	if quick {
		maxD = 3
	}
	fmt.Printf("EXPTIME side (Σsucc ordering forest, growing domain):\n")
	fmt.Printf("%-8s %-12s %-12s %-12s\n", "d", "chase facts", "good orders", "time")
	for d := 2; d <= maxD; d++ {
		db := database.New()
		for i := 0; i < d; i++ {
			db.Add(core.NewAtom("Obj", core.Const(fmt.Sprintf("c%d", i))))
		}
		t0 := time.Now()
		res, err := stratified.Eval(capture.SuccProgram(), db, stratified.Options{
			Chase: govern(chase.Options{Variant: chase.Restricted, MaxDepth: d + 1, MaxFacts: 5_000_000}),
		})
		if err != nil {
			return err
		}
		orders := capture.GoodOrderings(res.DB)
		fmt.Printf("%-8d %-12d %-12d %-12v\n", d, res.DB.Len(), len(orders), time.Since(t0).Round(time.Millisecond))
	}
	return nil
}

// runE12: Proposition 5 — the ACDom axiomatization preserves answers.
func runE12(bool) error {
	th := normalize.Normalize(parser.MustParseTheory(sigmaP))
	rew, _, err := rewrite.Rewrite(th, rewrite.Options{Budget: benchBudget})
	if err != nil {
		return err
	}
	star := rewrite.Axiomatize(rew)
	for _, r := range star.Rules {
		for _, a := range r.AllAtoms() {
			if a.Relation == core.ACDom {
				return fmt.Errorf("Σ* still uses ACDom")
			}
		}
	}
	d := gen.CitationGraph(4)
	r1, err := chase.Run(rew, d, govern(chase.Options{Variant: chase.Restricted, MaxDepth: 6, MaxFacts: 2_000_000}))
	if err != nil {
		return err
	}
	r2, err := chase.Run(star, d, govern(chase.Options{Variant: chase.Restricted, MaxDepth: 6, MaxFacts: 2_000_000}))
	if err != nil {
		return err
	}
	q1 := datalog.CollectAnswers(r1.DB, "Q")
	q2 := datalog.CollectAnswers(r2.DB, rewrite.Star("Q"))
	same, what := datalog.SameAnswers(q1, q2)
	fmt.Printf("Σ rules %d -> Σ* rules %d; Q answers %d; Q* answers %d; agree=%s\n",
		len(rew.Rules), len(star.Rules), len(q1), len(q2), check(same, what))
	if !same {
		return fmt.Errorf("axiomatization changed answers")
	}
	return nil
}
