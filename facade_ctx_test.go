package guardedrules

import (
	"context"
	"errors"
	"fmt"
	"testing"
	"time"

	"guardedrules/internal/core"
)

func mustTheory(t *testing.T, src string) *Theory {
	t.Helper()
	th, err := ParseTheory(src)
	if err != nil {
		t.Fatal(err)
	}
	return th
}

func mustDB(t *testing.T, src string) *Database {
	t.Helper()
	facts, err := ParseFacts(src)
	if err != nil {
		t.Fatal(err)
	}
	return NewDatabase(facts...)
}

const nonTerminating = "N(X) -> exists Y. E(X,Y). E(X,Y) -> N(Y)."

// The flat Options fields route into the budget: MaxFacts on a
// non-terminating chase yields the partial result and ErrFactLimit.
func TestChaseCtxMaxFacts(t *testing.T) {
	th := mustTheory(t, nonTerminating)
	res, err := ChaseCtx(context.Background(), th, mustDB(t, "N(a)."), Options{MaxFacts: 10})
	if !errors.Is(err, ErrFactLimit) {
		t.Fatalf("err = %v, want ErrFactLimit", err)
	}
	if res == nil || !res.Truncated || res.DB.Len() == 0 {
		t.Fatalf("partial result missing: %+v", res)
	}
}

// A canceled context stops the run with ErrCanceled.
func TestChaseCtxCancellation(t *testing.T) {
	th := mustTheory(t, nonTerminating)
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	_, err := ChaseCtx(ctx, th, mustDB(t, "N(a)."), Options{})
	if !errors.Is(err, ErrCanceled) || !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want ErrCanceled matching context.Canceled", err)
	}
}

// Options.Timeout becomes the budget deadline.
func TestChaseCtxTimeout(t *testing.T) {
	th := mustTheory(t, nonTerminating)
	_, err := ChaseCtx(context.Background(), th, mustDB(t, "N(a)."), Options{Timeout: time.Nanosecond})
	if !errors.Is(err, ErrDeadline) {
		t.Fatalf("err = %v, want ErrDeadline", err)
	}
}

// An explicit Budget is merged under the flat fields: its set fields
// win, unset ones are filled from Options.
func TestOptionsBudgetMerge(t *testing.T) {
	opts := Options{Timeout: time.Hour, MaxFacts: 7, Budget: &Budget{MaxFacts: 3}}
	b := opts.budget(context.Background())
	if b == nil || b.MaxFacts != 3 || b.Timeout != time.Hour {
		t.Fatalf("merged budget = %+v, want MaxFacts=3 Timeout=1h", b)
	}
	if zero := (Options{}).budget(context.Background()); zero != nil {
		t.Fatalf("zero options must mean ungoverned, got %+v", zero)
	}
}

// The v2 entry points agree with their deprecated v1 wrappers.
func TestCtxFacadeMatchesV1(t *testing.T) {
	th := mustTheory(t, "E(X,Y) -> T(X,Y). T(X,Y), T(Y,Z) -> T(X,Z).")
	d := mustDB(t, "E(a,b). E(b,c). E(c,d).")

	v1, err := Answers(th, "T", d)
	if err != nil {
		t.Fatal(err)
	}
	v2, err := AnswersCtx(context.Background(), th, "T", d, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if fmt.Sprint(v1) != fmt.Sprint(v2) {
		t.Fatalf("AnswersCtx diverged from Answers: %v vs %v", v2, v1)
	}

	g1, err := AnswersGoalDirected(th, NewAtom("T", Const("a"), Var("Y")), d)
	if err != nil {
		t.Fatal(err)
	}
	g2, err := AnswersGoalDirectedCtx(context.Background(), th, NewAtom("T", Const("a"), Var("Y")), d, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if fmt.Sprint(g1) != fmt.Sprint(g2) || len(g2) != 3 {
		t.Fatalf("goal-directed v2 diverged: %v vs %v", g2, g1)
	}
}

// TranslateCtx routes by fragment: a nearly guarded theory saturates
// directly to Datalog, and the output theory is existential-free with
// the same ground atomic consequences.
func TestTranslateCtxToDatalog(t *testing.T) {
	th := mustTheory(t, `
		A(X) -> exists Y. R(X,Y).
		R(X,Y) -> B(X).
	`)
	dl, err := TranslateCtx(context.Background(), th, ToDatalog, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if !Classify(dl).Member[Datalog] {
		t.Fatal("dat(Σ) must be plain Datalog")
	}
	d := mustDB(t, "A(a).")
	out, err := EvalDatalogCtx(context.Background(), dl, d, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if got := out.Len(); got == 0 {
		t.Fatalf("dat(Σ) lost consequences, db len %d", got)
	}
	ans, err := AnswersCtx(context.Background(), dl, "B", d, Options{})
	if err != nil || len(ans) != 1 {
		t.Fatalf("B answers = %v (%v), want [[a]]", ans, err)
	}
}

// TranslateCtx with a rule ceiling aborts with ErrRuleLimit.
func TestTranslateCtxRuleLimit(t *testing.T) {
	th := mustTheory(t, `
		R(X,Y), S(Y) -> exists Z. R(Y,Z).
		R(X,Y) -> S(Y).
	`)
	_, err := TranslateCtx(context.Background(), th, ToDatalog, Options{MaxRules: 2})
	if !errors.Is(err, ErrRuleLimit) {
		t.Fatalf("err = %v, want ErrRuleLimit", err)
	}
}

// CoreOfCtx honours MaxSteps: the search comes back sound but
// inexact with ErrStepLimit.
func TestCoreOfCtxStepLimit(t *testing.T) {
	var atoms []Atom
	for i := 0; i < 8; i++ {
		atoms = append(atoms, NewAtom("E", Const("a"), core.NewNull(fmt.Sprintf("n%d", i))))
	}
	res, exact, err := CoreOfCtx(context.Background(), atoms, Options{MaxSteps: 1})
	if !errors.Is(err, ErrStepLimit) {
		t.Fatalf("err = %v, want ErrStepLimit", err)
	}
	if exact || len(res) == 0 || len(res) > len(atoms) {
		t.Fatalf("truncated core search: exact=%v len=%d", exact, len(res))
	}

	full, exact, err := CoreOfCtx(context.Background(), atoms, Options{})
	if err != nil || !exact || len(full) != 1 {
		t.Fatalf("exhaustive core = %d atoms exact=%v (%v), want 1 atom", len(full), exact, err)
	}
}

// AnswerCQCtx under a fact budget returns sound partial answers.
func TestAnswerCQCtxBudget(t *testing.T) {
	th := mustTheory(t, nonTerminating)
	q, err := ParseCQ("N(X) -> Ans(X).")
	if err != nil {
		t.Fatal(err)
	}
	ans, exact, err := AnswerCQCtx(context.Background(), th, q, mustDB(t, "N(a)."), Options{MaxFacts: 10})
	if !IsBudgetError(err) {
		t.Fatalf("err = %v, want a budget error", err)
	}
	if exact || len(ans) == 0 {
		t.Fatalf("want inexact non-empty answers, got exact=%v %v", exact, ans)
	}
}

// EvalStratifiedCtx surfaces the partial database on budget exhaustion.
func TestEvalStratifiedCtxBudget(t *testing.T) {
	th := mustTheory(t, nonTerminating)
	out, exact, err := EvalStratifiedCtx(context.Background(), th, mustDB(t, "N(a)."), Options{MaxFacts: 10})
	if !IsBudgetError(err) {
		t.Fatalf("err = %v, want a budget error", err)
	}
	if exact || out == nil || out.Len() == 0 {
		t.Fatalf("want inexact partial db, got exact=%v out=%v", exact, out)
	}
}
