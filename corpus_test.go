package guardedrules

// Compliance corpus: every theory in testdata/ is parsed, classified,
// termination-analyzed and chased, and the expectations below are checked.
// The corpus doubles as documentation of what each fragment looks like.

import (
	"os"
	"path/filepath"
	"testing"
)

type corpusEntry struct {
	name string
	// Expected fragment membership (only the listed fragments are
	// asserted; true = member, false = non-member).
	fragments map[Fragment]bool
	// Expected weak-acyclicity verdict.
	weaklyAcyclic bool
	// Entailed and non-entailed ground atoms after a bounded chase.
	entailed    []Atom
	notEntailed []Atom
	// Whether the theory uses stratified negation (chased via
	// EvalStratified instead).
	stratified bool
}

var corpus = []corpusEntry{
	{
		name: "publication",
		fragments: map[Fragment]bool{
			FrontierGuarded:       true,
			Guarded:               false,
			WeaklyGuarded:         false,
			WeaklyFrontierGuarded: true,
			NearlyGuarded:         false,
		},
		weaklyAcyclic: true,
		entailed: []Atom{
			NewAtom("Q", Const("a1")),
			NewAtom("Q", Const("a2")),
		},
		notEntailed: []Atom{NewAtom("Q", Const("t1"))},
	},
	{
		name: "example7",
		fragments: map[Fragment]bool{
			Guarded:         true,
			FrontierGuarded: true,
			WeaklyGuarded:   true,
		},
		weaklyAcyclic: true,
		entailed:      []Atom{NewAtom("D", Const("c"))},
		notEntailed:   []Atom{NewAtom("D", Const("d"))},
	},
	{
		name: "transitive",
		fragments: map[Fragment]bool{
			Datalog:         true,
			Guarded:         false,
			FrontierGuarded: false,
			NearlyGuarded:   true,
			WeaklyGuarded:   true,
		},
		weaklyAcyclic: true,
		entailed:      []Atom{NewAtom("T", Const("a"), Const("d"))},
		notEntailed:   []Atom{NewAtom("T", Const("d"), Const("a"))},
	},
	{
		name: "ancestor",
		fragments: map[Fragment]bool{
			Guarded: true,
		},
		weaklyAcyclic: false,
		entailed:      []Atom{NewAtom("Person", Const("adam"))},
	},
	{
		name: "reachability",
		fragments: map[Fragment]bool{
			Datalog: true,
		},
		weaklyAcyclic: true,
		stratified:    true,
		entailed: []Atom{
			NewAtom("Unreach", Const("c")),
			NewAtom("Unreach", Const("d")),
			NewAtom("Reach", Const("b")),
		},
		notEntailed: []Atom{NewAtom("Unreach", Const("b"))},
	},
	{
		name: "dlsafe",
		fragments: map[Fragment]bool{
			NearlyGuarded:         true,
			NearlyFrontierGuarded: true,
			Guarded:               false,
			FrontierGuarded:       false,
			WeaklyGuarded:         true,
		},
		weaklyAcyclic: true,
		entailed:      []Atom{NewAtom("Connected", Const("a"), Const("c"))},
	},
	{
		name: "wguarded",
		fragments: map[Fragment]bool{
			WeaklyGuarded:         true,
			WeaklyFrontierGuarded: true,
			Guarded:               false,
			NearlyGuarded:         false,
		},
		weaklyAcyclic: true,
		entailed:      []Atom{NewAtom("Out", Const("a"), Const("b"))},
	},
}

func loadCorpus(t *testing.T, name, ext string) string {
	t.Helper()
	data, err := os.ReadFile(filepath.Join("testdata", name+ext))
	if err != nil {
		t.Fatal(err)
	}
	return string(data)
}

func TestCorpusCompliance(t *testing.T) {
	for _, entry := range corpus {
		entry := entry
		t.Run(entry.name, func(t *testing.T) {
			th, err := ParseTheory(loadCorpus(t, entry.name, ".rules"))
			if err != nil {
				t.Fatal(err)
			}
			facts, err := ParseFacts(loadCorpus(t, entry.name, ".facts"))
			if err != nil {
				t.Fatal(err)
			}
			db := NewDatabase(facts...)

			rep := Classify(th)
			for f, want := range entry.fragments {
				if rep.Member[f] != want {
					t.Errorf("fragment %v: got %v want %v (offender %v)",
						f, rep.Member[f], want, rep.Offender[f])
				}
			}
			if got := ChaseTerminates(th); got != entry.weaklyAcyclic {
				t.Errorf("weak acyclicity: got %v want %v", got, entry.weaklyAcyclic)
			}

			has := func(a Atom) bool { return false }
			if entry.stratified {
				out, exact, err := EvalStratified(th, db, ChaseOptions{MaxDepth: 8})
				if err != nil {
					t.Fatal(err)
				}
				if !exact {
					t.Error("stratified corpus entries must evaluate exactly")
				}
				has = out.Has
			} else {
				res, err := Chase(th, db, ChaseOptions{Variant: Restricted, MaxDepth: 8, MaxFacts: 100_000})
				if err != nil {
					t.Fatal(err)
				}
				if entry.weaklyAcyclic && !res.Saturated {
					t.Error("weakly acyclic theory must saturate")
				}
				has = res.DB.Has
			}
			for _, a := range entry.entailed {
				if !has(a) {
					t.Errorf("%v must be entailed", a)
				}
			}
			for _, a := range entry.notEntailed {
				if has(a) {
					t.Errorf("%v must not be entailed", a)
				}
			}
		})
	}
}

// Every corpus theory round-trips through the printer.
func TestCorpusRoundTrip(t *testing.T) {
	for _, entry := range corpus {
		th, err := ParseTheory(loadCorpus(t, entry.name, ".rules"))
		if err != nil {
			t.Fatal(err)
		}
		printed := PrintTheory(th)
		th2, err := ParseTheory(printed)
		if err != nil {
			t.Fatalf("%s: re-parse failed: %v\n%s", entry.name, err, printed)
		}
		if len(th2.Rules) != len(th.Rules) {
			t.Errorf("%s: rule count changed", entry.name)
		}
	}
}

// Large-scale smoke test (skipped with -short): the running example over a
// 64-publication citation graph, the translation chain included.
func TestLargeScale(t *testing.T) {
	if testing.Short() {
		t.Skip("large-scale smoke test")
	}
	th, err := ParseTheory(loadCorpus(t, "publication", ".rules"))
	if err != nil {
		t.Fatal(err)
	}
	ng, err := FrontierGuardedToNearlyGuarded(th, TranslateOptions{})
	if err != nil {
		t.Fatal(err)
	}
	for _, n := range []int{32, 64} {
		d := NewDatabase()
		for _, a := range citationGraph(n) {
			d.Add(a)
		}
		r1, err := Chase(th, d, ChaseOptions{Variant: Restricted, MaxDepth: 6, MaxFacts: 5_000_000})
		if err != nil {
			t.Fatal(err)
		}
		r2, err := Chase(ng, d, ChaseOptions{Variant: Restricted, MaxDepth: 6, MaxFacts: 5_000_000, Workers: 4})
		if err != nil {
			t.Fatal(err)
		}
		q1 := collectQ(r1.DB)
		q2 := collectQ(r2.DB)
		if len(q1) != len(q2) || len(q1) != n+1 {
			t.Errorf("n=%d: Q answers %d vs %d (want %d)", n, len(q1), len(q2), n+1)
		}
	}
}

func citationGraph(n int) []Atom {
	var out []Atom
	pub := func(i int) Term { return Const("p" + itoa(i)) }
	author := func(i int) Term { return Const("a" + itoa(i)) }
	for i := 0; i < n; i++ {
		out = append(out,
			NewAtom("Publication", pub(i)),
			NewAtom("hasAuthor", pub(i), author(i)),
			NewAtom("hasAuthor", pub(i), author(i+1)))
		if i > 0 {
			out = append(out, NewAtom("citedIn", pub(i-1), pub(i)))
		}
	}
	out = append(out,
		NewAtom("hasTopic", pub(0), Const("t0")),
		NewAtom("Scientific", Const("t0")))
	return out
}

func collectQ(d *Database) []Atom {
	var out []Atom
	for _, a := range d.UserFacts() {
		if a.Relation == "Q" {
			out = append(out, a)
		}
	}
	return out
}

func itoa(i int) string {
	if i == 0 {
		return "0"
	}
	var b []byte
	for i > 0 {
		b = append([]byte{byte('0' + i%10)}, b...)
		i /= 10
	}
	return string(b)
}
