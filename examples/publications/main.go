// Ontology-mediated query answering (Section 7 of the paper): a
// conjunctive query over a publication database enriched with the
// frontier-guarded ontology of Example 1, answered both by the chase and
// by the paper's translation pipeline, on a growing citation graph.
//
//	go run ./examples/publications
package main

import (
	"fmt"
	"log"
	"time"

	"guardedrules"
	"guardedrules/internal/chase"
	"guardedrules/internal/gen"
	"guardedrules/internal/kb"
)

func main() {
	theory, err := guardedrules.ParseTheory(`
		Publication(X) -> exists K1,K2. Keywords(X,K1,K2).
		Keywords(X,K1,K2) -> hasTopic(X,K1).
		hasTopic(X,Z), hasAuthor(X,U), hasAuthor(Y,U),
		  hasTopic(Y,Z2), Scientific(Z2), citedIn(Y,X) -> Scientific(Z).
	`)
	if err != nil {
		log.Fatal(err)
	}

	// "Which authors wrote something with a scientific topic?" — a
	// conjunctive query, not itself guarded in any way; the ACDom guard
	// of Section 7 makes it admissible.
	query := guardedrules.CQ{
		Answer: []guardedrules.Term{guardedrules.Var("A")},
		Atoms: []guardedrules.Atom{
			guardedrules.NewAtom("hasAuthor", guardedrules.Var("P"), guardedrules.Var("A")),
			guardedrules.NewAtom("hasTopic", guardedrules.Var("P"), guardedrules.Var("T")),
			guardedrules.NewAtom("Scientific", guardedrules.Var("T")),
		},
	}

	fmt.Printf("%-6s %-8s %-10s %-12s\n", "pubs", "|D|", "answers", "chase time")
	for _, n := range []int{2, 4, 8, 16} {
		db := gen.CitationGraph(n)
		start := time.Now()
		answers, exact, err := kb.AnswerByChase(theory, query, db, chase.Options{
			Variant:  chase.Restricted,
			MaxDepth: 6,
		})
		if err != nil {
			log.Fatal(err)
		}
		if !exact {
			log.Fatalf("chase unexpectedly truncated at n=%d", n)
		}
		fmt.Printf("%-6d %-8d %-10d %-12v\n", n, db.Len(), len(answers), time.Since(start).Round(time.Microsecond))
	}

	// On the citation chain every author is eventually an answer: each
	// publication cites its predecessor and shares an author with it, so
	// scientificness of the seed topic propagates through all the
	// invented keywords.
	db := gen.CitationGraph(3)
	answers, _, err := kb.AnswerByChase(theory, query, db, chase.Options{
		Variant:  chase.Restricted,
		MaxDepth: 6,
	})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("\nauthors of scientific publications in the 3-chain:")
	for _, a := range answers {
		fmt.Printf("  %v\n", a[0])
	}
}
