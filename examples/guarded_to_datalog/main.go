// Example 7 of the paper, replayed by the implementation: a guarded
// theory whose consequence D(c) travels through two invented nulls, and
// the saturation calculus of Figure 3 (Definition 19) that compiles the
// detour into the plain Datalog rule σ12 = A(x) ∧ C(x) → D(x).
//
//	go run ./examples/guarded_to_datalog
package main

import (
	"context"
	"fmt"
	"log"

	"guardedrules"
	"guardedrules/internal/parser"
)

func main() {
	theory, err := guardedrules.ParseTheory(`
		A(X) -> exists Y. R(X,Y).
		R(X,Y) -> S(Y,Y).
		S(X,Y) -> exists Z. T(X,Y,Z).
		T(X,X,Y) -> B(X).
		C(X), R(X,Y), B(Y) -> D(X).
	`)
	if err != nil {
		log.Fatal(err)
	}
	if !guardedrules.Classify(theory).Member[guardedrules.Guarded] {
		log.Fatal("the Example 7 theory must be guarded")
	}

	// The chase view: D(c) follows from {A(c), C(c)} through the nulls
	// n1 (the R-witness) and n2 (the T-witness).
	facts, _ := guardedrules.ParseFacts(`A(c). C(c).`)
	db := guardedrules.NewDatabase(facts...)
	ctx := context.Background()
	res, err := guardedrules.ChaseCtx(ctx, theory, db, guardedrules.Options{Variant: guardedrules.Oblivious})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("chase of {A(c), C(c)}:")
	for _, a := range res.DB.UserFacts() {
		fmt.Printf("  %v\n", a)
	}

	// The saturation view: dat(Σ) contains σ12, so the same consequence
	// needs no nulls at all.
	dat, err := guardedrules.TranslateCtx(ctx, theory, guardedrules.ToDatalog, guardedrules.Options{})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\ndat(Σ): %d Datalog rules, among them:\n", len(dat.Rules))
	for _, r := range dat.Rules {
		if len(r.Body) == 2 && len(r.Head) == 1 && r.Head[0].Relation == "D" {
			fmt.Printf("  σ12: %s\n", parser.PrintRule(r))
		}
	}

	answers, err := guardedrules.AnswersCtx(ctx, dat, "D", db, guardedrules.Options{})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\ndat(Σ) evaluated bottom-up: D answers = %v\n", answers)
	fmt.Printf("chase agrees: %v\n",
		res.Entails(guardedrules.NewAtom("D", guardedrules.Const("c"))))
}
