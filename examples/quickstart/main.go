// Quickstart: parse the running example of the paper (Example 1), check
// its guardedness, chase it, and read off the certain answers.
//
//	go run ./examples/quickstart
package main

import (
	"context"
	"fmt"
	"log"

	"guardedrules"
)

func main() {
	// Σp of Example 1: a publication ontology with value invention
	// (every publication has two keywords, possibly unknown), plus the
	// query rule σ4 asking for authors of scientific publications.
	theory, err := guardedrules.ParseTheory(`
		Publication(X) -> exists K1,K2. Keywords(X,K1,K2).
		Keywords(X,K1,K2) -> hasTopic(X,K1).
		hasTopic(X,Z), hasAuthor(X,U), hasAuthor(Y,U),
		  hasTopic(Y,Z2), Scientific(Z2), citedIn(Y,X) -> Scientific(Z).
		hasAuthor(X,Y), hasTopic(X,Z), Scientific(Z) -> Q(Y).
	`)
	if err != nil {
		log.Fatal(err)
	}

	// Where does Σp sit in Figure 1 of the paper?
	report := guardedrules.Classify(theory)
	fmt.Println("fragments of Σp:")
	for _, f := range report.Fragments() {
		fmt.Printf("  - %v\n", f)
	}

	// The database D of Example 1.
	facts, err := guardedrules.ParseFacts(`
		Publication(p1). Publication(p2).
		citedIn(p1,p2).
		hasAuthor(p1,a1). hasAuthor(p2,a1). hasAuthor(p2,a2).
		hasTopic(p1,t1). Scientific(t1).
	`)
	if err != nil {
		log.Fatal(err)
	}
	db := guardedrules.NewDatabase(facts...)

	// Chase D with Σp. The restricted chase terminates here; the depth
	// bound is a safety net for theories with infinite chases.
	res, err := guardedrules.ChaseCtx(context.Background(), theory, db, guardedrules.Options{
		Variant:  guardedrules.Restricted,
		MaxDepth: 6,
	})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nchase: %d facts in %d steps (saturated: %v)\n",
		res.DB.Len(), res.Steps, res.Saturated)

	// Σp, D ⊨ Q(a1) and Q(a2): a2 authored p2 whose invented first
	// keyword is provably scientific through the citation to p1.
	for _, c := range []string{"a1", "a2", "p1"} {
		fmt.Printf("Q(%s) entailed: %v\n", c,
			res.Entails(guardedrules.NewAtom("Q", guardedrules.Const(c))))
	}
}
