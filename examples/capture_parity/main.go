// The EXPTIME capture result (Theorem 5 of the paper) end to end: the
// paper's own motivating non-monotonic query — "does the database have an
// even number of constants?" — expressed as a stratified weakly guarded
// theory. The theory combines the 12-rule ordering program Σsucc (which
// invents a labeled null for every candidate total order of the domain),
// the characteristic-function encoding Σcode (semipositive negation on
// the input relation), and a Turing machine compiled to weakly guarded
// rules that reads the encoded string along a good ordering.
//
//	go run ./examples/capture_parity
package main

import (
	"fmt"
	"log"

	"guardedrules"
	"guardedrules/internal/capture"
	"guardedrules/internal/stratified"
	"guardedrules/internal/tm"
)

func main() {
	// The machine: accepts exactly the even-length strings. Reading the
	// characteristic string of a database, its length IS the number of
	// constants.
	machine := tm.EvenLength(capture.ChrAlphabet(1))

	theory, err := guardedrules.BooleanQuery(machine, []string{"R"})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("Theorem 5 theory: %d rules; stratified weakly guarded: %v\n",
		len(theory.Rules), stratified.IsWeaklyGuarded(theory))

	// Plain existential rules are monotone, so no weakly guarded theory
	// without negation can express this query (Section 8); with stratified
	// negation it falls out of the capture construction.
	for d := 1; d <= 4; d++ {
		db := guardedrules.NewDatabase()
		for i := 0; i < d; i++ {
			name := fmt.Sprintf("c%d", i)
			if i%2 == 0 {
				db.Add(guardedrules.NewAtom("R", guardedrules.Const(name)))
			} else {
				db.Add(guardedrules.NewAtom("S", guardedrules.Const(name)))
			}
		}
		even, err := guardedrules.EvalBoolean(theory, db, d+2)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("domain size %d: even-constants query answers %v\n", d, even)
	}

	// A second query through the same construction: an even number of
	// R-constants (the machine counts Chr_1 symbols).
	counter := tm.EvenCount(capture.ChrName("1"), capture.ChrAlphabet(1))
	countTheory, err := guardedrules.BooleanQuery(counter, []string{"R"})
	if err != nil {
		log.Fatal(err)
	}
	db := guardedrules.NewDatabase(
		guardedrules.NewAtom("R", guardedrules.Const("a")),
		guardedrules.NewAtom("R", guardedrules.Const("b")),
		guardedrules.NewAtom("S", guardedrules.Const("c")),
	)
	evenR, err := guardedrules.EvalBoolean(countTheory, db, 6)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\n|R| = 2 in a 3-constant database: even-R query answers %v\n", evenR)
}
