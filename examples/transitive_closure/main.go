// Transitive closure and the limits of frontier-guardedness (Section 3 of
// the paper): frontier-guarded theories cannot relate constants that do
// not co-occur in an input atom, so they cannot express transitive
// closure — but nearly guarded theories, which contain all of Datalog,
// can. This example also walks the full Figure 1 translation path
// frontier-guarded → nearly guarded → Datalog on a mixed theory.
//
//	go run ./examples/transitive_closure
package main

import (
	"context"
	"fmt"
	"log"

	"guardedrules"
	"guardedrules/internal/gen"
)

func main() {
	// Part 1: the separation. A frontier-guarded theory trying to expose
	// pairs: every derived Pair is confined to constants sharing an input
	// atom.
	fgTheory, err := guardedrules.ParseTheory(`
		E(X,Y) -> exists W. Edge3(X,Y,W).
		Edge3(X,Y,W) -> Pair(X,Y).
	`)
	if err != nil {
		log.Fatal(err)
	}
	ctx := context.Background()
	path := gen.Path(5)
	res, err := guardedrules.ChaseCtx(ctx, fgTheory, path, guardedrules.Options{
		Variant:  guardedrules.Restricted,
		MaxDepth: 3,
	})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("frontier-guarded theory on the path v0→v1→…→v4:")
	fmt.Printf("  Pair(v0,v1) entailed: %v\n",
		res.Entails(guardedrules.NewAtom("Pair", guardedrules.Const("v0"), guardedrules.Const("v1"))))
	fmt.Printf("  Pair(v0,v2) entailed: %v  (no fg theory can make this true)\n",
		res.Entails(guardedrules.NewAtom("Pair", guardedrules.Const("v0"), guardedrules.Const("v2"))))

	// Part 2: nearly guarded rules lift the restriction: they contain all
	// of Datalog on the active domain, so transitive closure is
	// expressible — while still allowing guarded value invention.
	mixed, err := guardedrules.ParseTheory(`
		% safe Datalog periphery: transitive closure
		E(X,Y) -> T(X,Y).
		T(X,Y), T(Y,Z) -> T(X,Z).
		% guarded existential core: every node gets an invented token
		Node(X) -> exists K. Token(X,K).
		Token(X,K) -> Tagged(X).
		% join the two worlds over constants
		T(X,Y), Tagged(X), Tagged(Y) -> Connected(X,Y).
	`)
	if err != nil {
		log.Fatal(err)
	}
	report := guardedrules.Classify(mixed)
	fmt.Printf("\nmixed theory fragments: %v\n", report.Fragments())

	// Translate to plain Datalog via Proposition 6 and evaluate.
	dat, err := guardedrules.TranslateCtx(ctx, mixed, guardedrules.ToDatalog, guardedrules.Options{})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("Datalog translation: %d rules\n", len(dat.Rules))

	answers, err := guardedrules.AnswersCtx(ctx, dat, "Connected", gen.Path(5), guardedrules.Options{})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("Connected pairs on the 5-path (includes v0–v4, out of reach for fg): %d\n", len(answers))
	for _, a := range answers {
		if a[0] == guardedrules.Const("v0") && a[1] == guardedrules.Const("v4") {
			fmt.Println("  ... including Connected(v0,v4) via the transitive closure")
		}
	}
}
