// RDF/ontology reasoning with stratified weakly guarded rules — the
// setting of TriQ, the RDF query language the paper cites as an
// application of stratified weakly guarded rules (Section 1 and the
// conclusion).
//
// Triples are stored as Triple(subject, predicate, object). The ruleset
// mixes:
//
//   - RDFS-style schema inference (subclass transitivity, typing through
//     subclass edges, domain typing) — plain Datalog, nearly guarded;
//
//   - value invention: every person has a (possibly unknown) homepage,
//     an existential rule in the guarded fragment;
//
//   - stratified negation: resources without any type are flagged.
//
//     go run ./examples/rdf_reasoning
package main

import (
	"context"
	"fmt"
	"log"

	"guardedrules"
)

func main() {
	theory, err := guardedrules.ParseTheory(`
		% RDFS-style schema reasoning over the triple store.
		Triple(C,subClassOf,D), Triple(D,subClassOf,E) -> Triple(C,subClassOf,E).
		Triple(X,typeOf,C), Triple(C,subClassOf,D) -> Triple(X,typeOf,D).
		% Domain typing: whoever authored something is a person.
		Triple(X,authored,Y) -> Triple(X,typeOf,person).
		% Value invention: every person has a homepage resource.
		Triple(X,typeOf,C), IsPersonClass(C) -> exists H. Homepage(X,H).
		-> IsPersonClass(person).
		% Stratified negation: resources appearing as subjects without any
		% type are untyped.
		Triple(X,P,Y), not HasType(X) -> Untyped(X).
		Triple(X,typeOf,C) -> HasType(X).
	`)
	if err != nil {
		log.Fatal(err)
	}

	report := guardedrules.Classify(theory)
	fmt.Printf("ruleset fragments: %v\n", report.Fragments())
	fmt.Printf("chase terminates (weakly acyclic): %v\n\n", guardedrules.ChaseTerminates(theory))

	facts, err := guardedrules.ParseFacts(`
		Triple(researcher,subClassOf,person).
		Triple(professor,subClassOf,researcher).
		Triple(ada,typeOf,professor).
		Triple(alan,authored,paper1).
		Triple(paper1,cites,paper2).
	`)
	if err != nil {
		log.Fatal(err)
	}
	db := guardedrules.NewDatabase(facts...)

	out, exact, err := guardedrules.EvalStratifiedCtx(context.Background(), theory, db, guardedrules.Options{
		Variant:  guardedrules.Restricted,
		MaxDepth: 4,
	})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("stratified evaluation exact: %v\n", exact)

	check := func(desc string, a guardedrules.Atom) {
		fmt.Printf("  %-46s %v\n", desc, out.Has(a))
	}
	fmt.Println("inferred:")
	check("ada is a person (2-step subclass chain):",
		guardedrules.NewAtom("Triple", guardedrules.Const("ada"), guardedrules.Const("typeOf"), guardedrules.Const("person")))
	check("alan is a person (domain typing):",
		guardedrules.NewAtom("Triple", guardedrules.Const("alan"), guardedrules.Const("typeOf"), guardedrules.Const("person")))
	check("paper1 is untyped (negation):",
		guardedrules.NewAtom("Untyped", guardedrules.Const("paper1")))
	check("ada is untyped:",
		guardedrules.NewAtom("Untyped", guardedrules.Const("ada")))

	// The invented homepages are labeled nulls: visible in the output
	// database but never equal to any constant.
	homepages := 0
	for _, a := range out.UserFacts() {
		if a.Relation == "Homepage" {
			homepages++
			fmt.Printf("  homepage witness:                              %v\n", a)
		}
	}
	fmt.Printf("\n%d homepage witnesses invented for the %d persons\n", homepages, 2)
}
