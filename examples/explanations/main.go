// Derivation provenance: replay Example 7 of the paper and print the full
// proof tree of D(c) — the derivation that travels through two invented
// nulls — then contrast it with the one-step proof the Datalog
// translation dat(Σ) provides via σ12.
//
//	go run ./examples/explanations
package main

import (
	"fmt"
	"log"

	"guardedrules"
	"guardedrules/internal/chase"
	"guardedrules/internal/database"
	"guardedrules/internal/parser"
	"guardedrules/internal/saturate"
)

func main() {
	theory := parser.MustParseTheory(`
		A(X) -> exists Y. R(X,Y).
		R(X,Y) -> S(Y,Y).
		S(X,Y) -> exists Z. T(X,Y,Z).
		T(X,X,Y) -> B(X).
		C(X), R(X,Y), B(Y) -> D(X).
	`)
	db := database.FromAtoms(parser.MustParseFacts(`A(c). C(c).`))

	res, prov, err := chase.RunWithProvenance(theory, db, chase.Options{
		Variant: chase.Oblivious,
	})
	if err != nil {
		log.Fatal(err)
	}
	target := guardedrules.NewAtom("D", guardedrules.Const("c"))
	if !res.Entails(target) {
		log.Fatal("D(c) must be entailed")
	}
	fmt.Println("proof of D(c) under Σ (through the invented nulls):")
	fmt.Print(prov.Explain(target, db).String())

	// The same consequence through dat(Σ): σ12 = A(x) ∧ C(x) → D(x)
	// collapses the null detour into one Datalog step.
	dat, _, err := saturate.Datalog(theory, saturate.Options{})
	if err != nil {
		log.Fatal(err)
	}
	res2, prov2, err := chase.RunWithProvenance(dat, db, chase.Options{})
	if err != nil {
		log.Fatal(err)
	}
	if !res2.Entails(target) {
		log.Fatal("dat(Σ) must also entail D(c)")
	}
	fmt.Println("\nproof of D(c) under dat(Σ) (Theorem 3 flattens the detour):")
	tree := prov2.Explain(target, db)
	fmt.Print(tree.String())
	fmt.Printf("\nproof depths: chase %d vs dat(Σ) %d\n",
		prov.Explain(target, db).Depth(), tree.Depth())

	// Bonus: which inputs does a derived fact depend on? Walk the leaves.
	var leaves func(n *chase.ProofNode) []string
	leaves = func(n *chase.ProofNode) []string {
		if len(n.Children) == 0 {
			return []string{n.Atom.String()}
		}
		var out []string
		for _, c := range n.Children {
			out = append(out, leaves(c)...)
		}
		return out
	}
	fmt.Printf("input support of D(c): %v\n", leaves(prov.Explain(target, db)))
}
