package guardedrules

import (
	"testing"

	"guardedrules/internal/tm"
)

// The facade test walks the README quickstart end to end.
func TestFacadeQuickstart(t *testing.T) {
	th, err := ParseTheory(`
		Publication(X) -> exists K1,K2. Keywords(X,K1,K2).
		Keywords(X,K1,K2) -> hasTopic(X,K1).
		hasAuthor(X,Y), hasTopic(X,Z), Scientific(Z) -> Q(Y).
	`)
	if err != nil {
		t.Fatal(err)
	}
	rep := Classify(th)
	if !rep.Member[FrontierGuarded] {
		t.Fatal("theory must be frontier-guarded")
	}
	facts, err := ParseFacts(`Publication(p1). hasAuthor(p1,a1). hasTopic(p1,t1). Scientific(t1).`)
	if err != nil {
		t.Fatal(err)
	}
	d := NewDatabase(facts...)
	res, err := Chase(th, d, ChaseOptions{Variant: Restricted, MaxDepth: 4})
	if err != nil {
		t.Fatal(err)
	}
	if !res.Entails(NewAtom("Q", Const("a1"))) {
		t.Error("Q(a1) must be entailed")
	}
}

func TestFacadeTranslationChain(t *testing.T) {
	th, err := ParseTheory(`
		A(X) -> exists Y. R(X,Y).
		R(X,Y), B(X) -> S(Y).
		R(X,Y), S(Y) -> Hit(X).
	`)
	if err != nil {
		t.Fatal(err)
	}
	ng, err := FrontierGuardedToNearlyGuarded(th, TranslateOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if !Classify(ng).Member[NearlyGuarded] {
		t.Fatal("translation must be nearly guarded")
	}
	dat, err := NearlyGuardedToDatalog(ng, TranslateOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if !Classify(dat).Member[Datalog] {
		t.Fatal("dat must be Datalog")
	}
	facts, _ := ParseFacts(`A(a). B(a). A(b).`)
	ans, err := Answers(dat, "Hit", NewDatabase(facts...))
	if err != nil {
		t.Fatal(err)
	}
	if len(ans) != 1 || ans[0][0] != Const("a") {
		t.Errorf("answers: %v", ans)
	}
}

func TestFacadeCapture(t *testing.T) {
	m := tm.EvenLength([]string{"zero", "one"})
	th, err := CompileATM(m, 1, []string{"zero", "one"})
	if err != nil {
		t.Fatal(err)
	}
	d, err := EncodeWord([]string{"one", "zero"}, 1, []string{"zero", "one"})
	if err != nil {
		t.Fatal(err)
	}
	res, err := Chase(th, d, ChaseOptions{Variant: Restricted, MaxDepth: 12, MaxFacts: 100_000})
	if err != nil {
		t.Fatal(err)
	}
	if !res.Entails(NewAtom(AcceptRel)) {
		t.Error("even-length word must be accepted")
	}
}

func TestFacadeStratified(t *testing.T) {
	th, err := ParseTheory(`
		Start(X) -> Reach(X).
		Reach(X), E(X,Y) -> Reach(Y).
		Node(X), not Reach(X) -> Unreach(X).
	`)
	if err != nil {
		t.Fatal(err)
	}
	facts, _ := ParseFacts(`Start(a). E(a,b). Node(a). Node(b). Node(c).`)
	db, exact, err := EvalStratified(th, NewDatabase(facts...), ChaseOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if !exact {
		t.Error("finite program must evaluate exactly")
	}
	if !db.Has(NewAtom("Unreach", Const("c"))) {
		t.Error("Unreach(c) must hold")
	}
}

func TestFacadeTermination(t *testing.T) {
	terminating, _ := ParseTheory(`A(X) -> exists Y. R(X,Y).`)
	if !ChaseTerminates(terminating) {
		t.Error("acyclic theory must be recognized")
	}
	looping, _ := ParseTheory(`Person(X) -> exists Y. hasParent(X,Y). hasParent(X,Y) -> Person(Y).`)
	if ChaseTerminates(looping) {
		t.Error("the ancestor loop must be flagged")
	}
}

func TestFacadeCore(t *testing.T) {
	atoms := []Atom{
		NewAtom("R", Const("a"), Const("b")),
		{Relation: "R", Args: []Term{Const("a"), {Kind: 1, Name: "n1"}}},
	}
	got, exact := CoreOf(atoms)
	if !exact || len(got) != 1 {
		t.Errorf("core: %v exact=%v", got, exact)
	}
}

func TestFacadeCQContainment(t *testing.T) {
	q1, err := ParseCQ(`E(X,Y), E(Y,Z) -> Ans(X).`)
	if err != nil {
		t.Fatal(err)
	}
	q2, err := ParseCQ(`E(X,W) -> Ans(X).`)
	if err != nil {
		t.Fatal(err)
	}
	ok, err := CQContained(q1, q2)
	if err != nil || !ok {
		t.Errorf("2-path must be contained in 1-path: %v %v", ok, err)
	}
}

func TestFacadeGoalDirected(t *testing.T) {
	th, _ := ParseTheory(`
		Par(X,Y) -> Anc(X,Y).
		Par(X,Z), Anc(Z,Y) -> Anc(X,Y).
	`)
	facts, _ := ParseFacts(`Par(a,b). Par(b,c). Par(x,y).`)
	ans, err := AnswersGoalDirected(th, NewAtom("Anc", Const("a"), Var("Y")), NewDatabase(facts...))
	if err != nil {
		t.Fatal(err)
	}
	if len(ans) != 2 {
		t.Errorf("descendants of a: %v", ans)
	}
}
