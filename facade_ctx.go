package guardedrules

import (
	"context"
	"fmt"
	"time"

	"guardedrules/internal/annotate"
	"guardedrules/internal/chase"
	"guardedrules/internal/classify"
	"guardedrules/internal/datalog"
	"guardedrules/internal/hom"
	"guardedrules/internal/kb"
	"guardedrules/internal/normalize"
	"guardedrules/internal/rewrite"
	"guardedrules/internal/saturate"
	"guardedrules/internal/stratified"
)

// Options is the unified, context-first configuration of every facade
// entry point (the v2 API). It merges the per-engine option structs the
// v1 facade grew (ChaseOptions, DatalogOptions, TranslateOptions) into a
// single value that every *Ctx function accepts.
//
// Resource limits have exactly one code path: the Max* fields and
// Timeout below are routed into an internal/budget budget (together
// with the call's context), so exhausting any of them returns the
// partial result alongside a typed *BudgetError — there is no separate
// soft-truncating integer path in the v2 API. DESIGN.md §6 documents
// the mapping from the legacy v1 fields. The zero value means
// "ungoverned engine defaults".
type Options struct {
	// Variant selects the chase flavor (Oblivious or Restricted) for the
	// chase-backed entry points. The zero value is Oblivious, matching
	// the paper's Section 2 chase; query answering typically wants
	// Restricted.
	Variant Variant
	// MaxDepth bounds the chase null-creation depth. Unlike the resource
	// ceilings below it is a semantic under-approximation bound
	// (truncation is recorded on the result, never returned as an
	// error); 0 means unbounded.
	MaxDepth int
	// Workers is the per-round worker count of the parallel engines
	// (0 = all CPUs for Datalog evaluation, sequential for the chase).
	Workers int

	// Timeout is the wall-clock budget of the run; 0 means none.
	// Exceeding it returns the partial result with ErrDeadline.
	Timeout time.Duration
	// MaxFacts caps derived facts (ErrFactLimit). 0 = engine default.
	MaxFacts int
	// MaxRules caps rules emitted by the translations (ErrRuleLimit).
	// 0 = engine default.
	MaxRules int
	// MaxRounds caps fixpoint rounds (ErrRoundLimit). 0 = engine default.
	MaxRounds int
	// MaxSteps caps elementary steps: chase trigger applications,
	// saturation inferences, core candidate endomorphisms (ErrStepLimit).
	// 0 = unbounded.
	MaxSteps int

	// Budget, when non-nil, is merged under the fields above: its unset
	// fields are filled from Timeout/Max* and the call's context. Most
	// callers leave it nil and use the flat fields.
	Budget *Budget
}

// budget resolves the effective budget of a call: the explicit Budget
// (if any) with unset fields filled from the flat Options fields, and
// the call's context wired in as the cancellation source. A nil return
// means the run is ungoverned.
func (o Options) budget(ctx context.Context) *Budget {
	var b Budget
	if o.Budget != nil {
		b = *o.Budget
	}
	if b.Ctx == nil && ctx != nil && ctx != context.Background() {
		b.Ctx = ctx
	}
	if b.Timeout == 0 {
		b.Timeout = o.Timeout
	}
	if b.MaxFacts == 0 {
		b.MaxFacts = o.MaxFacts
	}
	if b.MaxRules == 0 {
		b.MaxRules = o.MaxRules
	}
	if b.MaxRounds == 0 {
		b.MaxRounds = o.MaxRounds
	}
	if b.MaxSteps == 0 {
		b.MaxSteps = o.MaxSteps
	}
	if b.Ctx == nil && b.Timeout == 0 && b.MaxFacts == 0 && b.MaxRules == 0 &&
		b.MaxRounds == 0 && b.MaxSteps == 0 && b.FailAtCheckpoint == 0 {
		return nil
	}
	return &b
}

// chaseOptions lowers Options onto the chase engine. All limits travel
// through the budget (typed errors), never the legacy soft ints.
func (o Options) chaseOptions(ctx context.Context) ChaseOptions {
	return ChaseOptions{
		Variant:  o.Variant,
		MaxDepth: o.MaxDepth,
		Workers:  o.Workers,
		Budget:   o.budget(ctx),
	}
}

// datalogOptions lowers Options onto the semi-naive Datalog engine.
func (o Options) datalogOptions(ctx context.Context) DatalogOptions {
	return DatalogOptions{
		Workers: o.Workers,
		Budget:  o.budget(ctx),
	}
}

// translateOptions lowers Options onto the translation engines.
func (o Options) translateOptions(ctx context.Context) rewrite.Options {
	return rewrite.Options{Budget: o.budget(ctx)}
}

func (o Options) saturateOptions(ctx context.Context) saturate.Options {
	return saturate.Options{Budget: o.budget(ctx)}
}

// ChaseCtx runs the chase of D with Σ (Section 2) under the context and
// unified options. Existential theories may have infinite chases; bound
// the run with MaxDepth (semantic truncation) or the resource limits
// (typed *BudgetError with the partial result attached).
func ChaseCtx(ctx context.Context, th *Theory, d *Database, opts Options) (res *ChaseResult, err error) {
	defer recoverToError(&err)
	return chase.Run(th, d, opts.chaseOptions(ctx))
}

// EvalDatalogCtx computes the stratified fixpoint of a Datalog program
// with the parallel semi-naive engine under the context and unified
// options. On budget exhaustion it returns the facts of completed
// rounds alongside a typed *BudgetError.
func EvalDatalogCtx(ctx context.Context, th *Theory, d *Database, opts Options) (out *Database, err error) {
	defer recoverToError(&err)
	return datalog.EvalSemiNaiveOpts(th, d, opts.datalogOptions(ctx))
}

// AnswersCtx evaluates the query (Σ, Q) for a Datalog Σ over D under the
// context and unified options. On budget exhaustion the answers of the
// partial fixpoint are returned (a sound under-approximation) alongside
// the typed error.
func AnswersCtx(ctx context.Context, th *Theory, q string, d *Database, opts Options) (ans [][]Term, err error) {
	defer recoverToError(&err)
	return datalog.AnswersOpts(th, q, d, opts.datalogOptions(ctx))
}

// AnswerCQCtx answers a conjunctive query over a database enriched with
// a weakly frontier-guarded theory, by bounded chase (Section 7), under
// the context and unified options. The boolean result reports whether
// the chase saturated (answers are then exact; otherwise they are a
// sound under-approximation).
func AnswerCQCtx(ctx context.Context, th *Theory, q CQ, d *Database, opts Options) (ans [][]Term, exact bool, err error) {
	defer recoverToError(&err)
	return kb.AnswerByChase(th, q, d, opts.chaseOptions(ctx))
}

// AnswersGoalDirectedCtx evaluates a Datalog query with the magic-sets
// rewriting under the context and unified options: bottom-up evaluation
// restricted to the facts relevant to the query's bound constants.
func AnswersGoalDirectedCtx(ctx context.Context, th *Theory, query Atom, d *Database, opts Options) (ans [][]Term, err error) {
	defer recoverToError(&err)
	ans, _, err = datalog.AnswerWithMagicOpts(th, query, d, opts.datalogOptions(ctx))
	return ans, err
}

// EvalStratifiedCtx evaluates a stratified existential theory
// (Definition 23) under the context and unified options. On budget
// exhaustion the partially chased database is returned (exact = false)
// with the error.
func EvalStratifiedCtx(ctx context.Context, th *Theory, d *Database, opts Options) (out *Database, exact bool, err error) {
	defer recoverToError(&err)
	res, err := stratified.Eval(th, d, stratified.Options{Chase: opts.chaseOptions(ctx)})
	if err != nil {
		if IsBudgetError(err) && res != nil {
			return res.DB, false, err
		}
		return nil, false, err
	}
	return res.DB, !res.Truncated, nil
}

// Target names a translation target of TranslateCtx.
type Target int

const (
	// ToNearlyGuarded is rew(Σ) of Theorem 1 / Proposition 4: a (nearly)
	// frontier-guarded theory becomes nearly guarded with the same ground
	// atomic consequences over Σ's signature.
	ToNearlyGuarded Target = iota
	// ToWeaklyGuarded is rew(Σ) of Theorem 2 for weakly frontier-guarded
	// theories. TranslateCtx returns the rewritten theory only; use
	// TranslateWFGCtx when you need the Reorder mapping that queries over
	// the result require.
	ToWeaklyGuarded
	// ToDatalog is dat(Σ) of Theorem 3 / Proposition 6, routed by
	// fragment: nearly guarded theories saturate directly, (nearly)
	// frontier-guarded ones are first rewritten to nearly guarded.
	ToDatalog
)

func (t Target) String() string {
	switch t {
	case ToNearlyGuarded:
		return "nearly-guarded"
	case ToWeaklyGuarded:
		return "weakly-guarded"
	case ToDatalog:
		return "datalog"
	default:
		return fmt.Sprintf("Target(%d)", int(t))
	}
}

// TranslateCtx runs the paper's translations under the context and
// unified options, routing by fragment where the target allows several
// chains. On budget exhaustion the partial theory built so far is
// returned with a typed *BudgetError.
func TranslateCtx(ctx context.Context, th *Theory, to Target, opts Options) (out *Theory, err error) {
	defer recoverToError(&err)
	switch to {
	case ToNearlyGuarded:
		out, _, err = rewrite.Rewrite(normalize.Normalize(th), opts.translateOptions(ctx))
		return out, err
	case ToWeaklyGuarded:
		res, err := annotate.RewriteWFG(th, opts.translateOptions(ctx))
		if res == nil {
			return nil, err
		}
		return res.Rewritten, err
	case ToDatalog:
		if classify.Classify(th).Member[classify.NearlyGuarded] {
			out, _, err = saturate.NearlyGuardedToDatalog(th, opts.saturateOptions(ctx))
			return out, err
		}
		ng, _, err := rewrite.Rewrite(normalize.Normalize(th), opts.translateOptions(ctx))
		if err != nil {
			return ng, err
		}
		out, _, err = saturate.NearlyGuardedToDatalog(ng, opts.saturateOptions(ctx))
		return out, err
	default:
		return nil, fmt.Errorf("guardedrules: unknown translation target %v", to)
	}
}

// TranslateWFGCtx computes rew(Σ) of Theorem 2 with the full result:
// the rewritten weakly guarded theory plus the Reorder mapping that
// databases and queries over it require.
func TranslateWFGCtx(ctx context.Context, th *Theory, opts Options) (res *WFGResult, err error) {
	defer recoverToError(&err)
	return annotate.RewriteWFG(th, opts.translateOptions(ctx))
}

// CoreOfCtx minimizes an instance to its core under the context and
// unified options: the smallest homomorphically equivalent sub-instance
// (constants fixed, nulls mappable). The boolean reports whether the
// endomorphism search was exhaustive; on budget exhaustion the (sound)
// current set is returned with exact=false and a typed *BudgetError.
// MaxSteps caps the candidate endomorphisms inspected.
func CoreOfCtx(ctx context.Context, atoms []Atom, opts Options) (result []Atom, exact bool, err error) {
	defer recoverToError(&err)
	return hom.CoreOpts(atoms, hom.CoreOptions{Budget: opts.budget(ctx)})
}
