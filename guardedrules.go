// Package guardedrules is a library for reasoning with guarded existential
// rule languages, reproducing "Expressiveness of Guarded Existential Rule
// Languages" (Gottlob, Rudolph, Šimkus; PODS 2014).
//
// It provides:
//
//   - a textual rule language and parser for existential rules (Datalog± /
//     tuple-generating dependencies) with stratified negation;
//   - the guardedness taxonomy of the paper — guarded, frontier-guarded,
//     weakly and nearly (frontier-)guarded theories — via affected-position
//     analysis (Definitions 1–3);
//   - the chase (oblivious and restricted) with fair scheduling and
//     budgets, and the chase-tree construction of Section 4;
//   - the paper's translations: frontier-guarded → nearly guarded
//     (Theorem 1), nearly frontier-guarded → nearly guarded
//     (Proposition 4), weakly frontier-guarded → weakly guarded
//     (Theorem 2), guarded/nearly guarded → Datalog (Theorem 3,
//     Proposition 6), and the ACDom axiomatization (Proposition 5);
//   - a semi-naive Datalog engine with stratified negation;
//   - conjunctive query answering over rule-enriched databases, including
//     the Section 7 pipeline;
//   - the EXPTIME capture machinery of Section 8: string databases,
//     alternating Turing machines compiled to weakly guarded theories
//     (Theorem 4), and the stratified Σsucc construction capturing
//     EXPTIME Boolean queries (Theorem 5).
//
// The subpackages under internal/ hold the implementation; this package
// re-exports the stable surface.
package guardedrules

import (
	"context"
	"fmt"

	"guardedrules/internal/annotate"
	"guardedrules/internal/budget"
	"guardedrules/internal/capture"
	"guardedrules/internal/chase"
	"guardedrules/internal/classify"
	"guardedrules/internal/core"
	"guardedrules/internal/database"
	"guardedrules/internal/datalog"
	"guardedrules/internal/kb"
	"guardedrules/internal/lint"
	"guardedrules/internal/normalize"
	"guardedrules/internal/parser"
	"guardedrules/internal/rewrite"
	"guardedrules/internal/saturate"
	"guardedrules/internal/termination"
	"guardedrules/internal/tm"
)

// Core syntactic types.
type (
	// Term is a constant, labeled null or variable.
	Term = core.Term
	// Atom is a relational atom, possibly with an annotated relation name.
	Atom = core.Atom
	// Rule is an existential rule with optional negated body literals.
	Rule = core.Rule
	// Theory is a finite set of rules.
	Theory = core.Theory
	// Database is an indexed set of ground atoms.
	Database = database.Database
	// Fragment is a rule language of Figure 1 of the paper.
	Fragment = classify.Fragment
	// ClassReport describes fragment membership of a theory.
	ClassReport = classify.Report
	// ChaseOptions bounds a chase run.
	//
	// Deprecated: use the unified Options with ChaseCtx. Since v2 the
	// facade wrappers taking ChaseOptions delegate to the *Ctx path:
	// the Max* integers are routed through a Budget, so exhausting one
	// returns the partial result with a typed *BudgetError instead of
	// the retired soft truncation (Truncated + Reason, nil error).
	// MaxDepth is unaffected — it stays the semantic truncation bound.
	ChaseOptions = chase.Options
	// ChaseResult is the outcome of a chase run.
	ChaseResult = chase.Result
	// Variant selects the chase flavor (Oblivious or Restricted).
	Variant = chase.Variant
	// CQ is a conjunctive query.
	CQ = kb.CQ
	// ATM is an alternating Turing machine.
	ATM = tm.ATM
	// Diagnostic is a positioned static-analysis finding.
	Diagnostic = lint.Diagnostic
	// Budget bounds a governed engine run: an optional context and
	// wall-clock timeout plus resource ceilings (facts, rules, rounds,
	// steps). A nil *Budget means ungoverned. On exhaustion engines return
	// their partial result together with a typed *BudgetError.
	Budget = budget.T
	// BudgetUsage is a snapshot of the resources a governed run consumed.
	BudgetUsage = budget.Usage
	// BudgetError is the error engines return on budget exhaustion; it
	// wraps one of the Err* sentinels and carries a BudgetUsage snapshot.
	BudgetError = budget.Error
)

// Budget exhaustion sentinels; match with errors.Is. ErrCanceled also
// matches context.Canceled, and ErrDeadline matches
// context.DeadlineExceeded.
var (
	ErrCanceled   = budget.ErrCanceled
	ErrDeadline   = budget.ErrDeadline
	ErrFactLimit  = budget.ErrFactLimit
	ErrRuleLimit  = budget.ErrRuleLimit
	ErrRoundLimit = budget.ErrRoundLimit
	ErrStepLimit  = budget.ErrStepLimit
	ErrDepthLimit = budget.ErrDepthLimit
)

// IsBudgetError reports whether err (or anything it wraps) is a budget
// exhaustion or cancellation error. Engines returning such an error still
// return a well-formed partial result.
func IsBudgetError(err error) bool { return budget.IsBudget(err) }

// recoverToError converts a panic escaping an engine into a returned
// error, so library callers never crash on malformed internal state. The
// parser's MustParse* helpers intentionally panic and are not routed
// through this boundary.
func recoverToError(err *error) {
	if r := recover(); r != nil {
		*err = fmt.Errorf("guardedrules: internal panic: %v", r)
	}
}

// Fragments of Figure 1.
const (
	Datalog               = classify.Datalog
	Guarded               = classify.Guarded
	FrontierGuarded       = classify.FrontierGuarded
	NearlyGuarded         = classify.NearlyGuarded
	NearlyFrontierGuarded = classify.NearlyFrontierGuarded
	WeaklyGuarded         = classify.WeaklyGuarded
	WeaklyFrontierGuarded = classify.WeaklyFrontierGuarded
)

// Chase variants.
const (
	Oblivious  = chase.Oblivious
	Restricted = chase.Restricted
)

// Const returns the constant with the given name.
func Const(name string) Term { return core.Const(name) }

// Var returns the variable with the given name.
func Var(name string) Term { return core.Var(name) }

// NewAtom builds an atom.
func NewAtom(rel string, args ...Term) Atom { return core.NewAtom(rel, args...) }

// ParseTheory parses a theory from the textual rule syntax, e.g.
//
//	Publication(X) -> exists K1,K2. Keywords(X,K1,K2).
//	Node(X), not Red(X) -> Green(X).
func ParseTheory(src string) (*Theory, error) { return parser.ParseTheory(src) }

// ParseFacts parses ground facts, e.g. "R(a,b). S(c).".
func ParseFacts(src string) ([]Atom, error) { return parser.ParseFacts(src) }

// NewDatabase builds a database from ground atoms.
func NewDatabase(facts ...Atom) *Database { return database.FromAtoms(facts) }

// PrintTheory renders a theory in parseable syntax.
func PrintTheory(th *Theory) string { return parser.PrintTheory(th) }

// Classify reports the Figure 1 fragments the theory belongs to.
func Classify(th *Theory) *ClassReport { return classify.Classify(th) }

// Lint runs the full static-analysis registry over the theory: fragment
// membership explainers, safety, negation stratifiability, chase
// termination, and hygiene checks. Diagnostics come back sorted by
// source position.
func Lint(th *Theory) []Diagnostic { return lint.Run(th) }

// Normalize brings a theory into the normal form of Proposition 1:
// singleton heads, guarded existential rules, constants isolated.
func Normalize(th *Theory) *Theory { return normalize.Normalize(th) }

// legacyOptions lifts a v1 ChaseOptions onto the unified v2 Options:
// Variant, MaxDepth (still the semantic truncation bound) and Workers
// carry over unchanged, while the soft Max* integers become budget
// ceilings with typed exhaustion errors. DESIGN.md §6 documents the
// mapping.
func legacyOptions(o ChaseOptions) Options {
	return Options{
		Variant:   o.Variant,
		MaxDepth:  o.MaxDepth,
		Workers:   o.Workers,
		MaxFacts:  o.MaxFacts,
		MaxRounds: o.MaxRounds,
		Budget:    o.Budget,
	}
}

// Chase runs the chase of D with Σ (Section 2). Existential theories may
// have infinite chases; use MaxDepth, or the resource ceilings for typed
// exhaustion errors with partial results.
//
// Deprecated: use ChaseCtx. This wrapper delegates to it: the options'
// soft-truncating Max* semantics are retired, limits now exhaust with a
// typed *BudgetError and the partial result.
func Chase(th *Theory, d *Database, opts ChaseOptions) (*ChaseResult, error) {
	return ChaseCtx(context.Background(), th, d, legacyOptions(opts))
}

// TranslateOptions bounds the exponential translations.
//
// Deprecated: use the unified Options with TranslateCtx; its MaxRules
// and Timeout fields are routed through the Budget. The wrappers taking
// TranslateOptions now perform exactly that mapping, so there is one
// limits code path.
type TranslateOptions struct {
	// MaxRules caps intermediate rule counts (0 = defaults). Hitting the
	// cap returns an error wrapping ErrRuleLimit.
	MaxRules int
	// Budget, when non-nil, governs the translation; on exhaustion the
	// partial theory built so far is returned with a typed *BudgetError.
	Budget *Budget
}

// options lifts the legacy translate options onto the v2 Options.
func (o TranslateOptions) options() Options {
	return Options{MaxRules: o.MaxRules, Budget: o.Budget}
}

// FrontierGuardedToNearlyGuarded computes rew(Σ) of Theorem 1 /
// Proposition 4 for a (nearly) frontier-guarded theory: a nearly guarded
// theory with the same ground atomic consequences over Σ's signature. The
// input is normalized automatically.
//
// Deprecated: use TranslateCtx(ctx, th, ToNearlyGuarded, opts). This
// wrapper delegates to it, routing MaxRules through the Budget.
func FrontierGuardedToNearlyGuarded(th *Theory, opts TranslateOptions) (*Theory, error) {
	return TranslateCtx(context.Background(), th, ToNearlyGuarded, opts.options())
}

// WFGResult is the outcome of the Theorem 2 translation; queries must be
// evaluated against databases reordered with Reorder.
type WFGResult = annotate.Result

// WeaklyFrontierGuardedToWeaklyGuarded computes rew(Σ) of Theorem 2.
//
// Deprecated: use TranslateWFGCtx. This wrapper delegates to it,
// routing MaxRules through the Budget.
func WeaklyFrontierGuardedToWeaklyGuarded(th *Theory, opts TranslateOptions) (*WFGResult, error) {
	return TranslateWFGCtx(context.Background(), th, opts.options())
}

// GuardedToDatalog computes dat(Σ) of Theorem 3 for a guarded theory.
//
// Deprecated: use TranslateCtx(ctx, th, ToDatalog, opts). This wrapper
// keeps the direct Theorem 3 saturation (no nearly-guarded detour) but
// routes its limits through the v2 Budget path like TranslateCtx does.
func GuardedToDatalog(th *Theory, opts TranslateOptions) (out *Theory, err error) {
	defer recoverToError(&err)
	out, _, err = saturate.Datalog(th, opts.options().saturateOptions(context.Background()))
	return out, err
}

// NearlyGuardedToDatalog translates a nearly guarded theory into Datalog
// (Proposition 6).
//
// Deprecated: use TranslateCtx(ctx, th, ToDatalog, opts). This wrapper
// delegates to the same Proposition 6 saturation, routing its limits
// through the v2 Budget path.
func NearlyGuardedToDatalog(th *Theory, opts TranslateOptions) (out *Theory, err error) {
	defer recoverToError(&err)
	out, _, err = saturate.NearlyGuardedToDatalog(th, opts.options().saturateOptions(context.Background()))
	return out, err
}

// AxiomatizeACDom computes Σ* of Proposition 5, eliminating the built-in
// active-domain relation; queries move from Q to Q+"_star".
func AxiomatizeACDom(th *Theory) *Theory { return rewrite.Axiomatize(th) }

// EvalDatalog computes the stratified fixpoint of a Datalog program with
// the parallel semi-naive engine at its default worker count (all CPUs).
//
// Deprecated: use EvalDatalogCtx. This wrapper delegates to it.
func EvalDatalog(th *Theory, d *Database) (*Database, error) {
	return EvalDatalogCtx(context.Background(), th, d, Options{})
}

// DatalogOptions configures the semi-naive Datalog engine: the per-round
// worker count (0 = all CPUs, 1 = sequential) and the round budget. The
// derived fact set is identical for every worker count.
//
// Deprecated: use the unified Options with EvalDatalogCtx/AnswersCtx.
type DatalogOptions = datalog.Options

// EvalDatalogOpts computes the stratified fixpoint with explicit engine
// options; a Budget in opts makes the run cancellable, returning the
// facts of completed rounds alongside a typed *BudgetError.
//
// Deprecated: use EvalDatalogCtx with the unified Options. This wrapper
// delegates to the v2 lowering: the soft MaxRounds integer is routed
// through the Budget (ErrRoundLimit with the partial fixpoint); the
// Planner and Stats knobs carry over unchanged.
func EvalDatalogOpts(th *Theory, d *Database, opts DatalogOptions) (out *Database, err error) {
	defer recoverToError(&err)
	o := Options{Workers: opts.Workers, MaxRounds: opts.MaxRounds, Budget: opts.Budget}
	lowered := o.datalogOptions(context.Background())
	lowered.Planner = opts.Planner
	lowered.Stats = opts.Stats
	return datalog.EvalSemiNaiveOpts(th, d, lowered)
}

// Answers evaluates the query (Σ, Q) for a Datalog Σ over D.
//
// Deprecated: use AnswersCtx. This wrapper delegates to it.
func Answers(th *Theory, q string, d *Database) ([][]Term, error) {
	return AnswersCtx(context.Background(), th, q, d, Options{})
}

// AnswerCQ answers a conjunctive query over a database enriched with a
// weakly frontier-guarded theory, by bounded chase (Section 7). The
// boolean result reports whether the chase saturated (answers are then
// exact; otherwise they are a sound under-approximation).
//
// Deprecated: use AnswerCQCtx with the unified Options. This wrapper
// delegates to it: the options' soft Max* truncation is retired, limits
// exhaust with a typed *BudgetError.
func AnswerCQ(th *Theory, q CQ, d *Database, opts ChaseOptions) ([][]Term, bool, error) {
	return AnswerCQCtx(context.Background(), th, q, d, legacyOptions(opts))
}

// EvalStratified evaluates a stratified existential theory (Definition 23)
// with the given per-stratum chase bounds. On budget exhaustion the
// partially chased database is returned (exact = false) with the error.
//
// Deprecated: use EvalStratifiedCtx with the unified Options. This
// wrapper delegates to it: the options' soft Max* truncation is
// retired, limits exhaust with a typed *BudgetError.
func EvalStratified(th *Theory, d *Database, opts ChaseOptions) (*Database, bool, error) {
	return EvalStratifiedCtx(context.Background(), th, d, legacyOptions(opts))
}

// CompileATM compiles an alternating Turing machine into the weakly
// guarded theory Σ_M of Theorem 4 over string databases of degree k; the
// 0-ary relation AcceptRel answers acceptance of w(D).
func CompileATM(m *ATM, k int, alphabet []string) (th *Theory, err error) {
	defer recoverToError(&err)
	return capture.Compile(m, k, alphabet)
}

// AcceptRel is the output relation of CompileATM theories.
const AcceptRel = capture.AcceptRel

// EncodeWord builds the string database of degree k for a word
// (Definition 20).
func EncodeWord(word []string, k int, alphabet []string) (*Database, error) {
	return capture.Encode(word, k, alphabet)
}

// BooleanQuery builds the Theorem 5 stratified weakly guarded theory for a
// Boolean query over a unary signature; BoolRel answers it.
func BooleanQuery(m *ATM, rels []string) (th *Theory, err error) {
	defer recoverToError(&err)
	return capture.BooleanQuery(m, rels)
}

// BoolRel is the output relation of BooleanQuery theories.
const BoolRel = capture.BoolRel

// EvalBoolean evaluates a Theorem 5 theory; steps bounds the machine run
// length on the given database.
func EvalBoolean(th *Theory, d *Database, steps int) (ok bool, err error) {
	defer recoverToError(&err)
	ok, _, err = capture.EvalBoolean(th, d, steps)
	return ok, err
}

// TerminationReport is the acyclicity-hierarchy analysis of a theory:
// the tightest certified class (wa ⊋ ja ⊋ swa), a machine-checkable
// certificate, and for weakly acyclic theories the fact-bound
// coefficients (internal/termination).
type TerminationReport = termination.Report

// TerminationClass names a certified chase-termination class.
type TerminationClass = termination.Class

// AnalyzeTermination runs the layered termination analysis: weak
// acyclicity, joint acyclicity, and the bounded critical-instance check,
// in that order, stopping at the tightest class that certifies. The
// report's Certificate re-verifies against the theory without trusting
// the analyzer; its Class covers the restricted chase variant (the
// critical-instance class additionally covers the oblivious variant).
func AnalyzeTermination(th *Theory) *TerminationReport { return termination.Analyze(th) }

// ChaseCertified chases d to saturation with no fact or round ceiling —
// for theories whose termination AnalyzeTermination certified. bound,
// when positive, is the certificate's priced fact bound and is asserted:
// failing to saturate within it is reported as a certificate violation.
// Pass 0 when the certificate proves finiteness without pricing it.
// Callers must use the chase variant the certificate covers (Restricted
// for wa/ja; either for the critical-instance class).
func ChaseCertified(th *Theory, d *Database, bound int, opts ChaseOptions) (res *ChaseResult, err error) {
	defer recoverToError(&err)
	return chase.RunCertified(th, d, bound, opts)
}

// ChaseTerminates reports whether the chase of th terminates on every
// database by the weak-acyclicity criterion (sound, not complete: a false
// answer does not prove non-termination).
func ChaseTerminates(th *Theory) bool { return termination.IsWeaklyAcyclic(th) }

// CoreOf minimizes an instance to its core: the smallest homomorphically
// equivalent sub-instance (constants fixed, nulls mappable). The second
// result reports whether the search was exhaustive.
//
// Deprecated: use CoreOfCtx, which accepts a budget so core
// computation on large instances is cancellable like every other
// engine. This wrapper delegates to it ungoverned (the default
// candidate cap only).
func CoreOf(atoms []Atom) ([]Atom, bool) {
	result, exact, _ := CoreOfCtx(context.Background(), atoms, Options{})
	return result, exact
}

// ParseCQ parses a conjunctive query written as a rule whose head lists
// the answer variables, e.g. "R(X,Y), S(Y) -> Ans(X).".
func ParseCQ(src string) (CQ, error) { return kb.ParseCQ(src) }

// CQContained reports q1 ⊑ q2 (every answer of q1 is an answer of q2 on
// every database) via the Chandra–Merlin homomorphism criterion.
func CQContained(q1, q2 CQ) (bool, error) { return q1.ContainedIn(q2) }

// AnswersGoalDirected evaluates a Datalog query with the magic-sets
// rewriting: bottom-up evaluation restricted to the facts relevant to the
// query's bound constants. The query atom mixes constants (bound) and
// variables (free); answers are full tuples of the query relation.
//
// Deprecated: use AnswersGoalDirectedCtx. This wrapper delegates to it.
func AnswersGoalDirected(th *Theory, query Atom, d *Database) ([][]Term, error) {
	return AnswersGoalDirectedCtx(context.Background(), th, query, d, Options{})
}
