package guardedrules

// One benchmark per experiment of DESIGN.md (E1–E12), each regenerating
// the corresponding table/figure artifact of the paper at benchmark
// scale. Run with: go test -bench=. -benchmem
//
// Absolute numbers are this implementation's; the paper proves the
// translations' correctness and complexity, and the shapes to check are:
// answer preservation on every instance, at most single-exponential
// expansion for rew, potentially double-exponential saturation for dat,
// polynomial evaluation for the Datalog-expressible fragments, and
// super-polynomial growth of the Σsucc ordering forest.

import (
	"encoding/json"
	"fmt"
	"os"
	"runtime"
	"testing"
	"time"

	"guardedrules/internal/annotate"
	"guardedrules/internal/capture"
	"guardedrules/internal/chase"
	"guardedrules/internal/classify"
	"guardedrules/internal/core"
	"guardedrules/internal/database"
	"guardedrules/internal/datalog"
	"guardedrules/internal/gen"
	"guardedrules/internal/hom"
	"guardedrules/internal/kb"
	"guardedrules/internal/normalize"
	"guardedrules/internal/parser"
	"guardedrules/internal/rewrite"
	"guardedrules/internal/saturate"
	"guardedrules/internal/stratified"
	"guardedrules/internal/termination"
	"guardedrules/internal/tm"
)

const sigmaPBench = `
Publication(X) -> exists K1,K2. Keywords(X,K1,K2).
Keywords(X,K1,K2) -> hasTopic(X,K1).
hasTopic(X,Z), hasAuthor(X,U), hasAuthor(Y,U),
  hasTopic(Y,Z2), Scientific(Z2), citedIn(Y,X) -> Scientific(Z).
hasAuthor(X,Y), hasTopic(X,Z), Scientific(Z) -> Q(Y).
`

const exampleSevenBench = `
A(X) -> exists Y. R(X,Y).
R(X,Y) -> S(Y,Y).
S(X,Y) -> exists Z. T(X,Y,Z).
T(X,X,Y) -> B(X).
C(X), R(X,Y), B(Y) -> D(X).
`

// BenchmarkE1FrontierGuardedToNearlyGuarded measures the Theorem 1
// translation of Σp (the expansion is database-independent).
func BenchmarkE1FrontierGuardedToNearlyGuarded(b *testing.B) {
	th := normalize.Normalize(parser.MustParseTheory(sigmaPBench))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		rew, _, err := rewrite.Rewrite(th.Clone(), rewrite.Options{})
		if err != nil {
			b.Fatal(err)
		}
		if !classify.Classify(rew).Member[classify.NearlyGuarded] {
			b.Fatal("not nearly guarded")
		}
	}
}

// BenchmarkE1AnswerPreservation chases Σp and rew(Σp) on citation graphs.
func BenchmarkE1AnswerPreservation(b *testing.B) {
	orig := parser.MustParseTheory(sigmaPBench)
	rew, _, err := rewrite.Rewrite(normalize.Normalize(orig), rewrite.Options{})
	if err != nil {
		b.Fatal(err)
	}
	for _, n := range []int{4, 8, 16} {
		b.Run(fmt.Sprintf("n=%d", n), func(b *testing.B) {
			d := gen.CitationGraph(n)
			for i := 0; i < b.N; i++ {
				r1, err := chase.Run(orig, d, chase.Options{Variant: chase.Restricted, MaxDepth: 6, MaxFacts: 2_000_000})
				if err != nil {
					b.Fatal(err)
				}
				r2, err := chase.Run(rew, d, chase.Options{Variant: chase.Restricted, MaxDepth: 6, MaxFacts: 2_000_000})
				if err != nil {
					b.Fatal(err)
				}
				a1 := datalog.CollectAnswers(r1.DB, "Q")
				a2 := datalog.CollectAnswers(r2.DB, "Q")
				if ok, diff := datalog.SameAnswers(a1, a2); !ok {
					b.Fatal(diff)
				}
			}
		})
	}
}

// BenchmarkE2NearlyFrontierGuarded exercises the Definition 14
// passthrough: existential core plus transitive-closure periphery.
func BenchmarkE2NearlyFrontierGuarded(b *testing.B) {
	th := normalize.Normalize(parser.MustParseTheory(`
		A(X) -> exists Y. R(X,Y).
		E(X,Y) -> T(X,Y).
		T(X,Y), T(Y,Z) -> T(X,Z).
	`))
	rew, _, err := rewrite.Rewrite(th, rewrite.Options{})
	if err != nil {
		b.Fatal(err)
	}
	d := gen.Path(32)
	for i := 0; i < 32; i++ {
		d.Add(core.NewAtom("A", core.Const(fmt.Sprintf("v%d", i))))
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		res, err := chase.Run(rew, d, chase.Options{Variant: chase.Restricted, MaxDepth: 3, MaxFacts: 2_000_000})
		if err != nil {
			b.Fatal(err)
		}
		if !res.Entails(core.NewAtom("T", core.Const("v0"), core.Const("v31"))) {
			b.Fatal("transitive closure lost")
		}
	}
}

// BenchmarkE3WeaklyFrontierGuarded measures the Theorem 2 translation and
// its evaluation.
func BenchmarkE3WeaklyFrontierGuarded(b *testing.B) {
	th := parser.MustParseTheory(`
		A(X) -> exists Y. R(Y,X).
		R(Y,X), B(X) -> S(Y).
		R(Y,X), S(Y) -> Hit(X).
	`)
	b.Run("translate", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if _, err := annotate.RewriteWFG(th, rewrite.Options{}); err != nil {
				b.Fatal(err)
			}
		}
	})
	res, err := annotate.RewriteWFG(th, rewrite.Options{})
	if err != nil {
		b.Fatal(err)
	}
	b.Run("evaluate", func(b *testing.B) {
		d := database.New()
		for i := 0; i < 16; i++ {
			c := core.Const(fmt.Sprintf("c%d", i))
			d.Add(core.NewAtom("A", c))
			if i%2 == 0 {
				d.Add(core.NewAtom("B", c))
			}
		}
		dRe := res.Reorder.Database(d)
		for i := 0; i < b.N; i++ {
			r, err := chase.Run(res.Rewritten, dRe, chase.Options{Variant: chase.Restricted, MaxDepth: 5, MaxFacts: 2_000_000})
			if err != nil {
				b.Fatal(err)
			}
			if len(datalog.CollectAnswers(r.DB, "Hit")) != 8 {
				b.Fatal("wrong answers")
			}
		}
	})
}

// BenchmarkE4GuardedToDatalog saturates Example 7 and random guarded
// theories of growing size (the paper's worst case is double exponential).
func BenchmarkE4GuardedToDatalog(b *testing.B) {
	b.Run("example7", func(b *testing.B) {
		th := parser.MustParseTheory(exampleSevenBench)
		for i := 0; i < b.N; i++ {
			if _, _, err := saturate.Datalog(th, saturate.Options{}); err != nil {
				b.Fatal(err)
			}
		}
	})
	for _, n := range []int{4, 8, 12} {
		b.Run(fmt.Sprintf("random-%drules", n), func(b *testing.B) {
			th := gen.RandomGuardedTheory(n, int64(n))
			for i := 0; i < b.N; i++ {
				if _, _, err := saturate.Datalog(th, saturate.Options{}); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkE5NearlyGuardedToDatalog measures Proposition 6 end to end.
func BenchmarkE5NearlyGuardedToDatalog(b *testing.B) {
	th := parser.MustParseTheory(`
		A(X) -> exists Y. R(X,Y).
		R(X,Y) -> B(X).
		E(X,Y) -> T(X,Y).
		T(X,Y), T(Y,Z) -> T(X,Z).
		T(X,Y), B(X), B(Y) -> Linked(X,Y).
	`)
	dat, _, err := saturate.NearlyGuardedToDatalog(th, saturate.Options{})
	if err != nil {
		b.Fatal(err)
	}
	d := gen.Path(24)
	for i := 0; i < 24; i++ {
		d.Add(core.NewAtom("A", core.Const(fmt.Sprintf("v%d", i))))
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := datalog.Eval(dat, d); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkE6NormalizeAndChaseTree measures Proposition 1 normalization
// and the chase-tree construction with Proposition 2 verification.
func BenchmarkE6NormalizeAndChaseTree(b *testing.B) {
	th := gen.RandomFrontierGuardedTheory(gen.FGTheoryOptions{Rules: 6, Seed: 3})
	d := gen.ABDatabase(8, 3)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		norm := normalize.Normalize(th.Clone())
		tree, _, err := chase.RunTree(norm, d, chase.Options{Variant: chase.Oblivious, MaxDepth: 4, MaxFacts: 100_000})
		if err != nil {
			b.Fatal(err)
		}
		if err := tree.VerifyProposition2(norm, d); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkE7CaptureStringQueries measures Theorem 4: compile once, then
// decide words by chasing the compiled weakly guarded theory.
func BenchmarkE7CaptureStringQueries(b *testing.B) {
	alpha := []string{"zero", "one"}
	m := tm.EvenCount("one", alpha)
	th, err := capture.Compile(m, 1, alpha)
	if err != nil {
		b.Fatal(err)
	}
	for _, n := range []int{3, 5, 7} {
		b.Run(fmt.Sprintf("len=%d", n), func(b *testing.B) {
			word := make([]string, n)
			for i := range word {
				word[i] = alpha[i%2]
			}
			db, err := capture.Encode(word, 1, alpha)
			if err != nil {
				b.Fatal(err)
			}
			want, err := m.Accepts(word, 0)
			if err != nil {
				b.Fatal(err)
			}
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				r, err := chase.Run(th, db, chase.Options{Variant: chase.Restricted, MaxDepth: 3*n + 6, MaxFacts: 1_000_000})
				if err != nil {
					b.Fatal(err)
				}
				if r.Entails(core.NewAtom(capture.AcceptRel)) != want.Accepted {
					b.Fatal("disagrees with simulator")
				}
			}
		})
	}
}

// BenchmarkE8StratifiedCapture measures Theorem 5 on the even-constants
// query over growing domains (work grows super-polynomially: the ordering
// forest has d^(d+1) candidates).
func BenchmarkE8StratifiedCapture(b *testing.B) {
	m := tm.EvenLength(capture.ChrAlphabet(1))
	th, err := capture.BooleanQuery(m, []string{"R"})
	if err != nil {
		b.Fatal(err)
	}
	for _, d := range []int{2, 3} {
		b.Run(fmt.Sprintf("d=%d", d), func(b *testing.B) {
			db := database.New()
			for i := 0; i < d; i++ {
				db.Add(core.NewAtom("R", core.Const(fmt.Sprintf("c%d", i))))
			}
			for i := 0; i < b.N; i++ {
				got, _, err := capture.EvalBoolean(th, db, d+2)
				if err != nil {
					b.Fatal(err)
				}
				if got != (d%2 == 0) {
					b.Fatal("wrong parity")
				}
			}
		})
	}
}

// BenchmarkE9Classification measures the affected-position analysis and
// fragment classification.
func BenchmarkE9Classification(b *testing.B) {
	theories := []*core.Theory{
		parser.MustParseTheory(sigmaPBench),
		parser.MustParseTheory(exampleSevenBench),
		gen.RandomFrontierGuardedTheory(gen.FGTheoryOptions{Rules: 10, Seed: 1}),
		gen.RandomGuardedTheory(10, 2),
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		for _, th := range theories {
			classify.Classify(th)
		}
	}
}

// BenchmarkE10KBPipeline measures the Section 7 pipeline against the
// direct chase.
func BenchmarkE10KBPipeline(b *testing.B) {
	th := parser.MustParseTheory(`
		A(X) -> exists Y. R(Y,X).
		R(Y,X), B(X) -> S(Y).
	`)
	q := kb.CQ{
		Answer: []core.Term{core.Var("X")},
		Atoms: []core.Atom{
			core.NewAtom("R", core.Var("Y"), core.Var("X")),
			core.NewAtom("S", core.Var("Y")),
		},
	}
	d := database.FromAtoms(parser.MustParseFacts(`A(a). A(b). A(c). B(a). B(c).`))
	b.Run("chase", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if _, _, err := kb.AnswerByChase(th, q, d, chase.Options{Variant: chase.Restricted, MaxDepth: 5}); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("pipeline", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if _, _, err := kb.AnswerByPipeline(th, q, d, rewrite.Options{}, saturate.Options{}); err != nil {
				b.Fatal(err)
			}
		}
	})
}

// BenchmarkE11DataComplexity contrasts polynomial Datalog evaluation with
// the exponentially growing weakly guarded ordering construction.
func BenchmarkE11DataComplexity(b *testing.B) {
	th := parser.MustParseTheory(`
		E(X,Y) -> T(X,Y).
		T(X,Y), T(Y,Z) -> T(X,Z).
	`)
	for _, n := range []int{16, 32, 64} {
		b.Run(fmt.Sprintf("datalog-n=%d", n), func(b *testing.B) {
			d := gen.Path(n)
			for i := 0; i < b.N; i++ {
				if _, err := datalog.Eval(th, d); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
	succ := capture.SuccProgram()
	for _, n := range []int{2, 3, 4} {
		b.Run(fmt.Sprintf("wg-orders-d=%d", n), func(b *testing.B) {
			d := database.New()
			for i := 0; i < n; i++ {
				d.Add(core.NewAtom("Obj", core.Const(fmt.Sprintf("c%d", i))))
			}
			for i := 0; i < b.N; i++ {
				if _, err := stratified.Eval(succ, d, stratified.Options{
					Chase: chase.Options{Variant: chase.Restricted, MaxDepth: n + 1, MaxFacts: 5_000_000},
				}); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkE12ACDomAxiomatization measures Proposition 5.
func BenchmarkE12ACDomAxiomatization(b *testing.B) {
	th := normalize.Normalize(parser.MustParseTheory(sigmaPBench))
	rew, _, err := rewrite.Rewrite(th, rewrite.Options{})
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		star := rewrite.Axiomatize(rew)
		if len(star.Rules) <= len(rew.Rules) {
			b.Fatal("axiomatization must add rules")
		}
	}
}

// BenchmarkA1DatalogEngines is the ablation: the native semi-naive
// evaluator vs evaluation through the chase engine.
func BenchmarkA1DatalogEngines(b *testing.B) {
	th := parser.MustParseTheory(`
		E(X,Y) -> T(X,Y).
		T(X,Y), T(Y,Z) -> T(X,Z).
	`)
	d := gen.Path(32)
	b.Run("semi-naive", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if _, err := datalog.EvalSemiNaive(th, d); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("via-chase", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if _, err := datalog.EvalViaChase(th, d); err != nil {
				b.Fatal(err)
			}
		}
	})
}

// BenchmarkEvalSemiNaiveParallel measures the parallel semi-naive engine
// on transitive closure over chain forests of 1k/5k/20k edges, at 1 worker
// and at all available CPUs. On single-core machines both configurations
// degenerate to the sequential path; the per-size ns/op trajectory is
// recorded in BENCH_datalog.json (see TestEmitDatalogBenchJSON).
func BenchmarkEvalSemiNaiveParallel(b *testing.B) {
	th := parser.MustParseTheory(`
		E(X,Y) -> T(X,Y).
		T(X,Y), T(Y,Z) -> T(X,Z).
	`)
	nWorkers := runtime.GOMAXPROCS(0)
	for _, edges := range []int{1_000, 5_000, 20_000} {
		d := gen.ChainForest(edges/49, 50)
		for _, workers := range []int{1, nWorkers} {
			b.Run(fmt.Sprintf("edges=%d/workers=%d", edges, workers), func(b *testing.B) {
				for i := 0; i < b.N; i++ {
					if _, err := datalog.EvalSemiNaiveOpts(th, d, datalog.Options{Workers: workers}); err != nil {
						b.Fatal(err)
					}
				}
			})
		}
	}
}

// TestEmitDatalogBenchJSON times the Datalog engine configurations of
// BenchmarkEvalSemiNaiveParallel once per configuration and writes
// BENCH_datalog.json, giving future PRs a perf trajectory. It only runs
// when EMIT_BENCH=1 is set, so regular test runs and CI stay fast:
//
//	EMIT_BENCH=1 go test -run TestEmitDatalogBenchJSON .
func TestEmitDatalogBenchJSON(t *testing.T) {
	if os.Getenv("EMIT_BENCH") != "1" {
		t.Skip("set EMIT_BENCH=1 to refresh BENCH_datalog.json")
	}
	th := parser.MustParseTheory(`
		E(X,Y) -> T(X,Y).
		T(X,Y), T(Y,Z) -> T(X,Z).
	`)
	type entry struct {
		Name    string `json:"name"`
		Edges   int    `json:"edges"`
		Workers int    `json:"workers"`
		NsPerOp int64  `json:"ns_per_op"`
		Facts   int    `json:"facts"`
	}
	report := struct {
		GoMaxProcs int     `json:"gomaxprocs"`
		Benchmarks []entry `json:"benchmarks"`
	}{GoMaxProcs: runtime.GOMAXPROCS(0)}
	for _, edges := range []int{1_000, 5_000, 20_000} {
		d := gen.ChainForest(edges/49, 50)
		for _, workers := range []int{1, runtime.GOMAXPROCS(0)} {
			reps := 3
			var best time.Duration
			facts := 0
			for r := 0; r < reps; r++ {
				t0 := time.Now()
				fix, err := datalog.EvalSemiNaiveOpts(th, d, datalog.Options{Workers: workers})
				if err != nil {
					t.Fatal(err)
				}
				if el := time.Since(t0); r == 0 || el < best {
					best = el
				}
				facts = fix.Len()
			}
			report.Benchmarks = append(report.Benchmarks, entry{
				Name:    fmt.Sprintf("EvalSemiNaiveParallel/edges=%d/workers=%d", edges, workers),
				Edges:   edges,
				Workers: workers,
				NsPerOp: best.Nanoseconds(),
				Facts:   facts,
			})
		}
	}
	data, err := json.MarshalIndent(report, "", "  ")
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile("BENCH_datalog.json", append(data, '\n'), 0o644); err != nil {
		t.Fatal(err)
	}
	t.Logf("wrote BENCH_datalog.json (%d entries)", len(report.Benchmarks))
}

// joinBenchCases are the workloads of the join-planner benchmarks: a
// recursive closure (delta-driven, plans re-fitted every round as T
// grows) and a triangle join (a 3-atom body where the access-path
// choice — seek vs two-position hash probe — dominates).
func joinBenchCases() []struct {
	name   string
	theory string
	db     *database.Database
} {
	return []struct {
		name   string
		theory string
		db     *database.Database
	}{
		{
			name: "closure",
			theory: `
				E(X,Y) -> T(X,Y).
				T(X,Y), T(Y,Z) -> T(X,Z).
			`,
			db: gen.ChainForest(40, 50),
		},
		{
			name: "triangles",
			theory: `
				E(X,Y) -> T(X,Y).
				T(X,Y), T(Y,Z), E(X,Z) -> Tri(X,Y).
			`,
			db: gen.RandomGraph(120, 600, 11),
		},
	}
}

// BenchmarkJoinPlanner is the planner ablation: the cost-based planner
// (per-round re-planning from live statistics) against the legacy static
// greedy order, each cold (stratify + compile every evaluation) and warm
// (a shared compiled Program, the serving layer's steady state).
func BenchmarkJoinPlanner(b *testing.B) {
	for _, c := range joinBenchCases() {
		th := parser.MustParseTheory(c.theory)
		for _, pl := range []struct {
			name string
			p    datalog.Planner
		}{{"greedy", datalog.PlannerGreedy}, {"cost", datalog.PlannerCost}} {
			opts := datalog.Options{Planner: pl.p}
			b.Run(fmt.Sprintf("%s/planner=%s/cold", c.name, pl.name), func(b *testing.B) {
				for i := 0; i < b.N; i++ {
					if _, err := datalog.EvalSemiNaiveOpts(th, c.db, opts); err != nil {
						b.Fatal(err)
					}
				}
			})
			b.Run(fmt.Sprintf("%s/planner=%s/warm", c.name, pl.name), func(b *testing.B) {
				p, err := datalog.Compile(th)
				if err != nil {
					b.Fatal(err)
				}
				b.ResetTimer()
				for i := 0; i < b.N; i++ {
					if _, err := p.Eval(c.db, opts); err != nil {
						b.Fatal(err)
					}
				}
			})
		}
	}
}

// TestEmitJoinBenchJSON times the BenchmarkJoinPlanner grid once per
// configuration (best of 3) and writes BENCH_join.json, the planner's
// perf trajectory for future PRs. Only runs when EMIT_BENCH=1 is set:
//
//	EMIT_BENCH=1 go test -run TestEmitJoinBenchJSON .
func TestEmitJoinBenchJSON(t *testing.T) {
	if os.Getenv("EMIT_BENCH") != "1" {
		t.Skip("set EMIT_BENCH=1 to refresh BENCH_join.json")
	}
	type entry struct {
		Name    string `json:"name"`
		Planner string `json:"planner"`
		Mode    string `json:"mode"`
		NsPerOp int64  `json:"ns_per_op"`
		Facts   int    `json:"facts"`
	}
	report := struct {
		GoMaxProcs int     `json:"gomaxprocs"`
		Benchmarks []entry `json:"benchmarks"`
	}{GoMaxProcs: runtime.GOMAXPROCS(0)}
	for _, c := range joinBenchCases() {
		th := parser.MustParseTheory(c.theory)
		prog, err := datalog.Compile(th)
		if err != nil {
			t.Fatal(err)
		}
		for _, pl := range []struct {
			name string
			p    datalog.Planner
		}{{"greedy", datalog.PlannerGreedy}, {"cost", datalog.PlannerCost}} {
			opts := datalog.Options{Planner: pl.p}
			for _, mode := range []string{"cold", "warm"} {
				var best time.Duration
				facts := 0
				for r := 0; r < 3; r++ {
					t0 := time.Now()
					var fix *database.Database
					var err error
					if mode == "cold" {
						fix, err = datalog.EvalSemiNaiveOpts(th, c.db, opts)
					} else {
						fix, err = prog.Eval(c.db, opts)
					}
					if err != nil {
						t.Fatal(err)
					}
					if el := time.Since(t0); r == 0 || el < best {
						best = el
					}
					facts = fix.Len()
				}
				report.Benchmarks = append(report.Benchmarks, entry{
					Name:    fmt.Sprintf("JoinPlanner/%s/planner=%s/%s", c.name, pl.name, mode),
					Planner: pl.name,
					Mode:    mode,
					NsPerOp: best.Nanoseconds(),
					Facts:   facts,
				})
			}
		}
	}
	data, err := json.MarshalIndent(report, "", "  ")
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile("BENCH_join.json", append(data, '\n'), 0o644); err != nil {
		t.Fatal(err)
	}
	t.Logf("wrote BENCH_join.json (%d entries)", len(report.Benchmarks))
}

// TestEmitMulticoreBenchJSON times the closure workload at worker counts
// 1/2/4/8 (best of 3) and writes BENCH_multicore.json; the multicore CI
// job runs it on a multi-CPU runner and checks the byte-identity of the
// results while it is at it. Only runs when EMIT_BENCH=1 is set:
//
//	EMIT_BENCH=1 go test -run TestEmitMulticoreBenchJSON .
func TestEmitMulticoreBenchJSON(t *testing.T) {
	if os.Getenv("EMIT_BENCH") != "1" {
		t.Skip("set EMIT_BENCH=1 to refresh BENCH_multicore.json")
	}
	th := parser.MustParseTheory(`
		E(X,Y) -> T(X,Y).
		T(X,Y), T(Y,Z) -> T(X,Z).
	`)
	d := gen.ChainForest(100, 50)
	type entry struct {
		Name    string `json:"name"`
		Workers int    `json:"workers"`
		NsPerOp int64  `json:"ns_per_op"`
		Facts   int    `json:"facts"`
	}
	report := struct {
		GoMaxProcs int     `json:"gomaxprocs"`
		Benchmarks []entry `json:"benchmarks"`
	}{GoMaxProcs: runtime.GOMAXPROCS(0)}
	var want string
	for _, workers := range []int{1, 2, 4, 8} {
		var best time.Duration
		facts := 0
		for r := 0; r < 3; r++ {
			t0 := time.Now()
			fix, err := datalog.EvalSemiNaiveOpts(th, d, datalog.Options{Workers: workers})
			if err != nil {
				t.Fatal(err)
			}
			if el := time.Since(t0); r == 0 || el < best {
				best = el
			}
			facts = fix.Len()
			if got := fix.String(); want == "" {
				want = got
			} else if got != want {
				t.Fatalf("workers=%d: result differs from workers=1", workers)
			}
		}
		report.Benchmarks = append(report.Benchmarks, entry{
			Name:    fmt.Sprintf("EvalSemiNaiveMulticore/workers=%d", workers),
			Workers: workers,
			NsPerOp: best.Nanoseconds(),
			Facts:   facts,
		})
	}
	data, err := json.MarshalIndent(report, "", "  ")
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile("BENCH_multicore.json", append(data, '\n'), 0o644); err != nil {
		t.Fatal(err)
	}
	t.Logf("wrote BENCH_multicore.json (%d entries)", len(report.Benchmarks))
}

// BenchmarkChaseParallel measures the id-space chase's re-sharded trigger
// collection on the running example over growing citation graphs, at 1
// worker and at all available CPUs. Results are byte-identical across
// worker counts by construction; on single-core machines both
// configurations degenerate to the sequential path. The per-size ns/op
// trajectory is recorded in BENCH_chase.json (see TestEmitChaseBenchJSON).
func BenchmarkChaseParallel(b *testing.B) {
	th := parser.MustParseTheory(sigmaPBench)
	nWorkers := runtime.GOMAXPROCS(0)
	for _, n := range []int{8, 24, 48} {
		d := gen.CitationGraph(n)
		for _, workers := range []int{1, nWorkers} {
			b.Run(fmt.Sprintf("n=%d/workers=%d", n, workers), func(b *testing.B) {
				for i := 0; i < b.N; i++ {
					opts := chase.Options{Variant: chase.Restricted, MaxDepth: 4, MaxFacts: 2_000_000, Workers: workers}
					if _, err := chase.Run(th, d, opts); err != nil {
						b.Fatal(err)
					}
				}
			})
		}
	}
}

// TestEmitChaseBenchJSON times the chase configurations of
// BenchmarkChaseParallel once per configuration and writes
// BENCH_chase.json (same schema as BENCH_datalog.json), giving future
// PRs a perf trajectory. It only runs when EMIT_BENCH=1 is set:
//
//	EMIT_BENCH=1 go test -run TestEmitChaseBenchJSON .
func TestEmitChaseBenchJSON(t *testing.T) {
	if os.Getenv("EMIT_BENCH") != "1" {
		t.Skip("set EMIT_BENCH=1 to refresh BENCH_chase.json")
	}
	th := parser.MustParseTheory(sigmaPBench)
	type entry struct {
		Name    string `json:"name"`
		N       int    `json:"n"`
		Workers int    `json:"workers"`
		NsPerOp int64  `json:"ns_per_op"`
		Facts   int    `json:"facts"`
	}
	report := struct {
		GoMaxProcs int     `json:"gomaxprocs"`
		Benchmarks []entry `json:"benchmarks"`
	}{GoMaxProcs: runtime.GOMAXPROCS(0)}
	for _, n := range []int{8, 24, 48} {
		d := gen.CitationGraph(n)
		for _, workers := range []int{1, runtime.GOMAXPROCS(0)} {
			reps := 3
			var best time.Duration
			facts := 0
			for r := 0; r < reps; r++ {
				t0 := time.Now()
				res, err := chase.Run(th, d, chase.Options{
					Variant: chase.Restricted, MaxDepth: 4, MaxFacts: 2_000_000, Workers: workers,
				})
				if err != nil {
					t.Fatal(err)
				}
				if el := time.Since(t0); r == 0 || el < best {
					best = el
				}
				facts = res.DB.Len()
			}
			report.Benchmarks = append(report.Benchmarks, entry{
				Name:    fmt.Sprintf("ChaseParallel/n=%d/workers=%d", n, workers),
				N:       n,
				Workers: workers,
				NsPerOp: best.Nanoseconds(),
				Facts:   facts,
			})
		}
	}
	data, err := json.MarshalIndent(report, "", "  ")
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile("BENCH_chase.json", append(data, '\n'), 0o644); err != nil {
		t.Fatal(err)
	}
	t.Logf("wrote BENCH_chase.json (%d entries)", len(report.Benchmarks))
}

// TestEmitTerminationBenchJSON times the full acyclicity-hierarchy
// analysis (WA graph, JA dependency graph, critical-instance check,
// certificate construction) on the class-separating theory families at
// growing rule counts and writes BENCH_termination.json, giving future
// PRs a perf trajectory for the analyzer. Only runs when EMIT_BENCH=1
// is set:
//
//	EMIT_BENCH=1 go test -run TestEmitTerminationBenchJSON .
func TestEmitTerminationBenchJSON(t *testing.T) {
	if os.Getenv("EMIT_BENCH") != "1" {
		t.Skip("set EMIT_BENCH=1 to refresh BENCH_termination.json")
	}
	families := []struct {
		name string
		mk   func(n int) *core.Theory
	}{
		{"wa-chain", gen.WAChainTheory},
		{"ja-not-wa", gen.JANotWATheory},
		{"swa-not-ja", gen.SWANotJATheory},
	}
	type entry struct {
		Name    string `json:"name"`
		N       int    `json:"n"`
		Class   string `json:"class"`
		NsPerOp int64  `json:"ns_per_op"`
	}
	report := struct {
		GoMaxProcs int     `json:"gomaxprocs"`
		Benchmarks []entry `json:"benchmarks"`
	}{GoMaxProcs: runtime.GOMAXPROCS(0)}
	for _, fam := range families {
		for _, n := range []int{4, 16, 64} {
			th := fam.mk(n)
			reps := 3
			var best time.Duration
			var class termination.Class
			for r := 0; r < reps; r++ {
				t0 := time.Now()
				rep := termination.Analyze(th)
				if el := time.Since(t0); r == 0 || el < best {
					best = el
				}
				class = rep.Class
			}
			report.Benchmarks = append(report.Benchmarks, entry{
				Name:    fmt.Sprintf("Termination/%s/n=%d", fam.name, n),
				N:       n,
				Class:   class.String(),
				NsPerOp: best.Nanoseconds(),
			})
		}
	}
	data, err := json.MarshalIndent(report, "", "  ")
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile("BENCH_termination.json", append(data, '\n'), 0o644); err != nil {
		t.Fatal(err)
	}
	t.Logf("wrote BENCH_termination.json (%d entries)", len(report.Benchmarks))
}

// BenchmarkIncrementalMaintenance contrasts from-scratch re-evaluation
// with delta-driven maintenance on the E11 transitive-closure workload:
// each maintained op is one single-edge batch (an insert extending the
// path by a fresh tail node, then the retract that undoes it, keeping
// the handle in steady state across iterations).
func BenchmarkIncrementalMaintenance(b *testing.B) {
	th := parser.MustParseTheory(`
		E(X,Y) -> T(X,Y).
		T(X,Y), T(Y,Z) -> T(X,Z).
	`)
	prog, err := datalog.Compile(th)
	if err != nil {
		b.Fatal(err)
	}
	for _, n := range []int{16, 32, 64} {
		d := gen.Path(n)
		edge := parser.MustParseFacts(fmt.Sprintf("E(v%d,w).", n-1))
		b.Run(fmt.Sprintf("from-scratch/n=%d", n), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				if _, err := prog.Eval(d, datalog.Options{}); err != nil {
					b.Fatal(err)
				}
			}
		})
		b.Run(fmt.Sprintf("insert+retract/n=%d", n), func(b *testing.B) {
			m, err := datalog.NewMaintained(prog, d, datalog.Options{})
			if err != nil {
				b.Fatal(err)
			}
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if _, _, err := m.Apply(edge, nil, datalog.Options{}); err != nil {
					b.Fatal(err)
				}
				if _, _, err := m.Apply(nil, edge, datalog.Options{}); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// TestEmitIncrementalBenchJSON times from-scratch evaluation against
// single-fact incremental insert/retract on the E11 closure workload
// (best of 5) and writes BENCH_incremental.json. It also enforces the
// headline claim: at n=64 a single-fact insert must be at least 10x
// faster than re-evaluating from scratch. Only runs when EMIT_BENCH=1
// is set:
//
//	EMIT_BENCH=1 go test -run TestEmitIncrementalBenchJSON .
func TestEmitIncrementalBenchJSON(t *testing.T) {
	if os.Getenv("EMIT_BENCH") != "1" {
		t.Skip("set EMIT_BENCH=1 to refresh BENCH_incremental.json")
	}
	th := parser.MustParseTheory(`
		E(X,Y) -> T(X,Y).
		T(X,Y), T(Y,Z) -> T(X,Z).
	`)
	prog, err := datalog.Compile(th)
	if err != nil {
		t.Fatal(err)
	}
	type entry struct {
		Name    string `json:"name"`
		N       int    `json:"n"`
		Mode    string `json:"mode"`
		NsPerOp int64  `json:"ns_per_op"`
		Facts   int    `json:"facts"`
	}
	report := struct {
		GoMaxProcs      int     `json:"gomaxprocs"`
		Benchmarks      []entry `json:"benchmarks"`
		SpeedupInsert64 float64 `json:"speedup_insert_n64"`
	}{GoMaxProcs: runtime.GOMAXPROCS(0)}
	const reps = 5
	for _, n := range []int{16, 32, 64} {
		d := gen.Path(n)
		edge := parser.MustParseFacts(fmt.Sprintf("E(v%d,w).", n-1))

		var scratch time.Duration
		scratchFacts := 0
		for r := 0; r < reps; r++ {
			t0 := time.Now()
			fix, err := prog.Eval(d, datalog.Options{})
			if err != nil {
				t.Fatal(err)
			}
			if el := time.Since(t0); r == 0 || el < scratch {
				scratch = el
			}
			scratchFacts = fix.Len()
		}

		m, err := datalog.NewMaintained(prog, d, datalog.Options{})
		if err != nil {
			t.Fatal(err)
		}
		var insert, retract time.Duration
		insertFacts := 0
		for r := 0; r < reps; r++ {
			t0 := time.Now()
			if _, _, err := m.Apply(edge, nil, datalog.Options{}); err != nil {
				t.Fatal(err)
			}
			if el := time.Since(t0); r == 0 || el < insert {
				insert = el
			}
			insertFacts = m.Current().Len()
			t0 = time.Now()
			if _, _, err := m.Apply(nil, edge, datalog.Options{}); err != nil {
				t.Fatal(err)
			}
			if el := time.Since(t0); r == 0 || el < retract {
				retract = el
			}
		}
		report.Benchmarks = append(report.Benchmarks,
			entry{Name: fmt.Sprintf("Incremental/n=%d/from-scratch", n), N: n, Mode: "from-scratch", NsPerOp: scratch.Nanoseconds(), Facts: scratchFacts},
			entry{Name: fmt.Sprintf("Incremental/n=%d/insert", n), N: n, Mode: "insert", NsPerOp: insert.Nanoseconds(), Facts: insertFacts},
			entry{Name: fmt.Sprintf("Incremental/n=%d/retract", n), N: n, Mode: "retract", NsPerOp: retract.Nanoseconds(), Facts: scratchFacts},
		)
	}
	// Headline check: single-fact insert at n=64 must beat from-scratch
	// by at least 10x.
	var scratch64, insert64 int64
	for _, e := range report.Benchmarks {
		if e.N == 64 && e.Mode == "from-scratch" {
			scratch64 = e.NsPerOp
		}
		if e.N == 64 && e.Mode == "insert" {
			insert64 = e.NsPerOp
		}
	}
	report.SpeedupInsert64 = float64(scratch64) / float64(insert64)
	if report.SpeedupInsert64 < 10 {
		t.Fatalf("n=64 single-fact insert speedup %.1fx, want >= 10x (scratch %dns, insert %dns)",
			report.SpeedupInsert64, scratch64, insert64)
	}
	data, err := json.MarshalIndent(report, "", "  ")
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile("BENCH_incremental.json", append(data, '\n'), 0o644); err != nil {
		t.Fatal(err)
	}
	t.Logf("wrote BENCH_incremental.json (speedup %.1fx)", report.SpeedupInsert64)
}

// BenchmarkA2ChaseVariants is the ablation: oblivious vs restricted chase
// on the running example.
func BenchmarkA2ChaseVariants(b *testing.B) {
	th := parser.MustParseTheory(sigmaPBench)
	d := gen.CitationGraph(8)
	for _, v := range []struct {
		name    string
		variant chase.Variant
	}{{"oblivious", chase.Oblivious}, {"restricted", chase.Restricted}} {
		b.Run(v.name, func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				if _, err := chase.Run(th, d, chase.Options{Variant: v.variant, MaxDepth: 6, MaxFacts: 2_000_000}); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkA3WeakAcyclicity measures the termination analysis.
func BenchmarkA3WeakAcyclicity(b *testing.B) {
	theories := make([]*core.Theory, 0, 10)
	for seed := int64(0); seed < 10; seed++ {
		theories = append(theories, gen.RandomFrontierGuardedTheory(gen.FGTheoryOptions{Rules: 8, Seed: seed}))
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		for _, th := range theories {
			termination.Analyze(th)
		}
	}
}

// BenchmarkA4CoreMinimization measures core computation of chase results.
func BenchmarkA4CoreMinimization(b *testing.B) {
	th := parser.MustParseTheory(`
		A(X) -> exists Y. R(X,Y).
		R(X,Y) -> B(Y).
	`)
	d := database.FromAtoms(parser.MustParseFacts(`A(a). A(b). A(c). R(a,w).`))
	res, err := chase.Run(th, d, chase.Options{Variant: chase.Oblivious})
	if err != nil {
		b.Fatal(err)
	}
	atoms := res.DB.UserFacts()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, exact := hom.Core(atoms, 0); !exact {
			b.Fatal("core search must be exact here")
		}
	}
}
