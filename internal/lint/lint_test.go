package lint

import (
	"bytes"
	"encoding/json"
	"strings"
	"testing"

	"guardedrules/internal/core"
	"guardedrules/internal/parser"
)

// lintSrc parses leniently and lints; the helper fails the test on
// syntax errors only.
func lintSrc(t *testing.T, src string) []Diagnostic {
	t.Helper()
	prog, err := parser.ParseLenient(src)
	if err != nil {
		t.Fatalf("parse: %v", err)
	}
	return Run(prog.Theory)
}

func codes(diags []Diagnostic) map[string]int {
	out := map[string]int{}
	for _, d := range diags {
		out[d.Code]++
	}
	return out
}

func find(t *testing.T, diags []Diagnostic, code string) Diagnostic {
	t.Helper()
	for _, d := range diags {
		if d.Code == code {
			return d
		}
	}
	t.Fatalf("no %s diagnostic in %v", code, diags)
	return Diagnostic{}
}

func TestCleanGuardedTheory(t *testing.T) {
	diags := lintSrc(t, `Person(X) -> Human(X).
Human(X) -> Mortal(X).
Mortal(X) -> Q(X).`)
	for _, d := range diags {
		if d.Severity > Info {
			t.Errorf("unexpected %v", d)
		}
	}
	if ExitCode(diags) != 0 {
		t.Errorf("exit code = %d, want 0", ExitCode(diags))
	}
}

func TestNotGuardedExplainer(t *testing.T) {
	// The transitivity rule is the canonical non-guarded Datalog rule.
	diags := lintSrc(t, `T(X,Y), T(Y,Z) -> T(X,Z).`)
	d := find(t, diags, "GR001")
	if d.Severity != Info {
		t.Errorf("GR001 severity = %v, want info", d.Severity)
	}
	if d.Detail == nil || len(d.Detail.Vars) != 1 {
		t.Fatalf("GR001 detail = %+v, want exactly one uncovered variable", d.Detail)
	}
	if d.Detail.Guard == "" {
		t.Error("GR001 must name the best guard candidate")
	}
	if d.Span.Line != 1 || d.Span.Col != 1 {
		t.Errorf("GR001 span = %v, want 1:1", d.Span)
	}
	// Not frontier-guarded either ({X,Z} split across atoms), but weakly
	// guarded (no affected positions) and nearly guarded.
	c := codes(diags)
	if c["GR002"] != 1 || c["GR003"] != 0 || c["GR005"] != 0 {
		t.Errorf("codes = %v", c)
	}
}

func TestUnsafeRule(t *testing.T) {
	diags := lintSrc(t, `R(X,Y) -> P(X,W).`)
	d := find(t, diags, "SF001")
	if d.Severity != Error {
		t.Errorf("severity = %v, want error", d.Severity)
	}
	if d.Detail == nil || len(d.Detail.Vars) != 1 || d.Detail.Vars[0] != "W" {
		t.Errorf("detail = %+v, want W", d.Detail)
	}
	// The span points at the head atom P(X,W), column 11.
	if d.Span.Line != 1 || d.Span.Col != 11 {
		t.Errorf("span = %v, want 1:11", d.Span)
	}
	if ExitCode(diags) != 2 {
		t.Errorf("exit code = %d, want 2", ExitCode(diags))
	}
}

func TestNegatedUnboundAndACDomHead(t *testing.T) {
	diags := lintSrc(t, `R(X), not S(X,Y) -> P(X).
R(X) -> ACDom(X).`)
	if c := codes(diags); c["SF003"] != 1 || c["SF005"] != 1 {
		t.Errorf("codes = %v, want one SF003 and one SF005", c)
	}
}

func TestNonStratifiableNegation(t *testing.T) {
	diags := lintSrc(t, `Node(X), not Bad(X) -> Good(X).
Node(X), not Good(X) -> Bad(X).`)
	d := find(t, diags, "ST001")
	if d.Severity != Error {
		t.Errorf("severity = %v, want error", d.Severity)
	}
	if d.Detail == nil || len(d.Detail.Cycle) < 3 {
		t.Fatalf("detail = %+v, want a cycle", d.Detail)
	}
	if first, last := d.Detail.Cycle[0], d.Detail.Cycle[len(d.Detail.Cycle)-1]; first != last {
		t.Errorf("cycle %v must close", d.Detail.Cycle)
	}
	// Only one diagnostic for the single offending SCC.
	if c := codes(diags); c["ST001"] != 1 {
		t.Errorf("ST001 count = %d, want 1", c["ST001"])
	}
}

func TestStratifiedNegationClean(t *testing.T) {
	diags := lintSrc(t, `Edge(X,Y) -> Reach(Y).
Node(X), not Reach(X) -> Unreach(X).`)
	if c := codes(diags); c["ST001"] != 0 {
		t.Errorf("stratified theory flagged: %v", diags)
	}
}

func TestWeakAcyclicityWitness(t *testing.T) {
	diags := lintSrc(t, `Person(X) -> exists Y. hasParent(X,Y).
hasParent(X,Y) -> Person(Y).`)
	d := find(t, diags, "TM001")
	if d.Severity != Warning {
		t.Errorf("severity = %v, want warning", d.Severity)
	}
	if d.Detail == nil || len(d.Detail.Cycle) < 2 {
		t.Fatalf("detail = %+v, want a position cycle", d.Detail)
	}
	if !d.Span.Known() {
		t.Errorf("span = %v, want a source position", d.Span)
	}
	if ExitCode(diags) != 1 {
		t.Errorf("exit code = %d, want 1 (warnings only)", ExitCode(diags))
	}
}

func TestSingletonAndNearMissVariables(t *testing.T) {
	diags := lintSrc(t, `Keywords(X,K1,K2), Topic(K1) -> Q(X,K1).`)
	d := find(t, diags, "VAR001")
	if !strings.Contains(d.Message, "K2") {
		t.Errorf("message %q must name K2", d.Message)
	}
	// K1 vs K2 follows the enumeration convention: no typo warning.
	if c := codes(diags); c["VAR002"] != 0 {
		t.Errorf("enumerated variables flagged as typos: %v", diags)
	}
	// Authr occurs once and is one deletion away from Author: a typo.
	diags = lintSrc(t, `Wrote(X,Author), Edited(X,Authr) -> Q(Author).`)
	d = find(t, diags, "VAR002")
	if d.Detail == nil || len(d.Detail.Vars) != 2 || d.Detail.Vars[0] != "Authr" {
		t.Errorf("VAR002 detail = %+v, want [Authr Author]", d.Detail)
	}
	// An underscore prefix silences the singleton warning.
	diags = lintSrc(t, `Keywords(X,_K1,_K2) -> Q(X).`)
	if c := codes(diags); c["VAR001"] != 0 {
		t.Errorf("underscore variables flagged: %v", diags)
	}
	// Distinct single-character variables are conventional, not typos.
	diags = lintSrc(t, `R(X,Y) -> P(X).`)
	if c := codes(diags); c["VAR002"] != 0 {
		t.Errorf("X vs Y flagged as typo: %v", diags)
	}
}

func TestPredicateShapeAndCase(t *testing.T) {
	diags := lintSrc(t, `R(X,Y) -> P(X).
R(X) -> P(X).
hasTopic(X) -> HasTopic(X).`)
	if c := codes(diags); c["PRED001"] != 1 || c["PRED002"] != 1 {
		t.Errorf("codes = %v, want one PRED001 and one PRED002", c)
	}
	d := find(t, diags, "PRED001")
	if d.Span.Line != 2 {
		t.Errorf("PRED001 span = %v, want line 2 (the second shape)", d.Span)
	}
}

func TestUnusedAndNegationOnlyPredicates(t *testing.T) {
	diags := lintSrc(t, `R(X), not Gone(X) -> Out(X).`)
	c := codes(diags)
	if c["PRED003"] != 1 {
		t.Errorf("Out is derived but never read; codes = %v", c)
	}
	if c["PRED004"] != 1 {
		t.Errorf("Gone occurs only under negation; codes = %v", c)
	}
}

func TestJSONRoundTrip(t *testing.T) {
	diags := lintSrc(t, `T(X,Y), T(Y,Z) -> T(X,Z).
R(X,Y) -> P(X,W).`)
	var buf bytes.Buffer
	if err := WriteJSON(&buf, Findings("theory.rules", diags)); err != nil {
		t.Fatal(err)
	}
	var back []Finding
	if err := json.Unmarshal(buf.Bytes(), &back); err != nil {
		t.Fatalf("unmarshal: %v\n%s", err, buf.String())
	}
	if len(back) != len(diags) {
		t.Fatalf("round trip changed count: %d vs %d", len(back), len(diags))
	}
	for i := range back {
		if back[i].File != "theory.rules" {
			t.Errorf("finding %d lost its file", i)
		}
		if back[i].Code != diags[i].Code || back[i].Severity != diags[i].Severity ||
			back[i].Message != diags[i].Message || back[i].Span != diags[i].Span {
			t.Errorf("finding %d changed: %+v vs %+v", i, back[i], diags[i])
		}
	}
}

func TestSeverityJSONRejectsUnknown(t *testing.T) {
	var s Severity
	if err := json.Unmarshal([]byte(`"fatal"`), &s); err == nil {
		t.Error("unknown severity must not unmarshal")
	}
	if err := json.Unmarshal([]byte(`"warning"`), &s); err != nil || s != Warning {
		t.Errorf("got %v, %v", s, err)
	}
}

func TestDiagnosticsSorted(t *testing.T) {
	diags := lintSrc(t, `R(X,Y) -> P(X,W).
T(X,Y), T(Y,Z) -> T(X,Z).`)
	for i := 1; i < len(diags); i++ {
		a, b := diags[i-1], diags[i]
		if a.Span.Known() && b.Span.Known() && a.Span.Line > b.Span.Line {
			t.Errorf("diagnostics out of order: %v before %v", a, b)
		}
	}
}

// Generated rules (zero-span, or stamped) keep lint total and must not
// panic any pass.
func TestProgrammaticTheory(t *testing.T) {
	th := core.NewTheory(
		core.NewRule([]core.Atom{core.NewAtom("R", core.Var("x"), core.Var("y"))}, nil,
			core.NewAtom("P", core.Var("x"))),
	)
	core.StampGenerated(th, "test")
	diags := Run(th)
	for _, d := range diags {
		if d.Span.Known() {
			t.Errorf("programmatic rule has source span: %v", d)
		}
	}
	if th.Rules[0].Span.Gen != "test" {
		t.Errorf("span = %v, want generated-by-test", th.Rules[0].Span)
	}
}

func TestRegistryLookup(t *testing.T) {
	if len(Registry()) != 6 {
		t.Errorf("registry size = %d, want 6", len(Registry()))
	}
	p, ok := Lookup("fragments")
	if !ok || p.Name != "fragments" {
		t.Fatalf("Lookup(fragments) = %v, %v", p, ok)
	}
	if _, ok := Lookup("nonsense"); ok {
		t.Error("Lookup(nonsense) must fail")
	}
}

func TestWriteTextFormat(t *testing.T) {
	diags := lintSrc(t, `R(X,Y) -> P(X,W).`)
	var buf bytes.Buffer
	if err := WriteText(&buf, Findings("t.rules", diags)); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "t.rules:1:11: error: SF001:") {
		t.Errorf("text output missing positioned finding:\n%s", buf.String())
	}
}
