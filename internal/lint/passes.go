package lint

import (
	"fmt"
	"sort"
	"strings"

	"guardedrules/internal/classify"
	"guardedrules/internal/core"
	"guardedrules/internal/termination"
)

// ---------------------------------------------------------------------------
// safety — SF001..SF006
//
// The checks mirror core.Rule.CheckSafe and core.Theory.CheckSafe, but
// report every violation with the position of the offending atom instead
// of stopping at the first.

func runSafety(ctx *Context) []Diagnostic {
	var out []Diagnostic
	for _, r := range ctx.Theory.Rules {
		label := r.Label
		if len(r.Head) == 0 {
			out = append(out, Diagnostic{
				Code: "SF006", Severity: Error, Rule: label, Span: ruleSpan(r),
				Message: "rule has an empty head",
			})
		}
		uv := r.UVars()
		ev := r.EVarSet()
		// SF001: frontier variable in no body atom (unsafe head variable).
		for _, h := range r.Head {
			missing := make(core.TermSet)
			for v := range h.Vars() {
				if !ev.Has(v) && !uv.Has(v) {
					missing.Add(v)
				}
			}
			if len(missing) > 0 {
				names := varNames(missing)
				out = append(out, Diagnostic{
					Code: "SF001", Severity: Error, Rule: label, Span: atomSpan(h, r),
					Message: fmt.Sprintf("unsafe rule: head variable%s %s occur%s in no positive body atom (and %s not existential)",
						plural(names), strings.Join(names, ", "), singular(names), isAre(names)),
					Detail: &Detail{Vars: names},
				})
			}
		}
		// SF002: existential variable used in the body.
		for _, l := range r.Body {
			bad := l.Atom.Vars().Intersect(ev)
			if len(bad) > 0 {
				names := varNames(bad)
				out = append(out, Diagnostic{
					Code: "SF002", Severity: Error, Rule: label, Span: atomSpan(l.Atom, r),
					Message: fmt.Sprintf("existential variable%s %s occur%s in the body",
						plural(names), strings.Join(names, ", "), singular(names)),
					Detail: &Detail{Vars: names},
				})
			}
		}
		// SF003: negated-atom variable not bound by a positive atom.
		posVars := make(core.TermSet)
		for _, l := range r.Body {
			if !l.Negated {
				posVars.AddAll(l.Atom.Vars())
			}
		}
		for _, l := range r.Body {
			if !l.Negated {
				continue
			}
			unbound := l.Atom.Vars().Minus(posVars)
			if len(unbound) > 0 {
				names := varNames(unbound)
				out = append(out, Diagnostic{
					Code: "SF003", Severity: Error, Rule: label, Span: atomSpan(l.Atom, r),
					Message: fmt.Sprintf("variable%s %s of negated atom %s %s not bound by a positive body atom",
						plural(names), strings.Join(names, ", "), l.Atom, isAre(names)),
					Detail: &Detail{Vars: names},
				})
			}
		}
		// SF004: head annotation variable not bound anywhere in the body.
		bodyAll := make(core.TermSet)
		for _, l := range r.Body {
			bodyAll.AddAll(l.Atom.AllVars())
		}
		for _, h := range r.Head {
			unbound := h.AnnVars().Minus(bodyAll)
			if len(unbound) > 0 {
				names := varNames(unbound)
				out = append(out, Diagnostic{
					Code: "SF004", Severity: Error, Rule: label, Span: atomSpan(h, r),
					Message: fmt.Sprintf("head annotation variable%s %s %s not bound in the body",
						plural(names), strings.Join(names, ", "), isAre(names)),
					Detail: &Detail{Vars: names},
				})
			}
		}
		// SF005: the built-in ACDom relation in a head.
		for _, h := range r.Head {
			if h.Relation == core.ACDom {
				out = append(out, Diagnostic{
					Code: "SF005", Severity: Error, Rule: label, Span: atomSpan(h, r),
					Message: core.ACDom + " is maintained by the database and is prohibited from rule heads",
					Detail:  &Detail{Relations: []string{core.ACDom}},
				})
			}
		}
	}
	return out
}

// ---------------------------------------------------------------------------
// fragments — GR000..GR006
//
// One explainer per class of internal/classify: each diagnostic states
// which rule keeps the theory out of the class and why, with the
// uncovered variables computed by classify.GuardResidue. Severities are
// informational — most theories are legitimately outside most classes —
// except GR004: a rule that is not even weakly frontier-guarded puts the
// theory outside every fragment of Figure 1.

func runFragments(ctx *Context) []Diagnostic {
	var out []Diagnostic
	ap := ctx.AP()
	for _, r := range ctx.Theory.Rules {
		label := r.Label
		span := ruleSpan(r)
		if !r.IsDatalog() {
			names := varNames(r.EVarSet())
			out = append(out, Diagnostic{
				Code: "GR000", Severity: Info, Rule: label, Span: span,
				Message: fmt.Sprintf("rule is not Datalog: existential variable%s %s invent%s values",
					plural(names), strings.Join(names, ", "), singularVerb(names)),
				Detail: &Detail{Vars: names},
			})
		}
		if d, ok := residueDiag(r, "GR001", "guarded", "universal variable", r.UVars(), nil); ok {
			d.Span, d.Rule = span, label
			out = append(out, d)
		}
		if d, ok := residueDiag(r, "GR002", "frontier-guarded", "frontier variable", r.FVars(), nil); ok {
			d.Span, d.Rule = span, label
			out = append(out, d)
		}
		unsafe := classify.Unsafe(r, ap)
		if d, ok := residueDiag(r, "GR003", "weakly guarded", "unsafe variable", unsafe, affectedBodyPositions(r, unsafe, ap)); ok {
			d.Span, d.Rule = span, label
			out = append(out, d)
		}
		needWFG := r.FVars().Intersect(unsafe)
		if d, ok := residueDiag(r, "GR004", "weakly frontier-guarded", "unsafe frontier variable", needWFG, affectedBodyPositions(r, needWFG, ap)); ok {
			d.Severity = Warning
			d.Message += "; the theory is outside every fragment of Figure 1"
			d.Span, d.Rule = span, label
			out = append(out, d)
		}
		if !classify.IsNearlyGuarded(r, ap) {
			out = append(out, nearlyDiag(r, "GR005", "nearly guarded", "guarded", unsafe, span, label))
		}
		if !classify.IsNearlyFrontierGuarded(r, ap) {
			out = append(out, nearlyDiag(r, "GR006", "nearly frontier-guarded", "frontier-guarded", unsafe, span, label))
		}
	}
	return out
}

// residueDiag builds the "not in class" diagnostic for a guard
// requirement over need, or ok=false when the rule satisfies it.
func residueDiag(r *core.Rule, code, class, kind string, need core.TermSet, positions []string) (Diagnostic, bool) {
	guard, residue := classify.GuardResidue(r, need)
	if len(residue) == 0 {
		return Diagnostic{}, false
	}
	names := varNames(residue)
	needNames := varNames(need)
	detail := &Detail{Vars: names, Positions: positions}
	var msg string
	if guard.Relation == "" {
		msg = fmt.Sprintf("rule is not %s: no positive body atom exists to cover %s%s %s",
			class, kind, plural(names), strings.Join(names, ", "))
	} else {
		detail.Guard = guard.String()
		msg = fmt.Sprintf("rule is not %s: no body atom covers %s%s %s (best candidate %s misses %s)",
			class, kind, plural(needNames), strings.Join(needNames, ", "), guard, strings.Join(names, ", "))
	}
	return Diagnostic{Code: code, Severity: Info, Message: msg, Detail: detail}, true
}

// nearlyDiag explains why a rule is not nearly (frontier-)guarded
// (Definition 3): it is not (frontier-)guarded and either invents values
// or has unsafe variables.
func nearlyDiag(r *core.Rule, code, class, base string, unsafe core.TermSet, span core.Span, label string) Diagnostic {
	var reasons []string
	detail := &Detail{}
	if len(r.Exist) > 0 {
		ev := varNames(r.EVarSet())
		reasons = append(reasons, fmt.Sprintf("has existential variable%s %s", plural(ev), strings.Join(ev, ", ")))
		detail.Vars = append(detail.Vars, ev...)
	}
	if len(unsafe) > 0 {
		uv := varNames(unsafe)
		reasons = append(reasons, fmt.Sprintf("has unsafe variable%s %s (bound only at affected positions)", plural(uv), strings.Join(uv, ", ")))
		detail.Vars = append(detail.Vars, uv...)
	}
	return Diagnostic{
		Code: code, Severity: Info, Rule: label, Span: span,
		Message: fmt.Sprintf("rule is not %s: it is not %s and %s", class, base, strings.Join(reasons, " and ")),
		Detail:  detail,
	}
}

// affectedBodyPositions lists the affected positions at which the given
// variables occur in the positive body — the positions that make them
// unsafe.
func affectedBodyPositions(r *core.Rule, vars core.TermSet, ap classify.PosSet) []string {
	if len(vars) == 0 {
		return nil
	}
	var ps []classify.Position
	seen := map[classify.Position]bool{}
	for _, a := range r.PositiveBody() {
		for i, t := range a.Args {
			p := classify.Position{Rel: a.Key(), Index: i}
			if t.IsVar() && vars.Has(t) && ap[p] && !seen[p] {
				seen[p] = true
				ps = append(ps, p)
			}
		}
	}
	return posNames(ps)
}

// ---------------------------------------------------------------------------
// variables — VAR001, VAR002

func runVariables(ctx *Context) []Diagnostic {
	var out []Diagnostic
	for _, r := range ctx.Theory.Rules {
		ev := r.EVarSet()
		// Count argument and annotation occurrences of every variable, and
		// remember the first atom containing it.
		count := map[core.Term]int{}
		first := map[core.Term]core.Atom{}
		note := func(a core.Atom) {
			for _, t := range append(append([]core.Term{}, a.Args...), a.Annotation...) {
				if !t.IsVar() {
					continue
				}
				count[t]++
				if _, ok := first[t]; !ok {
					first[t] = a
				}
			}
		}
		for _, l := range r.Body {
			note(l.Atom)
		}
		for _, h := range r.Head {
			note(h)
		}
		var singletons []core.Term
		for v, n := range count {
			// A leading underscore marks a variable as intentionally unused;
			// existential variables legitimately occur once, and head-only
			// universal variables are already an SF001 error.
			if n == 1 && !ev.Has(v) && !strings.HasPrefix(v.Name, "_") && r.UVars().Has(v) {
				singletons = append(singletons, v)
			}
		}
		core.SortTerms(singletons)
		for _, v := range singletons {
			out = append(out, Diagnostic{
				Code: "VAR001", Severity: Info, Rule: r.Label, Span: atomSpan(first[v], r),
				Message: fmt.Sprintf("variable %s occurs only once in the rule (prefix it with '_' if intentional)", v.Name),
				Detail:  &Detail{Vars: []string{v.Name}},
			})
		}
		// Near-miss names: two variables whose names are within edit
		// distance 1, one of which occurs exactly once — a likely typo.
		vars := make([]core.Term, 0, len(count))
		for v := range count {
			vars = append(vars, v)
		}
		core.SortTerms(vars)
		for i, v := range vars {
			for _, w := range vars[i+1:] {
				// At least one of the pair must be a lone universal
				// variable: repeated variables and existential variables
				// (which legitimately occur once) are not typo suspects.
				loneOK := func(t core.Term) bool {
					return count[t] == 1 && !ev.Has(t) && !strings.HasPrefix(t.Name, "_")
				}
				if !loneOK(v) && !loneOK(w) {
					continue
				}
				if !nearMiss(v.Name, w.Name) {
					continue
				}
				lone := v
				if loneOK(w) && !loneOK(v) {
					lone = w
				}
				other := v
				if lone == v {
					other = w
				}
				out = append(out, Diagnostic{
					Code: "VAR002", Severity: Warning, Rule: r.Label, Span: atomSpan(first[lone], r),
					Message: fmt.Sprintf("variable %s occurs once and differs from %s only by one character; possible typo",
						lone.Name, other.Name),
					Detail: &Detail{Vars: []string{lone.Name, other.Name}},
				})
			}
		}
	}
	return out
}

// nearMiss reports whether two distinct names are within edit distance 1
// (substitution, insertion or deletion) or equal ignoring case. Two
// conventional patterns are exempt: distinct single-character names
// (X vs Y) and enumerated names sharing a stem with different trailing
// digits (K1 vs K2, Z vs Z2).
func nearMiss(a, b string) bool {
	if a == b {
		return false
	}
	if len(a) == 1 && len(b) == 1 {
		return false
	}
	if stripDigits(a) == stripDigits(b) {
		return false
	}
	if strings.EqualFold(a, b) {
		return true
	}
	la, lb := len(a), len(b)
	switch {
	case la == lb:
		diff := 0
		for i := 0; i < la; i++ {
			if a[i] != b[i] {
				diff++
			}
		}
		return diff == 1
	case la+1 == lb:
		return oneInsertion(a, b)
	case lb+1 == la:
		return oneInsertion(b, a)
	}
	return false
}

// stripDigits removes a trailing run of digits.
func stripDigits(s string) string {
	return strings.TrimRight(s, "0123456789")
}

// oneInsertion reports whether long is short with one extra character.
func oneInsertion(short, long string) bool {
	i, j, used := 0, 0, false
	for i < len(short) && j < len(long) {
		if short[i] == long[j] {
			i++
			j++
			continue
		}
		if used {
			return false
		}
		used = true
		j++
	}
	return true
}

// ---------------------------------------------------------------------------
// predicates — PRED001..PRED004

func runPredicates(ctx *Context) []Diagnostic {
	var out []Diagnostic
	type occurrence struct {
		key  core.RelKey
		span core.Span
	}
	firstShape := map[string]occurrence{}
	firstSpelling := map[string][]string{} // lowercase name -> spellings in order
	firstAtom := map[string]core.Atom{}
	inHead := map[string]bool{}
	inPosBody := map[string]bool{}
	inNegBody := map[string]bool{}
	headAtom := map[string]core.Atom{}
	headRule := map[string]*core.Rule{}

	visit := func(a core.Atom, r *core.Rule) {
		name := a.Relation
		if prev, ok := firstShape[name]; ok {
			if prev.key != a.Key() {
				out = append(out, Diagnostic{
					Code: "PRED001", Severity: Error, Rule: r.Label, Span: atomSpan(a, r),
					Message: fmt.Sprintf("relation %s used with arity %d/annotation arity %d here but arity %d/annotation arity %d at %s",
						name, a.Key().Arity, a.Key().AnnArity, prev.key.Arity, prev.key.AnnArity, prev.span),
					Detail: &Detail{Relations: []string{name}},
				})
			}
		} else {
			firstShape[name] = occurrence{a.Key(), atomSpan(a, r)}
			firstAtom[name] = a
			low := strings.ToLower(name)
			dup := false
			for _, s := range firstSpelling[low] {
				if s == name {
					dup = true
				}
			}
			if !dup {
				firstSpelling[low] = append(firstSpelling[low], name)
				if len(firstSpelling[low]) > 1 {
					out = append(out, Diagnostic{
						Code: "PRED002", Severity: Warning, Rule: r.Label, Span: atomSpan(a, r),
						Message: fmt.Sprintf("relation %s differs only in case from %s (%s); did you mean the same relation?",
							name, firstSpelling[low][0], firstShape[firstSpelling[low][0]].span),
						Detail: &Detail{Relations: append([]string(nil), firstSpelling[low]...)},
					})
				}
			}
		}
	}

	for _, r := range ctx.Theory.Rules {
		for _, l := range r.Body {
			visit(l.Atom, r)
			if l.Negated {
				inNegBody[l.Atom.Relation] = true
			} else {
				inPosBody[l.Atom.Relation] = true
			}
		}
		for _, h := range r.Head {
			visit(h, r)
			if !inHead[h.Relation] {
				inHead[h.Relation] = true
				headAtom[h.Relation] = h
				headRule[h.Relation] = r
			}
		}
	}

	names := make([]string, 0, len(firstShape))
	for n := range firstShape {
		names = append(names, n)
	}
	sort.Strings(names)
	for _, n := range names {
		switch {
		case inHead[n] && !inPosBody[n] && !inNegBody[n]:
			out = append(out, Diagnostic{
				Code: "PRED003", Severity: Info, Rule: headRule[n].Label, Span: atomSpan(headAtom[n], headRule[n]),
				Message: fmt.Sprintf("relation %s is derived but never read by any rule (query output?)", n),
				Detail:  &Detail{Relations: []string{n}},
			})
		case !inHead[n] && inNegBody[n] && !inPosBody[n] && n != core.ACDom:
			out = append(out, Diagnostic{
				Code: "PRED004", Severity: Info, Span: firstShape[n].span,
				Message: fmt.Sprintf("relation %s occurs only under negation; unless it is a database relation, 'not %s(...)' always holds", n, n),
				Detail:  &Detail{Relations: []string{n}},
			})
		}
	}
	return out
}

// ---------------------------------------------------------------------------
// stratify — ST001
//
// A theory is stratified (Definition 22) when no relation depends
// negatively on itself through the predicate dependency graph. The pass
// mirrors datalog.Stratify — including the implicit head→ACDom edges of
// constant-introducing rules when ACDom is read — but reports the
// offending cycle instead of a bare error.

func runStratify(ctx *Context) []Diagnostic {
	type edge struct {
		from, to string
		negative bool
		atom     core.Atom
		rule     *core.Rule
	}
	var edges []edge
	var order []string
	seenNode := map[string]bool{}
	node := func(n string) {
		if !seenNode[n] {
			seenNode[n] = true
			order = append(order, n)
		}
	}
	readsACDom := false
	for _, r := range ctx.Theory.Rules {
		for _, h := range r.Head {
			node(h.Relation)
			for _, l := range r.Body {
				node(l.Atom.Relation)
				edges = append(edges, edge{l.Atom.Relation, h.Relation, l.Negated, l.Atom, r})
				if l.Atom.Relation == core.ACDom {
					readsACDom = true
				}
			}
		}
	}
	if readsACDom {
		for _, r := range ctx.Theory.Rules {
			if !introducesConstants(r) {
				continue
			}
			node(core.ACDom)
			for _, h := range r.Head {
				if h.Relation != core.ACDom {
					edges = append(edges, edge{h.Relation, core.ACDom, false, h, r})
				}
			}
		}
	}
	adj := map[string][]string{}
	for _, e := range edges {
		adj[e.from] = append(adj[e.from], e.to)
	}
	comp := sccOf(order, adj)

	var out []Diagnostic
	reported := map[int]bool{}
	for _, e := range edges {
		if !e.negative || comp[e.from] != comp[e.to] || reported[comp[e.from]] {
			continue
		}
		reported[comp[e.from]] = true
		// The cycle: to → ... → from, closed by the negative edge
		// from → to. Restrict the search to the component.
		cycle := cyclePath(e.to, e.from, adj, comp)
		cycle = append(cycle, e.to)
		out = append(out, Diagnostic{
			Code: "ST001", Severity: Error, Rule: e.rule.Label, Span: atomSpan(e.atom, e.rule),
			Message: fmt.Sprintf("negation is not stratified: %s depends negatively on itself (cycle: %s; 'not %s' closes it)",
				e.to, strings.Join(cycle, " -> "), e.from),
			Detail: &Detail{Relations: []string{e.from, e.to}, Cycle: cycle},
		})
	}
	return out
}

// introducesConstants mirrors the datalog package's notion: some head
// atom writes a constant that no positive body atom mentions, so
// evaluating the rule can grow the active domain.
func introducesConstants(r *core.Rule) bool {
	bodyConsts := make(core.TermSet)
	for _, l := range r.Body {
		if l.Negated {
			continue
		}
		for _, t := range append(append([]core.Term{}, l.Atom.Args...), l.Atom.Annotation...) {
			if t.IsConst() {
				bodyConsts.Add(t)
			}
		}
	}
	for _, h := range r.Head {
		for _, t := range append(append([]core.Term{}, h.Args...), h.Annotation...) {
			if t.IsConst() && !bodyConsts.Has(t) {
				return true
			}
		}
	}
	return false
}

// sccOf computes strongly connected components (iterative Tarjan) with
// deterministic numbering given the node order.
func sccOf(order []string, adj map[string][]string) map[string]int {
	index := map[string]int{}
	low := map[string]int{}
	onStack := map[string]bool{}
	comp := map[string]int{}
	var stack []string
	next, ncomp := 0, 0

	type frame struct {
		node string
		ei   int
	}
	for _, root := range order {
		if _, ok := index[root]; ok {
			continue
		}
		var frames []frame
		push := func(n string) {
			index[n] = next
			low[n] = next
			next++
			stack = append(stack, n)
			onStack[n] = true
			frames = append(frames, frame{node: n})
		}
		push(root)
		for len(frames) > 0 {
			f := &frames[len(frames)-1]
			if f.ei < len(adj[f.node]) {
				w := adj[f.node][f.ei]
				f.ei++
				if _, ok := index[w]; !ok {
					push(w)
				} else if onStack[w] && index[w] < low[f.node] {
					low[f.node] = index[w]
				}
				continue
			}
			// Pop the frame.
			n := f.node
			frames = frames[:len(frames)-1]
			if len(frames) > 0 {
				parent := frames[len(frames)-1].node
				if low[n] < low[parent] {
					low[parent] = low[n]
				}
			}
			if low[n] == index[n] {
				for {
					w := stack[len(stack)-1]
					stack = stack[:len(stack)-1]
					onStack[w] = false
					comp[w] = ncomp
					if w == n {
						break
					}
				}
				ncomp++
			}
		}
	}
	return comp
}

// cyclePath returns a shortest relation path from → ... → to staying
// inside from's strongly connected component.
func cyclePath(from, to string, adj map[string][]string, comp map[string]int) []string {
	if from == to {
		return []string{from}
	}
	parent := map[string]string{from: from}
	queue := []string{from}
	for len(queue) > 0 {
		n := queue[0]
		queue = queue[1:]
		for _, w := range adj[n] {
			if comp[w] != comp[from] {
				continue
			}
			if _, ok := parent[w]; ok {
				continue
			}
			parent[w] = n
			if w == to {
				var rev []string
				for cur := to; ; cur = parent[cur] {
					rev = append(rev, cur)
					if cur == from {
						break
					}
				}
				out := make([]string, 0, len(rev))
				for i := len(rev) - 1; i >= 0; i-- {
					out = append(out, rev[i])
				}
				return out
			}
			queue = append(queue, w)
		}
	}
	// Unreachable for edges inside one SCC; return the endpoints so the
	// diagnostic stays meaningful.
	return []string{from, to}
}

// ---------------------------------------------------------------------------
// termination — TM001

func runTermination(ctx *Context) []Diagnostic {
	rep := ctx.Termination()
	switch rep.Class {
	case termination.ClassWA:
		// Datalog theories are trivially weakly acyclic; only report the
		// certificate when the theory actually invents values.
		var first *core.Rule
		for _, r := range ctx.Theory.Rules {
			if len(r.Exist) > 0 {
				first = r
				break
			}
		}
		if first == nil {
			return nil
		}
		return []Diagnostic{{
			Code: "TM002", Severity: Info,
			Message: fmt.Sprintf("chase terminates: the theory is weakly acyclic (max special-edge rank %d); a certified fact bound is available",
				rep.Bound.MaxRank),
			Rule: first.Label, Span: ruleSpan(first),
			Detail: &Detail{Certificate: rep.Certificate},
		}}
	case termination.ClassJA:
		cycle := posCycleNames(rep.WitnessCycle)
		d := Diagnostic{
			Code: "TM003", Severity: Info,
			Message: fmt.Sprintf("chase terminates: the theory is jointly acyclic, though not weakly acyclic (position cycle: %s)",
				strings.Join(cycle, " -> ")),
			Detail: &Detail{Cycle: cycle, Certificate: rep.Certificate},
		}
		if rep.Witness.Rule != nil {
			d.Rule = rep.Witness.Rule.Label
			d.Span = ruleSpan(rep.Witness.Rule)
		}
		return []Diagnostic{d}
	case termination.ClassSWA:
		cycle := evarCycleNames(rep.JACycle)
		d := Diagnostic{
			Code: "TM004", Severity: Info,
			Message: fmt.Sprintf("chase terminates on every instance (both variants): the critical-instance chase saturates in %d facts, though the theory is not jointly acyclic (dependency cycle: %s)",
				rep.Critical.Facts, strings.Join(cycle, " -> ")),
			Detail: &Detail{Cycle: cycle, Certificate: rep.Certificate},
		}
		if len(rep.JACycle) > 0 {
			r := ctx.Theory.Rules[rep.JACycle[0].Rule]
			d.Rule = r.Label
			d.Span = ruleSpan(r)
		}
		return []Diagnostic{d}
	}
	// No certificate. TM001 keeps its historical weak-acyclicity message;
	// TM005 adds the critical-instance rejection witness when the chase of
	// the all-star instance demonstrably loops on its own nulls.
	cycle := posCycleNames(rep.WitnessCycle)
	d := Diagnostic{
		Code: "TM001", Severity: Warning,
		Message: fmt.Sprintf("chase may not terminate: the theory is not weakly acyclic — value invention at %v feeds back into %v (cycle: %s)",
			rep.Witness.To, rep.Witness.From, strings.Join(cycle, " -> ")),
		Detail: &Detail{Cycle: cycle, Positions: []string{rep.Witness.From.String(), rep.Witness.To.String()}},
	}
	if rep.Witness.Rule != nil {
		d.Rule = rep.Witness.Rule.Label
		d.Span = ruleSpan(rep.Witness.Rule)
	}
	out := []Diagnostic{d}
	if rep.Critical != nil && len(rep.Critical.LineageCycle) > 0 {
		cyc := evarCycleNames(rep.Critical.LineageCycle)
		d5 := Diagnostic{
			Code: "TM005", Severity: Warning,
			Message: fmt.Sprintf("critical-instance chase mints nulls along a cycle of existential variables (%s): the chase is infinite on the all-star instance",
				strings.Join(cyc, " -> ")),
			Detail: &Detail{Cycle: cyc},
		}
		r := ctx.Theory.Rules[rep.Critical.LineageCycle[0].Rule]
		d5.Rule = r.Label
		d5.Span = ruleSpan(r)
		out = append(out, d5)
	}
	return out
}

// posCycleNames renders a position cycle deterministically.
func posCycleNames(ps []classify.Position) []string {
	out := make([]string, len(ps))
	for i, p := range ps {
		out[i] = p.String()
	}
	return out
}

// evarCycleNames renders an existential-variable cycle.
func evarCycleNames(vs []termination.EVar) []string {
	out := make([]string, len(vs))
	for i, v := range vs {
		out[i] = v.String()
	}
	return out
}

// ---------------------------------------------------------------------------
// small message helpers

func plural(names []string) string {
	if len(names) > 1 {
		return "s"
	}
	return ""
}

func singular(names []string) string {
	if len(names) > 1 {
		return ""
	}
	return "s"
}

func singularVerb(names []string) string { return singular(names) }

func isAre(names []string) string {
	if len(names) > 1 {
		return "are"
	}
	return "is"
}
