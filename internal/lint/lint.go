// Package lint is a theory-level static analyzer for existential rule
// theories. It runs a registry of passes over a parsed core.Theory and
// emits structured, source-positioned Diagnostics: fragment-membership
// explainers for every class of internal/classify (why a rule is not
// guarded / frontier-guarded / weakly / nearly guarded, with the
// uncovered variables computed via classify.GuardResidue), rule-safety
// violations, likely authoring mistakes (singleton variables, near-miss
// variable names, predicate shape and case inconsistencies), negation
// stratifiability, and the weak-acyclicity termination risk of
// internal/termination.
//
// Diagnostics are machine-readable (JSON) and carry an explanation
// Detail, so tools can act on *why* membership fails, not only that it
// does. The classify explainers are the single implementation behind both
// `rulekit lint` and `rulekit classify -explain`.
package lint

import (
	"encoding/json"
	"fmt"
	"sort"

	"guardedrules/internal/classify"
	"guardedrules/internal/core"
	"guardedrules/internal/termination"
)

// Severity orders diagnostics: Info notes a property (e.g. a fragment the
// theory is outside of), Warning flags a likely mistake, Error flags a
// theory that is broken (unsafe or not stratifiable).
type Severity int

const (
	Info Severity = iota
	Warning
	Error
)

func (s Severity) String() string {
	switch s {
	case Info:
		return "info"
	case Warning:
		return "warning"
	case Error:
		return "error"
	default:
		return fmt.Sprintf("Severity(%d)", int(s))
	}
}

// MarshalJSON renders the severity as its name, so JSON output is
// self-describing.
func (s Severity) MarshalJSON() ([]byte, error) {
	return json.Marshal(s.String())
}

// UnmarshalJSON parses a severity name, inverting MarshalJSON.
func (s *Severity) UnmarshalJSON(data []byte) error {
	var name string
	if err := json.Unmarshal(data, &name); err != nil {
		return err
	}
	v, err := ParseSeverity(name)
	if err != nil {
		return err
	}
	*s = v
	return nil
}

// ParseSeverity maps a severity name to its value.
func ParseSeverity(name string) (Severity, error) {
	switch name {
	case "info":
		return Info, nil
	case "warning":
		return Warning, nil
	case "error":
		return Error, nil
	}
	return 0, fmt.Errorf("lint: unknown severity %q", name)
}

// Detail is the machine-readable explanation of a diagnostic. Only the
// fields relevant to the diagnostic's code are set.
type Detail struct {
	// Vars are the offending variables (e.g. the guard residue: the
	// universal variables no single body atom covers).
	Vars []string `json:"vars,omitempty"`
	// Guard is the best guard candidate, when one exists.
	Guard string `json:"guard,omitempty"`
	// Positions are the affected argument positions involved.
	Positions []string `json:"positions,omitempty"`
	// Relations are the offending relation names.
	Relations []string `json:"relations,omitempty"`
	// Cycle is an offending cycle, through relations (stratification),
	// positions (weak acyclicity) or existential variables (joint
	// acyclicity, critical-instance lineage), with the first element
	// repeated last.
	Cycle []string `json:"cycle,omitempty"`
	// Certificate is the machine-checkable termination witness behind a
	// TM002-TM004 verdict (termination.Certificate.Verify re-checks it).
	Certificate *termination.Certificate `json:"certificate,omitempty"`
}

// Diagnostic is one finding of a pass.
type Diagnostic struct {
	// Code identifies the check, e.g. "GR001".
	Code     string   `json:"code"`
	Severity Severity `json:"severity"`
	Message  string   `json:"message"`
	// Rule is the label of the rule the diagnostic is about, when any.
	Rule string `json:"rule,omitempty"`
	// Span is the source position: the offending atom where one can be
	// singled out, otherwise the rule.
	Span core.Span `json:"span"`
	// Detail explains the finding in machine-readable form.
	Detail *Detail `json:"detail,omitempty"`
}

// String renders the diagnostic as "span: severity: CODE: message".
func (d Diagnostic) String() string {
	return fmt.Sprintf("%s: %s: %s: %s", d.Span, d.Severity, d.Code, d.Message)
}

// A Pass inspects a theory and reports diagnostics. Passes must not
// modify the theory.
type Pass struct {
	// Name identifies the pass in the registry, e.g. "fragments".
	Name string
	// Doc is a one-line description, naming the paper definition the pass
	// checks where applicable.
	Doc string
	// Run produces the diagnostics of the pass.
	Run func(*Context) []Diagnostic
}

// Context carries the theory under analysis and analyses shared between
// passes, computed once per Run.
type Context struct {
	Theory *core.Theory

	ap     classify.PosSet
	apDone bool

	term *termination.Report
}

// AP returns the affected positions of the theory (Definition 2),
// computed lazily and shared by all passes.
func (c *Context) AP() classify.PosSet {
	if !c.apDone {
		c.ap = classify.AffectedPositions(c.Theory)
		c.apDone = true
	}
	return c.ap
}

// Termination returns the full acyclicity-hierarchy report of the
// theory, computed lazily and shared by all passes — and by callers
// (internal/kbcache) that run lint via RunWithContext and then want the
// verdict without re-analyzing.
func (c *Context) Termination() *termination.Report {
	if c.term == nil {
		c.term = termination.Analyze(c.Theory)
	}
	return c.term
}

// Registry returns the built-in passes in their canonical order.
func Registry() []Pass {
	return []Pass{
		{Name: "safety", Doc: "rule safety (Section 2) and ACDom head prohibition — SF001..SF005", Run: runSafety},
		{Name: "fragments", Doc: "Figure 1 fragment-membership explainers (Definitions 1-3) — GR000..GR006", Run: runFragments},
		{Name: "variables", Doc: "singleton variables and near-miss variable names — VAR001, VAR002", Run: runVariables},
		{Name: "predicates", Doc: "relation shape, case consistency, unused and negation-only relations — PRED001..PRED004", Run: runPredicates},
		{Name: "stratify", Doc: "stratifiability of negation (Definition 22) — ST001", Run: runStratify},
		{Name: "termination", Doc: "chase-termination hierarchy: weak/joint acyclicity and the critical-instance check, with certificates — TM001..TM005", Run: runTermination},
	}
}

// Lookup returns the registered pass with the given name.
func Lookup(name string) (Pass, bool) {
	for _, p := range Registry() {
		if p.Name == name {
			return p, true
		}
	}
	return Pass{}, false
}

// Run analyzes the theory with every registered pass and returns the
// diagnostics in source order (unknown and generated positions last),
// breaking ties by code.
func Run(th *core.Theory) []Diagnostic {
	return RunPasses(th, Registry())
}

// RunPasses analyzes the theory with the given passes.
func RunPasses(th *core.Theory, passes []Pass) []Diagnostic {
	return RunWithContext(&Context{Theory: th}, passes)
}

// RunWithContext analyzes ctx.Theory with the given passes, letting the
// caller keep the Context — and with it the shared analyses (AP,
// Termination) the passes computed.
func RunWithContext(ctx *Context, passes []Pass) []Diagnostic {
	var out []Diagnostic
	for _, p := range passes {
		out = append(out, p.Run(ctx)...)
	}
	Sort(out)
	return out
}

// Sort orders diagnostics by source position, then code, then message.
// Diagnostics without a known position sort last.
func Sort(diags []Diagnostic) {
	sort.SliceStable(diags, func(i, j int) bool {
		a, b := diags[i], diags[j]
		ak, bk := a.Span.Known(), b.Span.Known()
		if ak != bk {
			return ak
		}
		if ak && (a.Span.Line != b.Span.Line || a.Span.Col != b.Span.Col) {
			if a.Span.Line != b.Span.Line {
				return a.Span.Line < b.Span.Line
			}
			return a.Span.Col < b.Span.Col
		}
		if a.Code != b.Code {
			return a.Code < b.Code
		}
		return a.Message < b.Message
	})
}

// MaxSeverity returns the highest severity among the diagnostics, and
// false when there are none.
func MaxSeverity(diags []Diagnostic) (Severity, bool) {
	if len(diags) == 0 {
		return 0, false
	}
	max := diags[0].Severity
	for _, d := range diags[1:] {
		if d.Severity > max {
			max = d.Severity
		}
	}
	return max, true
}

// ExitCode maps diagnostics to a process exit code: 2 with any error, 1
// with any warning, 0 otherwise. Info-level diagnostics do not fail a
// run.
func ExitCode(diags []Diagnostic) int {
	max, ok := MaxSeverity(diags)
	switch {
	case ok && max >= Error:
		return 2
	case ok && max >= Warning:
		return 1
	default:
		return 0
	}
}

// ruleSpan returns the best span for a rule-level diagnostic: the rule's
// own span, falling back to its first head atom.
func ruleSpan(r *core.Rule) core.Span {
	if !r.Span.IsZero() {
		return r.Span
	}
	if len(r.Head) > 0 {
		return r.Head[0].Span
	}
	return core.Span{}
}

// atomSpan returns the atom's span, falling back to the enclosing rule.
func atomSpan(a core.Atom, r *core.Rule) core.Span {
	if !a.Span.IsZero() {
		return a.Span
	}
	return ruleSpan(r)
}

// varNames renders a term set as sorted names.
func varNames(s core.TermSet) []string {
	ts := s.Sorted()
	out := make([]string, len(ts))
	for i, t := range ts {
		out[i] = t.Name
	}
	return out
}

// posNames renders positions deterministically.
func posNames(ps []classify.Position) []string {
	out := make([]string, len(ps))
	for i, p := range ps {
		out[i] = p.String()
	}
	sort.Strings(out)
	return out
}
