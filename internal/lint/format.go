package lint

import (
	"encoding/json"
	"fmt"
	"io"
)

// Finding couples a diagnostic with the file it was found in, for output
// covering several files.
type Finding struct {
	File string `json:"file"`
	Diagnostic
}

// Findings attaches a file name to each diagnostic.
func Findings(file string, diags []Diagnostic) []Finding {
	out := make([]Finding, len(diags))
	for i, d := range diags {
		out[i] = Finding{File: file, Diagnostic: d}
	}
	return out
}

// WriteText renders findings one per line:
//
//	theory.rules:3:1: warning: GR004: rule is not weakly frontier-guarded: ...
//
// Generated and unknown positions render as the span's description in
// place of line:col.
func WriteText(w io.Writer, findings []Finding) error {
	for _, f := range findings {
		prefix := f.Span.String()
		if f.File != "" {
			prefix = f.File + ":" + prefix
		}
		if _, err := fmt.Fprintf(w, "%s: %s: %s: %s\n", prefix, f.Severity, f.Code, f.Message); err != nil {
			return err
		}
	}
	return nil
}

// WriteJSON renders findings as a JSON array (never null), one object per
// finding, indented for readability. The output round-trips through
// encoding/json back into []Finding.
func WriteJSON(w io.Writer, findings []Finding) error {
	if findings == nil {
		findings = []Finding{}
	}
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(findings)
}
