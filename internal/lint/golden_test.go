package lint

import (
	"bytes"
	"flag"
	"os"
	"path/filepath"
	"regexp"
	"sort"
	"testing"

	"guardedrules/internal/parser"
)

var update = flag.Bool("update", false, "rewrite .lint.golden files")

// TestGoldenTheories runs every theory under testdata/ through the full
// lint registry and compares the text rendering against a .lint.golden
// file next to the fixture. Regenerate with:
//
//	go test ./internal/lint -run Golden -update
func TestGoldenTheories(t *testing.T) {
	paths, err := filepath.Glob("../../testdata/*.rules")
	if err != nil {
		t.Fatal(err)
	}
	nested, err := filepath.Glob("../../testdata/*/*.rules")
	if err != nil {
		t.Fatal(err)
	}
	paths = append(paths, nested...)
	sort.Strings(paths)
	if len(paths) == 0 {
		t.Fatal("no fixtures found under testdata/")
	}
	for _, path := range paths {
		path := path
		t.Run(filepath.Base(path), func(t *testing.T) {
			src, err := os.ReadFile(path)
			if err != nil {
				t.Fatal(err)
			}
			prog, err := parser.ParseLenient(string(src))
			if err != nil {
				t.Fatalf("parse: %v", err)
			}
			diags := Run(prog.Theory)
			var buf bytes.Buffer
			if err := WriteText(&buf, Findings(filepath.Base(path), diags)); err != nil {
				t.Fatal(err)
			}
			golden := path + ".lint.golden"
			if *update {
				if err := os.WriteFile(golden, buf.Bytes(), 0o644); err != nil {
					t.Fatal(err)
				}
				return
			}
			want, err := os.ReadFile(golden)
			if err != nil {
				t.Fatalf("missing golden file (run with -update): %v", err)
			}
			if !bytes.Equal(buf.Bytes(), want) {
				t.Errorf("lint output drifted from %s:\n--- got ---\n%s--- want ---\n%s",
					golden, buf.Bytes(), want)
			}
		})
	}
}

// TestExamplesLintClean extracts every inline theory passed to
// ParseTheory in examples/*/main.go and asserts none of them has
// error-severity findings — the runnable documentation must stay clean.
func TestExamplesLintClean(t *testing.T) {
	mains, err := filepath.Glob("../../examples/*/main.go")
	if err != nil {
		t.Fatal(err)
	}
	if len(mains) == 0 {
		t.Fatal("no examples found")
	}
	theoryLit := regexp.MustCompile("(?s)ParseTheory\\(`([^`]*)`\\)")
	seen := 0
	for _, path := range mains {
		src, err := os.ReadFile(path)
		if err != nil {
			t.Fatal(err)
		}
		for i, m := range theoryLit.FindAllStringSubmatch(string(src), -1) {
			seen++
			prog, err := parser.ParseLenient(m[1])
			if err != nil {
				t.Errorf("%s theory %d: parse: %v", path, i, err)
				continue
			}
			for _, d := range Run(prog.Theory) {
				if d.Severity >= Error {
					t.Errorf("%s theory %d: %v", path, i, d)
				}
			}
		}
	}
	if seen == 0 {
		t.Fatal("no inline theories extracted from examples — did the idiom change?")
	}
}
