// Package par provides the small deterministic worker-pool primitive
// shared by the parallel fixpoint engines (datalog's semi-naive
// evaluator and the chase's trigger collector).
package par

import (
	"fmt"
	"runtime/debug"
	"sync"
	"sync/atomic"
)

// PanicError is a worker panic converted into a value: the engines run
// untrusted-adjacent work (user theories through compiled join plans) on
// pool goroutines, where a raw panic would kill the whole process rather
// than the one request that triggered it. RunUnits recovers the panic on
// the worker, and the caller surfaces it as a per-request failure.
type PanicError struct {
	// Unit is the work-item index whose run panicked; -1 when the panic
	// was caught at an engine boundary outside the pool (coordinator
	// goroutine).
	Unit int
	// Value is the recovered panic value.
	Value any
	// Stack is the panicking goroutine's stack, captured at recover.
	Stack []byte
}

func (e *PanicError) Error() string {
	return fmt.Sprintf("par: panic in worker unit %d: %v", e.Unit, e.Value)
}

// RunUnits executes run(0..n-1) across a pool of workers. Units are
// claimed from a shared counter; determinism is preserved because each
// unit writes only its own result slot and the caller merges slots in
// unit order. Workers poll canceled between units and drain without
// claiming more; wg.Wait always runs, so cancellation can never leak a
// goroutine. Units already started finish their (possibly
// canceled-short) run; the caller discards all buffers of a canceled
// round, so partial units never leak into the result.
//
// A panic inside run is contained to its worker: the first one is
// captured as a *PanicError and returned after the pool drains (the
// remaining workers stop claiming units, exactly as on cancellation).
// The caller must treat a non-nil error like a canceled round — discard
// the buffers and fail the request — so one poisoned unit can never
// kill the process or corrupt the merged result.
func RunUnits(n, workers int, canceled func() bool, run func(u int)) (err error) {
	var panicked atomic.Pointer[PanicError]
	runSafe := func(u int) {
		defer func() {
			if v := recover(); v != nil {
				panicked.CompareAndSwap(nil, &PanicError{Unit: u, Value: v, Stack: debug.Stack()})
			}
		}()
		run(u)
	}
	if workers <= 1 || n <= 1 {
		for u := 0; u < n; u++ {
			if canceled() {
				break
			}
			runSafe(u)
			if pe := panicked.Load(); pe != nil {
				return pe
			}
		}
		if pe := panicked.Load(); pe != nil {
			return pe
		}
		return nil
	}
	if workers > n {
		workers = n
	}
	var next atomic.Int64
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				if canceled() || panicked.Load() != nil {
					return
				}
				u := int(next.Add(1)) - 1
				if u >= n {
					return
				}
				runSafe(u)
			}
		}()
	}
	wg.Wait()
	if pe := panicked.Load(); pe != nil {
		return pe
	}
	return nil
}
