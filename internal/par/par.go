// Package par provides the small deterministic worker-pool primitive
// shared by the parallel fixpoint engines (datalog's semi-naive
// evaluator and the chase's trigger collector).
package par

import (
	"sync"
	"sync/atomic"
)

// RunUnits executes run(0..n-1) across a pool of workers. Units are
// claimed from a shared counter; determinism is preserved because each
// unit writes only its own result slot and the caller merges slots in
// unit order. Workers poll canceled between units and drain without
// claiming more; wg.Wait always runs, so cancellation can never leak a
// goroutine. Units already started finish their (possibly
// canceled-short) run; the caller discards all buffers of a canceled
// round, so partial units never leak into the result.
func RunUnits(n, workers int, canceled func() bool, run func(u int)) {
	if workers <= 1 || n <= 1 {
		for u := 0; u < n; u++ {
			if canceled() {
				return
			}
			run(u)
		}
		return
	}
	if workers > n {
		workers = n
	}
	var next atomic.Int64
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				if canceled() {
					return
				}
				u := int(next.Add(1)) - 1
				if u >= n {
					return
				}
				run(u)
			}
		}()
	}
	wg.Wait()
}
