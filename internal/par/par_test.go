package par

import (
	"errors"
	"fmt"
	"runtime"
	"strings"
	"sync/atomic"
	"testing"
	"time"
)

func never() bool { return false }

// Every unit runs exactly once at any worker count, panic-free.
func TestRunUnitsCompletes(t *testing.T) {
	for _, workers := range []int{1, 2, 4, 8} {
		const n = 100
		var ran [n]atomic.Int32
		if err := RunUnits(n, workers, never, func(u int) { ran[u].Add(1) }); err != nil {
			t.Fatalf("workers=%d: unexpected error %v", workers, err)
		}
		for u := range ran {
			if got := ran[u].Load(); got != 1 {
				t.Fatalf("workers=%d: unit %d ran %d times", workers, u, got)
			}
		}
	}
}

// A panicking unit is contained: RunUnits returns a typed *PanicError
// carrying the unit, value and stack, the pool drains (no goroutine
// leaks), and the panic never escapes to the caller's goroutine.
func TestRunUnitsPanicContainment(t *testing.T) {
	for _, workers := range []int{1, 2, 4, 8} {
		for _, bad := range []int{0, 3, 7} {
			err := RunUnits(8, workers, never, func(u int) {
				if u == bad {
					panic(fmt.Sprintf("boom-%d", u))
				}
			})
			var pe *PanicError
			if !errors.As(err, &pe) {
				t.Fatalf("workers=%d bad=%d: err = %v, want *PanicError", workers, bad, err)
			}
			if pe.Unit != bad || pe.Value != fmt.Sprintf("boom-%d", bad) {
				t.Fatalf("workers=%d: PanicError = %+v", workers, pe)
			}
			if !strings.Contains(string(pe.Stack), "par_test") {
				t.Fatalf("stack must point at the panicking frame:\n%s", pe.Stack)
			}
		}
	}
}

// After a panic, workers stop claiming fresh units (the pool sheds the
// rest of the round exactly as on cancellation).
func TestRunUnitsPanicStopsClaiming(t *testing.T) {
	const n = 10_000
	var ran atomic.Int32
	err := RunUnits(n, 4, never, func(u int) {
		if u == 0 {
			panic("early")
		}
		ran.Add(1)
	})
	var pe *PanicError
	if !errors.As(err, &pe) {
		t.Fatalf("err = %v", err)
	}
	if got := ran.Load(); got == n-1 {
		t.Fatalf("all %d units ran despite an immediate panic: pool did not shed", got)
	}
}

// The sequential path (workers=1) contains panics identically.
func TestRunUnitsPanicSequential(t *testing.T) {
	var ran int
	err := RunUnits(5, 1, never, func(u int) {
		if u == 2 {
			panic("seq")
		}
		ran++
	})
	var pe *PanicError
	if !errors.As(err, &pe) || pe.Unit != 2 {
		t.Fatalf("err = %v", err)
	}
	if ran != 2 {
		t.Fatalf("units after the panic ran: %d", ran)
	}
}

// Panic containment leaks no goroutines: the pool always drains.
func TestRunUnitsPanicNoGoroutineLeak(t *testing.T) {
	before := runtime.NumGoroutine()
	for i := 0; i < 50; i++ {
		_ = RunUnits(32, 8, never, func(u int) {
			if u%5 == 0 {
				panic(u)
			}
		})
	}
	deadline := time.Now().Add(2 * time.Second)
	for runtime.NumGoroutine() > before+2 {
		if time.Now().After(deadline) {
			t.Fatalf("goroutines: %d before, %d after panic storm", before, runtime.NumGoroutine())
		}
		time.Sleep(10 * time.Millisecond)
	}
}

// Cancellation still drains cleanly and reports no error.
func TestRunUnitsCanceled(t *testing.T) {
	var calls atomic.Int32
	canceled := func() bool { return calls.Load() >= 3 }
	if err := RunUnits(1000, 2, canceled, func(u int) { calls.Add(1) }); err != nil {
		t.Fatalf("cancellation must not be an error: %v", err)
	}
	if calls.Load() == 1000 {
		t.Fatal("cancellation did not shed units")
	}
}
