package core

import (
	"fmt"
	"strings"
)

// CanonicalKey returns a string that is identical for two rules exactly
// when they are equal up to renaming of variables and reordering of body
// literals and head atoms. It is used to deduplicate rules during the
// expansion of Definition 12 and the saturation of Definition 19, whose
// termination arguments count rules up to variable renaming.
//
// The key is the lexicographically least serialization of the rule over
// all literal orderings, with variables numbered by first occurrence. The
// search backtracks only on serialization ties, so it is cheap for the
// small rules produced by the translations.
func CanonicalKey(r *Rule) string {
	c := canonizer{}
	bodyAtoms := make([]Atom, len(r.Body))
	neg := make([]bool, len(r.Body))
	for i, l := range r.Body {
		bodyAtoms[i] = l.Atom
		neg[i] = l.Negated
	}
	bestBody, numberings := c.minOrder(bodyAtoms, neg, nil)
	// Several optimal body orderings can induce different variable
	// numberings; the head is minimized over all of them so the key does
	// not depend on input order.
	bestHead := ""
	for i, vars := range numberings {
		head, _ := c.minOrder(r.Head, make([]bool, len(r.Head)), vars)
		if i == 0 || head < bestHead {
			bestHead = head
		}
	}
	return bestBody + " => " + bestHead
}

// CanonicalAtomSet returns a canonical serialization of the atom multiset
// (independent of atom order and variable names) together with every
// variable numbering that achieves it. Two atom sets are isomorphic
// exactly when their serializations agree, and corresponding variables
// receive corresponding numbering multisets.
func CanonicalAtomSet(atoms []Atom) (string, []map[Term]int) {
	c := canonizer{}
	return c.minOrder(atoms, make([]bool, len(atoms)), nil)
}

// CanonicalVarOrder sorts the given variables by an isomorphism-invariant
// criterion derived from the numberings: each variable is keyed by the
// sorted vector of its indices across all optimal numberings.
func CanonicalVarOrder(vars []Term, numberings []map[Term]int) []Term {
	type entry struct {
		v   Term
		key string
	}
	entries := make([]entry, len(vars))
	for i, v := range vars {
		idx := make([]int, 0, len(numberings))
		for _, m := range numberings {
			if n, ok := m[v]; ok {
				idx = append(idx, n)
			} else {
				idx = append(idx, 1<<30)
			}
		}
		sortInts(idx)
		key := ""
		for _, n := range idx {
			key += fmt.Sprintf("%08d,", n)
		}
		entries[i] = entry{v, key}
	}
	for i := 1; i < len(entries); i++ {
		for j := i; j > 0 && (entries[j].key < entries[j-1].key ||
			(entries[j].key == entries[j-1].key && lessTerm(entries[j].v, entries[j-1].v))); j-- {
			entries[j], entries[j-1] = entries[j-1], entries[j]
		}
	}
	out := make([]Term, len(entries))
	for i, e := range entries {
		out[i] = e.v
	}
	return out
}

func sortInts(xs []int) {
	for i := 1; i < len(xs); i++ {
		for j := i; j > 0 && xs[j] < xs[j-1]; j-- {
			xs[j], xs[j-1] = xs[j-1], xs[j]
		}
	}
}

type canonizer struct{}

// minOrder finds the lexicographically least serialization of the given
// atoms over all orderings, numbering unseen variables in order of first
// occurrence starting from the numbering in seed. It returns the
// serialization and every variable numbering that achieves it.
func (c canonizer) minOrder(atoms []Atom, negated []bool, seed map[Term]int) (string, []map[Term]int) {
	if len(atoms) == 0 {
		m := map[Term]int{}
		for k, v := range seed {
			m[k] = v
		}
		return "", []map[Term]int{m}
	}
	type state struct {
		used []bool
		vars map[Term]int
		acc  []string
	}
	var best string
	var bestVars []map[Term]int
	haveBest := false

	var rec func(s state)
	rec = func(s state) {
		done := true
		for _, u := range s.used {
			if !u {
				done = false
				break
			}
		}
		if done {
			ser := strings.Join(s.acc, " & ")
			switch {
			case !haveBest || ser < best:
				best = ser
				bestVars = []map[Term]int{s.vars}
				haveBest = true
			case ser == best:
				bestVars = append(bestVars, s.vars)
			}
			return
		}
		// Serialize each unused atom under the current numbering and keep
		// only the minimal candidates.
		type cand struct {
			idx  int
			ser  string
			vars map[Term]int
		}
		var cands []cand
		minSer := ""
		for i := range atoms {
			if s.used[i] {
				continue
			}
			ser, vars := serializeAtom(atoms[i], negated[i], s.vars)
			if len(cands) == 0 || ser < minSer {
				cands = []cand{{i, ser, vars}}
				minSer = ser
			} else if ser == minSer {
				cands = append(cands, cand{i, ser, vars})
			}
		}
		// Prune: if the partial serialization already exceeds the best
		// complete one, stop.
		partial := strings.Join(append(append([]string(nil), s.acc...), minSer), " & ")
		if haveBest && partial > best && !strings.HasPrefix(best, partial) {
			return
		}
		for _, cd := range cands {
			used2 := append([]bool(nil), s.used...)
			used2[cd.idx] = true
			rec(state{used: used2, vars: cd.vars, acc: append(append([]string(nil), s.acc...), cd.ser)})
		}
	}

	vars := map[Term]int{}
	for k, v := range seed {
		vars[k] = v
	}
	rec(state{used: make([]bool, len(atoms)), vars: vars, acc: nil})
	return best, bestVars
}

// serializeAtom renders an atom with variables replaced by canonical
// indices, extending the numbering for unseen variables. It returns the
// serialization and the (possibly extended) numbering.
func serializeAtom(a Atom, negated bool, vars map[Term]int) (string, map[Term]int) {
	out := vars
	extended := false
	extend := func() {
		if !extended {
			m := make(map[Term]int, len(vars)+2)
			for k, v := range vars {
				m[k] = v
			}
			out = m
			extended = true
		}
	}
	var sb strings.Builder
	// Prefix with the number of variables this atom would newly introduce
	// under the current numbering: the canonical order then prefers atoms
	// connected to already-visited ones, which collapses the factorial tie
	// space of rules with many interchangeable-looking pendant atoms
	// (e.g. the ACDom guards added by Definition 13).
	newVars := 0
	seenNew := map[Term]bool{}
	countOnce := func(t Term) {
		if t.IsVar() && !seenNew[t] {
			if _, ok := vars[t]; !ok {
				seenNew[t] = true
				newVars++
			}
		}
	}
	for _, t := range a.Annotation {
		countOnce(t)
	}
	for _, t := range a.Args {
		countOnce(t)
	}
	if newVars > 9 {
		newVars = 9
	}
	sb.WriteByte(byte('0' + newVars))
	if negated {
		sb.WriteString("~")
	}
	sb.WriteString(a.Relation)
	write := func(t Term) {
		if t.IsVar() {
			n, ok := out[t]
			if !ok {
				extend()
				n = len(out)
				out[t] = n
			}
			fmt.Fprintf(&sb, "?%d", n)
		} else {
			sb.WriteString(t.String())
		}
	}
	if len(a.Annotation) > 0 {
		sb.WriteByte('[')
		for i, t := range a.Annotation {
			if i > 0 {
				sb.WriteByte(',')
			}
			write(t)
		}
		sb.WriteByte(']')
	}
	sb.WriteByte('(')
	for i, t := range a.Args {
		if i > 0 {
			sb.WriteByte(',')
		}
		write(t)
	}
	sb.WriteByte(')')
	return sb.String(), out
}
