package core

// Subst is a substitution mapping variables to terms. Terms not in the map
// are left unchanged.
type Subst map[Term]Term

// Apply returns the image of t under the substitution.
func (s Subst) Apply(t Term) Term {
	if out, ok := s[t]; ok {
		return out
	}
	return t
}

// ApplyAtom applies the substitution to arguments and annotation of a.
func (s Subst) ApplyAtom(a Atom) Atom {
	out := Atom{Relation: a.Relation}
	if a.Annotation != nil {
		out.Annotation = make([]Term, len(a.Annotation))
		for i, t := range a.Annotation {
			out.Annotation[i] = s.Apply(t)
		}
	}
	out.Args = make([]Term, len(a.Args))
	for i, t := range a.Args {
		out.Args[i] = s.Apply(t)
	}
	return out
}

// ApplyAtoms applies the substitution to a list of atoms.
func (s Subst) ApplyAtoms(atoms []Atom) []Atom {
	out := make([]Atom, len(atoms))
	for i, a := range atoms {
		out[i] = s.ApplyAtom(a)
	}
	return out
}

// ApplyRule applies the substitution to the whole rule, including
// existential variables (which are normally not in the domain of s).
func (s Subst) ApplyRule(r *Rule) *Rule {
	out := &Rule{Label: r.Label}
	out.Body = make([]Literal, len(r.Body))
	for i, l := range r.Body {
		out.Body[i] = Literal{Atom: s.ApplyAtom(l.Atom), Negated: l.Negated}
	}
	out.Head = s.ApplyAtoms(r.Head)
	out.Exist = make([]Term, len(r.Exist))
	for i, v := range r.Exist {
		out.Exist[i] = s.Apply(v)
	}
	return out
}

// Compose returns the substitution t ∘ s, i.e. (t∘s)(x) = t(s(x)), with
// domain dom(s) ∪ dom(t).
func (s Subst) Compose(t Subst) Subst {
	out := make(Subst, len(s)+len(t))
	for k, v := range s {
		out[k] = t.Apply(v)
	}
	for k, v := range t {
		if _, ok := out[k]; !ok {
			out[k] = v
		}
	}
	return out
}

// Clone returns a copy of the substitution.
func (s Subst) Clone() Subst {
	out := make(Subst, len(s))
	for k, v := range s {
		out[k] = v
	}
	return out
}

// MatchAtom extends the substitution s so that s(pattern) = target, where
// target must be at least as ground as the pattern image. It reports
// whether matching succeeded; on failure s is unchanged. Both arguments and
// annotations are matched.
func MatchAtom(pattern, target Atom, s Subst) (Subst, bool) {
	if pattern.Relation != target.Relation ||
		len(pattern.Args) != len(target.Args) ||
		len(pattern.Annotation) != len(target.Annotation) {
		return s, false
	}
	out := s.Clone()
	match := func(p, t Term) bool {
		if p.IsVar() {
			if b, ok := out[p]; ok {
				return b == t
			}
			out[p] = t
			return true
		}
		return p == t
	}
	for i := range pattern.Args {
		if !match(pattern.Args[i], target.Args[i]) {
			return s, false
		}
	}
	for i := range pattern.Annotation {
		if !match(pattern.Annotation[i], target.Annotation[i]) {
			return s, false
		}
	}
	return out, true
}
