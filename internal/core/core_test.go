package core

import (
	"math/rand"
	"testing"
	"testing/quick"
)

func TestTermBasics(t *testing.T) {
	c := Const("a")
	n := NewNull("n1")
	v := Var("x")
	if !c.IsConst() || c.IsNull() || c.IsVar() {
		t.Errorf("constant kind predicates wrong: %v", c)
	}
	if !n.IsNull() || !n.IsGround() {
		t.Errorf("null kind predicates wrong: %v", n)
	}
	if !v.IsVar() || v.IsGround() {
		t.Errorf("variable kind predicates wrong: %v", v)
	}
	if n.String() != "_:n1" {
		t.Errorf("null rendering: got %q", n.String())
	}
	if Const("a") != c {
		t.Error("terms must be comparable values")
	}
	if Const("x") == Var("x") {
		t.Error("constant and variable with same name must differ")
	}
}

func TestTermSetOps(t *testing.T) {
	s := NewTermSet(Var("x"), Var("y"))
	o := NewTermSet(Var("y"), Var("z"))
	if !s.Has(Var("x")) || s.Has(Var("z")) {
		t.Error("Has wrong")
	}
	in := s.Intersect(o)
	if len(in) != 1 || !in.Has(Var("y")) {
		t.Errorf("Intersect wrong: %v", in)
	}
	diff := s.Minus(o)
	if len(diff) != 1 || !diff.Has(Var("x")) {
		t.Errorf("Minus wrong: %v", diff)
	}
	if s.ContainsAll(o) {
		t.Error("ContainsAll wrong")
	}
	if !s.ContainsAll(NewTermSet(Var("x"))) {
		t.Error("ContainsAll subset wrong")
	}
	sorted := NewTermSet(Var("b"), Const("z"), Var("a")).Sorted()
	if sorted[0] != Const("z") || sorted[1] != Var("a") || sorted[2] != Var("b") {
		t.Errorf("Sorted order wrong: %v", sorted)
	}
}

func TestAtomBasics(t *testing.T) {
	a := NewAtom("R", Var("x"), Const("c"))
	if a.Arity() != 2 || a.IsGround() {
		t.Error("arity/ground wrong")
	}
	if a.String() != "R(x,c)" {
		t.Errorf("rendering: %q", a.String())
	}
	ann := Atom{Relation: "R", Annotation: []Term{Var("u")}, Args: []Term{Var("x")}}
	if ann.String() != "R[u](x)" {
		t.Errorf("annotated rendering: %q", ann.String())
	}
	if !ann.AnnVars().Has(Var("u")) || ann.Vars().Has(Var("u")) {
		t.Error("annotation variables must be separate from argument variables")
	}
	if ann.Key() == a.Key() {
		t.Error("annotated and plain R must have distinct keys")
	}
	b := a.Clone()
	b.Args[0] = Var("y")
	if a.Args[0] != Var("x") {
		t.Error("Clone must deep copy")
	}
	if !a.Equal(NewAtom("R", Var("x"), Const("c"))) || a.Equal(NewAtom("R", Var("x"), Const("d"))) {
		t.Error("Equal wrong")
	}
}

func TestRuleVarSets(t *testing.T) {
	// hasTopic(x,z), hasAuthor(x,u) -> exists w. P(z,w)
	r := NewRule(
		[]Atom{NewAtom("hasTopic", Var("x"), Var("z")), NewAtom("hasAuthor", Var("x"), Var("u"))},
		[]Term{Var("w")},
		NewAtom("P", Var("z"), Var("w")),
	)
	uv := r.UVars()
	if len(uv) != 3 || !uv.Has(Var("x")) || !uv.Has(Var("z")) || !uv.Has(Var("u")) {
		t.Errorf("uvars wrong: %v", uv)
	}
	fv := r.FVars()
	if len(fv) != 1 || !fv.Has(Var("z")) {
		t.Errorf("fvars wrong: %v", fv)
	}
	if r.IsDatalog() {
		t.Error("rule with exists must not be Datalog")
	}
	if err := r.CheckSafe(); err != nil {
		t.Errorf("safe rule rejected: %v", err)
	}
}

func TestRuleSafety(t *testing.T) {
	bad := NewRule([]Atom{NewAtom("R", Var("x"))}, nil, NewAtom("P", Var("y")))
	if err := bad.CheckSafe(); err == nil {
		t.Error("unsafe frontier variable must be rejected")
	}
	badNeg := &Rule{
		Body: []Literal{Neg(NewAtom("R", Var("x")))},
		Head: []Atom{NewAtom("P", Var("x"))},
	}
	if err := badNeg.CheckSafe(); err == nil {
		t.Error("negated-only variable must be rejected")
	}
	okNeg := &Rule{
		Body: []Literal{Pos(NewAtom("S", Var("x"))), Neg(NewAtom("R", Var("x")))},
		Head: []Atom{NewAtom("P", Var("x"))},
	}
	if err := okNeg.CheckSafe(); err != nil {
		t.Errorf("safe negation rejected: %v", err)
	}
	evInBody := NewRule([]Atom{NewAtom("R", Var("y"))}, []Term{Var("y")}, NewAtom("P", Var("y")))
	if err := evInBody.CheckSafe(); err == nil {
		t.Error("existential variable in body must be rejected")
	}
}

func TestTheorySignature(t *testing.T) {
	th := NewTheory(
		NewRule([]Atom{NewAtom("R", Var("x"), Var("y"))}, nil, NewAtom("P", Var("x"))),
		NewRule([]Atom{NewAtom("P", Var("x"))}, nil, NewAtom("R", Var("x"), Var("x"))),
	)
	sig, err := th.Signature()
	if err != nil {
		t.Fatal(err)
	}
	if len(sig) != 2 {
		t.Errorf("signature size: %d", len(sig))
	}
	if th.MaxArity() != 2 {
		t.Errorf("max arity: %d", th.MaxArity())
	}
	bad := NewTheory(
		NewRule([]Atom{NewAtom("R", Var("x"))}, nil, NewAtom("R", Var("x"), Var("x"))),
	)
	if _, err := bad.Signature(); err == nil {
		t.Error("inconsistent arity must be rejected")
	}
}

func TestFreshNames(t *testing.T) {
	th := NewTheory(NewRule([]Atom{NewAtom("Aux_1", Var("x"))}, nil, NewAtom("P", Var("x"))))
	n := th.FreshRelation("Aux")
	if n == "Aux_1" {
		t.Error("fresh relation clashed with existing name")
	}
	v := FreshVar("x", NewTermSet(Var("x1"), Var("x2")))
	if v == Var("x1") || v == Var("x2") {
		t.Error("fresh variable clashed")
	}
}

func TestSubstitution(t *testing.T) {
	s := Subst{Var("x"): Const("a")}
	a := s.ApplyAtom(NewAtom("R", Var("x"), Var("y")))
	if !a.Equal(NewAtom("R", Const("a"), Var("y"))) {
		t.Errorf("ApplyAtom wrong: %v", a)
	}
	t2 := Subst{Var("y"): Const("b")}
	c := s.Compose(t2)
	if c.Apply(Var("x")) != Const("a") || c.Apply(Var("y")) != Const("b") {
		t.Errorf("Compose wrong: %v", c)
	}
	// Composition applies t to the range of s.
	s3 := Subst{Var("x"): Var("y")}
	c3 := s3.Compose(t2)
	if c3.Apply(Var("x")) != Const("b") {
		t.Errorf("Compose must apply second subst to range: %v", c3)
	}
}

func TestMatchAtom(t *testing.T) {
	pat := NewAtom("R", Var("x"), Var("x"))
	if _, ok := MatchAtom(pat, NewAtom("R", Const("a"), Const("b")), Subst{}); ok {
		t.Error("inconsistent match must fail")
	}
	s, ok := MatchAtom(pat, NewAtom("R", Const("a"), Const("a")), Subst{})
	if !ok || s.Apply(Var("x")) != Const("a") {
		t.Error("match failed")
	}
	// Failure must not mutate the input substitution.
	base := Subst{Var("x"): Const("a")}
	_, ok = MatchAtom(pat, NewAtom("R", Const("b"), Const("b")), base)
	if ok || base.Apply(Var("x")) != Const("a") {
		t.Error("failed match must leave input substitution unchanged")
	}
}

func TestCanonicalKeyRenaming(t *testing.T) {
	r1 := NewRule(
		[]Atom{NewAtom("R", Var("x"), Var("y")), NewAtom("R", Var("y"), Var("z"))},
		nil, NewAtom("P", Var("x"), Var("z")),
	)
	r2 := NewRule(
		[]Atom{NewAtom("R", Var("b"), Var("c")), NewAtom("R", Var("a"), Var("b"))},
		nil, NewAtom("P", Var("a"), Var("c")),
	)
	if CanonicalKey(r1) != CanonicalKey(r2) {
		t.Errorf("renamed/reordered rules must share a key:\n%s\n%s", CanonicalKey(r1), CanonicalKey(r2))
	}
	r3 := NewRule(
		[]Atom{NewAtom("R", Var("x"), Var("y")), NewAtom("R", Var("z"), Var("y"))},
		nil, NewAtom("P", Var("x"), Var("z")),
	)
	if CanonicalKey(r1) == CanonicalKey(r3) {
		t.Error("structurally different rules must have different keys")
	}
}

func TestCanonicalKeyExistential(t *testing.T) {
	r1 := NewRule([]Atom{NewAtom("A", Var("x"))}, []Term{Var("y")}, NewAtom("R", Var("x"), Var("y")))
	r2 := NewRule([]Atom{NewAtom("A", Var("u"))}, []Term{Var("w")}, NewAtom("R", Var("u"), Var("w")))
	if CanonicalKey(r1) != CanonicalKey(r2) {
		t.Error("existential rules equal up to renaming must share a key")
	}
	r3 := NewRule([]Atom{NewAtom("A", Var("x"))}, nil, NewAtom("R", Var("x"), Var("x")))
	if CanonicalKey(r1) == CanonicalKey(r3) {
		t.Error("distinct head shapes must differ")
	}
}

func TestCanonicalKeyNegation(t *testing.T) {
	r1 := &Rule{
		Body: []Literal{Pos(NewAtom("S", Var("x"))), Neg(NewAtom("R", Var("x")))},
		Head: []Atom{NewAtom("P", Var("x"))},
	}
	r2 := &Rule{
		Body: []Literal{Pos(NewAtom("S", Var("x"))), Pos(NewAtom("R", Var("x")))},
		Head: []Atom{NewAtom("P", Var("x"))},
	}
	if CanonicalKey(r1) == CanonicalKey(r2) {
		t.Error("negation must be part of the canonical key")
	}
}

// Property: the canonical key is invariant under random variable renaming
// and random body reordering.
func TestCanonicalKeyInvariantProperty(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	f := func(seed int64) bool {
		r := rng.Intn(1000)
		_ = r
		rule := randomRule(rng)
		key := CanonicalKey(rule)
		perm := rng.Perm(len(rule.Body))
		shuffled := rule.Clone()
		for i, p := range perm {
			shuffled.Body[i] = rule.Body[p]
		}
		// Rename every variable v -> v'.
		ren := Subst{}
		for v := range shuffled.UVars() {
			ren[v] = Var(v.Name + "_r")
		}
		for _, v := range shuffled.Exist {
			ren[v] = Var(v.Name + "_r")
		}
		renamed := ren.ApplyRule(shuffled)
		return CanonicalKey(renamed) == key
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

func randomRule(rng *rand.Rand) *Rule {
	nvars := 2 + rng.Intn(3)
	vars := make([]Term, nvars)
	for i := range vars {
		vars[i] = Var(string(rune('u' + i)))
	}
	natoms := 1 + rng.Intn(4)
	body := make([]Atom, natoms)
	rels := []string{"R", "S", "T"}
	for i := range body {
		rel := rels[rng.Intn(len(rels))]
		body[i] = NewAtom(rel, vars[rng.Intn(nvars)], vars[rng.Intn(nvars)])
	}
	head := NewAtom("P", body[0].Args[0])
	return NewRule(body, nil, head)
}

func TestRuleString(t *testing.T) {
	r := NewRule(
		[]Atom{NewAtom("Publication", Var("x"))},
		[]Term{Var("k1"), Var("k2")},
		NewAtom("Keywords", Var("x"), Var("k1"), Var("k2")),
	)
	want := "Publication(x) -> exists k1,k2. Keywords(x,k1,k2)"
	if r.String() != want {
		t.Errorf("String: got %q want %q", r.String(), want)
	}
}

func TestTheoryCheckSafeACDom(t *testing.T) {
	th := NewTheory(NewRule([]Atom{NewAtom("R", Var("x"))}, nil, NewAtom(ACDom, Var("x"))))
	if err := th.CheckSafe(); err == nil {
		t.Error("ACDom in head must be rejected")
	}
}

func TestAtomHelpers(t *testing.T) {
	a := NewAtom("R", Var("x"), Const("c"))
	b := NewAtom("S", Var("y"))
	if s := AtomsString([]Atom{a, b}); s != "R(x,c), S(y)" {
		t.Errorf("AtomsString: %q", s)
	}
	ts := TermsOf([]Atom{a, b})
	if len(ts) != 3 {
		t.Errorf("TermsOf: %v", ts)
	}
	av := AllVarsOf([]Atom{
		{Relation: "R", Annotation: []Term{Var("u")}, Args: []Term{Var("x")}},
	})
	if len(av) != 2 {
		t.Errorf("AllVarsOf: %v", av)
	}
	if !ContainsAtom([]Atom{a, b}, NewAtom("S", Var("y"))) {
		t.Error("ContainsAtom must find S(y)")
	}
	if ContainsAtom([]Atom{a}, b) {
		t.Error("ContainsAtom must not find missing atom")
	}
	if terms := a.Terms(); len(terms) != 2 {
		t.Errorf("Terms: %v", terms)
	}
	ann := Atom{Relation: "R", Annotation: []Term{Var("u")}, Args: []Term{Const("a")}}
	if ann.IsGround() {
		t.Error("variable annotation must not be ground")
	}
}

func TestRuleHelpers(t *testing.T) {
	f := Fact(NewAtom("R", Const("c")))
	if len(f.Body) != 0 || !f.Head[0].IsGround() {
		t.Errorf("Fact: %v", f)
	}
	r := &Rule{
		Body: []Literal{Pos(NewAtom("A", Var("x"))), Neg(NewAtom("B", Var("x")))},
		Head: []Atom{NewAtom("P", Var("x"))},
	}
	if len(r.PositiveBody()) != 1 || r.PositiveBody()[0].Relation != "A" {
		t.Errorf("PositiveBody: %v", r.PositiveBody())
	}
	if len(r.NegativeBody()) != 1 || r.NegativeBody()[0].Relation != "B" {
		t.Errorf("NegativeBody: %v", r.NegativeBody())
	}
	if !r.HasNegation() {
		t.Error("HasNegation")
	}
	if len(r.AllAtoms()) != 3 {
		t.Errorf("AllAtoms: %v", r.AllAtoms())
	}
}

func TestCanonicalAtomSetAndVarOrder(t *testing.T) {
	a := []Atom{NewAtom("R", Var("x"), Var("y")), NewAtom("S", Var("y"))}
	b := []Atom{NewAtom("S", Var("q")), NewAtom("R", Var("p"), Var("q"))}
	ka, na := CanonicalAtomSet(a)
	kb, nb := CanonicalAtomSet(b)
	if ka != kb {
		t.Errorf("isomorphic atom sets must share keys:\n%s\n%s", ka, kb)
	}
	// Corresponding variables get corresponding canonical positions.
	oa := CanonicalVarOrder([]Term{Var("x"), Var("y")}, na)
	ob := CanonicalVarOrder([]Term{Var("p"), Var("q")}, nb)
	if (oa[0] == Var("x")) != (ob[0] == Var("p")) {
		t.Errorf("orders do not correspond: %v vs %v", oa, ob)
	}
	kc, _ := CanonicalAtomSet([]Atom{NewAtom("R", Var("x"), Var("x")), NewAtom("S", Var("x"))})
	if kc == ka {
		t.Error("non-isomorphic sets must differ")
	}
}

func TestTheoryStringAndClone(t *testing.T) {
	th := NewTheory(NewRule([]Atom{NewAtom("A", Var("x"))}, nil, NewAtom("B", Var("x"))))
	if th.String() == "" {
		t.Error("String must render")
	}
	c := th.Clone()
	c.Rules[0].Head[0].Relation = "Z"
	if th.Rules[0].Head[0].Relation != "B" {
		t.Error("Clone must deep copy rules")
	}
	if th.HasNegation() {
		t.Error("no negation present")
	}
}
