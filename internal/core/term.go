// Package core defines the syntactic objects of existential rule languages:
// terms, atoms (with optional relation-name annotations), rules, and
// theories, together with substitutions and canonical forms.
//
// The definitions follow Section 2 of Gottlob, Rudolph and Šimkus,
// "Expressiveness of Guarded Existential Rule Languages" (PODS 2014).
package core

import "fmt"

// TermKind distinguishes the three mutually disjoint sets of terms:
// constants (∆c), labeled nulls (∆n) and variables (∆v).
type TermKind uint8

const (
	// Constant terms come from the active domain or from rules.
	Constant TermKind = iota
	// Null terms are labeled nulls invented by the chase.
	Null
	// Variable terms occur in rules only.
	Variable
)

func (k TermKind) String() string {
	switch k {
	case Constant:
		return "constant"
	case Null:
		return "null"
	case Variable:
		return "variable"
	default:
		return fmt.Sprintf("TermKind(%d)", uint8(k))
	}
}

// Term is a constant, labeled null, or variable. Terms are value types and
// are comparable, so they can be used as map keys.
type Term struct {
	Kind TermKind
	Name string
}

// Const returns the constant with the given name.
func Const(name string) Term { return Term{Kind: Constant, Name: name} }

// NewNull returns the labeled null with the given name.
func NewNull(name string) Term { return Term{Kind: Null, Name: name} }

// Var returns the variable with the given name.
func Var(name string) Term { return Term{Kind: Variable, Name: name} }

// IsConst reports whether t is a constant.
func (t Term) IsConst() bool { return t.Kind == Constant }

// IsNull reports whether t is a labeled null.
func (t Term) IsNull() bool { return t.Kind == Null }

// IsVar reports whether t is a variable.
func (t Term) IsVar() bool { return t.Kind == Variable }

// IsGround reports whether t is not a variable.
func (t Term) IsGround() bool { return t.Kind != Variable }

// String renders the term. Nulls are prefixed with "_:" so they cannot be
// confused with constants.
func (t Term) String() string {
	if t.Kind == Null {
		return "_:" + t.Name
	}
	return t.Name
}

// TermSet is a set of terms.
type TermSet map[Term]struct{}

// NewTermSet returns a set containing the given terms.
func NewTermSet(ts ...Term) TermSet {
	s := make(TermSet, len(ts))
	for _, t := range ts {
		s[t] = struct{}{}
	}
	return s
}

// Add inserts t into the set.
func (s TermSet) Add(t Term) { s[t] = struct{}{} }

// Has reports whether t is in the set.
func (s TermSet) Has(t Term) bool {
	_, ok := s[t]
	return ok
}

// AddAll inserts every term of other into the set.
func (s TermSet) AddAll(other TermSet) {
	for t := range other {
		s[t] = struct{}{}
	}
}

// ContainsAll reports whether every element of other is in s.
func (s TermSet) ContainsAll(other TermSet) bool {
	for t := range other {
		if !s.Has(t) {
			return false
		}
	}
	return true
}

// Intersect returns the intersection of s and other.
func (s TermSet) Intersect(other TermSet) TermSet {
	out := make(TermSet)
	for t := range s {
		if other.Has(t) {
			out.Add(t)
		}
	}
	return out
}

// Minus returns the set difference s \ other.
func (s TermSet) Minus(other TermSet) TermSet {
	out := make(TermSet)
	for t := range s {
		if !other.Has(t) {
			out.Add(t)
		}
	}
	return out
}

// Sorted returns the elements of the set ordered by kind then name. The
// paper fixes a global enumeration of variable sets (Section 2, "Further
// Notions"); this ordering is that enumeration.
func (s TermSet) Sorted() []Term {
	out := make([]Term, 0, len(s))
	for t := range s {
		out = append(out, t)
	}
	SortTerms(out)
	return out
}

// SortTerms sorts terms in place by kind then name.
func SortTerms(ts []Term) {
	for i := 1; i < len(ts); i++ {
		for j := i; j > 0 && lessTerm(ts[j], ts[j-1]); j-- {
			ts[j], ts[j-1] = ts[j-1], ts[j]
		}
	}
}

func lessTerm(a, b Term) bool {
	if a.Kind != b.Kind {
		return a.Kind < b.Kind
	}
	return a.Name < b.Name
}
