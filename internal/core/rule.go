package core

import (
	"fmt"
	"strings"
)

// Literal is a body atom, possibly negated. Plain existential rules use
// only positive literals; negative literals appear in stratified theories
// (Definition 22).
type Literal struct {
	Atom    Atom
	Negated bool
}

func (l Literal) String() string {
	if l.Negated {
		return "not " + l.Atom.String()
	}
	return l.Atom.String()
}

// Pos returns a positive literal for a.
func Pos(a Atom) Literal { return Literal{Atom: a} }

// Neg returns a negative literal for a.
func Neg(a Atom) Literal { return Literal{Atom: a, Negated: true} }

// Rule is an existential rule
//
//	B1 ∧ ... ∧ Bn → ∃ y1,...,yk . H1 ∧ ... ∧ Hm
//
// with n ≥ 0 and m ≥ 1 (equation (1) of the paper). Body literals may be
// negated in stratified theories. Exist lists the existential variables
// y1,...,yk of the head.
type Rule struct {
	Body  []Literal
	Head  []Atom
	Exist []Term
	// Label is optional provenance (e.g. "sigma3" or "rc(sigma3,mu7)").
	Label string
	// Span is the source position of the rule, or a generated
	// pseudo-position for synthesized rules. Zero when unknown.
	Span Span
}

// NewRule builds a rule from positive body atoms, existential variables and
// head atoms.
func NewRule(body []Atom, exist []Term, head ...Atom) *Rule {
	lits := make([]Literal, len(body))
	for i, a := range body {
		lits[i] = Pos(a)
	}
	return &Rule{Body: lits, Head: head, Exist: exist}
}

// Fact builds a body-less rule → H, used for constants in normal form
// (Definition 4 (iii)).
func Fact(h Atom) *Rule { return &Rule{Head: []Atom{h}} }

// PositiveBody returns the positive body atoms in order.
func (r *Rule) PositiveBody() []Atom {
	out := make([]Atom, 0, len(r.Body))
	for _, l := range r.Body {
		if !l.Negated {
			out = append(out, l.Atom)
		}
	}
	return out
}

// NegativeBody returns the negated body atoms in order.
func (r *Rule) NegativeBody() []Atom {
	var out []Atom
	for _, l := range r.Body {
		if l.Negated {
			out = append(out, l.Atom)
		}
	}
	return out
}

// HasNegation reports whether the rule has a negated body literal.
func (r *Rule) HasNegation() bool {
	for _, l := range r.Body {
		if l.Negated {
			return true
		}
	}
	return false
}

// EVarSet returns the set evars(σ) of existential variables.
func (r *Rule) EVarSet() TermSet { return NewTermSet(r.Exist...) }

// UVars returns uvars(σ) = vars(body(σ)), the universal (argument)
// variables. Variables of negated atoms are included (they are required to
// also occur positively by safety). Annotation variables are excluded.
func (r *Rule) UVars() TermSet {
	s := make(TermSet)
	for _, l := range r.Body {
		s.AddAll(l.Atom.Vars())
	}
	return s
}

// HeadVars returns vars(head(σ)) over argument positions.
func (r *Rule) HeadVars() TermSet { return VarsOf(r.Head) }

// FVars returns the frontier fvars(σ) = vars(head(σ)) \ evars(σ).
func (r *Rule) FVars() TermSet {
	s := r.HeadVars()
	ev := r.EVarSet()
	out := make(TermSet)
	for t := range s {
		if !ev.Has(t) {
			out.Add(t)
		}
	}
	return out
}

// AllAtoms returns body atoms followed by head atoms.
func (r *Rule) AllAtoms() []Atom {
	out := make([]Atom, 0, len(r.Body)+len(r.Head))
	for _, l := range r.Body {
		out = append(out, l.Atom)
	}
	out = append(out, r.Head...)
	return out
}

// Constants returns the constants occurring in the rule, including in
// annotations.
func (r *Rule) Constants() TermSet {
	s := make(TermSet)
	add := func(a Atom) {
		for _, t := range a.Args {
			if t.IsConst() {
				s.Add(t)
			}
		}
		for _, t := range a.Annotation {
			if t.IsConst() {
				s.Add(t)
			}
		}
	}
	for _, l := range r.Body {
		add(l.Atom)
	}
	for _, h := range r.Head {
		add(h)
	}
	return s
}

// IsDatalog reports whether the rule has no existential variables.
func (r *Rule) IsDatalog() bool { return len(r.Exist) == 0 }

// CheckSafe verifies the safety conditions: fvars(σ) ⊆ vars(body(σ)),
// every existential variable occurs in the head only, and every variable of
// a negated atom occurs in a positive body atom. It also checks annotation
// safety condition (ii) of the paper: head annotation variables must occur
// in a body annotation.
func (r *Rule) CheckSafe() error {
	if len(r.Head) == 0 {
		return fmt.Errorf("rule %s: empty head", r.Label)
	}
	uv := r.UVars()
	ev := r.EVarSet()
	for v := range r.FVars() {
		if !uv.Has(v) {
			return fmt.Errorf("rule %s: frontier variable %s not in body", r.Label, v)
		}
	}
	for _, l := range r.Body {
		for v := range l.Atom.Vars() {
			if ev.Has(v) {
				return fmt.Errorf("rule %s: existential variable %s occurs in body", r.Label, v)
			}
		}
	}
	posVars := make(TermSet)
	for _, l := range r.Body {
		if !l.Negated {
			posVars.AddAll(l.Atom.Vars())
		}
	}
	for _, l := range r.Body {
		if l.Negated {
			for v := range l.Atom.Vars() {
				if !posVars.Has(v) {
					return fmt.Errorf("rule %s: variable %s of negated atom %s not bound positively", r.Label, v, l.Atom)
				}
			}
		}
	}
	bodyAll := make(TermSet)
	for _, l := range r.Body {
		bodyAll.AddAll(l.Atom.AllVars())
	}
	for _, h := range r.Head {
		for v := range h.AnnVars() {
			if !bodyAll.Has(v) {
				return fmt.Errorf("rule %s: head annotation variable %s not bound in body", r.Label, v)
			}
		}
	}
	return nil
}

// Clone returns a deep copy of the rule.
func (r *Rule) Clone() *Rule {
	out := &Rule{Label: r.Label, Span: r.Span}
	out.Body = make([]Literal, len(r.Body))
	for i, l := range r.Body {
		out.Body[i] = Literal{Atom: l.Atom.Clone(), Negated: l.Negated}
	}
	out.Head = make([]Atom, len(r.Head))
	for i, h := range r.Head {
		out.Head[i] = h.Clone()
	}
	out.Exist = append([]Term(nil), r.Exist...)
	return out
}

// String renders the rule in the textual syntax understood by the parser.
func (r *Rule) String() string {
	var sb strings.Builder
	for i, l := range r.Body {
		if i > 0 {
			sb.WriteString(", ")
		}
		sb.WriteString(l.String())
	}
	sb.WriteString(" -> ")
	if len(r.Exist) > 0 {
		sb.WriteString("exists ")
		for i, v := range r.Exist {
			if i > 0 {
				sb.WriteByte(',')
			}
			sb.WriteString(v.String())
		}
		sb.WriteString(". ")
	}
	for i, h := range r.Head {
		if i > 0 {
			sb.WriteString(", ")
		}
		sb.WriteString(h.String())
	}
	return sb.String()
}
