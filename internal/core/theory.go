package core

import (
	"fmt"
	"sort"
	"strings"
)

// ACDom is the built-in unary active constant domain relation. For any
// database D, ACDom(c) holds iff c occurs in some atom of D over a relation
// other than ACDom. ACDom is prohibited from rule heads.
const ACDom = "ACDom"

// Theory is a finite set of existential rules.
type Theory struct {
	Rules []*Rule

	fresh int // counter for fresh names
}

// NewTheory returns a theory containing the given rules.
func NewTheory(rules ...*Rule) *Theory {
	return &Theory{Rules: rules}
}

// Add appends rules to the theory.
func (t *Theory) Add(rules ...*Rule) { t.Rules = append(t.Rules, rules...) }

// Clone returns a deep copy of the theory.
func (t *Theory) Clone() *Theory {
	out := &Theory{Rules: make([]*Rule, len(t.Rules)), fresh: t.fresh}
	for i, r := range t.Rules {
		out.Rules[i] = r.Clone()
	}
	return out
}

// Signature returns the relations occurring in the theory with their
// arities. It returns an error if a relation name is used with two
// different arities or annotation arities.
func (t *Theory) Signature() (map[RelKey]bool, error) {
	sig := make(map[RelKey]bool)
	byName := make(map[string]RelKey)
	for _, r := range t.Rules {
		for _, a := range r.AllAtoms() {
			k := a.Key()
			if prev, ok := byName[k.Name]; ok && prev != k {
				return nil, fmt.Errorf("relation %s used with inconsistent shape: %v vs %v", k.Name, prev, k)
			}
			byName[k.Name] = k
			sig[k] = true
		}
	}
	return sig, nil
}

// Relations returns the relation keys of the theory in sorted order.
func (t *Theory) Relations() []RelKey {
	sig := make(map[RelKey]bool)
	for _, r := range t.Rules {
		for _, a := range r.AllAtoms() {
			sig[a.Key()] = true
		}
	}
	out := make([]RelKey, 0, len(sig))
	for k := range sig {
		out = append(out, k)
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].Name != out[j].Name {
			return out[i].Name < out[j].Name
		}
		if out[i].Arity != out[j].Arity {
			return out[i].Arity < out[j].Arity
		}
		return out[i].AnnArity < out[j].AnnArity
	})
	return out
}

// MaxArity returns the maximal argument arity over all relations of the
// theory (the constant k of Definition 7). Annotation positions do not
// count.
func (t *Theory) MaxArity() int {
	m := 0
	for _, r := range t.Rules {
		for _, a := range r.AllAtoms() {
			if a.Arity() > m {
				m = a.Arity()
			}
		}
	}
	return m
}

// Constants returns the constants occurring in rules of the theory.
func (t *Theory) Constants() TermSet {
	s := make(TermSet)
	for _, r := range t.Rules {
		s.AddAll(r.Constants())
	}
	return s
}

// HasNegation reports whether any rule has a negated body literal.
func (t *Theory) HasNegation() bool {
	for _, r := range t.Rules {
		if r.HasNegation() {
			return true
		}
	}
	return false
}

// CheckSafe verifies safety of every rule and that ACDom never occurs in a
// head.
func (t *Theory) CheckSafe() error {
	for _, r := range t.Rules {
		if err := r.CheckSafe(); err != nil {
			return err
		}
		for _, h := range r.Head {
			if h.Relation == ACDom {
				return fmt.Errorf("rule %s: %s is prohibited from rule heads", r.Label, ACDom)
			}
		}
	}
	return nil
}

// FreshRelation returns a relation name not occurring in the theory,
// starting from the given prefix.
func (t *Theory) FreshRelation(prefix string) string {
	used := make(map[string]bool)
	for _, r := range t.Rules {
		for _, a := range r.AllAtoms() {
			used[a.Relation] = true
		}
	}
	for {
		t.fresh++
		name := fmt.Sprintf("%s_%d", prefix, t.fresh)
		if !used[name] {
			return name
		}
	}
}

// FreshVar returns a variable whose name does not occur in the given sets.
func FreshVar(prefix string, avoid ...TermSet) Term {
	for i := 1; ; i++ {
		v := Var(fmt.Sprintf("%s%d", prefix, i))
		clash := false
		for _, s := range avoid {
			if s.Has(v) {
				clash = true
				break
			}
		}
		if !clash {
			return v
		}
	}
}

// String renders the theory, one rule per line.
func (t *Theory) String() string {
	var sb strings.Builder
	for _, r := range t.Rules {
		sb.WriteString(r.String())
		sb.WriteString(".\n")
	}
	return sb.String()
}
