package core

import "strings"

// Atom is an expression R(t1,...,tn), optionally with an annotated relation
// name R[a1,...,am](t1,...,tn). Annotations (Section 2, "Relation name
// annotations") carry terms as part of the relation name; annotation terms
// are not arguments and are ignored by guardedness notions, which quantify
// over argument variables only.
type Atom struct {
	Relation   string
	Annotation []Term // nil when the relation name is not annotated
	Args       []Term
	// Span is the source position of the atom; zero for programmatically
	// built atoms. It is ignored by Equal.
	Span Span
}

// NewAtom returns an unannotated atom.
func NewAtom(rel string, args ...Term) Atom {
	return Atom{Relation: rel, Args: args}
}

// Key identifies the relation of the atom for storage and indexing
// purposes: annotated relation names with different annotation arities are
// distinct relations.
func (a Atom) Key() RelKey {
	return RelKey{Name: a.Relation, AnnArity: len(a.Annotation), Arity: len(a.Args)}
}

// RelKey identifies a relation: its name, annotation arity and arity.
type RelKey struct {
	Name     string
	AnnArity int
	Arity    int
}

func (k RelKey) String() string {
	if k.AnnArity == 0 {
		return k.Name
	}
	return k.Name + "[...]"
}

// Arity returns the number of arguments of the atom.
func (a Atom) Arity() int { return len(a.Args) }

// IsGround reports whether the atom contains no variables, in arguments or
// annotation.
func (a Atom) IsGround() bool {
	for _, t := range a.Args {
		if t.IsVar() {
			return false
		}
	}
	for _, t := range a.Annotation {
		if t.IsVar() {
			return false
		}
	}
	return true
}

// Terms returns the set of argument terms of the atom. Annotation terms are
// excluded; use AnnTerms for those.
func (a Atom) Terms() TermSet {
	s := make(TermSet, len(a.Args))
	for _, t := range a.Args {
		s.Add(t)
	}
	return s
}

// Vars returns the set of argument variables of the atom.
func (a Atom) Vars() TermSet {
	s := make(TermSet)
	for _, t := range a.Args {
		if t.IsVar() {
			s.Add(t)
		}
	}
	return s
}

// AnnVars returns the set of annotation variables of the atom.
func (a Atom) AnnVars() TermSet {
	s := make(TermSet)
	for _, t := range a.Annotation {
		if t.IsVar() {
			s.Add(t)
		}
	}
	return s
}

// AllVars returns argument and annotation variables together.
func (a Atom) AllVars() TermSet {
	s := a.Vars()
	s.AddAll(a.AnnVars())
	return s
}

// Clone returns a deep copy of the atom.
func (a Atom) Clone() Atom {
	out := Atom{Relation: a.Relation, Span: a.Span}
	if a.Annotation != nil {
		out.Annotation = append([]Term(nil), a.Annotation...)
	}
	out.Args = append([]Term(nil), a.Args...)
	return out
}

// Equal reports whether two atoms are syntactically identical.
func (a Atom) Equal(b Atom) bool {
	if a.Relation != b.Relation || len(a.Args) != len(b.Args) || len(a.Annotation) != len(b.Annotation) {
		return false
	}
	for i := range a.Args {
		if a.Args[i] != b.Args[i] {
			return false
		}
	}
	for i := range a.Annotation {
		if a.Annotation[i] != b.Annotation[i] {
			return false
		}
	}
	return true
}

// String renders the atom, e.g. R[a,b](x,y) or R(x,y).
func (a Atom) String() string {
	var sb strings.Builder
	sb.WriteString(a.Relation)
	if len(a.Annotation) > 0 {
		sb.WriteByte('[')
		for i, t := range a.Annotation {
			if i > 0 {
				sb.WriteByte(',')
			}
			sb.WriteString(t.String())
		}
		sb.WriteByte(']')
	}
	sb.WriteByte('(')
	for i, t := range a.Args {
		if i > 0 {
			sb.WriteByte(',')
		}
		sb.WriteString(t.String())
	}
	sb.WriteByte(')')
	return sb.String()
}

// AtomsString renders a list of atoms separated by ", ".
func AtomsString(atoms []Atom) string {
	parts := make([]string, len(atoms))
	for i, a := range atoms {
		parts[i] = a.String()
	}
	return strings.Join(parts, ", ")
}

// VarsOf returns the set of argument variables occurring in the atoms.
func VarsOf(atoms []Atom) TermSet {
	s := make(TermSet)
	for _, a := range atoms {
		for _, t := range a.Args {
			if t.IsVar() {
				s.Add(t)
			}
		}
	}
	return s
}

// TermsOf returns the set of argument terms occurring in the atoms.
func TermsOf(atoms []Atom) TermSet {
	s := make(TermSet)
	for _, a := range atoms {
		for _, t := range a.Args {
			s.Add(t)
		}
	}
	return s
}

// AllVarsOf returns argument and annotation variables of the atoms.
func AllVarsOf(atoms []Atom) TermSet {
	s := make(TermSet)
	for _, a := range atoms {
		s.AddAll(a.AllVars())
	}
	return s
}

// ContainsAtom reports whether atoms contains an atom equal to a.
func ContainsAtom(atoms []Atom, a Atom) bool {
	for _, b := range atoms {
		if b.Equal(a) {
			return true
		}
	}
	return false
}
