// Package saturate implements the translation from guarded theories to
// Datalog (Section 6 of the paper): the closure Ξ(Σ) of a guarded theory
// under the three inference rules of Figure 3, the Datalog program dat(Σ)
// of Definition 19 (Theorem 3), and its extension to nearly guarded
// theories (Proposition 6).
package saturate

import (
	"fmt"

	"guardedrules/internal/budget"
	"guardedrules/internal/classify"
	"guardedrules/internal/core"
	"guardedrules/internal/hom"
)

// Options bounds the saturation. The closure is finite but can be doubly
// exponential in the worst case (Section 6); the caps turn a blow-up into
// an error instead of an endless run.
type Options struct {
	// MaxRules caps the number of distinct rules in the closure.
	// 0 means 200,000.
	MaxRules int
	// Budget, when non-nil, governs the run: its context/deadline cancels
	// the saturation between worklist items, MaxRules/MaxSteps override
	// the rule and inference ceilings, and exhaustion returns the partial
	// closure computed so far alongside a typed *budget.Error
	// (ErrRuleLimit for the doubly-exponential closure bound of Theorem 3,
	// ErrStepLimit for the inference budget).
	Budget *budget.T
}

func (o Options) maxRules() int {
	if o.MaxRules == 0 {
		return 200_000
	}
	return o.MaxRules
}

// maxInferences is the default cap on inference-rule applications.
const maxInferences = 50_000_000

// Stats reports the work done by a saturation run.
type Stats struct {
	// InputRules is the number of input rules.
	InputRules int
	// ClosureRules is the number of distinct rules in Ξ(Σ).
	ClosureRules int
	// DatalogRules is the number of rules in dat(Σ).
	DatalogRules int
	// Inferences counts the applications of inference rules that produced
	// a (possibly duplicate) rule.
	Inferences int
}

// Datalog computes dat(Σ) for a guarded theory Σ (Definition 19): the
// closure under the inference rules of Figure 3, restricted to the rules
// without existential variables in the head. On budget exhaustion
// (errors.Is against the budget sentinels) the returned theory is the
// Datalog restriction of the partial closure — sound but possibly
// incomplete — so callers can degrade gracefully.
func Datalog(th *core.Theory, opts Options) (*core.Theory, *Stats, error) {
	for _, r := range th.Rules {
		if !classify.IsGuarded(r) {
			return nil, nil, fmt.Errorf("saturate: rule %s is not guarded", r.Label)
		}
		if r.HasNegation() {
			return nil, nil, fmt.Errorf("saturate: rule %s has negation", r.Label)
		}
	}
	closure, stats, err := saturation(th, opts)
	if err != nil && !budget.IsBudget(err) {
		return nil, nil, err
	}
	out := core.NewTheory()
	for _, r := range closure {
		if len(r.Exist) == 0 {
			out.Add(r)
		}
	}
	stats.DatalogRules = len(out.Rules)
	return core.StampGenerated(out, "guarded-saturation"), stats, err
}

// NearlyGuardedToDatalog translates a nearly guarded theory into Datalog
// (Proposition 6): the guarded part Σg is saturated to dat(Σg); the safe
// Datalog part Σd is kept as is.
func NearlyGuardedToDatalog(th *core.Theory, opts Options) (*core.Theory, *Stats, error) {
	ap := classify.AffectedPositions(th)
	guarded := core.NewTheory()
	var safe []*core.Rule
	for _, r := range th.Rules {
		switch {
		case classify.IsGuarded(r):
			guarded.Add(r)
		case len(classify.Unsafe(r, ap)) == 0 && len(r.Exist) == 0:
			safe = append(safe, r)
		default:
			return nil, nil, fmt.Errorf("saturate: rule %s is not nearly guarded", r.Label)
		}
	}
	dat, stats, err := Datalog(guarded, opts)
	if err != nil && !budget.IsBudget(err) {
		return nil, nil, err
	}
	dat.Add(safe...)
	stats.DatalogRules = len(dat.Rules)
	return dat, stats, err
}

// pool is the worklist-driven closure state. Datalog rules are
// deduplicated up to renaming; existential rules are kept one per
// canonical body, with heads merged monotonically (conjoining two
// existential conclusions of the same body is sound — the witnesses are
// independent — and preserves every homomorphism target of either head).
// This consequence-driven representation keeps the closure polynomial in
// the number of derivable head atoms per body instead of exponential.
type pool struct {
	byKey    map[string]*core.Rule
	byBody   map[string]*core.Rule // canonical body → merged existential rule
	rules    []*core.Rule
	work     []workItem
	stats    Stats
	maxSize  int
	maxInfer int
	tk       *budget.Tracker
	freshEV  int
}

// workItem is a rule to process; for merged existential rules, delta holds
// the head atoms added since the rule was last processed, so compositions
// only re-run against new homomorphism targets (semi-naive saturation).
type workItem struct {
	r     *core.Rule
	delta []core.Atom // nil means "all head atoms are new"
}

func (p *pool) add(r *core.Rule) (bool, error) {
	r = normalizeRule(r)
	if r == nil {
		return false, nil
	}
	p.stats.Inferences++
	p.tk.AddSteps(1)
	if p.maxInfer > 0 && p.stats.Inferences > p.maxInfer {
		return false, fmt.Errorf("saturate: inference budget exceeded: %w",
			p.tk.Exhausted(budget.ErrStepLimit))
	}
	if len(r.Exist) > 0 {
		return p.mergeExistential(r)
	}
	k := core.CanonicalKey(r)
	if _, ok := p.byKey[k]; ok {
		return false, nil
	}
	if len(p.rules) >= p.maxSize {
		return false, fmt.Errorf("saturate: closure exceeded %d rules: %w",
			p.maxSize, p.tk.Exhausted(budget.ErrRuleLimit))
	}
	if r.Label == "" {
		r.Label = fmt.Sprintf("xi%d", len(p.rules))
	}
	p.byKey[k] = r
	p.rules = append(p.rules, r)
	p.tk.AddRules(1)
	p.work = append(p.work, workItem{r: r})
	return true, nil
}

// mergeExistential folds r into the pooled rule with the same canonical
// body, renaming r's variables along a body isomorphism; new head atoms
// re-enqueue the pooled rule.
func (p *pool) mergeExistential(r *core.Rule) (bool, error) {
	body := r.PositiveBody()
	key, rNums := core.CanonicalAtomSet(body)
	pooled, ok := p.byBody[key]
	if !ok {
		if len(p.rules) >= p.maxSize {
			return false, fmt.Errorf("saturate: closure exceeded %d rules: %w",
				p.maxSize, p.tk.Exhausted(budget.ErrRuleLimit))
		}
		p.byBody[key] = r
		p.rules = append(p.rules, r)
		p.tk.AddRules(1)
		p.work = append(p.work, workItem{r: r})
		return true, nil
	}
	_, pNums := core.CanonicalAtomSet(pooled.PositiveBody())
	ren, ok := bodyIso(body, pooled.PositiveBody(), rNums, pNums)
	if !ok {
		// Should not happen for equal keys; fall back to a fresh entry
		// keyed by the full rule.
		k := core.CanonicalKey(r)
		if _, dup := p.byKey[k]; dup {
			return false, nil
		}
		p.byKey[k] = r
		p.rules = append(p.rules, r)
		p.tk.AddRules(1)
		p.work = append(p.work, workItem{r: r})
		return true, nil
	}
	// Rename r's existential variables freshly to avoid capture.
	for _, v := range r.Exist {
		p.freshEV++
		ren[v] = core.Var(fmt.Sprintf("ev%d", p.freshEV))
	}
	var added []core.Atom
	for _, h := range r.Head {
		nh := ren.ApplyAtom(h)
		if !core.ContainsAtom(pooled.Head, nh) && !headSubsumed(pooled, nh) {
			pooled.Head = append(pooled.Head, nh)
			added = append(added, nh)
		}
	}
	if len(added) > 0 {
		merged := normalizeRule(pooled)
		pooled.Head = merged.Head
		pooled.Exist = merged.Exist
		p.work = append(p.work, workItem{r: pooled, delta: added})
	}
	return len(added) > 0, nil
}

// headSubsumed reports whether the pooled rule's head already contains an
// atom equal to nh up to an injective renaming of existential variables
// (variables not occurring in the pooled body).
func headSubsumed(pooled *core.Rule, nh core.Atom) bool {
	bodyVars := pooled.UVars()
	isEV := func(t core.Term) bool { return t.IsVar() && !bodyVars.Has(t) }
	for _, h := range pooled.Head {
		if h.Relation != nh.Relation || len(h.Args) != len(nh.Args) || len(h.Annotation) != len(nh.Annotation) {
			continue
		}
		m := core.Subst{}
		used := make(core.TermSet)
		ok := true
		match := func(a, b core.Term) bool {
			if isEV(a) {
				if prev, bound := m[a]; bound {
					return prev == b
				}
				if isEV(b) && !used.Has(b) {
					m[a] = b
					used.Add(b)
					return true
				}
				return false
			}
			return a == b
		}
		for i := range nh.Args {
			if !match(nh.Args[i], h.Args[i]) {
				ok = false
				break
			}
		}
		if ok {
			for i := range nh.Annotation {
				if !match(nh.Annotation[i], h.Annotation[i]) {
					ok = false
					break
				}
			}
		}
		if ok {
			return true
		}
	}
	return false
}

// bodyIso finds a variable bijection mapping src atoms onto dst atoms,
// trying the canonical numberings of both sides.
func bodyIso(src, dst []core.Atom, srcNums, dstNums []map[core.Term]int) (core.Subst, bool) {
	for _, sn := range srcNums {
		inv := make(map[int]core.Term)
		for _, dn := range dstNums {
			for v, i := range dn {
				inv[i] = v
			}
			ren := core.Subst{}
			ok := true
			for v, i := range sn {
				w, found := inv[i]
				if !found {
					ok = false
					break
				}
				ren[v] = w
			}
			if !ok {
				continue
			}
			if sameAtomSet(ren.ApplyAtoms(src), dst) {
				return ren, true
			}
		}
	}
	return nil, false
}

func sameAtomSet(a, b []core.Atom) bool {
	if len(a) != len(b) {
		return false
	}
	for _, x := range a {
		if !core.ContainsAtom(b, x) {
			return false
		}
	}
	for _, x := range b {
		if !core.ContainsAtom(a, x) {
			return false
		}
	}
	return true
}

// normalizeRule deduplicates body/head atoms and recomputes the
// existential variable list (head variables not occurring in the body).
// It returns nil for rules with an empty head after deduplication.
func normalizeRule(r *core.Rule) *core.Rule {
	var body []core.Literal
	for _, l := range r.Body {
		dup := false
		for _, m := range body {
			if m.Negated == l.Negated && m.Atom.Equal(l.Atom) {
				dup = true
				break
			}
		}
		if !dup {
			body = append(body, l)
		}
	}
	var head []core.Atom
	for _, h := range r.Head {
		if !core.ContainsAtom(head, h) {
			head = append(head, h)
		}
	}
	if len(head) == 0 {
		return nil
	}
	uv := core.VarsOf(atomsOf(body))
	var exist []core.Term
	seen := make(core.TermSet)
	for _, h := range head {
		for _, t := range h.Args {
			if t.IsVar() && !uv.Has(t) && !seen.Has(t) {
				seen.Add(t)
				exist = append(exist, t)
			}
		}
	}
	return &core.Rule{Body: body, Head: head, Exist: exist, Label: r.Label}
}

func atomsOf(lits []core.Literal) []core.Atom {
	out := make([]core.Atom, len(lits))
	for i, l := range lits {
		out[i] = l.Atom
	}
	return out
}

// saturation computes Ξ(Σ), the closure of Σ under the rules of Figure 3.
// On budget exhaustion it returns the partial closure computed so far
// alongside the typed error; the stats are always valid.
func saturation(th *core.Theory, opts Options) ([]*core.Rule, *Stats, error) {
	tk := budget.Start(opts.Budget)
	defer tk.Stop()
	p := &pool{
		byKey:    make(map[string]*core.Rule),
		byBody:   make(map[string]*core.Rule),
		maxSize:  budget.Cap(opts.Budget, func(b *budget.T) int { return b.MaxRules }, opts.maxRules()),
		maxInfer: budget.Cap(opts.Budget, func(b *budget.T) int { return b.MaxSteps }, maxInferences),
		tk:       tk,
	}
	finish := func(err error) ([]*core.Rule, *Stats, error) {
		p.stats.ClosureRules = len(p.rules)
		return p.rules, &p.stats, err
	}
	p.stats.InputRules = len(th.Rules)
	for _, r := range th.Rules {
		if _, err := p.add(r); err != nil {
			return finish(err)
		}
	}
	for len(p.work) > 0 {
		// Worklist checkpoint: cancellation and deadline are observed
		// between items; the closure so far stays attached to the result.
		if err := tk.Check(); err != nil {
			return finish(fmt.Errorf("saturate: %w", err))
		}
		item := p.work[len(p.work)-1]
		p.work = p.work[:len(p.work)-1]
		if err := p.inferFrom(item); err != nil {
			return finish(err)
		}
	}
	return finish(nil)
}

// inferFrom applies every inference rule with the item's rule as one
// premise, against the current pool.
func (p *pool) inferFrom(item workItem) error {
	r := item.r
	// Figure 3, first rule: head projection to atoms without existential
	// variables.
	ev := r.EVarSet()
	for _, a := range r.Head {
		hasEV := false
		for v := range a.Vars() {
			if ev.Has(v) {
				hasEV = true
				break
			}
		}
		if !hasEV {
			if _, err := p.add(&core.Rule{Body: r.Body, Head: []core.Atom{a}}); err != nil {
				return err
			}
		}
	}
	// Figure 3, third rule: variable specializations g(α) → g(β). Merging
	// one pair of body variables at a time generates, under closure, every
	// endomorphism image up to renaming. Specializing Datalog rules is
	// subsumed by the homomorphism search of the composition rule, so only
	// existential rules are specialized.
	if len(r.Exist) > 0 {
		uv := r.UVars().Sorted()
		for _, x := range uv {
			for _, y := range uv {
				if x == y {
					continue
				}
				g := core.Subst{x: y}
				if _, err := p.add(g.ApplyRule(r)); err != nil {
					return err
				}
			}
		}
	}
	// Figure 3, second rule: composition with a Datalog rule. Only
	// compositions whose left premise is existential and whose γ2 match
	// covers an atom with existential variables can derive consequences
	// that bottom-up evaluation of dat(Σ) would not reproduce itself (any
	// purely ground composition is replayed at evaluation time by the
	// Datalog premise, which stays in dat(Σ)). Restricting to those keeps
	// the closure consequence-driven.
	snapshot := p.rules
	for _, other := range snapshot {
		if len(r.Exist) > 0 && len(other.Exist) == 0 {
			if err := p.compose(r, other, item.delta); err != nil {
				return err
			}
		}
		if len(r.Exist) == 0 && len(other.Exist) > 0 {
			// A newly seen Datalog rule composes against the full heads.
			if err := p.compose(other, r, nil); err != nil {
				return err
			}
		}
	}
	return nil
}

// compose applies the second inference rule of Figure 3 with left premise
// α→β and right Datalog premise γ1∧γ2→δ: for every homomorphism h from a
// subset γ2 of the right body into β whose completion maps the remaining
// γ1 variables into vars(α), add α ∧ h(γ1) → β ∧ h(δ).
// deltaBeta, when non-nil, restricts compositions to homomorphisms whose
// γ2 match touches at least one of these head atoms.
func (p *pool) compose(left, right *core.Rule, deltaBeta []core.Atom) error {
	if left == right {
		right = right.Clone()
	}
	// Standardize the right rule apart.
	ren := core.Subst{}
	taken := left.UVars()
	taken.AddAll(left.EVarSet())
	for v := range right.UVars() {
		ren[v] = core.FreshVar("r_"+v.Name+"_", taken)
		taken.Add(ren[v])
	}
	right = ren.ApplyRule(right)

	beta := left.Head
	rbody := right.PositiveBody()

	inDelta := func(b core.Atom) bool {
		if deltaBeta == nil {
			return true
		}
		return core.ContainsAtom(deltaBeta, b)
	}
	// Enumerate homomorphisms of subsets γ2 ⊆ rbody into β, extending to
	// full maps of the right-rule variables by assigning leftover
	// variables to vars(α). touched tracks whether the match uses a delta
	// atom; with a delta restriction, matches over old atoms only were
	// already explored when those atoms were new. One substitution map is
	// threaded through the whole enumeration, with trail-based undo
	// (hom.MatchInPlace) instead of cloning at every branch; g1 marks the
	// atoms assigned to γ1.
	s := core.Subst{}
	g1 := make([]bool, len(rbody))
	var assign func(i int, touched bool) error
	assign = func(i int, touched bool) error {
		if i == len(rbody) {
			if !touched && deltaBeta != nil {
				return nil
			}
			return p.emitComposition(left, right, s, g1)
		}
		atom := rbody[i]
		// Option 1: atom ∈ γ2, matched against some head atom of left.
		for _, b := range beta {
			if atom.Relation != b.Relation ||
				len(atom.Args) != len(b.Args) || len(atom.Annotation) != len(b.Annotation) {
				continue
			}
			if trail, ok := hom.MatchInPlace(s.ApplyAtom(atom), b, s); ok {
				if err := assign(i+1, touched || inDelta(b)); err != nil {
					return err
				}
				for _, v := range trail {
					delete(s, v)
				}
			}
		}
		// Option 2: atom ∈ γ1; its variables must end up in vars(α),
		// handled at emission.
		g1[i] = true
		err := assign(i+1, touched)
		g1[i] = false
		return err
	}
	return assign(0, false)
}

// emitComposition finishes a composition: leftover right-rule variables
// (those of γ1 atoms not bound by the γ2 match) are mapped into vars(α)
// in every possible way, then the derived rule is added.
func (p *pool) emitComposition(left, right *core.Rule, s core.Subst, g1 []bool) error {
	rbody := right.PositiveBody()
	var gamma1 []core.Atom
	evarTouched := false
	lev := left.EVarSet()
	for i, a := range rbody {
		if g1[i] {
			gamma1 = append(gamma1, a)
			continue
		}
		for v := range s.ApplyAtom(a).Vars() {
			if lev.Has(v) {
				evarTouched = true
			}
		}
	}
	// Require the γ2 match to involve an existential variable; otherwise
	// the composition is reproducible at evaluation time.
	if !evarTouched {
		return nil
	}
	// Collect unbound variables of γ1 and δ. Variables of δ not bound and
	// not occurring in γ1∧γ2 are right-rule frontier variables that must
	// be bound by the body, so after binding γ1 everything of δ is bound.
	unbound := make(core.TermSet)
	for _, a := range gamma1 {
		for v := range a.Vars() {
			if _, ok := s[v]; !ok {
				unbound.Add(v)
			}
		}
	}
	alphaVars := left.UVars().Sorted()
	targets := alphaVars
	vars := unbound.Sorted()
	// Every unbound γ1 variable maps into vars(α).
	var rec func(i int, s core.Subst) error
	rec = func(i int, s core.Subst) error {
		if i == len(vars) {
			// Verify the side condition vars(h(γ1)) ⊆ vars(α).
			for _, a := range gamma1 {
				for v := range s.ApplyAtom(a).Vars() {
					if !left.UVars().Has(v) {
						return nil
					}
				}
			}
			body := append([]core.Literal(nil), left.Body...)
			newBody := false
			for _, a := range gamma1 {
				lit := core.Pos(s.ApplyAtom(a))
				dup := false
				for _, l := range left.Body {
					if !l.Negated && l.Atom.Equal(lit.Atom) {
						dup = true
						break
					}
				}
				if !dup {
					newBody = true
				}
				body = append(body, lit)
			}
			head := append([]core.Atom(nil), left.Head...)
			newHead := false
			for _, d := range right.Head {
				nd := s.ApplyAtom(d)
				if !core.ContainsAtom(left.Head, nd) {
					newHead = true
				}
				head = append(head, nd)
			}
			if !newBody && !newHead {
				return nil // no-op: would merge nothing into the pooled rule
			}
			_, err := p.add(&core.Rule{Body: body, Head: head})
			return err
		}
		if len(targets) == 0 {
			return nil
		}
		for _, t := range targets {
			s2 := s.Clone()
			s2[vars[i]] = t
			if err := rec(i+1, s2); err != nil {
				return err
			}
		}
		return nil
	}
	return rec(0, s)
}
