package saturate

import (
	"fmt"
	"math/rand"
	"testing"

	"guardedrules/internal/chase"
	"guardedrules/internal/core"
	"guardedrules/internal/database"
	"guardedrules/internal/datalog"
	"guardedrules/internal/parser"
)

// exampleSeven is the guarded theory of Example 7.
const exampleSeven = `
A(X) -> exists Y. R(X,Y).
R(X,Y) -> S(Y,Y).
S(X,Y) -> exists Z. T(X,Y,Z).
T(X,X,Y) -> B(X).
C(X), R(X,Y), B(Y) -> D(X).
`

func TestExampleSevenDerivesSigma12(t *testing.T) {
	th := parser.MustParseTheory(exampleSeven)
	dat, stats, err := Datalog(th, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if stats.ClosureRules < stats.InputRules {
		t.Errorf("closure smaller than input: %+v", stats)
	}
	// σ12 = A(x) ∧ C(x) → D(x) must be in dat(Σ).
	sigma12 := parser.MustParseTheory(`A(X), C(X) -> D(X).`).Rules[0]
	want := core.CanonicalKey(sigma12)
	found := false
	for _, r := range dat.Rules {
		if core.CanonicalKey(r) == want {
			found = true
			break
		}
	}
	if !found {
		t.Errorf("σ12 not derived; dat(Σ) has %d rules", len(dat.Rules))
	}
}

func TestExampleSevenEndToEnd(t *testing.T) {
	th := parser.MustParseTheory(exampleSeven)
	dat, _, err := Datalog(th, Options{})
	if err != nil {
		t.Fatal(err)
	}
	d := database.FromAtoms(parser.MustParseFacts(`A(c). C(c).`))
	fix, err := datalog.Eval(dat, d)
	if err != nil {
		t.Fatal(err)
	}
	if !fix.Has(core.NewAtom("D", core.Const("c"))) {
		t.Error("dat(Σ), D must entail D(c) (Example 7)")
	}
	// Negative control: without C(c), D(c) must not follow.
	d2 := database.FromAtoms(parser.MustParseFacts(`A(c).`))
	fix2, err := datalog.Eval(dat, d2)
	if err != nil {
		t.Fatal(err)
	}
	if fix2.Has(core.NewAtom("D", core.Const("c"))) {
		t.Error("D(c) must not be entailed without C(c)")
	}
}

func TestDatalogRejectsUnguarded(t *testing.T) {
	th := parser.MustParseTheory(`R(X,Y), R(Y,Z) -> P(X,Z).`)
	if _, _, err := Datalog(th, Options{}); err == nil {
		t.Error("unguarded rule must be rejected")
	}
}

func TestMaxRulesCap(t *testing.T) {
	th := parser.MustParseTheory(exampleSeven)
	if _, _, err := Datalog(th, Options{MaxRules: 3}); err == nil {
		t.Error("cap must trigger an error")
	}
}

// agreeOnGroundAtoms checks Theorem 3: Σ,D ⊨ α iff dat(Σ),D ⊨ α for
// ground atoms over Σ's signature.
func agreeOnGroundAtoms(t *testing.T, theory, facts string) {
	t.Helper()
	th := parser.MustParseTheory(theory)
	dat, _, err := Datalog(th, Options{})
	if err != nil {
		t.Fatalf("saturation failed for %q: %v", theory, err)
	}
	d := database.FromAtoms(parser.MustParseFacts(facts))
	ch, err := chase.Run(th, d, chase.Options{Variant: chase.Restricted, MaxDepth: 8, MaxFacts: 200_000})
	if err != nil {
		t.Fatal(err)
	}
	fix, err := datalog.Eval(dat, d)
	if err != nil {
		t.Fatal(err)
	}
	rels := make(map[string]bool)
	for _, rk := range th.Relations() {
		rels[rk.Name] = true
	}
	chGround := ch.DB.Restrict(func(k core.RelKey) bool { return rels[k.Name] })
	datGround := fix.Restrict(func(k core.RelKey) bool { return rels[k.Name] })
	// dat(Σ) is Datalog: it derives no nulls, so compare ground atoms.
	if ok, diff := database.SameGroundAtoms(chGround, datGround); !ok {
		t.Errorf("theory %q on %q: %s", theory, facts, diff)
	}
}

func TestTheoremThreeOnExamples(t *testing.T) {
	agreeOnGroundAtoms(t, exampleSeven, `A(c). C(c).`)
	agreeOnGroundAtoms(t, exampleSeven, `A(a). A(b). C(b). R(a,b). B(b).`)
	agreeOnGroundAtoms(t, `
		Person(X) -> exists Y. hasParent(X,Y).
		hasParent(X,Y) -> Person(Y).
		hasParent(X,Y), Person(X) -> Ancestor(X).
	`, `Person(adam). hasParent(eve,adam).`)
	agreeOnGroundAtoms(t, `
		A(X) -> exists Y. R(X,Y).
		R(X,Y) -> exists Z. R(Y,Z).
		R(X,Y) -> B(X).
		B(X), A(X) -> C(X).
	`, `A(a). R(a,b).`)
}

// Random guarded theories: dat(Σ) and the chase must agree on ground
// consequences.
func TestTheoremThreeRandomized(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	for trial := 0; trial < 25; trial++ {
		th := randomGuardedTheory(rng)
		d := randomDatabase(rng)
		dat, _, err := Datalog(th, Options{MaxRules: 100_000})
		if err != nil {
			t.Fatalf("trial %d: saturation failed: %v\n%v", trial, err, th)
		}
		ch, err := chase.Run(th, d, chase.Options{Variant: chase.Restricted, MaxDepth: 7, MaxFacts: 100_000})
		if err != nil {
			t.Fatal(err)
		}
		if ch.Truncated {
			continue // cannot compare against a truncated chase
		}
		fix, err := datalog.Eval(dat, d)
		if err != nil {
			t.Fatal(err)
		}
		rels := make(map[string]bool)
		for _, rk := range th.Relations() {
			rels[rk.Name] = true
		}
		a := ch.DB.Restrict(func(k core.RelKey) bool { return rels[k.Name] })
		b := fix.Restrict(func(k core.RelKey) bool { return rels[k.Name] })
		if ok, diff := database.SameGroundAtoms(a, b); !ok {
			t.Errorf("trial %d: %s\ntheory:\n%v", trial, diff, th)
		}
	}
}

// randomGuardedTheory builds a small guarded theory over unary relations
// A,B,C and binary R,S.
func randomGuardedTheory(rng *rand.Rand) *core.Theory {
	unary := []string{"A", "B", "C"}
	binary := []string{"R", "S"}
	x, y := core.Var("X"), core.Var("Y")
	th := core.NewTheory()
	n := 3 + rng.Intn(4)
	for i := 0; i < n; i++ {
		switch rng.Intn(5) {
		case 0: // A(x) -> exists y. R(x,y)
			th.Add(core.NewRule(
				[]core.Atom{core.NewAtom(unary[rng.Intn(3)], x)},
				[]core.Term{y},
				core.NewAtom(binary[rng.Intn(2)], x, y)))
		case 1: // R(x,y) -> B(y)
			th.Add(core.NewRule(
				[]core.Atom{core.NewAtom(binary[rng.Intn(2)], x, y)},
				nil,
				core.NewAtom(unary[rng.Intn(3)], y)))
		case 2: // R(x,y), B(y) -> C(x)
			th.Add(core.NewRule(
				[]core.Atom{
					core.NewAtom(binary[rng.Intn(2)], x, y),
					core.NewAtom(unary[rng.Intn(3)], y),
				},
				nil,
				core.NewAtom(unary[rng.Intn(3)], x)))
		case 3: // R(x,y) -> S(y,x)
			th.Add(core.NewRule(
				[]core.Atom{core.NewAtom(binary[rng.Intn(2)], x, y)},
				nil,
				core.NewAtom(binary[rng.Intn(2)], y, x)))
		case 4: // A(x) -> B(x)
			th.Add(core.NewRule(
				[]core.Atom{core.NewAtom(unary[rng.Intn(3)], x)},
				nil,
				core.NewAtom(unary[rng.Intn(3)], x)))
		}
	}
	for i, r := range th.Rules {
		r.Label = fmt.Sprintf("g%d", i)
	}
	return th
}

func randomDatabase(rng *rand.Rand) *database.Database {
	d := database.New()
	consts := []core.Term{core.Const("a"), core.Const("b"), core.Const("c")}
	for i := 0; i < 4; i++ {
		if rng.Intn(2) == 0 {
			d.Add(core.NewAtom([]string{"A", "B", "C"}[rng.Intn(3)], consts[rng.Intn(3)]))
		} else {
			d.Add(core.NewAtom([]string{"R", "S"}[rng.Intn(2)], consts[rng.Intn(3)], consts[rng.Intn(3)]))
		}
	}
	return d
}

func TestNearlyGuardedToDatalog(t *testing.T) {
	// Guarded existential core + safe transitive-closure periphery.
	th := parser.MustParseTheory(`
		A(X) -> exists Y. R(X,Y).
		R(X,Y) -> B(X).
		E(X,Y) -> T(X,Y).
		T(X,Y), T(Y,Z) -> T(X,Z).
		T(X,Y), B(X), B(Y) -> Linked(X,Y).
	`)
	dat, _, err := NearlyGuardedToDatalog(th, Options{})
	if err != nil {
		t.Fatal(err)
	}
	d := database.FromAtoms(parser.MustParseFacts(`A(a). A(c). E(a,b). E(b,c).`))
	fix, err := datalog.Eval(dat, d)
	if err != nil {
		t.Fatal(err)
	}
	if !fix.Has(core.NewAtom("Linked", core.Const("a"), core.Const("c"))) {
		t.Error("Linked(a,c) must be derived through the safe TC periphery")
	}
	// Cross-check against the chase.
	ch, err := chase.Run(th, d, chase.Options{Variant: chase.Restricted})
	if err != nil {
		t.Fatal(err)
	}
	rels := make(map[string]bool)
	for _, rk := range th.Relations() {
		rels[rk.Name] = true
	}
	a := ch.DB.Restrict(func(k core.RelKey) bool { return rels[k.Name] })
	b := fix.Restrict(func(k core.RelKey) bool { return rels[k.Name] })
	if ok, diff := database.SameGroundAtoms(a, b); !ok {
		t.Errorf("Proposition 6 violated: %s", diff)
	}
}

func TestNearlyGuardedRejectsUnsafe(t *testing.T) {
	th := parser.MustParseTheory(`
		A(X) -> exists Y. R(X,Y).
		R(X,Y), R(Z,Y) -> P(X,Z).
	`)
	if _, _, err := NearlyGuardedToDatalog(th, Options{}); err == nil {
		t.Error("rule with unsafe join variable must be rejected")
	}
}
