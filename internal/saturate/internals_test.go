package saturate

import (
	"testing"

	"guardedrules/internal/core"
	"guardedrules/internal/parser"
)

func TestNormalizeRuleDedupAndExist(t *testing.T) {
	r := &core.Rule{
		Body: []core.Literal{
			core.Pos(core.NewAtom("A", core.Var("x"))),
			core.Pos(core.NewAtom("A", core.Var("x"))), // duplicate
		},
		Head: []core.Atom{
			core.NewAtom("R", core.Var("x"), core.Var("y")),
			core.NewAtom("R", core.Var("x"), core.Var("y")), // duplicate
			core.NewAtom("S", core.Var("z")),
		},
	}
	n := normalizeRule(r)
	if len(n.Body) != 1 || len(n.Head) != 2 {
		t.Errorf("dedup failed: %v", n)
	}
	// y and z are head-only: recomputed as existential.
	if len(n.Exist) != 2 {
		t.Errorf("Exist recomputation: %v", n.Exist)
	}
	// Empty head after dedup → nil.
	if normalizeRule(&core.Rule{Body: n.Body}) != nil {
		t.Error("empty head must yield nil")
	}
}

func TestBodyIsoFindsRenaming(t *testing.T) {
	a := parser.MustParseTheory(`R(X,Y), S(Y) -> P(X).`).Rules[0].PositiveBody()
	b := parser.MustParseTheory(`S(Q), R(P,Q) -> P(P).`).Rules[0].PositiveBody()
	_, na := core.CanonicalAtomSet(a)
	_, nb := core.CanonicalAtomSet(b)
	ren, ok := bodyIso(a, b, na, nb)
	if !ok {
		t.Fatal("isomorphic bodies must yield a renaming")
	}
	if !sameAtomSet(ren.ApplyAtoms(a), b) {
		t.Errorf("renaming does not map a onto b: %v", ren)
	}
}

func TestHeadSubsumedUpToEvars(t *testing.T) {
	pooled := parser.MustParseTheory(`A(X) -> exists Y. R(X,Y).`).Rules[0]
	// Same head shape with a differently named existential variable.
	nh := core.NewAtom("R", core.Var("X"), core.Var("ev99"))
	if !headSubsumed(pooled, nh) {
		t.Error("evar-renamed head must be subsumed")
	}
	// Frontier variable in the null position: genuinely new.
	nh2 := core.NewAtom("R", core.Var("X"), core.Var("X"))
	if headSubsumed(pooled, nh2) {
		t.Error("R(X,X) is not subsumed by R(X,y)")
	}
	// Different relation.
	if headSubsumed(pooled, core.NewAtom("S", core.Var("X"), core.Var("ev1"))) {
		t.Error("different relation must not be subsumed")
	}
}

func TestMergeExistentialGrowsHeads(t *testing.T) {
	p := &pool{byKey: map[string]*core.Rule{}, byBody: map[string]*core.Rule{}, maxSize: 100}
	r1 := parser.MustParseTheory(`A(X) -> exists Y. R(X,Y).`).Rules[0]
	r2 := parser.MustParseTheory(`A(Q) -> exists W. S(Q,W).`).Rules[0]
	if _, err := p.add(r1); err != nil {
		t.Fatal(err)
	}
	if _, err := p.add(r2); err != nil {
		t.Fatal(err)
	}
	// Same canonical body A(·): one pooled rule with both head atoms.
	if len(p.rules) != 1 {
		t.Fatalf("expected one pooled rule, got %d", len(p.rules))
	}
	if len(p.rules[0].Head) != 2 {
		t.Errorf("merged head: %v", p.rules[0].Head)
	}
	// Re-adding an evar-renamed variant must not grow the head.
	r3 := parser.MustParseTheory(`A(Z) -> exists V. R(Z,V).`).Rules[0]
	if changed, _ := p.add(r3); changed {
		t.Error("renamed variant must be subsumed")
	}
}

func TestSaturationCapErrors(t *testing.T) {
	p := &pool{byKey: map[string]*core.Rule{}, byBody: map[string]*core.Rule{}, maxSize: 1}
	r1 := parser.MustParseTheory(`A(X) -> B(X).`).Rules[0]
	r2 := parser.MustParseTheory(`B(X) -> C(X).`).Rules[0]
	if _, err := p.add(r1); err != nil {
		t.Fatal(err)
	}
	if _, err := p.add(r2); err == nil {
		t.Error("cap must trigger")
	}
}
