package saturate

import (
	"context"
	"errors"
	"testing"

	"guardedrules/internal/budget"
	"guardedrules/internal/parser"
)

func TestBudgetRuleLimitReturnsPartial(t *testing.T) {
	th := parser.MustParseTheory(exampleSeven)
	dat, stats, err := Datalog(th, Options{Budget: &budget.T{MaxRules: 4}})
	if !errors.Is(err, budget.ErrRuleLimit) {
		t.Fatalf("err = %v, want ErrRuleLimit", err)
	}
	if dat == nil || stats == nil {
		t.Fatal("budget exhaustion must return the partial closure and stats")
	}
	if stats.ClosureRules == 0 || stats.ClosureRules > 4 {
		t.Fatalf("partial closure has %d rules, want 1..4", stats.ClosureRules)
	}
	var be *budget.Error
	if !errors.As(err, &be) || be.Usage.Rules == 0 {
		t.Fatalf("error must carry a usage snapshot, got %v", err)
	}
}

// Legacy MaxRules now wraps the same sentinel, so errors.Is works through
// the old option too.
func TestLegacyMaxRulesWrapsSentinel(t *testing.T) {
	th := parser.MustParseTheory(exampleSeven)
	_, _, err := Datalog(th, Options{MaxRules: 3})
	if !errors.Is(err, budget.ErrRuleLimit) {
		t.Fatalf("legacy cap err = %v, want ErrRuleLimit wrap", err)
	}
}

func TestStepLimitTyped(t *testing.T) {
	th := parser.MustParseTheory(exampleSeven)
	_, _, err := Datalog(th, Options{Budget: &budget.T{MaxSteps: 2}})
	if !errors.Is(err, budget.ErrStepLimit) {
		t.Fatalf("err = %v, want ErrStepLimit", err)
	}
}

// Fault injection: cancel the saturation at every worklist checkpoint in
// turn; each canceled run must return a partial closure and a typed
// cancellation error, and the first uncanceled run must match an
// ungoverned reference run.
func TestFailAtEveryCheckpoint(t *testing.T) {
	th := parser.MustParseTheory(exampleSeven)
	ref, _, err := Datalog(th, Options{})
	if err != nil {
		t.Fatal(err)
	}
	for n := 1; ; n++ {
		if n > 100_000 {
			t.Fatal("fault injection never ran to completion")
		}
		dat, stats, err := Datalog(th, Options{Budget: budget.FailAt(n)})
		if err == nil {
			if len(dat.Rules) != len(ref.Rules) {
				t.Fatalf("n=%d: governed run has %d rules, want %d", n, len(dat.Rules), len(ref.Rules))
			}
			break
		}
		if !errors.Is(err, budget.ErrCanceled) {
			t.Fatalf("n=%d: err = %v, want ErrCanceled", n, err)
		}
		if dat == nil || stats == nil {
			t.Fatalf("n=%d: canceled saturation must return partials", n)
		}
	}
}

func TestContextCancelStopsSaturation(t *testing.T) {
	th := parser.MustParseTheory(exampleSeven)
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	dat, _, err := Datalog(th, Options{Budget: &budget.T{Ctx: ctx}})
	if !errors.Is(err, budget.ErrCanceled) || !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want ErrCanceled matching context.Canceled", err)
	}
	if dat == nil {
		t.Fatal("canceled saturation must return the partial theory")
	}
}
