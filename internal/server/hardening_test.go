package server

import (
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
	"time"
)

// newHardenedServer builds a server with the given config plus a test
// listener, returning both so tests can reach Server internals
// (BeginDrain, counters) alongside the HTTP surface.
func newHardenedServer(t *testing.T, cfg Config) (*Server, *httptest.Server) {
	t.Helper()
	if cfg.DefaultTimeout == 0 {
		cfg.DefaultTimeout = 10 * time.Second
	}
	srv := New(cfg)
	ts := httptest.NewServer(srv.Handler())
	t.Cleanup(ts.Close)
	return srv, ts
}

func metricsSnapshot(t *testing.T, base string) map[string]int64 {
	t.Helper()
	var m map[string]int64
	if code := get(t, base+"/metrics", &m); code != 200 {
		t.Fatalf("metrics: status %d", code)
	}
	return m
}

// Oversized POST bodies are rejected with 413 before any parsing.
func TestMaxBodyBytes(t *testing.T) {
	_, ts := newHardenedServer(t, Config{MaxBodyBytes: 1024})
	big := theoryRequest{Source: strings.Repeat("A(X) -> B(X). ", 200)}
	var resp errorResponse
	if code := post(t, ts.URL+"/v1/theories", big, &resp); code != http.StatusRequestEntityTooLarge {
		t.Fatalf("oversized body: status %d, want 413", code)
	}
	if !strings.Contains(resp.Error, "1024") {
		t.Fatalf("413 body should name the cap: %q", resp.Error)
	}
	// A request under the cap still works.
	if code := post(t, ts.URL+"/v1/theories", theoryRequest{Source: "A(X) -> B(X)."}, nil); code != 200 {
		t.Fatalf("small body after 413: status %d", code)
	}
}

// Chaos fields are rejected unless the server opted in.
func TestChaosFieldsGated(t *testing.T) {
	_, ts := newHardenedServer(t, Config{})
	thID, dbID := registerFixtures(t, ts.URL)
	req := queryRequest{TheoryID: thID, DBID: dbID, CQ: "B(X) -> Ans(X).", DelayMS: 10}
	if code := post(t, ts.URL+"/v1/query", req, nil); code != http.StatusBadRequest {
		t.Fatalf("chaos field without -chaos: status %d, want 400", code)
	}
}

// waitInFlight polls the tier gauge until it reaches want.
func waitInFlight(t *testing.T, tr *tier, want int64) {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for tr.inFlight.Load() < want {
		if time.Now().After(deadline) {
			t.Fatalf("tier never reached %d in-flight (at %d)", want, tr.inFlight.Load())
		}
		time.Sleep(time.Millisecond)
	}
}

// With the heavy tier saturated (slots and queue full), the next heavy
// request is shed immediately with 429 + Retry-After, and the shed
// counter moves. Slots are occupied deterministically via the chaos
// delay hook.
func TestHeavyAdmissionSheds(t *testing.T) {
	srv, ts := newHardenedServer(t, Config{
		HeavyLimit:   1,
		HeavyQueue:   1,
		MaxQueueWait: 50 * time.Millisecond,
		Chaos:        true,
	})
	thID, dbID := registerFixtures(t, ts.URL)

	// Occupy the one heavy slot: an uncached CQ shape classifies heavy,
	// and the injected delay holds the slot. The queued request uses a
	// distinct shape so it is also a plan miss.
	var wg sync.WaitGroup
	for i := 0; i < 2; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			req := queryRequest{
				TheoryID: thID, DBID: dbID,
				CQ:      fmt.Sprintf("T(X,Y), B(X) -> Ans%d(X).", i),
				DelayMS: 3000,
			}
			post(t, ts.URL+"/v1/query", req, nil)
		}(i)
	}
	waitInFlight(t, srv.heavy, 1)
	// Give the second request time to join the wait queue.
	deadline := time.Now().Add(5 * time.Second)
	for srv.heavy.waiting.Load() < 1 {
		if time.Now().After(deadline) {
			t.Fatal("second heavy request never queued")
		}
		time.Sleep(time.Millisecond)
	}

	body, _ := json.Marshal(queryRequest{
		TheoryID: thID, DBID: dbID,
		CQ: "T(X,Y), B(Y) -> AnsShed(X).",
	})
	resp, err := http.Post(ts.URL+"/v1/query", "application/json", strings.NewReader(string(body)))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusTooManyRequests {
		t.Fatalf("saturated heavy tier: status %d, want 429", resp.StatusCode)
	}
	if resp.Header.Get("Retry-After") == "" {
		t.Fatal("429 must carry Retry-After")
	}
	m := metricsSnapshot(t, ts.URL)
	if m["shed_heavy"] < 1 {
		t.Fatalf("shed_heavy = %d, want >= 1", m["shed_heavy"])
	}
	wg.Wait()
}

// Plan-hit queries classify light and are admitted even while the heavy
// tier is saturated: overload on combined-complexity work does not
// starve cheap data-complexity serving.
func TestPlanHitsBypassHeavySaturation(t *testing.T) {
	srv, ts := newHardenedServer(t, Config{
		HeavyLimit:   1,
		HeavyQueue:   1,
		MaxQueueWait: 50 * time.Millisecond,
		Chaos:        true,
	})
	thID, dbID := registerFixtures(t, ts.URL)

	// Prime a plan (first use is heavy; afterwards its shape is light).
	hot := queryRequest{TheoryID: thID, DBID: dbID, CQ: "Linked(X,Y) -> Ans(X,Y)."}
	var primed queryResponse
	if code := post(t, ts.URL+"/v1/query", hot, &primed); code != 200 {
		t.Fatalf("priming query: status %d", code)
	}

	// Saturate the heavy slot.
	done := make(chan struct{})
	go func() {
		defer close(done)
		req := queryRequest{
			TheoryID: thID, DBID: dbID,
			CQ: "T(X,Y), B(X) -> AnsHog(X).", DelayMS: 3000,
		}
		post(t, ts.URL+"/v1/query", req, nil)
	}()
	waitInFlight(t, srv.heavy, 1)

	var res queryResponse
	if code := post(t, ts.URL+"/v1/query", hot, &res); code != 200 {
		t.Fatalf("plan-hit under heavy saturation: status %d, want 200", code)
	}
	if !res.PlanHit {
		t.Fatal("expected a plan hit")
	}
	if fmt.Sprint(res.Answers) != fmt.Sprint(primed.Answers) {
		t.Fatal("plan-hit answers diverged under load")
	}
	<-done
}

// A panic inside the HTTP handler is contained by the recovery
// middleware: the request gets a 500, the counter moves, and the server
// keeps serving.
func TestHandlerPanicContained(t *testing.T) {
	_, ts := newHardenedServer(t, Config{Chaos: true})
	thID, dbID := registerFixtures(t, ts.URL)
	req := queryRequest{TheoryID: thID, DBID: dbID, CQ: "B(X) -> Ans(X).", PanicHandler: true}
	var resp errorResponse
	if code := post(t, ts.URL+"/v1/query", req, &resp); code != http.StatusInternalServerError {
		t.Fatalf("handler panic: status %d, want 500", code)
	}
	if !strings.Contains(resp.Error, "panic") {
		t.Fatalf("500 body should mention the panic: %q", resp.Error)
	}
	m := metricsSnapshot(t, ts.URL)
	if m["panics_recovered"] != 1 {
		t.Fatalf("panics_recovered = %d, want 1", m["panics_recovered"])
	}
	// The process (and this server) survived: normal serving continues.
	if code := post(t, ts.URL+"/v1/query",
		queryRequest{TheoryID: thID, DBID: dbID, CQ: "B(X) -> Ans(X)."}, nil); code != 200 {
		t.Fatalf("query after contained panic: status %d", code)
	}
}

// A panic inside an engine worker (injected at a budget checkpoint) is
// contained by the engine's recovery seams: the request gets a 500 with
// the typed panic error, the engine_panics counter moves, and the same
// query succeeds cleanly afterwards.
func TestEngineWorkerPanicContained(t *testing.T) {
	_, ts := newHardenedServer(t, Config{Chaos: true, Workers: 4})
	thID, dbID := registerFixtures(t, ts.URL)
	req := queryRequest{TheoryID: thID, DBID: dbID, CQ: "T(X,Y) -> Ans(X,Y).", PanicAt: 1}
	var resp errorResponse
	if code := post(t, ts.URL+"/v1/query", req, &resp); code != http.StatusInternalServerError {
		t.Fatalf("engine panic: status %d, want 500 (body %q)", code, resp.Error)
	}
	if !strings.Contains(resp.Error, "panic") {
		t.Fatalf("500 body should carry the contained panic: %q", resp.Error)
	}
	m := metricsSnapshot(t, ts.URL)
	if m["engine_panics"] != 1 {
		t.Fatalf("engine_panics = %d, want 1", m["engine_panics"])
	}
	if m["panics_recovered"] != 0 {
		t.Fatalf("engine panic must be contained below the middleware, got panics_recovered = %d", m["panics_recovered"])
	}
	req.PanicAt = 0
	var clean queryResponse
	if code := post(t, ts.URL+"/v1/query", req, &clean); code != 200 || !clean.Exact {
		t.Fatalf("clean rerun after engine panic: status %d exact %v", code, clean.Exact)
	}
}

// Chaos fail_at injects budget exhaustion: the response is a 200 with
// truncated partial answers, exercising the sound-truncation path.
func TestChaosFailAtTruncates(t *testing.T) {
	_, ts := newHardenedServer(t, Config{Chaos: true})
	thID, dbID := registerFixtures(t, ts.URL)
	var full queryResponse
	if code := post(t, ts.URL+"/v1/query",
		queryRequest{TheoryID: thID, DBID: dbID, CQ: "T(X,Y) -> Ans(X,Y)."}, &full); code != 200 {
		t.Fatalf("reference query: status %d", code)
	}
	var trunc queryResponse
	if code := post(t, ts.URL+"/v1/query",
		queryRequest{TheoryID: thID, DBID: dbID, CQ: "T(X,Y) -> Ans(X,Y).", FailAt: 2}, &trunc); code != 200 {
		t.Fatalf("fail_at query: status %d", code)
	}
	if !trunc.Truncated || trunc.Exact {
		t.Fatalf("fail_at should truncate: %+v", trunc)
	}
	// Soundness: every truncated answer appears in the full set.
	fullSet := map[string]bool{}
	for _, a := range full.Answers {
		fullSet[fmt.Sprint(a)] = true
	}
	for _, a := range trunc.Answers {
		if !fullSet[fmt.Sprint(a)] {
			t.Fatalf("truncated answer %v not in full set", a)
		}
	}
}

// BeginDrain flips /readyz to 503 while /healthz stays 200 and
// in-flight requests complete.
func TestReadyzDrain(t *testing.T) {
	srv, ts := newHardenedServer(t, Config{Chaos: true})
	thID, dbID := registerFixtures(t, ts.URL)

	var rz map[string]bool
	if code := get(t, ts.URL+"/readyz", &rz); code != 200 || !rz["ready"] {
		t.Fatalf("readyz before drain: %d %v", code, rz)
	}

	// A slow in-flight request spans the drain.
	slow := make(chan int, 1)
	go func() {
		slow <- post(t, ts.URL+"/v1/query",
			queryRequest{TheoryID: thID, DBID: dbID, CQ: "B(X) -> Ans(X).", DelayMS: 300}, nil)
	}()
	deadline := time.Now().Add(5 * time.Second)
	for srv.InFlight() < 1 {
		if time.Now().After(deadline) {
			t.Fatal("slow request never entered")
		}
		time.Sleep(time.Millisecond)
	}

	srv.BeginDrain()
	resp, err := http.Get(ts.URL + "/readyz")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("readyz during drain: %d, want 503", resp.StatusCode)
	}
	if code := get(t, ts.URL+"/healthz", nil); code != 200 {
		t.Fatalf("healthz during drain: %d, want 200", code)
	}
	if code := <-slow; code != 200 {
		t.Fatalf("in-flight request across drain: status %d, want 200", code)
	}
	m := metricsSnapshot(t, ts.URL)
	if m["ready"] != 0 {
		t.Fatalf("ready gauge = %d during drain, want 0", m["ready"])
	}
}

// writeJSON counts encode failures instead of discarding them.
func TestWriteJSONCountsEncodeErrors(t *testing.T) {
	srv := New(Config{})
	rec := httptest.NewRecorder()
	srv.writeJSON(rec, 200, map[string]any{"bad": make(chan int)})
	if got := srv.encodeErrors.Load(); got != 1 {
		t.Fatalf("encodeErrors = %d, want 1", got)
	}
}
