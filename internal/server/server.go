// Package server exposes a kbcache.Store over HTTP/JSON: register
// theories once, load fact databases, and answer conjunctive or atomic
// queries against the compiled artifacts concurrently. Compilation cost
// (the paper's combined-complexity work: classification, rew(Σ), dat(Σ),
// stratification, magic rewriting) is paid at registration and on the
// first query of each shape; every later query pays only evaluation.
//
// Endpoints:
//
//	POST /v1/theories  {"source": "..."}          → compiled-KB summary
//	POST /v1/dbs       {"facts": "..."}           → database id
//	POST /v1/query     {"theory_id", "db_id", …}  → answers
//	GET  /metrics                                 → flat counter JSON
//	GET  /healthz                                 → liveness
//
// Every query runs under a request budget: the request context is the
// cancellation source (a disconnecting client aborts the engines) and
// the server's default timeout and fact ceiling bound the run. Budget
// exhaustion is not an HTTP error: the response carries the sound
// partial answers with "truncated": true and the typed reason.
package server

import (
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"sync"
	"sync/atomic"
	"time"

	"guardedrules/internal/budget"
	"guardedrules/internal/chase"
	"guardedrules/internal/core"
	"guardedrules/internal/database"
	"guardedrules/internal/kb"
	"guardedrules/internal/kbcache"
	"guardedrules/internal/lint"
	"guardedrules/internal/lru"
	"guardedrules/internal/parser"
	"guardedrules/internal/termination"
)

// Config bounds a Server.
type Config struct {
	// Store configures the compiled-KB cache.
	Store kbcache.Config
	// MaxDBs caps the number of loaded fact databases (LRU; 0 means 32).
	MaxDBs int
	// DefaultTimeout is the per-request engine budget; 0 means only the
	// request context bounds the run.
	DefaultTimeout time.Duration
	// MaxFacts is the per-request derived-fact ceiling (0 = none). It
	// guards uncertified evaluation only: theories compiled in
	// ModeCertified carry a termination proof and run to saturation
	// regardless (DefaultTimeout still applies).
	MaxFacts int
	// Workers is the per-round engine parallelism (0 = engine default).
	Workers int
}

func (c Config) maxDBs() int {
	if c.MaxDBs <= 0 {
		return 32
	}
	return c.MaxDBs
}

// endpointStats counts one endpoint's traffic.
type endpointStats struct {
	requests  atomic.Int64
	errors    atomic.Int64
	latencyUS atomic.Int64
}

type dbEntry struct {
	id    string
	db    *database.Database
	facts int
}

// Server serves a compiled-KB store over HTTP.
type Server struct {
	cfg   Config
	store *kbcache.Store

	mu          sync.Mutex
	dbs         *lru.Cache[*dbEntry]
	dbEvictions atomic.Int64

	endpoints map[string]*endpointStats
	mux       *http.ServeMux
}

// New builds a server around a fresh store.
func New(cfg Config) *Server {
	s := &Server{
		cfg:       cfg,
		store:     kbcache.NewStore(cfg.Store),
		dbs:       lru.New[*dbEntry](cfg.maxDBs()),
		endpoints: make(map[string]*endpointStats),
		mux:       http.NewServeMux(),
	}
	s.mux.HandleFunc("POST /v1/theories", s.instrument("theories", s.handleTheories))
	s.mux.HandleFunc("POST /v1/dbs", s.instrument("dbs", s.handleDBs))
	s.mux.HandleFunc("POST /v1/query", s.instrument("query", s.handleQuery))
	s.mux.HandleFunc("GET /metrics", s.instrument("metrics", s.handleMetrics))
	s.mux.HandleFunc("GET /healthz", s.instrument("healthz", s.handleHealthz))
	return s
}

// Store exposes the underlying compiled-KB store (tests, metrics).
func (s *Server) Store() *kbcache.Store { return s.store }

// Handler is the HTTP handler serving all endpoints.
func (s *Server) Handler() http.Handler { return s.mux }

// statusRecorder captures the response status for error counting.
type statusRecorder struct {
	http.ResponseWriter
	status int
}

func (r *statusRecorder) WriteHeader(code int) {
	r.status = code
	r.ResponseWriter.WriteHeader(code)
}

// instrument wraps a handler with per-endpoint request, error and
// latency counters.
func (s *Server) instrument(name string, h http.HandlerFunc) http.HandlerFunc {
	st := &endpointStats{}
	s.endpoints[name] = st
	return func(w http.ResponseWriter, r *http.Request) {
		start := time.Now()
		rec := &statusRecorder{ResponseWriter: w, status: http.StatusOK}
		h(rec, r)
		st.requests.Add(1)
		if rec.status >= 400 {
			st.errors.Add(1)
		}
		st.latencyUS.Add(time.Since(start).Microseconds())
	}
}

func writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	enc.Encode(v)
}

type errorResponse struct {
	Error string `json:"error"`
	Kind  string `json:"kind,omitempty"`
}

// writeError maps an error onto an HTTP status: typed budget errors name
// their ceiling; deadlines are 504, cancellations 503, other budget
// ceilings 422 (the artifact is too large for the configured bounds).
func writeError(w http.ResponseWriter, status int, err error) {
	resp := errorResponse{Error: err.Error()}
	var be *budget.Error
	if errors.As(err, &be) {
		resp.Kind = be.Unwrap().Error()
		switch {
		case errors.Is(err, budget.ErrDeadline):
			status = http.StatusGatewayTimeout
		case errors.Is(err, budget.ErrCanceled):
			status = http.StatusServiceUnavailable
		default:
			status = http.StatusUnprocessableEntity
		}
	}
	writeJSON(w, status, resp)
}

type theoryRequest struct {
	Source string `json:"source"`
}

type theoryResponse struct {
	ID          string               `json:"id"`
	Cached      bool                 `json:"cached"`
	Mode        string               `json:"mode"`
	Fragments   []string             `json:"fragments"`
	Chain       []string             `json:"chain"`
	Rules       int                  `json:"rules"`
	Termination *terminationResponse `json:"termination,omitempty"`
	Lint        []lint.Diagnostic    `json:"lint,omitempty"`
}

// terminationResponse reports the chase-termination verdict of a
// registered theory: the tightest certified class, its machine-checkable
// certificate, and (weakly acyclic theories) the fact-bound
// coefficients.
type terminationResponse struct {
	Class       string                   `json:"class"`
	Certificate *termination.Certificate `json:"certificate,omitempty"`
	Bound       *termination.Bound       `json:"bound,omitempty"`
}

func (s *Server) handleTheories(w http.ResponseWriter, r *http.Request) {
	var req theoryRequest
	if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
		writeError(w, http.StatusBadRequest, fmt.Errorf("invalid JSON: %w", err))
		return
	}
	if req.Source == "" {
		writeError(w, http.StatusBadRequest, errors.New("missing \"source\""))
		return
	}
	ckb, cached, err := s.store.Register(req.Source)
	if err != nil {
		writeError(w, http.StatusBadRequest, err)
		return
	}
	resp := theoryResponse{
		ID:     ckb.ID,
		Cached: cached,
		Mode:   ckb.Mode.String(),
		Chain:  ckb.Chain,
		Rules:  len(ckb.Theory.Rules),
		Lint:   ckb.Lint,
	}
	if tr := ckb.Termination; tr != nil {
		resp.Termination = &terminationResponse{
			Class:       tr.Class.String(),
			Certificate: tr.Certificate,
			Bound:       tr.Bound,
		}
	}
	for _, f := range ckb.Class.Fragments() {
		resp.Fragments = append(resp.Fragments, f.String())
	}
	writeJSON(w, http.StatusOK, resp)
}

type dbRequest struct {
	Facts string `json:"facts"`
}

type dbResponse struct {
	ID    string `json:"id"`
	Facts int    `json:"facts"`
}

func (s *Server) handleDBs(w http.ResponseWriter, r *http.Request) {
	var req dbRequest
	if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
		writeError(w, http.StatusBadRequest, fmt.Errorf("invalid JSON: %w", err))
		return
	}
	atoms, err := parser.ParseFacts(req.Facts)
	if err != nil {
		writeError(w, http.StatusBadRequest, err)
		return
	}
	d := database.FromAtoms(atoms)
	id := kbcache.HashSource(req.Facts)
	s.mu.Lock()
	if _, evicted := s.dbs.Add(id, &dbEntry{id: id, db: d, facts: len(atoms)}); evicted {
		s.dbEvictions.Add(1)
	}
	s.mu.Unlock()
	writeJSON(w, http.StatusOK, dbResponse{ID: id, Facts: len(atoms)})
}

type queryRequest struct {
	TheoryID string `json:"theory_id"`
	DBID     string `json:"db_id"`
	// CQ is a conjunctive query written as a rule, e.g.
	// "T(X,Y), B(Y) -> Ans(X)."; exactly one of CQ and Atom is set.
	CQ string `json:"cq,omitempty"`
	// Atom is an atomic query, e.g. "T(a,Y)": constants are bound,
	// variables free. Served goal-directed via a cached magic-sets plan.
	Atom string `json:"atom,omitempty"`
	// Variant selects the chase flavor for chase-mode plans
	// ("restricted" or "oblivious"; default restricted).
	Variant string `json:"variant,omitempty"`
	// MaxDepth bounds chase-mode null depth (0 = server default).
	MaxDepth int `json:"max_depth,omitempty"`
}

type queryResponse struct {
	Answers   [][]string `json:"answers"`
	Count     int        `json:"count"`
	Exact     bool       `json:"exact"`
	PlanKey   string     `json:"plan_key"`
	PlanHit   bool       `json:"plan_hit"`
	Truncated bool       `json:"truncated,omitempty"`
	Reason    string     `json:"reason,omitempty"`
	Chain     []string   `json:"chain,omitempty"`
}

// requestBudget builds the engine budget of one request: the request
// context cancels it, the server defaults bound it.
func (s *Server) requestBudget(r *http.Request) *budget.T {
	return &budget.T{
		Ctx:      r.Context(),
		Timeout:  s.cfg.DefaultTimeout,
		MaxFacts: s.cfg.MaxFacts,
	}
}

func (s *Server) handleQuery(w http.ResponseWriter, r *http.Request) {
	var req queryRequest
	if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
		writeError(w, http.StatusBadRequest, fmt.Errorf("invalid JSON: %w", err))
		return
	}
	ckb, ok := s.store.Get(req.TheoryID)
	if !ok {
		writeError(w, http.StatusNotFound, fmt.Errorf("unknown theory_id %q (evicted or never registered)", req.TheoryID))
		return
	}
	s.mu.Lock()
	ent, ok := s.dbs.Get(req.DBID)
	s.mu.Unlock()
	if !ok {
		writeError(w, http.StatusNotFound, fmt.Errorf("unknown db_id %q (evicted or never loaded)", req.DBID))
		return
	}
	opts := kbcache.QueryOptions{
		Workers:  s.cfg.Workers,
		Variant:  chase.Restricted,
		MaxDepth: req.MaxDepth,
		Budget:   s.requestBudget(r),
	}
	if ckb.Mode == kbcache.ModeCertified {
		// The defensive fact ceiling guards against divergent chases; a
		// termination certificate proves there is none, so certified
		// theories run to saturation with only cancellation (request
		// context, timeout) still in force.
		opts.Budget.MaxFacts = 0
	}
	if req.Variant == "oblivious" {
		opts.Variant = chase.Oblivious
	}

	var (
		res *kbcache.QueryResult
		err error
	)
	switch {
	case req.CQ != "" && req.Atom == "":
		var q kb.CQ
		q, err = kb.ParseCQ(req.CQ)
		if err != nil {
			writeError(w, http.StatusBadRequest, err)
			return
		}
		res, err = ckb.AnswerCQ(q, ent.db, opts)
	case req.Atom != "" && req.CQ == "":
		var query core.Atom
		query, err = parseQueryAtom(req.Atom)
		if err != nil {
			writeError(w, http.StatusBadRequest, err)
			return
		}
		res, err = ckb.AnswerAtom(query, ent.db, opts)
	default:
		writeError(w, http.StatusBadRequest, errors.New("exactly one of \"cq\" and \"atom\" must be set"))
		return
	}
	if err != nil && (res == nil || !budget.IsBudget(err)) {
		writeError(w, http.StatusInternalServerError, err)
		return
	}
	resp := queryResponse{
		Answers: make([][]string, 0, len(res.Answers)),
		Count:   len(res.Answers),
		Exact:   res.Exact,
		PlanKey: res.PlanKey,
		PlanHit: res.PlanHit,
		Chain:   res.Chain,
	}
	for _, tuple := range res.Answers {
		row := make([]string, len(tuple))
		for i, t := range tuple {
			row[i] = t.String()
		}
		resp.Answers = append(resp.Answers, row)
	}
	if err != nil {
		// Budget exhaustion with sound partial answers: a 200 with the
		// truncation reason, mirroring the engines' partial-result
		// convention.
		resp.Truncated = true
		resp.Reason = err.Error()
	}
	writeJSON(w, http.StatusOK, resp)
}

// parseQueryAtom parses an atomic query, allowing variables.
func parseQueryAtom(src string) (core.Atom, error) {
	th, err := parser.ParseTheory(src + " -> QueryDummy__().")
	if err != nil {
		return core.Atom{}, fmt.Errorf("bad query atom: %w", err)
	}
	body := th.Rules[0].PositiveBody()
	if len(body) != 1 {
		return core.Atom{}, errors.New("query atom must be a single atom")
	}
	return body[0], nil
}

func (s *Server) handleMetrics(w http.ResponseWriter, r *http.Request) {
	out := s.store.Metrics().Snapshot()
	s.mu.Lock()
	out["dbs"] = int64(s.dbs.Len())
	s.mu.Unlock()
	out["db_evictions"] = s.dbEvictions.Load()
	out["kbs"] = int64(s.store.Len())
	for name, st := range s.endpoints {
		out["http_"+name+"_requests"] = st.requests.Load()
		out["http_"+name+"_errors"] = st.errors.Load()
		out["http_"+name+"_latency_us"] = st.latencyUS.Load()
	}
	writeJSON(w, http.StatusOK, out)
}

func (s *Server) handleHealthz(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, http.StatusOK, map[string]bool{"ok": true})
}
