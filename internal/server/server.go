// Package server exposes a kbcache.Store over HTTP/JSON: register
// theories once, load fact databases, and answer conjunctive or atomic
// queries against the compiled artifacts concurrently. Compilation cost
// (the paper's combined-complexity work: classification, rew(Σ), dat(Σ),
// stratification, magic rewriting) is paid at registration and on the
// first query of each shape; every later query pays only evaluation.
//
// Endpoints:
//
//	POST /v1/theories            {"source": "..."}          → compiled-KB summary
//	POST /v1/dbs                 {"facts": "..."}           → database id + version
//	POST /v1/dbs/{id}/facts      {"add", "retract"}         → new version (atomic batch)
//	POST /v1/dbs/{id}/subscribe  {"theory_id", "cq"}        → SSE answer-delta stream
//	POST /v1/query               {"theory_id", "db_id", …}  → answers
//	GET  /metrics                                           → flat counter JSON
//	GET  /healthz                                           → liveness
//	GET  /readyz                                            → readiness (drain-aware)
//
// Fact DBs are mutable: a batch clones the current version in id-space,
// applies retractions then additions, folds the delta into every live
// subscription, and atomically swaps the entry's version pointer —
// in-flight queries keep reading the snapshot they started on and never
// see a half-applied batch. Subscriptions are conjunctive queries
// maintained incrementally (semi-naive resumption for inserts, DRed for
// deletes); a CQ whose cached plan falls back to a per-query bounded
// chase is rejected at registration with 422 rather than degrading to
// re-chasing on every batch.
//
// Every query runs under a request budget: the request context is the
// cancellation source (a disconnecting client aborts the engines) and
// the server's default timeout and fact ceiling bound the run. Budget
// exhaustion is not an HTTP error: the response carries the sound
// partial answers with "truncated": true and the typed reason.
//
// The server is hardened for sustained overload: POST bodies are
// size-capped (413), requests are routed through two-tier admission
// control (combined-complexity work — compile misses, cold plans,
// per-call chases — through a narrow gate; data-complexity plan-hit
// evaluation through a wide one) and shed with 429 + Retry-After when
// both the tier's slots and its bounded wait queue are full, handler
// panics are contained to a 500 on the one request, and BeginDrain
// flips /readyz to 503 so load balancers stop routing while in-flight
// requests finish.
package server

import (
	"encoding/json"
	"errors"
	"fmt"
	"log"
	"net/http"
	"runtime"
	"runtime/debug"
	"strconv"
	"sync"
	"sync/atomic"
	"time"

	"guardedrules/internal/budget"
	"guardedrules/internal/chase"
	"guardedrules/internal/core"
	"guardedrules/internal/database"
	"guardedrules/internal/kb"
	"guardedrules/internal/kbcache"
	"guardedrules/internal/lint"
	"guardedrules/internal/lru"
	"guardedrules/internal/par"
	"guardedrules/internal/parser"
	"guardedrules/internal/store/segment"
	"guardedrules/internal/termination"
)

// Config bounds a Server.
type Config struct {
	// Store configures the compiled-KB cache.
	Store kbcache.Config
	// MaxDBs caps the number of loaded fact databases (LRU; 0 means 32).
	MaxDBs int
	// DefaultTimeout is the per-request engine budget; 0 means only the
	// request context bounds the run.
	DefaultTimeout time.Duration
	// MaxFacts is the per-request derived-fact ceiling (0 = none). It
	// guards uncertified evaluation only: theories compiled in
	// ModeCertified carry a termination proof and run to saturation
	// regardless (DefaultTimeout still applies).
	MaxFacts int
	// Workers is the per-round engine parallelism (0 = engine default).
	Workers int

	// HeavyLimit caps concurrent combined-complexity requests: compile
	// misses, cold-plan builds, and chase-per-call evaluation (0 = 4).
	HeavyLimit int
	// HeavyQueue bounds how many heavy requests may wait for a slot
	// before new arrivals are shed with 429 (0 = 2×HeavyLimit).
	HeavyQueue int
	// LightLimit caps concurrent data-complexity requests: plan-hit
	// evaluation and fact parsing (0 = 64).
	LightLimit int
	// LightQueue bounds the light wait queue (0 = 2×LightLimit).
	LightQueue int
	// MaxQueueWait bounds how long an admitted-but-queued request waits
	// for a slot before it is shed (0 = 1s).
	MaxQueueWait time.Duration
	// MaxBodyBytes caps POST request bodies; oversized bodies get 413
	// (0 = 4 MiB).
	MaxBodyBytes int64
	// MaxSubs caps concurrent live-query subscriptions server-wide;
	// registrations beyond it are shed with 429 (0 = 64).
	MaxSubs int
	// Chaos enables the fault-injection fields on query requests (used
	// by the load harness); without it those fields are rejected.
	Chaos bool

	// DataDir, when set, makes fact DBs and compiled theories durable:
	// every DB is backed by a segment store under DataDir/dbs/<id>,
	// mutation batches commit to disk before the new version is
	// published, and registered theories persist their compiled
	// artifacts under DataDir/theories. Call RestoreData after New to
	// reopen everything at its last committed version. Empty means fully
	// in-memory (the default).
	DataDir string
	// SyncWrites fsyncs every commit record. Off, a commit is durable
	// against process death (SIGKILL included) but not against kernel
	// crash or power loss; on, each batch pays an fsync.
	SyncWrites bool
}

func (c Config) maxDBs() int {
	if c.MaxDBs <= 0 {
		return 32
	}
	return c.MaxDBs
}

func (c Config) heavyLimit() int {
	if c.HeavyLimit <= 0 {
		return 4
	}
	return c.HeavyLimit
}

func (c Config) heavyQueue() int {
	if c.HeavyQueue <= 0 {
		return 2 * c.heavyLimit()
	}
	return c.HeavyQueue
}

func (c Config) lightLimit() int {
	if c.LightLimit <= 0 {
		return 64
	}
	return c.LightLimit
}

func (c Config) lightQueue() int {
	if c.LightQueue <= 0 {
		return 2 * c.lightLimit()
	}
	return c.LightQueue
}

func (c Config) maxQueueWait() time.Duration {
	if c.MaxQueueWait <= 0 {
		return time.Second
	}
	return c.MaxQueueWait
}

func (c Config) maxBodyBytes() int64 {
	if c.MaxBodyBytes <= 0 {
		return 4 << 20
	}
	return c.MaxBodyBytes
}

func (c Config) maxSubs() int {
	if c.MaxSubs <= 0 {
		return 64
	}
	return c.MaxSubs
}

// endpointStats counts one endpoint's traffic.
type endpointStats struct {
	requests  atomic.Int64
	errors    atomic.Int64
	latencyUS atomic.Int64
}

// dbVersion is one immutable snapshot of a mutable fact DB: queries
// read whichever version is current when they start and are never
// exposed to a half-applied batch; version numbers are per-DB and
// increase by one per committed batch.
type dbVersion struct {
	db      *database.Database
	version uint64
	facts   int
}

// dbEntry is a mutable fact DB: an atomically swappable current version
// plus the live subscriptions fed by its mutation batches. mu serializes
// writers (fact batches, subscription registration); readers load cur
// without locking.
type dbEntry struct {
	id   string
	mu   sync.Mutex
	cur  atomic.Pointer[dbVersion]
	subs map[*subscription]struct{}

	// seg is the entry's durable segment store (nil on a server without
	// a data dir). Writes to it happen only under mu; cur always serves
	// an immutable clone of its committed state, never the store's own
	// mirror, so in-flight queries are isolated from the journal.
	seg *segment.Store
}

// Server serves a compiled-KB store over HTTP.
type Server struct {
	cfg   Config
	store *kbcache.Store

	mu          sync.Mutex
	dbs         *lru.Cache[*dbEntry]
	dbEvictions atomic.Int64

	heavy *tier
	light *tier

	ready           atomic.Bool // false once draining
	draining        chan struct{}
	drainOnce       sync.Once
	inFlight        atomic.Int64
	panicsRecovered atomic.Int64
	enginePanics    atomic.Int64
	encodeErrors    atomic.Int64

	// Mutation and subscription traffic.
	subscriptions  atomic.Int64 // live SSE streams (gauge)
	subsEvents     atomic.Int64 // delta events delivered
	subsDropped    atomic.Int64 // subscriptions dropped (slow consumer or failed batch)
	factBatches    atomic.Int64 // committed mutation batches
	factsAdded     atomic.Int64 // base facts added across batches
	factsRetracted atomic.Int64 // base facts retracted across batches

	endpoints map[string]*endpointStats
	mux       *http.ServeMux
}

// New builds a server around a fresh store.
func New(cfg Config) *Server {
	s := &Server{
		cfg:       cfg,
		store:     kbcache.NewStore(cfg.Store),
		dbs:       lru.New[*dbEntry](cfg.maxDBs()),
		heavy:     newTier(cfg.heavyLimit(), cfg.heavyQueue(), cfg.maxQueueWait()),
		light:     newTier(cfg.lightLimit(), cfg.lightQueue(), cfg.maxQueueWait()),
		endpoints: make(map[string]*endpointStats),
		mux:       http.NewServeMux(),
		draining:  make(chan struct{}),
	}
	s.ready.Store(true)
	s.mux.HandleFunc("POST /v1/theories", s.instrument("theories", s.handleTheories))
	s.mux.HandleFunc("GET /v1/theories/{id}", s.instrument("theory_info", s.handleTheoryInfo))
	s.mux.HandleFunc("POST /v1/dbs", s.instrument("dbs", s.handleDBs))
	s.mux.HandleFunc("GET /v1/dbs/{id}", s.instrument("db_info", s.handleDBInfo))
	s.mux.HandleFunc("POST /v1/dbs/{id}/facts", s.instrument("facts", s.handleFacts))
	s.mux.HandleFunc("POST /v1/dbs/{id}/subscribe", s.instrument("subscribe", s.handleSubscribe))
	s.mux.HandleFunc("POST /v1/query", s.instrument("query", s.handleQuery))
	s.mux.HandleFunc("GET /metrics", s.instrument("metrics", s.handleMetrics))
	s.mux.HandleFunc("GET /healthz", s.instrument("healthz", s.handleHealthz))
	s.mux.HandleFunc("GET /readyz", s.instrument("readyz", s.handleReadyz))
	return s
}

// Store exposes the underlying compiled-KB store (tests, metrics).
func (s *Server) Store() *kbcache.Store { return s.store }

// Handler is the HTTP handler serving all endpoints.
func (s *Server) Handler() http.Handler { return s.mux }

// BeginDrain flips /readyz to 503 so load balancers stop routing new
// traffic and closes every live subscription stream (an SSE stream
// would otherwise hold http.Server.Shutdown open forever). In-flight
// requests are unaffected; pair with http.Server.Shutdown, which waits
// for them.
func (s *Server) BeginDrain() {
	s.ready.Store(false)
	s.drainOnce.Do(func() { close(s.draining) })
}

// InFlight reports the requests currently inside handlers.
func (s *Server) InFlight() int64 { return s.inFlight.Load() }

// statusRecorder captures the response status for error counting and
// whether a header went out (a panicking handler may or may not have
// started its response).
type statusRecorder struct {
	http.ResponseWriter
	status int
	wrote  bool
}

func (r *statusRecorder) WriteHeader(code int) {
	r.status = code
	r.wrote = true
	r.ResponseWriter.WriteHeader(code)
}

func (r *statusRecorder) Write(b []byte) (int, error) {
	r.wrote = true
	return r.ResponseWriter.Write(b)
}

// Flush forwards to the underlying writer so SSE streams work through
// the instrumentation wrapper.
func (r *statusRecorder) Flush() {
	if f, ok := r.ResponseWriter.(http.Flusher); ok {
		f.Flush()
	}
}

// instrument wraps a handler with per-endpoint request, error and
// latency counters, the server-wide in-flight gauge, and panic
// containment: a panicking handler costs that request a 500, never the
// process.
func (s *Server) instrument(name string, h http.HandlerFunc) http.HandlerFunc {
	st := &endpointStats{}
	s.endpoints[name] = st
	return func(w http.ResponseWriter, r *http.Request) {
		start := time.Now()
		s.inFlight.Add(1)
		rec := &statusRecorder{ResponseWriter: w, status: http.StatusOK}
		defer func() {
			if v := recover(); v != nil {
				s.panicsRecovered.Add(1)
				log.Printf("server: panic in %s handler (contained): %v\n%s", name, v, debug.Stack())
				rec.status = http.StatusInternalServerError
				if !rec.wrote {
					s.writeError(rec, http.StatusInternalServerError,
						fmt.Errorf("internal error: handler panicked: %v", v))
				}
			}
			s.inFlight.Add(-1)
			st.requests.Add(1)
			if rec.status >= 400 {
				st.errors.Add(1)
			}
			st.latencyUS.Add(time.Since(start).Microseconds())
		}()
		h(rec, r)
	}
}

func (s *Server) writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	if err := enc.Encode(v); err != nil {
		// The status line is already out; all we can do is count the
		// failure so operators see responses dying mid-encode.
		s.encodeErrors.Add(1)
	}
}

type errorResponse struct {
	Error string `json:"error"`
	Kind  string `json:"kind,omitempty"`
}

// writeError maps an error onto an HTTP status: typed budget errors name
// their ceiling; deadlines are 504, cancellations 503, other budget
// ceilings 422 (the artifact is too large for the configured bounds).
func (s *Server) writeError(w http.ResponseWriter, status int, err error) {
	resp := errorResponse{Error: err.Error()}
	var be *budget.Error
	if errors.As(err, &be) {
		resp.Kind = be.Unwrap().Error()
		switch {
		case errors.Is(err, budget.ErrDeadline):
			status = http.StatusGatewayTimeout
		case errors.Is(err, budget.ErrCanceled):
			status = http.StatusServiceUnavailable
		default:
			status = http.StatusUnprocessableEntity
		}
	}
	s.writeJSON(w, status, resp)
}

// decodeBody decodes the JSON request body under the configured size
// cap. On failure it writes the error response itself — 413 for an
// oversized body, 400 for malformed JSON — and returns false.
func (s *Server) decodeBody(w http.ResponseWriter, r *http.Request, v any) bool {
	r.Body = http.MaxBytesReader(w, r.Body, s.cfg.maxBodyBytes())
	if err := json.NewDecoder(r.Body).Decode(v); err != nil {
		var mbe *http.MaxBytesError
		if errors.As(err, &mbe) {
			s.writeError(w, http.StatusRequestEntityTooLarge,
				fmt.Errorf("request body exceeds %d bytes", mbe.Limit))
			return false
		}
		s.writeError(w, http.StatusBadRequest, fmt.Errorf("invalid JSON: %w", err))
		return false
	}
	return true
}

// admit routes the request through the named tier, shedding with 429 +
// Retry-After when the tier's slots and bounded queue are both full (or
// the wait times out). On admission the caller must call release.
func (s *Server) admit(w http.ResponseWriter, r *http.Request, t *tier, tierName string) (release func(), ok bool) {
	release, ok = t.acquire(r.Context())
	if !ok {
		w.Header().Set("Retry-After", strconv.Itoa(t.retryAfterSeconds()))
		s.writeError(w, http.StatusTooManyRequests,
			fmt.Errorf("server saturated: %s admission queue full, retry later", tierName))
		return nil, false
	}
	return release, true
}

type theoryRequest struct {
	Source string `json:"source"`
}

type theoryResponse struct {
	ID          string               `json:"id"`
	Cached      bool                 `json:"cached"`
	Mode        string               `json:"mode"`
	Fragments   []string             `json:"fragments"`
	Chain       []string             `json:"chain"`
	Rules       int                  `json:"rules"`
	Termination *terminationResponse `json:"termination,omitempty"`
	Lint        []lint.Diagnostic    `json:"lint,omitempty"`
}

// terminationResponse reports the chase-termination verdict of a
// registered theory: the tightest certified class, its machine-checkable
// certificate, and (weakly acyclic theories) the fact-bound
// coefficients.
type terminationResponse struct {
	Class       string                   `json:"class"`
	Certificate *termination.Certificate `json:"certificate,omitempty"`
	Bound       *termination.Bound       `json:"bound,omitempty"`
}

func (s *Server) handleTheories(w http.ResponseWriter, r *http.Request) {
	var req theoryRequest
	if !s.decodeBody(w, r, &req) {
		return
	}
	if req.Source == "" {
		s.writeError(w, http.StatusBadRequest, errors.New("missing \"source\""))
		return
	}
	// A re-registration of a cached source is a map lookup (light); a
	// novel source pays the full combined-complexity compile pipeline
	// (heavy). Concurrent first registrations all classify heavy and
	// share one compile through the store's flight — exactly the
	// requests that should be holding heavy slots.
	admitTier, tierName := s.heavy, "heavy"
	if _, ok := s.store.Get(kbcache.HashSource(req.Source)); ok {
		admitTier, tierName = s.light, "light"
	}
	release, ok := s.admit(w, r, admitTier, tierName)
	if !ok {
		return
	}
	defer release()
	// A theory whose artifact survived on disk (LRU-evicted, or from an
	// earlier process) restores without re-running the translations.
	id := kbcache.HashSource(req.Source)
	if _, ok := s.store.Get(id); !ok && s.theoryPersisted(id) {
		if err := s.loadTheoryArtifact(s.theoryPath(id)); err != nil {
			log.Printf("server: stale theory artifact %.12s…: %v", id, err)
		}
	}
	ckb, cached, err := s.store.Register(r.Context(), req.Source)
	if err != nil {
		s.writeError(w, http.StatusBadRequest, err)
		return
	}
	if !cached {
		s.persistTheory(ckb)
	}
	s.writeJSON(w, http.StatusOK, theorySummary(ckb, cached))
}

// theorySummary renders a compiled KB for the registration and info
// endpoints.
func theorySummary(ckb *kbcache.CompiledKB, cached bool) theoryResponse {
	resp := theoryResponse{
		ID:     ckb.ID,
		Cached: cached,
		Mode:   ckb.Mode.String(),
		Chain:  ckb.Chain,
		Rules:  len(ckb.Theory.Rules),
		Lint:   ckb.Lint,
	}
	if tr := ckb.Termination; tr != nil {
		resp.Termination = &terminationResponse{
			Class:       tr.Class.String(),
			Certificate: tr.Certificate,
			Bound:       tr.Bound,
		}
	}
	for _, f := range ckb.Class.Fragments() {
		resp.Fragments = append(resp.Fragments, f.String())
	}
	return resp
}

// theoryInfoResponse is GET /v1/theories/{id}: the registration summary
// plus persistence status and the cached plan keys.
type theoryInfoResponse struct {
	theoryResponse
	Persistent bool     `json:"persistent"`
	PlanKeys   []string `json:"plan_keys,omitempty"`
}

func (s *Server) handleTheoryInfo(w http.ResponseWriter, r *http.Request) {
	id := r.PathValue("id")
	ckb, ok := s.store.Get(id)
	if !ok {
		s.writeError(w, http.StatusNotFound, fmt.Errorf("unknown theory id %q (evicted or never registered)", id))
		return
	}
	s.writeJSON(w, http.StatusOK, theoryInfoResponse{
		theoryResponse: theorySummary(ckb, true),
		Persistent:     s.theoryPersisted(id),
		PlanKeys:       ckb.PlanKeys(),
	})
}

// relationInfo is one relation's shape and size in a DB snapshot.
type relationInfo struct {
	Name     string `json:"name"`
	Arity    int    `json:"arity"`
	AnnArity int    `json:"ann_arity,omitempty"`
	Facts    int    `json:"facts"`
}

// dbInfoResponse is GET /v1/dbs/{id}: the served version, fact counts,
// per-relation sizes, and persistence status of a loaded DB.
type dbInfoResponse struct {
	ID          string         `json:"id"`
	Version     uint64         `json:"version"`
	Facts       int            `json:"facts"`
	TotalFacts  int            `json:"total_facts"`
	Relations   []relationInfo `json:"relations"`
	Persistent  bool           `json:"persistent"`
	Subscribers int            `json:"subscribers"`
}

func (s *Server) handleDBInfo(w http.ResponseWriter, r *http.Request) {
	id := r.PathValue("id")
	s.mu.Lock()
	ent, ok := s.dbs.Get(id)
	s.mu.Unlock()
	if !ok {
		s.writeError(w, http.StatusNotFound, fmt.Errorf("unknown db id %q (evicted or never loaded)", id))
		return
	}
	snap := ent.cur.Load()
	resp := dbInfoResponse{
		ID:         id,
		Version:    snap.version,
		Facts:      snap.facts,
		TotalFacts: snap.db.Len(),
		Persistent: ent.seg != nil,
		Relations:  []relationInfo{},
	}
	for _, rk := range snap.db.Relations() {
		resp.Relations = append(resp.Relations, relationInfo{
			Name:     rk.Name,
			Arity:    rk.Arity,
			AnnArity: rk.AnnArity,
			Facts:    snap.db.RelSize(rk),
		})
	}
	ent.mu.Lock()
	resp.Subscribers = len(ent.subs)
	ent.mu.Unlock()
	s.writeJSON(w, http.StatusOK, resp)
}

type dbRequest struct {
	Facts string `json:"facts"`
}

type dbResponse struct {
	ID      string `json:"id"`
	Facts   int    `json:"facts"`
	Version uint64 `json:"version"`
}

func (s *Server) handleDBs(w http.ResponseWriter, r *http.Request) {
	var req dbRequest
	if !s.decodeBody(w, r, &req) {
		return
	}
	// Fact parsing is data-complexity work bounded by the body cap.
	release, ok := s.admit(w, r, s.light, "light")
	if !ok {
		return
	}
	defer release()
	atoms, err := parser.ParseFacts(req.Facts)
	if err != nil {
		s.writeError(w, http.StatusBadRequest, err)
		return
	}
	d := database.FromAtoms(atoms)
	id := kbcache.HashSource(req.Facts)
	ent := &dbEntry{id: id, subs: make(map[*subscription]struct{})}
	ent.cur.Store(&dbVersion{db: d, version: 1, facts: len(atoms)})
	// Pre-lock the candidate entry: if it wins publication below, this
	// handler owns its one-time setup (opening the segment store), and a
	// batch or subscription racing in blocks on ent.mu until setup is
	// done. The provisional version stored above keeps lock-free readers
	// safe in that window.
	ent.mu.Lock()
	owned := true
	var victim *dbEntry
	s.mu.Lock()
	if old, ok := s.dbs.Get(id); ok {
		// Reloading the same source must not reset a mutated DB to its
		// initial facts (the id hashes the original source): keep the
		// existing entry, its version history and subscribers intact.
		ent.mu.Unlock()
		ent, owned = old, false
	} else if _, v, evicted := s.dbs.Add(id, ent); evicted {
		s.dbEvictions.Add(1)
		victim = v
	}
	s.mu.Unlock()
	if owned {
		if err := s.setupSegLocked(ent, atoms); err != nil {
			// Publishing a memory-only entry on a server the operator made
			// durable would silently drop data on restart: unpublish and
			// fail the load instead.
			s.mu.Lock()
			s.dbs.Remove(id)
			s.mu.Unlock()
			ent.mu.Unlock()
			s.teardownEvicted(victim, fmt.Sprintf("MaxDBs=%d LRU", s.cfg.maxDBs()))
			s.writeError(w, http.StatusInternalServerError, err)
			return
		}
		ent.mu.Unlock()
	}
	// Tear the evicted DB down outside s.mu (writers take ent.mu before
	// s.mu, so nesting the other way would deadlock): subscribers get a
	// terminal error frame and segment-file handles are closed.
	s.teardownEvicted(victim, fmt.Sprintf("MaxDBs=%d LRU", s.cfg.maxDBs()))
	cur := ent.cur.Load()
	s.writeJSON(w, http.StatusOK, dbResponse{ID: id, Facts: cur.facts, Version: cur.version})
}

// setupSegLocked attaches the durable segment store to a freshly
// published entry (no-op without a data dir; caller holds ent.mu). A
// fresh store journals and commits the initial facts (version 1, like a
// memory-only load); a store whose directory survived an earlier
// process or eviction reopens at its last committed version — same
// rule as reloading a live entry: posting the same source never resets
// a mutated DB.
func (s *Server) setupSegLocked(ent *dbEntry, atoms []core.Atom) error {
	if !s.persistent() {
		return nil
	}
	seg, err := s.openSeg(ent.id)
	if err != nil {
		return fmt.Errorf("open segment store: %w", err)
	}
	facts := len(seg.UserFacts())
	if seg.Version() == 0 {
		for _, a := range atoms {
			seg.Add(a)
		}
		if _, err := seg.Commit(); err != nil {
			seg.Close()
			return fmt.Errorf("commit initial facts: %w", err)
		}
		facts = len(atoms)
	}
	ent.seg = seg
	ent.cur.Store(&dbVersion{db: seg.Clone(), version: seg.Version(), facts: facts})
	return nil
}

type queryRequest struct {
	TheoryID string `json:"theory_id"`
	DBID     string `json:"db_id"`
	// CQ is a conjunctive query written as a rule, e.g.
	// "T(X,Y), B(Y) -> Ans(X)."; exactly one of CQ and Atom is set.
	CQ string `json:"cq,omitempty"`
	// Atom is an atomic query, e.g. "T(a,Y)": constants are bound,
	// variables free. Served goal-directed via a cached magic-sets plan.
	Atom string `json:"atom,omitempty"`
	// Variant selects the chase flavor for chase-mode plans
	// ("restricted" or "oblivious"; default restricted).
	Variant string `json:"variant,omitempty"`
	// MaxDepth bounds chase-mode null depth (0 = server default).
	MaxDepth int `json:"max_depth,omitempty"`

	// Fault-injection fields, rejected unless the server was built with
	// Config.Chaos (the load harness's levers). FailAt aborts the
	// engine budget at its nth checkpoint; PanicAt panics there
	// (exercising worker/engine containment); DelayMS sleeps before
	// evaluation while holding the admission slot (driving shed paths
	// deterministically); PanicHandler panics in the HTTP handler
	// itself (exercising the recovery middleware).
	FailAt       int64 `json:"fail_at,omitempty"`
	PanicAt      int64 `json:"panic_at,omitempty"`
	DelayMS      int   `json:"delay_ms,omitempty"`
	PanicHandler bool  `json:"panic_handler,omitempty"`
}

func (q queryRequest) wantsChaos() bool {
	return q.FailAt > 0 || q.PanicAt > 0 || q.DelayMS > 0 || q.PanicHandler
}

type queryResponse struct {
	Answers   [][]string `json:"answers"`
	Count     int        `json:"count"`
	Exact     bool       `json:"exact"`
	PlanKey   string     `json:"plan_key"`
	PlanHit   bool       `json:"plan_hit"`
	Truncated bool       `json:"truncated,omitempty"`
	Reason    string     `json:"reason,omitempty"`
	Chain     []string   `json:"chain,omitempty"`
	DBVersion uint64     `json:"db_version"`
}

// requestBudget builds the engine budget of one request: the request
// context cancels it, the server defaults bound it.
func (s *Server) requestBudget(r *http.Request) *budget.T {
	return &budget.T{
		Ctx:      r.Context(),
		Timeout:  s.cfg.DefaultTimeout,
		MaxFacts: s.cfg.MaxFacts,
	}
}

// classifyQuery picks the admission tier of a query: light exactly when
// the KB already holds a compiled (non-chase) plan for the query's
// shape, so the request pays only data-complexity evaluation. Plan
// misses, chase-fallback plans, and chase-mode KBs (which re-chase per
// call, atom queries included via the CQ path) are heavy.
func (s *Server) classifyQuery(ckb *kbcache.CompiledKB, key string) (t *tier, name string) {
	if cached, chasePerCall := ckb.PlanInfo(key); cached && !chasePerCall {
		return s.light, "light"
	}
	return s.heavy, "heavy"
}

func (s *Server) handleQuery(w http.ResponseWriter, r *http.Request) {
	var req queryRequest
	if !s.decodeBody(w, r, &req) {
		return
	}
	if req.wantsChaos() && !s.cfg.Chaos {
		s.writeError(w, http.StatusBadRequest,
			errors.New("fault-injection fields require a server started with chaos enabled"))
		return
	}
	ckb, ok := s.store.Get(req.TheoryID)
	if !ok {
		s.writeError(w, http.StatusNotFound, fmt.Errorf("unknown theory_id %q (evicted or never registered)", req.TheoryID))
		return
	}
	s.mu.Lock()
	ent, ok := s.dbs.Get(req.DBID)
	s.mu.Unlock()
	if !ok {
		s.writeError(w, http.StatusNotFound, fmt.Errorf("unknown db_id %q (evicted or never loaded)", req.DBID))
		return
	}

	// Parse the query before admission: both the tier classification and
	// the rejection of malformed requests should not cost a slot.
	var (
		q        kb.CQ
		query    core.Atom
		isCQ     bool
		parseErr error
	)
	switch {
	case req.CQ != "" && req.Atom == "":
		isCQ = true
		q, parseErr = kb.ParseCQ(req.CQ)
	case req.Atom != "" && req.CQ == "":
		query, parseErr = parseQueryAtom(req.Atom)
	default:
		s.writeError(w, http.StatusBadRequest, errors.New("exactly one of \"cq\" and \"atom\" must be set"))
		return
	}
	if parseErr != nil {
		s.writeError(w, http.StatusBadRequest, parseErr)
		return
	}
	planKey := kbcache.AtomKey(query)
	if isCQ {
		planKey = kbcache.CQKey(q)
	}
	admitTier, tierName := s.classifyQuery(ckb, planKey)
	release, ok := s.admit(w, r, admitTier, tierName)
	if !ok {
		return
	}
	defer release()

	if req.DelayMS > 0 {
		select {
		case <-time.After(time.Duration(req.DelayMS) * time.Millisecond):
		case <-r.Context().Done():
		}
	}
	if req.PanicHandler {
		panic("chaos: injected handler panic")
	}

	opts := kbcache.QueryOptions{
		Workers:  s.cfg.Workers,
		Variant:  chase.Restricted,
		MaxDepth: req.MaxDepth,
		Budget:   s.requestBudget(r),
	}
	opts.Budget.FailAtCheckpoint = req.FailAt
	opts.Budget.PanicAtCheckpoint = req.PanicAt
	if ckb.Mode == kbcache.ModeCertified {
		// The defensive fact ceiling guards against divergent chases; a
		// termination certificate proves there is none, so certified
		// theories run to saturation with only cancellation (request
		// context, timeout) still in force.
		opts.Budget.MaxFacts = 0
	}
	if req.Variant == "oblivious" {
		opts.Variant = chase.Oblivious
	}

	// Pin the DB version for the whole evaluation: a mutation batch
	// committing mid-query swaps the entry's pointer to a fresh clone, so
	// this snapshot is immutable and never shows a half-applied batch.
	snap := ent.cur.Load()
	var (
		res *kbcache.QueryResult
		err error
	)
	if isCQ {
		res, err = ckb.AnswerCQ(r.Context(), q, snap.db, opts)
	} else {
		res, err = ckb.AnswerAtom(r.Context(), query, snap.db, opts)
	}
	if err != nil && (res == nil || !budget.IsBudget(err)) {
		var pe *par.PanicError
		if errors.As(err, &pe) {
			// An engine worker panicked; the engines contained it to this
			// request and the evaluation state was discarded.
			s.enginePanics.Add(1)
		}
		s.writeError(w, http.StatusInternalServerError, err)
		return
	}
	resp := queryResponse{
		Answers:   make([][]string, 0, len(res.Answers)),
		Count:     len(res.Answers),
		Exact:     res.Exact,
		PlanKey:   res.PlanKey,
		PlanHit:   res.PlanHit,
		Chain:     res.Chain,
		DBVersion: snap.version,
	}
	for _, tuple := range res.Answers {
		row := make([]string, len(tuple))
		for i, t := range tuple {
			row[i] = t.String()
		}
		resp.Answers = append(resp.Answers, row)
	}
	if err != nil {
		// Budget exhaustion with sound partial answers: a 200 with the
		// truncation reason, mirroring the engines' partial-result
		// convention.
		resp.Truncated = true
		resp.Reason = err.Error()
	}
	s.writeJSON(w, http.StatusOK, resp)
}

// parseQueryAtom parses an atomic query, allowing variables.
func parseQueryAtom(src string) (core.Atom, error) {
	th, err := parser.ParseTheory(src + " -> QueryDummy__().")
	if err != nil {
		return core.Atom{}, fmt.Errorf("bad query atom: %w", err)
	}
	body := th.Rules[0].PositiveBody()
	if len(body) != 1 {
		return core.Atom{}, errors.New("query atom must be a single atom")
	}
	return body[0], nil
}

// Gauge keys in /metrics (free to move in both directions): "dbs",
// "kbs", "ready", "in_flight", "in_flight_heavy", "in_flight_light",
// "queued_heavy", "queued_light", "goroutines", "subscriptions".
// Everything else is a monotone counter — the load harness checks that
// invariant.
func (s *Server) handleMetrics(w http.ResponseWriter, r *http.Request) {
	out := s.store.Metrics().Snapshot()
	s.mu.Lock()
	out["dbs"] = int64(s.dbs.Len())
	s.mu.Unlock()
	out["db_evictions"] = s.dbEvictions.Load()
	out["kbs"] = int64(s.store.Len())
	out["ready"] = 0
	if s.ready.Load() {
		out["ready"] = 1
	}
	out["in_flight"] = s.inFlight.Load()
	out["goroutines"] = int64(runtime.NumGoroutine())
	out["panics_recovered"] = s.panicsRecovered.Load()
	out["engine_panics"] = s.enginePanics.Load()
	out["encode_errors"] = s.encodeErrors.Load()
	out["subscriptions"] = s.subscriptions.Load()
	out["subs_events"] = s.subsEvents.Load()
	out["subs_dropped"] = s.subsDropped.Load()
	out["fact_batches"] = s.factBatches.Load()
	out["facts_added"] = s.factsAdded.Load()
	out["facts_retracted"] = s.factsRetracted.Load()
	for name, t := range map[string]*tier{"heavy": s.heavy, "light": s.light} {
		out["shed_"+name] = t.shed.Load()
		out["admitted_"+name] = t.admitted.Load()
		out["in_flight_"+name] = t.inFlight.Load()
		out["queued_"+name] = t.waiting.Load()
	}
	for name, st := range s.endpoints {
		out["http_"+name+"_requests"] = st.requests.Load()
		out["http_"+name+"_errors"] = st.errors.Load()
		out["http_"+name+"_latency_us"] = st.latencyUS.Load()
	}
	s.writeJSON(w, http.StatusOK, out)
}

func (s *Server) handleHealthz(w http.ResponseWriter, r *http.Request) {
	s.writeJSON(w, http.StatusOK, map[string]bool{"ok": true})
}

// handleReadyz reports routability: 200 while serving, 503 once
// draining. Liveness (/healthz) stays 200 throughout a drain — the
// process is healthy, it just wants no new work.
func (s *Server) handleReadyz(w http.ResponseWriter, r *http.Request) {
	if !s.ready.Load() {
		w.Header().Set("Retry-After", "1")
		s.writeJSON(w, http.StatusServiceUnavailable, map[string]bool{"ready": false})
		return
	}
	s.writeJSON(w, http.StatusOK, map[string]bool{"ready": true})
}
