package server

import (
	"encoding/json"
	"errors"
	"fmt"
	"net/http"

	"guardedrules/internal/core"
	"guardedrules/internal/kb"
	"guardedrules/internal/kbcache"
	"guardedrules/internal/par"
	"guardedrules/internal/parser"
)

// subscription is one live SSE stream over a maintained query. The
// owning dbEntry's mutex is the only writer coordination: batches send
// events (and close ch when dropping the subscriber) while holding it,
// and the streaming goroutine unregisters under it, so a send can never
// race a close.
//
// errCh is the reserved lane for the terminal error frame: ch may be
// full at drop time (a slow consumer is dropped precisely because it
// is), so a drop's cause rides a separate 1-slot channel that the
// stream goroutine flushes after ch closes. That is what makes the
// documented contract — dropped subscribers see an error frame, never a
// silent close — hold unconditionally.
type subscription struct {
	mq    *kbcache.MaintainedQuery
	ch    chan subEvent
	errCh chan subEvent
}

// subEvent is one pre-marshaled SSE frame.
type subEvent struct {
	event string
	data  []byte
}

type factsRequest struct {
	// Add and Retract are fact lists in theory syntax ("E(a,b). B(c).");
	// retractions apply before additions, so a retract and an add of the
	// same fact in one batch leave it present.
	Add     string `json:"add,omitempty"`
	Retract string `json:"retract,omitempty"`

	// Chaos levers (rejected unless Config.Chaos): the injected budget
	// governs subscription maintenance, so a failing subscriber is
	// dropped with an error event while the batch still commits.
	FailAt  int64 `json:"fail_at,omitempty"`
	PanicAt int64 `json:"panic_at,omitempty"`
}

func (q factsRequest) wantsChaos() bool { return q.FailAt > 0 || q.PanicAt > 0 }

type factsResponse struct {
	Version     uint64 `json:"version"`
	Added       int    `json:"added"`
	Retracted   int    `json:"retracted"`
	Facts       int    `json:"facts"`
	Subscribers int    `json:"subscribers"`
}

// handleFacts applies one mutation batch to a mutable DB: clone the
// current version in id-space, retract then add, fold the batch into
// every live subscription, and atomically publish the new version.
// In-flight queries keep the snapshot they started on; queries admitted
// after the swap see the whole batch or none of it.
func (s *Server) handleFacts(w http.ResponseWriter, r *http.Request) {
	var req factsRequest
	if !s.decodeBody(w, r, &req) {
		return
	}
	if req.wantsChaos() && !s.cfg.Chaos {
		s.writeError(w, http.StatusBadRequest,
			errors.New("fault-injection fields require a server started with chaos enabled"))
		return
	}
	adds, err := parser.ParseFacts(req.Add)
	if err != nil {
		s.writeError(w, http.StatusBadRequest, fmt.Errorf("add: %w", err))
		return
	}
	dels, err := parser.ParseFacts(req.Retract)
	if err != nil {
		s.writeError(w, http.StatusBadRequest, fmt.Errorf("retract: %w", err))
		return
	}
	if len(adds) == 0 && len(dels) == 0 {
		s.writeError(w, http.StatusBadRequest, errors.New("empty batch: set \"add\" and/or \"retract\""))
		return
	}
	s.mu.Lock()
	ent, ok := s.dbs.Get(r.PathValue("id"))
	s.mu.Unlock()
	if !ok {
		s.writeError(w, http.StatusNotFound, fmt.Errorf("unknown db id %q (evicted or never loaded)", r.PathValue("id")))
		return
	}
	// A batch replays incremental maintenance for every subscriber —
	// combined-complexity work, through the narrow gate.
	release, ok := s.admit(w, r, s.heavy, "heavy")
	if !ok {
		return
	}
	defer release()

	opts := kbcache.QueryOptions{Workers: s.cfg.Workers, Budget: s.requestBudget(r)}
	opts.Budget.FailAtCheckpoint = req.FailAt
	opts.Budget.PanicAtCheckpoint = req.PanicAt

	ent.mu.Lock()
	defer ent.mu.Unlock()
	cur := ent.cur.Load()
	var next *dbVersion
	var added, retracted int
	if ent.seg != nil {
		// Durable path: apply the batch to the segment store (which
		// journals each op) and commit BEFORE publishing — an
		// acknowledged batch is on disk, and a crash at any point loses
		// at most a batch whose response the client never saw. Readers
		// get an immutable clone of the committed state; the store's own
		// mirror never escapes this lock.
		for _, f := range dels {
			if ent.seg.Retract(f) {
				retracted++
			}
		}
		for _, f := range adds {
			if ent.seg.Add(f) {
				added++
			}
		}
		ver, err := ent.seg.Commit()
		if err != nil {
			// The store latches its first write error and refuses further
			// writes, so the in-memory mirror cannot silently drift from
			// disk: this and every later batch fail until the DB is
			// reopened. Nothing was published; readers keep the last
			// committed version.
			s.writeError(w, http.StatusInternalServerError,
				fmt.Errorf("durable commit failed, batch not applied: %w", err))
			return
		}
		next = &dbVersion{db: ent.seg.Clone(), version: ver, facts: cur.facts + added - retracted}
	} else {
		work := cur.db.Clone()
		for _, f := range dels {
			if work.Retract(f) {
				retracted++
			}
		}
		for _, f := range adds {
			if work.Add(f) {
				added++
			}
		}
		next = &dbVersion{db: work, version: cur.version + 1, facts: cur.facts + added - retracted}
	}
	// Commit under s.mu with a membership re-check: the LRU may have
	// evicted this entry between the handler's lookup and here, and a
	// batch committed to an orphaned entry would return 200 while the
	// write is silently lost. Eviction also runs under s.mu, so it lands
	// strictly before this check (→ 409, nothing written) or strictly
	// after the version swap (→ the write happened, then the whole DB was
	// evicted and its subscribers were dropped with an error frame).
	// Lock order is ent.mu → s.mu everywhere; eviction teardown takes
	// victim.mu only after releasing s.mu.
	s.mu.Lock()
	if live, ok := s.dbs.Get(ent.id); !ok || live != ent {
		// Gone, or evicted and re-loaded as a fresh entry: either way this
		// handle is an orphan and publishing to it would lie. On a durable
		// entry the journal commit above already happened — that is
		// harmless-to-good: the batch is on disk and will be served when
		// the DB is reopened, it just is not being served now.
		s.mu.Unlock()
		msg := "db id %q was evicted while the batch was being prepared; nothing was written"
		if ent.seg != nil {
			msg = "db id %q was evicted while the batch was being prepared; the batch was durably journaled and will be visible when the db is reopened, but is not being served"
		}
		s.writeError(w, http.StatusConflict, fmt.Errorf(msg, ent.id))
		return
	}
	ent.cur.Store(next)
	s.mu.Unlock()
	s.factBatches.Add(1)
	s.factsAdded.Add(int64(added))
	s.factsRetracted.Add(int64(retracted))

	// Fold the batch into every subscription while still holding the
	// entry lock, so subscribers see batches in commit order. A failing
	// subscriber (budget, contained engine panic) is dropped with an
	// error event; the committed batch is unaffected.
	for sub := range ent.subs {
		d, err := sub.mq.Apply(adds, dels, opts)
		if err != nil {
			var pe *par.PanicError
			if errors.As(err, &pe) {
				s.enginePanics.Add(1)
			}
			s.dropSubLocked(ent, sub, fmt.Errorf("maintenance failed at version %d: %w", next.version, err))
			continue
		}
		ev, mErr := marshalEvent("delta", deltaEvent{
			Version: next.version,
			Added:   tupleRows(d.Added),
			Removed: tupleRows(d.Removed),
		})
		if mErr != nil {
			s.dropSubLocked(ent, sub, mErr)
			continue
		}
		select {
		case sub.ch <- ev:
			s.subsEvents.Add(1)
		default:
			// Slow consumer: its buffer is full, so its answer stream
			// would silently skip a delta — drop it instead of lying. The
			// cause rides the reserved errCh slot, so the client still
			// gets a terminal error frame after draining the buffer.
			s.dropSubLocked(ent, sub,
				fmt.Errorf("slow consumer: delta buffer full at version %d; stream incomplete", next.version))
		}
	}
	s.writeJSON(w, http.StatusOK, factsResponse{
		Version:     next.version,
		Added:       added,
		Retracted:   retracted,
		Facts:       next.facts,
		Subscribers: len(ent.subs),
	})
}

// dropSubLocked removes a subscription (caller holds ent.mu). The cause
// goes into the subscription's reserved 1-slot error channel — never the
// delta channel, which may be full — and closing ch tells the stream
// goroutine to drain remaining deltas, emit the error frame, and end.
func (s *Server) dropSubLocked(ent *dbEntry, sub *subscription, cause error) {
	delete(ent.subs, sub)
	s.subsDropped.Add(1)
	if cause != nil {
		if ev, err := marshalEvent("error", errorResponse{Error: cause.Error()}); err == nil {
			select {
			case sub.errCh <- ev:
			default: // a frame is already waiting; first cause wins
			}
		}
	}
	close(sub.ch)
}

type subscribeRequest struct {
	TheoryID string `json:"theory_id"`
	// CQ is a conjunctive query written as a rule, e.g. "T(X,Y) -> Ans(X,Y).".
	CQ string `json:"cq"`
}

// snapshotEvent is the first SSE frame of a stream: the subscribed
// query's exact answers at the version the subscription registered on.
type snapshotEvent struct {
	Version uint64     `json:"version"`
	Answers [][]string `json:"answers"`
	PlanKey string     `json:"plan_key"`
}

// deltaEvent is one committed batch's net answer change.
type deltaEvent struct {
	Version uint64     `json:"version"`
	Added   [][]string `json:"added"`
	Removed [][]string `json:"removed"`
}

// handleSubscribe registers a live conjunctive query over a mutable DB
// and streams it as SSE: one "snapshot" event with the current exact
// answers, then one "delta" event per committed mutation batch. The
// query reuses the per-shape plan cache; a CQ whose cached plan falls
// back to a per-query bounded chase cannot be maintained incrementally
// and is rejected with 422 and a typed error. Registration (initial
// fixpoint) runs under heavy admission; the slot is released before
// streaming. Streams end on client disconnect, slow consumption, a
// failed maintenance batch, or server drain.
func (s *Server) handleSubscribe(w http.ResponseWriter, r *http.Request) {
	var req subscribeRequest
	if !s.decodeBody(w, r, &req) {
		return
	}
	ckb, ok := s.store.Get(req.TheoryID)
	if !ok {
		s.writeError(w, http.StatusNotFound, fmt.Errorf("unknown theory_id %q (evicted or never registered)", req.TheoryID))
		return
	}
	s.mu.Lock()
	ent, ok := s.dbs.Get(r.PathValue("id"))
	s.mu.Unlock()
	if !ok {
		s.writeError(w, http.StatusNotFound, fmt.Errorf("unknown db id %q (evicted or never loaded)", r.PathValue("id")))
		return
	}
	q, err := kb.ParseCQ(req.CQ)
	if err != nil {
		s.writeError(w, http.StatusBadRequest, err)
		return
	}
	flusher, ok := w.(http.Flusher)
	if !ok {
		s.writeError(w, http.StatusInternalServerError, errors.New("streaming unsupported by connection"))
		return
	}
	if n := s.subscriptions.Add(1); n > int64(s.cfg.maxSubs()) {
		s.subscriptions.Add(-1)
		w.Header().Set("Retry-After", "1")
		s.writeError(w, http.StatusTooManyRequests,
			fmt.Errorf("subscription limit reached (%d)", s.cfg.maxSubs()))
		return
	}
	defer s.subscriptions.Add(-1)

	// Registration pays the initial fixpoint — combined-complexity work.
	release, ok := s.admit(w, r, s.heavy, "heavy")
	if !ok {
		return
	}
	opts := kbcache.QueryOptions{Workers: s.cfg.Workers, Budget: s.requestBudget(r)}

	// Register under the entry lock: the initial evaluation and the
	// registry insert are atomic against batches, so the snapshot plus
	// the delta stream misses nothing and duplicates nothing.
	ent.mu.Lock()
	cur := ent.cur.Load()
	mq, err := ckb.MaintainCQ(r.Context(), q, cur.db, opts)
	if err != nil {
		ent.mu.Unlock()
		release()
		if errors.As(err, new(*par.PanicError)) {
			s.enginePanics.Add(1)
		}
		if errors.Is(err, kbcache.ErrNotMaintainable) {
			s.writeJSON(w, http.StatusUnprocessableEntity,
				errorResponse{Error: err.Error(), Kind: "not_maintainable"})
			return
		}
		s.writeError(w, http.StatusUnprocessableEntity, err)
		return
	}
	// Register under s.mu with a membership re-check, mirroring the
	// commit path in handleFacts: if the LRU evicted this entry after the
	// handler's lookup, registering here would create a stream that never
	// receives another batch. Eviction is serialized by s.mu, so it lands
	// before this check (→ 409, no registration) or after it (→ the
	// eviction teardown finds the subscription and drops it with an
	// error frame).
	s.mu.Lock()
	if live, ok := s.dbs.Get(r.PathValue("id")); !ok || live != ent {
		s.mu.Unlock()
		ent.mu.Unlock()
		release()
		s.writeError(w, http.StatusConflict,
			fmt.Errorf("db id %q was evicted during subscription setup", r.PathValue("id")))
		return
	}
	sub := &subscription{mq: mq, ch: make(chan subEvent, 32), errCh: make(chan subEvent, 1)}
	ent.subs[sub] = struct{}{}
	s.mu.Unlock()
	snap := snapshotEvent{Version: cur.version, Answers: termRows(mq.Answers()), PlanKey: mq.PlanKey()}
	ent.mu.Unlock()
	release()

	defer func() {
		// Unregister unless a batch already dropped us (which closed ch).
		ent.mu.Lock()
		if _, live := ent.subs[sub]; live {
			delete(ent.subs, sub)
		}
		ent.mu.Unlock()
	}()

	w.Header().Set("Content-Type", "text/event-stream")
	w.Header().Set("Cache-Control", "no-cache")
	w.WriteHeader(http.StatusOK)
	first, err := marshalEvent("snapshot", snap)
	if err != nil {
		s.encodeErrors.Add(1)
		return
	}
	if !writeSSE(w, flusher, first) {
		return
	}
	for {
		select {
		case ev, ok := <-sub.ch:
			if !ok {
				// Dropped by a mutation batch or an eviction. The cause is
				// waiting on the reserved error slot: emit it so the client
				// can tell a drop (incomplete stream) from a graceful close.
				select {
				case ev := <-sub.errCh:
					writeSSE(w, flusher, ev)
				default:
				}
				return
			}
			if !writeSSE(w, flusher, ev) {
				return
			}
		case <-r.Context().Done():
			return
		case <-s.draining:
			return
		}
	}
}

// marshalEvent renders one SSE frame.
func marshalEvent(event string, v any) (subEvent, error) {
	data, err := json.Marshal(v)
	if err != nil {
		return subEvent{}, err
	}
	return subEvent{event: event, data: data}, nil
}

// writeSSE writes one frame and flushes; false means the client is gone.
func writeSSE(w http.ResponseWriter, f http.Flusher, ev subEvent) bool {
	if _, err := fmt.Fprintf(w, "event: %s\ndata: %s\n\n", ev.event, ev.data); err != nil {
		return false
	}
	f.Flush()
	return true
}

// termRows renders answer tuples as string rows (JSON-friendly).
func termRows(tuples [][]core.Term) [][]string {
	out := make([][]string, 0, len(tuples))
	for _, tuple := range tuples {
		row := make([]string, len(tuple))
		for i, t := range tuple {
			row[i] = t.String()
		}
		out = append(out, row)
	}
	return out
}

// tupleRows is termRows with nil kept non-nil for stable JSON shape.
func tupleRows(tuples [][]core.Term) [][]string { return termRows(tuples) }
