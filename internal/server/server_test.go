package server

import (
	"bytes"
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"sync"
	"testing"
	"time"
)

const e5Source = `
	A(X) -> exists Y. R(X,Y).
	R(X,Y) -> B(X).
	E(X,Y) -> T(X,Y).
	T(X,Y), T(Y,Z) -> T(X,Z).
	T(X,Y), B(X), B(Y) -> Linked(X,Y).
`

const e5Facts = `
	E(v0,v1). E(v1,v2). E(v2,v3).
	A(v0). A(v1). A(v2). A(v3).
`

func newTestServer(t *testing.T) *httptest.Server {
	t.Helper()
	srv := New(Config{DefaultTimeout: 10 * time.Second})
	ts := httptest.NewServer(srv.Handler())
	t.Cleanup(ts.Close)
	return ts
}

func post(t *testing.T, url string, body any, out any) int {
	t.Helper()
	buf, err := json.Marshal(body)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.Post(url, "application/json", bytes.NewReader(buf))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if out != nil {
		if err := json.NewDecoder(resp.Body).Decode(out); err != nil {
			t.Fatalf("decoding %s response: %v", url, err)
		}
	}
	return resp.StatusCode
}

func get(t *testing.T, url string, out any) int {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if out != nil {
		if err := json.NewDecoder(resp.Body).Decode(out); err != nil {
			t.Fatalf("decoding %s response: %v", url, err)
		}
	}
	return resp.StatusCode
}

func registerFixtures(t *testing.T, base string) (theoryID, dbID string) {
	t.Helper()
	var th theoryResponse
	if code := post(t, base+"/v1/theories", theoryRequest{Source: e5Source}, &th); code != 200 {
		t.Fatalf("theories: status %d", code)
	}
	var db dbResponse
	if code := post(t, base+"/v1/dbs", dbRequest{Facts: e5Facts}, &db); code != 200 {
		t.Fatalf("dbs: status %d", code)
	}
	return th.ID, db.ID
}

// The full round trip: register, load, query twice; the repeat query is
// a plan hit with identical answers and moves no compile-side counters.
func TestServerRoundTripAndPlanReuse(t *testing.T) {
	ts := newTestServer(t)

	var th theoryResponse
	if code := post(t, ts.URL+"/v1/theories", theoryRequest{Source: e5Source}, &th); code != 200 {
		t.Fatalf("theories: status %d", code)
	}
	if th.Mode != "translated" || th.Cached {
		t.Fatalf("mode=%q cached=%v, want fresh translated artifact", th.Mode, th.Cached)
	}
	if len(th.Fragments) == 0 || len(th.Chain) == 0 {
		t.Fatalf("response must report fragments and chain: %+v", th)
	}

	// Re-registering is a cache hit.
	var th2 theoryResponse
	post(t, ts.URL+"/v1/theories", theoryRequest{Source: e5Source}, &th2)
	if !th2.Cached || th2.ID != th.ID {
		t.Fatalf("re-registration must be cached under the same id")
	}

	var db dbResponse
	if code := post(t, ts.URL+"/v1/dbs", dbRequest{Facts: e5Facts}, &db); code != 200 {
		t.Fatalf("dbs: status %d", code)
	}
	if db.Facts == 0 {
		t.Fatal("fact count missing")
	}

	q := queryRequest{TheoryID: th.ID, DBID: db.ID, CQ: "Linked(X,Y) -> Ans(X,Y)."}
	var r1, r2 queryResponse
	if code := post(t, ts.URL+"/v1/query", q, &r1); code != 200 {
		t.Fatalf("query: status %d", code)
	}
	if !r1.Exact || r1.PlanHit || r1.Count == 0 {
		t.Fatalf("first query: exact=%v hit=%v count=%d", r1.Exact, r1.PlanHit, r1.Count)
	}

	var before map[string]int64
	get(t, ts.URL+"/metrics", &before)

	if code := post(t, ts.URL+"/v1/query", q, &r2); code != 200 {
		t.Fatalf("repeat query: status %d", code)
	}
	if !r2.PlanHit {
		t.Fatal("repeat query must hit the plan cache")
	}
	if fmt.Sprint(r2.Answers) != fmt.Sprint(r1.Answers) {
		t.Fatal("repeat query changed the answers")
	}

	var after map[string]int64
	get(t, ts.URL+"/metrics", &after)
	for _, k := range []string{"plan_misses", "translations", "compile_misses"} {
		if before[k] != after[k] {
			t.Fatalf("%s moved %d -> %d across a repeat query: compile-side work re-ran", k, before[k], after[k])
		}
	}
	if after["plan_hits"] <= before["plan_hits"] {
		t.Fatal("repeat query must increment plan_hits")
	}
}

// Atomic queries work over the wire and share plans per adornment.
func TestServerAtomQuery(t *testing.T) {
	ts := newTestServer(t)
	thID, dbID := registerFixtures(t, ts.URL)
	var r1, r2 queryResponse
	post(t, ts.URL+"/v1/query", queryRequest{TheoryID: thID, DBID: dbID, Atom: "T(v0,Y)"}, &r1)
	post(t, ts.URL+"/v1/query", queryRequest{TheoryID: thID, DBID: dbID, Atom: "T(v1,Y)"}, &r2)
	if r1.Count != 3 || r2.Count != 2 {
		t.Fatalf("T(v0,Y)=%d answers, T(v1,Y)=%d; want 3 and 2", r1.Count, r2.Count)
	}
	if !r2.PlanHit || r2.PlanKey != r1.PlanKey {
		t.Fatalf("same adornment must share the plan: %+v vs %+v", r1.PlanKey, r2.PlanKey)
	}
}

// Error mapping: bad JSON and bad queries are 400, unknown ids 404,
// and both-or-neither query forms are rejected.
func TestServerErrorStatuses(t *testing.T) {
	ts := newTestServer(t)
	thID, dbID := registerFixtures(t, ts.URL)

	resp, err := http.Post(ts.URL+"/v1/theories", "application/json", bytes.NewReader([]byte("{")))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != 400 {
		t.Fatalf("bad JSON: status %d", resp.StatusCode)
	}
	if code := post(t, ts.URL+"/v1/theories", theoryRequest{Source: "A(X) -> ."}, nil); code != 400 {
		t.Fatalf("parse error: status %d", code)
	}
	if code := post(t, ts.URL+"/v1/query", queryRequest{TheoryID: "nope", DBID: dbID, CQ: "B(X) -> Ans(X)."}, nil); code != 404 {
		t.Fatalf("unknown theory: status %d", code)
	}
	if code := post(t, ts.URL+"/v1/query", queryRequest{TheoryID: thID, DBID: "nope", CQ: "B(X) -> Ans(X)."}, nil); code != 404 {
		t.Fatalf("unknown db: status %d", code)
	}
	if code := post(t, ts.URL+"/v1/query", queryRequest{TheoryID: thID, DBID: dbID}, nil); code != 400 {
		t.Fatalf("neither cq nor atom: status %d", code)
	}
	if code := post(t, ts.URL+"/v1/query", queryRequest{TheoryID: thID, DBID: dbID, CQ: "x", Atom: "y"}, nil); code != 400 {
		t.Fatalf("both cq and atom: status %d", code)
	}
	if code := post(t, ts.URL+"/v1/query", queryRequest{TheoryID: thID, DBID: dbID, CQ: "not a query"}, nil); code != 400 {
		t.Fatalf("malformed cq: status %d", code)
	}
	var hz map[string]bool
	if code := get(t, ts.URL+"/healthz", &hz); code != 200 || !hz["ok"] {
		t.Fatalf("healthz: %d %v", code, hz)
	}
	var m map[string]int64
	get(t, ts.URL+"/metrics", &m)
	if m["http_query_errors"] == 0 || m["http_query_requests"] == 0 {
		t.Fatalf("endpoint counters missing: %v", m)
	}
}

// Concurrent clients sharing one compiled KB get identical answers.
func TestServerConcurrentQueries(t *testing.T) {
	ts := newTestServer(t)
	thID, dbID := registerFixtures(t, ts.URL)
	q := queryRequest{TheoryID: thID, DBID: dbID, CQ: "Linked(X,Y) -> Ans(X,Y)."}
	var baseline queryResponse
	post(t, ts.URL+"/v1/query", q, &baseline)
	want := fmt.Sprint(baseline.Answers)

	const clients = 8
	var wg sync.WaitGroup
	for c := 0; c < clients; c++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 4; i++ {
				var r queryResponse
				if code := post(t, ts.URL+"/v1/query", q, &r); code != 200 {
					t.Errorf("status %d", code)
					return
				}
				if fmt.Sprint(r.Answers) != want {
					t.Error("concurrent query diverged")
					return
				}
			}
		}()
	}
	wg.Wait()
}

// A tight server-side fact ceiling yields a 200 with sound truncated
// answers, not an error.
func TestServerBudgetTruncation(t *testing.T) {
	srv := New(Config{MaxFacts: 30})
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()
	var th theoryResponse
	post(t, ts.URL+"/v1/theories", theoryRequest{Source: "E(X,Y) -> T(X,Y). T(X,Y), T(Y,Z) -> T(X,Z)."}, &th)
	facts := ""
	for i := 0; i < 25; i++ {
		facts += fmt.Sprintf("E(v%d,v%d). ", i, i+1)
	}
	var db dbResponse
	post(t, ts.URL+"/v1/dbs", dbRequest{Facts: facts}, &db)
	var r queryResponse
	if code := post(t, ts.URL+"/v1/query", queryRequest{TheoryID: th.ID, DBID: db.ID, CQ: "T(X,Y) -> Ans(X,Y)."}, &r); code != 200 {
		t.Fatalf("truncated query: status %d", code)
	}
	if !r.Truncated || r.Exact || r.Reason == "" {
		t.Fatalf("want truncated inexact answers with a reason, got %+v", r)
	}
	var m map[string]int64
	get(t, ts.URL+"/metrics", &m)
	if m["budget_exhausted"] == 0 {
		t.Fatal("budget exhaustion must surface in /metrics")
	}
}

// Registering a certified-terminating theory reports its class and
// machine-checkable certificate, serves exact answers with no explicit
// budget, and moves the termination metrics.
func TestServerTerminationReporting(t *testing.T) {
	// Production default config: the defensive fact ceiling must NOT
	// disqualify certified serving (the certificate replaces it).
	srv := New(Config{DefaultTimeout: 10 * time.Second, MaxFacts: 1_000_000})
	ts := httptest.NewServer(srv.Handler())
	t.Cleanup(ts.Close)
	var th theoryResponse
	code := post(t, ts.URL+"/v1/theories", theoryRequest{Source: `
		P(X) -> exists Y,Z. R(X,Y,Z).
		R(X,Y,Z) -> S(Y,Z).
		S(Y,Z), S(Z,W) -> S(Y,W).
	`}, &th)
	if code != 200 {
		t.Fatalf("theories: status %d", code)
	}
	if th.Mode != "certified" {
		t.Fatalf("mode = %q, want certified", th.Mode)
	}
	if th.Termination == nil || th.Termination.Class != "wa" {
		t.Fatalf("termination report missing or wrong: %+v", th.Termination)
	}
	if th.Termination.Certificate == nil || len(th.Termination.Certificate.Ranks) == 0 {
		t.Fatalf("wa registration must ship the rank certificate: %+v", th.Termination)
	}
	if th.Termination.Bound == nil {
		t.Fatal("wa registration must ship the fact-bound coefficients")
	}

	var db dbResponse
	post(t, ts.URL+"/v1/dbs", dbRequest{Facts: "P(a). P(b). R(a,u,v)."}, &db)
	var r queryResponse
	if code := post(t, ts.URL+"/v1/query", queryRequest{TheoryID: th.ID, DBID: db.ID, CQ: "S(Y,Z) -> Ans(Y,Z)."}, &r); code != 200 {
		t.Fatalf("query: status %d", code)
	}
	if !r.Exact || r.Count == 0 {
		t.Fatalf("certified query must be exact and nonempty: %+v", r)
	}

	var m map[string]int64
	get(t, ts.URL+"/metrics", &m)
	if m["termination_class_wa"] == 0 {
		t.Fatal("termination_class_wa must surface in /metrics")
	}
	if m["certified_runs"] == 0 {
		t.Fatal("certified_runs must surface in /metrics")
	}
}
