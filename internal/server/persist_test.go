package server

import (
	"fmt"
	"net/http/httptest"
	"os"
	"path/filepath"
	"reflect"
	"sort"
	"strings"
	"testing"
	"time"
)

// newPersistentServer boots a server over dir without starting to
// serve; the caller owns RestoreData/CloseData so tests can simulate
// restarts.
func newPersistentServer(t *testing.T, dir string, cfg Config) (*Server, *httptest.Server) {
	t.Helper()
	cfg.DataDir = dir
	if cfg.DefaultTimeout == 0 {
		cfg.DefaultTimeout = 10 * time.Second
	}
	srv := New(cfg)
	if err := srv.RestoreData(); err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(srv.Handler())
	t.Cleanup(ts.Close)
	return srv, ts
}

func queryAnswers(t *testing.T, base, theoryID, dbID, cq string) ([][]string, uint64) {
	t.Helper()
	var qr queryResponse
	if code := post(t, base+"/v1/query", queryRequest{TheoryID: theoryID, DBID: dbID, CQ: cq}, &qr); code != 200 {
		t.Fatalf("query: status %d", code)
	}
	sort.Slice(qr.Answers, func(i, j int) bool {
		return fmt.Sprint(qr.Answers[i]) < fmt.Sprint(qr.Answers[j])
	})
	return qr.Answers, qr.DBVersion
}

// A server restart over the same data dir resumes every DB at its last
// committed version and every theory from its persisted artifact — no
// re-registration, no re-saturation, identical answers.
func TestServerRestartContinuity(t *testing.T) {
	dir := t.TempDir()
	const cq = "Linked(X,Y) -> Ans(X,Y)."

	srv1, ts1 := newPersistentServer(t, dir, Config{})
	theoryID, dbID := registerFixtures(t, ts1.URL)

	// Mutate twice so the durable version history is nontrivial.
	var fr factsResponse
	if code := post(t, ts1.URL+"/v1/dbs/"+dbID+"/facts",
		factsRequest{Add: "E(v3,v4). A(v4)."}, &fr); code != 200 {
		t.Fatalf("facts: status %d", code)
	}
	if code := post(t, ts1.URL+"/v1/dbs/"+dbID+"/facts",
		factsRequest{Retract: "E(v0,v1)."}, &fr); code != 200 {
		t.Fatalf("facts: status %d", code)
	}
	if fr.Version != 3 {
		t.Fatalf("version after two batches = %d, want 3", fr.Version)
	}
	wantAns, wantVer := queryAnswers(t, ts1.URL, theoryID, dbID, cq)
	if wantVer != 3 {
		t.Fatalf("served version = %d, want 3", wantVer)
	}

	var info dbInfoResponse
	if code := get(t, ts1.URL+"/v1/dbs/"+dbID, &info); code != 200 {
		t.Fatalf("db info: status %d", code)
	}
	if !info.Persistent || info.Version != 3 {
		t.Fatalf("db info = %+v, want persistent at version 3", info)
	}
	var thInfo theoryInfoResponse
	if code := get(t, ts1.URL+"/v1/theories/"+theoryID, &thInfo); code != 200 {
		t.Fatalf("theory info: status %d", code)
	}
	if !thInfo.Persistent || thInfo.Mode != "translated" {
		t.Fatalf("theory info = %+v, want persistent translated", thInfo)
	}

	// "Restart": flush and close, then boot a fresh server on the dir.
	if err := srv1.CloseData(); err != nil {
		t.Fatal(err)
	}
	ts1.Close()

	srv2, ts2 := newPersistentServer(t, dir, Config{})
	if n := srv2.Store().Metrics().ArtifactLoads.Load(); n != 1 {
		t.Fatalf("artifact loads on boot = %d, want 1", n)
	}
	// The boot itself must not re-run the saturation — that is what the
	// artifact is for. (The first CQ below still builds its per-shape
	// dat(Σ∪q) plan, which is a translation, so assert before querying.)
	if n := srv2.Store().Metrics().Translations.Load(); n != 0 {
		t.Fatalf("boot ran %d translations; artifacts should have skipped them all", n)
	}
	gotAns, gotVer := queryAnswers(t, ts2.URL, theoryID, dbID, cq)
	if gotVer != wantVer {
		t.Fatalf("db_version after restart = %d, want %d (continuity)", gotVer, wantVer)
	}
	if !reflect.DeepEqual(gotAns, wantAns) {
		t.Fatalf("answers diverged across restart:\n  before %v\n  after  %v", wantAns, gotAns)
	}

	// The next batch continues the version sequence.
	if code := post(t, ts2.URL+"/v1/dbs/"+dbID+"/facts",
		factsRequest{Add: "E(v4,v5). A(v5)."}, &fr); code != 200 {
		t.Fatalf("facts after restart: status %d", code)
	}
	if fr.Version != wantVer+1 {
		t.Fatalf("version after restart batch = %d, want %d", fr.Version, wantVer+1)
	}

	// Re-posting the original source must not reset the mutated DB.
	var db dbResponse
	if code := post(t, ts2.URL+"/v1/dbs", dbRequest{Facts: e5Facts}, &db); code != 200 {
		t.Fatalf("reload: status %d", code)
	}
	if db.Version != wantVer+1 {
		t.Fatalf("reload reset the DB to version %d, want %d", db.Version, wantVer+1)
	}

	// Re-registering the theory hits the restored artifact (no compile).
	var th theoryResponse
	if code := post(t, ts2.URL+"/v1/theories", theoryRequest{Source: e5Source}, &th); code != 200 {
		t.Fatalf("re-register: status %d", code)
	}
	if !th.Cached {
		t.Fatal("re-registering a restored theory must be a cache hit")
	}
}

// An unclean stop (no CloseData — the process just dies) loses nothing
// committed: acknowledged batches are journaled before their response.
func TestServerUncleanStopKeepsCommittedBatches(t *testing.T) {
	dir := t.TempDir()
	const cq = "T(X,Y) -> Ans(X,Y)."

	_, ts1 := newPersistentServer(t, dir, Config{})
	theoryID, dbID := registerFixtures(t, ts1.URL)
	var fr factsResponse
	if code := post(t, ts1.URL+"/v1/dbs/"+dbID+"/facts",
		factsRequest{Add: "E(v3,v4)."}, &fr); code != 200 {
		t.Fatalf("facts: status %d", code)
	}
	wantAns, wantVer := queryAnswers(t, ts1.URL, theoryID, dbID, cq)
	ts1.Close() // no CloseData: segment files are left as-is, like a kill

	_, ts2 := newPersistentServer(t, dir, Config{})
	gotAns, gotVer := queryAnswers(t, ts2.URL, theoryID, dbID, cq)
	if gotVer != wantVer {
		t.Fatalf("version after unclean stop = %d, want %d", gotVer, wantVer)
	}
	if !reflect.DeepEqual(gotAns, wantAns) {
		t.Fatalf("answers diverged after unclean stop:\n  before %v\n  after  %v", wantAns, gotAns)
	}
}

// dataDirFDs counts this process's descriptors open on files under dir.
func dataDirFDs(t *testing.T, dir string) int {
	t.Helper()
	fds, err := os.ReadDir("/proc/self/fd")
	if err != nil {
		t.Skipf("no /proc/self/fd on this platform: %v", err)
	}
	abs, err := filepath.Abs(dir)
	if err != nil {
		t.Fatal(err)
	}
	n := 0
	for _, fd := range fds {
		target, err := os.Readlink(filepath.Join("/proc/self/fd", fd.Name()))
		if err == nil && strings.HasPrefix(target, abs+string(filepath.Separator)) {
			n++
		}
	}
	return n
}

// LRU eviction of a persistent DB closes its segment-file handles: the
// FD count stays bounded by MaxDBs no matter how many DBs cycle
// through, and an evicted DB reloads from disk with its mutations.
func TestServerEvictionClosesSegmentFiles(t *testing.T) {
	dir := t.TempDir()
	_, ts := newPersistentServer(t, dir, Config{MaxDBs: 2})

	ids := make([]string, 0, 6)
	for i := 0; i < 6; i++ {
		var db dbResponse
		facts := fmt.Sprintf("E(a%d,b%d).", i, i)
		if code := post(t, ts.URL+"/v1/dbs", dbRequest{Facts: facts}, &db); code != 200 {
			t.Fatalf("db %d: status %d", i, code)
		}
		ids = append(ids, db.ID)
		if i == 0 {
			// Mutate the first DB so its reload below must come from disk.
			var fr factsResponse
			if code := post(t, ts.URL+"/v1/dbs/"+db.ID+"/facts",
				factsRequest{Add: "E(x,y)."}, &fr); code != 200 {
				t.Fatalf("facts: status %d", code)
			}
		}
	}
	// Each open segment store holds exactly one FD (its log); 2 live DBs
	// means 2 data-dir FDs. Anything higher is an eviction leak.
	if n, max := dataDirFDs(t, dir), 2; n > max {
		t.Fatalf("%d data-dir FDs open with MaxDBs=2; evictions leak segment handles", n)
	}

	// The first DB was evicted; reloading serves its durable mutated
	// state (version 2), not its initial facts.
	var db dbResponse
	if code := post(t, ts.URL+"/v1/dbs", dbRequest{Facts: "E(a0,b0)."}, &db); code != 200 {
		t.Fatalf("reload: status %d", code)
	}
	if db.ID != ids[0] || db.Version != 2 || db.Facts != 2 {
		t.Fatalf("evicted DB reloaded as %+v, want version 2 with 2 facts", db)
	}
	if n, max := dataDirFDs(t, dir), 2; n > max {
		t.Fatalf("%d data-dir FDs open after reload; eviction leaked a handle", n)
	}
}
