package server

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"log"
	"os"
	"path/filepath"

	"guardedrules/internal/kbcache"
	"guardedrules/internal/store/segment"
)

// Persistence layout under Config.DataDir:
//
//	<data-dir>/dbs/<id>/        — one segment store per fact DB; the
//	                              directory name is the DB id (a hex
//	                              sha256, always a safe filename)
//	<data-dir>/theories/<id>.json — one kbcache artifact per theory
//
// A fact DB's served version number IS its segment store's commit
// counter, so db_version survives restarts: version 7 before a crash is
// version 7 after reopening, and the next batch is 8 either way.
// Batches commit to the store before the new version is published to
// readers — a crash at any point loses at most the response of a batch
// the client never saw succeed, never a batch that was acknowledged.
//
// Theories persist as compiled-KB artifacts keyed by source hash: the
// saturation product (dat(Σ)) rides along, so reopening a store skips
// the double-exponential translation step entirely.

// dbsDir / theoriesDir locate the two persistence roots.
func (s *Server) dbsDir() string      { return filepath.Join(s.cfg.DataDir, "dbs") }
func (s *Server) theoriesDir() string { return filepath.Join(s.cfg.DataDir, "theories") }

func (s *Server) dbDir(id string) string { return filepath.Join(s.dbsDir(), id) }

func (s *Server) theoryPath(id string) string {
	return filepath.Join(s.theoriesDir(), id+".json")
}

// persistent reports whether this server journals to disk.
func (s *Server) persistent() bool { return s.cfg.DataDir != "" }

// openSeg opens (or creates) the segment store of one DB.
func (s *Server) openSeg(id string) (*segment.Store, error) {
	return segment.Open(s.dbDir(id), segment.Options{Sync: s.cfg.SyncWrites})
}

// RestoreData reopens every persisted fact DB and theory artifact under
// Config.DataDir. Call it once after New and before serving; it is a
// no-op without a data dir. Databases resume at their last committed
// version (db_version continuity); theories recompile from their saved
// artifacts, skipping re-saturation. A corrupt artifact is logged and
// skipped — the theory can simply be re-registered — but a DB that
// fails to open is an error: silently serving without a client's
// durable data would be worse than failing the boot.
func (s *Server) RestoreData() error {
	if !s.persistent() {
		return nil
	}
	for _, dir := range []string{s.dbsDir(), s.theoriesDir()} {
		if err := os.MkdirAll(dir, 0o755); err != nil {
			return fmt.Errorf("server: data dir: %w", err)
		}
	}

	arts, err := os.ReadDir(s.theoriesDir())
	if err != nil {
		return fmt.Errorf("server: data dir: %w", err)
	}
	for _, e := range arts {
		if e.IsDir() || filepath.Ext(e.Name()) != ".json" {
			continue
		}
		if err := s.loadTheoryArtifact(filepath.Join(s.theoriesDir(), e.Name())); err != nil {
			log.Printf("server: skipping theory artifact %s: %v", e.Name(), err)
		}
	}

	dbs, err := os.ReadDir(s.dbsDir())
	if err != nil {
		return fmt.Errorf("server: data dir: %w", err)
	}
	for _, e := range dbs {
		if !e.IsDir() {
			continue
		}
		id := e.Name()
		seg, err := s.openSeg(id)
		if err != nil {
			return fmt.Errorf("server: reopen db %q: %w", id, err)
		}
		ent := &dbEntry{id: id, subs: make(map[*subscription]struct{}), seg: seg}
		ent.cur.Store(&dbVersion{db: seg.Clone(), version: seg.Version(), facts: len(seg.UserFacts())})
		var victim *dbEntry
		s.mu.Lock()
		if _, v, evicted := s.dbs.Add(id, ent); evicted {
			s.dbEvictions.Add(1)
			victim = v
		}
		s.mu.Unlock()
		// More persisted DBs than MaxDBs: the oldest fall out of memory
		// immediately, but their files stay — a POST /v1/dbs brings one
		// back. Closing the victim here is what keeps a boot's FD count
		// bounded by MaxDBs rather than by the directory.
		s.teardownEvicted(victim, "MaxDBs exceeded while restoring data dir")
	}
	return nil
}

// CloseData flushes and closes every open segment store. Call it after
// draining: batches in flight while it runs would fail their commits.
func (s *Server) CloseData() error {
	if !s.persistent() {
		return nil
	}
	s.mu.Lock()
	ents := make([]*dbEntry, 0, s.dbs.Len())
	for _, id := range s.dbs.Keys() {
		if ent, ok := s.dbs.Get(id); ok {
			ents = append(ents, ent)
		}
	}
	s.mu.Unlock()
	var firstErr error
	for _, ent := range ents {
		ent.mu.Lock()
		err := ent.closeSegLocked()
		ent.mu.Unlock()
		if err != nil && firstErr == nil {
			firstErr = err
		}
	}
	return firstErr
}

// closeSegLocked closes the entry's segment store (idempotent; caller
// holds ent.mu, which every journal write also holds, so a close can
// never race a batch's writes).
func (e *dbEntry) closeSegLocked() error {
	if e.seg == nil {
		return nil
	}
	err := e.seg.Close()
	if errors.Is(err, segment.ErrClosed) {
		err = nil
	}
	return err
}

// teardownEvicted tears down a DB entry the LRU evicted: every live
// subscriber gets a terminal error frame, and the segment store's file
// handles are closed so eviction never leaks descriptors. Runs outside
// s.mu (writers take ent.mu before s.mu, so nesting the other way would
// deadlock); taking victim.mu serializes against any in-flight batch,
// which therefore finishes its journal writes and commit on a
// still-open store. nil victims are a no-op.
func (s *Server) teardownEvicted(victim *dbEntry, why string) {
	if victim == nil {
		return
	}
	victim.mu.Lock()
	for sub := range victim.subs {
		s.dropSubLocked(victim, sub,
			fmt.Errorf("db %q evicted (%s); stream closed", victim.id, why))
	}
	if err := victim.closeSegLocked(); err != nil {
		log.Printf("server: closing evicted db %q: %v", victim.id, err)
	}
	victim.mu.Unlock()
}

// persistTheory writes a freshly compiled KB's artifact, tmp+rename so
// readers (and a crash) never see a torn file. Persistence failures are
// logged, not surfaced: the registration itself succeeded, and the
// theory merely won't survive a restart.
func (s *Server) persistTheory(ckb *kbcache.CompiledKB) {
	if !s.persistent() {
		return
	}
	a := ckb.Artifact()
	blob, err := json.MarshalIndent(a, "", "  ")
	if err != nil {
		log.Printf("server: persisting theory %.12s…: %v", ckb.ID, err)
		return
	}
	path := s.theoryPath(ckb.ID)
	tmp := path + ".tmp"
	if err := os.WriteFile(tmp, blob, 0o644); err == nil {
		err = os.Rename(tmp, path)
	}
	if err != nil {
		os.Remove(tmp)
		log.Printf("server: persisting theory %.12s…: %v", ckb.ID, err)
	}
}

// loadTheoryArtifact restores one persisted theory into the KB store.
func (s *Server) loadTheoryArtifact(path string) error {
	blob, err := os.ReadFile(path)
	if err != nil {
		return err
	}
	var a kbcache.Artifact
	if err := json.Unmarshal(blob, &a); err != nil {
		return err
	}
	_, _, err = s.store.RegisterArtifact(context.Background(), a)
	return err
}

// theoryPersisted reports whether an artifact file exists for the id.
func (s *Server) theoryPersisted(id string) bool {
	if !s.persistent() {
		return false
	}
	_, err := os.Stat(s.theoryPath(id))
	return err == nil
}
