package server

import (
	"context"
	"sync/atomic"
	"time"
)

// Two-tier admission control. The paper's complexity split is the
// routing rule: work whose cost scales with the theory (combined
// complexity — compile misses, cold-plan builds, chase-per-call
// evaluation) goes through the narrow heavy tier; work whose cost
// scales only with the data (plan-hit evaluation over a compiled
// program, fact parsing) goes through the wide light tier. Each tier
// couples a concurrency limit with a bounded wait queue: a request
// beyond limit+queue is shed immediately with 429 rather than piling
// onto a saturated server, and a queued request that outwaits
// MaxQueueWait (or whose client disconnects) is shed too.

// tier is one admission class: a slot semaphore plus a bounded queue.
type tier struct {
	slots    chan struct{}
	queueCap int64
	maxWait  time.Duration

	waiting  atomic.Int64
	inFlight atomic.Int64
	admitted atomic.Int64
	shed     atomic.Int64
}

func newTier(limit, queue int, maxWait time.Duration) *tier {
	return &tier{
		slots:    make(chan struct{}, limit),
		queueCap: int64(queue),
		maxWait:  maxWait,
	}
}

// acquire claims a slot, waiting in the bounded queue while the tier is
// saturated. On admission it returns the release func; on shedding
// (queue full, wait exhausted, or caller gone) it returns ok=false.
func (t *tier) acquire(ctx context.Context) (release func(), ok bool) {
	select {
	case t.slots <- struct{}{}:
	default:
		if t.waiting.Add(1) > t.queueCap {
			t.waiting.Add(-1)
			t.shed.Add(1)
			return nil, false
		}
		timer := time.NewTimer(t.maxWait)
		defer timer.Stop()
		select {
		case t.slots <- struct{}{}:
			t.waiting.Add(-1)
		case <-timer.C:
			t.waiting.Add(-1)
			t.shed.Add(1)
			return nil, false
		case <-ctx.Done():
			t.waiting.Add(-1)
			t.shed.Add(1)
			return nil, false
		}
	}
	t.admitted.Add(1)
	t.inFlight.Add(1)
	return func() {
		t.inFlight.Add(-1)
		<-t.slots
	}, true
}

// retryAfterSeconds is the Retry-After hint on a shed response: the
// queue-wait ceiling rounded up, i.e. how long a fresh arrival could
// have waited before the server gave up on it.
func (t *tier) retryAfterSeconds() int {
	s := int((t.maxWait + time.Second - 1) / time.Second)
	if s < 1 {
		return 1
	}
	return s
}
