package server

import (
	"bufio"
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"sort"
	"strings"
	"testing"
	"time"

	"guardedrules/internal/kb"
	"guardedrules/internal/kbcache"
)

// sseEvent is one parsed server-sent event.
type sseEvent struct {
	Name string
	Data string
}

// sseStream opens a subscription and feeds parsed events to a channel;
// the channel closes when the server ends the stream.
func sseStream(t *testing.T, url string, body any) (<-chan sseEvent, func()) {
	t.Helper()
	buf, err := json.Marshal(body)
	if err != nil {
		t.Fatal(err)
	}
	req, err := http.NewRequest("POST", url, bytes.NewReader(buf))
	if err != nil {
		t.Fatal(err)
	}
	req.Header.Set("Content-Type", "application/json")
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	if resp.StatusCode != 200 {
		var e errorResponse
		json.NewDecoder(resp.Body).Decode(&e)
		resp.Body.Close()
		t.Fatalf("subscribe: status %d: %+v", resp.StatusCode, e)
	}
	events := make(chan sseEvent, 64)
	go func() {
		defer close(events)
		defer resp.Body.Close()
		sc := bufio.NewScanner(resp.Body)
		var cur sseEvent
		for sc.Scan() {
			line := sc.Text()
			switch {
			case strings.HasPrefix(line, "event: "):
				cur.Name = strings.TrimPrefix(line, "event: ")
			case strings.HasPrefix(line, "data: "):
				cur.Data = strings.TrimPrefix(line, "data: ")
			case line == "" && cur.Name != "":
				events <- cur
				cur = sseEvent{}
			}
		}
	}()
	return events, func() { resp.Body.Close() }
}

func waitEvent(t *testing.T, ch <-chan sseEvent, want string) sseEvent {
	t.Helper()
	select {
	case ev, ok := <-ch:
		if !ok {
			t.Fatalf("stream closed while waiting for %q event", want)
		}
		if ev.Name != want {
			t.Fatalf("event %q (%s), want %q", ev.Name, ev.Data, want)
		}
		return ev
	case <-time.After(10 * time.Second):
		t.Fatalf("timed out waiting for %q event", want)
	}
	return sseEvent{}
}

// A mutation batch bumps the DB version atomically: queries pin a
// snapshot, re-loading the same fact source does not reset a mutated
// DB, and retract-then-add semantics hold within one batch.
func TestFactsBatchVersioning(t *testing.T) {
	ts := newTestServer(t)
	thID, dbID := registerFixtures(t, ts.URL)

	q := queryRequest{TheoryID: thID, DBID: dbID, CQ: "T(X,Y) -> Ans(X,Y)."}
	var before queryResponse
	if code := post(t, ts.URL+"/v1/query", q, &before); code != 200 {
		t.Fatalf("query: status %d", code)
	}
	if before.DBVersion != 1 {
		t.Fatalf("fresh DB version = %d, want 1", before.DBVersion)
	}

	// Extend the path: one new edge closes v3 -> v4 transitively.
	var fr factsResponse
	if code := post(t, ts.URL+"/v1/dbs/"+dbID+"/facts", factsRequest{Add: "E(v3,v4)."}, &fr); code != 200 {
		t.Fatalf("facts: status %d", code)
	}
	if fr.Version != 2 || fr.Added != 1 || fr.Retracted != 0 {
		t.Fatalf("batch response %+v, want version 2, 1 added", fr)
	}
	var after queryResponse
	post(t, ts.URL+"/v1/query", q, &after)
	if after.DBVersion != 2 || after.Count != before.Count+4 {
		t.Fatalf("after insert: version=%d count=%d (before %d); want version 2 and +4 reachability pairs",
			after.DBVersion, after.Count, before.Count)
	}

	// Retract the edge again; the closure shrinks back to the original.
	post(t, ts.URL+"/v1/dbs/"+dbID+"/facts", factsRequest{Retract: "E(v3,v4)."}, &fr)
	if fr.Version != 3 || fr.Retracted != 1 {
		t.Fatalf("retract batch %+v, want version 3, 1 retracted", fr)
	}
	var back queryResponse
	post(t, ts.URL+"/v1/query", q, &back)
	if back.Count != before.Count {
		t.Fatalf("after retract: count=%d, want %d", back.Count, before.Count)
	}

	// A batch retracting and re-adding the same fact leaves it present
	// (retractions apply first) and still commits one version.
	post(t, ts.URL+"/v1/dbs/"+dbID+"/facts", factsRequest{Add: "E(v0,v1).", Retract: "E(v0,v1)."}, &fr)
	if fr.Version != 4 {
		t.Fatalf("cancel batch version = %d, want 4", fr.Version)
	}
	var cancel queryResponse
	post(t, ts.URL+"/v1/query", q, &cancel)
	if cancel.Count != before.Count {
		t.Fatalf("cancel batch changed answers: %d, want %d", cancel.Count, before.Count)
	}

	// Re-loading the original fact source must not reset the mutated DB:
	// the id is content-addressed, the entry keeps its version history.
	var db dbResponse
	post(t, ts.URL+"/v1/dbs", dbRequest{Facts: e5Facts}, &db)
	if db.ID != dbID || db.Version != 4 {
		t.Fatalf("reload: id=%q version=%d, want the live entry at version 4", db.ID, db.Version)
	}

	// Unknown DB and empty batches are typed client errors.
	if code := post(t, ts.URL+"/v1/dbs/nope/facts", factsRequest{Add: "E(a,b)."}, nil); code != 404 {
		t.Fatalf("unknown db: status %d, want 404", code)
	}
	if code := post(t, ts.URL+"/v1/dbs/"+dbID+"/facts", factsRequest{}, nil); code != 400 {
		t.Fatalf("empty batch: status %d, want 400", code)
	}
}

// A subscription streams a snapshot then one delta per committed batch,
// and snapshot + accumulated deltas always equals a fresh query.
func TestSubscribeDeltaStream(t *testing.T) {
	ts := newTestServer(t)
	thID, dbID := registerFixtures(t, ts.URL)

	events, closeStream := sseStream(t, ts.URL+"/v1/dbs/"+dbID+"/subscribe",
		subscribeRequest{TheoryID: thID, CQ: "T(X,Y) -> Ans(X,Y)."})
	defer closeStream()

	var snap snapshotEvent
	if err := json.Unmarshal([]byte(waitEvent(t, events, "snapshot").Data), &snap); err != nil {
		t.Fatal(err)
	}
	if snap.Version != 1 || len(snap.Answers) == 0 || snap.PlanKey == "" {
		t.Fatalf("snapshot %+v, want version 1 with answers and a plan key", snap)
	}

	// Accumulate deltas into the snapshot across an insert and a retract.
	acc := make(map[string]bool)
	for _, row := range snap.Answers {
		acc[fmt.Sprint(row)] = true
	}
	steps := []factsRequest{
		{Add: "E(v3,v4)."},
		{Retract: "E(v1,v2)."},
	}
	for i, step := range steps {
		var fr factsResponse
		if code := post(t, ts.URL+"/v1/dbs/"+dbID+"/facts", step, &fr); code != 200 {
			t.Fatalf("step %d: status %d", i, code)
		}
		if fr.Subscribers != 1 {
			t.Fatalf("step %d: subscribers = %d, want 1", i, fr.Subscribers)
		}
		var d deltaEvent
		if err := json.Unmarshal([]byte(waitEvent(t, events, "delta").Data), &d); err != nil {
			t.Fatal(err)
		}
		if d.Version != fr.Version {
			t.Fatalf("step %d: delta version %d, batch version %d", i, d.Version, fr.Version)
		}
		for _, row := range d.Added {
			acc[fmt.Sprint(row)] = true
		}
		for _, row := range d.Removed {
			delete(acc, fmt.Sprint(row))
		}

		var fresh queryResponse
		post(t, ts.URL+"/v1/query", queryRequest{TheoryID: thID, DBID: dbID, CQ: "T(X,Y) -> Ans(X,Y)."}, &fresh)
		want := make([]string, 0, len(fresh.Answers))
		for _, row := range fresh.Answers {
			want = append(want, fmt.Sprint(row))
		}
		got := make([]string, 0, len(acc))
		for k := range acc {
			got = append(got, k)
		}
		sort.Strings(want)
		sort.Strings(got)
		if fmt.Sprint(got) != fmt.Sprint(want) {
			t.Fatalf("step %d: accumulated answers diverge from recompute:\n got %v\nwant %v", i, got, want)
		}
	}
}

// A CQ whose plan falls back to a per-query bounded chase is rejected
// at registration with 422 and the typed kind.
func TestSubscribeRejectsChasePlan(t *testing.T) {
	ts := newTestServer(t)
	var th theoryResponse
	// Weakly guarded: compiles to chase mode, every CQ plan chases per call.
	src := `
		P(X) -> exists Y,Z. R(X,Y,Z).
		R(X,Y,Z) -> S(Y,Z).
		S(Y,Z), S(Z,W) -> S(Y,W).
	`
	if code := post(t, ts.URL+"/v1/theories", theoryRequest{Source: src}, &th); code != 200 {
		t.Fatalf("theories: status %d", code)
	}
	var db dbResponse
	post(t, ts.URL+"/v1/dbs", dbRequest{Facts: "P(a)."}, &db)

	buf, _ := json.Marshal(subscribeRequest{TheoryID: th.ID, CQ: "S(Y,Z) -> Ans(Y,Z)."})
	resp, err := http.Post(ts.URL+"/v1/dbs/"+db.ID+"/subscribe", "application/json", bytes.NewReader(buf))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var e errorResponse
	json.NewDecoder(resp.Body).Decode(&e)
	if resp.StatusCode != 422 || e.Kind != "not_maintainable" {
		t.Fatalf("chase-plan subscription: status %d kind %q, want 422 not_maintainable", resp.StatusCode, e.Kind)
	}
}

// The server-wide subscription cap sheds registrations with 429.
func TestSubscribeCap(t *testing.T) {
	srv := New(Config{DefaultTimeout: 10 * time.Second, MaxSubs: 1})
	ts := httptest.NewServer(srv.Handler())
	t.Cleanup(ts.Close)
	thID, dbID := registerFixtures(t, ts.URL)

	events, closeStream := sseStream(t, ts.URL+"/v1/dbs/"+dbID+"/subscribe",
		subscribeRequest{TheoryID: thID, CQ: "T(X,Y) -> Ans(X,Y)."})
	defer closeStream()
	waitEvent(t, events, "snapshot")

	buf, _ := json.Marshal(subscribeRequest{TheoryID: thID, CQ: "B(X) -> Ans(X)."})
	resp, err := http.Post(ts.URL+"/v1/dbs/"+dbID+"/subscribe", "application/json", bytes.NewReader(buf))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != 429 {
		t.Fatalf("over-cap subscription: status %d, want 429", resp.StatusCode)
	}
	var m map[string]int64
	get(t, ts.URL+"/metrics", &m)
	if m["subscriptions"] != 1 {
		t.Fatalf("subscriptions gauge = %d, want 1", m["subscriptions"])
	}
}

// BeginDrain closes live streams so http.Server.Shutdown is not held
// open by subscribers, and a chaos-failed maintenance batch drops the
// subscriber with an error event while the batch itself still commits.
func TestSubscribeDrainAndChaosDrop(t *testing.T) {
	srv := New(Config{DefaultTimeout: 10 * time.Second, Chaos: true})
	ts := httptest.NewServer(srv.Handler())
	t.Cleanup(ts.Close)
	thID, dbID := registerFixtures(t, ts.URL)

	// Chaos drop: the injected budget fails the subscriber's maintenance
	// run; the batch commits and the stream ends with an error event.
	events, closeStream := sseStream(t, ts.URL+"/v1/dbs/"+dbID+"/subscribe",
		subscribeRequest{TheoryID: thID, CQ: "T(X,Y) -> Ans(X,Y)."})
	defer closeStream()
	waitEvent(t, events, "snapshot")

	var fr factsResponse
	if code := post(t, ts.URL+"/v1/dbs/"+dbID+"/facts", factsRequest{Add: "E(v3,v4).", FailAt: 1}, &fr); code != 200 {
		t.Fatalf("chaos batch: status %d", code)
	}
	if fr.Version != 2 || fr.Subscribers != 0 {
		t.Fatalf("chaos batch %+v, want committed version 2 with the subscriber dropped", fr)
	}
	waitEvent(t, events, "error")
	if _, open := <-events; open {
		t.Fatal("stream must close after the subscriber is dropped")
	}
	var m map[string]int64
	get(t, ts.URL+"/metrics", &m)
	if m["subs_dropped"] != 1 || m["fact_batches"] != 1 {
		t.Fatalf("metrics after chaos drop: dropped=%d batches=%d", m["subs_dropped"], m["fact_batches"])
	}

	// Drain: a fresh subscriber's stream ends when the server drains.
	events2, closeStream2 := sseStream(t, ts.URL+"/v1/dbs/"+dbID+"/subscribe",
		subscribeRequest{TheoryID: thID, CQ: "B(X) -> Ans(X)."})
	defer closeStream2()
	waitEvent(t, events2, "snapshot")
	srv.BeginDrain()
	select {
	case _, open := <-events2:
		if open {
			t.Fatal("unexpected event during drain; stream should just close")
		}
	case <-time.After(10 * time.Second):
		t.Fatal("stream did not close on drain")
	}
}

// LRU eviction of a DB with live subscribers must not orphan them: each
// stream ends with a terminal error frame naming the eviction, and a
// later batch against the evicted id is a clean 404, never a 200 over a
// lost write.
func TestDBEvictionDropsSubscribers(t *testing.T) {
	srv := New(Config{DefaultTimeout: 10 * time.Second, MaxDBs: 1})
	ts := httptest.NewServer(srv.Handler())
	t.Cleanup(ts.Close)
	thID, dbID := registerFixtures(t, ts.URL)

	events, closeStream := sseStream(t, ts.URL+"/v1/dbs/"+dbID+"/subscribe",
		subscribeRequest{TheoryID: thID, CQ: "T(X,Y) -> Ans(X,Y)."})
	defer closeStream()
	waitEvent(t, events, "snapshot")

	// Loading a second DB evicts the first (MaxDBs=1).
	var db2 dbResponse
	if code := post(t, ts.URL+"/v1/dbs", dbRequest{Facts: "B(z)."}, &db2); code != 200 {
		t.Fatalf("second db load: status %d", code)
	}
	ev := waitEvent(t, events, "error")
	if !strings.Contains(ev.Data, "evicted") {
		t.Fatalf("eviction error frame %q does not name the eviction", ev.Data)
	}
	if _, open := <-events; open {
		t.Fatal("stream must close after the eviction drop")
	}

	var e errorResponse
	if code := post(t, ts.URL+"/v1/dbs/"+dbID+"/facts", factsRequest{Add: "E(x,y)."}, &e); code != 404 {
		t.Fatalf("batch against evicted db: status %d (%+v), want 404", code, e)
	}
	var m map[string]int64
	get(t, ts.URL+"/metrics", &m)
	if m["db_evictions"] != 1 || m["subs_dropped"] != 1 {
		t.Fatalf("metrics after eviction: evictions=%d dropped=%d, want 1/1", m["db_evictions"], m["subs_dropped"])
	}
}

// The commit-time membership re-check closes the lookup→commit race: a
// batch whose DB is evicted after the handler's lookup but before the
// version swap gets 409 and writes nothing, instead of 200 over an
// orphaned entry. The test parks the batch on the entry lock, evicts the
// DB, then releases the lock.
func TestFactsEvictionRaceConflicts(t *testing.T) {
	srv := New(Config{DefaultTimeout: 10 * time.Second, MaxDBs: 1})
	ts := httptest.NewServer(srv.Handler())
	t.Cleanup(ts.Close)
	_, dbID := registerFixtures(t, ts.URL)

	srv.mu.Lock()
	ent, ok := srv.dbs.Get(dbID)
	srv.mu.Unlock()
	if !ok {
		t.Fatal("fixture db missing")
	}

	// Park the batch: it passes the lookup and heavy admission, then
	// blocks on the entry lock the test is holding.
	ent.mu.Lock()
	baseline := admittedHeavy(t, ts.URL)
	batchCode := make(chan int, 1)
	go func() {
		batchCode <- post(t, ts.URL+"/v1/dbs/"+dbID+"/facts", factsRequest{Add: "E(x,y)."}, nil)
	}()
	waitCounter(t, ts.URL, "admitted_heavy", baseline+1)

	// Evict the db while the batch is parked. The eviction teardown also
	// wants the entry lock, so run it concurrently and let both proceed
	// on release; the LRU removal itself already happened under s.mu.
	evictDone := make(chan struct{})
	go func() {
		defer close(evictDone)
		if code := post(t, ts.URL+"/v1/dbs", dbRequest{Facts: "B(z)."}, nil); code != 200 {
			t.Errorf("evicting db load: status %d", code)
		}
	}()
	waitCounter(t, ts.URL, "db_evictions", 1)
	before := ent.cur.Load().version
	ent.mu.Unlock()

	if code := <-batchCode; code != 409 {
		t.Fatalf("batch over evicted entry: status %d, want 409", code)
	}
	<-evictDone
	if got := ent.cur.Load().version; got != before {
		t.Fatalf("409 batch still bumped the orphaned entry to version %d", got)
	}
}

func admittedHeavy(t *testing.T, base string) int64 {
	t.Helper()
	var m map[string]int64
	get(t, base+"/metrics", &m)
	return m["admitted_heavy"]
}

// waitCounter polls /metrics until the named counter reaches want.
func waitCounter(t *testing.T, base, name string, want int64) {
	t.Helper()
	deadline := time.Now().Add(10 * time.Second)
	for time.Now().Before(deadline) {
		var m map[string]int64
		get(t, base+"/metrics", &m)
		if m[name] >= want {
			return
		}
		time.Sleep(5 * time.Millisecond)
	}
	t.Fatalf("counter %s never reached %d", name, want)
}

// A slow consumer is dropped with a real error frame: the delta channel
// is full by definition at drop time, so the cause must ride the
// reserved error slot and survive until the stream goroutine flushes it.
func TestSlowConsumerDropDeliversErrorFrame(t *testing.T) {
	srv := New(Config{DefaultTimeout: 10 * time.Second})
	ts := httptest.NewServer(srv.Handler())
	t.Cleanup(ts.Close)
	thID, dbID := registerFixtures(t, ts.URL)

	ckb, ok := srv.store.Get(thID)
	if !ok {
		t.Fatal("fixture theory missing")
	}
	srv.mu.Lock()
	ent, ok := srv.dbs.Get(dbID)
	srv.mu.Unlock()
	if !ok {
		t.Fatal("fixture db missing")
	}
	q, err := kb.ParseCQ("T(X,Y) -> Ans(X,Y).")
	if err != nil {
		t.Fatal(err)
	}
	mq, err := ckb.MaintainCQ(context.Background(), q, ent.cur.Load().db, kbcache.QueryOptions{})
	if err != nil {
		t.Fatal(err)
	}
	// An unbuffered delta channel with no reader: the first batch's send
	// fails, which is exactly the slow-consumer state of a full buffer.
	sub := &subscription{mq: mq, ch: make(chan subEvent), errCh: make(chan subEvent, 1)}
	ent.mu.Lock()
	ent.subs[sub] = struct{}{}
	ent.mu.Unlock()

	var fr factsResponse
	if code := post(t, ts.URL+"/v1/dbs/"+dbID+"/facts", factsRequest{Add: "E(v3,v4)."}, &fr); code != 200 {
		t.Fatalf("batch: status %d", code)
	}
	if fr.Subscribers != 0 {
		t.Fatalf("subscribers after slow-consumer drop = %d, want 0", fr.Subscribers)
	}
	if _, open := <-sub.ch; open {
		t.Fatal("delta channel must be closed by the drop")
	}
	select {
	case ev := <-sub.errCh:
		if ev.event != "error" || !strings.Contains(string(ev.data), "slow consumer") {
			t.Fatalf("reserved frame = %s %q, want an error naming the slow consumer", ev.event, ev.data)
		}
	default:
		t.Fatal("no error frame reserved for the slow-consumer drop")
	}
}
