package termination

import (
	"encoding/json"
	"fmt"
	"testing"
	"time"

	"guardedrules/internal/budget"
	"guardedrules/internal/chase"
	"guardedrules/internal/core"
	"guardedrules/internal/database"
	"guardedrules/internal/gen"
)

// Differential soundness: whenever the analyzer says "terminating", the
// chase must actually reach a fixpoint. The generous budget is a
// watchdog against analyzer bugs hanging the suite, not a tolerance —
// exhausting it fails the test.
var generous = func() *budget.T {
	return &budget.T{Timeout: 30 * time.Second, MaxFacts: 500_000, MaxRounds: 100_000}
}

func corpusTheories() map[string]*core.Theory {
	ths := map[string]*core.Theory{}
	for seed := int64(0); seed < 8; seed++ {
		ths[fmt.Sprintf("fg/%d", seed)] = gen.RandomFrontierGuardedTheory(gen.FGTheoryOptions{Rules: 6, Seed: seed})
		ths[fmt.Sprintf("g/%d", seed)] = gen.RandomGuardedTheory(6, seed)
		ths[fmt.Sprintf("wfg/%d", seed)] = gen.RandomWFGTheory(6, seed)
	}
	ths["ja-not-wa/3"] = gen.JANotWATheory(3)
	ths["swa-not-ja/2"] = gen.SWANotJATheory(2)
	ths["wa-chain/4"] = gen.WAChainTheory(4)
	return ths
}

func corpusDatabases(name string) map[string]*database.Database {
	return map[string]*database.Database{
		"ab":          gen.ABDatabase(20, 7),
		"adversarial": gen.AdversarialNames(20, 7),
	}
}

func TestTerminatingVerdictsAreSound(t *testing.T) {
	for _, workers := range []int{1, 4} {
		t.Run(fmt.Sprintf("workers=%d", workers), func(t *testing.T) {
			for name, th := range corpusTheories() {
				th := th
				t.Run(name, func(t *testing.T) {
					rep := Analyze(th)
					if !rep.Class.Terminating() {
						t.Skipf("class %v: nothing to certify", rep.Class)
					}
					if rep.Certificate == nil {
						t.Fatalf("terminating class %v without certificate", rep.Class)
					}
					if err := rep.Certificate.Verify(th); err != nil {
						t.Fatalf("certificate rejected: %v", err)
					}
					variants := []chase.Variant{chase.Restricted}
					if rep.Class == ClassSWA {
						// Only the critical-instance layer covers the
						// fresh-null oblivious chase.
						variants = append(variants, chase.Oblivious)
					}
					for dbName, d := range corpusDatabases(name) {
						for _, v := range variants {
							res, err := chase.Run(th, d, chase.Options{
								Variant: v,
								Workers: workers,
								Budget:  generous(),
							})
							if err != nil {
								t.Fatalf("db=%s variant=%v: %v", dbName, v, err)
							}
							if !res.Saturated {
								t.Fatalf("db=%s variant=%v: analyzer says terminating (class %v) but chase did not saturate (%s)",
									dbName, v, rep.Class, res.Reason)
							}
						}
					}
				})
			}
		})
	}
}

// Strict containment: each generator family sits exactly in its class.
func TestHierarchyStrictContainment(t *testing.T) {
	for n := 1; n <= 4; n++ {
		wa := Analyze(gen.WAChainTheory(n))
		if wa.Class != ClassWA {
			t.Errorf("WAChainTheory(%d): class %v, want wa", n, wa.Class)
		}
		ja := Analyze(gen.JANotWATheory(n))
		if ja.Class != ClassJA || ja.WeaklyAcyclic {
			t.Errorf("JANotWATheory(%d): class %v (wa=%v), want ja strictly", n, ja.Class, ja.WeaklyAcyclic)
		}
		swa := Analyze(gen.SWANotJATheory(n))
		if swa.Class != ClassSWA || swa.JointlyAcyclic {
			t.Errorf("SWANotJATheory(%d): class %v (ja=%v), want swa strictly", n, swa.Class, swa.JointlyAcyclic)
		}
	}
}

// Certificates survive a JSON round-trip and still verify — they are
// meant to travel through lint Detail and /v1/theories responses.
func TestCertificateJSONRoundTrip(t *testing.T) {
	for name, th := range map[string]*core.Theory{
		"wa":  gen.WAChainTheory(3),
		"ja":  gen.JANotWATheory(2),
		"swa": gen.SWANotJATheory(1),
	} {
		rep := Analyze(th)
		if rep.Certificate == nil {
			t.Fatalf("%s: no certificate", name)
		}
		blob, err := json.Marshal(rep.Certificate)
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		var back Certificate
		if err := json.Unmarshal(blob, &back); err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		if err := back.Verify(th); err != nil {
			t.Errorf("%s: round-tripped certificate rejected: %v", name, err)
		}
	}
}
