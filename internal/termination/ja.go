package termination

import (
	"sort"

	"guardedrules/internal/classify"
	"guardedrules/internal/core"
)

// Joint acyclicity (Krötzsch & Rudolph). For an existential variable y
// of rule σ, Move(y) is the least set of positions that contains the
// head positions of y and is closed under propagation: whenever a
// universal variable z of some rule ρ has a non-empty set of positive
// body positions all inside Move(y), z's head positions join Move(y).
// y ⇝ y′ (y′ existential in rule ρ′) holds when some frontier variable
// x′ of ρ′ has a non-empty set of body positions all inside Move(y): a
// null minted for y can then reach every position x′ feeds, so firing
// ρ′ on it mints a null for y′ from y's null. The theory is jointly
// acyclic iff ⇝ is acyclic; the skolem chase of a JA theory terminates,
// and with it this engine's restricted chase.

// ruleVarPos holds one rule's per-variable position sets, precomputed
// once per analysis.
type ruleVarPos struct {
	rule *core.Rule
	// bodyPos/headPos map each universal variable to its positive-body /
	// head positions.
	bodyPos map[core.Term][]classify.Position
	headPos map[core.Term][]classify.Position
	// frontier is the rule's frontier variable set.
	frontier core.TermSet
	// evars are the rule's existential variables in declaration order,
	// with their head positions.
	evars []core.Term
	evPos map[core.Term][]classify.Position
}

func varPositions(th *core.Theory) []ruleVarPos {
	out := make([]ruleVarPos, len(th.Rules))
	for i, r := range th.Rules {
		rv := ruleVarPos{
			rule:     r,
			bodyPos:  map[core.Term][]classify.Position{},
			headPos:  map[core.Term][]classify.Position{},
			frontier: r.FVars(),
			evPos:    map[core.Term][]classify.Position{},
		}
		ev := r.EVarSet()
		for _, a := range r.PositiveBody() {
			for j, t := range a.Args {
				if t.IsVar() {
					rv.bodyPos[t] = append(rv.bodyPos[t], classify.Position{Rel: a.Key(), Index: j})
				}
			}
		}
		for _, h := range r.Head {
			for j, t := range h.Args {
				if !t.IsVar() {
					continue
				}
				p := classify.Position{Rel: h.Key(), Index: j}
				if ev.Has(t) {
					rv.evPos[t] = append(rv.evPos[t], p)
				} else {
					rv.headPos[t] = append(rv.headPos[t], p)
				}
			}
		}
		rv.evars = append(rv.evars, r.Exist...)
		out[i] = rv
	}
	return out
}

// moveSet computes Move(y) for the existential variable y of rule ri.
func moveSet(rvs []ruleVarPos, ri int, y core.Term) classify.PosSet {
	mv := classify.PosSet{}
	for _, p := range rvs[ri].evPos[y] {
		mv[p] = true
	}
	for changed := true; changed; {
		changed = false
		for i := range rvs {
			for z, bps := range rvs[i].bodyPos {
				if len(bps) == 0 || !allIn(bps, mv) {
					continue
				}
				for _, q := range rvs[i].headPos[z] {
					if !mv[q] {
						mv[q] = true
						changed = true
					}
				}
			}
		}
	}
	return mv
}

func allIn(ps []classify.Position, s classify.PosSet) bool {
	for _, p := range ps {
		if !s[p] {
			return false
		}
	}
	return true
}

// jointAcyclicity checks the JA criterion. When the dependency graph is
// acyclic it returns a topological order of every existential variable
// (the certificate witness) and a nil cycle; otherwise it returns a
// dependency cycle with the first variable repeated last.
func jointAcyclicity(th *core.Theory) (order []EVar, cycle []EVar) {
	rvs := varPositions(th)
	var nodes []EVar
	for i := range rvs {
		for _, y := range rvs[i].evars {
			nodes = append(nodes, EVar{Rule: i, Var: y.Name})
		}
	}
	if len(nodes) == 0 {
		return nil, nil
	}
	idx := make(map[EVar]int, len(nodes))
	for i, n := range nodes {
		idx[n] = i
	}
	adj := make([][]int, len(nodes))
	for i := range rvs {
		for _, y := range rvs[i].evars {
			from := idx[EVar{Rule: i, Var: y.Name}]
			mv := moveSet(rvs, i, y)
			for j := range rvs {
				if len(rvs[j].evars) == 0 {
					continue
				}
				// ρj consumes y's nulls when some frontier variable of ρj
				// reads only positions a y-null can reach.
				consumes := false
				for x := range rvs[j].frontier {
					bps := rvs[j].bodyPos[x]
					if len(bps) > 0 && allIn(bps, mv) {
						consumes = true
						break
					}
				}
				if !consumes {
					continue
				}
				for _, y2 := range rvs[j].evars {
					adj[from] = append(adj[from], idx[EVar{Rule: j, Var: y2.Name}])
				}
			}
		}
	}
	for i := range adj {
		sort.Ints(adj[i])
	}
	// Iterative DFS with colors; a back edge yields the cycle witness.
	const (
		white = 0
		gray  = 1
		black = 2
	)
	color := make([]int, len(nodes))
	parent := make([]int, len(nodes))
	for i := range parent {
		parent[i] = -1
	}
	var topo []int
	var dfs func(u int) []int
	dfs = func(u int) []int {
		color[u] = gray
		for _, v := range adj[u] {
			switch color[v] {
			case white:
				parent[v] = u
				if c := dfs(v); c != nil {
					return c
				}
			case gray:
				// Back edge u→v closes a cycle v → … → u → v.
				var rev []int
				for cur := u; cur != v; cur = parent[cur] {
					rev = append(rev, cur)
				}
				rev = append(rev, v)
				c := make([]int, 0, len(rev)+1)
				for i := len(rev) - 1; i >= 0; i-- {
					c = append(c, rev[i])
				}
				return append(c, v)
			}
		}
		color[u] = black
		topo = append(topo, u)
		return nil
	}
	for u := range nodes {
		if color[u] == white {
			if c := dfs(u); c != nil {
				cyc := make([]EVar, len(c))
				for i, n := range c {
					cyc[i] = nodes[n]
				}
				return nil, cyc
			}
		}
	}
	// topo holds nodes in reverse topological order.
	order = make([]EVar, len(topo))
	for i := range topo {
		order[i] = nodes[topo[len(topo)-1-i]]
	}
	return order, nil
}

// jaDependencies recomputes the dependency edges (from, to) of the JA
// graph, for certificate verification.
func jaDependencies(th *core.Theory) [][2]EVar {
	rvs := varPositions(th)
	var deps [][2]EVar
	for i := range rvs {
		for _, y := range rvs[i].evars {
			mv := moveSet(rvs, i, y)
			for j := range rvs {
				if len(rvs[j].evars) == 0 {
					continue
				}
				consumes := false
				for x := range rvs[j].frontier {
					bps := rvs[j].bodyPos[x]
					if len(bps) > 0 && allIn(bps, mv) {
						consumes = true
						break
					}
				}
				if !consumes {
					continue
				}
				for _, y2 := range rvs[j].evars {
					deps = append(deps, [2]EVar{{Rule: i, Var: y.Name}, {Rule: j, Var: y2.Name}})
				}
			}
		}
	}
	return deps
}
