// Package termination implements a layered chase-termination analysis
// for existential theories. Three criteria are checked, from tightest to
// loosest:
//
//   - Weak acyclicity (WA; Fagin, Kolaitis, Miller, Popa — cited in the
//     paper's related work on acyclicity-based fragments [23]): no
//     special edge of the position dependency graph lies on a cycle.
//     WA additionally yields a polynomial fact-count bound (see Bound).
//   - Joint acyclicity (JA; Krötzsch & Rudolph): the existential-variable
//     dependency graph over Move sets is acyclic. JA strictly subsumes
//     WA.
//   - An MFA-style critical-instance check (the repository's stand-in
//     for the super-weak tier of the finite-chase hierarchy of
//     arXiv:1411.5220, reported as "swa"): the engine's own chase is run
//     on the critical instance under a deterministic budget, with
//     cycle detection on null-generation lineage.
//
// Each certified verdict carries a machine-checkable Certificate that
// Verify can re-validate against the theory without trusting the
// analyzer.
//
// Scope of the certificates with respect to this repository's engine
// (internal/chase), which mints a fresh null per applied trigger (plain
// oblivious chase, not the skolem chase):
//
//   - WA and JA certify the Restricted variant. They do NOT certify the
//     fresh-null Oblivious variant: R(x,y) → ∃z R(x,z) is weakly acyclic
//     yet its oblivious chase re-fires on every fresh null at the
//     non-frontier position y and diverges.
//   - A critical-instance certificate certifies both variants: the
//     oblivious chase of any database maps homomorphically into the
//     critical-instance chase with non-decreasing null depth, so a
//     finite critical chase bounds every chase; the restricted chase
//     applies a subset of the oblivious triggers.
//
// Guardedness and termination are orthogonal — the paper's running
// example Σp is both frontier-guarded and weakly acyclic, while
// Person(x) → ∃y hasParent(x,y); hasParent(x,y) → Person(y) is guarded
// but admits no termination certificate (its chase is infinite).
package termination

import (
	"sort"

	"guardedrules/internal/budget"
	"guardedrules/internal/classify"
	"guardedrules/internal/core"
)

// Class is a chase-termination class, ordered loosest to tightest:
// a higher class is a stronger (more informative) certificate. WA ⊂ JA ⊂
// critical-instance-terminating as criteria; the analysis reports the
// tightest class that holds.
type Class int

const (
	// ClassUnknown: no termination certificate was found. The chase may
	// be infinite (it provably is when the critical check found a
	// lineage cycle and the theory has no negation).
	ClassUnknown Class = iota
	// ClassSWA: the critical-instance chase saturates (MFA-style check,
	// the analysis' super-weak tier). Certifies both chase variants.
	ClassSWA
	// ClassJA: jointly acyclic. Certifies the restricted chase, with the
	// existential-variable dependency order as witness.
	ClassJA
	// ClassWA: weakly acyclic. Certifies the restricted chase and yields
	// a polynomial fact bound.
	ClassWA
)

func (c Class) String() string {
	switch c {
	case ClassWA:
		return "wa"
	case ClassJA:
		return "ja"
	case ClassSWA:
		return "swa"
	default:
		return "unknown"
	}
}

// Terminating reports whether the class certifies chase termination on
// every database (for at least the restricted variant; see the package
// comment for the variant each class covers).
func (c Class) Terminating() bool { return c != ClassUnknown }

// MarshalJSON renders the class as its name.
func (c Class) MarshalJSON() ([]byte, error) { return []byte(`"` + c.String() + `"`), nil }

// Edge is an edge of the position dependency graph; special edges track
// value invention (an existential variable created from a value at the
// source position).
type Edge struct {
	From, To classify.Position
	Special  bool
	// Rule is the first rule (in theory order) inducing the edge. It
	// does not take part in edge identity.
	Rule *core.Rule
}

// edgeID is the comparable identity of an edge: the inducing rule is
// deliberately excluded (the first rule to contribute an edge keeps it).
type edgeID struct {
	from, to classify.Position
	special  bool
}

// EVar names an existential variable by its rule's index in the theory
// and its name — the nodes of the joint-acyclicity dependency graph.
type EVar struct {
	Rule int    `json:"rule"`
	Var  string `json:"var"`
}

func (v EVar) String() string { return "r" + itoa(v.Rule) + "." + v.Var }

// Options configures AnalyzeOpts.
type Options struct {
	// CriticalBudget governs the critical-instance chase; nil means the
	// deterministic default (defaultCriticalFacts facts,
	// defaultCriticalSteps steps). Wall-clock fields make the verdict
	// machine-dependent; prefer fact/step ceilings.
	CriticalBudget *budget.T
	// SkipCritical disables the critical-instance layer: theories that
	// are neither WA nor JA report ClassUnknown without running a chase.
	SkipCritical bool
}

// Report is the outcome of the analysis.
type Report struct {
	// Class is the tightest termination class certified; ClassUnknown
	// means no certificate (not a proof of non-termination).
	Class Class

	WeaklyAcyclic bool
	// Witness is a special edge lying on a cycle when not weakly acyclic.
	Witness *Edge
	// WitnessCycle is the cycle through the witness edge:
	// Witness.From ⇒ Witness.To → ... → Witness.From. Nil when weakly
	// acyclic.
	WitnessCycle []classify.Position
	Edges        []Edge

	// JointlyAcyclic reports the JA criterion. WA implies JA; the JA
	// layer is only computed explicitly when WA fails.
	JointlyAcyclic bool
	// JACycle is a cycle of the existential-variable dependency graph
	// (first element repeated last) when the theory is not JA.
	JACycle []EVar

	// Critical is the critical-instance check outcome; nil when the
	// layer did not run (the theory is WA or JA, or it was skipped).
	Critical *CriticalReport

	// Certificate is the machine-checkable witness of Class; nil when
	// ClassUnknown.
	Certificate *Certificate

	// Bound carries the WA fact-bound coefficients; nil unless ClassWA.
	Bound *Bound
}

// Analyze runs the full pipeline under the default critical-instance
// budget.
func Analyze(th *core.Theory) *Report { return AnalyzeOpts(th, Options{}) }

// AnalyzeOpts builds the position dependency graph of the theory and
// checks the termination criteria tightest-first, stopping at the first
// that holds: for every rule σ, every frontier variable x at body
// position p contributes a regular edge p→q for each head position q of
// x, and a special edge p⇒q' for each position q' holding an existential
// variable of σ.
func AnalyzeOpts(th *core.Theory, opts Options) *Report {
	var edges []Edge
	seen := map[edgeID]bool{}
	add := func(e Edge) {
		k := edgeID{e.From, e.To, e.Special}
		if !seen[k] {
			seen[k] = true
			edges = append(edges, e)
		}
	}
	for _, r := range th.Rules {
		ev := r.EVarSet()
		fv := r.FVars()
		// Head positions of existential variables.
		var evPos []classify.Position
		for _, h := range r.Head {
			for i, t := range h.Args {
				if t.IsVar() && ev.Has(t) {
					evPos = append(evPos, classify.Position{Rel: h.Key(), Index: i})
				}
			}
		}
		for x := range fv {
			var bodyPos []classify.Position
			for _, a := range r.PositiveBody() {
				for i, t := range a.Args {
					if t == x {
						bodyPos = append(bodyPos, classify.Position{Rel: a.Key(), Index: i})
					}
				}
			}
			var headPos []classify.Position
			for _, h := range r.Head {
				for i, t := range h.Args {
					if t == x {
						headPos = append(headPos, classify.Position{Rel: h.Key(), Index: i})
					}
				}
			}
			for _, p := range bodyPos {
				for _, q := range headPos {
					add(Edge{From: p, To: q, Rule: r})
				}
				for _, q := range evPos {
					add(Edge{From: p, To: q, Special: true, Rule: r})
				}
			}
		}
	}
	sort.Slice(edges, func(i, j int) bool {
		a, b := edges[i], edges[j]
		if a.From != b.From {
			return lessPos(a.From, b.From)
		}
		if a.To != b.To {
			return lessPos(a.To, b.To)
		}
		return !a.Special && b.Special
	})
	rep := &Report{WeaklyAcyclic: true, Edges: edges}
	// Weak acyclicity fails iff some special edge lies on a cycle:
	// its target reaches its source.
	adj := map[classify.Position][]classify.Position{}
	for _, e := range edges {
		adj[e.From] = append(adj[e.From], e.To)
	}
	for i, e := range edges {
		if !e.Special {
			continue
		}
		if path := pathBetween(adj, e.To, e.From); path != nil {
			rep.WeaklyAcyclic = false
			rep.Witness = &edges[i]
			rep.WitnessCycle = append([]classify.Position{e.From}, path...)
			break
		}
	}
	if rep.WeaklyAcyclic {
		rep.Class = ClassWA
		rep.JointlyAcyclic = true // WA ⊆ JA
		ranks := positionRanks(edges)
		rep.Bound = deriveBound(th, ranks)
		rep.Certificate = waCertificate(ranks)
		return rep
	}
	order, cycle := jointAcyclicity(th)
	if cycle == nil {
		rep.Class = ClassJA
		rep.JointlyAcyclic = true
		rep.Certificate = &Certificate{Class: ClassJA.String(), Order: order}
		return rep
	}
	rep.JACycle = cycle
	if opts.SkipCritical {
		return rep
	}
	rep.Critical = criticalCheck(th, opts.CriticalBudget)
	if rep.Critical.Terminates {
		rep.Class = ClassSWA
		rep.Certificate = &Certificate{
			Class:          ClassSWA.String(),
			CriticalFacts:  rep.Critical.Facts,
			CriticalSteps:  rep.Critical.Steps,
			CriticalRounds: rep.Critical.Rounds,
		}
	}
	return rep
}

func lessPos(a, b classify.Position) bool {
	if a.Rel.Name != b.Rel.Name {
		return a.Rel.Name < b.Rel.Name
	}
	if a.Rel.Arity != b.Rel.Arity {
		return a.Rel.Arity < b.Rel.Arity
	}
	if a.Rel.AnnArity != b.Rel.AnnArity {
		return a.Rel.AnnArity < b.Rel.AnnArity
	}
	return a.Index < b.Index
}

// pathBetween returns a shortest path from → ... → to in the graph, or
// nil when to is unreachable. A trivial path [from] is returned when from
// equals to.
func pathBetween(adj map[classify.Position][]classify.Position, from, to classify.Position) []classify.Position {
	if from == to {
		return []classify.Position{from}
	}
	parent := map[classify.Position]classify.Position{from: from}
	queue := []classify.Position{from}
	for len(queue) > 0 {
		p := queue[0]
		queue = queue[1:]
		for _, q := range adj[p] {
			if _, ok := parent[q]; ok {
				continue
			}
			parent[q] = p
			if q == to {
				var rev []classify.Position
				for cur := to; ; cur = parent[cur] {
					rev = append(rev, cur)
					if cur == from {
						break
					}
				}
				out := make([]classify.Position, 0, len(rev))
				for i := len(rev) - 1; i >= 0; i-- {
					out = append(out, rev[i])
				}
				return out
			}
			queue = append(queue, q)
		}
	}
	return nil
}

// IsWeaklyAcyclic reports whether the chase of th terminates on every
// database by the weak-acyclicity criterion.
func IsWeaklyAcyclic(th *core.Theory) bool {
	// WA needs no chase run; skip the deeper layers outright.
	return AnalyzeOpts(th, Options{SkipCritical: true}).WeaklyAcyclic
}

func itoa(n int) string {
	if n == 0 {
		return "0"
	}
	neg := n < 0
	if neg {
		n = -n
	}
	var buf [20]byte
	i := len(buf)
	for n > 0 {
		i--
		buf[i] = byte('0' + n%10)
		n /= 10
	}
	if neg {
		i--
		buf[i] = '-'
	}
	return string(buf[i:])
}
