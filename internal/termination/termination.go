// Package termination implements chase-termination analysis for
// existential theories via weak acyclicity of the position dependency
// graph (Fagin, Kolaitis, Miller, Popa; cited in the paper's related work
// on acyclicity-based fragments [23]).
//
// The chase of a weakly acyclic theory terminates on every database in
// polynomially many steps. Guardedness and weak acyclicity are orthogonal
// — the paper's running example Σp is both frontier-guarded and weakly
// acyclic, while Person(x) → ∃y hasParent(x,y); hasParent(x,y) →
// Person(y) is guarded but not weakly acyclic (its chase is infinite).
package termination

import (
	"fmt"
	"sort"

	"guardedrules/internal/classify"
	"guardedrules/internal/core"
)

// Edge is an edge of the position dependency graph; special edges track
// value invention (an existential variable created from a value at the
// source position).
type Edge struct {
	From, To classify.Position
	Special  bool
	// Rule is the first rule (in theory order) inducing the edge. It
	// does not take part in edge identity.
	Rule *core.Rule
}

// Report is the outcome of the analysis.
type Report struct {
	WeaklyAcyclic bool
	// Witness is a special edge lying on a cycle when not weakly acyclic.
	Witness *Edge
	// WitnessCycle is the cycle through the witness edge:
	// Witness.From ⇒ Witness.To → ... → Witness.From. Nil when weakly
	// acyclic.
	WitnessCycle []classify.Position
	Edges        []Edge
}

// Analyze builds the position dependency graph of the theory: for every
// rule σ, every frontier variable x at body position p contributes a
// regular edge p→q for each head position q of x, and a special edge
// p⇒q' for each position q' holding an existential variable of σ.
func Analyze(th *core.Theory) *Report {
	var edges []Edge
	// Edge identity excludes the inducing rule: the first rule to
	// contribute an edge keeps it.
	edgeKey := func(e Edge) string { return fmt.Sprint(e.From, e.To, e.Special) }
	seen := map[string]bool{}
	add := func(e Edge) {
		k := edgeKey(e)
		if !seen[k] {
			seen[k] = true
			edges = append(edges, e)
		}
	}
	for _, r := range th.Rules {
		ev := r.EVarSet()
		fv := r.FVars()
		// Head positions of existential variables.
		var evPos []classify.Position
		for _, h := range r.Head {
			for i, t := range h.Args {
				if t.IsVar() && ev.Has(t) {
					evPos = append(evPos, classify.Position{Rel: h.Key(), Index: i})
				}
			}
		}
		for x := range fv {
			var bodyPos []classify.Position
			for _, a := range r.PositiveBody() {
				for i, t := range a.Args {
					if t == x {
						bodyPos = append(bodyPos, classify.Position{Rel: a.Key(), Index: i})
					}
				}
			}
			var headPos []classify.Position
			for _, h := range r.Head {
				for i, t := range h.Args {
					if t == x {
						headPos = append(headPos, classify.Position{Rel: h.Key(), Index: i})
					}
				}
			}
			for _, p := range bodyPos {
				for _, q := range headPos {
					add(Edge{From: p, To: q, Rule: r})
				}
				for _, q := range evPos {
					add(Edge{From: p, To: q, Special: true, Rule: r})
				}
			}
		}
	}
	sort.Slice(edges, func(i, j int) bool { return edgeKey(edges[i]) < edgeKey(edges[j]) })
	rep := &Report{WeaklyAcyclic: true, Edges: edges}
	// Weak acyclicity fails iff some special edge lies on a cycle:
	// its target reaches its source.
	adj := map[classify.Position][]classify.Position{}
	for _, e := range edges {
		adj[e.From] = append(adj[e.From], e.To)
	}
	for i, e := range edges {
		if !e.Special {
			continue
		}
		if path := pathBetween(adj, e.To, e.From); path != nil {
			rep.WeaklyAcyclic = false
			rep.Witness = &edges[i]
			rep.WitnessCycle = append([]classify.Position{e.From}, path...)
			break
		}
	}
	return rep
}

// pathBetween returns a shortest path from → ... → to in the graph, or
// nil when to is unreachable. A trivial path [from] is returned when from
// equals to.
func pathBetween(adj map[classify.Position][]classify.Position, from, to classify.Position) []classify.Position {
	if from == to {
		return []classify.Position{from}
	}
	parent := map[classify.Position]classify.Position{from: from}
	queue := []classify.Position{from}
	for len(queue) > 0 {
		p := queue[0]
		queue = queue[1:]
		for _, q := range adj[p] {
			if _, ok := parent[q]; ok {
				continue
			}
			parent[q] = p
			if q == to {
				var rev []classify.Position
				for cur := to; ; cur = parent[cur] {
					rev = append(rev, cur)
					if cur == from {
						break
					}
				}
				out := make([]classify.Position, 0, len(rev))
				for i := len(rev) - 1; i >= 0; i-- {
					out = append(out, rev[i])
				}
				return out
			}
			queue = append(queue, q)
		}
	}
	return nil
}

// IsWeaklyAcyclic reports whether the chase of th terminates on every
// database by the weak-acyclicity criterion.
func IsWeaklyAcyclic(th *core.Theory) bool { return Analyze(th).WeaklyAcyclic }
