package termination

import (
	"context"

	"guardedrules/internal/budget"
	"guardedrules/internal/chase"
	"guardedrules/internal/core"
	"guardedrules/internal/database"
)

// Default deterministic ceilings of the critical-instance chase. Fact
// and step ceilings (not wall-clock) keep the verdict machine- and
// load-independent.
const (
	defaultCriticalFacts = 20_000
	defaultCriticalSteps = 200_000
)

// CriticalReport is the outcome of the MFA-style critical-instance
// check: the engine's own oblivious chase run on the critical instance
// (every relation of Σ filled with one fresh constant, plus the
// constants of Σ) under a deterministic budget.
type CriticalReport struct {
	// Terminates reports that the critical chase saturated: the chase of
	// every database is then finite (both variants; see the package
	// comment for the homomorphism argument).
	Terminates bool
	// Facts is the final database size of the saturated critical chase
	// (input facts included); Steps and Rounds are the engine counters.
	// Meaningful when Terminates.
	Facts, Steps, Rounds int
	// Exhausted reports that the budget ran out before saturation and
	// before any lineage cycle: the verdict is unknown.
	Exhausted bool
	// LineageCycle, when non-nil, is the rejection witness: a chain of
	// existential-variable origins o_0 → … → o_k with o_0 = o_k, realized
	// by nulls (CycleNulls) in which each null's creating trigger matched
	// the previous null. The criterion is then definitively refuted (for
	// negation-free theories the chase itself is infinite in all
	// practical cases; with negation the cycle is still reported as the
	// reason the check rejects).
	LineageCycle []EVar
	// CycleNulls are the null names realizing LineageCycle, outermost
	// (the repeated origin's ancestor) first.
	CycleNulls []string
}

// CriticalInstance builds the critical instance of the theory: every
// non-ACDom relation of Σ filled with the fresh constant *, plus every
// constant of Σ (as ACDom facts). The ACDom facts of * and the Σ
// constants are derived by the database itself.
func CriticalInstance(th *core.Theory) *database.Database {
	d := database.New()
	star := core.Const("*")
	for _, c := range th.Constants().Sorted() {
		d.Add(core.NewAtom(core.ACDom, c))
	}
	for _, rk := range th.Relations() {
		if rk.Name == core.ACDom {
			continue
		}
		a := core.Atom{Relation: rk.Name}
		for i := 0; i < rk.Arity; i++ {
			a.Args = append(a.Args, star)
		}
		for i := 0; i < rk.AnnArity; i++ {
			a.Annotation = append(a.Annotation, star)
		}
		d.Add(a)
	}
	return d
}

// evKey identifies a null origin: the minting rule and the index of the
// existential variable the null was created for.
type evKey struct{ rule, exist int }

// lineage records a minted null's origin and the origin set of its
// ancestry (the nulls in its creating trigger, transitively).
type lineage struct {
	origin  evKey
	parents []core.Term
	anc     map[evKey]bool
}

// criticalCheck runs the critical-instance chase with lineage tracking.
// Negated body literals are dropped first: negation only prunes
// triggers, so a certificate for the positive part covers the full
// theory, while the critical-instance homomorphism argument itself needs
// monotonicity.
func criticalCheck(th *core.Theory, bud *budget.T) *CriticalReport {
	rep := &CriticalReport{}
	pos := core.NewTheory()
	ruleIdx := make(map[*core.Rule]int, len(th.Rules))
	existIdx := make([]map[core.Term]int, len(th.Rules))
	for i, r := range th.Rules {
		nr := r
		if r.HasNegation() {
			nr = &core.Rule{Label: r.Label, Span: r.Span, Exist: r.Exist, Head: r.Head}
			for _, l := range r.Body {
				if !l.Negated {
					nr.Body = append(nr.Body, l)
				}
			}
		}
		pos.Add(nr)
		ruleIdx[nr] = i
		existIdx[i] = make(map[core.Term]int, len(r.Exist))
		for j, v := range r.Exist {
			existIdx[i][v] = j
		}
	}
	if err := pos.CheckSafe(); err != nil {
		// An unsafe theory has no chase to certify.
		rep.Exhausted = true
		return rep
	}

	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	if bud == nil {
		bud = &budget.T{MaxFacts: defaultCriticalFacts, MaxSteps: defaultCriticalSteps}
	}
	b := *bud
	b.Ctx = ctx

	nulls := map[core.Term]*lineage{}
	hook := func(r *core.Rule, sub core.Subst, atom core.Atom) {
		if rep.LineageCycle != nil {
			return
		}
		ri, ok := ruleIdx[r]
		if !ok || len(r.Exist) == 0 {
			return
		}
		// Identify which head atom this derivation instantiates, to read
		// the fresh nulls off its existential positions.
		for _, h := range r.Head {
			if h.Key() != atom.Key() || !headMatches(h, atom, sub, existIdx[ri]) {
				continue
			}
			for i, t := range h.Args {
				ei, isExist := existIdx[ri][t]
				if !isExist {
					continue
				}
				n := atom.Args[i]
				if !n.IsNull() || nulls[n] != nil {
					continue
				}
				ln := &lineage{origin: evKey{ri, ei}, anc: map[evKey]bool{}}
				for _, pv := range sub {
					if !pv.IsNull() {
						continue
					}
					pl := nulls[pv]
					if pl == nil {
						continue
					}
					ln.parents = append(ln.parents, pv)
					ln.anc[pl.origin] = true
					for k := range pl.anc {
						ln.anc[k] = true
					}
				}
				nulls[n] = ln
				if ln.anc[ln.origin] {
					name := func(o evKey) EVar {
						return EVar{Rule: o.rule, Var: th.Rules[o.rule].Exist[o.exist].Name}
					}
					rep.LineageCycle, rep.CycleNulls = lineageCycle(nulls, n, ln.origin, name)
					cancel()
					return
				}
			}
			break
		}
	}

	res, err := chase.RunWithHook(pos, CriticalInstance(th), chase.Options{
		Variant: chase.Oblivious,
		Budget:  &b,
	}, hook)
	switch {
	case rep.LineageCycle != nil:
		// Canceled by the hook; the cycle is the verdict.
	case err == nil && res.Saturated:
		rep.Terminates = true
		rep.Facts = res.DB.Len()
		rep.Steps = res.Steps
		rep.Rounds = res.Rounds
	default:
		rep.Exhausted = true
	}
	return rep
}

// headMatches checks that atom is the sub-instantiation of head atom h:
// non-existential arguments must coincide under sub and existential
// positions must hold nulls.
func headMatches(h, atom core.Atom, sub core.Subst, exist map[core.Term]int) bool {
	if len(h.Args) != len(atom.Args) || len(h.Annotation) != len(atom.Annotation) {
		return false
	}
	for i, t := range h.Args {
		if _, isExist := exist[t]; isExist {
			if !atom.Args[i].IsNull() {
				return false
			}
			continue
		}
		if sub.Apply(t) != atom.Args[i] {
			return false
		}
	}
	for i, t := range h.Annotation {
		if sub.Apply(t) != atom.Annotation[i] {
			return false
		}
	}
	return true
}

// lineageCycle extracts the witness chain for a null n whose ancestry
// contains its own origin: the shortest parent path from n to an
// ancestor null minted by the same origin, reported outermost first (so
// the first and last origins of the chain coincide).
func lineageCycle(nulls map[core.Term]*lineage, n core.Term, origin evKey, name func(evKey) EVar) ([]EVar, []string) {
	type qe struct {
		t    core.Term
		prev int
	}
	queue := []qe{{t: n, prev: -1}}
	seen := map[core.Term]bool{n: true}
	for qi := 0; qi < len(queue); qi++ {
		cur := queue[qi]
		ln := nulls[cur.t]
		for _, p := range ln.parents {
			if seen[p] {
				continue
			}
			seen[p] = true
			queue = append(queue, qe{t: p, prev: qi})
			if nulls[p].origin == origin {
				// Walk back: p (the ancestor) ... n.
				var chain []core.Term
				for i := len(queue) - 1; i != -1; i = queue[i].prev {
					chain = append(chain, queue[i].t)
				}
				evs := make([]EVar, len(chain))
				names := make([]string, len(chain))
				for i, t := range chain {
					evs[i] = name(nulls[t].origin)
					names[i] = t.Name
				}
				return evs, names
			}
		}
	}
	// Unreachable: anc[origin] held, so some ancestor has the origin.
	v := name(origin)
	return []EVar{v, v}, []string{n.Name, n.Name}
}
