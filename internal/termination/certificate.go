package termination

import (
	"fmt"

	"guardedrules/internal/budget"
	"guardedrules/internal/classify"
	"guardedrules/internal/core"
)

// Certificate is the machine-checkable witness behind a termination
// verdict. It is self-contained modulo the theory: Verify re-derives the
// relevant graph from the theory and checks the witness against it
// without trusting the analyzer that produced it.
//
//   - wa: Ranks is a potential function over positions — regular edges
//     are rank-non-decreasing and special edges rank-increasing, which
//     is exactly the statement that no special edge lies on a cycle.
//   - ja: Order is a topological order of the existential-variable
//     dependency graph.
//   - swa: CriticalFacts/Steps/Rounds snapshot the saturated
//     critical-instance chase; Verify replays it under that ceiling.
type Certificate struct {
	Class string `json:"class"`

	// Ranks (wa): every position of the dependency graph with its rank.
	Ranks []PosRank `json:"ranks,omitempty"`

	// Order (ja): all existential variables in dependency order.
	Order []EVar `json:"order,omitempty"`

	// Critical-instance snapshot (swa).
	CriticalFacts  int `json:"criticalFacts,omitempty"`
	CriticalSteps  int `json:"criticalSteps,omitempty"`
	CriticalRounds int `json:"criticalRounds,omitempty"`
}

// PosRank assigns a rank to one position, in Position.String() form
// ("(Rel,i)", 1-based).
type PosRank struct {
	Pos  string `json:"pos"`
	Rank int    `json:"rank"`
}

// waCertificate renders the rank map deterministically.
func waCertificate(ranks map[classify.Position]int) *Certificate {
	ps := make([]classify.Position, 0, len(ranks))
	for p := range ranks {
		ps = append(ps, p)
	}
	sortPositions(ps)
	c := &Certificate{Class: ClassWA.String()}
	for _, p := range ps {
		c.Ranks = append(c.Ranks, PosRank{Pos: p.String(), Rank: ranks[p]})
	}
	return c
}

func sortPositions(ps []classify.Position) {
	for i := 1; i < len(ps); i++ {
		for j := i; j > 0 && lessPos(ps[j], ps[j-1]); j-- {
			ps[j], ps[j-1] = ps[j-1], ps[j]
		}
	}
}

// Verify checks the certificate against the theory. A nil error means
// the witness proves the claimed class for th.
func (c *Certificate) Verify(th *core.Theory) error {
	if c == nil {
		return fmt.Errorf("termination: nil certificate")
	}
	switch c.Class {
	case ClassWA.String():
		return c.verifyWA(th)
	case ClassJA.String():
		return c.verifyJA(th)
	case ClassSWA.String():
		return c.verifySWA(th)
	}
	return fmt.Errorf("termination: unknown certificate class %q", c.Class)
}

// verifyWA checks that Ranks is a valid potential function for the
// theory's dependency graph.
func (c *Certificate) verifyWA(th *core.Theory) error {
	rank := make(map[string]int, len(c.Ranks))
	for _, pr := range c.Ranks {
		rank[pr.Pos] = pr.Rank
	}
	edges := AnalyzeOpts(th, Options{SkipCritical: true}).Edges
	for _, e := range edges {
		rf, okF := rank[e.From.String()]
		rt, okT := rank[e.To.String()]
		if !okF || !okT {
			return fmt.Errorf("termination: wa certificate misses position %v or %v", e.From, e.To)
		}
		if e.Special {
			if rt < rf+1 {
				return fmt.Errorf("termination: wa certificate violated by special edge %v => %v (rank %d => %d)", e.From, e.To, rf, rt)
			}
		} else if rt < rf {
			return fmt.Errorf("termination: wa certificate violated by edge %v -> %v (rank %d -> %d)", e.From, e.To, rf, rt)
		}
	}
	return nil
}

// verifyJA checks that Order is a topological order of the recomputed
// existential-variable dependency graph.
func (c *Certificate) verifyJA(th *core.Theory) error {
	pos := make(map[EVar]int, len(c.Order))
	for i, v := range c.Order {
		if _, dup := pos[v]; dup {
			return fmt.Errorf("termination: ja certificate lists %v twice", v)
		}
		pos[v] = i
	}
	n := 0
	for i, r := range th.Rules {
		for _, y := range r.Exist {
			n++
			if _, ok := pos[EVar{Rule: i, Var: y.Name}]; !ok {
				return fmt.Errorf("termination: ja certificate misses existential variable r%d.%s", i, y.Name)
			}
		}
	}
	if n != len(c.Order) {
		return fmt.Errorf("termination: ja certificate lists %d variables, theory has %d", len(c.Order), n)
	}
	for _, d := range jaDependencies(th) {
		if pos[d[0]] >= pos[d[1]] {
			return fmt.Errorf("termination: ja certificate order violated by dependency %v => %v", d[0], d[1])
		}
	}
	return nil
}

// verifySWA replays the critical-instance chase under the certified fact
// ceiling (+1 of headroom, so the engine's pre-application cap check
// never fires on already-memoized triggers) and requires saturation.
func (c *Certificate) verifySWA(th *core.Theory) error {
	if c.CriticalFacts <= 0 {
		return fmt.Errorf("termination: swa certificate has no critical fact count")
	}
	rep := criticalCheck(th, &budget.T{MaxFacts: c.CriticalFacts + 1, MaxSteps: c.CriticalSteps + 1})
	if !rep.Terminates {
		return fmt.Errorf("termination: critical-instance chase did not saturate within the certified ceiling (%d facts)", c.CriticalFacts)
	}
	if rep.Facts > c.CriticalFacts {
		return fmt.Errorf("termination: critical-instance chase used %d facts, certificate claims %d", rep.Facts, c.CriticalFacts)
	}
	return nil
}
