package termination

import (
	"strings"
	"testing"

	"guardedrules/internal/budget"
	"guardedrules/internal/chase"
	"guardedrules/internal/database"
	"guardedrules/internal/gen"
	"guardedrules/internal/parser"
)

// The canonical separating examples of the hierarchy.
const (
	jaNotWASrc = `
		A(X) -> exists V. R(X,V).
		R(X,Y), B(Y) -> A(Y).
	`
	swaNotJASrc = `
		A(X) -> exists V. R(X,V).
		R(X,Y) -> R(Y,X).
		R(X,X) -> A(X).
	`
	unknownSrc = `
		Person(X) -> exists Y. hasParent(X,Y).
		hasParent(X,Y) -> Person(Y).
	`
)

func TestClassWAWithBound(t *testing.T) {
	th := parser.MustParseTheory(`
		Publication(X) -> exists K1,K2. Keywords(X,K1,K2).
		Keywords(X,K1,K2) -> hasTopic(X,K1).
	`)
	rep := Analyze(th)
	if rep.Class != ClassWA {
		t.Fatalf("class = %v, want wa", rep.Class)
	}
	if !rep.JointlyAcyclic || rep.Critical != nil {
		t.Errorf("WA must imply JA and skip the critical layer (ja=%v critical=%v)", rep.JointlyAcyclic, rep.Critical)
	}
	if rep.Certificate == nil || rep.Bound == nil {
		t.Fatal("WA verdict must carry a certificate and a bound")
	}
	if err := rep.Certificate.Verify(th); err != nil {
		t.Fatalf("certificate must verify: %v", err)
	}
	d := database.FromAtoms(parser.MustParseFacts(`Publication(p1). Publication(p2).`))
	n0 := d.InternEpoch() + len(th.Constants())
	bound, ok := rep.Bound.Facts(n0, d.Len())
	if !ok {
		t.Fatal("bound must be computable for a small database")
	}
	res, err := chase.RunCertified(th, d, bound, chase.Options{Variant: chase.Restricted})
	if err != nil {
		t.Fatalf("certified run must saturate within the derived bound %d: %v", bound, err)
	}
	if !res.Saturated || res.DB.Len() > bound {
		t.Errorf("saturated=%v len=%d bound=%d", res.Saturated, res.DB.Len(), bound)
	}
}

func TestClassJANotWA(t *testing.T) {
	th := parser.MustParseTheory(jaNotWASrc)
	rep := Analyze(th)
	if rep.WeaklyAcyclic {
		t.Fatal("the B-guarded feedback theory must not be weakly acyclic")
	}
	if rep.Class != ClassJA || !rep.JointlyAcyclic {
		t.Fatalf("class = %v (ja=%v), want ja", rep.Class, rep.JointlyAcyclic)
	}
	if rep.Certificate == nil || len(rep.Certificate.Order) == 0 {
		t.Fatal("JA verdict must carry a topological-order certificate")
	}
	if err := rep.Certificate.Verify(th); err != nil {
		t.Fatalf("certificate must verify: %v", err)
	}
	// The restricted chase indeed terminates, with no fact ceiling.
	d := database.FromAtoms(parser.MustParseFacts(`A(a). B(b). R(a,b).`))
	res, err := chase.RunCertified(th, d, 0, chase.Options{Variant: chase.Restricted})
	if err != nil || !res.Saturated {
		t.Fatalf("restricted chase of a JA theory must saturate: %v", err)
	}
}

func TestClassSWANotJA(t *testing.T) {
	th := parser.MustParseTheory(swaNotJASrc)
	rep := Analyze(th)
	if rep.WeaklyAcyclic || rep.JointlyAcyclic {
		t.Fatalf("the swap/diagonal theory must fail WA and JA (wa=%v ja=%v)", rep.WeaklyAcyclic, rep.JointlyAcyclic)
	}
	if len(rep.JACycle) < 2 {
		t.Fatalf("JA rejection must carry a dependency cycle, got %v", rep.JACycle)
	}
	if rep.JACycle[0] != rep.JACycle[len(rep.JACycle)-1] {
		t.Errorf("JA cycle must repeat its first element last: %v", rep.JACycle)
	}
	if rep.Class != ClassSWA {
		t.Fatalf("class = %v, want swa (critical: %+v)", rep.Class, rep.Critical)
	}
	if rep.Critical == nil || !rep.Critical.Terminates {
		t.Fatalf("critical report must record saturation: %+v", rep.Critical)
	}
	if err := rep.Certificate.Verify(th); err != nil {
		t.Fatalf("certificate must verify: %v", err)
	}
	// A critical-instance certificate covers the oblivious variant too.
	d := database.FromAtoms(parser.MustParseFacts(`A(a). R(b,c).`))
	res, err := chase.RunCertified(th, d, 0, chase.Options{Variant: chase.Oblivious})
	if err != nil || !res.Saturated {
		t.Fatalf("oblivious chase of a critical-certified theory must saturate: %v", err)
	}
}

func TestClassUnknownWithLineageCycle(t *testing.T) {
	th := parser.MustParseTheory(unknownSrc)
	rep := Analyze(th)
	if rep.Class != ClassUnknown || rep.Certificate != nil {
		t.Fatalf("class = %v, want unknown without certificate", rep.Class)
	}
	if rep.Critical == nil || rep.Critical.Terminates {
		t.Fatalf("critical layer must have run and rejected: %+v", rep.Critical)
	}
	cyc := rep.Critical.LineageCycle
	if len(cyc) < 2 || cyc[0] != cyc[len(cyc)-1] {
		t.Fatalf("lineage cycle must close on its origin: %v", cyc)
	}
	if len(rep.Critical.CycleNulls) != len(cyc) {
		t.Errorf("cycle nulls must parallel the origin chain: %v vs %v", rep.Critical.CycleNulls, cyc)
	}
}

func TestCriticalInstanceShape(t *testing.T) {
	th := parser.MustParseTheory(`R(X,Y), S(Y) -> exists Z. R(Y,Z). Q(X) -> S(X).`)
	d := CriticalInstance(th)
	star := "*"
	for _, rel := range []string{"R", "S", "Q"} {
		found := false
		for _, a := range d.All() {
			if a.Relation == rel {
				found = true
				for _, arg := range a.Args {
					if arg.Name != star {
						t.Errorf("%s critical fact must be all-star, got %v", rel, a)
					}
				}
			}
		}
		if !found {
			t.Errorf("critical instance misses relation %s", rel)
		}
	}
}

func TestCertificateTamperingDetected(t *testing.T) {
	waTh := parser.MustParseTheory(`A(X) -> exists V. R(X,V).`)
	waCert := Analyze(waTh).Certificate
	if err := waCert.Verify(waTh); err != nil {
		t.Fatalf("genuine wa certificate must verify: %v", err)
	}
	tampered := *waCert
	tampered.Ranks = append([]PosRank(nil), waCert.Ranks...)
	for i := range tampered.Ranks {
		tampered.Ranks[i].Rank = 0
	}
	if err := tampered.Verify(waTh); err == nil {
		t.Error("flattened ranks must fail verification")
	}
	// A wa certificate for a non-WA theory must be rejected.
	if err := waCert.Verify(parser.MustParseTheory(unknownSrc)); err == nil {
		t.Error("wa certificate must not transfer to the ancestor theory")
	}

	// A theory with a genuine dependency r0.V ⇝ r1.W: the JA order must
	// respect it, and a reversed or truncated order must be rejected.
	depTh := parser.MustParseTheory(`
		A(X) -> exists V. R(X,V).
		R(X,Y) -> exists W. S(Y,W).
	`)
	good := &Certificate{Class: ClassJA.String(), Order: []EVar{{Rule: 0, Var: "V"}, {Rule: 1, Var: "W"}}}
	if err := good.Verify(depTh); err != nil {
		t.Fatalf("dependency-respecting order must verify: %v", err)
	}
	rev := &Certificate{Class: ClassJA.String(), Order: []EVar{{Rule: 1, Var: "W"}, {Rule: 0, Var: "V"}}}
	if err := rev.Verify(depTh); err == nil {
		t.Error("reversed topological order must fail")
	}
	missing := &Certificate{Class: ClassJA.String()}
	if err := missing.Verify(depTh); err == nil {
		t.Error("empty order must fail verification")
	}

	swaTh := parser.MustParseTheory(swaNotJASrc)
	swaCert := Analyze(swaTh).Certificate
	if err := swaCert.Verify(swaTh); err != nil {
		t.Fatalf("genuine swa certificate must verify: %v", err)
	}
	// The same critical snapshot cannot certify a diverging theory.
	if err := swaCert.Verify(parser.MustParseTheory(unknownSrc)); err == nil {
		t.Error("swa certificate must not transfer to the ancestor theory")
	}
}

func TestBoundGrowthAndOverflow(t *testing.T) {
	// The chain theory's max rank grows with n.
	small := Analyze(gen.WAChainTheory(2))
	big := Analyze(gen.WAChainTheory(6))
	if small.Class != ClassWA || big.Class != ClassWA {
		t.Fatalf("chain theories must be WA (%v, %v)", small.Class, big.Class)
	}
	if big.Bound.MaxRank <= small.Bound.MaxRank {
		t.Errorf("rank must grow with chain length: %d vs %d", small.Bound.MaxRank, big.Bound.MaxRank)
	}
	sb, ok := small.Bound.Facts(4, 2)
	if !ok || sb <= 0 {
		t.Fatalf("small bound must be computable, got %d ok=%v", sb, ok)
	}
	// A deep chain over a large domain overflows; that is a fallback
	// signal, not an error.
	deep := Analyze(gen.WAChainTheory(40))
	if _, ok := deep.Bound.Facts(1_000_000, 1_000_000); ok {
		t.Error("a degree-40 bound over a 10^6 domain must overflow the evaluator")
	}
}

func TestBoundIsRealUpperBound(t *testing.T) {
	theories := []string{
		`A(X) -> exists V. R(X,V). R(X,Y) -> S(Y,X). S(X,Y) -> T(X).`,
		`R(X,Y) -> exists V. P2(Y,V). P2(X,Y) -> exists W. P3(Y,W).`,
		`A(X) -> exists V. B(V).`, // empty frontier: fires once
	}
	for ti, src := range theories {
		th := parser.MustParseTheory(src)
		rep := Analyze(th)
		if rep.Class != ClassWA {
			t.Fatalf("theory %d must be WA", ti)
		}
		d := gen.ABDatabase(6, int64(ti))
		n0 := d.InternEpoch() + len(th.Constants())
		bound, ok := rep.Bound.Facts(n0, d.Len())
		if !ok {
			t.Fatalf("theory %d: bound not computable", ti)
		}
		res, err := chase.Run(th, d, chase.Options{Variant: chase.Restricted, MaxFacts: bound + 10})
		if err != nil {
			t.Fatal(err)
		}
		if !res.Saturated {
			t.Fatalf("theory %d: restricted chase must saturate", ti)
		}
		if res.DB.Len() > bound {
			t.Errorf("theory %d: chase reached %d facts, certified bound %d", ti, res.DB.Len(), bound)
		}
	}
}

func TestCriticalBudgetExhaustionIsUnknown(t *testing.T) {
	// Starve the critical chase so neither saturation nor a cycle is
	// reached: the verdict must be unknown/exhausted, never a false
	// certificate.
	th := parser.MustParseTheory(swaNotJASrc)
	rep := AnalyzeOpts(th, Options{CriticalBudget: &budget.T{MaxFacts: 2, MaxSteps: 1}})
	if rep.Class != ClassUnknown {
		t.Fatalf("starved critical check must not certify, got %v", rep.Class)
	}
	if rep.Critical == nil || !rep.Critical.Exhausted {
		t.Fatalf("critical report must record exhaustion: %+v", rep.Critical)
	}
}

func TestSkipCritical(t *testing.T) {
	rep := AnalyzeOpts(parser.MustParseTheory(swaNotJASrc), Options{SkipCritical: true})
	if rep.Critical != nil || rep.Class != ClassUnknown {
		t.Fatalf("SkipCritical must leave the layer unrun (class=%v)", rep.Class)
	}
}

func TestClassStrings(t *testing.T) {
	for c, want := range map[Class]string{ClassWA: "wa", ClassJA: "ja", ClassSWA: "swa", ClassUnknown: "unknown"} {
		if c.String() != want {
			t.Errorf("%d.String() = %q, want %q", int(c), c.String(), want)
		}
	}
	if ClassUnknown.Terminating() || !ClassSWA.Terminating() {
		t.Error("Terminating must separate unknown from the certified classes")
	}
	if !strings.Contains(EVar{Rule: 2, Var: "Y"}.String(), "r2.Y") {
		t.Errorf("EVar rendering: %v", EVar{Rule: 2, Var: "Y"})
	}
}
