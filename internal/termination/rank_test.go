package termination

import (
	"testing"

	"guardedrules/internal/parser"
)

// Regression: a weakly acyclic graph may contain benign (non-special)
// cycles — here T ↔ T2 — and the rank computation must converge to the
// true longest-special-path ranks deterministically. The memoized DFS
// this replaced broke cycles at a map-iteration-order-dependent point
// and intermittently published ranks violating the certificate
// inequality (rank 1 -> 0 across a regular edge), so the certificate's
// own Verify rejected it. 300 repetitions would fail with high
// probability under the old implementation.
func TestRankDeterministicOnBenignCycles(t *testing.T) {
	src := `
		R0(X) -> exists Z. S(X,Z).
		S(X,Y) -> T(Y).
		T(X) -> T2(X).
		T2(X) -> T(X).
		T(X) -> exists W. U(X,W).
	`
	th, err := parser.ParseTheory(src)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 300; i++ {
		rep := Analyze(th)
		if !rep.WeaklyAcyclic {
			t.Fatalf("iter %d: expected WA", i)
		}
		// Longest special path: R0.0 => S.1 -> T.0 => U.1 has 2 special
		// edges; the T ↔ T2 cycle must not perturb it.
		if rep.Bound.MaxRank != 2 {
			t.Fatalf("iter %d: MaxRank = %d, want 2", i, rep.Bound.MaxRank)
		}
		if err := rep.Certificate.Verify(th); err != nil {
			t.Fatalf("iter %d: certificate self-verification failed: %v", i, err)
		}
	}
}
