package termination

import (
	"math"

	"guardedrules/internal/classify"
	"guardedrules/internal/core"
)

// WA fact-bound derivation (after Fagin, Kolaitis, Miller, Popa,
// Theorem 3.9, adapted to this engine). Under weak acyclicity every
// position p has a finite rank: the maximum number of special edges on
// any path of the dependency graph ending at p. A null minted at p via a
// special edge q ⇒ p was created from frontier values at positions of
// rank < rank(p), and the restricted chase mints at most one batch of
// nulls per rule and frontier assignment (once the head is satisfied it
// stays satisfied). Writing T_i for a bound on the distinct values of
// rank ≤ i:
//
//	T_0     = n0 (distinct input terms plus the constants of Σ)
//	T_{i+1} = T_i + Σ_σ |exist(σ)| · T_i^{|frontier(σ)|}
//
// and with r the maximum rank, every value of the chase is counted by
// T_{r+1} — the extra wave absorbs rules with an empty frontier, whose
// single firing mints nulls that can sit at rank-0 positions — so the
// database can never exceed
//
//	inputFacts + Σ_R T_{r+1}^{width(R)} + T_{r+1}   (the last term is ACDom)
//
// facts. The bound certifies the Restricted variant only — the
// fresh-null oblivious chase can mint one null per full trigger tuple,
// not per frontier assignment, and may diverge on WA theories.

// Bound carries the coefficients of the certified WA fact bound, so the
// ceiling for a concrete database is a closed-form evaluation.
type Bound struct {
	// MaxRank is the maximum special-edge rank over all positions.
	MaxRank int `json:"maxRank"`
	// Rules holds the null-mint coefficients of each existential rule.
	Rules []BoundRule `json:"rules,omitempty"`
	// Widths holds the tuple width (arity + annotation arity) of every
	// relation of the theory.
	Widths []int `json:"widths"`
}

// BoundRule is one existential rule's contribution to the value
// recurrence.
type BoundRule struct {
	// Exist is the number of nulls minted per trigger application.
	Exist int `json:"exist"`
	// Frontier is the number of frontier variables: the restricted chase
	// fires the rule at most once per frontier assignment.
	Frontier int `json:"frontier"`
}

// positionRanks computes the rank of every position occurring in the
// graph: the maximum number of special edges on any path into it,
// by fixpoint relaxation (rank(to) ≥ rank(from) + special for every
// edge, iterated to stability). Relaxation handles the benign cycles a
// weakly acyclic graph may contain — every position on a non-special
// cycle converges to the same rank — where a memoized DFS would have to
// break the cycle at an iteration-order-dependent point and could
// publish ranks that violate the certificate inequality. Under WA the
// fixpoint is reached within one pass per distinct rank value; the pass
// cap makes a non-WA input (which the callers never produce) terminate
// with partially relaxed ranks instead of looping.
func positionRanks(edges []Edge) map[classify.Position]int {
	rank := map[classify.Position]int{}
	for _, e := range edges {
		rank[e.From] = 0
		rank[e.To] = 0
	}
	for pass := 0; pass <= len(rank); pass++ {
		changed := false
		for _, e := range edges {
			need := rank[e.From]
			if e.Special {
				need++
			}
			if rank[e.To] < need {
				rank[e.To] = need
				changed = true
			}
		}
		if !changed {
			break
		}
	}
	return rank
}

// deriveBound assembles the fact-bound coefficients of a weakly acyclic
// theory from its position ranks.
func deriveBound(th *core.Theory, ranks map[classify.Position]int) *Bound {
	b := &Bound{}
	for _, r := range ranks {
		if r > b.MaxRank {
			b.MaxRank = r
		}
	}
	for _, r := range th.Rules {
		if len(r.Exist) == 0 {
			continue
		}
		b.Rules = append(b.Rules, BoundRule{Exist: len(r.Exist), Frontier: len(r.FVars())})
	}
	for _, rk := range th.Relations() {
		if rk.Name == core.ACDom {
			continue
		}
		b.Widths = append(b.Widths, rk.Arity+rk.AnnArity)
	}
	return b
}

// Facts evaluates the certified ceiling for a database with n0 distinct
// terms (input terms plus theory constants) and inputFacts input facts.
// ok is false when the evaluation overflows — callers then fall back to
// a default budget; a certificate that cannot be priced is not wrong,
// merely not exact.
func (b *Bound) Facts(n0, inputFacts int) (bound int, ok bool) {
	if b == nil {
		return 0, false
	}
	if n0 < 1 {
		n0 = 1
	}
	t := n0
	// MaxRank+1 waves: see the package comment (empty-frontier rules).
	for i := 0; i <= b.MaxRank; i++ {
		minted := 0
		for _, r := range b.Rules {
			p, ok := powChecked(t, r.Frontier)
			if !ok {
				return 0, false
			}
			m, ok := mulChecked(r.Exist, p)
			if !ok {
				return 0, false
			}
			minted, ok = addChecked(minted, m)
			if !ok {
				return 0, false
			}
		}
		var okAdd bool
		t, okAdd = addChecked(t, minted)
		if !okAdd {
			return 0, false
		}
	}
	total := inputFacts
	for _, w := range b.Widths {
		p, ok := powChecked(t, w)
		if !ok {
			return 0, false
		}
		total, ok = addChecked(total, p)
		if !ok {
			return 0, false
		}
	}
	// ACDom holds one fact per active-domain term.
	total, ok = addChecked(total, t)
	if !ok {
		return 0, false
	}
	return total, true
}

const boundCeiling = math.MaxInt64 / 4

func addChecked(a, b int) (int, bool) {
	s := a + b
	if s < a || s > boundCeiling {
		return 0, false
	}
	return s, true
}

func mulChecked(a, b int) (int, bool) {
	if a == 0 || b == 0 {
		return 0, true
	}
	p := a * b
	if p/a != b || p > boundCeiling {
		return 0, false
	}
	return p, true
}

func powChecked(base, exp int) (int, bool) {
	p := 1
	for i := 0; i < exp; i++ {
		var ok bool
		p, ok = mulChecked(p, base)
		if !ok {
			return 0, false
		}
	}
	return p, true
}
