package termination

import (
	"bytes"
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"testing"

	"guardedrules/internal/parser"
)

var updateClasses = flag.Bool("update-classes", false, "rewrite testdata/termination_classes.golden")

// TestSelfcheckGoldenClasses runs the analyzer over every shipped
// testdata theory and compares the certified class per file against
// testdata/termination_classes.golden — the CI termination-selfcheck
// job fails on any verdict regression. Regenerate with:
//
//	go test ./internal/termination -run Selfcheck -update-classes
func TestSelfcheckGoldenClasses(t *testing.T) {
	paths, err := filepath.Glob("../../testdata/*.rules")
	if err != nil {
		t.Fatal(err)
	}
	nested, err := filepath.Glob("../../testdata/*/*.rules")
	if err != nil {
		t.Fatal(err)
	}
	paths = append(paths, nested...)
	sort.Strings(paths)
	if len(paths) == 0 {
		t.Fatal("no fixtures found under testdata/")
	}
	var buf bytes.Buffer
	for _, path := range paths {
		src, err := os.ReadFile(path)
		if err != nil {
			t.Fatal(err)
		}
		prog, err := parser.ParseLenient(string(src))
		if err != nil {
			t.Fatalf("%s: parse: %v", path, err)
		}
		rep := Analyze(prog.Theory)
		if rep.Certificate != nil {
			if err := rep.Certificate.Verify(prog.Theory); err != nil {
				t.Errorf("%s: shipped certificate fails verification: %v", path, err)
			}
		}
		rel, err := filepath.Rel("../../testdata", path)
		if err != nil {
			t.Fatal(err)
		}
		fmt.Fprintf(&buf, "%s: %s\n", filepath.ToSlash(rel), rep.Class)
	}
	golden := "../../testdata/termination_classes.golden"
	if *updateClasses {
		if err := os.WriteFile(golden, buf.Bytes(), 0o644); err != nil {
			t.Fatal(err)
		}
		return
	}
	want, err := os.ReadFile(golden)
	if err != nil {
		t.Fatalf("missing golden class file (run with -update-classes): %v", err)
	}
	if !bytes.Equal(buf.Bytes(), want) {
		t.Errorf("termination classes drifted from %s:\n--- got ---\n%s--- want ---\n%s",
			golden, buf.Bytes(), want)
	}
}
