package termination

import (
	"testing"

	"guardedrules/internal/parser"
)

func TestScratchRankBug(t *testing.T) {
	src := `
R0(X) -> exists Z. S(X,Z).
S(X,Y) -> T(Y).
T(X) -> T2(X).
T2(X) -> T(X).
T(X) -> exists W. U(X,W).
`
	th, err := parser.ParseTheory(src)
	if err != nil {
		t.Fatal(err)
	}
	failVerify, failRank := 0, 0
	var firstErr error
	for i := 0; i < 300; i++ {
		rep := Analyze(th)
		if !rep.WeaklyAcyclic {
			t.Fatalf("iter %d: expected WA", i)
		}
		if rep.Bound.MaxRank != 2 {
			failRank++
		}
		if err := rep.Certificate.Verify(th); err != nil {
			failVerify++
			if firstErr == nil {
				firstErr = err
			}
		}
	}
	t.Fatalf("verify failures: %d/300, rank failures: %d/300, first: %v", failVerify, failRank, firstErr)
}
