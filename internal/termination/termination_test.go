package termination

import (
	"fmt"
	"math/rand"
	"testing"

	"guardedrules/internal/chase"
	"guardedrules/internal/database"
	"guardedrules/internal/gen"
	"guardedrules/internal/parser"
)

func TestSigmaPIsWeaklyAcyclic(t *testing.T) {
	th := parser.MustParseTheory(`
		Publication(X) -> exists K1,K2. Keywords(X,K1,K2).
		Keywords(X,K1,K2) -> hasTopic(X,K1).
		hasTopic(X,Z), hasAuthor(X,U), hasAuthor(Y,U),
		  hasTopic(Y,Z2), Scientific(Z2), citedIn(Y,X) -> Scientific(Z).
		hasAuthor(X,Y), hasTopic(X,Z), Scientific(Z) -> Q(Y).
	`)
	rep := Analyze(th)
	if !rep.WeaklyAcyclic {
		t.Errorf("Σp must be weakly acyclic (witness %v)", rep.Witness)
	}
	if len(rep.Edges) == 0 {
		t.Error("dependency graph must have edges")
	}
}

func TestInfiniteChaseDetected(t *testing.T) {
	th := parser.MustParseTheory(`
		Person(X) -> exists Y. hasParent(X,Y).
		hasParent(X,Y) -> Person(Y).
	`)
	rep := Analyze(th)
	if rep.WeaklyAcyclic {
		t.Error("the ancestor theory must not be weakly acyclic")
	}
	if rep.Witness == nil || !rep.Witness.Special {
		t.Errorf("witness must be a special edge: %v", rep.Witness)
	}
}

func TestDatalogAlwaysWeaklyAcyclic(t *testing.T) {
	th := parser.MustParseTheory(`
		E(X,Y) -> T(X,Y).
		T(X,Y), T(Y,Z) -> T(X,Z).
	`)
	if !IsWeaklyAcyclic(th) {
		t.Error("Datalog has no special edges, hence weakly acyclic")
	}
}

func TestSelfFeedingExistential(t *testing.T) {
	// R feeds its own existential position directly.
	th := parser.MustParseTheory(`R(X,Y) -> exists Z. R(Y,Z).`)
	if IsWeaklyAcyclic(th) {
		t.Error("self-feeding existential rule must be rejected")
	}
	// Feeding a different relation breaks the cycle.
	th2 := parser.MustParseTheory(`R(X,Y) -> exists Z. S(Y,Z).`)
	if !IsWeaklyAcyclic(th2) {
		t.Error("acyclic invention must be accepted")
	}
}

// Property: on weakly acyclic random theories, the restricted chase
// saturates within the fact budget (termination guarantee); the converse
// (non-WA implies infinite) is not claimed, so only this direction is
// tested.
func TestWeaklyAcyclicChaseTerminates(t *testing.T) {
	rng := rand.New(rand.NewSource(23))
	tested := 0
	for trial := 0; trial < 40 && tested < 15; trial++ {
		th := gen.RandomFrontierGuardedTheory(gen.FGTheoryOptions{Rules: 5, Seed: rng.Int63()})
		if !IsWeaklyAcyclic(th) {
			continue
		}
		tested++
		d := gen.ABDatabase(5, int64(trial))
		res, err := chase.Run(th, d, chase.Options{Variant: chase.Restricted, MaxFacts: 200_000, MaxRounds: 5_000})
		if err != nil {
			t.Fatal(err)
		}
		if !res.Saturated {
			t.Errorf("trial %d: weakly acyclic chase did not saturate:\n%v", trial, th)
		}
	}
	if tested == 0 {
		t.Skip("no weakly acyclic samples generated")
	}
}

func TestWitnessOnConcreteCycle(t *testing.T) {
	th := parser.MustParseTheory(`A(X) -> exists Y. R(X,Y). R(X,Y) -> A(Y).`)
	rep := Analyze(th)
	if rep.WeaklyAcyclic {
		t.Fatal("must be cyclic")
	}
	// The special edge (A,1) ⇒ (R,2) lies on the cycle through (A,1).
	w := rep.Witness
	if w.From.Rel.Name != "A" || w.To.Rel.Name != "R" {
		t.Errorf("unexpected witness %v", w)
	}
	// And indeed the chase is infinite: the fact budget trips.
	d := database.FromAtoms(parser.MustParseFacts(`A(a).`))
	res, err := chase.Run(th, d, chase.Options{Variant: chase.Restricted, MaxFacts: 100})
	if err != nil {
		t.Fatal(err)
	}
	if res.Saturated {
		t.Error("chase of the cyclic theory must not saturate")
	}
	_ = fmt.Sprint(res.Steps)
}
