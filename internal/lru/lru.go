// Package lru provides a minimal least-recently-used cache keyed by
// strings. It is not safe for concurrent use; callers hold their own
// lock.
package lru

import "container/list"

// Cache maps string keys to values, evicting the least recently used
// entry beyond its capacity.
type Cache[V any] struct {
	capacity int
	ll       *list.List
	items    map[string]*list.Element

	// OnEvict, when set, is called for every entry Add evicts, before
	// Add returns — synchronously, under whatever lock the caller holds.
	// Values owning external resources (open files, streams) use it to
	// guarantee teardown on every eviction path; a hook that must take
	// other locks should defer the real work (the victim is also
	// returned by Add for exactly that).
	OnEvict func(key string, value V)
}

type entry[V any] struct {
	key string
	val V
}

// New builds an empty cache holding at most capacity entries (minimum 1).
func New[V any](capacity int) *Cache[V] {
	if capacity < 1 {
		capacity = 1
	}
	return &Cache[V]{
		capacity: capacity,
		ll:       list.New(),
		items:    make(map[string]*list.Element),
	}
}

// Get returns the value under key and marks it most recently used.
func (c *Cache[V]) Get(key string) (V, bool) {
	if el, ok := c.items[key]; ok {
		c.ll.MoveToFront(el)
		return el.Value.(*entry[V]).val, true
	}
	var zero V
	return zero, false
}

// Add inserts (or refreshes) the value under key and returns the entry
// evicted to stay within capacity, if any — key and value both, so
// callers owning stateful values (open streams, subscriber lists) can
// tear the victim down instead of leaking it as an orphan.
func (c *Cache[V]) Add(key string, v V) (evictedKey string, evictedVal V, evicted bool) {
	var zero V
	if el, ok := c.items[key]; ok {
		c.ll.MoveToFront(el)
		el.Value.(*entry[V]).val = v
		return "", zero, false
	}
	c.items[key] = c.ll.PushFront(&entry[V]{key: key, val: v})
	if c.ll.Len() <= c.capacity {
		return "", zero, false
	}
	oldest := c.ll.Back()
	c.ll.Remove(oldest)
	ent := oldest.Value.(*entry[V])
	delete(c.items, ent.key)
	if c.OnEvict != nil {
		c.OnEvict(ent.key, ent.val)
	}
	return ent.key, ent.val, true
}

// Remove drops the entry under key, returning its value. Removal is
// explicit, not an eviction: OnEvict is not called.
func (c *Cache[V]) Remove(key string) (V, bool) {
	if el, ok := c.items[key]; ok {
		c.ll.Remove(el)
		delete(c.items, key)
		return el.Value.(*entry[V]).val, true
	}
	var zero V
	return zero, false
}

// Contains reports whether key is cached, without touching recency.
func (c *Cache[V]) Contains(key string) bool {
	_, ok := c.items[key]
	return ok
}

// Len is the number of cached entries.
func (c *Cache[V]) Len() int { return c.ll.Len() }

// Keys lists the cached keys, most recently used first.
func (c *Cache[V]) Keys() []string {
	out := make([]string, 0, c.ll.Len())
	for el := c.ll.Front(); el != nil; el = el.Next() {
		out = append(out, el.Value.(*entry[V]).key)
	}
	return out
}
