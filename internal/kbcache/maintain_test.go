package kbcache

import (
	"context"
	"errors"
	"fmt"
	"testing"

	"guardedrules/internal/database"
	"guardedrules/internal/gen"
	"guardedrules/internal/parser"
)

// A maintained CQ tracks the exact answers of AnswerCQ across mutation
// batches, and its deltas accumulate to the recomputed answer set.
func TestMaintainCQTracksRecompute(t *testing.T) {
	s := NewStore(Config{})
	ckb := mustRegister(t, s, tcSource)
	q := mustCQ(t, "T(X,Y) -> Ans(X,Y).")
	base := gen.Path(5)

	mq, err := ckb.MaintainCQ(context.Background(), q, base, QueryOptions{})
	if err != nil {
		t.Fatalf("MaintainCQ: %v", err)
	}

	// The shadow base mirrors every batch; after each Apply the handle's
	// answers must equal a fresh AnswerCQ over the shadow.
	shadow := database.New()
	for _, f := range base.UserFacts() {
		shadow.Add(f)
	}
	check := func() {
		t.Helper()
		want, err := ckb.AnswerCQ(context.Background(), q, shadow, QueryOptions{})
		if err != nil {
			t.Fatalf("AnswerCQ: %v", err)
		}
		got := mq.Answers()
		if fmt.Sprint(got) != fmt.Sprint(want.Answers) {
			t.Fatalf("maintained answers %v, recompute %v", got, want.Answers)
		}
	}
	check()

	add := parser.MustParseFacts(`E(v4, v0).`)
	d, err := mq.Apply(add, nil, QueryOptions{})
	if err != nil {
		t.Fatalf("Apply: %v", err)
	}
	for _, f := range add {
		shadow.Add(f)
	}
	if len(d.Added) == 0 || len(d.Removed) != 0 {
		t.Fatalf("cycle-closing insert: delta %+v", d)
	}
	check()

	del := parser.MustParseFacts(`E(v2, v3).`)
	d, err = mq.Apply(nil, del, QueryOptions{})
	if err != nil {
		t.Fatalf("Apply: %v", err)
	}
	shadow.Retract(del[0])
	if len(d.Removed) == 0 {
		t.Fatalf("cut edge: delta %+v", d)
	}
	check()

	if got := s.Metrics().Snapshot(); got["maintained_handles"] != 1 || got["maintain_batches"] != 2 {
		t.Fatalf("maintenance counters: handles=%d batches=%d", got["maintained_handles"], got["maintain_batches"])
	}
}

// A CQ whose plan falls back to a per-query bounded chase is rejected
// at registration with the typed error — classified once, via the same
// PlanInfo probe the admission tier uses.
func TestMaintainCQRejectsChasePlan(t *testing.T) {
	s := NewStore(Config{})
	ckb := mustRegister(t, s, wgSource)
	q := mustCQ(t, "S(Y,Z) -> Ans(Y,Z).")
	base := database.FromAtoms(parser.MustParseFacts("P(a)."))

	_, err := ckb.MaintainCQ(context.Background(), q, base, QueryOptions{})
	if !errors.Is(err, ErrNotMaintainable) {
		t.Fatalf("chase-plan registration: err = %v, want ErrNotMaintainable", err)
	}
	// The probe agrees: the plan is cached and chases per call.
	if cached, chasePerCall := ckb.PlanInfo(CQKey(q)); !cached || !chasePerCall {
		t.Fatalf("PlanInfo = (%v, %v), want cached chase plan", cached, chasePerCall)
	}
	if got := s.Metrics().Snapshot()["maintain_rejected"]; got != 1 {
		t.Fatalf("maintain_rejected = %d, want 1", got)
	}
}
