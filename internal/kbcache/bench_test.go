package kbcache

import (
	"context"
	"testing"

	"guardedrules/internal/gen"
	"guardedrules/internal/kb"
)

// The serving-layer acceptance benchmark: repeat queries against one
// Store amortize all pay-once work (parse, lint, classify, stratify,
// compile, CQ plan construction) and must beat compile-per-call by a
// wide margin on the E11 transitive-closure workload.

const benchCQ = "T(X,Y) -> Ans(X,Y)."

// BenchmarkColdQuery pays the full pipeline on every call: a fresh
// Store per iteration means Register recompiles and AnswerCQ rebuilds
// the plan from scratch.
func BenchmarkColdQuery(b *testing.B) {
	d := gen.Path(2)
	q, err := kb.ParseCQ(benchCQ)
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		s := NewStore(Config{})
		ckb, _, err := s.Register(context.Background(), tcSource)
		if err != nil {
			b.Fatal(err)
		}
		res, err := ckb.AnswerCQ(context.Background(), q, d, QueryOptions{})
		if err != nil {
			b.Fatal(err)
		}
		if len(res.Answers) == 0 {
			b.Fatal("no answers")
		}
	}
}

// BenchmarkWarmQuery registers once and re-answers the same CQ shape:
// every iteration is a plan-cache hit, leaving only id-space evaluation.
func BenchmarkWarmQuery(b *testing.B) {
	d := gen.Path(2)
	q, err := kb.ParseCQ(benchCQ)
	if err != nil {
		b.Fatal(err)
	}
	s := NewStore(Config{})
	ckb, _, err := s.Register(context.Background(), tcSource)
	if err != nil {
		b.Fatal(err)
	}
	if _, err := ckb.AnswerCQ(context.Background(), q, d, QueryOptions{}); err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		res, err := ckb.AnswerCQ(context.Background(), q, d, QueryOptions{})
		if err != nil {
			b.Fatal(err)
		}
		if !res.PlanHit || len(res.Answers) == 0 {
			b.Fatal("warm path must hit the plan cache")
		}
	}
}

// BenchmarkColdQueryTranslated/BenchmarkWarmQueryTranslated show the
// same split on a nearly-guarded theory, where the cold path also pays
// the saturation-based Datalog translation (Theorem 3 / Prop. 6).
func BenchmarkColdQueryTranslated(b *testing.B) {
	d := e5Facts(2)
	q, err := kb.ParseCQ("B(X) -> Ans(X).")
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		s := NewStore(Config{})
		ckb, _, err := s.Register(context.Background(), e5Source)
		if err != nil {
			b.Fatal(err)
		}
		if _, err := ckb.AnswerCQ(context.Background(), q, d, QueryOptions{}); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkWarmQueryTranslated(b *testing.B) {
	d := e5Facts(2)
	q, err := kb.ParseCQ("B(X) -> Ans(X).")
	if err != nil {
		b.Fatal(err)
	}
	s := NewStore(Config{})
	ckb, _, err := s.Register(context.Background(), e5Source)
	if err != nil {
		b.Fatal(err)
	}
	if _, err := ckb.AnswerCQ(context.Background(), q, d, QueryOptions{}); err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		res, err := ckb.AnswerCQ(context.Background(), q, d, QueryOptions{})
		if err != nil {
			b.Fatal(err)
		}
		if !res.PlanHit {
			b.Fatal("warm path must hit the plan cache")
		}
	}
}
