package kbcache

import (
	"sync/atomic"

	"guardedrules/internal/datalog"
)

// Metrics counts the cache and query activity of a Store. All counters
// are atomic; a Store and every CompiledKB it serves share one instance.
type Metrics struct {
	// Compile-path counters (Store.Register).
	CompileHits   atomic.Int64 // served from the KB cache
	CompileMisses atomic.Int64 // actually compiled
	CompileDedup  atomic.Int64 // waited on a concurrent identical compile
	CompileErrors atomic.Int64 // compilation failed
	KBEvictions   atomic.Int64 // compiled KBs dropped by the LRU

	// Plan-path counters (per-KB query plan cache).
	PlanHits      atomic.Int64 // query reused a cached plan
	PlanMisses    atomic.Int64 // query built a fresh plan
	PlanEvictions atomic.Int64 // plans dropped by the LRU
	Translations  atomic.Int64 // rewrite/saturation chains actually run

	// Query counters.
	Queries         atomic.Int64 // answer requests served
	QueryErrors     atomic.Int64 // requests that failed outright
	BudgetExhausted atomic.Int64 // requests truncated by a budget ceiling

	// Join holds the Datalog engine's join-planner counters (plans
	// computed per round, hash tables built, probe steps planned) for
	// every evaluation this store served.
	Join datalog.JoinStats
}

// Snapshot renders the counters as a flat map, for /metrics endpoints
// and tests.
func (m *Metrics) Snapshot() map[string]int64 {
	return map[string]int64{
		"compile_hits":     m.CompileHits.Load(),
		"compile_misses":   m.CompileMisses.Load(),
		"compile_dedup":    m.CompileDedup.Load(),
		"compile_errors":   m.CompileErrors.Load(),
		"kb_evictions":     m.KBEvictions.Load(),
		"plan_hits":        m.PlanHits.Load(),
		"plan_misses":      m.PlanMisses.Load(),
		"plan_evictions":   m.PlanEvictions.Load(),
		"translations":     m.Translations.Load(),
		"queries":          m.Queries.Load(),
		"query_errors":     m.QueryErrors.Load(),
		"budget_exhausted": m.BudgetExhausted.Load(),
		"join_round_plans": m.Join.RoundPlans.Load(),
		"join_hash_tables": m.Join.HashTables.Load(),
		"join_probe_steps": m.Join.ProbeSteps.Load(),
	}
}
