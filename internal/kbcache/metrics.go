package kbcache

import (
	"sync/atomic"

	"guardedrules/internal/datalog"
	"guardedrules/internal/termination"
)

// Metrics counts the cache and query activity of a Store. All counters
// are atomic; a Store and every CompiledKB it serves share one instance.
type Metrics struct {
	// Compile-path counters (Store.Register).
	CompileHits   atomic.Int64 // served from the KB cache
	CompileMisses atomic.Int64 // actually compiled
	CompileDedup  atomic.Int64 // waited on a concurrent identical compile
	CompileErrors atomic.Int64 // compilation failed
	KBEvictions   atomic.Int64 // compiled KBs dropped by the LRU
	ArtifactLoads atomic.Int64 // KBs restored from persisted artifacts (saturation skipped)

	// Plan-path counters (per-KB query plan cache).
	PlanHits      atomic.Int64 // query reused a cached plan
	PlanMisses    atomic.Int64 // query built a fresh plan
	PlanEvictions atomic.Int64 // plans dropped by the LRU
	Translations  atomic.Int64 // rewrite/saturation chains actually run

	// Query counters.
	Queries         atomic.Int64 // answer requests served
	QueryErrors     atomic.Int64 // requests that failed outright
	BudgetExhausted atomic.Int64 // requests truncated by a budget ceiling
	CertifiedRuns   atomic.Int64 // budget-free chases under a termination certificate

	// Termination-class counters: compiled KBs by the tightest class the
	// analyzer certified at registration.
	TerminationWA      atomic.Int64
	TerminationJA      atomic.Int64
	TerminationSWA     atomic.Int64
	TerminationUnknown atomic.Int64

	// Maintenance counters (MaintainCQ / MaintainedQuery.Apply).
	MaintainedHandles atomic.Int64 // live-query handles successfully registered
	MaintainBatches   atomic.Int64 // mutation batches folded into maintained fixpoints
	MaintainRejected  atomic.Int64 // registrations refused (unmaintainable plan or build error)

	// Join holds the Datalog engine's join-planner counters (plans
	// computed per round, hash tables built, probe steps planned) for
	// every evaluation this store served.
	Join datalog.JoinStats
}

// countTermination buckets a freshly compiled KB by certified class.
func (m *Metrics) countTermination(c termination.Class) {
	switch c {
	case termination.ClassWA:
		m.TerminationWA.Add(1)
	case termination.ClassJA:
		m.TerminationJA.Add(1)
	case termination.ClassSWA:
		m.TerminationSWA.Add(1)
	default:
		m.TerminationUnknown.Add(1)
	}
}

// Snapshot renders the counters as a flat map, for /metrics endpoints
// and tests.
func (m *Metrics) Snapshot() map[string]int64 {
	return map[string]int64{
		"compile_hits":              m.CompileHits.Load(),
		"compile_misses":            m.CompileMisses.Load(),
		"compile_dedup":             m.CompileDedup.Load(),
		"compile_errors":            m.CompileErrors.Load(),
		"kb_evictions":              m.KBEvictions.Load(),
		"artifact_loads":            m.ArtifactLoads.Load(),
		"plan_hits":                 m.PlanHits.Load(),
		"plan_misses":               m.PlanMisses.Load(),
		"plan_evictions":            m.PlanEvictions.Load(),
		"translations":              m.Translations.Load(),
		"queries":                   m.Queries.Load(),
		"query_errors":              m.QueryErrors.Load(),
		"budget_exhausted":          m.BudgetExhausted.Load(),
		"certified_runs":            m.CertifiedRuns.Load(),
		"termination_class_wa":      m.TerminationWA.Load(),
		"termination_class_ja":      m.TerminationJA.Load(),
		"termination_class_swa":     m.TerminationSWA.Load(),
		"termination_class_unknown": m.TerminationUnknown.Load(),
		"maintained_handles":        m.MaintainedHandles.Load(),
		"maintain_batches":          m.MaintainBatches.Load(),
		"maintain_rejected":         m.MaintainRejected.Load(),
		"join_round_plans":          m.Join.RoundPlans.Load(),
		"join_hash_tables":          m.Join.HashTables.Load(),
		"join_probe_steps":          m.Join.ProbeSteps.Load(),
	}
}
