package kbcache

import (
	"context"
	"encoding/json"
	"testing"

	"guardedrules/internal/datalog"
)

// A persisted artifact restores a translated KB without re-running the
// saturation, and the restored KB answers exactly like the original.
func TestArtifactRoundTrip(t *testing.T) {
	orig := NewStore(Config{})
	ckb := mustRegister(t, orig, e5Source)
	if ckb.Mode != ModeTranslated {
		t.Fatalf("fixture compiled in mode %v, want translated", ckb.Mode)
	}

	a := ckb.Artifact()
	if a.ID != ckb.ID || a.Translated == "" || a.Mode != "translated" {
		t.Fatalf("artifact incomplete: %+v", a)
	}
	// The durable form is JSON; round-trip through it.
	blob, err := json.Marshal(a)
	if err != nil {
		t.Fatal(err)
	}
	var back Artifact
	if err := json.Unmarshal(blob, &back); err != nil {
		t.Fatal(err)
	}

	fresh := NewStore(Config{})
	rkb, cached, err := fresh.RegisterArtifact(context.Background(), back)
	if err != nil {
		t.Fatal(err)
	}
	if cached {
		t.Fatal("first load into an empty store cannot be a cache hit")
	}
	if rkb.Mode != ModeTranslated || rkb.Program() == nil {
		t.Fatalf("restored KB: mode %v, program %v", rkb.Mode, rkb.Program())
	}
	if got := fresh.Metrics().Translations.Load(); got != 0 {
		t.Fatalf("restore ran %d translations, want 0 (that is the point)", got)
	}
	if got := fresh.Metrics().ArtifactLoads.Load(); got != 1 {
		t.Fatalf("artifact loads = %d, want 1", got)
	}
	if len(rkb.Chain) != len(ckb.Chain) {
		t.Fatalf("chain not preserved: %v vs %v", rkb.Chain, ckb.Chain)
	}

	d := e5Facts(4)
	q := mustCQ(t, "Linked(X,Y) -> Ans(X,Y).")
	want, err := ckb.AnswerCQ(context.Background(), q, d, QueryOptions{})
	if err != nil {
		t.Fatal(err)
	}
	got, err := rkb.AnswerCQ(context.Background(), q, d.Clone(), QueryOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if !got.Exact {
		t.Fatal("restored translated KB must answer exactly")
	}
	if same, diff := datalog.SameAnswers(want.Answers, got.Answers); !same {
		t.Fatalf("restored KB answers diverge: %s", diff)
	}

	// Loading the same artifact again is a cache hit.
	rkb2, cached, err := fresh.RegisterArtifact(context.Background(), back)
	if err != nil {
		t.Fatal(err)
	}
	if !cached || rkb2 != rkb {
		t.Fatal("second artifact load must hit the KB cache")
	}
}

// Artifacts that fail validation are rejected; artifacts of cheap modes
// just recompile from source.
func TestArtifactValidation(t *testing.T) {
	s := NewStore(Config{})

	// Wrong format version.
	if _, _, err := s.RegisterArtifact(context.Background(), Artifact{FormatVersion: 99}); err == nil {
		t.Fatal("format-version mismatch must be rejected")
	}

	// ID/source hash mismatch.
	bad := Artifact{FormatVersion: ArtifactFormatVersion, ID: HashSource("other"), Source: tcSource, Mode: "datalog"}
	if _, _, err := s.RegisterArtifact(context.Background(), bad); err == nil {
		t.Fatal("id/source mismatch must be rejected")
	}

	// A garbage translation fails cleanly and is not cached.
	garbage := Artifact{
		FormatVersion: ArtifactFormatVersion,
		ID:            HashSource(e5Source),
		Source:        e5Source,
		Mode:          "translated",
		Translated:    "not a theory ((",
	}
	if _, _, err := s.RegisterArtifact(context.Background(), garbage); err == nil {
		t.Fatal("unparseable translation must be rejected")
	}
	if _, ok := s.Get(HashSource(e5Source)); ok {
		t.Fatal("a failed artifact load must not be cached")
	}

	// Datalog-mode artifact: recompiles from source, still works.
	dl := Artifact{FormatVersion: ArtifactFormatVersion, ID: HashSource(tcSource), Source: tcSource, Mode: "datalog"}
	kb, _, err := s.RegisterArtifact(context.Background(), dl)
	if err != nil {
		t.Fatal(err)
	}
	if kb.Mode != ModeDatalog || kb.Program() == nil {
		t.Fatalf("datalog artifact restored in mode %v", kb.Mode)
	}

	// A datalog-mode KB's artifact has no translation payload.
	if a := kb.Artifact(); a.Translated != "" {
		t.Fatalf("datalog artifact must not carry a translation: %q", a.Translated)
	}
}
