// Package kbcache serves compiled knowledge bases: it turns theory
// sources into immutable CompiledKB artifacts — parse, lint,
// classification, and the fragment-appropriate translation chain of the
// paper, computed once — and caches per-query evaluation plans so that
// repeat queries skip every compilation step.
//
// The split mirrors the paper's complexity analysis: everything whose
// cost depends only on Σ (classification, rew(Σ) of Theorems 1–2, dat(Σ)
// of Theorem 3) is combined-complexity work and is paid once at
// registration; answering a query against a compiled artifact is the
// data-complexity part and is all that repeat calls pay.
//
// A Store deduplicates concurrent registrations of the same source
// (singleflight keyed by the source hash), bounds the number of live
// artifacts with an LRU, and exposes atomic Metrics so callers can
// observe hit rates — in particular, that the second answer of an
// identical query performs zero re-translation work.
package kbcache

import (
	"context"
	"crypto/sha256"
	"encoding/hex"
	"errors"
	"fmt"
	"sync"
	"time"

	"guardedrules/internal/budget"
	"guardedrules/internal/classify"
	"guardedrules/internal/core"
	"guardedrules/internal/datalog"
	"guardedrules/internal/lint"
	"guardedrules/internal/lru"
	"guardedrules/internal/normalize"
	"guardedrules/internal/parser"
	"guardedrules/internal/rewrite"
	"guardedrules/internal/saturate"
	"guardedrules/internal/termination"
)

// Mode says how a compiled KB answers queries.
type Mode int

const (
	// ModeDatalog: the source is plain (stratified) Datalog; it is
	// compiled directly and every answer is exact.
	ModeDatalog Mode = iota
	// ModeTranslated: the source is an existential theory inside the
	// translatable fragments (nearly guarded, or (nearly)
	// frontier-guarded); queries run against dat(Σ) artifacts
	// (Theorems 1 and 3), so answers are exact.
	ModeTranslated
	// ModeChase: no complete Datalog translation applies (weakly
	// (frontier-)guarded or beyond, or a translation was aborted);
	// queries run a bounded chase per call — sound always, exact exactly
	// when the chase saturates.
	ModeChase
	// ModeCertified: like ModeChase, but a termination certificate
	// (internal/termination) proves the chase finite, so default queries
	// run it to saturation with no fact ceiling and every answer is
	// exact.
	ModeCertified
)

func (m Mode) String() string {
	switch m {
	case ModeDatalog:
		return "datalog"
	case ModeTranslated:
		return "translated"
	case ModeChase:
		return "chase"
	case ModeCertified:
		return "certified"
	default:
		return fmt.Sprintf("Mode(%d)", int(m))
	}
}

// Config bounds a Store.
type Config struct {
	// MaxKBs caps the number of live compiled KBs (LRU; 0 means 32).
	MaxKBs int
	// MaxPlansPerKB caps each KB's query-plan cache (LRU; 0 means 64).
	MaxPlansPerKB int
	// CompileTimeout bounds each compilation (translations included);
	// 0 means none.
	CompileTimeout time.Duration
	// MaxRules caps the rules of intermediate translation artifacts;
	// 0 means the engine defaults. A translation that exhausts it falls
	// back to ModeChase instead of failing registration.
	MaxRules int
	// DefaultChaseDepth bounds chase-mode queries that arrive without an
	// explicit depth or budget, so an infinite chase cannot hang the
	// store (0 means 8).
	DefaultChaseDepth int
}

func (c Config) maxKBs() int {
	if c.MaxKBs <= 0 {
		return 32
	}
	return c.MaxKBs
}

func (c Config) maxPlans() int {
	if c.MaxPlansPerKB <= 0 {
		return 64
	}
	return c.MaxPlansPerKB
}

func (c Config) chaseDepth() int {
	if c.DefaultChaseDepth <= 0 {
		return 8
	}
	return c.DefaultChaseDepth
}

// Store caches compiled KBs by the hash of their source.
type Store struct {
	cfg     Config
	metrics *Metrics

	mu     sync.Mutex
	kbs    *lru.Cache[*CompiledKB]
	flight flight[*CompiledKB]
}

// NewStore builds an empty store.
func NewStore(cfg Config) *Store {
	return &Store{
		cfg:     cfg,
		metrics: &Metrics{},
		kbs:     lru.New[*CompiledKB](cfg.maxKBs()),
	}
}

// Metrics is the store's shared counter set.
func (s *Store) Metrics() *Metrics { return s.metrics }

// HashSource is the cache identity of a theory source: the hex sha256 of
// its bytes. Textually different but equivalent sources compile twice —
// the key promises only that identical sources never do.
func HashSource(src string) string {
	sum := sha256.Sum256([]byte(src))
	return hex.EncodeToString(sum[:])
}

// Register compiles the source (or returns the cached artifact) and
// interns it under its hash. Concurrent registrations of the same source
// share one compilation; ctx is this caller's interest in it — when
// every interested caller's context dies the in-flight compilation is
// canceled, but one disconnecting client (even the one that started the
// compile) never cancels work other clients are still waiting on, and a
// canceled compilation is not cached, so the next request recompiles
// cleanly. cached reports whether this call reused an existing or
// in-flight compilation instead of running its own.
func (s *Store) Register(ctx context.Context, src string) (kb *CompiledKB, cached bool, err error) {
	id := HashSource(src)
	s.mu.Lock()
	if kb, ok := s.kbs.Get(id); ok {
		s.mu.Unlock()
		s.metrics.CompileHits.Add(1)
		return kb, true, nil
	}
	s.mu.Unlock()

	kb, shared, err := s.flight.Do(ctx, id, func(cctx context.Context) (*CompiledKB, error) {
		kb, err := s.compile(cctx, id, src)
		if err != nil {
			s.metrics.CompileErrors.Add(1)
			return nil, err
		}
		s.metrics.CompileMisses.Add(1)
		s.mu.Lock()
		if _, _, evicted := s.kbs.Add(id, kb); evicted {
			s.metrics.KBEvictions.Add(1)
		}
		s.mu.Unlock()
		return kb, nil
	})
	if shared && err == nil {
		s.metrics.CompileDedup.Add(1)
	}
	return kb, shared, err
}

// Get returns the compiled KB under the id, if it is still cached.
func (s *Store) Get(id string) (*CompiledKB, bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.kbs.Get(id)
}

// Len is the number of live compiled KBs.
func (s *Store) Len() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.kbs.Len()
}

// compileBudget is the translation budget of one compilation: the
// store's static ceilings plus the flight's interest context, so a
// compile whose every waiter has disconnected stops at its next
// checkpoint instead of running to completion for nobody.
func (s *Store) compileBudget(ctx context.Context) *budget.T {
	return &budget.T{Ctx: ctx, Timeout: s.cfg.CompileTimeout, MaxRules: s.cfg.MaxRules}
}

// CompiledKB is the immutable pay-once artifact of a theory: parse
// tree, lint report, fragment classification, the translation chain
// appropriate to its fragment, and a compiled base program where one
// exists. It is safe for concurrent use; per-query plans are cached
// inside it.
type CompiledKB struct {
	// ID is the hex sha256 of Source.
	ID string
	// Source is the registered theory text, verbatim.
	Source string
	// Theory is the parsed source.
	Theory *core.Theory
	// Lint is the static-analysis report of the source.
	Lint []lint.Diagnostic
	// Class is the fragment classification (Figure 1).
	Class *classify.Report
	// Termination is the chase-termination report: acyclicity hierarchy
	// verdict, certificate, and (for weakly acyclic theories) the
	// fact-bound coefficients. Shared with the lint pass — computed once.
	Termination *termination.Report
	// Mode says how queries are answered.
	Mode Mode
	// Chain documents the compilation chain, one step per line.
	Chain []string

	// program is the compiled base program: the source itself
	// (ModeDatalog) or dat(Σ) (ModeTranslated); nil in ModeChase. It
	// answers atomic queries; CQs over existential theories get per-query
	// plans (see plan.go).
	program *datalog.Program

	// translated is the Datalog theory the program was compiled from in
	// ModeTranslated — the saturation product, retained so Artifact() can
	// persist it and a restart can skip re-running the translation. Nil
	// in every other mode.
	translated *core.Theory

	cfg     Config
	metrics *Metrics

	planMu     sync.Mutex
	plans      *lru.Cache[*plan]
	planFlight flight[*plan]
}

// compile runs the pay-once pipeline: parse, lint, classify, translate
// per fragment, and compile the base program. ctx is the flight's
// interest context: its cancellation aborts the compile outright (the
// artifact is never cached half-translated), unlike a translation
// ceiling, which falls back to chase mode.
func (s *Store) compile(ctx context.Context, id, src string) (*CompiledKB, error) {
	kb, err := s.analyze(id, src)
	if err != nil {
		return nil, err
	}
	bud := s.compileBudget(ctx)
	th := kb.Theory
	switch {
	case kb.Class.Member[classify.Datalog]:
		prog, err := datalog.Compile(th)
		if err != nil {
			return nil, fmt.Errorf("kbcache: %w", err)
		}
		kb.Mode = ModeDatalog
		kb.program = prog
		kb.Chain = []string{"source is plain Datalog; compiled directly"}
	case !th.HasNegation() && kb.Class.Member[classify.NearlyGuarded]:
		dat, _, err := saturate.NearlyGuardedToDatalog(th, saturate.Options{Budget: bud})
		if err != nil {
			if errors.Is(err, context.Canceled) {
				return nil, fmt.Errorf("kbcache: compile canceled: %w", err)
			}
			kb.fallBackToChase("dat(Σ)", err)
			break
		}
		s.metrics.Translations.Add(1)
		prog, cerr := datalog.Compile(dat)
		if cerr != nil {
			return nil, fmt.Errorf("kbcache: dat(Σ): %w", cerr)
		}
		kb.Mode = ModeTranslated
		kb.program = prog
		kb.translated = dat
		kb.Chain = []string{
			fmt.Sprintf("dat(Σ): nearly guarded → %d Datalog rules (Theorem 3 / Proposition 6)", len(dat.Rules)),
		}
	case !th.HasNegation() && kb.Class.Member[classify.NearlyFrontierGuarded]:
		ng, _, err := rewrite.Rewrite(normalize.Normalize(th), rewrite.Options{Budget: bud})
		if err != nil {
			if errors.Is(err, context.Canceled) {
				return nil, fmt.Errorf("kbcache: compile canceled: %w", err)
			}
			kb.fallBackToChase("rew(Σ)", err)
			break
		}
		dat, _, err := saturate.NearlyGuardedToDatalog(ng, saturate.Options{Budget: bud})
		if err != nil {
			if errors.Is(err, context.Canceled) {
				return nil, fmt.Errorf("kbcache: compile canceled: %w", err)
			}
			kb.fallBackToChase("dat(rew(Σ))", err)
			break
		}
		s.metrics.Translations.Add(1)
		prog, cerr := datalog.Compile(dat)
		if cerr != nil {
			return nil, fmt.Errorf("kbcache: dat(rew(Σ)): %w", cerr)
		}
		kb.Mode = ModeTranslated
		kb.program = prog
		kb.translated = dat
		kb.Chain = []string{
			fmt.Sprintf("rew(Σ): nearly frontier-guarded → %d nearly guarded rules (Theorem 1 / Proposition 4)", len(ng.Rules)),
			fmt.Sprintf("dat(rew(Σ)): → %d Datalog rules (Theorem 3 / Proposition 6)", len(dat.Rules)),
		}
	default:
		kb.Mode = ModeChase
		kb.Chain = []string{"no complete Datalog translation for this fragment; per-query bounded chase (Section 7)"}
	}
	// A termination certificate upgrades any chase-mode KB (fragment
	// default or translation fallback) to budget-free certified serving.
	if kb.Mode == ModeChase && kb.Termination.Class.Terminating() {
		kb.Mode = ModeCertified
		kb.Chain = append(kb.Chain, fmt.Sprintf(
			"termination certificate (class %s): per-query chase runs to saturation, budget-free", kb.Termination.Class))
	}
	return kb, nil
}

// analyze runs the compilation pipeline's cheap, fragment-independent
// prefix: parse, lint, classification, termination analysis. Both the
// full compile and artifact restoration start here.
func (s *Store) analyze(id, src string) (*CompiledKB, error) {
	th, err := parser.ParseTheory(src)
	if err != nil {
		return nil, fmt.Errorf("kbcache: parse: %w", err)
	}
	if len(th.Rules) == 0 {
		return nil, fmt.Errorf("kbcache: theory has no rules")
	}
	lctx := &lint.Context{Theory: th}
	kb := &CompiledKB{
		ID:      id,
		Source:  src,
		Theory:  th,
		Lint:    lint.RunWithContext(lctx, lint.Registry()),
		Class:   classify.Classify(th),
		cfg:     s.cfg,
		metrics: s.metrics,
	}
	// The lint termination pass already ran the full analysis; reuse it.
	kb.Termination = lctx.Termination()
	s.metrics.countTermination(kb.Termination.Class)
	kb.plans = lru.New[*plan](s.cfg.maxPlans())
	return kb, nil
}

// fallBackToChase downgrades an aborted translation to chase mode: the
// KB stays servable (soundly, per-query) and the chain records why.
func (kb *CompiledKB) fallBackToChase(step string, err error) {
	kb.Mode = ModeChase
	kb.program = nil
	kb.translated = nil
	kb.Chain = []string{
		fmt.Sprintf("%s aborted (%v); falling back to per-query bounded chase", step, err),
	}
}

// Program exposes the compiled base program (nil in ModeChase).
func (kb *CompiledKB) Program() *datalog.Program { return kb.program }

// PlanKeys lists the cached query-plan keys, most recently used first.
func (kb *CompiledKB) PlanKeys() []string {
	kb.planMu.Lock()
	defer kb.planMu.Unlock()
	return kb.plans.Keys()
}
