package kbcache

import (
	"context"
	"errors"
	"sync"
)

// flight deduplicates concurrent function calls by key: while one
// goroutine runs fn for a key, others calling Do with the same key block
// and share its result instead of running fn again.
//
// The flight is context-aware so a disconnecting client can abandon an
// expensive compile without poisoning everyone else sharing it:
//
//   - fn runs under a call context that stays alive while ANY waiter is
//     still interested; it is canceled only when the last waiter's own
//     context dies. One disconnecting client (even the leader's) never
//     cancels work that other clients are still waiting for.
//   - A waiter whose own context dies stops waiting immediately and gets
//     its ctx error; the in-flight call keeps running for the others.
//   - If the call does die of cancellation (all waiters gone) while a
//     new waiter raced in, that waiter observes the cancellation, sees
//     its own context still alive, and retries as the new leader — a
//     canceled leader never poisons followers.
type flight[V any] struct {
	mu sync.Mutex
	m  map[string]*flightCall[V]
}

type flightCall[V any] struct {
	done   chan struct{}
	cancel context.CancelFunc
	refs   int // waiters still interested; last one out cancels fn's ctx
	val    V
	err    error
}

// Do runs fn under the key, deduplicating concurrent duplicates. shared
// reports whether the result came from another goroutine's in-flight
// run. ctx is the caller's interest: when it dies the caller stops
// waiting (and, if it was the last one interested, the running fn's
// context is canceled). A nil ctx means context.Background().
func (g *flight[V]) Do(ctx context.Context, key string, fn func(ctx context.Context) (V, error)) (v V, shared bool, err error) {
	if ctx == nil {
		ctx = context.Background()
	}
	for {
		g.mu.Lock()
		if g.m == nil {
			g.m = make(map[string]*flightCall[V])
		}
		if c, ok := g.m[key]; ok {
			c.refs++
			g.mu.Unlock()
			select {
			case <-c.done:
				g.drop(key, c)
				// A call that died of cancellation is not a result, it is
				// the absence of one: if this waiter still wants the value,
				// it becomes the new leader instead of inheriting the
				// corpse's error.
				if c.err != nil && errors.Is(c.err, context.Canceled) && ctx.Err() == nil {
					continue
				}
				return c.val, true, c.err
			case <-ctx.Done():
				g.drop(key, c)
				return v, true, ctx.Err()
			}
		}
		callCtx, cancel := context.WithCancel(context.WithoutCancel(ctx))
		c := &flightCall[V]{done: make(chan struct{}), cancel: cancel, refs: 1}
		g.m[key] = c
		g.mu.Unlock()

		// The leader's own disconnect must count like any waiter's: watch
		// it on the side while fn runs. The watcher exits on done, so it
		// cannot leak past the call.
		stop := make(chan struct{})
		go func() {
			select {
			case <-ctx.Done():
				g.drop(key, c)
			case <-stop:
			}
		}()
		c.val, c.err = fn(callCtx)
		close(stop)
		close(c.done)

		g.mu.Lock()
		if g.m[key] == c {
			delete(g.m, key)
		}
		g.mu.Unlock()
		cancel()
		return c.val, false, c.err
	}
}

// drop records that one waiter lost interest in the call; the last
// departure cancels the running fn's context. The key is detached from
// the map at the same moment so late arrivals start a fresh call instead
// of joining a doomed one.
func (g *flight[V]) drop(key string, c *flightCall[V]) {
	g.mu.Lock()
	c.refs--
	if c.refs <= 0 {
		select {
		case <-c.done:
			// fn already finished; nothing to cancel.
		default:
			if g.m[key] == c {
				delete(g.m, key)
			}
			c.cancel()
		}
	}
	g.mu.Unlock()
}
