package kbcache

import "sync"

// flight deduplicates concurrent function calls by key: while one
// goroutine runs fn for a key, others calling Do with the same key block
// and share its result instead of running fn again.
type flight[V any] struct {
	mu sync.Mutex
	m  map[string]*flightCall[V]
}

type flightCall[V any] struct {
	wg  sync.WaitGroup
	val V
	err error
}

// Do runs fn under the key, deduplicating concurrent duplicates. shared
// reports whether the result came from another goroutine's in-flight run.
func (g *flight[V]) Do(key string, fn func() (V, error)) (v V, shared bool, err error) {
	g.mu.Lock()
	if g.m == nil {
		g.m = make(map[string]*flightCall[V])
	}
	if c, ok := g.m[key]; ok {
		g.mu.Unlock()
		c.wg.Wait()
		return c.val, true, c.err
	}
	c := &flightCall[V]{}
	c.wg.Add(1)
	g.m[key] = c
	g.mu.Unlock()

	c.val, c.err = fn()
	c.wg.Done()

	g.mu.Lock()
	delete(g.m, key)
	g.mu.Unlock()
	return c.val, false, c.err
}
