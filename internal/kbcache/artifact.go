package kbcache

import (
	"context"
	"fmt"

	"guardedrules/internal/datalog"
	"guardedrules/internal/parser"
)

// Artifact is the durable form of a compiled KB: everything needed to
// rebuild the artifact without re-running the expensive translation
// steps (rew(Σ), dat(Σ)). The cheap pay-once work — parse, lint,
// classification, termination analysis — is recomputed on load, which
// keeps the on-disk format a small, human-auditable JSON document and
// immune to staleness in the analysis code. The ID doubles as an
// integrity check: a loaded artifact whose source does not hash to its
// ID is rejected.
type Artifact struct {
	// FormatVersion guards against decoding artifacts written by an
	// incompatible release.
	FormatVersion int `json:"format_version"`
	// ID is the hex sha256 of Source (the cache key).
	ID string `json:"id"`
	// Source is the registered theory text, verbatim.
	Source string `json:"source"`
	// Mode is the compiled mode (Mode.String()).
	Mode string `json:"mode"`
	// Chain documents the compilation chain, one step per line.
	Chain []string `json:"chain,omitempty"`
	// Translated is the printed dat(Σ) theory for ModeTranslated KBs —
	// the product of the double-exponential saturation, and the reason
	// artifacts are worth persisting. Empty in every other mode.
	Translated string `json:"translated,omitempty"`
}

// ArtifactFormatVersion is the current on-disk artifact format.
const ArtifactFormatVersion = 1

// Artifact renders the KB's durable form.
func (kb *CompiledKB) Artifact() Artifact {
	a := Artifact{
		FormatVersion: ArtifactFormatVersion,
		ID:            kb.ID,
		Source:        kb.Source,
		Mode:          kb.Mode.String(),
		Chain:         kb.Chain,
	}
	if kb.Mode == ModeTranslated && kb.translated != nil {
		a.Translated = parser.PrintTheory(kb.translated)
	}
	return a
}

// RegisterArtifact interns a previously persisted artifact, reusing its
// saved translation instead of re-running saturation. Modes without a
// saved translation (datalog, chase, certified) recompile from source —
// their pipeline is cheap. The artifact's integrity is checked: the
// source must hash to the ID and the saved translation must compile.
func (s *Store) RegisterArtifact(ctx context.Context, a Artifact) (kb *CompiledKB, cached bool, err error) {
	if a.FormatVersion != ArtifactFormatVersion {
		return nil, false, fmt.Errorf("kbcache: artifact format %d, want %d", a.FormatVersion, ArtifactFormatVersion)
	}
	if HashSource(a.Source) != a.ID {
		return nil, false, fmt.Errorf("kbcache: artifact id %.12s… does not match its source hash", a.ID)
	}
	if a.Mode != ModeTranslated.String() || a.Translated == "" {
		return s.Register(ctx, a.Source)
	}
	s.mu.Lock()
	if kb, ok := s.kbs.Get(a.ID); ok {
		s.mu.Unlock()
		s.metrics.CompileHits.Add(1)
		return kb, true, nil
	}
	s.mu.Unlock()

	kb, shared, err := s.flight.Do(ctx, a.ID, func(cctx context.Context) (*CompiledKB, error) {
		kb, err := s.compileFromArtifact(a)
		if err != nil {
			s.metrics.CompileErrors.Add(1)
			return nil, err
		}
		s.metrics.ArtifactLoads.Add(1)
		s.mu.Lock()
		if _, _, evicted := s.kbs.Add(a.ID, kb); evicted {
			s.metrics.KBEvictions.Add(1)
		}
		s.mu.Unlock()
		return kb, nil
	})
	if shared && err == nil {
		s.metrics.CompileDedup.Add(1)
	}
	return kb, shared, err
}

// compileFromArtifact rebuilds a ModeTranslated KB from its saved
// translation: the cheap analyses rerun, the saturation does not.
func (s *Store) compileFromArtifact(a Artifact) (*CompiledKB, error) {
	kb, err := s.analyze(a.ID, a.Source)
	if err != nil {
		return nil, err
	}
	dat, err := parser.ParseTheory(a.Translated)
	if err != nil {
		return nil, fmt.Errorf("kbcache: artifact translation: %w", err)
	}
	prog, err := datalog.Compile(dat)
	if err != nil {
		return nil, fmt.Errorf("kbcache: artifact translation: %w", err)
	}
	kb.Mode = ModeTranslated
	kb.program = prog
	kb.translated = dat
	kb.Chain = a.Chain
	if len(kb.Chain) == 0 {
		kb.Chain = []string{fmt.Sprintf("restored dat(Σ) artifact: %d Datalog rules", len(dat.Rules))}
	}
	return kb, nil
}
