package kbcache

import (
	"context"
	"fmt"
	"reflect"
	"testing"
	"time"

	"guardedrules/internal/budget"
	"guardedrules/internal/core"
	"guardedrules/internal/database"
	"guardedrules/internal/termination"
)

// jaSource is jointly acyclic but not weakly acyclic — the invented
// values at (R,2),(R,3) flow into S and back into P, but only through
// the EDB guard B — and its S-composition rule keeps it outside every
// translatable fragment, so the certificate is what makes it exactly
// servable.
const jaSource = `
	P(X) -> exists Y,Z. R(X,Y,Z).
	R(X,Y,Z) -> S(Y,Z).
	S(Y,Z), S(Z,W) -> S(Y,W).
	S(Y,Z), B(Y) -> P(Y).
`

func jaFacts(n int) *database.Database {
	d := database.New()
	for i := 0; i < n; i++ {
		d.Add(core.NewAtom("P", core.Const(fmt.Sprintf("a%d", i))))
		if i%2 == 0 {
			d.Add(core.NewAtom("B", core.Const(fmt.Sprintf("a%d", i))))
		}
		d.Add(core.NewAtom("S", core.Const(fmt.Sprintf("a%d", i)), core.Const(fmt.Sprintf("a%d", (i+1)%n))))
	}
	return d
}

// A JA-but-not-WA theory is served certified: default queries chase to
// saturation with no fact ceiling and are exact, and agree byte for byte
// with the bounded fallback wherever the fallback completes.
func TestCertifiedRoutingAndDifferentialAnswers(t *testing.T) {
	s := NewStore(Config{})
	ckb := mustRegister(t, s, jaSource)
	if ckb.Mode != ModeCertified {
		t.Fatalf("mode = %v, want certified", ckb.Mode)
	}
	if ckb.Termination.Class != termination.ClassJA {
		t.Fatalf("class = %v, want ja", ckb.Termination.Class)
	}
	if err := ckb.Termination.Certificate.Verify(ckb.Theory); err != nil {
		t.Fatalf("served certificate must verify: %v", err)
	}

	d := jaFacts(8)
	q := mustCQ(t, "P(X) -> Ans(X).")
	certified, err := ckb.AnswerCQ(context.Background(), q, d, QueryOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if !certified.Exact {
		t.Fatal("certified answers must be exact")
	}
	if got := s.Metrics().CertifiedRuns.Load(); got != 1 {
		t.Fatalf("certified runs = %d, want 1", got)
	}

	// The bounded fallback: an explicit budget generous enough to
	// saturate routes around the certified path.
	bounded, err := ckb.AnswerCQ(context.Background(), q, d, QueryOptions{
		Budget: &budget.T{Timeout: 30 * time.Second, MaxFacts: 100_000},
	})
	if err != nil {
		t.Fatal(err)
	}
	if !bounded.Exact {
		t.Fatal("the generous bounded run must also saturate")
	}
	if !reflect.DeepEqual(certified.Answers, bounded.Answers) {
		t.Fatalf("certified and bounded answers diverge:\n%v\nvs\n%v", certified.Answers, bounded.Answers)
	}
	if got := s.Metrics().CertifiedRuns.Load(); got != 1 {
		t.Fatal("an explicitly budgeted query must not use the certified path")
	}

	// Atomic queries route through the same certified CQ path.
	atomRes, err := ckb.AnswerAtom(context.Background(), core.NewAtom("P", core.Var("X")), d, QueryOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if !atomRes.Exact || len(atomRes.Answers) != len(certified.Answers) {
		t.Fatalf("atom path: exact=%v n=%d, want exact with %d answers",
			atomRes.Exact, len(atomRes.Answers), len(certified.Answers))
	}
}

// A weakly acyclic chase-mode KB prices its run with the certified fact
// bound, and the run stays within it.
func TestCertifiedWABoundAsserted(t *testing.T) {
	s := NewStore(Config{})
	ckb := mustRegister(t, s, wgSource)
	if ckb.Mode != ModeCertified || ckb.Termination.Bound == nil {
		t.Fatalf("wg source must be certified wa with a bound (mode %v)", ckb.Mode)
	}
	d := database.New()
	for i := 0; i < 5; i++ {
		d.Add(core.NewAtom("P", core.Const(fmt.Sprintf("p%d", i))))
	}
	// Ground R facts give S ground certain answers (null-valued S tuples
	// are correctly excluded by the ACDom guard of the query rule).
	d.Add(core.NewAtom("R", core.Const("p0"), core.Const("u"), core.Const("v")))
	res, err := ckb.AnswerCQ(context.Background(), mustCQ(t, "S(Y,Z) -> Ans(Y,Z)."), d, QueryOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if !res.Exact || len(res.Answers) == 0 {
		t.Fatalf("certified wa query must return exact nonempty answers, got %d (exact=%v)", len(res.Answers), res.Exact)
	}
	if got := s.Metrics().Snapshot()["termination_class_wa"]; got != 1 {
		t.Fatalf("termination_class_wa = %d, want 1", got)
	}
}

// A diverging theory stays in bounded chase mode: no certificate, no
// budget-free serving.
func TestUncertifiedStaysBounded(t *testing.T) {
	// A shallow default depth keeps the diverging chase cheap.
	s := NewStore(Config{DefaultChaseDepth: 2})
	// Nulls feed straight back into the minting rule's frontier, and the
	// composition rule keeps the theory outside the translatable
	// fragments — so the KB really serves by bounded chase.
	ckb := mustRegister(t, s, `
		S(Y,Z), S(Z,W) -> S(Y,W).
		S(Y,Z) -> exists W. S(Z,W).
	`)
	if ckb.Mode != ModeChase {
		t.Fatalf("diverging theory must stay in chase mode, got %v", ckb.Mode)
	}
	if ckb.Termination.Class.Terminating() {
		t.Fatalf("diverging theory certified as %v", ckb.Termination.Class)
	}
	d := database.New()
	d.Add(core.NewAtom("S", core.Const("a"), core.Const("b")))
	res, err := ckb.AnswerCQ(context.Background(), mustCQ(t, "S(X,Y) -> Ans(X,Y)."), d, QueryOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if res.Exact {
		t.Fatal("a depth-bounded run over a diverging theory must not claim exactness")
	}
	if got := s.Metrics().CertifiedRuns.Load(); got != 0 {
		t.Fatalf("certified runs = %d, want 0", got)
	}
	if got := s.Metrics().Snapshot()["termination_class_unknown"]; got != 1 {
		t.Fatalf("termination_class_unknown = %d, want 1", got)
	}
}
