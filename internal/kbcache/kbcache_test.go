package kbcache

import (
	"context"
	"fmt"
	"sync"
	"testing"

	"guardedrules/internal/budget"
	"guardedrules/internal/chase"
	"guardedrules/internal/core"
	"guardedrules/internal/database"
	"guardedrules/internal/datalog"
	"guardedrules/internal/gen"
	"guardedrules/internal/kb"
	"guardedrules/internal/parser"
	"guardedrules/internal/termination"
)

// e5Source is the Experiment 5 theory: a nearly guarded mix of guarded
// value invention and a Datalog transitive-closure periphery.
const e5Source = `
	A(X) -> exists Y. R(X,Y).
	R(X,Y) -> B(X).
	E(X,Y) -> T(X,Y).
	T(X,Y), T(Y,Z) -> T(X,Z).
	T(X,Y), B(X), B(Y) -> Linked(X,Y).
`

// tcSource is the E11 workload program: plain Datalog transitive closure.
const tcSource = `
	E(X,Y) -> T(X,Y).
	T(X,Y), T(Y,Z) -> T(X,Z).
`

// wgSource is weakly guarded but not nearly frontier-guarded: the
// second rule's X,Y occur only at affected positions and no single body
// atom guards the frontier.
const wgSource = `
	P(X) -> exists Y,Z. R(X,Y,Z).
	R(X,Y,Z) -> S(Y,Z).
	S(Y,Z), S(Z,W) -> S(Y,W).
`

func e5Facts(n int) *database.Database {
	d := gen.Path(n)
	for i := 0; i <= n; i++ {
		d.Add(core.NewAtom("A", core.Const(fmt.Sprintf("v%d", i))))
	}
	return d
}

func mustRegister(t *testing.T, s *Store, src string) *CompiledKB {
	t.Helper()
	ckb, _, err := s.Register(context.Background(), src)
	if err != nil {
		t.Fatal(err)
	}
	return ckb
}

func mustCQ(t *testing.T, src string) kb.CQ {
	t.Helper()
	q, err := kb.ParseCQ(src)
	if err != nil {
		t.Fatal(err)
	}
	return q
}

// Registration selects the fragment-appropriate mode and caches by
// source hash.
func TestRegisterModesAndCaching(t *testing.T) {
	s := NewStore(Config{})
	dl := mustRegister(t, s, tcSource)
	if dl.Mode != ModeDatalog {
		t.Fatalf("Datalog source compiled in mode %v", dl.Mode)
	}
	if dl.Program() == nil {
		t.Fatal("Datalog KB must carry a base program")
	}
	ng := mustRegister(t, s, e5Source)
	if ng.Mode != ModeTranslated {
		t.Fatalf("nearly guarded source compiled in mode %v", ng.Mode)
	}
	if ng.Program() == nil || len(ng.Chain) == 0 {
		t.Fatal("translated KB must carry dat(Σ) and its chain")
	}
	// wgSource has no Datalog translation, but it is weakly acyclic, so
	// the termination certificate upgrades it to budget-free serving.
	wg := mustRegister(t, s, wgSource)
	if wg.Mode != ModeCertified {
		t.Fatalf("weakly guarded acyclic source compiled in mode %v, want certified", wg.Mode)
	}
	if wg.Termination == nil || wg.Termination.Class != termination.ClassWA || wg.Termination.Certificate == nil {
		t.Fatalf("certified KB must carry the wa report, got %+v", wg.Termination)
	}

	again, cached, err := s.Register(context.Background(), e5Source)
	if err != nil {
		t.Fatal(err)
	}
	if !cached || again != ng {
		t.Fatal("re-registering the same source must return the cached artifact")
	}
	if got := s.Metrics().CompileHits.Load(); got != 1 {
		t.Fatalf("compile hits = %d, want 1", got)
	}
	if _, ok := s.Get(ng.ID); !ok {
		t.Fatal("Get must find a registered KB by id")
	}
}

// Concurrent registrations of one source share a single compilation.
func TestRegisterSingleflight(t *testing.T) {
	s := NewStore(Config{})
	const goroutines = 16
	var wg sync.WaitGroup
	kbs := make([]*CompiledKB, goroutines)
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			ckb, _, err := s.Register(context.Background(), e5Source)
			if err != nil {
				t.Error(err)
				return
			}
			kbs[i] = ckb
		}(g)
	}
	wg.Wait()
	if got := s.Metrics().CompileMisses.Load(); got != 1 {
		t.Fatalf("compile misses = %d, want exactly 1 (dedup)", got)
	}
	for _, ckb := range kbs {
		if ckb != kbs[0] {
			t.Fatal("all registrations must share one artifact")
		}
	}
}

// The KB cache is a bounded LRU.
func TestKBEviction(t *testing.T) {
	s := NewStore(Config{MaxKBs: 2})
	first := mustRegister(t, s, tcSource)
	mustRegister(t, s, e5Source)
	mustRegister(t, s, wgSource)
	if s.Len() != 2 {
		t.Fatalf("store holds %d KBs, want 2", s.Len())
	}
	if got := s.Metrics().KBEvictions.Load(); got != 1 {
		t.Fatalf("evictions = %d, want 1", got)
	}
	if _, ok := s.Get(first.ID); ok {
		t.Fatal("the least recently used KB must have been evicted")
	}
}

func answersString(ans [][]core.Term) string { return fmt.Sprint(ans) }

// A translated KB's CQ answers agree with the bounded chase of the
// source theory, and the second identical query is a pure plan hit:
// zero re-translation work, observable in the metrics.
func TestAnswerCQTranslatedMatchesChaseAndCachesPlan(t *testing.T) {
	s := NewStore(Config{})
	ckb := mustRegister(t, s, e5Source)
	q := mustCQ(t, "Linked(X,Y) -> Ans(X,Y).")
	d := e5Facts(5)

	want, exact, err := kb.AnswerByChase(parser.MustParseTheory(e5Source), q, d,
		chase.Options{Variant: chase.Restricted, MaxDepth: 8})
	if err != nil || !exact {
		t.Fatalf("ground-truth chase: exact=%v err=%v", exact, err)
	}
	if len(want) == 0 {
		t.Fatal("ground truth is empty; the fixture is broken")
	}

	res, err := ckb.AnswerCQ(context.Background(), q, d, QueryOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if !res.Exact || res.PlanHit {
		t.Fatalf("first call: exact=%v hit=%v, want exact miss", res.Exact, res.PlanHit)
	}
	if same, diff := datalog.SameAnswers(want, res.Answers); !same {
		t.Fatalf("translated answers diverge from the chase: %s", diff)
	}

	misses := s.Metrics().PlanMisses.Load()
	translations := s.Metrics().Translations.Load()
	res2, err := ckb.AnswerCQ(context.Background(), q, d, QueryOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if !res2.PlanHit {
		t.Fatal("second identical query must hit the plan cache")
	}
	if got := s.Metrics().PlanMisses.Load(); got != misses {
		t.Fatalf("plan misses moved %d -> %d on a repeat query", misses, got)
	}
	if got := s.Metrics().Translations.Load(); got != translations {
		t.Fatalf("translations moved %d -> %d on a repeat query: re-translation happened", translations, got)
	}
	if answersString(res2.Answers) != answersString(res.Answers) {
		t.Fatal("repeat query changed the answers")
	}
}

// Datalog-mode CQ answers agree with direct evaluation, including
// stratified negation in the source.
func TestAnswerCQDatalog(t *testing.T) {
	src := `
		E(X,Y) -> T(X,Y).
		T(X,Y), T(Y,Z) -> T(X,Z).
		Node(X), not T(X,X) -> Acyclic(X).
	`
	s := NewStore(Config{})
	ckb := mustRegister(t, s, src)
	if ckb.Mode != ModeDatalog {
		t.Fatalf("mode %v", ckb.Mode)
	}
	d := gen.Path(6)
	d.Add(parser.MustParseFacts("Node(v0). Node(v3).")[0])
	d.Add(parser.MustParseFacts("Node(v3).")[0])
	res, err := ckb.AnswerCQ(context.Background(), mustCQ(t, "Acyclic(X) -> Ans(X)."), d, QueryOptions{})
	if err != nil || !res.Exact {
		t.Fatalf("exact=%v err=%v", res.Exact, err)
	}
	fix, err := datalog.EvalSemiNaive(parser.MustParseTheory(src), d)
	if err != nil {
		t.Fatal(err)
	}
	want := datalog.CollectAnswers(fix, "Acyclic")
	if same, diff := datalog.SameAnswers(want, res.Answers); !same {
		t.Fatalf("CQ answers diverge: %s", diff)
	}
}

// Chase-mode KBs answer CQs soundly and report exactness via chase
// saturation.
func TestAnswerCQChaseMode(t *testing.T) {
	s := NewStore(Config{})
	ckb := mustRegister(t, s, wgSource)
	d := database.FromAtoms(parser.MustParseFacts("P(a). P(b)."))
	res, err := ckb.AnswerCQ(context.Background(), mustCQ(t, "S(Y,Z) -> Ans(Y,Z)."), d, QueryOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if !res.Exact {
		t.Fatalf("this chase saturates within the default depth; exact=false (answers=%v)", res.Answers)
	}
	// Each P-constant yields one invented pair (y,z) plus the transitive
	// closure over the invented S-chain; answers over nulls are excluded,
	// so the certain answers are empty — but the call must not error.
	if len(res.Answers) != 0 {
		t.Fatalf("S holds only between nulls; got %v", res.Answers)
	}
}

// The plan cache is a bounded LRU; eviction forces a rebuild that
// reproduces the same answers.
func TestPlanEvictionAndRebuild(t *testing.T) {
	s := NewStore(Config{MaxPlansPerKB: 2})
	ckb := mustRegister(t, s, tcSource)
	d := gen.Path(5)
	queries := []string{
		"T(X,Y) -> Ans(X,Y).",
		"T(v0,Y) -> Ans(Y).",
		"T(X,v4) -> Ans(X).",
	}
	first, err := ckb.AnswerCQ(context.Background(), mustCQ(t, queries[0]), d, QueryOptions{})
	if err != nil {
		t.Fatal(err)
	}
	for _, q := range queries[1:] {
		if _, err := ckb.AnswerCQ(context.Background(), mustCQ(t, q), d, QueryOptions{}); err != nil {
			t.Fatal(err)
		}
	}
	if got := s.Metrics().PlanEvictions.Load(); got == 0 {
		t.Fatal("three plans in a 2-slot cache must evict")
	}
	again, err := ckb.AnswerCQ(context.Background(), mustCQ(t, queries[0]), d, QueryOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if again.PlanHit {
		t.Fatal("evicted plan must be rebuilt, not hit")
	}
	if same, diff := datalog.SameAnswers(first.Answers, again.Answers); !same {
		t.Fatalf("rebuilt plan diverged: %s", diff)
	}
}

// Atomic queries share one magic plan per binding pattern; the seed is
// regenerated from the actual constants.
func TestAnswerAtomMagicPlanSharing(t *testing.T) {
	s := NewStore(Config{})
	ckb := mustRegister(t, s, tcSource)
	d := gen.Path(6)
	q1 := core.NewAtom("T", core.Const("v0"), core.Var("Y"))
	q2 := core.NewAtom("T", core.Const("v3"), core.Var("Y"))

	res1, err := ckb.AnswerAtom(context.Background(), q1, d, QueryOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if res1.PlanHit {
		t.Fatal("first atom query must build the plan")
	}
	res2, err := ckb.AnswerAtom(context.Background(), q2, d, QueryOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if !res2.PlanHit || res2.PlanKey != res1.PlanKey {
		t.Fatalf("same binding pattern must share the plan: hit=%v key=%q vs %q",
			res2.PlanHit, res2.PlanKey, res1.PlanKey)
	}
	// Ground truth via the uncached magic path.
	for _, tc := range []struct {
		q core.Atom
		r *QueryResult
	}{{q1, res1}, {q2, res2}} {
		want, _, err := datalog.AnswerWithMagic(parser.MustParseTheory(tcSource), tc.q, d)
		if err != nil {
			t.Fatal(err)
		}
		if same, diff := datalog.SameAnswers(want, tc.r.Answers); !same {
			t.Fatalf("atom %v: %s", tc.q, diff)
		}
	}
	// A free-free query gets its own plan (full evaluation fallback is
	// fine too, but the key must differ).
	res3, err := ckb.AnswerAtom(context.Background(), core.NewAtom("T", core.Var("X"), core.Var("Y")), d, QueryOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if res3.PlanKey == res1.PlanKey {
		t.Fatal("different adornments must not share a key")
	}
}

// An EDB-only relation falls back to base-program evaluation.
func TestAnswerAtomEDBFallback(t *testing.T) {
	s := NewStore(Config{})
	ckb := mustRegister(t, s, tcSource)
	d := gen.Path(3)
	res, err := ckb.AnswerAtom(context.Background(), core.NewAtom("E", core.Const("v0"), core.Var("Y")), d, QueryOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Answers) != 1 || res.Answers[0][1] != core.Const("v1") {
		t.Fatalf("E(v0,Y) = %v, want [[v0 v1]]", res.Answers)
	}
}

// One CompiledKB shared by many goroutines answers byte-identically to
// the sequential baseline. Run under -race.
func TestConcurrentSharedKBStress(t *testing.T) {
	s := NewStore(Config{})
	ckb := mustRegister(t, s, e5Source)
	d := e5Facts(6)
	queries := []kb.CQ{
		mustCQ(t, "Linked(X,Y) -> Ans(X,Y)."),
		mustCQ(t, "T(X,Y), B(Y) -> Ans(X)."),
		mustCQ(t, "B(X) -> Ans(X)."),
	}
	want := make([]string, len(queries))
	for i, q := range queries {
		res, err := ckb.AnswerCQ(context.Background(), q, d, QueryOptions{})
		if err != nil {
			t.Fatal(err)
		}
		want[i] = answersString(res.Answers)
	}
	const goroutines = 12
	var wg sync.WaitGroup
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func(seed int) {
			defer wg.Done()
			for i := 0; i < 3*len(queries); i++ {
				j := (seed + i) % len(queries)
				res, err := ckb.AnswerCQ(context.Background(), queries[j], d, QueryOptions{Workers: 1 + seed%3})
				if err != nil {
					t.Error(err)
					return
				}
				if answersString(res.Answers) != want[j] {
					t.Errorf("goroutine %d query %d diverged from sequential answers", seed, j)
					return
				}
			}
		}(g)
	}
	wg.Wait()
}

// A budget-exhausted query returns sound partial answers with the typed
// error, and the exhaustion is counted.
func TestQueryBudgetExhaustion(t *testing.T) {
	s := NewStore(Config{})
	ckb := mustRegister(t, s, tcSource)
	d := gen.Path(40)
	res, err := ckb.AnswerCQ(context.Background(), mustCQ(t, "T(X,Y) -> Ans(X,Y)."), d,
		QueryOptions{Budget: &budget.T{MaxFacts: 50}})
	if err == nil {
		t.Fatal("a 50-fact ceiling on a 40-path closure must exhaust")
	}
	if !budget.IsBudget(err) {
		t.Fatalf("want a typed budget error, got %v", err)
	}
	if res == nil || res.Exact {
		t.Fatal("partial answers must be returned inexact")
	}
	full, err2 := ckb.AnswerCQ(context.Background(), mustCQ(t, "T(X,Y) -> Ans(X,Y)."), d, QueryOptions{})
	if err2 != nil {
		t.Fatal(err2)
	}
	fullSet := map[string]bool{}
	for _, tup := range full.Answers {
		fullSet[answersString([][]core.Term{tup})] = true
	}
	for _, tup := range res.Answers {
		if !fullSet[answersString([][]core.Term{tup})] {
			t.Fatalf("partial answer %v is not in the full answer set", tup)
		}
	}
	if s.Metrics().BudgetExhausted.Load() == 0 {
		t.Fatal("budget exhaustion must be counted")
	}
}
