package kbcache

import (
	"context"
	"errors"
	"fmt"
	"sort"
	"strings"

	"guardedrules/internal/budget"
	"guardedrules/internal/chase"
	"guardedrules/internal/classify"
	"guardedrules/internal/core"
	"guardedrules/internal/database"
	"guardedrules/internal/datalog"
	"guardedrules/internal/kb"
	"guardedrules/internal/normalize"
	"guardedrules/internal/parser"
	"guardedrules/internal/rewrite"
	"guardedrules/internal/saturate"
	"guardedrules/internal/termination"
)

// planKind says how a cached plan evaluates.
type planKind int

const (
	// planProgram: evaluate a compiled Datalog program and collect the
	// plan's query relation. Exact.
	planProgram planKind = iota
	// planMagic: seed a compiled magic-sets program with the query's
	// bound constants and collect the adorned query relation. Exact, and
	// goal-directed.
	planMagic
	// planChase: chase the attached theory per call. Sound; exact iff
	// the chase saturates.
	planChase
)

// plan is a cached per-query-shape evaluation artifact: everything whose
// cost depends only on (Σ, query shape) — attaching, translating, magic
// rewriting, stratifying, compiling — done once. Plans are immutable and
// shared across concurrent queries.
type plan struct {
	kind     planKind
	prog     *datalog.Program // planProgram, planMagic
	seedRel  string           // planMagic: the magic seed relation
	queryRel string           // relation whose tuples are the answers
	attached *core.Theory     // planChase: Σ ∪ {query rule}
	chain    []string         // how the plan was built, for diagnostics

	// Certified-termination routing (planChase only): when the attached
	// theory carries a termination certificate, default queries run the
	// chase to saturation with no fact ceiling. class is the certified
	// class; bound prices the ceiling for weakly acyclic theories (nil
	// when the certificate proves finiteness without pricing it).
	certified bool
	class     termination.Class
	bound     *termination.Bound
}

// QueryOptions governs one answer call.
type QueryOptions struct {
	// Workers is the per-round engine parallelism (0 = engine default).
	Workers int
	// Variant selects the chase flavor for chase-mode plans; the zero
	// value is Oblivious.
	Variant chase.Variant
	// MaxDepth bounds chase-mode null depth (0 = the store's
	// DefaultChaseDepth when no budget bounds the run either).
	MaxDepth int
	// Budget, when non-nil, governs the evaluation; exhausting it yields
	// the sound partial answers alongside a typed *budget.Error.
	Budget *budget.T
	// Planner selects the Datalog join-order strategy (the zero value is
	// the cost-based planner; datalog.PlannerGreedy forces the legacy
	// static order, for ablations).
	Planner datalog.Planner
}

// datalogOptions derives the engine options of one evaluation, wiring
// the store's join-planner counters into the run.
func (o QueryOptions) datalogOptions(m *Metrics) datalog.Options {
	opts := datalog.Options{Workers: o.Workers, Budget: o.Budget, Planner: o.Planner}
	if m != nil {
		opts.Stats = &m.Join
	}
	return opts
}

// QueryResult is the outcome of one answer call.
type QueryResult struct {
	// Answers holds one tuple per answer, deterministically ordered.
	Answers [][]core.Term
	// Exact reports completeness: translated and Datalog plans are exact
	// unless a budget truncated the run; chase plans are exact exactly
	// when the chase saturated.
	Exact bool
	// PlanKey identifies the plan that served the call.
	PlanKey string
	// PlanHit reports whether the plan came from the cache — no
	// translation or compilation work was performed by this call.
	PlanHit bool
	// Chain documents how the plan was built.
	Chain []string
}

// CQKey is the cache key of a conjunctive query's shape.
func CQKey(q kb.CQ) string {
	var b strings.Builder
	b.WriteString("cq:")
	for i, t := range q.Answer {
		if i > 0 {
			b.WriteByte(',')
		}
		b.WriteString(t.String())
	}
	b.WriteString("<-")
	for i, a := range q.Atoms {
		if i > 0 {
			b.WriteByte(',')
		}
		b.WriteString(parser.PrintAtom(a))
	}
	return b.String()
}

// AtomKey is the cache key of an atomic query's shape: its relation and
// binding pattern (adornment), so T(a,Y) and T(b,Y) share a plan while
// T(X,Y) gets its own.
func AtomKey(query core.Atom) string {
	return "atom:" + query.Relation + "/" + adornmentOf(query)
}

func adornmentOf(query core.Atom) string {
	b := make([]byte, len(query.Args))
	for i, t := range query.Args {
		if t.IsConst() {
			b[i] = 'b'
		} else {
			b[i] = 'f'
		}
	}
	return string(b)
}

// translateBudget bounds plan-time translations like compile-time ones;
// ctx is the plan flight's interest context, so a cold-plan build whose
// every waiter has disconnected stops at its next checkpoint.
func (ckb *CompiledKB) translateBudget(ctx context.Context) *budget.T {
	return &budget.T{Ctx: ctx, Timeout: ckb.cfg.CompileTimeout, MaxRules: ckb.cfg.MaxRules}
}

// getPlan returns the cached plan under key, building and interning it
// on first use. Concurrent first uses share one build, governed by the
// same interest-tracking flight as compilations: the build is canceled
// only when every waiting request has disconnected, and a canceled
// build is never cached, so the next request rebuilds cleanly.
func (ckb *CompiledKB) getPlan(ctx context.Context, key string, build func(ctx context.Context) (*plan, error)) (*plan, bool, error) {
	ckb.planMu.Lock()
	if p, ok := ckb.plans.Get(key); ok {
		ckb.planMu.Unlock()
		ckb.metrics.PlanHits.Add(1)
		return p, true, nil
	}
	ckb.planMu.Unlock()
	p, shared, err := ckb.planFlight.Do(ctx, key, func(cctx context.Context) (*plan, error) {
		p, err := build(cctx)
		if err != nil {
			return nil, err
		}
		ckb.metrics.PlanMisses.Add(1)
		ckb.planMu.Lock()
		if _, _, evicted := ckb.plans.Add(key, p); evicted {
			ckb.metrics.PlanEvictions.Add(1)
		}
		ckb.planMu.Unlock()
		return p, nil
	})
	if shared && err == nil {
		ckb.metrics.PlanHits.Add(1)
	}
	return p, shared, err
}

// PlanInfo probes the plan cache under key for admission control:
// cached reports whether a plan is interned (a miss means the next
// query pays combined-complexity build work), and chasePerCall whether
// the cached plan re-chases the theory on every evaluation (expensive
// even on a hit). The probe touches LRU recency, which is harmless: a
// probed plan is about to be used.
func (ckb *CompiledKB) PlanInfo(key string) (cached, chasePerCall bool) {
	ckb.planMu.Lock()
	defer ckb.planMu.Unlock()
	p, ok := ckb.plans.Get(key)
	if !ok {
		return false, false
	}
	return true, p.kind == planChase
}

// AnswerCQ answers the conjunctive query over the database with the
// KB's cached plan for the query's shape, building it on first use:
// attach the query rule (Section 7), translate the attached theory along
// the fragment-appropriate chain, stratify and compile — or fall back to
// a bounded chase where no complete translation exists. On budget
// exhaustion the sound partial answers are returned alongside the typed
// *budget.Error.
func (ckb *CompiledKB) AnswerCQ(ctx context.Context, q kb.CQ, d database.Store, opts QueryOptions) (*QueryResult, error) {
	ckb.metrics.Queries.Add(1)
	key := CQKey(q)
	p, hit, err := ckb.getPlan(ctx, key, func(cctx context.Context) (*plan, error) { return ckb.buildCQPlan(cctx, q) })
	if err != nil {
		ckb.metrics.QueryErrors.Add(1)
		return nil, err
	}
	res, err := ckb.evalPlan(p, d, opts)
	if res != nil {
		res.PlanKey = key
		res.PlanHit = hit
	}
	return res, err
}

// buildCQPlan is the pay-once part of a CQ: Σ ∪ {α ∧ ACDom(~x) → QAns(~x)}
// translated and compiled per the KB's mode.
func (ckb *CompiledKB) buildCQPlan(ctx context.Context, q kb.CQ) (*plan, error) {
	attached, err := kb.Attach(ckb.Theory, q)
	if err != nil {
		return nil, err
	}
	switch ckb.Mode {
	case ModeDatalog:
		prog, err := datalog.Compile(attached)
		if err != nil {
			return nil, err
		}
		return &plan{
			kind:     planProgram,
			prog:     prog,
			queryRel: kb.QueryRel,
			chain:    []string{"query rule attached; stratified and compiled with the source program"},
		}, nil
	case ModeTranslated:
		return ckb.buildTranslatedCQPlan(ctx, attached)
	default:
		return ckb.buildChasePlan(attached, "query rule attached; bounded chase per call"), nil
	}
}

// buildChasePlan builds a per-call chase plan over the attached theory,
// promoting it to certified (budget-free) serving when the attached
// theory carries a termination certificate. The analysis runs on Σ ∪
// {query rule}, not Σ: the query rule's QAns positions are pure sinks,
// so a certified Σ stays certified, but re-deriving the certificate on
// the theory that is actually chased keeps the routing honest.
func (ckb *CompiledKB) buildChasePlan(attached *core.Theory, why string) *plan {
	p := &plan{
		kind:     planChase,
		attached: attached,
		queryRel: kb.QueryRel,
		chain:    []string{why},
	}
	rep := termination.Analyze(attached)
	if rep.Class.Terminating() {
		p.certified = true
		p.class = rep.Class
		p.bound = rep.Bound
		p.chain = append(p.chain, fmt.Sprintf(
			"termination certificate (class %s): default calls chase to saturation, budget-free", rep.Class))
	}
	return p
}

// buildTranslatedCQPlan translates the attached theory to Datalog when
// the query rule keeps it inside a translatable fragment, and falls back
// to a per-call chase when it does not (or when the translation budget
// aborts): the fallback is sound, merely not compiled.
func (ckb *CompiledKB) buildTranslatedCQPlan(ctx context.Context, attached *core.Theory) (*plan, error) {
	bud := ckb.translateBudget(ctx)
	rep := classify.Classify(attached)
	var (
		dat   *core.Theory
		chain []string
		err   error
	)
	switch {
	case rep.Member[classify.NearlyGuarded]:
		dat, _, err = saturate.NearlyGuardedToDatalog(attached, saturate.Options{Budget: bud})
		chain = []string{"query rule attached (stays nearly guarded)", "dat(Σ∪q) saturated (Theorem 3 / Proposition 6)"}
	case rep.Member[classify.NearlyFrontierGuarded]:
		var ng *core.Theory
		ng, _, err = rewrite.Rewrite(normalize.Normalize(attached), rewrite.Options{Budget: bud})
		if err == nil {
			dat, _, err = saturate.NearlyGuardedToDatalog(ng, saturate.Options{Budget: bud})
		}
		chain = []string{"query rule attached (stays nearly frontier-guarded)", "rew(Σ∪q) (Theorem 1)", "dat(rew(Σ∪q)) saturated (Proposition 6)"}
	default:
		return ckb.buildChasePlan(attached, "query rule leaves the translatable fragments; bounded chase per call"), nil
	}
	if err != nil {
		if errors.Is(err, context.Canceled) {
			// Cancellation is not a verdict on the plan: nothing is cached,
			// the next request rebuilds with live interest.
			return nil, fmt.Errorf("kbcache: plan build canceled: %w", err)
		}
		return ckb.buildChasePlan(attached, "translation aborted ("+err.Error()+"); bounded chase per call"), nil
	}
	ckb.metrics.Translations.Add(1)
	prog, err := datalog.Compile(dat)
	if err != nil {
		return nil, err
	}
	return &plan{kind: planProgram, prog: prog, queryRel: kb.QueryRel, chain: chain}, nil
}

// AnswerAtom answers an atomic query — a single atom whose constants are
// bound and whose variables are free — returning full argument tuples.
// Program-mode KBs use a cached goal-directed magic-sets plan per
// binding pattern (dat(Σ) preserves ground atomic consequences, so the
// base program is complete for atomic queries); chase-mode KBs delegate
// to the CQ path.
func (ckb *CompiledKB) AnswerAtom(ctx context.Context, query core.Atom, d database.Store, opts QueryOptions) (*QueryResult, error) {
	if ckb.Mode == ModeChase || ckb.Mode == ModeCertified {
		return ckb.answerAtomByCQ(ctx, query, d, opts)
	}
	ckb.metrics.Queries.Add(1)
	key := AtomKey(query)
	p, hit, err := ckb.getPlan(ctx, key, func(context.Context) (*plan, error) { return ckb.buildAtomPlan(query) })
	if err != nil {
		ckb.metrics.QueryErrors.Add(1)
		return nil, err
	}
	res, err := ckb.evalAtomPlan(p, query, d, opts)
	if res != nil {
		res.PlanKey = key
		res.PlanHit = hit
	}
	return res, err
}

// buildAtomPlan magic-rewrites the base program for the query's binding
// pattern; relations magic cannot handle (EDB-only relations, programs
// with negation) fall back to full evaluation of the base program.
func (ckb *CompiledKB) buildAtomPlan(query core.Atom) (*plan, error) {
	mr, err := datalog.MagicRewrite(ckb.program.Theory(), query)
	if err != nil {
		return &plan{
			kind:     planProgram,
			prog:     ckb.program,
			queryRel: query.Relation,
			chain:    []string{"magic rewriting not applicable (" + err.Error() + "); full base-program evaluation"},
		}, nil
	}
	prog, err := datalog.Compile(mr.Program)
	if err != nil {
		return nil, err
	}
	return &plan{
		kind:     planMagic,
		prog:     prog,
		seedRel:  mr.Seed.Relation,
		queryRel: mr.QueryRel,
		chain:    []string{"magic-sets rewriting for adornment " + adornmentOf(query) + "; compiled"},
	}, nil
}

// evalPlan runs a CQ plan. Budget-truncated runs return their sound
// partial answers alongside the typed error.
func (ckb *CompiledKB) evalPlan(p *plan, d database.Store, opts QueryOptions) (*QueryResult, error) {
	switch p.kind {
	case planChase:
		copts := chase.Options{
			Variant:  opts.Variant,
			MaxDepth: opts.MaxDepth,
			Workers:  opts.Workers,
			Budget:   opts.Budget,
		}
		if copts.MaxDepth == 0 {
			// Certified serving engages unless the caller asked for a real
			// ceiling: a context or timeout is cancellation, not a bound,
			// and RunCertified honors it.
			if p.certified && !bounding(copts.Budget) {
				return ckb.evalCertified(p, d, copts)
			}
			if copts.Budget == nil {
				copts.MaxDepth = ckb.cfg.chaseDepth()
			}
		}
		res, err := chase.Run(p.attached, d, copts)
		if err != nil {
			if !budget.IsBudget(err) || res == nil {
				ckb.metrics.QueryErrors.Add(1)
				return nil, err
			}
			ckb.metrics.BudgetExhausted.Add(1)
			return &QueryResult{
				Answers: datalog.CollectAnswers(res.DB, p.queryRel),
				Chain:   p.chain,
			}, err
		}
		return &QueryResult{
			Answers: datalog.CollectAnswers(res.DB, p.queryRel),
			Exact:   res.Saturated,
			Chain:   p.chain,
		}, nil
	default:
		fix, err := p.prog.Eval(d, opts.datalogOptions(ckb.metrics))
		if err != nil {
			if !budget.IsBudget(err) || fix == nil {
				ckb.metrics.QueryErrors.Add(1)
				return nil, err
			}
			ckb.metrics.BudgetExhausted.Add(1)
			return &QueryResult{
				Answers: datalog.CollectAnswers(fix, p.queryRel),
				Chain:   p.chain,
			}, err
		}
		return &QueryResult{
			Answers: datalog.CollectAnswers(fix, p.queryRel),
			Exact:   true,
			Chain:   p.chain,
		}, nil
	}
}

// evalCertified runs a certified chase plan to saturation with no fact
// ceiling: the termination certificate proves the fixpoint finite, so
// the answer is always exact. WA and JA certificates cover the
// restricted variant only (the fresh-null oblivious chase can diverge on
// them), so those runs are forced to chase.Restricted — sound and
// complete regardless of the requested variant, because every saturated
// chase is a universal model and QAns answers are ground. For weakly
// acyclic theories the certificate also prices an exact fact bound,
// which the run asserts; when the closed form overflows the run is
// merely unpriced, not bounded.
func (ckb *CompiledKB) evalCertified(p *plan, d database.Store, copts chase.Options) (*QueryResult, error) {
	if p.class != termination.ClassSWA {
		copts.Variant = chase.Restricted
	}
	bound := 0
	if p.bound != nil {
		n0 := d.InternEpoch() + len(p.attached.Constants())
		if b, ok := p.bound.Facts(n0, d.Len()); ok {
			bound = b
		}
	}
	ckb.metrics.CertifiedRuns.Add(1)
	res, err := chase.RunCertified(p.attached, d, bound, copts)
	if err != nil {
		// Cancellation or timeout mid-run: the partial answers are sound,
		// exactly as on the bounded path.
		if budget.IsBudget(err) && res != nil {
			ckb.metrics.BudgetExhausted.Add(1)
			return &QueryResult{
				Answers: datalog.CollectAnswers(res.DB, p.queryRel),
				Chain:   p.chain,
			}, err
		}
		ckb.metrics.QueryErrors.Add(1)
		return nil, err
	}
	return &QueryResult{
		Answers: datalog.CollectAnswers(res.DB, p.queryRel),
		Exact:   true,
		Chain:   p.chain,
	}, nil
}

// bounding reports whether the budget imposes an actual work ceiling —
// a context or timeout alone is cancellation and leaves certified
// serving eligible.
func bounding(b *budget.T) bool {
	return b != nil && (b.MaxFacts > 0 || b.MaxRules > 0 || b.MaxRounds > 0 || b.MaxSteps > 0 || b.FailAtCheckpoint > 0)
}

// evalAtomPlan runs an atom plan: magic plans get a fresh seed from the
// query's actual constants (the compiled program depends only on the
// binding pattern), and all answers are filtered against the query atom.
func (ckb *CompiledKB) evalAtomPlan(p *plan, query core.Atom, d database.Store, opts QueryOptions) (*QueryResult, error) {
	in := d
	if p.kind == planMagic {
		var bound []core.Term
		for _, t := range query.Args {
			if t.IsConst() {
				bound = append(bound, t)
			}
		}
		in = d.Clone()
		in.Add(core.NewAtom(p.seedRel, bound...))
	}
	fix, err := p.prog.Eval(in, opts.datalogOptions(ckb.metrics))
	if err != nil && (!budget.IsBudget(err) || fix == nil) {
		ckb.metrics.QueryErrors.Add(1)
		return nil, err
	}
	var out [][]core.Term
	for _, f := range fix.Facts(core.RelKey{Name: p.queryRel, Arity: len(query.Args)}) {
		if matchesAtom(query, f.Args) {
			out = append(out, append([]core.Term(nil), f.Args...))
		}
	}
	sortTuples(out)
	if err != nil {
		ckb.metrics.BudgetExhausted.Add(1)
		return &QueryResult{Answers: out, Chain: p.chain}, err
	}
	return &QueryResult{Answers: out, Exact: true, Chain: p.chain}, nil
}

// answerAtomByCQ routes an atomic query through the CQ path (chase-mode
// KBs), reconstructing full argument tuples from the answer bindings.
func (ckb *CompiledKB) answerAtomByCQ(ctx context.Context, query core.Atom, d database.Store, opts QueryOptions) (*QueryResult, error) {
	var vars []core.Term
	seen := map[core.Term]bool{}
	for _, t := range query.Args {
		if t.IsVar() && !seen[t] {
			seen[t] = true
			vars = append(vars, t)
		}
	}
	res, err := ckb.AnswerCQ(ctx, kb.CQ{Answer: vars, Atoms: []core.Atom{query}}, d, opts)
	if res == nil {
		return nil, err
	}
	full := make([][]core.Term, 0, len(res.Answers))
	for _, binding := range res.Answers {
		s := core.Subst{}
		for i, v := range vars {
			s[v] = binding[i]
		}
		tuple := make([]core.Term, len(query.Args))
		for i, t := range query.Args {
			tuple[i] = s.Apply(t)
		}
		full = append(full, tuple)
	}
	sortTuples(full)
	res.Answers = full
	return res, err
}

// matchesAtom checks a derived tuple against the query atom: constants
// must coincide and repeated variables must bind consistently.
func matchesAtom(query core.Atom, args []core.Term) bool {
	bind := map[core.Term]core.Term{}
	for i, t := range query.Args {
		switch {
		case t.IsConst():
			if args[i] != t {
				return false
			}
		default:
			if prev, ok := bind[t]; ok && prev != args[i] {
				return false
			}
			bind[t] = args[i]
		}
	}
	return true
}

func sortTuples(out [][]core.Term) {
	sort.Slice(out, func(i, j int) bool {
		a, b := out[i], out[j]
		for k := range a {
			if k >= len(b) {
				return false
			}
			if a[k].Name != b[k].Name {
				return a[k].Name < b[k].Name
			}
		}
		return len(a) < len(b)
	})
}
