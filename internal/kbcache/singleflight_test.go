package kbcache

import (
	"context"
	"errors"
	"fmt"
	"sync"
	"sync/atomic"
	"testing"
	"time"
)

// Concurrent duplicates share one run; distinct keys run independently.
func TestFlightDedup(t *testing.T) {
	var f flight[int]
	var runs atomic.Int32
	release := make(chan struct{})
	const waiters = 8
	var wg sync.WaitGroup
	results := make([]int, waiters)
	for i := 0; i < waiters; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			v, _, err := f.Do(context.Background(), "k", func(context.Context) (int, error) {
				runs.Add(1)
				<-release
				return 42, nil
			})
			if err != nil {
				t.Errorf("waiter %d: %v", i, err)
			}
			results[i] = v
		}(i)
	}
	time.Sleep(20 * time.Millisecond)
	close(release)
	wg.Wait()
	if got := runs.Load(); got != 1 {
		t.Fatalf("fn ran %d times, want 1", got)
	}
	for i, v := range results {
		if v != 42 {
			t.Fatalf("waiter %d got %d", i, v)
		}
	}
}

// A waiter whose own context dies stops waiting immediately with its ctx
// error; the in-flight call keeps running for the remaining waiter and
// completes normally.
func TestFlightWaiterDisconnectDoesNotCancelCall(t *testing.T) {
	var f flight[string]
	started := make(chan struct{})
	release := make(chan struct{})
	var sawCancel atomic.Bool

	leaderDone := make(chan error, 1)
	go func() {
		_, _, err := f.Do(context.Background(), "k", func(ctx context.Context) (string, error) {
			close(started)
			<-release
			if ctx.Err() != nil {
				sawCancel.Store(true)
			}
			return "v", nil
		})
		leaderDone <- err
	}()
	<-started

	ctx, cancel := context.WithCancel(context.Background())
	go func() {
		time.Sleep(10 * time.Millisecond)
		cancel()
	}()
	_, shared, err := f.Do(ctx, "k", func(context.Context) (string, error) {
		t.Error("follower must join the in-flight call, not start its own")
		return "", nil
	})
	if !shared || !errors.Is(err, context.Canceled) {
		t.Fatalf("disconnected follower: shared=%v err=%v", shared, err)
	}

	close(release)
	if err := <-leaderDone; err != nil {
		t.Fatalf("leader: %v", err)
	}
	if sawCancel.Load() {
		t.Fatal("one follower's disconnect canceled a call the leader still wanted")
	}
}

// When every interested caller disconnects, the running fn's context is
// canceled — abandoned compiles stop consuming the machine.
func TestFlightAllWaitersGoneCancelsCall(t *testing.T) {
	var f flight[string]
	started := make(chan struct{})
	canceled := make(chan struct{})

	ctx, cancel := context.WithCancel(context.Background())
	done := make(chan error, 1)
	go func() {
		_, _, err := f.Do(ctx, "k", func(cctx context.Context) (string, error) {
			close(started)
			select {
			case <-cctx.Done():
				close(canceled)
				return "", cctx.Err()
			case <-time.After(5 * time.Second):
				return "", errors.New("call context never canceled")
			}
		})
		done <- err
	}()
	<-started
	cancel()
	select {
	case <-canceled:
	case <-time.After(2 * time.Second):
		t.Fatal("sole waiter's disconnect did not cancel the call context")
	}
	if err := <-done; !errors.Is(err, context.Canceled) {
		t.Fatalf("leader err = %v", err)
	}
}

// A call that dies of cancellation does not poison followers: a waiter
// that shared the doomed run observes the cancellation, sees its own
// context alive, and retries as the new leader instead of inheriting the
// corpse's error.
func TestFlightCanceledLeaderDoesNotPoisonFollower(t *testing.T) {
	var f flight[string]
	firstStarted := make(chan struct{})
	release := make(chan struct{})
	var runs atomic.Int32

	leaderDone := make(chan error, 1)
	go func() {
		_, _, err := f.Do(context.Background(), "k", func(context.Context) (string, error) {
			if runs.Add(1) == 1 {
				close(firstStarted)
				<-release
				// Simulate a compile abandoned by cancellation.
				return "", fmt.Errorf("compile: %w", context.Canceled)
			}
			return "fresh", nil
		})
		leaderDone <- err
	}()
	<-firstStarted

	// The follower joins the doomed run (or, if it loses the race and the
	// run already finished, starts fresh) — both paths must end with the
	// real value, never the canceled run's error.
	followerDone := make(chan struct{})
	var followerVal string
	var followerErr error
	go func() {
		defer close(followerDone)
		followerVal, _, followerErr = f.Do(context.Background(), "k", func(context.Context) (string, error) {
			runs.Add(1)
			return "fresh", nil
		})
	}()
	time.Sleep(20 * time.Millisecond) // let the follower join the in-flight run
	close(release)

	if err := <-leaderDone; !errors.Is(err, context.Canceled) {
		t.Fatalf("leader err = %v, want canceled", err)
	}
	select {
	case <-followerDone:
	case <-time.After(2 * time.Second):
		t.Fatal("follower hung after canceled run")
	}
	if followerErr != nil || followerVal != "fresh" {
		t.Fatalf("follower poisoned by canceled run: val=%q err=%v", followerVal, followerErr)
	}
	if got := runs.Load(); got != 2 {
		t.Fatalf("fn ran %d times, want 2 (doomed run + follower retry)", got)
	}
}

// Hammering one key with disconnecting and surviving waiters never
// deadlocks, leaks, or returns a wrong value. Run under -race in CI.
func TestFlightStress(t *testing.T) {
	var f flight[int]
	var wg sync.WaitGroup
	for round := 0; round < 20; round++ {
		for i := 0; i < 8; i++ {
			wg.Add(1)
			go func(i int) {
				defer wg.Done()
				ctx := context.Background()
				if i%3 == 0 {
					c, cancel := context.WithTimeout(ctx, time.Duration(i)*time.Millisecond)
					defer cancel()
					ctx = c
				}
				v, _, err := f.Do(ctx, "k", func(cctx context.Context) (int, error) {
					select {
					case <-time.After(2 * time.Millisecond):
						return 7, nil
					case <-cctx.Done():
						return 0, cctx.Err()
					}
				})
				if err == nil && v != 7 {
					t.Errorf("got %d", v)
				}
			}(i)
		}
		wg.Wait()
	}
}
