package kbcache

import (
	"context"
	"errors"
	"fmt"
	"sync"

	"guardedrules/internal/core"
	"guardedrules/internal/database"
	"guardedrules/internal/datalog"
	"guardedrules/internal/kb"
)

// ErrNotMaintainable is returned by MaintainCQ when the query's cached
// plan falls back to a per-query bounded chase: such a plan would
// re-chase the full database on every batch, so subscriptions over it
// are rejected at registration instead of silently degrading.
var ErrNotMaintainable = errors.New("kbcache: query plan chases per call; not incrementally maintainable")

// AnswerDelta is the net answer-set change of one maintenance batch,
// both sides deterministically sorted.
type AnswerDelta struct {
	Added   [][]core.Term
	Removed [][]core.Term
}

// MaintainedQuery is a registered live query: a compiled CQ plan bound
// to an incrementally maintained fixpoint over one mutable fact DB.
// Batches fold in through Apply; the current exact answers are always
// available. The handle is safe for concurrent use (one internal
// writer lock; the serving layer applies batches under it while
// concurrent readers snapshot answers).
type MaintainedQuery struct {
	ckb      *CompiledKB
	key      string
	queryRel string
	chain    []string

	mu sync.Mutex
	m  *datalog.Maintained
}

// MaintainCQ registers a conjunctive query for incremental maintenance
// over the base database: the CQ plan is built (or reused) through the
// same per-shape plan cache as AnswerCQ, classified once with the same
// PlanInfo probe the admission tier uses, and — when the plan compiles
// to a Datalog program — evaluated into a maintained fixpoint. Plans
// that fall back to a per-query bounded chase are rejected with
// ErrNotMaintainable.
func (ckb *CompiledKB) MaintainCQ(ctx context.Context, q kb.CQ, base database.Store, opts QueryOptions) (*MaintainedQuery, error) {
	key := CQKey(q)
	p, _, err := ckb.getPlan(ctx, key, func(cctx context.Context) (*plan, error) { return ckb.buildCQPlan(cctx, q) })
	if err != nil {
		ckb.metrics.MaintainRejected.Add(1)
		return nil, err
	}
	// Classification happens exactly once, at registration, via the
	// admission tier's probe: the plan was interned by getPlan above, so
	// chasePerCall is the cached plan's verdict.
	if cached, chasePerCall := ckb.PlanInfo(key); !cached || chasePerCall {
		ckb.metrics.MaintainRejected.Add(1)
		return nil, fmt.Errorf("%w (plan %s)", ErrNotMaintainable, key)
	}
	m, err := datalog.NewMaintained(p.prog, base, opts.datalogOptions(ckb.metrics))
	if err != nil {
		ckb.metrics.MaintainRejected.Add(1)
		return nil, err
	}
	ckb.metrics.MaintainedHandles.Add(1)
	return &MaintainedQuery{ckb: ckb, key: key, queryRel: p.queryRel, chain: p.chain, m: m}, nil
}

// PlanKey returns the cache key of the underlying plan shape.
func (mq *MaintainedQuery) PlanKey() string { return mq.key }

// Chain documents how the underlying plan was built.
func (mq *MaintainedQuery) Chain() []string { return mq.chain }

// Apply folds a base-fact batch into the maintained fixpoint and
// returns the net change of the query's answer set. On error the handle
// still holds the pre-batch answers (the maintained database is only
// swapped on success).
func (mq *MaintainedQuery) Apply(add, retract []core.Atom, opts QueryOptions) (AnswerDelta, error) {
	mq.mu.Lock()
	defer mq.mu.Unlock()
	_, delta, err := mq.m.Apply(add, retract, opts.datalogOptions(mq.ckb.metrics))
	if err != nil {
		return AnswerDelta{}, err
	}
	mq.ckb.metrics.MaintainBatches.Add(1)
	return AnswerDelta{
		Added:   answerTuples(delta.Added, mq.queryRel),
		Removed: answerTuples(delta.Removed, mq.queryRel),
	}, nil
}

// Answers returns the current exact answers of the maintained query,
// deterministically ordered.
func (mq *MaintainedQuery) Answers() [][]core.Term {
	mq.mu.Lock()
	cur := mq.m.Current()
	mq.mu.Unlock()
	return datalog.CollectAnswers(cur, mq.queryRel)
}

// answerTuples projects a fact delta onto the query relation's
// all-constant tuples, sorted like every other answer list.
func answerTuples(facts []core.Atom, queryRel string) [][]core.Term {
	var out [][]core.Term
	for _, f := range facts {
		if f.Relation != queryRel {
			continue
		}
		allConst := true
		for _, t := range f.Args {
			if !t.IsConst() {
				allConst = false
				break
			}
		}
		if allConst {
			out = append(out, append([]core.Term(nil), f.Args...))
		}
	}
	sortTuples(out)
	return out
}
