// Package segment implements a durable database.Store backed by an
// append-only write-ahead log plus periodic snapshots, all in a single
// directory. The in-memory index is a *database.Database mirror; every
// mutation is applied to the mirror and journaled, and Commit makes the
// journaled prefix durable. On open, the log's torn tail (anything past
// the last valid commit record) is discarded, so a crash never loses
// committed data and never surfaces uncommitted data.
//
// Record framing (all integers big-endian):
//
//	record  := len(u32) payload crc32(u32)
//	payload := type(u8) body
//
// len counts payload bytes; the CRC (IEEE) covers the payload. Bodies:
//
//	term    kind(u8) name…                    — intern next dense id
//	rel     annArity(u16) arity(u16) name…    — intern next relation id
//	add     relID(u32) id(u32)…               — AddErr of the fact
//	del     relID(u32) id(u32)…               — DeleteNotify of the fact
//	commit  version(u64)                      — durability barrier
//	fact    relID(u32) id(u32)…               — snapshot: raw insert
//	support termID(u32) count(u32)            — snapshot: ACDom refcount
//	pin     termID(u32)                       — snapshot: ACDom pin
//
// The add/del/fact body is exactly PackKey(relID, ids): a big-endian,
// sort-order-preserving packed key, ready for the disk-segment iterators
// of ROADMAP item 3.
package segment

import (
	"encoding/binary"
	"fmt"
	"hash/crc32"
	"io"
)

const (
	recTerm byte = iota + 1
	recRel
	recAdd
	recDel
	recCommit
	recFact
	recSupport
	recPin
)

// maxRecordLen bounds a single payload; names are the only variable-size
// component and never come close.
const maxRecordLen = 1 << 28

// PackKey appends the big-endian packed (relID, id-tuple) key to dst.
// bytes.Compare on packed keys agrees with lexicographic order on
// (relID, ids): big-endian fixed-width encoding is order-preserving.
func PackKey(dst []byte, relID uint32, ids []uint32) []byte {
	dst = binary.BigEndian.AppendUint32(dst, relID)
	for _, id := range ids {
		dst = binary.BigEndian.AppendUint32(dst, id)
	}
	return dst
}

// UnpackKey splits a packed key into its relation id and term ids. The
// returned ids slice aliases nothing; ok is false on a malformed key.
func UnpackKey(key []byte) (relID uint32, ids []uint32, ok bool) {
	if len(key) < 4 || len(key)%4 != 0 {
		return 0, nil, false
	}
	relID = binary.BigEndian.Uint32(key)
	rest := key[4:]
	ids = make([]uint32, len(rest)/4)
	for i := range ids {
		ids[i] = binary.BigEndian.Uint32(rest[i*4:])
	}
	return relID, ids, true
}

// appendRecord frames a payload: length, payload, CRC.
func appendRecord(dst, payload []byte) []byte {
	dst = binary.BigEndian.AppendUint32(dst, uint32(len(payload)))
	dst = append(dst, payload...)
	return binary.BigEndian.AppendUint32(dst, crc32.ChecksumIEEE(payload))
}

// recordReader decodes framed records from a byte stream, tracking the
// offset after each successfully decoded record so the caller can locate
// the last commit and truncate the torn tail.
type recordReader struct {
	r   io.Reader
	off int64 // offset after the last decoded record
	buf []byte
}

// next returns the payload of the next record. It returns io.EOF at a
// clean end of stream and a wrapped errCorrupt for a torn or damaged
// record; in both cases r.off remains the offset after the last good
// record.
func (rr *recordReader) next() ([]byte, error) {
	var hdr [4]byte
	if _, err := io.ReadFull(rr.r, hdr[:]); err != nil {
		if err == io.EOF {
			return nil, io.EOF
		}
		return nil, fmt.Errorf("%w: torn header at %d", errCorrupt, rr.off)
	}
	n := binary.BigEndian.Uint32(hdr[:])
	if n == 0 || n > maxRecordLen {
		return nil, fmt.Errorf("%w: bad length %d at %d", errCorrupt, n, rr.off)
	}
	if cap(rr.buf) < int(n)+4 {
		rr.buf = make([]byte, int(n)+4)
	}
	body := rr.buf[:int(n)+4]
	if _, err := io.ReadFull(rr.r, body); err != nil {
		return nil, fmt.Errorf("%w: torn body at %d", errCorrupt, rr.off)
	}
	payload := body[:n]
	want := binary.BigEndian.Uint32(body[n:])
	if crc32.ChecksumIEEE(payload) != want {
		return nil, fmt.Errorf("%w: checksum mismatch at %d", errCorrupt, rr.off)
	}
	rr.off += int64(4 + n + 4)
	return payload, nil
}
