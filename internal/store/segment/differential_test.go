package segment

import (
	"fmt"
	"os"
	"path/filepath"
	"testing"

	"guardedrules/internal/chase"
	"guardedrules/internal/core"
	"guardedrules/internal/database"
	"guardedrules/internal/datalog"
	"guardedrules/internal/gen"
	"guardedrules/internal/parser"
)

// tcTheory is plain Datalog transitive closure over the random-corpus
// signature (binary R).
var tcTheory = parser.MustParseTheory(`
	R(X,Y) -> T(X,Y).
	T(X,Y), T(Y,Z) -> T(X,Z).
`)

// seedStores builds three equivalent stores from one corpus: the plain
// in-memory reference, a live segment store fed the same op sequence,
// and the same segment store reopened from disk (exercising replay).
// A few retractions are interleaved so the swap-remove enumeration
// history is part of what replay must reproduce.
func seedStores(t *testing.T, corpus *database.Database) (ref *database.Database, live, reopened *Store) {
	t.Helper()
	dir := t.TempDir()
	live = mustOpen(t, dir)
	ref = database.New()
	atoms := corpus.UserFacts()
	for i, a := range atoms {
		ref.Add(a)
		live.Add(a)
		if i%5 == 4 {
			// Retract an earlier fact on both sides: enumeration order now
			// depends on swap-remove history, which replay must preserve.
			victim := atoms[i-2]
			ref.Retract(victim)
			live.Retract(victim)
		}
	}
	if _, err := live.Commit(); err != nil {
		t.Fatal(err)
	}
	// Reopen from a copy of the directory so both handles stay usable.
	cdir := t.TempDir()
	entries, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	for _, e := range entries {
		blob, err := os.ReadFile(filepath.Join(dir, e.Name()))
		if err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(filepath.Join(cdir, e.Name()), blob, 0o644); err != nil {
			t.Fatal(err)
		}
	}
	reopened = mustOpen(t, cdir)
	return ref, live, reopened
}

// Engines run unmodified against both Store implementations — the
// concrete *database.Database and the segment store, live or reopened
// from disk — and produce byte-identical results at any worker count,
// over regular and adversarially named corpora.
func TestEngineTwoStoreDifferential(t *testing.T) {
	corpora := map[string]*database.Database{
		"ab":          gen.ABDatabase(40, 1),
		"adversarial": gen.AdversarialNames(40, 2),
		"citations":   gen.CitationGraph(15),
	}
	guarded := gen.RandomGuardedTheory(6, 3)
	for name, corpus := range corpora {
		t.Run(name, func(t *testing.T) {
			ref, live, reopened := seedStores(t, corpus)
			assertMirrors(t, live, ref)
			assertMirrors(t, reopened, ref)
			stores := map[string]database.Store{"memory": ref, "segment": live, "reopened": reopened}

			for _, workers := range []int{1, 4} {
				// Datalog fixpoint.
				var wantDL string
				for _, sn := range []string{"memory", "segment", "reopened"} {
					out, err := datalog.EvalSemiNaiveOpts(tcTheory, stores[sn], datalog.Options{Workers: workers})
					if err != nil {
						t.Fatalf("%s workers=%d: %v", sn, workers, err)
					}
					if sn == "memory" {
						wantDL = out.String()
					} else if got := out.String(); got != wantDL {
						t.Fatalf("datalog over %s store diverges at workers=%d:\n%s\nwant:\n%s", sn, workers, got, wantDL)
					}
				}
				// Restricted chase of a guarded existential theory.
				var wantCh string
				for _, sn := range []string{"memory", "segment", "reopened"} {
					res, err := chase.Run(guarded, stores[sn],
						chase.Options{Variant: chase.Restricted, MaxDepth: 2, Workers: workers, MaxFacts: 200_000})
					if err != nil {
						t.Fatalf("chase %s workers=%d: %v", sn, workers, err)
					}
					if sn == "memory" {
						wantCh = res.DB.String()
					} else if got := res.DB.String(); got != wantCh {
						t.Fatalf("chase over %s store diverges at workers=%d", sn, workers)
					}
				}
			}
			// The inputs themselves must be untouched: engines clone at
			// entry, they never mutate the store they were handed.
			assertMirrors(t, live, ref)
			assertMirrors(t, reopened, ref)
		})
	}
}

// Crash-recovery differential: kill the store mid-commit at injected
// offsets, reopen, and assert the recovered store is byte-identical to
// the committed prefix — and that engines derive identical fixpoints
// from it at worker counts 1 and 4.
func TestCrashRecoveryEngineDifferential(t *testing.T) {
	dir := t.TempDir()
	s := mustOpen(t, dir)
	ref := database.New()
	c := func(i int) core.Term { return core.Const(fmt.Sprintf("n%d", i)) }

	// Scripted mutation history: a growing R-graph with periodic
	// retractions, one commit per batch, recording the log offset each
	// commit ends at.
	var offsets []int64
	var want []*database.Database
	walPath := filepath.Join(dir, walName(0))
	for batch := 0; batch < 8; batch++ {
		for j := 0; j < 4; j++ {
			a := core.NewAtom("R", c(batch), c((batch+j+1)%9))
			s.Add(a)
			ref.Add(a)
		}
		if batch%3 == 2 {
			victim := core.NewAtom("R", c(batch-1), c(batch%9))
			s.Retract(victim)
			ref.Retract(victim)
		}
		if _, err := s.Commit(); err != nil {
			t.Fatal(err)
		}
		fi, err := os.Stat(walPath)
		if err != nil {
			t.Fatal(err)
		}
		offsets = append(offsets, fi.Size())
		want = append(want, ref.Clone())
	}
	s.Close()
	full, err := os.ReadFile(walPath)
	if err != nil {
		t.Fatal(err)
	}

	// Injected kill offsets: every commit boundary, plus torn cuts just
	// before and after each boundary (mid-record on both sides).
	cuts := map[int64]bool{int64(len(full)): true}
	for _, off := range offsets {
		cuts[off] = true
		if off >= 3 {
			cuts[off-3] = true
		}
		if off+5 <= int64(len(full)) {
			cuts[off+5] = true
		}
	}
	for cut := range cuts {
		expVersion := uint64(0)
		exp := database.New()
		for i, off := range offsets {
			if off <= cut {
				expVersion = uint64(i + 1)
				exp = want[i]
			}
		}
		cdir := t.TempDir()
		if err := os.WriteFile(filepath.Join(cdir, walName(0)), full[:cut], 0o644); err != nil {
			t.Fatal(err)
		}
		r, err := Open(cdir, Options{})
		if err != nil {
			t.Fatalf("cut %d: %v", cut, err)
		}
		if r.Version() != expVersion {
			t.Fatalf("cut %d: recovered version %d, want %d", cut, r.Version(), expVersion)
		}
		// Byte-identical recovered state: String, InternEpoch, stats.
		assertMirrors(t, r, exp)

		// Engine differential on the recovered store at both worker
		// counts, against the never-crashed reference prefix.
		for _, workers := range []int{1, 4} {
			wantOut, err := datalog.EvalSemiNaiveOpts(tcTheory, exp, datalog.Options{Workers: workers})
			if err != nil {
				t.Fatal(err)
			}
			gotOut, err := datalog.EvalSemiNaiveOpts(tcTheory, r, datalog.Options{Workers: workers})
			if err != nil {
				t.Fatalf("cut %d workers=%d: %v", cut, workers, err)
			}
			if gotOut.String() != wantOut.String() {
				t.Fatalf("cut %d workers=%d: recovered store answers diverge from committed prefix", cut, workers)
			}
		}
		r.Close()
	}
}
