package segment

import (
	"bufio"

	"fmt"
	"guardedrules/internal/core"
	"io"
	"os"
	"path/filepath"
)

// Compact folds the committed state into a fresh snapshot of the next
// generation and starts an empty write-ahead log, reclaiming the space
// of the retraction history. Pending mutations are committed first.
//
// A snapshot is a pure state dump — terms in id order, every relation's
// facts in enumeration order, ACDom support counts, and the pin set —
// loaded through the database restore hooks rather than replayed through
// AddErr, so enumeration orders (which engine determinism depends on)
// survive compaction exactly, including swap-remove history.
//
// Crash safety: the snapshot is published by atomic rename, and
// generations pair each snapshot with its own log file. A crash between
// rename and log creation leaves the new snapshot with a missing (hence
// empty) log; files of older generations are removed on open.
func (s *Store) Compact() error {
	if s.closed {
		return ErrClosed
	}
	if s.err != nil {
		return s.err
	}
	if s.pending > 0 {
		if _, err := s.Commit(); err != nil {
			return err
		}
	}
	next := s.gen + 1
	tmpPath := filepath.Join(s.dir, snapName(next)+".tmp")
	relIDs, relKeys, err := s.writeSnapshot(tmpPath)
	if err != nil {
		os.Remove(tmpPath)
		return err
	}
	if err := os.Rename(tmpPath, filepath.Join(s.dir, snapName(next))); err != nil {
		os.Remove(tmpPath)
		return fmt.Errorf("segment: publish snapshot: %w", err)
	}
	syncDir(s.dir)
	nf, err := os.OpenFile(filepath.Join(s.dir, walName(next)), os.O_RDWR|os.O_CREATE|os.O_TRUNC, 0o644)
	if err != nil {
		return fmt.Errorf("segment: new log: %w", err)
	}
	old, oldGen := s.f, s.gen
	s.f, s.w, s.gen = nf, bufio.NewWriter(nf), next
	s.relIDs, s.relKeys = relIDs, relKeys
	old.Close()
	os.Remove(filepath.Join(s.dir, snapName(oldGen)))
	os.Remove(filepath.Join(s.dir, walName(oldGen)))
	return nil
}

// writeSnapshot dumps the mirror to path and returns the relation-id
// assignment the snapshot defines.
func (s *Store) writeSnapshot(path string) (map[core.RelKey]uint32, []core.RelKey, error) {
	f, err := os.OpenFile(path, os.O_WRONLY|os.O_CREATE|os.O_TRUNC, 0o644)
	if err != nil {
		return nil, nil, fmt.Errorf("segment: snapshot: %w", err)
	}
	w := bufio.NewWriterSize(f, 1<<16)
	var rec []byte
	emit := func(payload []byte) error {
		rec = appendRecord(rec[:0], payload)
		_, err := w.Write(rec)
		return err
	}
	var payload []byte

	epoch := s.mem.InternEpoch()
	for id := 0; id < epoch; id++ {
		t := s.mem.Term(uint32(id))
		payload = append(payload[:0], recTerm, byte(t.Kind))
		payload = append(payload, t.Name...)
		if err := emit(payload); err != nil {
			f.Close()
			return nil, nil, fmt.Errorf("segment: snapshot: %w", err)
		}
	}

	relIDs := make(map[core.RelKey]uint32)
	var relKeys []core.RelKey
	var ids []uint32
	for _, rk := range sortedRelKeys(s.mem) {
		relID := uint32(len(relKeys))
		relIDs[rk] = relID
		relKeys = append(relKeys, rk)
		payload = append(payload[:0], recRel,
			byte(rk.AnnArity>>8), byte(rk.AnnArity),
			byte(rk.Arity>>8), byte(rk.Arity))
		payload = append(payload, rk.Name...)
		if err := emit(payload); err != nil {
			f.Close()
			return nil, nil, fmt.Errorf("segment: snapshot: %w", err)
		}
		w2 := rk.Arity + rk.AnnArity
		tuples := s.mem.IDTuples(rk)
		for off := 0; off+w2 <= len(tuples) || (w2 == 0 && off < s.mem.RelSize(rk)); off += max(w2, 1) {
			if w2 == 0 {
				ids = ids[:0]
			} else {
				ids = append(ids[:0], tuples[off:off+w2]...)
			}
			payload = append(payload[:0], recFact)
			payload = PackKey(payload, relID, ids)
			if err := emit(payload); err != nil {
				f.Close()
				return nil, nil, fmt.Errorf("segment: snapshot: %w", err)
			}
		}
	}

	for id := 0; id < epoch; id++ {
		t := s.mem.Term(uint32(id))
		if n := s.mem.ACDomSupport(t); n > 0 {
			payload = append(payload[:0], recSupport,
				byte(uint32(id)>>24), byte(uint32(id)>>16), byte(uint32(id)>>8), byte(id),
				byte(uint32(n)>>24), byte(uint32(n)>>16), byte(uint32(n)>>8), byte(n))
			if err := emit(payload); err != nil {
				f.Close()
				return nil, nil, fmt.Errorf("segment: snapshot: %w", err)
			}
		}
		if s.mem.ACDomPinned(t) {
			payload = append(payload[:0], recPin,
				byte(uint32(id)>>24), byte(uint32(id)>>16), byte(uint32(id)>>8), byte(id))
			if err := emit(payload); err != nil {
				f.Close()
				return nil, nil, fmt.Errorf("segment: snapshot: %w", err)
			}
		}
	}

	v := s.version
	payload = append(payload[:0], recCommit,
		byte(v>>56), byte(v>>48), byte(v>>40), byte(v>>32),
		byte(v>>24), byte(v>>16), byte(v>>8), byte(v))
	if err := emit(payload); err != nil {
		f.Close()
		return nil, nil, fmt.Errorf("segment: snapshot: %w", err)
	}
	if err := w.Flush(); err != nil {
		f.Close()
		return nil, nil, fmt.Errorf("segment: snapshot: %w", err)
	}
	if err := f.Sync(); err != nil {
		f.Close()
		return nil, nil, fmt.Errorf("segment: snapshot: %w", err)
	}
	if err := f.Close(); err != nil {
		return nil, nil, fmt.Errorf("segment: snapshot: %w", err)
	}
	return relIDs, relKeys, nil
}

// loadSnapshot strictly replays a published snapshot. Unlike the log, a
// snapshot admits no torn tail: it was published whole by rename.
func (s *Store) loadSnapshot(path string) error {
	f, err := os.Open(path)
	if err != nil {
		return fmt.Errorf("segment: %w", err)
	}
	defer f.Close()
	rr := &recordReader{r: bufio.NewReader(f)}
	sawCommit := false
	for {
		payload, err := rr.next()
		if err == io.EOF {
			break
		}
		if err != nil {
			return fmt.Errorf("segment: snapshot %s: %w", filepath.Base(path), err)
		}
		if payload[0] == recCommit {
			sawCommit = true
		}
		if err := s.apply(payload); err != nil {
			return fmt.Errorf("segment: snapshot %s: %w", filepath.Base(path), err)
		}
	}
	if !sawCommit {
		return fmt.Errorf("%w: snapshot %s has no commit record", errCorrupt, filepath.Base(path))
	}
	return nil
}

// syncDir best-effort fsyncs a directory so a rename is durable.
func syncDir(dir string) {
	if d, err := os.Open(dir); err == nil {
		d.Sync()
		d.Close()
	}
}
