package segment

import (
	"bytes"
	"os"
	"path/filepath"
	"sort"
	"testing"

	"guardedrules/internal/core"
	"guardedrules/internal/database"
	"guardedrules/internal/parser"
)

// assertMirrors asserts that got's observable surface — the sorted fact
// listing, the intern epoch, and the per-relation stats — matches want.
func assertMirrors(t *testing.T, got *Store, want *database.Database) {
	t.Helper()
	if g, w := got.String(), want.String(); g != w {
		t.Fatalf("state mismatch:\n got:\n%s\nwant:\n%s", g, w)
	}
	if g, w := got.InternEpoch(), want.InternEpoch(); g != w {
		t.Fatalf("InternEpoch = %d, want %d", g, w)
	}
	if g, w := got.Len(), want.Len(); g != w {
		t.Fatalf("Len = %d, want %d", g, w)
	}
	rks := want.Relations()
	sort.Slice(rks, func(i, j int) bool { return rks[i].Name < rks[j].Name })
	for _, rk := range rks {
		if g, w := got.RelSize(rk), want.RelSize(rk); g != w {
			t.Fatalf("RelSize(%s) = %d, want %d", rk, g, w)
		}
		for p := 0; p < rk.Arity+rk.AnnArity; p++ {
			if g, w := got.DistinctAt(rk, p), want.DistinctAt(rk, p); g != w {
				t.Fatalf("DistinctAt(%s,%d) = %d, want %d", rk, p, g, w)
			}
		}
	}
	for id := 0; id < want.InternEpoch(); id++ {
		tm := want.Term(uint32(id))
		if got.Term(uint32(id)) != tm {
			t.Fatalf("Term(%d) = %v, want %v", id, got.Term(uint32(id)), tm)
		}
		if g, w := got.ACDomSupport(tm), want.ACDomSupport(tm); g != w {
			t.Fatalf("ACDomSupport(%v) = %d, want %d", tm, g, w)
		}
		if g, w := got.ACDomPinned(tm), want.ACDomPinned(tm); g != w {
			t.Fatalf("ACDomPinned(%v) = %v, want %v", tm, g, w)
		}
	}
}

func mustOpen(t *testing.T, dir string) *Store {
	t.Helper()
	s, err := Open(dir, Options{})
	if err != nil {
		t.Fatalf("Open: %v", err)
	}
	return s
}

func TestRoundTrip(t *testing.T) {
	dir := t.TempDir()
	s := mustOpen(t, dir)
	ref := database.New()
	for _, a := range parser.MustParseFacts(`
		Edge(a, b). Edge(b, c). Label[x, y](a). P().
	`) {
		s.Add(a)
		ref.Add(a)
	}
	s.Retract(core.NewAtom("Edge", core.Const("b"), core.Const("c")))
	ref.Retract(core.NewAtom("Edge", core.Const("b"), core.Const("c")))
	if v, err := s.Commit(); err != nil || v != 1 {
		t.Fatalf("Commit = %d, %v", v, err)
	}
	assertMirrors(t, s, ref)
	if err := s.Close(); err != nil {
		t.Fatalf("Close: %v", err)
	}

	r := mustOpen(t, dir)
	defer r.Close()
	if r.Version() != 1 {
		t.Fatalf("Version = %d, want 1", r.Version())
	}
	assertMirrors(t, r, ref)
}

func TestUncommittedDiscarded(t *testing.T) {
	dir := t.TempDir()
	s := mustOpen(t, dir)
	s.Add(core.NewAtom("P", core.Const("a")))
	if _, err := s.Commit(); err != nil {
		t.Fatal(err)
	}
	s.Add(core.NewAtom("P", core.Const("b"))) // never committed
	s.Close()

	r := mustOpen(t, dir)
	defer r.Close()
	if !r.Has(core.NewAtom("P", core.Const("a"))) {
		t.Fatal("committed fact lost")
	}
	if r.Has(core.NewAtom("P", core.Const("b"))) {
		t.Fatal("uncommitted fact survived reopen")
	}
}

// TestTornTailTruncation crashes the log at every byte offset and checks
// that reopening always recovers exactly the longest committed prefix.
func TestTornTailTruncation(t *testing.T) {
	dir := t.TempDir()
	s := mustOpen(t, dir)
	var want []*database.Database // reference state after commit i
	var offsets []int64           // log size after commit i
	ref := database.New()
	batches := parser.MustParseFacts(`
		Edge(a, b). Edge(b, c). Edge(c, a). Tri(a, b, c). Edge(a, b).
	`)
	walPath := filepath.Join(dir, walName(0))
	for i, a := range batches {
		s.Add(a)
		ref.Add(a)
		if i == 2 {
			s.Retract(core.NewAtom("Edge", core.Const("a"), core.Const("b")))
			ref.Retract(core.NewAtom("Edge", core.Const("a"), core.Const("b")))
		}
		if _, err := s.Commit(); err != nil {
			t.Fatal(err)
		}
		fi, err := os.Stat(walPath)
		if err != nil {
			t.Fatal(err)
		}
		want = append(want, ref.Clone())
		offsets = append(offsets, fi.Size())
	}
	s.Close()
	full, err := os.ReadFile(walPath)
	if err != nil {
		t.Fatal(err)
	}

	for cut := int64(0); cut <= int64(len(full)); cut++ {
		// State expected at this cut: the last commit at or before it.
		exp := database.New()
		expVersion := uint64(0)
		for i, off := range offsets {
			if off <= cut {
				exp = want[i]
				expVersion = uint64(i + 1)
			}
		}
		cdir := t.TempDir()
		if err := os.WriteFile(filepath.Join(cdir, walName(0)), full[:cut], 0o644); err != nil {
			t.Fatal(err)
		}
		r, err := Open(cdir, Options{})
		if err != nil {
			t.Fatalf("cut %d: Open: %v", cut, err)
		}
		if r.Version() != expVersion {
			t.Fatalf("cut %d: Version = %d, want %d", cut, r.Version(), expVersion)
		}
		assertMirrors(t, r, exp)
		// The torn tail must be gone from disk.
		fi, err := os.Stat(filepath.Join(cdir, walName(0)))
		if err != nil {
			t.Fatal(err)
		}
		if len(offsets) > 0 && expVersion > 0 && fi.Size() != offsets[expVersion-1] {
			t.Fatalf("cut %d: truncated size %d, want %d", cut, fi.Size(), offsets[expVersion-1])
		}
		r.Close()
	}
}

// TestCorruptRecordTruncated flips a byte after the first commit: the
// damaged suffix must be discarded, the committed prefix kept.
func TestCorruptRecordTruncated(t *testing.T) {
	dir := t.TempDir()
	s := mustOpen(t, dir)
	s.Add(core.NewAtom("P", core.Const("a")))
	s.Commit()
	fi, _ := os.Stat(filepath.Join(dir, walName(0)))
	firstCommit := fi.Size()
	s.Add(core.NewAtom("P", core.Const("b")))
	s.Commit()
	s.Close()

	path := filepath.Join(dir, walName(0))
	raw, _ := os.ReadFile(path)
	raw[firstCommit+5] ^= 0xff
	os.WriteFile(path, raw, 0o644)

	r := mustOpen(t, dir)
	defer r.Close()
	if r.Version() != 1 {
		t.Fatalf("Version = %d, want 1", r.Version())
	}
	if r.Has(core.NewAtom("P", core.Const("b"))) {
		t.Fatal("fact behind corrupt record survived")
	}
}

// TestACDomPinReplay exercises the pinned-ACDom lifecycle across a
// reopen, including the unpin-while-supported retraction whose only
// effect is the pin removal (DeleteNotify returns removed=false).
func TestACDomPinReplay(t *testing.T) {
	for stop := 1; stop <= 4; stop++ {
		dir := t.TempDir()
		s := mustOpen(t, dir)
		ref := database.New()
		steps := []func(database.Store){
			func(d database.Store) { d.Add(core.NewAtom("P", core.Const("a"))) },
			func(d database.Store) { d.Add(core.NewAtom(core.ACDom, core.Const("a"))) },
			func(d database.Store) { d.Retract(core.NewAtom(core.ACDom, core.Const("a"))) },
			func(d database.Store) { d.Retract(core.NewAtom("P", core.Const("a"))) },
		}
		for i := 0; i < stop; i++ {
			steps[i](s)
			steps[i](ref)
		}
		s.Commit()
		s.Close()
		r := mustOpen(t, dir)
		assertMirrors(t, r, ref)
		r.Close()
	}
}

func TestCompact(t *testing.T) {
	dir := t.TempDir()
	s := mustOpen(t, dir)
	ref := database.New()
	for _, a := range parser.MustParseFacts(`
		Edge(a, b). Edge(b, c). Edge(c, d). Mark(b).
	`) {
		s.Add(a)
		ref.Add(a)
	}
	// Retractions create swap-remove history the snapshot must preserve.
	s.Retract(core.NewAtom("Edge", core.Const("a"), core.Const("b")))
	ref.Retract(core.NewAtom("Edge", core.Const("a"), core.Const("b")))
	s.Add(core.NewAtom(core.ACDom, core.Const("z"))) // pinned, unsupported
	ref.Add(core.NewAtom(core.ACDom, core.Const("z")))
	s.Commit()
	v := s.Version()
	if err := s.Compact(); err != nil {
		t.Fatalf("Compact: %v", err)
	}
	if s.Version() != v {
		t.Fatalf("Compact changed version: %d → %d", v, s.Version())
	}
	assertMirrors(t, s, ref)
	// Post-compact mutations land in the new generation's log.
	s.Add(core.NewAtom("Mark", core.Const("c")))
	ref.Add(core.NewAtom("Mark", core.Const("c")))
	s.Commit()
	s.Close()

	r := mustOpen(t, dir)
	defer r.Close()
	assertMirrors(t, r, ref)
	if r.Version() != v+1 {
		t.Fatalf("Version = %d, want %d", r.Version(), v+1)
	}
	// Old generation files must be gone.
	if _, err := os.Stat(filepath.Join(dir, walName(0))); !os.IsNotExist(err) {
		t.Fatalf("wal of generation 0 still present: %v", err)
	}
	// Enumeration order must survive the snapshot: compare Facts order
	// against a store that never compacted.
	ek := core.RelKey{Name: "Edge", Arity: 2}
	gotOrder := r.Facts(ek)
	wantOrder := ref.Facts(ek)
	for i := range wantOrder {
		if gotOrder[i].String() != wantOrder[i].String() {
			t.Fatalf("enumeration order diverged at %d: %s vs %s", i, gotOrder[i], wantOrder[i])
		}
	}
}

// TestInterruptedCompact simulates a crash between snapshot publication
// and old-file cleanup: a stale previous-generation log must not be
// replayed on top of the new snapshot.
func TestInterruptedCompact(t *testing.T) {
	dir := t.TempDir()
	s := mustOpen(t, dir)
	s.Add(core.NewAtom("P", core.Const("a")))
	s.Retract(core.NewAtom("P", core.Const("a")))
	s.Add(core.NewAtom("Q", core.Const("b")))
	s.Commit()
	ref := s.Clone()
	s.Compact()
	s.Close()
	// Resurrect a stale generation-0 log and a leftover tmp file, as an
	// interrupted compaction could leave behind.
	os.WriteFile(filepath.Join(dir, walName(0)), []byte("garbage"), 0o644)
	os.WriteFile(filepath.Join(dir, snapName(2)+".tmp"), []byte("partial"), 0o644)

	r := mustOpen(t, dir)
	defer r.Close()
	assertMirrors(t, r, ref)
	if _, err := os.Stat(filepath.Join(dir, walName(0))); !os.IsNotExist(err) {
		t.Fatal("stale generation-0 log not removed")
	}
	if _, err := os.Stat(filepath.Join(dir, snapName(2)+".tmp")); !os.IsNotExist(err) {
		t.Fatal("leftover tmp not removed")
	}
}

func TestPackKeyOrderPreserving(t *testing.T) {
	tuples := [][]uint32{
		{0}, {1}, {255}, {256}, {1 << 16}, {1<<31 + 5},
		{0, 0}, {0, 1}, {1, 0}, {255, 256}, {256, 255},
	}
	type entry struct {
		relID uint32
		ids   []uint32
	}
	var entries []entry
	for _, relID := range []uint32{0, 1, 300} {
		for _, ids := range tuples {
			entries = append(entries, entry{relID, ids})
		}
	}
	less := func(a, b entry) bool {
		if a.relID != b.relID {
			return a.relID < b.relID
		}
		for i := 0; i < len(a.ids) && i < len(b.ids); i++ {
			if a.ids[i] != b.ids[i] {
				return a.ids[i] < b.ids[i]
			}
		}
		return len(a.ids) < len(b.ids)
	}
	for _, a := range entries {
		for _, b := range entries {
			ka := PackKey(nil, a.relID, a.ids)
			kb := PackKey(nil, b.relID, b.ids)
			cmp := bytes.Compare(ka, kb)
			switch {
			case less(a, b) && cmp >= 0 && len(a.ids) == len(b.ids):
				t.Fatalf("PackKey not order-preserving: %v < %v but cmp=%d", a, b, cmp)
			case less(b, a) && cmp <= 0 && len(a.ids) == len(b.ids):
				t.Fatalf("PackKey not order-preserving: %v > %v but cmp=%d", a, b, cmp)
			}
		}
	}
	relID, ids, ok := UnpackKey(PackKey(nil, 7, []uint32{3, 9}))
	if !ok || relID != 7 || len(ids) != 2 || ids[0] != 3 || ids[1] != 9 {
		t.Fatalf("UnpackKey roundtrip: %d %v %v", relID, ids, ok)
	}
}

// TestAdversarialNames journals terms and relations whose names contain
// newlines, NULs, and multi-byte runes: framing must be length-driven.
func TestAdversarialNames(t *testing.T) {
	dir := t.TempDir()
	s := mustOpen(t, dir)
	ref := database.New()
	nasty := []string{"a\nb", "c\x00d", "héllo→世界", `"quoted"`, "back\\slash", ""}
	for i, n := range nasty {
		a := core.NewAtom("R\n\x00"+n, core.Const(n), core.NewNull("n\x00"+n))
		if i%2 == 0 {
			a.Annotation = []core.Term{core.Const("ann" + n)}
		}
		s.Add(a)
		ref.Add(a)
	}
	s.Commit()
	s.Close()
	r := mustOpen(t, dir)
	defer r.Close()
	assertMirrors(t, r, ref)
}

func TestCloseDiscardsWrites(t *testing.T) {
	dir := t.TempDir()
	s := mustOpen(t, dir)
	s.Add(core.NewAtom("P", core.Const("a")))
	s.Commit()
	s.Close()
	if s.Add(core.NewAtom("P", core.Const("b"))) {
		t.Fatal("Add succeeded on closed store")
	}
	if _, err := s.AddErr(core.NewAtom("P", core.Const("c"))); err == nil {
		t.Fatal("AddErr on closed store returned nil error")
	}
	if !s.Has(core.NewAtom("P", core.Const("a"))) {
		t.Fatal("reads must keep working after Close")
	}
}
