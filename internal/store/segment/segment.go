package segment

import (
	"bufio"
	"errors"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"sort"
	"strings"

	"guardedrules/internal/core"
	"guardedrules/internal/database"
)

// errCorrupt marks a torn or damaged record. In the write-ahead log it
// is expected (a crash tears the tail, which open truncates); in a
// snapshot it is fatal, since snapshots are published by atomic rename.
var errCorrupt = errors.New("segment: corrupt record")

// ErrClosed is returned by mutations on a closed store.
var ErrClosed = errors.New("segment: store is closed")

// Options configures a Store.
type Options struct {
	// Sync fsyncs the log on every Commit. Without it a commit is
	// durable against process crash but not against power loss.
	Sync bool
}

// Store is a durable database.Store: an in-memory *database.Database
// mirror plus an append-only write-ahead log and generation-numbered
// snapshots in a single directory. Reads delegate to the mirror;
// mutations apply to the mirror and journal the operation; Commit makes
// the journaled prefix crash-durable. Uncommitted mutations are visible
// in memory but discarded by a reopen.
//
// Like *database.Database, a Store is not safe for concurrent mutation;
// engines clone it at entry and never write back.
type Store struct {
	dir  string
	opts Options

	mem *database.Database

	f   *os.File
	w   *bufio.Writer
	gen uint64

	version     uint64
	relKeys     []core.RelKey
	relIDs      map[core.RelKey]uint32
	loggedTerms int // intern ids below this are journaled
	pending     int // mutations journaled since the last commit

	scratch []byte
	err     error // first journaling failure; store refuses writes after
	closed  bool
}

var _ database.Store = (*Store)(nil)

func snapName(gen uint64) string { return fmt.Sprintf("snapshot-%06d.seg", gen) }
func walName(gen uint64) string  { return fmt.Sprintf("wal-%06d.log", gen) }

// Open opens (or creates) the store rooted at dir. It loads the newest
// snapshot, replays the matching write-ahead log up to its last valid
// commit record, truncates any torn tail, and removes files from older
// generations and interrupted compactions.
func Open(dir string, opts Options) (*Store, error) {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, fmt.Errorf("segment: %w", err)
	}
	s := &Store{
		dir:    dir,
		opts:   opts,
		mem:    database.New(),
		relIDs: make(map[core.RelKey]uint32),
	}

	entries, err := os.ReadDir(dir)
	if err != nil {
		return nil, fmt.Errorf("segment: %w", err)
	}
	var stale []string
	haveSnap := false
	for _, e := range entries {
		name := e.Name()
		switch {
		case strings.HasSuffix(name, ".tmp"):
			stale = append(stale, name)
		case strings.HasPrefix(name, "snapshot-") && strings.HasSuffix(name, ".seg"):
			var g uint64
			if _, err := fmt.Sscanf(name, "snapshot-%06d.seg", &g); err == nil && (!haveSnap || g > s.gen) {
				s.gen, haveSnap = g, true
			}
		}
	}
	if haveSnap {
		if err := s.loadSnapshot(filepath.Join(dir, snapName(s.gen))); err != nil {
			return nil, err
		}
	}
	for _, e := range entries {
		name := e.Name()
		var g uint64
		if _, err := fmt.Sscanf(name, "snapshot-%06d.seg", &g); err == nil && g < s.gen {
			stale = append(stale, name)
		}
		if _, err := fmt.Sscanf(name, "wal-%06d.log", &g); err == nil && g != s.gen {
			stale = append(stale, name)
		}
	}
	for _, name := range stale {
		os.Remove(filepath.Join(dir, name))
	}

	if err := s.openWAL(); err != nil {
		return nil, err
	}
	s.loggedTerms = s.mem.InternEpoch()
	return s, nil
}

// openWAL opens the current generation's log, replays its committed
// prefix, and truncates everything after the last valid commit record.
func (s *Store) openWAL() error {
	path := filepath.Join(s.dir, walName(s.gen))
	f, err := os.OpenFile(path, os.O_RDWR|os.O_CREATE, 0o644)
	if err != nil {
		return fmt.Errorf("segment: %w", err)
	}
	// Pass 1: find the offset after the last valid commit record.
	rr := &recordReader{r: bufio.NewReader(f)}
	var committed int64
	for {
		payload, err := rr.next()
		if err != nil {
			if err == io.EOF || errors.Is(err, errCorrupt) {
				break
			}
			f.Close()
			return err
		}
		if payload[0] == recCommit {
			committed = rr.off
		}
	}
	// Pass 2: replay records up to that offset.
	if _, err := f.Seek(0, io.SeekStart); err != nil {
		f.Close()
		return fmt.Errorf("segment: %w", err)
	}
	rr = &recordReader{r: bufio.NewReader(io.LimitReader(f, committed))}
	for {
		payload, err := rr.next()
		if err == io.EOF {
			break
		}
		if err != nil {
			f.Close()
			return fmt.Errorf("segment: committed prefix of %s: %w", walName(s.gen), err)
		}
		if err := s.apply(payload); err != nil {
			f.Close()
			return fmt.Errorf("segment: %s: %w", walName(s.gen), err)
		}
	}
	// Drop the torn/uncommitted tail and position the writer at the end.
	if err := f.Truncate(committed); err != nil {
		f.Close()
		return fmt.Errorf("segment: %w", err)
	}
	if _, err := f.Seek(committed, io.SeekStart); err != nil {
		f.Close()
		return fmt.Errorf("segment: %w", err)
	}
	s.f = f
	s.w = bufio.NewWriter(f)
	return nil
}

// apply replays one record payload onto the in-memory mirror.
func (s *Store) apply(payload []byte) error {
	typ, body := payload[0], payload[1:]
	switch typ {
	case recTerm:
		if len(body) < 1 {
			return fmt.Errorf("%w: short term record", errCorrupt)
		}
		t := core.Term{Kind: core.TermKind(body[0]), Name: string(body[1:])}
		want := uint32(s.mem.InternEpoch())
		if got := s.mem.InternTerm(t); got != want {
			return fmt.Errorf("%w: term %q interned as %d, want %d", errCorrupt, t.Name, got, want)
		}
	case recRel:
		if len(body) < 4 {
			return fmt.Errorf("%w: short rel record", errCorrupt)
		}
		rk := core.RelKey{
			AnnArity: int(uint16(body[0])<<8 | uint16(body[1])),
			Arity:    int(uint16(body[2])<<8 | uint16(body[3])),
			Name:     string(body[4:]),
		}
		s.relIDs[rk] = uint32(len(s.relKeys))
		s.relKeys = append(s.relKeys, rk)
	case recAdd, recDel, recFact:
		a, err := s.atomFromKey(body)
		if err != nil {
			return err
		}
		switch typ {
		case recAdd:
			if _, err := s.mem.AddErr(a); err != nil {
				return fmt.Errorf("replay add %s: %w", a.String(), err)
			}
		case recDel:
			if _, err := s.mem.DeleteNotify(a, nil); err != nil {
				return fmt.Errorf("replay del %s: %w", a.String(), err)
			}
		case recFact:
			s.mem.RestoreFact(a)
		}
	case recSupport:
		if len(body) != 8 {
			return fmt.Errorf("%w: short support record", errCorrupt)
		}
		id := beUint32(body)
		if int(id) >= s.mem.InternEpoch() {
			return fmt.Errorf("%w: support for unknown term id %d", errCorrupt, id)
		}
		s.mem.SetACDomSupport(s.mem.Term(id), int(beUint32(body[4:])))
	case recPin:
		if len(body) != 4 {
			return fmt.Errorf("%w: short pin record", errCorrupt)
		}
		id := beUint32(body)
		if int(id) >= s.mem.InternEpoch() {
			return fmt.Errorf("%w: pin for unknown term id %d", errCorrupt, id)
		}
		s.mem.PinACDom(s.mem.Term(id))
	case recCommit:
		if len(body) != 8 {
			return fmt.Errorf("%w: short commit record", errCorrupt)
		}
		v := uint64(beUint32(body))<<32 | uint64(beUint32(body[4:]))
		s.version = v
	default:
		return fmt.Errorf("%w: unknown record type %d", errCorrupt, typ)
	}
	return nil
}

func beUint32(b []byte) uint32 {
	return uint32(b[0])<<24 | uint32(b[1])<<16 | uint32(b[2])<<8 | uint32(b[3])
}

// atomFromKey reconstructs a ground atom from a packed (relID, ids) key
// using the replayed relation table and intern table.
func (s *Store) atomFromKey(key []byte) (core.Atom, error) {
	relID, ids, ok := UnpackKey(key)
	if !ok || relID >= uint32(len(s.relKeys)) {
		return core.Atom{}, fmt.Errorf("%w: bad packed key", errCorrupt)
	}
	rk := s.relKeys[relID]
	if len(ids) != rk.Arity+rk.AnnArity {
		return core.Atom{}, fmt.Errorf("%w: key arity %d for %s", errCorrupt, len(ids), rk.Name)
	}
	epoch := uint32(s.mem.InternEpoch())
	for _, id := range ids {
		if id >= epoch {
			return core.Atom{}, fmt.Errorf("%w: unknown term id %d", errCorrupt, id)
		}
	}
	a := core.Atom{Relation: rk.Name}
	if rk.Arity > 0 {
		a.Args = make([]core.Term, rk.Arity)
		for i := range a.Args {
			a.Args[i] = s.mem.Term(ids[i])
		}
	}
	if rk.AnnArity > 0 {
		a.Annotation = make([]core.Term, rk.AnnArity)
		for i := range a.Annotation {
			a.Annotation[i] = s.mem.Term(ids[rk.Arity+i])
		}
	}
	return a, nil
}

// --- journaling ---------------------------------------------------------

// logNewTerms journals intern-table growth since the last call, so the
// dense id space replays exactly.
func (s *Store) logNewTerms() {
	epoch := s.mem.InternEpoch()
	for id := s.loggedTerms; id < epoch; id++ {
		t := s.mem.Term(uint32(id))
		s.scratch = append(s.scratch[:0], recTerm, byte(t.Kind))
		s.scratch = append(s.scratch, t.Name...)
		s.writeRecord(s.scratch)
	}
	s.loggedTerms = epoch
}

// relIDFor returns the durable relation id for rk, journaling a rel
// record the first time rk is seen.
func (s *Store) relIDFor(rk core.RelKey) uint32 {
	if id, ok := s.relIDs[rk]; ok {
		return id
	}
	id := uint32(len(s.relKeys))
	s.relIDs[rk] = id
	s.relKeys = append(s.relKeys, rk)
	s.scratch = append(s.scratch[:0], recRel,
		byte(rk.AnnArity>>8), byte(rk.AnnArity),
		byte(rk.Arity>>8), byte(rk.Arity))
	s.scratch = append(s.scratch, rk.Name...)
	s.writeRecord(s.scratch)
	return id
}

// journalOp journals an add or del of a ground fact already applied to
// the mirror.
func (s *Store) journalOp(typ byte, a core.Atom) {
	var buf [16]uint32
	ids, ok := s.mem.FactIDs(buf[:0], a)
	if !ok {
		// Unreachable for applied mutations: the mirror interned the terms.
		s.fail(fmt.Errorf("segment: fact %s has unknown terms", a.String()))
		return
	}
	s.logNewTerms()
	relID := s.relIDFor(a.Key())
	s.scratch = append(s.scratch[:0], typ)
	s.scratch = PackKey(s.scratch, relID, ids)
	s.writeRecord(s.scratch)
	s.pending++
}

func (s *Store) writeRecord(payload []byte) {
	if s.err != nil {
		return
	}
	rec := appendRecord(nil, payload)
	if _, err := s.w.Write(rec); err != nil {
		s.fail(fmt.Errorf("segment: append: %w", err))
	}
}

// fail latches the first journaling error; the store refuses further
// mutation so the mirror cannot silently diverge from the log.
func (s *Store) fail(err error) {
	if s.err == nil {
		s.err = err
	}
}

// Err returns the latched journaling error, if any.
func (s *Store) Err() error { return s.err }

// Commit appends a commit record, flushes, and (with Options.Sync)
// fsyncs: everything journaled so far becomes crash-durable, and the
// store's version advances. Reopening discards anything after the last
// commit record.
func (s *Store) Commit() (uint64, error) {
	if s.closed {
		return s.version, ErrClosed
	}
	if s.err != nil {
		return s.version, s.err
	}
	next := s.version + 1
	s.scratch = append(s.scratch[:0], recCommit,
		byte(next>>56), byte(next>>48), byte(next>>40), byte(next>>32),
		byte(next>>24), byte(next>>16), byte(next>>8), byte(next))
	s.writeRecord(s.scratch)
	if s.err == nil {
		if err := s.w.Flush(); err != nil {
			s.fail(fmt.Errorf("segment: flush: %w", err))
		}
	}
	if s.err == nil && s.opts.Sync {
		if err := s.f.Sync(); err != nil {
			s.fail(fmt.Errorf("segment: sync: %w", err))
		}
	}
	if s.err != nil {
		return s.version, s.err
	}
	s.version = next
	s.pending = 0
	return s.version, nil
}

// Version returns the version of the last commit (0 before any commit).
func (s *Store) Version() uint64 { return s.version }

// Pending reports the number of mutations journaled since the last
// commit.
func (s *Store) Pending() int { return s.pending }

// Dir returns the store's directory.
func (s *Store) Dir() string { return s.dir }

// Close flushes and closes the log. Uncommitted mutations are not made
// durable: a reopen discards them, exactly as a crash would. Reads keep
// working on the in-memory mirror; mutations return ErrClosed.
func (s *Store) Close() error {
	if s.closed {
		return nil
	}
	s.closed = true
	var first error
	if err := s.w.Flush(); err != nil && first == nil {
		first = err
	}
	if s.opts.Sync {
		if err := s.f.Sync(); err != nil && first == nil {
			first = err
		}
	}
	if err := s.f.Close(); err != nil && first == nil {
		first = err
	}
	return first
}

// --- database.Store: writers -------------------------------------------

// AddNotify applies the mutation to the mirror and journals it on
// success. See database.Writer.
func (s *Store) AddNotify(a core.Atom, notify func(core.Atom)) (bool, error) {
	if s.closed {
		return false, ErrClosed
	}
	if s.err != nil {
		return false, s.err
	}
	added, err := s.mem.AddNotify(a, notify)
	if err != nil || !added {
		return added, err
	}
	s.journalOp(recAdd, a)
	return true, s.err
}

func (s *Store) Add(a core.Atom) bool {
	added, _ := s.AddNotify(a, nil)
	return added
}

func (s *Store) AddErr(a core.Atom) (bool, error) { return s.AddNotify(a, nil) }

// DeleteNotify applies the retraction to the mirror and journals it. A
// retraction is journaled even when no fact was removed if it may have
// unpinned an explicit ACDom entry — that side effect must replay.
func (s *Store) DeleteNotify(a core.Atom, notify func(core.Atom)) (bool, error) {
	if s.closed {
		return false, ErrClosed
	}
	if s.err != nil {
		return false, s.err
	}
	removed, err := s.mem.DeleteNotify(a, notify)
	if err != nil {
		return removed, err
	}
	if removed || a.Relation == core.ACDom {
		if _, ok := s.mem.FactIDs(nil, a); ok {
			s.journalOp(recDel, a)
		}
	}
	return removed, s.err
}

func (s *Store) Retract(a core.Atom) bool {
	removed, _ := s.DeleteNotify(a, nil)
	return removed
}

func (s *Store) AddCost(a core.Atom) int { return s.mem.AddCost(a) }

// InternTerm interns into the mirror and journals the new id, so the
// dense id space and InternEpoch survive restarts.
func (s *Store) InternTerm(t core.Term) uint32 {
	id := s.mem.InternTerm(t)
	if !s.closed {
		s.logNewTerms()
	}
	return id
}

// --- database.Store: reads (delegated to the mirror) --------------------

func (s *Store) Has(a core.Atom) bool                       { return s.mem.Has(a) }
func (s *Store) HasApplied(a core.Atom, su core.Subst) bool { return s.mem.HasApplied(a, su) }
func (s *Store) SeenKey(rk core.RelKey, key []byte) bool    { return s.mem.SeenKey(rk, key) }
func (s *Store) SeenIDs(rk core.RelKey, ids []uint32) bool {
	return s.mem.SeenIDs(rk, ids)
}
func (s *Store) AppliedKey(dst []byte, a core.Atom, su core.Subst) ([]byte, bool) {
	return s.mem.AppliedKey(dst, a, su)
}
func (s *Store) FactIDs(dst []uint32, a core.Atom) ([]uint32, bool) {
	return s.mem.FactIDs(dst, a)
}
func (s *Store) IDTuples(rk core.RelKey) []uint32 { return s.mem.IDTuples(rk) }
func (s *Store) ForEachIndexWithID(rk core.RelKey, pos int, id uint32, fn func(int) bool) {
	s.mem.ForEachIndexWithID(rk, pos, id, fn)
}
func (s *Store) IndexWithID(rk core.RelKey, pos int, id uint32) []int32 {
	return s.mem.IndexWithID(rk, pos, id)
}
func (s *Store) Facts(rk core.RelKey) []core.Atom { return s.mem.Facts(rk) }
func (s *Store) FactsWith(rk core.RelKey, pos int, t core.Term) []core.Atom {
	return s.mem.FactsWith(rk, pos, t)
}
func (s *Store) FactsContaining(t core.Term) []core.Atom { return s.mem.FactsContaining(t) }
func (s *Store) ForEachWith(rk core.RelKey, pos int, t core.Term, fn func(core.Atom) bool) {
	s.mem.ForEachWith(rk, pos, t, fn)
}
func (s *Store) ForEachWithID(rk core.RelKey, pos int, id uint32, fn func(core.Atom) bool) {
	s.mem.ForEachWithID(rk, pos, id, fn)
}
func (s *Store) ForEachFact(rk core.RelKey, fn func(core.Atom) bool) {
	s.mem.ForEachFact(rk, fn)
}
func (s *Store) CountWith(rk core.RelKey, pos int, t core.Term) int {
	return s.mem.CountWith(rk, pos, t)
}
func (s *Store) Relations() []core.RelKey     { return s.mem.Relations() }
func (s *Store) Len() int                     { return s.mem.Len() }
func (s *Store) All() []core.Atom             { return s.mem.All() }
func (s *Store) UserFacts() []core.Atom       { return s.mem.UserFacts() }
func (s *Store) GroundAtoms() []core.Atom     { return s.mem.GroundAtoms() }
func (s *Store) Constants() []core.Term       { return s.mem.Constants() }
func (s *Store) Terms() core.TermSet          { return s.mem.Terms() }
func (s *Store) Nulls() []core.Term           { return s.mem.Nulls() }
func (s *Store) String() string               { return s.mem.String() }
func (s *Store) ACDomSupport(t core.Term) int { return s.mem.ACDomSupport(t) }
func (s *Store) ACDomPinned(t core.Term) bool { return s.mem.ACDomPinned(t) }
func (s *Store) TermOccursIn(rk core.RelKey, t core.Term) bool {
	return s.mem.TermOccursIn(rk, t)
}

// --- database.Store: stats and interning --------------------------------

func (s *Store) RelSize(rk core.RelKey) int             { return s.mem.RelSize(rk) }
func (s *Store) DistinctAt(rk core.RelKey, pos int) int { return s.mem.DistinctAt(rk, pos) }
func (s *Store) CountWithID(rk core.RelKey, pos int, id uint32) int {
	return s.mem.CountWithID(rk, pos, id)
}
func (s *Store) InternEpoch() int                  { return s.mem.InternEpoch() }
func (s *Store) TermID(t core.Term) (uint32, bool) { return s.mem.TermID(t) }
func (s *Store) Term(id uint32) core.Term          { return s.mem.Term(id) }

// Clone returns an in-memory working copy with the identical id space;
// engines clone at entry and run fixpoints on the copy.
func (s *Store) Clone() *database.Database { return s.mem.Clone() }

// sortedRelKeys returns the mirror's relations in a deterministic order
// for snapshotting.
func sortedRelKeys(d *database.Database) []core.RelKey {
	rks := d.Relations()
	sort.Slice(rks, func(i, j int) bool {
		a, b := rks[i], rks[j]
		if a.Name != b.Name {
			return a.Name < b.Name
		}
		if a.AnnArity != b.AnnArity {
			return a.AnnArity < b.AnnArity
		}
		return a.Arity < b.Arity
	})
	return rks
}
