// Package parser implements a textual syntax for existential rule theories
// and databases.
//
// The grammar, line oriented with '%' comments:
//
//	rule     ::= [body] "->" [exists] head "."
//	body     ::= literal ("," literal)*
//	literal  ::= ["not"] atom
//	exists   ::= "exists" var ("," var)* "."
//	head     ::= atom ("," atom)*
//	atom     ::= ident [ "[" term ("," term)* "]" ] "(" [term ("," term)*] ")"
//	fact     ::= atom "."                    (ground, in database files)
//	term     ::= variable | constant | null
//
// Identifiers starting with an upper-case letter or '?' are variables;
// identifiers starting with a lower-case letter or digit are constants;
// '_:name' is a labeled null (allowed in databases only).
package parser

import (
	"fmt"
	"strings"
	"unicode"
)

type tokenKind int

const (
	tokEOF tokenKind = iota
	tokIdent
	tokVariable
	tokNull
	tokArrow  // ->
	tokComma  // ,
	tokDot    // .
	tokLParen // (
	tokRParen // )
	tokLBrack // [
	tokRBrack // ]
	tokNot    // not / !
	tokExists // exists
)

func (k tokenKind) String() string {
	switch k {
	case tokEOF:
		return "end of input"
	case tokIdent:
		return "identifier"
	case tokVariable:
		return "variable"
	case tokNull:
		return "null"
	case tokArrow:
		return "'->'"
	case tokComma:
		return "','"
	case tokDot:
		return "'.'"
	case tokLParen:
		return "'('"
	case tokRParen:
		return "')'"
	case tokLBrack:
		return "'['"
	case tokRBrack:
		return "']'"
	case tokNot:
		return "'not'"
	case tokExists:
		return "'exists'"
	default:
		return fmt.Sprintf("token(%d)", int(k))
	}
}

type token struct {
	kind tokenKind
	text string
	line int
	col  int
}

type lexer struct {
	src  string
	pos  int
	line int
	col  int
}

func newLexer(src string) *lexer {
	return &lexer{src: src, line: 1, col: 1}
}

func (l *lexer) errorf(line, col int, format string, args ...interface{}) error {
	return fmt.Errorf("%d:%d: %s", line, col, fmt.Sprintf(format, args...))
}

func (l *lexer) peekByte() (byte, bool) {
	if l.pos >= len(l.src) {
		return 0, false
	}
	return l.src[l.pos], true
}

func (l *lexer) advance() byte {
	c := l.src[l.pos]
	l.pos++
	if c == '\n' {
		l.line++
		l.col = 1
	} else {
		l.col++
	}
	return c
}

func isIdentStart(c byte) bool {
	return c == '_' || c == '?' || unicode.IsLetter(rune(c)) || unicode.IsDigit(rune(c))
}

func isIdentPart(c byte) bool {
	return c == '_' || unicode.IsLetter(rune(c)) || unicode.IsDigit(rune(c)) || c == '\''
}

// next returns the next token.
func (l *lexer) next() (token, error) {
	for {
		c, ok := l.peekByte()
		if !ok {
			return token{kind: tokEOF, line: l.line, col: l.col}, nil
		}
		switch {
		case c == ' ' || c == '\t' || c == '\r' || c == '\n':
			l.advance()
		case c == '%':
			for {
				c2, ok := l.peekByte()
				if !ok || c2 == '\n' {
					break
				}
				l.advance()
			}
		default:
			goto scan
		}
	}
scan:
	line, col := l.line, l.col
	c := l.advance()
	switch c {
	case ',':
		return token{tokComma, ",", line, col}, nil
	case '.':
		return token{tokDot, ".", line, col}, nil
	case '(':
		return token{tokLParen, "(", line, col}, nil
	case ')':
		return token{tokRParen, ")", line, col}, nil
	case '[':
		return token{tokLBrack, "[", line, col}, nil
	case ']':
		return token{tokRBrack, "]", line, col}, nil
	case '!':
		return token{tokNot, "!", line, col}, nil
	case '-':
		if c2, ok := l.peekByte(); ok && c2 == '>' {
			l.advance()
			return token{tokArrow, "->", line, col}, nil
		}
		return token{}, l.errorf(line, col, "unexpected character '-' (expected '->')")
	}
	if c == '_' {
		if c2, ok := l.peekByte(); ok && c2 == ':' {
			l.advance()
			var sb strings.Builder
			for {
				c3, ok := l.peekByte()
				if !ok || !isIdentPart(c3) {
					break
				}
				sb.WriteByte(l.advance())
			}
			if sb.Len() == 0 {
				return token{}, l.errorf(line, col, "empty null name after '_:'")
			}
			return token{tokNull, sb.String(), line, col}, nil
		}
	}
	if isIdentStart(c) {
		var sb strings.Builder
		sb.WriteByte(c)
		for {
			c2, ok := l.peekByte()
			if !ok || !isIdentPart(c2) {
				break
			}
			sb.WriteByte(l.advance())
		}
		text := sb.String()
		switch text {
		case "not":
			return token{tokNot, text, line, col}, nil
		case "exists":
			return token{tokExists, text, line, col}, nil
		}
		first := rune(text[0])
		if first == '?' || first == '_' || unicode.IsUpper(first) {
			name := strings.TrimPrefix(text, "?")
			if name == "" {
				return token{}, l.errorf(line, col, "empty variable name after '?'")
			}
			return token{tokVariable, name, line, col}, nil
		}
		return token{tokIdent, text, line, col}, nil
	}
	return token{}, l.errorf(line, col, "unexpected character %q", string(rune(c)))
}
