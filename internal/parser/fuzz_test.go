package parser

import (
	"strings"
	"testing"

	"guardedrules/internal/core"
	"guardedrules/internal/lint"
)

// FuzzParse checks that the parser never panics and that everything it
// accepts survives a print → re-parse round trip with the same canonical
// rules. Run long with: go test -fuzz=FuzzParse ./internal/parser
func FuzzParse(f *testing.F) {
	seeds := []string{
		`Publication(X) -> exists K1,K2. Keywords(X,K1,K2).`,
		`R(X,Y), not S(Y) -> P(X).`,
		`-> Scientific(t1).`,
		`R[U](X) -> P[U](X).`,
		`A(X)->B(X).C(Y)->D(Y).`,
		`Zero() -> One().`,
		`R(a,_:n1).`,
		`% comment only`,
		`R(X,`,
		`not -> .`,
		"R(X) -> exists Y,Z. S(X,Y,Z).",
		"hasTopic(X,Z), hasAuthor(X,U) -> Q(U).",
	}
	for _, s := range seeds {
		f.Add(s)
	}
	f.Fuzz(func(t *testing.T, src string) {
		prog, err := Parse(src)
		if err != nil {
			return // rejection is fine; panics are not
		}
		printedRules := PrintTheory(prog.Theory)
		printedFacts := PrintFacts(prog.Facts)
		re, err := Parse(printedRules + printedFacts)
		if err != nil {
			t.Fatalf("printed output failed to re-parse: %v\ninput: %q\nprinted: %q",
				err, src, printedRules+printedFacts)
		}
		if len(re.Theory.Rules) != len(prog.Theory.Rules) {
			t.Fatalf("rule count changed after round trip: %d vs %d",
				len(prog.Theory.Rules), len(re.Theory.Rules))
		}
		for i := range prog.Theory.Rules {
			if core.CanonicalKey(prog.Theory.Rules[i]) != core.CanonicalKey(re.Theory.Rules[i]) {
				t.Fatalf("rule %d changed after round trip:\n%v\n%v",
					i, prog.Theory.Rules[i], re.Theory.Rules[i])
			}
		}
		if len(re.Facts) != len(prog.Facts) {
			t.Fatalf("fact count changed after round trip")
		}
	})
}

// FuzzLint feeds everything the lenient parser accepts to the full lint
// registry: no pass may panic, and every diagnostic span must lie within
// the source text.
func FuzzLint(f *testing.F) {
	seeds := []string{
		`T(X,Y), T(Y,Z) -> T(X,Z).`,
		`R(X,Y) -> P(X,W).`, // unsafe: only parses leniently
		`Node(X), not Bad(X) -> Good(X).
Node(X), not Good(X) -> Bad(X).`,
		`Person(X) -> exists Y. hasParent(X,Y).
hasParent(X,Y) -> Person(Y).`,
		`R(X) -> ACDom(X).`,
		`Wrote(X,Author), Edited(X,Authr) -> Q(Author).`,
		`R(X,Y) -> P(X).
R(X) -> P(X).`,
	}
	for _, s := range seeds {
		f.Add(s)
	}
	f.Fuzz(func(t *testing.T, src string) {
		prog, err := ParseLenient(src)
		if err != nil {
			return
		}
		lines := strings.Split(src, "\n")
		for _, d := range lint.Run(prog.Theory) {
			s := d.Span
			if !s.Known() {
				continue
			}
			if s.Line > len(lines) {
				t.Fatalf("span %v beyond last line %d of input %q (diag %v)",
					s, len(lines), src, d)
			}
			// Columns are byte-based and 1-indexed; the span may point at
			// the position just past the final byte (e.g. a trailing dot).
			if s.Col > len(lines[s.Line-1])+1 {
				t.Fatalf("span %v beyond line %q of input %q (diag %v)",
					s, lines[s.Line-1], src, d)
			}
			if s.EndLine > 0 && (s.EndLine < s.Line || (s.EndLine == s.Line && s.EndCol < s.Col)) {
				t.Fatalf("span %v ends before it starts (input %q, diag %v)", s, src, d)
			}
		}
	})
}
