package parser

import (
	"testing"

	"guardedrules/internal/core"
)

// FuzzParse checks that the parser never panics and that everything it
// accepts survives a print → re-parse round trip with the same canonical
// rules. Run long with: go test -fuzz=FuzzParse ./internal/parser
func FuzzParse(f *testing.F) {
	seeds := []string{
		`Publication(X) -> exists K1,K2. Keywords(X,K1,K2).`,
		`R(X,Y), not S(Y) -> P(X).`,
		`-> Scientific(t1).`,
		`R[U](X) -> P[U](X).`,
		`A(X)->B(X).C(Y)->D(Y).`,
		`Zero() -> One().`,
		`R(a,_:n1).`,
		`% comment only`,
		`R(X,`,
		`not -> .`,
		"R(X) -> exists Y,Z. S(X,Y,Z).",
		"hasTopic(X,Z), hasAuthor(X,U) -> Q(U).",
	}
	for _, s := range seeds {
		f.Add(s)
	}
	f.Fuzz(func(t *testing.T, src string) {
		prog, err := Parse(src)
		if err != nil {
			return // rejection is fine; panics are not
		}
		printedRules := PrintTheory(prog.Theory)
		printedFacts := PrintFacts(prog.Facts)
		re, err := Parse(printedRules + printedFacts)
		if err != nil {
			t.Fatalf("printed output failed to re-parse: %v\ninput: %q\nprinted: %q",
				err, src, printedRules+printedFacts)
		}
		if len(re.Theory.Rules) != len(prog.Theory.Rules) {
			t.Fatalf("rule count changed after round trip: %d vs %d",
				len(prog.Theory.Rules), len(re.Theory.Rules))
		}
		for i := range prog.Theory.Rules {
			if core.CanonicalKey(prog.Theory.Rules[i]) != core.CanonicalKey(re.Theory.Rules[i]) {
				t.Fatalf("rule %d changed after round trip:\n%v\n%v",
					i, prog.Theory.Rules[i], re.Theory.Rules[i])
			}
		}
		if len(re.Facts) != len(prog.Facts) {
			t.Fatalf("fact count changed after round trip")
		}
	})
}
