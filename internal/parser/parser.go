package parser

import (
	"fmt"
	"strings"

	"guardedrules/internal/core"
)

// Program is the result of parsing: a theory (rules) and a database (ground
// facts), in input order.
type Program struct {
	Theory *core.Theory
	Facts  []core.Atom
}

type parser struct {
	lex  *lexer
	tok  token
	prev token
	// lenient parsing skips the per-rule safety check, so that the lint
	// package can report safety violations as positioned diagnostics
	// instead of the parser rejecting the input outright.
	lenient bool
}

func newParser(src string) (*parser, error) {
	p := &parser{lex: newLexer(src)}
	if err := p.next(); err != nil {
		return nil, err
	}
	return p, nil
}

func (p *parser) next() error {
	t, err := p.lex.next()
	if err != nil {
		return err
	}
	p.prev = p.tok
	p.tok = t
	return nil
}

func (p *parser) expect(kind tokenKind) (token, error) {
	if p.tok.kind != kind {
		return token{}, fmt.Errorf("%d:%d: expected %v, found %v %q", p.tok.line, p.tok.col, kind, p.tok.kind, p.tok.text)
	}
	t := p.tok
	return t, p.next()
}

// Parse parses a program containing rules and facts.
func Parse(src string) (*Program, error) { return parse(src, false) }

// ParseLenient parses like Parse but does not enforce rule safety
// (core.Rule.CheckSafe): unsafe rules are kept in the theory so that the
// lint package can report each violation as a positioned diagnostic.
// Syntax errors are still rejected.
func ParseLenient(src string) (*Program, error) { return parse(src, true) }

func parse(src string, lenient bool) (*Program, error) {
	p, err := newParser(src)
	if err != nil {
		return nil, err
	}
	p.lenient = lenient
	prog := &Program{Theory: core.NewTheory()}
	for p.tok.kind != tokEOF {
		if err := p.statement(prog); err != nil {
			return nil, err
		}
	}
	return prog, nil
}

// ParseTheory parses rules only; facts are rejected.
func ParseTheory(src string) (*core.Theory, error) {
	prog, err := Parse(src)
	if err != nil {
		return nil, err
	}
	if len(prog.Facts) > 0 {
		return nil, fmt.Errorf("theory contains a fact %v; use '-> %v.' for a constant rule", prog.Facts[0], prog.Facts[0])
	}
	return prog.Theory, nil
}

// ParseFacts parses ground facts only; rules are rejected.
func ParseFacts(src string) ([]core.Atom, error) {
	prog, err := Parse(src)
	if err != nil {
		return nil, err
	}
	if len(prog.Theory.Rules) > 0 {
		return nil, fmt.Errorf("database contains a rule %v", prog.Theory.Rules[0])
	}
	return prog.Facts, nil
}

// MustParseTheory parses rules and panics on error. For tests and
// package-level fixtures only: this is the one deliberate panic surface
// of the library — engines convert invalid input into returned errors,
// and the guardedrules facade recovers internal panics — so production
// callers should use ParseTheory instead.
func MustParseTheory(src string) *core.Theory {
	t, err := ParseTheory(src)
	if err != nil {
		panic(err)
	}
	return t
}

// MustParseFacts parses ground facts and panics on error. Like
// MustParseTheory, it is a deliberate fixture-only panic surface;
// production callers should use ParseFacts.
func MustParseFacts(src string) []core.Atom {
	f, err := ParseFacts(src)
	if err != nil {
		panic(err)
	}
	return f
}

// statement parses one rule or fact terminated by '.'.
func (p *parser) statement(prog *Program) error {
	line, col := p.tok.line, p.tok.col
	// A statement starting with '->' is a body-less rule.
	if p.tok.kind == tokArrow {
		return p.ruleFrom(prog, nil, line, col)
	}
	var body []core.Literal
	for {
		lit, err := p.literal()
		if err != nil {
			return err
		}
		body = append(body, lit)
		switch p.tok.kind {
		case tokComma:
			if err := p.next(); err != nil {
				return err
			}
		case tokArrow:
			return p.ruleFrom(prog, body, line, col)
		case tokDot:
			// A fact.
			if len(body) != 1 || body[0].Negated {
				return fmt.Errorf("line %d: expected '->' before '.'", line)
			}
			if !body[0].Atom.IsGround() {
				return fmt.Errorf("line %d: fact %v is not ground", line, body[0].Atom)
			}
			prog.Facts = append(prog.Facts, body[0].Atom)
			return p.next()
		default:
			return fmt.Errorf("%d:%d: expected ',', '->' or '.', found %v %q", p.tok.line, p.tok.col, p.tok.kind, p.tok.text)
		}
	}
}

// ruleFrom parses the head part after '->' and appends the rule.
func (p *parser) ruleFrom(prog *Program, body []core.Literal, line, col int) error {
	if _, err := p.expect(tokArrow); err != nil {
		return err
	}
	var exist []core.Term
	if p.tok.kind == tokExists {
		if err := p.next(); err != nil {
			return err
		}
		for {
			v, err := p.expect(tokVariable)
			if err != nil {
				return err
			}
			exist = append(exist, core.Var(v.text))
			if p.tok.kind != tokComma {
				break
			}
			if err := p.next(); err != nil {
				return err
			}
		}
		if _, err := p.expect(tokDot); err != nil {
			return err
		}
	}
	var head []core.Atom
	for {
		a, err := p.atom()
		if err != nil {
			return err
		}
		head = append(head, a)
		if p.tok.kind != tokComma {
			break
		}
		if err := p.next(); err != nil {
			return err
		}
	}
	if _, err := p.expect(tokDot); err != nil {
		return err
	}
	// p.prev is the terminating dot.
	span := core.Span{Line: line, Col: col, EndLine: p.prev.line, EndCol: p.prev.col + len(p.prev.text)}
	r := &core.Rule{Body: body, Head: head, Exist: exist, Label: fmt.Sprintf("line%d", line), Span: span}
	if !p.lenient {
		if err := r.CheckSafe(); err != nil {
			return fmt.Errorf("line %d: %v", line, err)
		}
	}
	prog.Theory.Add(r)
	return nil
}

func (p *parser) literal() (core.Literal, error) {
	neg := false
	if p.tok.kind == tokNot {
		neg = true
		if err := p.next(); err != nil {
			return core.Literal{}, err
		}
	}
	a, err := p.atom()
	if err != nil {
		return core.Literal{}, err
	}
	return core.Literal{Atom: a, Negated: neg}, nil
}

func (p *parser) atom() (core.Atom, error) {
	// Relation names are recognized by position (always followed by '(' or
	// '['), so both capitalizations are accepted: Publication(x) and
	// hasTopic(x,z).
	if p.tok.kind != tokIdent && p.tok.kind != tokVariable {
		return core.Atom{}, fmt.Errorf("%d:%d: expected a relation name, found %v %q", p.tok.line, p.tok.col, p.tok.kind, p.tok.text)
	}
	a := core.Atom{Relation: p.tok.text, Span: core.Span{Line: p.tok.line, Col: p.tok.col}}
	if err := p.next(); err != nil {
		return core.Atom{}, err
	}
	if p.tok.kind == tokLBrack {
		if err := p.next(); err != nil {
			return core.Atom{}, err
		}
		for {
			t, err := p.term()
			if err != nil {
				return core.Atom{}, err
			}
			a.Annotation = append(a.Annotation, t)
			if p.tok.kind != tokComma {
				break
			}
			if err := p.next(); err != nil {
				return core.Atom{}, err
			}
		}
		if _, err := p.expect(tokRBrack); err != nil {
			return core.Atom{}, err
		}
	}
	if _, err := p.expect(tokLParen); err != nil {
		return core.Atom{}, err
	}
	if p.tok.kind == tokRParen {
		a.Span.EndLine, a.Span.EndCol = p.tok.line, p.tok.col+1
		return a, p.next()
	}
	for {
		t, err := p.term()
		if err != nil {
			return core.Atom{}, err
		}
		a.Args = append(a.Args, t)
		if p.tok.kind != tokComma {
			break
		}
		if err := p.next(); err != nil {
			return core.Atom{}, err
		}
	}
	if _, err := p.expect(tokRParen); err != nil {
		return core.Atom{}, err
	}
	// p.prev is the closing ')'.
	a.Span.EndLine, a.Span.EndCol = p.prev.line, p.prev.col+1
	return a, nil
}

func (p *parser) term() (core.Term, error) {
	switch p.tok.kind {
	case tokVariable:
		t := core.Var(p.tok.text)
		return t, p.next()
	case tokIdent:
		t := core.Const(p.tok.text)
		return t, p.next()
	case tokNull:
		t := core.NewNull(p.tok.text)
		return t, p.next()
	default:
		return core.Term{}, fmt.Errorf("%d:%d: expected a term, found %v %q", p.tok.line, p.tok.col, p.tok.kind, p.tok.text)
	}
}

// PrintTerm renders a term in parseable syntax: variables get a '?' prefix
// so that internally generated lower-case variable names survive a
// round-trip.
func PrintTerm(t core.Term) string {
	switch t.Kind {
	case core.Variable:
		return "?" + t.Name
	case core.Null:
		return "_:" + t.Name
	default:
		return t.Name
	}
}

// PrintAtom renders an atom in parseable syntax.
func PrintAtom(a core.Atom) string {
	var sb strings.Builder
	sb.WriteString(a.Relation)
	if len(a.Annotation) > 0 {
		sb.WriteByte('[')
		for i, t := range a.Annotation {
			if i > 0 {
				sb.WriteByte(',')
			}
			sb.WriteString(PrintTerm(t))
		}
		sb.WriteByte(']')
	}
	sb.WriteByte('(')
	for i, t := range a.Args {
		if i > 0 {
			sb.WriteByte(',')
		}
		sb.WriteString(PrintTerm(t))
	}
	sb.WriteByte(')')
	return sb.String()
}

// PrintRule renders a rule in parseable syntax (without trailing dot).
func PrintRule(r *core.Rule) string {
	var sb strings.Builder
	for i, l := range r.Body {
		if i > 0 {
			sb.WriteString(", ")
		}
		if l.Negated {
			sb.WriteString("not ")
		}
		sb.WriteString(PrintAtom(l.Atom))
	}
	if len(r.Body) > 0 {
		sb.WriteByte(' ')
	}
	sb.WriteString("-> ")
	if len(r.Exist) > 0 {
		sb.WriteString("exists ")
		for i, v := range r.Exist {
			if i > 0 {
				sb.WriteByte(',')
			}
			sb.WriteString(PrintTerm(v))
		}
		sb.WriteString(". ")
	}
	for i, h := range r.Head {
		if i > 0 {
			sb.WriteString(", ")
		}
		sb.WriteString(PrintAtom(h))
	}
	return sb.String()
}

// PrintTheory renders a theory, one rule per line, in parseable syntax.
func PrintTheory(t *core.Theory) string {
	var sb strings.Builder
	for _, r := range t.Rules {
		sb.WriteString(PrintRule(r))
		sb.WriteString(".\n")
	}
	return sb.String()
}

// PrintFacts renders ground atoms one per line, in parseable syntax.
func PrintFacts(facts []core.Atom) string {
	var sb strings.Builder
	for _, f := range facts {
		sb.WriteString(PrintAtom(f))
		sb.WriteString(".\n")
	}
	return sb.String()
}
