package parser

import (
	"strings"
	"testing"

	"guardedrules/internal/core"
)

func TestParseRunningExample(t *testing.T) {
	src := `
% Example 1 of the paper.
Publication(X) -> exists K1,K2. Keywords(X,K1,K2).
Keywords(X,K1,K2) -> hasTopic(X,K1).
hasTopic(X,Z), hasAuthor(X,U), hasAuthor(Y,U),
  hasTopic(Y,Z2), Scientific(Z2), citedIn(Y,X) -> Scientific(Z).
hasAuthor(X,Y), hasTopic(X,Z), Scientific(Z) -> Q(Y).
`
	th, err := ParseTheory(src)
	if err != nil {
		t.Fatal(err)
	}
	if len(th.Rules) != 4 {
		t.Fatalf("expected 4 rules, got %d", len(th.Rules))
	}
	r1 := th.Rules[0]
	if len(r1.Exist) != 2 || r1.Exist[0] != core.Var("K1") {
		t.Errorf("existential variables wrong: %v", r1.Exist)
	}
	if r1.Head[0].Relation != "Keywords" || r1.Head[0].Arity() != 3 {
		t.Errorf("head wrong: %v", r1.Head)
	}
	r3 := th.Rules[2]
	if len(r3.Body) != 6 {
		t.Errorf("sigma3 body size: %d", len(r3.Body))
	}
}

func TestParseFacts(t *testing.T) {
	src := `
Publication(p1). Publication(p2).
citedIn(p1,p2).
hasAuthor(p1,a1). hasAuthor(p2,a1). hasAuthor(p2,a2).
hasTopic(p1,t1). Scientific(t1).
`
	facts, err := ParseFacts(src)
	if err != nil {
		t.Fatal(err)
	}
	if len(facts) != 8 {
		t.Fatalf("expected 8 facts, got %d", len(facts))
	}
	if facts[2].Relation != "citedIn" || facts[2].Args[0] != core.Const("p1") {
		t.Errorf("fact wrong: %v", facts[2])
	}
}

func TestParseNegationAndFactRule(t *testing.T) {
	src := `
-> Scientific(logic).
R(X), not Old(X) -> Omission(X).
S(X), !T(X) -> U(X).
`
	th, err := ParseTheory(src)
	if err != nil {
		t.Fatal(err)
	}
	if len(th.Rules) != 3 {
		t.Fatalf("rules: %d", len(th.Rules))
	}
	if len(th.Rules[0].Body) != 0 || th.Rules[0].Head[0].Args[0] != core.Const("logic") {
		t.Errorf("fact rule wrong: %v", th.Rules[0])
	}
	if !th.Rules[1].Body[1].Negated || !th.Rules[2].Body[1].Negated {
		t.Error("negation not parsed")
	}
}

func TestParseAnnotatedAtoms(t *testing.T) {
	src := `R[A,b](X,c) -> P[A](X).`
	th, err := ParseTheory(src)
	if err != nil {
		t.Fatal(err)
	}
	b := th.Rules[0].Body[0].Atom
	if len(b.Annotation) != 2 || b.Annotation[0] != core.Var("A") || b.Annotation[1] != core.Const("b") {
		t.Errorf("annotation wrong: %v", b)
	}
	if b.Arity() != 2 {
		t.Errorf("arity wrong: %v", b)
	}
}

func TestParseNullsInFacts(t *testing.T) {
	facts, err := ParseFacts(`R(a,_:n1).`)
	if err != nil {
		t.Fatal(err)
	}
	if !facts[0].Args[1].IsNull() || facts[0].Args[1].Name != "n1" {
		t.Errorf("null not parsed: %v", facts[0])
	}
}

func TestParseErrors(t *testing.T) {
	cases := []struct {
		src  string
		want string
	}{
		{`R(X) -> P(Y).`, "frontier variable"},
		{`R(X,Y -> P(X).`, "expected"},
		{`R(X).`, "not ground"},
		{`R(X) -> exists X. P(X).`, "body"},
		{`R(a,b)`, "expected"},
		{`not R(X) -> P(a).`, "not bound positively"},
		{`R(X) -> ACDom(X) P(X).`, "expected"},
		{`@foo(X) -> P(X).`, "unexpected character"},
	}
	for _, c := range cases {
		if _, err := Parse(c.src); err == nil || !strings.Contains(err.Error(), c.want) {
			t.Errorf("Parse(%q): expected error containing %q, got %v", c.src, c.want, err)
		}
	}
}

func TestParseTheoryRejectsFacts(t *testing.T) {
	if _, err := ParseTheory(`R(a).`); err == nil {
		t.Error("ParseTheory must reject facts")
	}
	if _, err := ParseFacts(`R(X) -> P(X).`); err == nil {
		t.Error("ParseFacts must reject rules")
	}
}

func TestRoundTrip(t *testing.T) {
	src := `
Publication(X) -> exists K1,K2. Keywords(X,K1,K2).
R[U](X,Y), not S(Y) -> P[U](X).
-> Scientific(t1).
Zeroary() -> Onefact().
`
	th, err := ParseTheory(src)
	if err != nil {
		t.Fatal(err)
	}
	printed := PrintTheory(th)
	th2, err := ParseTheory(printed)
	if err != nil {
		t.Fatalf("round trip re-parse failed: %v\n%s", err, printed)
	}
	if len(th2.Rules) != len(th.Rules) {
		t.Fatalf("rule count changed: %d vs %d", len(th.Rules), len(th2.Rules))
	}
	for i := range th.Rules {
		if core.CanonicalKey(th.Rules[i]) != core.CanonicalKey(th2.Rules[i]) {
			t.Errorf("rule %d changed after round trip:\n%v\n%v", i, th.Rules[i], th2.Rules[i])
		}
	}
}

func TestRoundTripFacts(t *testing.T) {
	facts := MustParseFacts(`R(a,b). S(_:n1,c).`)
	printed := PrintFacts(facts)
	facts2, err := ParseFacts(printed)
	if err != nil {
		t.Fatal(err)
	}
	if len(facts2) != 2 || !facts2[1].Equal(facts[1]) {
		t.Errorf("facts changed: %v vs %v", facts, facts2)
	}
}

func TestZeroAryAtoms(t *testing.T) {
	th, err := ParseTheory(`A(X) -> Accept().`)
	if err != nil {
		t.Fatal(err)
	}
	if th.Rules[0].Head[0].Arity() != 0 {
		t.Error("zero-ary head not parsed")
	}
}

func TestCommentsAndWhitespace(t *testing.T) {
	th := MustParseTheory("% only a comment\n\nR(X)->P(X). % trailing\n")
	if len(th.Rules) != 1 {
		t.Errorf("rules: %d", len(th.Rules))
	}
}
