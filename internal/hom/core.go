package hom

import (
	"guardedrules/internal/core"
	"guardedrules/internal/database"
)

// Core computes the core of the atom set: a homomorphically equivalent
// subset admitting no proper endomorphism. Constants are fixed, labeled
// nulls are mappable. The chase is unique up to homomorphic equivalence,
// so cores give canonical representatives of chase results — the oblivious
// and restricted chase of a terminating theory have the same core.
//
// Core search is NP-hard in general; maxCandidates bounds the number of
// endomorphisms inspected per round (0 means 100,000). When the budget is
// hit, the (sound) current set is returned with exact=false.
func Core(atoms []core.Atom, maxCandidates int) (result []core.Atom, exact bool) {
	if maxCandidates <= 0 {
		maxCandidates = 100_000
	}
	cur := dedup(atoms)
	for {
		h, found, complete := reducingEndo(cur, maxCandidates)
		if !found {
			return cur, complete
		}
		// Stabilize h: composing an endomorphism with itself |nulls| times
		// yields a retraction (idempotent on its image).
		stable := h
		for i := 0; i < len(nullsOf(cur)); i++ {
			stable = stable.Compose(stable)
		}
		var next []core.Atom
		for _, a := range cur {
			next = append(next, applyToNulls(stable, a))
		}
		next = dedup(next)
		if len(nullsOf(next)) >= len(nullsOf(cur)) && len(next) >= len(cur) {
			// No progress (should not happen for a reducing endo).
			return cur, true
		}
		cur = next
	}
}

// IsCore reports whether the atom set admits no proper endomorphism
// (within the candidate budget).
func IsCore(atoms []core.Atom, maxCandidates int) bool {
	if maxCandidates <= 0 {
		maxCandidates = 100_000
	}
	_, found, _ := reducingEndo(dedup(atoms), maxCandidates)
	return !found
}

// reducingEndo searches for an endomorphism that is non-injective on the
// nulls or maps a null to a constant — exactly the endomorphisms whose
// stabilization drops a null. It reports whether the search space was
// exhausted.
func reducingEndo(atoms []core.Atom, maxCandidates int) (core.Subst, bool, bool) {
	nulls := nullsOf(atoms)
	if len(nulls) == 0 {
		return nil, false, true
	}
	pattern := make([]core.Atom, len(atoms))
	for i, a := range atoms {
		pattern[i] = nullsToVars(a)
	}
	db := database.FromAtoms(atoms)
	var out core.Subst
	tried := 0
	complete := ForEach(pattern, db, nil, func(s core.Subst) bool {
		tried++
		image := make(core.TermSet)
		reducing := false
		for _, n := range nulls {
			t := s.Apply(core.Var("\x00null:" + n.Name))
			if t.IsConst() || image.Has(t) {
				reducing = true
				break
			}
			image.Add(t)
		}
		if reducing {
			// Re-key the substitution from placeholder variables back to
			// the nulls.
			out = core.Subst{}
			for _, n := range nulls {
				out[n] = s.Apply(core.Var("\x00null:" + n.Name))
			}
			return false
		}
		return tried < maxCandidates
	})
	return out, out != nil, complete || out != nil
}

// applyToNulls applies a null-keyed substitution to the atom.
func applyToNulls(s core.Subst, a core.Atom) core.Atom {
	out := a.Clone()
	for i, t := range out.Args {
		if t.IsNull() {
			if v, ok := s[t]; ok {
				out.Args[i] = v
			}
		}
	}
	for i, t := range out.Annotation {
		if t.IsNull() {
			if v, ok := s[t]; ok {
				out.Annotation[i] = v
			}
		}
	}
	return out
}

func nullsOf(atoms []core.Atom) []core.Term {
	s := make(core.TermSet)
	for _, a := range atoms {
		for _, t := range a.Args {
			if t.IsNull() {
				s.Add(t)
			}
		}
		for _, t := range a.Annotation {
			if t.IsNull() {
				s.Add(t)
			}
		}
	}
	return s.Sorted()
}

func dedup(atoms []core.Atom) []core.Atom {
	var out []core.Atom
	for _, a := range atoms {
		if !core.ContainsAtom(out, a) {
			out = append(out, a)
		}
	}
	return out
}
