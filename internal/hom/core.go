package hom

import (
	"guardedrules/internal/budget"
	"guardedrules/internal/core"
	"guardedrules/internal/database"
)

// CoreOptions bounds a core computation.
type CoreOptions struct {
	// MaxCandidates bounds the number of endomorphisms inspected per
	// reduction round (0 means 100,000). Hitting it makes the result
	// inexact but stays error-free: the search was bounded, not aborted.
	MaxCandidates int
	// Budget, when non-nil, governs the search like every other engine:
	// cancellation and deadline are polled between candidate
	// endomorphisms, MaxSteps caps total candidates inspected across all
	// rounds, and exhaustion returns the (sound) current set with
	// exact=false and a typed *budget.Error.
	Budget *budget.T
}

// Core computes the core of the atom set: a homomorphically equivalent
// subset admitting no proper endomorphism. Constants are fixed, labeled
// nulls are mappable. The chase is unique up to homomorphic equivalence,
// so cores give canonical representatives of chase results — the oblivious
// and restricted chase of a terminating theory have the same core.
//
// Core search is NP-hard in general; maxCandidates bounds the number of
// endomorphisms inspected per round (0 means 100,000). When the budget is
// hit, the (sound) current set is returned with exact=false.
func Core(atoms []core.Atom, maxCandidates int) (result []core.Atom, exact bool) {
	result, exact, _ = CoreOpts(atoms, CoreOptions{MaxCandidates: maxCandidates})
	return result, exact
}

// corePollInterval is how many candidate endomorphisms are inspected
// between cancellation polls.
const corePollInterval = 64

// CoreOpts is Core under explicit options: a governed, cancellable core
// computation. Every return value is a sound representative (a superset
// of some core of the input, homomorphically equivalent to it); exact
// reports whether the endomorphism search ran to completion. On budget
// exhaustion the current set is returned with exact=false and a typed
// *budget.Error.
func CoreOpts(atoms []core.Atom, opts CoreOptions) (result []core.Atom, exact bool, err error) {
	maxCandidates := opts.MaxCandidates
	if maxCandidates <= 0 {
		maxCandidates = 100_000
	}
	tk := budget.Start(opts.Budget)
	defer tk.Stop()
	maxSteps := 0
	if opts.Budget != nil {
		maxSteps = opts.Budget.MaxSteps
	}
	cur := dedup(atoms)
	for {
		// Round checkpoint: a canceled or expired search returns the
		// current (sound) set.
		if cerr := tk.Check(); cerr != nil {
			return cur, false, cerr
		}
		if maxSteps > 0 && tk.Usage().Steps >= maxSteps {
			return cur, false, tk.Exhausted(budget.ErrStepLimit)
		}
		// A step ceiling tightens the per-round candidate cap so the run
		// never inspects candidates past the budget.
		roundCap := maxCandidates
		if maxSteps > 0 {
			if rem := maxSteps - tk.Usage().Steps; rem < roundCap {
				roundCap = rem
			}
		}
		h, found, complete := reducingEndo(cur, roundCap, tk)
		if tk.Canceled() {
			return cur, false, tk.Check()
		}
		if !found {
			if !complete && maxSteps > 0 && tk.Usage().Steps >= maxSteps {
				return cur, false, tk.Exhausted(budget.ErrStepLimit)
			}
			return cur, complete, nil
		}
		// Stabilize h: composing an endomorphism with itself |nulls| times
		// yields a retraction (idempotent on its image).
		stable := h
		for i := 0; i < len(nullsOf(cur)); i++ {
			stable = stable.Compose(stable)
		}
		var next []core.Atom
		for _, a := range cur {
			next = append(next, applyToNulls(stable, a))
		}
		next = dedup(next)
		if len(nullsOf(next)) >= len(nullsOf(cur)) && len(next) >= len(cur) {
			// No progress (should not happen for a reducing endo).
			return cur, true, nil
		}
		cur = next
	}
}

// IsCore reports whether the atom set admits no proper endomorphism
// (within the candidate budget).
func IsCore(atoms []core.Atom, maxCandidates int) bool {
	if maxCandidates <= 0 {
		maxCandidates = 100_000
	}
	_, found, _ := reducingEndo(dedup(atoms), maxCandidates, nil)
	return !found
}

// reducingEndo searches for an endomorphism that is non-injective on the
// nulls or maps a null to a constant — exactly the endomorphisms whose
// stabilization drops a null. It reports whether the search space was
// exhausted. A non-nil tracker is polled every corePollInterval
// candidates (aborting the enumeration on cancellation) and counts every
// candidate as a step.
func reducingEndo(atoms []core.Atom, maxCandidates int, tk *budget.Tracker) (core.Subst, bool, bool) {
	nulls := nullsOf(atoms)
	if len(nulls) == 0 {
		return nil, false, true
	}
	pattern := make([]core.Atom, len(atoms))
	for i, a := range atoms {
		pattern[i] = nullsToVars(a)
	}
	db := database.FromAtoms(atoms)
	var out core.Subst
	tried := 0
	complete := ForEach(pattern, db, nil, func(s core.Subst) bool {
		tried++
		tk.AddSteps(1)
		if tried%corePollInterval == 0 && tk.Canceled() {
			return false // abort; CoreOpts observes the cancellation
		}
		image := make(core.TermSet)
		reducing := false
		for _, n := range nulls {
			t := s.Apply(core.Var("\x00null:" + n.Name))
			if t.IsConst() || image.Has(t) {
				reducing = true
				break
			}
			image.Add(t)
		}
		if reducing {
			// Re-key the substitution from placeholder variables back to
			// the nulls.
			out = core.Subst{}
			for _, n := range nulls {
				out[n] = s.Apply(core.Var("\x00null:" + n.Name))
			}
			return false
		}
		return tried < maxCandidates
	})
	return out, out != nil, complete || out != nil
}

// applyToNulls applies a null-keyed substitution to the atom.
func applyToNulls(s core.Subst, a core.Atom) core.Atom {
	out := a.Clone()
	for i, t := range out.Args {
		if t.IsNull() {
			if v, ok := s[t]; ok {
				out.Args[i] = v
			}
		}
	}
	for i, t := range out.Annotation {
		if t.IsNull() {
			if v, ok := s[t]; ok {
				out.Annotation[i] = v
			}
		}
	}
	return out
}

func nullsOf(atoms []core.Atom) []core.Term {
	s := make(core.TermSet)
	for _, a := range atoms {
		for _, t := range a.Args {
			if t.IsNull() {
				s.Add(t)
			}
		}
		for _, t := range a.Annotation {
			if t.IsNull() {
				s.Add(t)
			}
		}
	}
	return s.Sorted()
}

func dedup(atoms []core.Atom) []core.Atom {
	var out []core.Atom
	for _, a := range atoms {
		if !core.ContainsAtom(out, a) {
			out = append(out, a)
		}
	}
	return out
}
