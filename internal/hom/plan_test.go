package hom

import (
	"fmt"
	"sort"
	"strings"
	"testing"

	"guardedrules/internal/core"
	"guardedrules/internal/database"
	"guardedrules/internal/gen"
	"guardedrules/internal/parser"
)

// compileBody compiles the positive body of a rule into a fresh slot
// space, resolved against db.
func compileBody(t *testing.T, src string, db *database.Database) ([]CAtom, int) {
	t.Helper()
	th := parser.MustParseTheory(src)
	if len(th.Rules) != 1 {
		t.Fatalf("want exactly one rule in %q", src)
	}
	slots := make(map[core.Term]int)
	var atoms []CAtom
	for _, a := range th.Rules[0].PositiveBody() {
		atoms = append(atoms, Compile(a, slots))
	}
	for i := range atoms {
		atoms[i].Resolve(db)
	}
	return atoms, len(slots)
}

// bindings renders the current slot assignment of st as one line.
func bindings(st *State, nvars int) string {
	var sb strings.Builder
	for s := 0; s < nvars; s++ {
		if s > 0 {
			sb.WriteByte(' ')
		}
		if st.Bd[s] {
			fmt.Fprintf(&sb, "%d", st.B[s])
		} else {
			sb.WriteByte('_')
		}
	}
	return sb.String()
}

// The consolidated searcher contract: for any body, the dynamic
// most-constrained Search, the planned SearchPlan without a join cache,
// and the planned SearchPlan with prepared hash tables must enumerate
// exactly the same set of complete matches — and the two SearchPlan
// variants must agree on the *order*, because switching an access path
// (probe vs seek fallback) preserves insertion-order enumeration.
func TestSearchPlanMatchesSearch(t *testing.T) {
	bodies := []string{
		`R(X,Y), S(Y,Z) -> A(X).`,
		`R(X,Y), S(Y,X) -> A(X).`,
		`R(X,Y), R(Y,Z), S(X,Z) -> A(X).`,
		`A(X), R(X,Y), B(Y) -> C(X).`,
		`R(X,X) -> A(X).`,
		`A(X), B(Y) -> C(X).`, // cross product
		`R(X,Y), S(Z,W) -> A(X).`,
	}
	for seed := int64(0); seed < 6; seed++ {
		dbs := []*database.Database{
			gen.ABDatabase(10, seed),
			gen.AdversarialNames(14, seed),
		}
		for di, db := range dbs {
			for _, src := range bodies {
				atoms, nvars := compileBody(t, src, db)
				st := NewState(db, nvars)

				var viaSearch []string
				st.ForEach(atoms, func() bool {
					viaSearch = append(viaSearch, bindings(st, nvars))
					return true
				})

				plan := PlanBody(atoms, make([]bool, nvars), db)
				var viaPlanNil []string
				st2 := NewState(db, nvars)
				st2.SearchPlan(atoms, &plan, nil, func() bool {
					viaPlanNil = append(viaPlanNil, bindings(st2, nvars))
					return true
				})

				jc := NewJoinCache(db)
				jc.Prepare(atoms, &plan)
				var viaPlanJC []string
				st3 := NewState(db, nvars)
				st3.SearchPlan(atoms, &plan, jc, func() bool {
					viaPlanJC = append(viaPlanJC, bindings(st3, nvars))
					return true
				})

				// Same order across access paths (probe vs seek fallback).
				if strings.Join(viaPlanNil, "\n") != strings.Join(viaPlanJC, "\n") {
					t.Fatalf("seed %d db %d %q: enumeration order changed with the join cache",
						seed, di, src)
				}
				// Same set as the dynamic searcher.
				sort.Strings(viaSearch)
				sorted := append([]string(nil), viaPlanNil...)
				sort.Strings(sorted)
				if strings.Join(viaSearch, "\n") != strings.Join(sorted, "\n") {
					t.Fatalf("seed %d db %d %q: SearchPlan set differs from Search\nplan: %s\nsearch %d matches, plan %d",
						seed, di, src, plan, len(viaSearch), len(sorted))
				}
			}
		}
	}
}

// Planning is a pure function of the statistics: two calls over the same
// database yield the same plan, and a pre-bound mask is not mutated.
func TestPlanBodyDeterministic(t *testing.T) {
	db := gen.ABDatabase(12, 3)
	atoms, nvars := compileBody(t, `R(X,Y), S(Y,Z), A(X) -> C(X).`, db)
	bound := make([]bool, nvars)
	p1 := PlanBody(atoms, bound, db)
	p2 := PlanBody(atoms, bound, db)
	if p1.String() != p2.String() {
		t.Fatalf("plans differ: %s vs %s", p1, p2)
	}
	for s, b := range bound {
		if b {
			t.Fatalf("PlanBody mutated the caller's bound mask at slot %d", s)
		}
	}
}

// The planner must order a selective atom before a large one: with two
// facts in S and many in R, the plan starts at S and reaches R through
// its then-bound position.
func TestPlanBodyPrefersSelective(t *testing.T) {
	db := database.New()
	for i := 0; i < 100; i++ {
		db.Add(core.NewAtom("R", core.Const(fmt.Sprintf("r%d", i)), core.Const(fmt.Sprintf("r%d", i+1))))
	}
	db.Add(core.NewAtom("S", core.Const("r5"), core.Const("z1")))
	db.Add(core.NewAtom("S", core.Const("r7"), core.Const("z2")))
	atoms, nvars := compileBody(t, `R(X,Y), S(Y,Z) -> A(X).`, db)
	plan := PlanBody(atoms, make([]bool, nvars), db)
	if plan.Steps[0].Atom != 1 {
		t.Fatalf("plan %s: expected the 2-fact S atom first", plan)
	}
	if s := plan.Steps[1]; s.Kind != AccessSeek || s.Pos != 1 {
		t.Fatalf("plan %s: expected R entered by a seek on position 1", plan)
	}
}

// Two probe steps over the same relation and (canonicalized) position
// pair share one hash table, and tables extend incrementally instead of
// rebuilding: Probe refuses to answer from a stale table until the next
// Prepare covers the new facts.
func TestJoinCacheSharingAndIncrementalBuild(t *testing.T) {
	db := database.New()
	for i := 0; i < 8; i++ {
		db.Add(core.NewAtom("R", core.Const(fmt.Sprintf("c%d", i)), core.Const(fmt.Sprintf("c%d", (i+1)%8))))
	}
	// Both atoms are fully bound after the (pretend) pattern: both become
	// probes over R on the canonical pair (0,1).
	atoms, nvars := compileBody(t, `R(X,Y), R(Y,X) -> A(X).`, db)
	bound := make([]bool, nvars)
	for i := range bound {
		bound[i] = true
	}
	plan := PlanOrder(atoms, []int{0, 1}, bound, db)
	for i, s := range plan.Steps {
		if s.Kind != AccessProbe {
			t.Fatalf("step %d of %s: want a probe (all positions bound)", i, plan)
		}
		if s.Pos != 0 || s.Pos2 != 1 {
			t.Fatalf("step %d of %s: want the canonical pair (0,1)", i, plan)
		}
	}
	jc := NewJoinCache(db)
	jc.Prepare(atoms, &plan)
	if jc.Builds() != 1 {
		t.Fatalf("built %d tables, want 1 shared table", jc.Builds())
	}
	rk := atoms[0].RK
	id0, _ := db.TermID(core.Const("c0"))
	id1, _ := db.TermID(core.Const("c1"))
	if b, ok := jc.Probe(rk, 0, 1, id0, id1); !ok || len(b) != 1 {
		t.Fatalf("Probe(c0,c1) = %v, %v; want one fact", b, ok)
	}
	// Grow the relation: the stale table must refuse, one Prepare later it
	// answers again, still with a single build.
	db.Add(core.NewAtom("R", core.Const("c0"), core.Const("c5")))
	if _, ok := jc.Probe(rk, 0, 1, id0, id1); ok {
		t.Fatal("Probe answered from a table that does not cover the relation")
	}
	jc.Prepare(atoms, &plan)
	if jc.Builds() != 1 {
		t.Fatalf("incremental extension rebuilt the table: builds = %d", jc.Builds())
	}
	id5, _ := db.TermID(core.Const("c5"))
	if b, ok := jc.Probe(rk, 0, 1, id0, id5); !ok || len(b) != 1 {
		t.Fatalf("Probe(c0,c5) after extension = %v, %v; want the new fact", b, ok)
	}
}

// An unresolved body constant estimates to zero and is planned first, so
// execution dies immediately; SearchPlan must enumerate nothing and
// leave no bindings behind.
func TestPlanDeadBranchFirst(t *testing.T) {
	db := gen.ABDatabase(6, 1)
	atoms, nvars := compileBody(t, `R(X,Y), S(nosuchconst,X) -> A(X).`, db)
	plan := PlanBody(atoms, make([]bool, nvars), db)
	if plan.Steps[0].Atom != 1 {
		t.Fatalf("plan %s: dead atom must be ordered first", plan)
	}
	st := NewState(db, nvars)
	n := 0
	st.SearchPlan(atoms, &plan, nil, func() bool { n++; return true })
	if n != 0 {
		t.Fatalf("enumerated %d matches through an unresolved constant", n)
	}
	for s := 0; s < nvars; s++ {
		if st.Bd[s] {
			t.Fatalf("slot %d left bound after a dead search", s)
		}
	}
}
