package hom

import (
	"math/rand"
	"testing"
	"testing/quick"

	"guardedrules/internal/core"
	"guardedrules/internal/database"
	"guardedrules/internal/parser"
)

func db(src string) *database.Database {
	return database.FromAtoms(parser.MustParseFacts(src))
}

func atoms(src string) []core.Atom {
	// Parse "R(X,Y), S(Y)" as a rule body.
	th := parser.MustParseTheory(src + " -> Dummy__().")
	return th.Rules[0].PositiveBody()
}

func TestExistsSimple(t *testing.T) {
	d := db(`R(a,b). R(b,c).`)
	if !Exists(atoms(`R(X,Y), R(Y,Z)`), d, nil) {
		t.Error("path of length 2 exists")
	}
	if Exists(atoms(`R(X,Y), R(Y,X)`), d, nil) {
		t.Error("no 2-cycle in acyclic database")
	}
	if !Exists(atoms(`R(X,X)`), db(`R(a,a).`), nil) {
		t.Error("self-loop must match")
	}
}

func TestConstantsFixed(t *testing.T) {
	d := db(`R(a,b).`)
	if !Exists(atoms(`R(a,X)`), d, nil) {
		t.Error("constant in pattern must match itself")
	}
	if Exists(atoms(`R(b,X)`), d, nil) {
		t.Error("h(c)=c must be enforced")
	}
}

func TestInitialSubstitution(t *testing.T) {
	d := db(`R(a,b). R(c,d).`)
	init := core.Subst{core.Var("X"): core.Const("c")}
	all := FindAll(atoms(`R(X,Y)`), d, init, 0)
	if len(all) != 1 || all[0].Apply(core.Var("Y")) != core.Const("d") {
		t.Errorf("init not respected: %v", all)
	}
}

func TestFindAllCountsAndLimit(t *testing.T) {
	d := db(`R(a,b). R(a,c). R(b,c).`)
	all := FindAll(atoms(`R(X,Y)`), d, nil, 0)
	if len(all) != 3 {
		t.Errorf("FindAll: %d", len(all))
	}
	two := FindAll(atoms(`R(X,Y)`), d, nil, 2)
	if len(two) != 2 {
		t.Errorf("limit ignored: %d", len(two))
	}
	// Join: R(X,Y), R(Y,Z) has matches a-b-c only (a-c has no continuation).
	j := FindAll(atoms(`R(X,Y), R(Y,Z)`), d, nil, 0)
	if len(j) != 1 {
		t.Errorf("join count: %d (%v)", len(j), j)
	}
}

func TestNullsInDatabaseAreMappable(t *testing.T) {
	d := database.New()
	d.Add(core.NewAtom("R", core.Const("a"), core.NewNull("n1")))
	all := FindAll(atoms(`R(X,Y)`), d, nil, 0)
	if len(all) != 1 || !all[0].Apply(core.Var("Y")).IsNull() {
		t.Errorf("variables must map to nulls: %v", all)
	}
}

func TestNullsInPatternMatchExactly(t *testing.T) {
	d := database.New()
	d.Add(core.NewAtom("R", core.NewNull("n1")))
	if !Exists([]core.Atom{core.NewAtom("R", core.NewNull("n1"))}, d, nil) {
		t.Error("same null must match")
	}
	if Exists([]core.Atom{core.NewAtom("R", core.NewNull("n2"))}, d, nil) {
		t.Error("different null must not match in plain search")
	}
}

func TestIntoAtomsTreatsNullsAsVariables(t *testing.T) {
	src := []core.Atom{core.NewAtom("R", core.Const("a"), core.NewNull("n1"))}
	dst := []core.Atom{core.NewAtom("R", core.Const("a"), core.Const("b"))}
	if !IntoAtoms(src, dst) {
		t.Error("null must be mappable to constant")
	}
	if IntoAtoms(dst, src) {
		t.Error("constant b cannot map to a null")
	}
}

func TestEquivalent(t *testing.T) {
	a := []core.Atom{
		core.NewAtom("R", core.Const("a"), core.NewNull("n1")),
		core.NewAtom("R", core.Const("a"), core.NewNull("n2")),
	}
	b := []core.Atom{core.NewAtom("R", core.Const("a"), core.NewNull("m"))}
	if !Equivalent(a, b) {
		t.Error("duplicated null atoms are homomorphically equivalent to one")
	}
	c := []core.Atom{core.NewAtom("R", core.NewNull("x"), core.Const("a"))}
	if Equivalent(a, c) {
		t.Error("different shapes must not be equivalent")
	}
}

func TestAnnotatedHomomorphism(t *testing.T) {
	d := database.New()
	d.Add(core.Atom{Relation: "R", Annotation: []core.Term{core.Const("u")}, Args: []core.Term{core.Const("a")}})
	pat := core.Atom{Relation: "R", Annotation: []core.Term{core.Var("W")}, Args: []core.Term{core.Var("X")}}
	all := FindAll([]core.Atom{pat}, d, nil, 0)
	if len(all) != 1 || all[0].Apply(core.Var("W")) != core.Const("u") {
		t.Errorf("annotation positions must participate in matching: %v", all)
	}
}

func TestForEachEarlyStop(t *testing.T) {
	d := db(`R(a). R(b). R(c).`)
	n := 0
	completed := ForEach(atoms(`R(X)`), d, nil, func(core.Subst) bool {
		n++
		return n < 2
	})
	if completed || n != 2 {
		t.Errorf("early stop failed: completed=%v n=%d", completed, n)
	}
}

func TestEmptyPattern(t *testing.T) {
	// The empty conjunction has exactly the identity homomorphism.
	all := FindAll(nil, database.New(), nil, 0)
	if len(all) != 1 {
		t.Errorf("empty pattern: %d", len(all))
	}
}

// Property: on random graph databases, the number of homomorphisms of the
// pattern R(X,Y),R(Y,Z) equals the number of directed 2-walks counted
// naively.
func TestTwoWalkCountProperty(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	f := func(seed uint16) bool {
		n := 2 + rng.Intn(5)
		edges := map[[2]int]bool{}
		d := database.New()
		for i := 0; i < n*2; i++ {
			u, v := rng.Intn(n), rng.Intn(n)
			edges[[2]int{u, v}] = true
			d.Add(core.NewAtom("E", core.Const(string(rune('a'+u))), core.Const(string(rune('a'+v)))))
		}
		want := 0
		for e1 := range edges {
			for e2 := range edges {
				if e1[1] == e2[0] {
					want++
				}
			}
		}
		got := len(FindAll(atoms(`E(X,Y), E(Y,Z)`), d, nil, 0))
		return got == want
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Error(err)
	}
}
