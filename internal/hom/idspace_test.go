package hom

import (
	"fmt"
	"math/rand"
	"strings"
	"testing"

	"guardedrules/internal/core"
	"guardedrules/internal/database"
)

// enumerate runs ForEach and renders each homomorphism as the image of
// vars, in enumeration order.
func enumerateTermSpace(atoms []core.Atom, db *database.Database, vars []core.Term) []string {
	var out []string
	ForEach(atoms, db, nil, func(s core.Subst) bool {
		parts := make([]string, len(vars))
		for i, v := range vars {
			if t, ok := s[v]; ok {
				parts[i] = t.String()
			} else {
				parts[i] = "?"
			}
		}
		out = append(out, strings.Join(parts, ","))
		return true
	})
	return out
}

// enumerateIDSpace does the same through the compiled searcher.
func enumerateIDSpace(atoms []core.Atom, db *database.Database, vars []core.Term) []string {
	slots := make(map[core.Term]int)
	cas := make([]CAtom, len(atoms))
	for i, a := range atoms {
		cas[i] = Compile(a, slots)
	}
	for i := range cas {
		cas[i].Resolve(db)
	}
	st := NewState(db, len(slots))
	var out []string
	st.ForEach(cas, func() bool {
		parts := make([]string, len(vars))
		for i, v := range vars {
			if s, ok := slots[v]; ok && st.Bd[s] {
				parts[i] = db.Term(st.B[s]).String()
			} else {
				parts[i] = "?"
			}
		}
		out = append(out, strings.Join(parts, ","))
		return true
	})
	return out
}

func checkParity(t *testing.T, atoms []core.Atom, db *database.Database, vars []core.Term) {
	t.Helper()
	want := enumerateTermSpace(atoms, db, vars)
	got := enumerateIDSpace(atoms, db, vars)
	if len(want) != len(got) {
		t.Fatalf("enumeration sizes differ: term-space %d vs id-space %d\natoms=%v", len(want), len(got), atoms)
	}
	for i := range want {
		if want[i] != got[i] {
			t.Fatalf("enumeration order diverges at %d: %q vs %q\natoms=%v", i, want[i], got[i], atoms)
		}
	}
}

// The id-space searcher must enumerate exactly the homomorphisms of
// ForEach, in the same order: the chase derives its determinism (and
// its null numbering) from that order.
func TestIDSpaceMatchesTermSpaceOrder(t *testing.T) {
	db := database.New()
	for i := 0; i < 6; i++ {
		for j := 0; j < 6; j++ {
			if (i+j)%2 == 0 {
				db.Add(core.NewAtom("R", core.Const(fmt.Sprintf("c%d", i)), core.Const(fmt.Sprintf("c%d", j))))
			}
			if (i*j)%3 == 0 {
				db.Add(core.NewAtom("S", core.Const(fmt.Sprintf("c%d", j)), core.Const(fmt.Sprintf("c%d", i))))
			}
		}
		db.Add(core.NewAtom("U", core.Const(fmt.Sprintf("c%d", i))))
	}
	x, y, z := core.Var("X"), core.Var("Y"), core.Var("Z")
	cases := [][]core.Atom{
		{core.NewAtom("R", x, y)},
		{core.NewAtom("R", x, y), core.NewAtom("S", y, z)},
		{core.NewAtom("R", x, y), core.NewAtom("S", y, z), core.NewAtom("U", z)},
		{core.NewAtom("R", x, x)},
		{core.NewAtom("R", core.Const("c2"), y), core.NewAtom("R", y, z)},
		{core.NewAtom("R", core.Const("nope"), y)}, // unresolved constant: dead branch
		{core.NewAtom("U", x), core.NewAtom("U", y)},
		{core.NewAtom("R", x, y), core.NewAtom("R", y, x)},
	}
	for _, atoms := range cases {
		checkParity(t, atoms, db, []core.Term{x, y, z})
	}
}

// Randomized parity sweep over annotated atoms and varying shapes.
func TestIDSpaceParityRandomized(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	vars := []core.Term{core.Var("V0"), core.Var("V1"), core.Var("V2"), core.Var("V3")}
	consts := make([]core.Term, 8)
	for i := range consts {
		consts[i] = core.Const(fmt.Sprintf("k%d", i))
	}
	rels := []string{"P", "Q", "T"}
	for trial := 0; trial < 60; trial++ {
		db := database.New()
		nfacts := 10 + rng.Intn(30)
		for i := 0; i < nfacts; i++ {
			r := rels[rng.Intn(len(rels))]
			a := core.Atom{Relation: r, Args: []core.Term{
				consts[rng.Intn(len(consts))], consts[rng.Intn(len(consts))],
			}}
			if rng.Intn(2) == 0 {
				a.Annotation = []core.Term{consts[rng.Intn(len(consts))]}
			}
			db.Add(a)
		}
		natoms := 1 + rng.Intn(3)
		atoms := make([]core.Atom, 0, natoms)
		for i := 0; i < natoms; i++ {
			pick := func() core.Term {
				if rng.Intn(3) == 0 {
					return consts[rng.Intn(len(consts))]
				}
				return vars[rng.Intn(len(vars))]
			}
			a := core.Atom{Relation: rels[rng.Intn(len(rels))], Args: []core.Term{pick(), pick()}}
			if rng.Intn(2) == 0 {
				a.Annotation = []core.Term{pick()}
			}
			atoms = append(atoms, a)
		}
		checkParity(t, atoms, db, vars)
	}
}

// Zero-ary atoms exercise the w==0 full-scan path.
func TestIDSpaceZeroAry(t *testing.T) {
	db := database.New()
	db.Add(core.NewAtom("Accept"))
	db.Add(core.NewAtom("A", core.Const("a")))
	x := core.Var("X")
	checkParity(t, []core.Atom{core.NewAtom("Accept"), core.NewAtom("A", x)}, db, []core.Term{x})
	if got := enumerateIDSpace([]core.Atom{core.NewAtom("Missing")}, db, nil); len(got) != 0 {
		t.Fatalf("missing zero-ary relation matched %d times", len(got))
	}
}

// Seeded bindings (the delta path): pre-match one atom by hand, search
// the rest with its done flag set, mirroring the term-space init subst.
func TestIDSpaceSeededSearch(t *testing.T) {
	db := database.New()
	db.Add(core.NewAtom("R", core.Const("a"), core.Const("b")))
	db.Add(core.NewAtom("R", core.Const("b"), core.Const("c")))
	db.Add(core.NewAtom("S", core.Const("b"), core.Const("x")))
	db.Add(core.NewAtom("S", core.Const("c"), core.Const("y")))
	x, y, z := core.Var("X"), core.Var("Y"), core.Var("Z")
	atoms := []core.Atom{core.NewAtom("R", x, y), core.NewAtom("S", y, z)}

	// Term space: init {X=a, Y=b} over the S atom only.
	want := 0
	ForEach([]core.Atom{atoms[1]}, db, core.Subst{x: core.Const("a"), y: core.Const("b")}, func(core.Subst) bool {
		want++
		return true
	})

	slots := make(map[core.Term]int)
	cas := []CAtom{Compile(atoms[0], slots), Compile(atoms[1], slots)}
	for i := range cas {
		cas[i].Resolve(db)
	}
	st := NewState(db, len(slots))
	ida, _ := db.TermID(core.Const("a"))
	idb, _ := db.TermID(core.Const("b"))
	st.Bind(slots[x], ida)
	st.Bind(slots[y], idb)
	done := []bool{true, false}
	got := 0
	st.Search(cas, done, func() bool {
		got++
		if !st.Bd[slots[z]] {
			t.Error("Z must be bound at the leaf")
		}
		return true
	})
	if got != want || got != 1 {
		t.Fatalf("seeded search found %d matches, want %d (=1)", got, want)
	}
	// The seeded bindings survive the search; searched bindings unwind.
	if !st.Bd[slots[x]] || !st.Bd[slots[y]] || st.Bd[slots[z]] {
		t.Fatal("seeded bindings must survive, searched bindings must unwind")
	}
}
