// Package hom implements homomorphism search from sets of atoms into
// databases (Section 2 of the paper): a homomorphism maps variables to
// terms of the database, is the identity on constants, and must preserve
// every atom. It also provides homomorphic-equivalence checks between
// databases, used to compare chase results.
package hom

import (
	"guardedrules/internal/core"
	"guardedrules/internal/database"
)

// DB is the store surface homomorphism search reads: indexed lookup,
// enumeration, planner statistics, and term↔id resolution. The
// canonical implementation is *database.Database; any database.Store
// satisfies it.
type DB interface {
	database.Reader
	database.StatsProvider
	database.Interner
}

var _ DB = (*database.Database)(nil)

// ForEach enumerates homomorphisms h extending init such that h(atoms) ⊆
// db, calling fn for each. Enumeration stops early when fn returns false.
// ForEach reports whether enumeration ran to completion (i.e. fn never
// returned false). Atoms must not contain negated literals; only variables
// are free (nulls in atoms must match exactly).
//
// For performance the search binds variables in place: fn receives the
// shared substitution, valid only for the duration of the call — clone it
// to retain it. The init map is used as the working map and is restored
// to its original contents when ForEach returns.
func ForEach(atoms []core.Atom, db DB, init core.Subst, fn func(core.Subst) bool) bool {
	s := init
	if s == nil {
		s = core.Subst{}
	}
	return search(atoms, make([]bool, len(atoms)), db, s, fn)
}

// FindAll returns up to limit homomorphisms (limit ≤ 0 means all).
func FindAll(atoms []core.Atom, db DB, init core.Subst, limit int) []core.Subst {
	var out []core.Subst
	ForEach(atoms, db, init, func(s core.Subst) bool {
		out = append(out, s.Clone())
		return limit <= 0 || len(out) < limit
	})
	return out
}

// Exists reports whether some homomorphism extending init maps atoms into
// db.
func Exists(atoms []core.Atom, db DB, init core.Subst) bool {
	found := false
	ForEach(atoms, db, init, func(core.Subst) bool {
		found = true
		return false
	})
	return found
}

// search backtracks over the unmatched atoms, always expanding the most
// constrained one (fewest candidate facts under the current substitution).
// Bindings are made in place on the shared substitution and undone via a
// trail, so no maps are cloned on the hot path; callbacks receive the
// shared map and must copy it if they retain it.
func search(atoms []core.Atom, done []bool, db DB, s core.Subst, fn func(core.Subst) bool) bool {
	best := -1
	bestCount := -1
	bestPos := -1
	var bestID uint32
	for i, a := range atoms {
		if done[i] {
			continue
		}
		pos, id, count := bestIndex(a, db, s)
		if best == -1 || count < bestCount {
			best, bestCount, bestPos, bestID = i, count, pos, id
			if count == 0 {
				return true // dead branch
			}
		}
	}
	if best == -1 {
		return fn(s)
	}
	done[best] = true
	defer func() { done[best] = false }()
	pattern := atoms[best]
	rk := pattern.Key()
	cont := true
	try := func(fact core.Atom) bool {
		trail, ok := MatchInPlace(pattern, fact, s)
		if ok {
			if !search(atoms, done, db, s, fn) {
				cont = false
			}
		}
		for _, v := range trail {
			delete(s, v)
		}
		return cont
	}
	if bestPos >= 0 {
		db.ForEachWithID(rk, bestPos, bestID, try)
	} else {
		db.ForEachFact(rk, try)
	}
	return cont
}

// bestIndex picks the tightest index for the pattern under the current
// bindings: the ground position with the fewest facts, or the whole
// relation when no position is ground. It returns the flat position (-1
// for a full scan), the interned id of its term, and the candidate count.
// Terms are resolved to database ids once here, so the subsequent index
// scan avoids re-hashing term structs.
func bestIndex(pattern core.Atom, db DB, s core.Subst) (int, uint32, int) {
	rk := pattern.Key()
	bestPos := -1
	var bestID uint32
	bestCount := db.RelSize(rk)
	consider := func(flatPos int, t core.Term) {
		if t.IsVar() {
			t = s.Apply(t)
			if t.IsVar() {
				return
			}
		}
		// A term the database has never interned occurs in no fact: the
		// position has zero candidates and the branch is dead.
		c := 0
		var id uint32
		if tid, ok := db.TermID(t); ok {
			id = tid
			c = db.CountWithID(rk, flatPos, tid)
		}
		if c < bestCount || bestPos == -1 && c <= bestCount {
			bestCount = c
			bestPos = flatPos
			bestID = id
		}
	}
	for i, t := range pattern.Args {
		consider(i, t)
	}
	for i, t := range pattern.Annotation {
		consider(len(pattern.Args)+i, t)
	}
	return bestPos, bestID, bestCount
}

// MatchInPlace extends s so that s(pattern) = fact, binding unbound
// variables in place and returning the trail of newly bound variables
// (callers undo the bindings by deleting the trail from s). On mismatch it
// undoes its own bindings and returns ok=false. The relation names are not
// compared; callers match patterns against facts of the same relation key.
func MatchInPlace(pattern, fact core.Atom, s core.Subst) ([]core.Term, bool) {
	var trail []core.Term
	bind := func(p, f core.Term) bool {
		if p.IsVar() {
			if b, bound := s[p]; bound {
				return b == f
			}
			s[p] = f
			trail = append(trail, p)
			return true
		}
		return p == f
	}
	ok := len(pattern.Args) == len(fact.Args) && len(pattern.Annotation) == len(fact.Annotation)
	if ok {
		for i := range pattern.Args {
			if !bind(pattern.Args[i], fact.Args[i]) {
				ok = false
				break
			}
		}
	}
	if ok {
		for i := range pattern.Annotation {
			if !bind(pattern.Annotation[i], fact.Annotation[i]) {
				ok = false
				break
			}
		}
	}
	if !ok {
		for _, v := range trail {
			delete(s, v)
		}
		return nil, false
	}
	return trail, true
}

// IntoAtoms reports whether there is a homomorphism from src into the
// finite atom set dst, where the labeled nulls of src are treated as
// additional variables (constants remain fixed). This is the relation
// written chase(Σ,D) ⊆ chase(Σ',D') in the paper.
func IntoAtoms(src, dst []core.Atom) bool {
	renamed := make([]core.Atom, len(src))
	for i, a := range src {
		renamed[i] = nullsToVars(a)
	}
	return Exists(renamed, database.FromAtoms(dst), nil)
}

// Equivalent reports whether the two atom sets are homomorphically
// equivalent (nulls treated as variables both ways).
func Equivalent(a, b []core.Atom) bool {
	return IntoAtoms(a, b) && IntoAtoms(b, a)
}

func nullsToVars(a core.Atom) core.Atom {
	out := a.Clone()
	for i, t := range out.Args {
		if t.IsNull() {
			out.Args[i] = core.Var("\x00null:" + t.Name)
		}
	}
	for i, t := range out.Annotation {
		if t.IsNull() {
			out.Annotation[i] = core.Var("\x00null:" + t.Name)
		}
	}
	return out
}
