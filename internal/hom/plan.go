package hom

import (
	"fmt"
	"strings"

	"guardedrules/internal/core"
)

// This file is the cost-based join layer shared by the fixpoint engines:
// a planner that fixes the atom order and the access path of every join
// step from the database's cardinality statistics, and an executor
// (State.SearchPlan) that runs the fixed plan with composable access
// paths — full scan, index seek, and a pre-sized hash-join probe.
//
// Determinism: for a fixed plan, every access path enumerates an atom's
// matching facts in insertion order (a scan trivially, a seek because
// posting lists are built in insertion order, a probe because bucket
// lists are built in insertion order), so the complete enumeration order
// is a function of the plan alone. Engines that compute the plan once
// per round on the single writer therefore derive byte-identical results
// for every worker count — and switching an access path (say, disabling
// the hash cache) cannot change the order either.

// Stats is the statistics surface the planner reads; *database.Database
// implements it with exact, incrementally maintained counters.
type Stats interface {
	// RelSize returns the fact count of the relation.
	RelSize(rk core.RelKey) int
	// DistinctAt returns the distinct-id count at one flat position.
	DistinctAt(rk core.RelKey, pos int) int
	// CountWithID returns the posting-list length of (pos, id) — the
	// exact candidate count for a position bound to a known id.
	CountWithID(rk core.RelKey, pos int, id uint32) int
}

// AccessKind is a step's planned access path.
type AccessKind uint8

const (
	// AccessScan enumerates the whole relation (no position bound).
	AccessScan AccessKind = iota
	// AccessSeek walks the posting list of one bound position; Match
	// filters the remaining positions (the pushed-down filter).
	AccessSeek
	// AccessProbe probes a two-position hash table (see JoinCache) built
	// once per round, falling back to a seek on Pos when no table was
	// prepared. Chosen when at least two positions are bound.
	AccessProbe
)

// Step is one planned join step: which atom to expand and how.
type Step struct {
	Atom int        // index into the planned atom slice
	Kind AccessKind // access path
	Pos  int        // Seek/Probe: first bound flat position (-1 for Scan)
	Pos2 int        // Probe: second bound flat position (-1 otherwise)
	Est  float64    // planner's cardinality estimate for this step
}

// Plan is a fixed join order with per-step access paths. The zero value
// is an empty plan (a body with no atoms).
type Plan struct {
	Steps []Step
	// Cost is the planner's estimate of the enumerated intermediate
	// results, the sum of the step estimate products. Metadata only.
	Cost float64
}

// String renders the plan compactly, for plan-cache introspection and
// tests: one step per arrow, e.g. "R[seek 0]->S[probe 0,1]".
func (p Plan) String() string {
	var sb strings.Builder
	for i, s := range p.Steps {
		if i > 0 {
			sb.WriteString("->")
		}
		switch s.Kind {
		case AccessScan:
			fmt.Fprintf(&sb, "#%d[scan]", s.Atom)
		case AccessSeek:
			fmt.Fprintf(&sb, "#%d[seek %d]", s.Atom, s.Pos)
		case AccessProbe:
			fmt.Fprintf(&sb, "#%d[probe %d,%d]", s.Atom, s.Pos, s.Pos2)
		}
	}
	return sb.String()
}

// estimate returns the planner's cardinality estimate for expanding ca
// under the bound-slot mask, together with the bound flat positions.
// Ground positions use their exact posting-list length (constants are
// resolved before planning); bound variable positions use the average
// list length RelSize/DistinctAt. Independence of positions is assumed,
// as usual. An unresolved ground term yields 0: the atom matches
// nothing, and ordering it first kills the branch immediately.
func estimate(ca *CAtom, bound []bool, st Stats) (float64, []int) {
	size := st.RelSize(ca.RK)
	est := float64(size)
	var pos []int
	for k := range ca.Pos {
		p := &ca.Pos[k]
		if p.Slot >= 0 {
			if !bound[p.Slot] {
				continue
			}
			pos = append(pos, k)
			if d := st.DistinctAt(ca.RK, k); d > 0 {
				est /= float64(d)
			}
			continue
		}
		if !p.OK {
			return 0, nil
		}
		pos = append(pos, k)
		c := st.CountWithID(ca.RK, k, p.ID)
		if c == 0 {
			return 0, nil
		}
		if size > 0 {
			est *= float64(c) / float64(size)
		}
	}
	return est, pos
}

// accessFor picks the access path for ca given its bound positions: the
// two most selective bound positions become a hash probe, a single bound
// position an index seek, none a scan. Selectivity of a position is its
// (estimated) posting-list length; ties break on the lower position, so
// the choice is deterministic.
func accessFor(ca *CAtom, boundPos []int, st Stats) (AccessKind, int, int) {
	switch len(boundPos) {
	case 0:
		return AccessScan, -1, -1
	case 1:
		return AccessSeek, boundPos[0], -1
	}
	size := st.RelSize(ca.RK)
	listLen := func(k int) float64 {
		p := &ca.Pos[k]
		if p.Slot < 0 {
			return float64(st.CountWithID(ca.RK, k, p.ID))
		}
		if d := st.DistinctAt(ca.RK, k); d > 0 {
			return float64(size) / float64(d)
		}
		return float64(size)
	}
	b1, b2 := boundPos[0], boundPos[1]
	if listLen(b2) < listLen(b1) {
		b1, b2 = b2, b1
	}
	for _, k := range boundPos[2:] {
		l := listLen(k)
		switch {
		case l < listLen(b1):
			b1, b2 = k, b1
		case l < listLen(b2):
			b2 = k
		}
	}
	// Canonical position order, so steps over the same relation share one
	// table in the JoinCache.
	if b1 > b2 {
		b1, b2 = b2, b1
	}
	return AccessProbe, b1, b2
}

// planSteps builds the steps for the given atom order, threading the
// bound mask through the steps and accumulating the cost estimate.
func planSteps(atoms []CAtom, order []int, bound []bool, st Stats) Plan {
	var p Plan
	width := 1.0
	for _, ai := range order {
		ca := &atoms[ai]
		est, boundPos := estimate(ca, bound, st)
		kind, p1, p2 := accessFor(ca, boundPos, st)
		p.Steps = append(p.Steps, Step{Atom: ai, Kind: kind, Pos: p1, Pos2: p2, Est: est})
		width *= est
		p.Cost += width
		for k := range ca.Pos {
			if s := ca.Pos[k].Slot; s >= 0 {
				bound[s] = true
			}
		}
	}
	return p
}

// PlanBody plans a join over atoms: a greedy cost-based order (always
// expand the atom with the smallest cardinality estimate next; ties
// break on the lower atom index) with per-step access paths. bound marks
// the slots already bound before the first step — a delta-driven engine
// passes the pattern atom's slots — with one entry per slot of the
// compiled atoms; it is not modified. Atoms must be Resolved against the
// statistics' database first: the estimates use the resolved constant
// ids, and an unresolved constant (est 0) is ordered first so execution
// dies out before touching any index.
func PlanBody(atoms []CAtom, bound []bool, st Stats) Plan {
	b := append([]bool(nil), bound...)
	order := make([]int, 0, len(atoms))
	taken := make([]bool, len(atoms))
	for len(order) < len(atoms) {
		best, bestEst := -1, 0.0
		for i := range atoms {
			if taken[i] {
				continue
			}
			est, _ := estimate(&atoms[i], b, st)
			if best == -1 || est < bestEst {
				best, bestEst = i, est
			}
		}
		taken[best] = true
		order = append(order, best)
		for k := range atoms[best].Pos {
			if s := atoms[best].Pos[k].Slot; s >= 0 {
				b[s] = true
			}
		}
	}
	return planSteps(atoms, order, append(b[:0:0], bound...), st)
}

// PlanOrder plans a join with a caller-fixed atom order (the legacy
// greedy order, for the planner ablation) but the same per-step access
// selection as PlanBody. bound is not modified.
func PlanOrder(atoms []CAtom, order []int, bound []bool, st Stats) Plan {
	b := append([]bool(nil), bound...)
	return planSteps(atoms, order, b, st)
}

// tableKey identifies one two-position hash table: a relation and the
// canonical (ascending) position pair.
type tableKey struct {
	rk     core.RelKey
	p1, p2 int
}

// joinTable is a two-position hash table over one relation: bucket lists
// of fact ordinals keyed by the packed (id1, id2) pair, in insertion
// order. built is the fact count covered so far; tables are extended
// incrementally as the relation grows, so a table costs O(total facts)
// across all rounds of a fixpoint, not O(facts × rounds).
type joinTable struct {
	m     map[uint64][]int32
	built int
}

// JoinCache holds the hash tables of one fixpoint evaluation. The single
// writer prepares the tables needed by the round's plans (Prepare)
// before the worker fan-out; workers then only read (Probe). Tables
// persist across rounds and are extended with the newly merged facts.
type JoinCache struct {
	db     DB
	tables map[tableKey]*joinTable
	builds int
}

// NewJoinCache returns an empty cache over db.
func NewJoinCache(db DB) *JoinCache {
	return &JoinCache{db: db, tables: make(map[tableKey]*joinTable)}
}

// Builds reports how many tables were created, for engine metrics.
func (jc *JoinCache) Builds() int { return jc.builds }

// Prepare ensures the tables needed by the plan's probe steps exist and
// cover the database's current facts. Writer-only.
func (jc *JoinCache) Prepare(atoms []CAtom, plan *Plan) {
	for _, s := range plan.Steps {
		if s.Kind != AccessProbe {
			continue
		}
		jc.ensure(atoms[s.Atom].RK, len(atoms[s.Atom].Pos), s.Pos, s.Pos2)
	}
}

func (jc *JoinCache) ensure(rk core.RelKey, w, p1, p2 int) {
	k := tableKey{rk, p1, p2}
	t := jc.tables[k]
	n := jc.db.RelSize(rk)
	if t == nil {
		// Pre-size to the relation's fact count: resizing a map that will
		// hold one entry per (nearly) distinct pair is pure waste.
		t = &joinTable{m: make(map[uint64][]int32, n)}
		jc.tables[k] = t
		jc.builds++
	}
	if t.built >= n {
		return
	}
	tuples := jc.db.IDTuples(rk)
	for ix := t.built; ix < n; ix++ {
		key := uint64(tuples[ix*w+p1])<<32 | uint64(tuples[ix*w+p2])
		t.m[key] = append(t.m[key], int32(ix))
	}
	t.built = n
}

// Probe returns the bucket of fact ordinals matching (id1 at p1, id2 at
// p2), and whether a prepared table covers the relation. Read-only.
func (jc *JoinCache) Probe(rk core.RelKey, p1, p2 int, id1, id2 uint32) ([]int32, bool) {
	t := jc.tables[tableKey{rk, p1, p2}]
	if t == nil || t.built < jc.db.RelSize(rk) {
		return nil, false
	}
	return t.m[uint64(id1)<<32|uint64(id2)], true
}

// posIDOf resolves flat position k of ca under the current bindings; ok
// is false for an unresolved ground term or an unbound slot (the planner
// only emits seek/probe steps on statically bound positions, so an
// unbound slot here means a planner bug — treated as a dead branch, the
// sound direction).
func (st *State) posIDOf(ca *CAtom, k int) (uint32, bool) {
	p := &ca.Pos[k]
	if p.Slot >= 0 {
		return st.B[p.Slot], st.Bd[p.Slot]
	}
	return p.ID, p.OK
}

// SearchPlan enumerates all matches of atoms in the fixed order given by
// plan, calling fn at every complete match; fn returning false stops the
// enumeration, and SearchPlan reports whether it ran to completion.
// Bindings made during the search are unwound before returning. jc may
// be nil (probe steps then degrade to seeks). Unlike Search, the order
// is static: the enumeration order is exactly (plan, insertion order of
// each relation), independent of worker count and access-path choices.
func (st *State) SearchPlan(atoms []CAtom, plan *Plan, jc *JoinCache, fn func() bool) bool {
	return st.searchStep(atoms, plan.Steps, jc, fn)
}

func (st *State) searchStep(atoms []CAtom, steps []Step, jc *JoinCache, fn func() bool) bool {
	if len(steps) == 0 {
		return fn()
	}
	s := &steps[0]
	ca := &atoms[s.Atom]
	w := len(ca.Pos)
	tuples := st.DB.IDTuples(ca.RK)
	cont := true
	try := func(ix int) bool {
		mark := len(st.trail)
		if st.Match(ca, tuples[ix*w:ix*w+w]) {
			if !st.searchStep(atoms, steps[1:], jc, fn) {
				cont = false
			}
		}
		st.Unwind(mark)
		return cont
	}
	switch s.Kind {
	case AccessProbe:
		id1, ok1 := st.posIDOf(ca, s.Pos)
		id2, ok2 := st.posIDOf(ca, s.Pos2)
		if !ok1 || !ok2 {
			return cont
		}
		if jc != nil {
			if bucket, ok := jc.Probe(ca.RK, s.Pos, s.Pos2, id1, id2); ok {
				for _, ix := range bucket {
					if !try(int(ix)) {
						break
					}
				}
				return cont
			}
		}
		// No table prepared: seek the first position, Match filters the
		// second — same matches, same insertion order.
		st.DB.ForEachIndexWithID(ca.RK, s.Pos, id1, try)
	case AccessSeek:
		id, ok := st.posIDOf(ca, s.Pos)
		if !ok {
			return cont
		}
		st.DB.ForEachIndexWithID(ca.RK, s.Pos, id, try)
	default: // AccessScan
		n := st.DB.RelSize(ca.RK)
		for ix := 0; ix < n; ix++ {
			if !try(ix) {
				break
			}
		}
	}
	return cont
}

// PackIDs appends the packed id tuple of ca's instantiation under the
// current bindings to dst (the id-slice sibling of PackApplied, pairing
// with Database.SeenIDs). ok is false when a position is an unbound
// variable or an unresolved ground term.
func (st *State) PackIDs(dst []uint32, ca *CAtom) ([]uint32, bool) {
	for k := range ca.Pos {
		id, ok := st.posIDOf(ca, k)
		if !ok {
			return dst, false
		}
		dst = append(dst, id)
	}
	return dst, true
}
