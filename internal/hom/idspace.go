package hom

import (
	"guardedrules/internal/core"
)

// This file is the id-space variant of the homomorphism search: the same
// most-constrained-first backtracking as ForEach/search, but operating on
// the database's packed uint32 id tuples with variable-slot arrays
// instead of substitution maps. Atoms are compiled once per rule
// (Compile), ground terms are re-resolved against the database whenever
// it may have grown (CAtom.Resolve), and the inner loop compares and
// binds dense ids only — no map operations and no term hashing.
//
// The candidate enumeration order is identical to ForEach's: the same
// atom-selection rule (fewest candidates under the current bindings,
// first atom wins ties), the same index choice (bestIndex's comparison
// is replicated bit for bit), and the same fact order (per-position
// index lists and full relation scans both follow insertion order).
// Engines that derive determinism from ForEach's enumeration order — the
// chase's trigger order in particular — can therefore switch between the
// two searchers without changing their results.

// CPos is one compiled flat position of an atom: a variable slot
// (Slot >= 0) or a ground term (Slot < 0, Term kept for
// materialization). For ground positions, ID/OK hold the term's interned
// id as of the last Resolve; OK is false when the database has never
// interned the term, in which case the position matches no fact.
type CPos struct {
	Slot int
	Term core.Term
	ID   uint32
	OK   bool
}

// CAtom is an atom compiled against a variable-slot space: its relation
// key plus one CPos per flat position (arguments first, then
// annotation).
type CAtom struct {
	Atom core.Atom
	RK   core.RelKey
	Pos  []CPos
}

// Compile compiles a into the slot space, assigning fresh slots (in
// order of first occurrence) to variables not yet in slots. Ground
// positions still need a Resolve against the target database before the
// atom can be matched.
func Compile(a core.Atom, slots map[core.Term]int) CAtom {
	ca := CAtom{Atom: a, RK: a.Key()}
	add := func(t core.Term) {
		p := CPos{Slot: -1, Term: t}
		if t.IsVar() {
			s, ok := slots[t]
			if !ok {
				s = len(slots)
				slots[t] = s
			}
			p.Slot = s
		}
		ca.Pos = append(ca.Pos, p)
	}
	for _, t := range a.Args {
		add(t)
	}
	for _, t := range a.Annotation {
		add(t)
	}
	return ca
}

// Width returns the number of flat positions (ids per fact tuple).
func (ca *CAtom) Width() int { return len(ca.Pos) }

// Resolve re-resolves the ground terms of ca against db. Call it
// whenever db may have interned new terms since the last Resolve (the
// fixpoint engines call it once per round, while the database is
// frozen).
func (ca *CAtom) Resolve(db DB) {
	for k := range ca.Pos {
		p := &ca.Pos[k]
		if p.Slot >= 0 {
			continue
		}
		p.ID, p.OK = db.TermID(p.Term)
	}
}

// State is the mutable state of an id-space search: per-slot bindings, a
// bound mask, and the undo trail. A State is owned by one goroutine; the
// database is only read.
type State struct {
	DB    DB
	B     []uint32
	Bd    []bool
	trail []int32
	done  []bool
}

// NewState returns a search state with nvars unbound slots over db.
func NewState(db DB, nvars int) *State {
	return &State{DB: db, B: make([]uint32, nvars), Bd: make([]bool, nvars)}
}

// Grow ensures the state has at least nvars slots (existing bindings are
// kept). Engines sharing one state across rules size it to the largest
// rule.
func (st *State) Grow(nvars int) {
	for len(st.B) < nvars {
		st.B = append(st.B, 0)
		st.Bd = append(st.Bd, false)
	}
}

// Bind binds slot to id without recording it on the trail; callers that
// seed bindings (e.g. a trigger's variable tuple) undo them with Unbind.
func (st *State) Bind(slot int, id uint32) {
	st.B[slot] = id
	st.Bd[slot] = true
}

// Unbind clears a seeded binding.
func (st *State) Unbind(slot int) { st.Bd[slot] = false }

// Mark returns the current trail position for a later Unwind.
func (st *State) Mark() int { return len(st.trail) }

// Unwind undoes all trail bindings made since the mark.
func (st *State) Unwind(mark int) {
	for _, s := range st.trail[mark:] {
		st.Bd[s] = false
	}
	st.trail = st.trail[:mark]
}

// Match unifies ca against a fact's id tuple, recording fresh bindings
// on the trail. On failure, bindings made so far stay on the trail; the
// caller unwinds to its mark either way.
func (st *State) Match(ca *CAtom, ids []uint32) bool {
	for k := range ca.Pos {
		p := &ca.Pos[k]
		id := ids[k]
		if p.Slot < 0 {
			if !p.OK || p.ID != id {
				return false
			}
			continue
		}
		if st.Bd[p.Slot] {
			if st.B[p.Slot] != id {
				return false
			}
			continue
		}
		st.Bd[p.Slot] = true
		st.B[p.Slot] = id
		st.trail = append(st.trail, int32(p.Slot))
	}
	return true
}

// bestIndex picks the tightest index for ca under the current bindings:
// the resolved position with the fewest facts, or a full relation scan
// when no position is resolved. The comparison replicates the term-space
// bestIndex exactly (including its tie-breaking), so both searchers pick
// the same candidate lists.
func (st *State) bestIndex(ca *CAtom) (int, uint32, int) {
	bestPos := -1
	var bestID uint32
	bestCount := st.DB.RelSize(ca.RK)
	for k := range ca.Pos {
		p := &ca.Pos[k]
		var id uint32
		c := 0
		if p.Slot >= 0 {
			if !st.Bd[p.Slot] {
				continue
			}
			id = st.B[p.Slot]
			c = st.DB.CountWithID(ca.RK, k, id)
		} else if p.OK {
			// An unresolved ground term (p.OK false) occurs in no fact:
			// zero candidates, dead branch.
			id = p.ID
			c = st.DB.CountWithID(ca.RK, k, id)
		}
		if c < bestCount || bestPos == -1 && c <= bestCount {
			bestCount = c
			bestPos = k
			bestID = id
		}
	}
	return bestPos, bestID, bestCount
}

// Search backtracks over the atoms whose done flag is false, always
// expanding the most constrained one, calling fn at every complete
// match. fn returning false stops the enumeration; Search reports
// whether enumeration ran to completion. done is owned by the caller
// (entries are restored on return), which lets delta-driven engines
// pre-mark an atom they matched by hand. Bindings made during the search
// are unwound before Search returns.
func (st *State) Search(atoms []CAtom, done []bool, fn func() bool) bool {
	best := -1
	bestCount := -1
	bestPos := -1
	var bestID uint32
	for i := range atoms {
		if done[i] {
			continue
		}
		pos, id, count := st.bestIndex(&atoms[i])
		if best == -1 || count < bestCount {
			best, bestCount, bestPos, bestID = i, count, pos, id
			if count == 0 {
				return true // dead branch
			}
		}
	}
	if best == -1 {
		return fn()
	}
	done[best] = true
	ca := &atoms[best]
	tuples := st.DB.IDTuples(ca.RK)
	w := len(ca.Pos)
	cont := true
	try := func(ix int) bool {
		mark := len(st.trail)
		if st.Match(ca, tuples[ix*w:ix*w+w]) {
			if !st.Search(atoms, done, fn) {
				cont = false
			}
		}
		st.Unwind(mark)
		return cont
	}
	if bestPos >= 0 {
		st.DB.ForEachIndexWithID(ca.RK, bestPos, bestID, try)
	} else {
		n := st.DB.RelSize(ca.RK)
		for ix := 0; ix < n; ix++ {
			if !try(ix) {
				break
			}
		}
	}
	done[best] = false
	return cont
}

// ForEach is Search with no atoms pre-matched.
func (st *State) ForEach(atoms []CAtom, fn func() bool) bool {
	if cap(st.done) < len(atoms) {
		st.done = make([]bool, len(atoms))
	}
	done := st.done[:len(atoms)]
	for i := range done {
		done[i] = false
	}
	return st.Search(atoms, done, fn)
}

// Exists reports whether some extension of the current bindings maps
// atoms into the database.
func (st *State) Exists(atoms []CAtom) bool {
	found := false
	st.ForEach(atoms, func() bool {
		found = true
		return false
	})
	return found
}

// PackApplied appends the packed id key of ca's instantiation under the
// current bindings to dst (the id-space analogue of
// Database.AppliedKey). ok is false when a position is an unbound
// variable or an unresolved ground term: the instantiation is not a
// ground fact of the database.
func (st *State) PackApplied(dst []byte, ca *CAtom) ([]byte, bool) {
	for k := range ca.Pos {
		p := &ca.Pos[k]
		var id uint32
		if p.Slot >= 0 {
			if !st.Bd[p.Slot] {
				return dst, false
			}
			id = st.B[p.Slot]
		} else {
			if !p.OK {
				return dst, false
			}
			id = p.ID
		}
		dst = append(dst, byte(id), byte(id>>8), byte(id>>16), byte(id>>24))
	}
	return dst, true
}

// Materialize builds the instantiation of ca under the current bindings:
// bound slots become their interned terms, unbound slots keep the
// original variable. Like Subst.ApplyAtom, the atom's source span is
// dropped.
func (st *State) Materialize(ca *CAtom) core.Atom {
	out := core.Atom{Relation: ca.Atom.Relation}
	at := func(k int) core.Term {
		p := &ca.Pos[k]
		if p.Slot >= 0 {
			if st.Bd[p.Slot] {
				return st.DB.Term(st.B[p.Slot])
			}
			return p.Term
		}
		return p.Term
	}
	n := len(ca.Atom.Args)
	if n > 0 {
		out.Args = make([]core.Term, n)
		for k := 0; k < n; k++ {
			out.Args[k] = at(k)
		}
	}
	if ca.Atom.Annotation != nil {
		out.Annotation = make([]core.Term, len(ca.Atom.Annotation))
		for k := range ca.Atom.Annotation {
			out.Annotation[k] = at(n + k)
		}
	}
	return out
}
