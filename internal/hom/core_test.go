package hom_test

import (
	"testing"

	"guardedrules/internal/chase"
	"guardedrules/internal/core"
	"guardedrules/internal/database"
	"guardedrules/internal/hom"
	"guardedrules/internal/parser"
)

func TestCoreDropsRedundantNull(t *testing.T) {
	// R(a,n1) is subsumed by R(a,b): the core is {R(a,b)}.
	atoms := []core.Atom{
		core.NewAtom("R", core.Const("a"), core.Const("b")),
		core.NewAtom("R", core.Const("a"), core.NewNull("n1")),
	}
	got, exact := hom.Core(atoms, 0)
	if !exact {
		t.Fatal("small instance must be solved exactly")
	}
	if len(got) != 1 || !got[0].Equal(atoms[0]) {
		t.Errorf("core: %v", got)
	}
}

func TestCoreMergesDuplicateNulls(t *testing.T) {
	atoms := []core.Atom{
		core.NewAtom("R", core.Const("a"), core.NewNull("n1")),
		core.NewAtom("R", core.Const("a"), core.NewNull("n2")),
	}
	got, _ := hom.Core(atoms, 0)
	if len(got) != 1 {
		t.Errorf("isomorphic null atoms must merge: %v", got)
	}
}

func TestCoreKeepsNecessaryNulls(t *testing.T) {
	// n1 is the only R-successor of a: nothing to map it to.
	atoms := []core.Atom{
		core.NewAtom("A", core.Const("a")),
		core.NewAtom("R", core.Const("a"), core.NewNull("n1")),
	}
	got, _ := hom.Core(atoms, 0)
	if len(got) != 2 {
		t.Errorf("necessary null dropped: %v", got)
	}
	if !hom.IsCore(got, 0) {
		t.Error("result must be a core")
	}
}

func TestCoreChainCollapse(t *testing.T) {
	// A null cycle n1→n2→n1 maps onto the constant loop a→a.
	atoms := []core.Atom{
		core.NewAtom("E", core.Const("a"), core.Const("a")),
		core.NewAtom("E", core.NewNull("n1"), core.NewNull("n2")),
		core.NewAtom("E", core.NewNull("n2"), core.NewNull("n1")),
	}
	got, _ := hom.Core(atoms, 0)
	if len(got) != 1 {
		t.Errorf("cycle must collapse onto the loop: %v", got)
	}
}

// The oblivious and restricted chase have the same core (both are
// universal models).
func TestChaseVariantsShareCore(t *testing.T) {
	th := parser.MustParseTheory(`
		A(X) -> exists Y. R(X,Y).
		R(X,Y) -> B(Y).
	`)
	d := database.FromAtoms(parser.MustParseFacts(`A(a). R(a,b).`))
	ob, err := chase.Run(th, d, chase.Options{Variant: chase.Oblivious})
	if err != nil {
		t.Fatal(err)
	}
	re, err := chase.Run(th, d, chase.Options{Variant: chase.Restricted})
	if err != nil {
		t.Fatal(err)
	}
	c1, _ := hom.Core(ob.DB.UserFacts(), 0)
	c2, _ := hom.Core(re.DB.UserFacts(), 0)
	if len(c1) != len(c2) {
		t.Errorf("cores differ in size: %d vs %d\n%v\n%v", len(c1), len(c2), c1, c2)
	}
	if !hom.Equivalent(c1, c2) {
		t.Error("cores must be homomorphically equivalent")
	}
	// The oblivious chase created a redundant null here; its core is
	// strictly smaller.
	if len(c1) >= len(ob.DB.UserFacts()) {
		t.Error("oblivious chase core must be smaller than the chase")
	}
}

func TestCoreEquivalence(t *testing.T) {
	atoms := []core.Atom{
		core.NewAtom("R", core.Const("a"), core.NewNull("n1")),
		core.NewAtom("S", core.NewNull("n1"), core.NewNull("n2")),
		core.NewAtom("R", core.Const("a"), core.NewNull("n3")),
	}
	got, _ := hom.Core(atoms, 0)
	if !hom.Equivalent(atoms, got) {
		t.Error("core must be homomorphically equivalent to the input")
	}
	// Idempotence.
	again, _ := hom.Core(got, 0)
	if len(again) != len(got) {
		t.Error("Core must be idempotent")
	}
}

func TestCoreNoNulls(t *testing.T) {
	atoms := []core.Atom{core.NewAtom("R", core.Const("a"), core.Const("b"))}
	got, exact := hom.Core(atoms, 0)
	if !exact || len(got) != 1 {
		t.Errorf("ground instances are their own core: %v", got)
	}
}
