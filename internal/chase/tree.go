package chase

import (
	"fmt"

	"guardedrules/internal/budget"
	"guardedrules/internal/classify"
	"guardedrules/internal/core"
	"guardedrules/internal/database"
)

// Node is a node of a chase tree: a set of atoms (Definition 6).
type Node struct {
	ID     int
	Parent *Node
	Atoms  []core.Atom
	terms  core.TermSet
}

// Terms returns terms(d) for the node.
func (n *Node) Terms() core.TermSet { return n.terms }

// Tree is a chase tree of a database w.r.t. a normal frontier-guarded
// theory (Definition 6). The root stores the atoms over the input
// constants; non-root nodes store atoms with labeled nulls.
type Tree struct {
	Root  *Node
	Nodes []*Node
}

// RunTree chases d0 with a normal frontier-guarded theory th while
// building the chase tree. The theory must have single-atom heads; rules
// with constants must be of the form → R(c) (normal form, Definition 4).
func RunTree(th *core.Theory, d0 database.Store, opts Options) (*Tree, *Result, error) {
	return runTree(run, th, d0, opts)
}

func runTree(rf runFn, th *core.Theory, d0 database.Store, opts Options) (*Tree, *Result, error) {
	for _, r := range th.Rules {
		if len(r.Head) != 1 {
			return nil, nil, fmt.Errorf("chase tree: rule %s does not have a singleton head (theory not normal)", r.Label)
		}
		if !classify.IsFrontierGuarded(r) {
			return nil, nil, fmt.Errorf("chase tree: rule %s is not frontier-guarded", r.Label)
		}
	}
	// Root d0 = D ∪ {R(c) | → R(c) ∈ Σ}.
	rootAtoms := append([]core.Atom(nil), d0.UserFacts()...)
	for _, r := range th.Rules {
		if len(r.Body) == 0 && r.Head[0].IsGround() {
			rootAtoms = append(rootAtoms, r.Head[0])
		}
	}
	root := &Node{ID: 0, Atoms: rootAtoms, terms: core.TermsOf(rootAtoms)}
	tree := &Tree{Root: root, Nodes: []*Node{root}}

	var hookErr error
	hook := func(r *core.Rule, sub core.Subst, atom core.Atom) {
		if hookErr != nil {
			return
		}
		if len(r.Body) == 0 {
			// Constant rules → R(c) are already part of the root.
			root.addIfMissing(atom)
			return
		}
		ts := atom.Terms()
		// (C1): some node already contains all terms of the new atom.
		if n := tree.minimalNode(ts); n != nil {
			n.addIfMissing(atom)
			return
		}
		// (C2): new node below the minimal node for the frontier image.
		img := make(core.TermSet)
		for v := range r.FVars() {
			img.Add(sub.Apply(v))
		}
		parent := tree.minimalNode(img)
		if parent == nil {
			hookErr = fmt.Errorf("chase tree: no node contains frontier image %v of %v", img.Sorted(), atom)
			return
		}
		node := &Node{ID: len(tree.Nodes), Parent: parent, Atoms: []core.Atom{atom}, terms: atom.Terms()}
		tree.Nodes = append(tree.Nodes, node)
	}
	res, err := rf(th, d0, opts, hook)
	if err != nil {
		if budget.IsBudget(err) && res != nil && hookErr == nil {
			// The partial run still induces a well-formed prefix of the
			// chase tree; surface it alongside the typed error.
			return tree, res, err
		}
		return nil, nil, err
	}
	if hookErr != nil {
		return nil, nil, hookErr
	}
	return tree, res, nil
}

func (n *Node) addIfMissing(a core.Atom) {
	if !core.ContainsAtom(n.Atoms, a) {
		n.Atoms = append(n.Atoms, a)
		for t := range a.Terms() {
			n.terms.Add(t)
		}
	}
}

// minimalNode returns a C-minimal node (Definition 5): a node whose terms
// include C and whose parent's terms do not. Returns nil when no node
// contains C.
func (t *Tree) minimalNode(c core.TermSet) *Node {
	for _, n := range t.Nodes {
		if n.terms.ContainsAll(c) && (n.Parent == nil || !n.Parent.terms.ContainsAll(c)) {
			return n
		}
	}
	return nil
}

// MinimalNodes returns every C-minimal node; Proposition 2 (P3) asserts
// there is at most one.
func (t *Tree) MinimalNodes(c core.TermSet) []*Node {
	var out []*Node
	for _, n := range t.Nodes {
		if n.terms.ContainsAll(c) && (n.Parent == nil || !n.Parent.terms.ContainsAll(c)) {
			out = append(out, n)
		}
	}
	return out
}

// VerifyProposition2 checks properties (P1)–(P3) of Proposition 2 for the
// built tree: the root has at most |terms(D)|+k terms, non-root nodes have
// at most m terms (m the maximal relation arity of th, k the number of
// constants in rules of th), and C-minimal nodes are unique for every set
// C of terms of any single node. It returns nil if all hold.
func (t *Tree) VerifyProposition2(th *core.Theory, d0 database.Store) error {
	m := th.MaxArity()
	k := len(th.Constants())
	dTerms := len(d0.Terms())
	if got := len(t.Root.terms); got > dTerms+k {
		return fmt.Errorf("P1 violated: root has %d terms > |terms(D)|+k = %d", got, dTerms+k)
	}
	for _, n := range t.Nodes {
		if n == t.Root {
			continue
		}
		if len(n.terms) > m {
			return fmt.Errorf("P2 violated: node %d has %d terms > max arity %d", n.ID, len(n.terms), m)
		}
	}
	for _, n := range t.Nodes {
		if mins := t.MinimalNodes(n.terms); len(mins) > 1 {
			return fmt.Errorf("P3 violated: %d minimal nodes for terms of node %d", len(mins), n.ID)
		}
		// Also check singleton term sets (connectedness of the
		// decomposition hinges on these).
		for term := range n.terms {
			if mins := t.MinimalNodes(core.NewTermSet(term)); len(mins) > 1 {
				return fmt.Errorf("P3 violated: %d minimal nodes for term %v", len(mins), term)
			}
		}
	}
	return nil
}

// Width returns the width of the tree decomposition induced by the chase
// tree: max node term count minus 1.
func (t *Tree) Width() int {
	w := 0
	for _, n := range t.Nodes {
		if len(n.terms) > w {
			w = len(n.terms)
		}
	}
	return w - 1
}

// AllAtoms returns the union of all node atom sets.
func (t *Tree) AllAtoms() []core.Atom {
	var out []core.Atom
	for _, n := range t.Nodes {
		out = append(out, n.Atoms...)
	}
	return out
}

// Depth returns the depth of the tree (root = 0).
func (t *Tree) Depth() int {
	max := 0
	for _, n := range t.Nodes {
		d := 0
		for p := n; p.Parent != nil; p = p.Parent {
			d++
		}
		if d > max {
			max = d
		}
	}
	return max
}
