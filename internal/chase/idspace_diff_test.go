package chase

import (
	"errors"
	"fmt"
	"reflect"
	"testing"

	"guardedrules/internal/budget"
	"guardedrules/internal/core"
	"guardedrules/internal/gen"
)

// Differential suite: the id-space engine must be byte-identical to the
// term-space reference engine (legacy.go) on databases with benign
// constant names — same database rendering, same step and round counts,
// same null depths, same provenance and chase trees — at every worker
// count, both saturating and under budgets.

var diffWorkerCounts = []int{1, 2, 4, 8}

func diffOpts(variant Variant, workers int) Options {
	return Options{Variant: variant, MaxDepth: 3, MaxFacts: 20_000, Workers: workers}
}

// compareRuns asserts the two results agree observably.
func compareRuns(t *testing.T, label string, want, got *Result, wantErr, gotErr error) {
	t.Helper()
	if (wantErr == nil) != (gotErr == nil) {
		t.Fatalf("%s: errors diverge: legacy=%v idspace=%v", label, wantErr, gotErr)
	}
	if wantErr != nil && !errors.Is(gotErr, reasonOf(wantErr)) {
		t.Fatalf("%s: error reasons diverge: legacy=%v idspace=%v", label, wantErr, gotErr)
	}
	if want == nil || got == nil {
		if want != got {
			t.Fatalf("%s: one result is nil: legacy=%v idspace=%v", label, want, got)
		}
		return
	}
	if w, g := want.DB.String(), got.DB.String(); w != g {
		t.Fatalf("%s: databases diverge\nlegacy:\n%s\nidspace:\n%s", label, w, g)
	}
	if want.Steps != got.Steps {
		t.Fatalf("%s: Steps %d vs %d", label, want.Steps, got.Steps)
	}
	if want.Rounds != got.Rounds {
		t.Fatalf("%s: Rounds %d vs %d", label, want.Rounds, got.Rounds)
	}
	if want.Saturated != got.Saturated || want.Truncated != got.Truncated {
		t.Fatalf("%s: Saturated/Truncated (%v,%v) vs (%v,%v)", label,
			want.Saturated, want.Truncated, got.Saturated, got.Truncated)
	}
	if (want.Reason == nil) != (got.Reason == nil) ||
		(want.Reason != nil && !errors.Is(got.Reason, want.Reason)) {
		t.Fatalf("%s: Reason %v vs %v", label, want.Reason, got.Reason)
	}
	if !reflect.DeepEqual(want.Depth, got.Depth) {
		t.Fatalf("%s: null depth tables diverge:\nlegacy:  %v\nidspace: %v", label, want.Depth, got.Depth)
	}
}

func theoriesUnderTest(seed int64) map[string]*core.Theory {
	return map[string]*core.Theory{
		"fg":      gen.RandomFrontierGuardedTheory(gen.FGTheoryOptions{Rules: 6, Seed: seed}),
		"guarded": gen.RandomGuardedTheory(6, seed),
		"wfg":     gen.RandomWFGTheory(6, seed),
	}
}

func TestIDSpaceMatchesLegacyOnRandomTheories(t *testing.T) {
	for seed := int64(1); seed <= 8; seed++ {
		db := gen.ABDatabase(12, seed)
		for name, th := range theoriesUnderTest(seed) {
			for _, variant := range []Variant{Oblivious, Restricted} {
				ref, refErr := legacyRun(th, db, diffOpts(variant, 1), nil)
				for _, w := range diffWorkerCounts {
					label := fmt.Sprintf("seed=%d theory=%s variant=%d workers=%d", seed, name, variant, w)
					got, gotErr := run(th, db, diffOpts(variant, w), nil)
					compareRuns(t, label, ref, got, refErr, gotErr)
				}
			}
		}
	}
}

// Budget-governed runs must stop at the same trigger with the same
// partial result.
func TestIDSpaceMatchesLegacyUnderBudgets(t *testing.T) {
	for seed := int64(1); seed <= 4; seed++ {
		db := gen.ABDatabase(10, seed)
		th := gen.RandomFrontierGuardedTheory(gen.FGTheoryOptions{Rules: 6, Seed: seed})
		for _, mk := range []func() Options{
			func() Options { return Options{MaxFacts: 25, MaxDepth: 2} },
			func() Options { return Options{MaxRounds: 2, MaxDepth: 3} },
			func() Options { return Options{Budget: &budget.T{MaxFacts: 25}, MaxDepth: 2} },
			func() Options { return Options{Budget: &budget.T{MaxSteps: 7}, MaxDepth: 2} },
			func() Options { return Options{Budget: &budget.T{MaxRounds: 2}, MaxDepth: 3} },
		} {
			ref, refErr := legacyRun(th, db, mk(), nil)
			for _, w := range diffWorkerCounts {
				opts := mk()
				opts.Workers = w
				got, gotErr := run(th, db, opts, nil)
				label := fmt.Sprintf("seed=%d opts=%+v workers=%d", seed, opts, w)
				compareRuns(t, label, ref, got, refErr, gotErr)
			}
		}
	}
}

func TestIDSpaceMatchesLegacyProvenance(t *testing.T) {
	for seed := int64(1); seed <= 4; seed++ {
		db := gen.ABDatabase(10, seed)
		th := gen.RandomFrontierGuardedTheory(gen.FGTheoryOptions{Rules: 6, Seed: seed})
		refRes, refProv, refErr := runWithProvenance(legacyRun, th, db, diffOpts(Oblivious, 1))
		for _, w := range diffWorkerCounts {
			res, prov, err := runWithProvenance(run, th, db, diffOpts(Oblivious, w))
			label := fmt.Sprintf("prov seed=%d workers=%d", seed, w)
			compareRuns(t, label, refRes, res, refErr, err)
			if !reflect.DeepEqual(refProv, prov) {
				t.Fatalf("%s: provenance diverges (%d vs %d entries)", label, len(refProv), len(prov))
			}
		}
	}
}

func renderTree(tr *Tree) string {
	s := ""
	for _, n := range tr.Nodes {
		p := -1
		if n.Parent != nil {
			p = n.Parent.ID
		}
		s += fmt.Sprintf("node %d parent %d:", n.ID, p)
		for _, a := range n.Atoms {
			s += " " + a.String()
		}
		s += "\n"
	}
	return s
}

func TestIDSpaceMatchesLegacyTrees(t *testing.T) {
	for seed := int64(1); seed <= 4; seed++ {
		db := gen.ABDatabase(10, seed)
		// Frontier-guarded single-head theories satisfy RunTree's normal-form
		// requirements.
		th := gen.RandomFrontierGuardedTheory(gen.FGTheoryOptions{Rules: 6, Seed: seed})
		refTree, refRes, refErr := runTree(legacyRun, th, db, diffOpts(Oblivious, 1))
		for _, w := range diffWorkerCounts {
			tree, res, err := runTree(run, th, db, diffOpts(Oblivious, w))
			label := fmt.Sprintf("tree seed=%d workers=%d", seed, w)
			compareRuns(t, label, refRes, res, refErr, err)
			if rt, gt := renderTree(refTree), renderTree(tree); rt != gt {
				t.Fatalf("%s: trees diverge\nlegacy:\n%s\nidspace:\n%s", label, rt, gt)
			}
		}
	}
}

// Fault injection across both engines: at every checkpoint index, legacy
// and id-space runs (at every worker count) must cancel at the same point
// with the same partial database. Workers only poll the cancellation flag
// without consuming checkpoints, so the sweep stays aligned.
func TestIDSpaceMatchesLegacyFailAtSweep(t *testing.T) {
	db := gen.ABDatabase(10, 3)
	th := gen.RandomFrontierGuardedTheory(gen.FGTheoryOptions{Rules: 6, Seed: 3})
	for n := 1; ; n++ {
		if n > 10_000 {
			t.Fatal("fault injection never ran to completion")
		}
		mk := func(workers int) Options {
			return Options{MaxDepth: 2, Workers: workers, Budget: budget.FailAt(n)}
		}
		ref, refErr := legacyRun(th, db, mk(1), nil)
		for _, w := range diffWorkerCounts {
			got, gotErr := run(th, db, mk(w), nil)
			compareRuns(t, fmt.Sprintf("failat n=%d workers=%d", n, w), ref, got, refErr, gotErr)
		}
		if refErr == nil {
			break
		}
	}
}

// On adversarial constant names the legacy engine under-derives (its
// serialized trigger keys collide); the id-space engine must stay
// self-consistent across worker counts and derive at least as much.
func TestIDSpaceSelfConsistentOnAdversarialNames(t *testing.T) {
	for seed := int64(1); seed <= 4; seed++ {
		db := gen.AdversarialNames(12, seed)
		for name, th := range theoriesUnderTest(seed) {
			ref, refErr := run(th, db, diffOpts(Oblivious, 1), nil)
			if refErr != nil {
				t.Fatalf("seed=%d theory=%s: %v", seed, name, refErr)
			}
			for _, w := range diffWorkerCounts[1:] {
				got, gotErr := run(th, db, diffOpts(Oblivious, w), nil)
				compareRuns(t, fmt.Sprintf("adv seed=%d theory=%s workers=%d", seed, name, w), ref, got, refErr, gotErr)
			}
			leg, legErr := legacyRun(th, db, diffOpts(Oblivious, 1), nil)
			if legErr != nil {
				t.Fatalf("seed=%d theory=%s legacy: %v", seed, name, legErr)
			}
			if leg.Steps > ref.Steps {
				t.Fatalf("seed=%d theory=%s: legacy applied %d triggers, id-space %d — id-space must not under-derive",
					seed, name, leg.Steps, ref.Steps)
			}
		}
	}
}
