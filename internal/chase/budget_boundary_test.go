package chase

import (
	"errors"
	"testing"

	"guardedrules/internal/budget"
	"guardedrules/internal/database"
	"guardedrules/internal/parser"
)

// MaxFacts is a hard ceiling: the returned database never exceeds it,
// even when a single trigger application would add several facts
// (the head fact plus derived ACDom facts).

func TestMaxFactsExactBoundary(t *testing.T) {
	th := parser.MustParseTheory(infiniteTheory)
	d := database.FromAtoms(parser.MustParseFacts(`N(a).`))
	// Every application adds exactly one fact (nulls never enter ACDom),
	// so the run stops exactly at the ceiling.
	res, err := Run(th, d, Options{MaxFacts: 30})
	if err != nil {
		t.Fatal(err)
	}
	if res.DB.Len() != 30 {
		t.Fatalf("Len = %d, want exactly 30", res.DB.Len())
	}
	if !res.Truncated || !errors.Is(res.Reason, budget.ErrFactLimit) {
		t.Fatalf("Truncated=%v Reason=%v, want soft ErrFactLimit", res.Truncated, res.Reason)
	}
	// Budget-governed runs hit the same exact boundary, with a typed error.
	res, err = Run(th, d, Options{Budget: &budget.T{MaxFacts: 30}})
	if !errors.Is(err, budget.ErrFactLimit) {
		t.Fatalf("err = %v, want ErrFactLimit", err)
	}
	if res.DB.Len() != 30 {
		t.Fatalf("budget-governed Len = %d, want exactly 30", res.DB.Len())
	}
}

func TestMaxFactsNeverOvershoots(t *testing.T) {
	// Each application of the rule adds two facts: R(x,d) and the derived
	// ACDom(d) (first time). The input holds 4 facts (two Q facts plus two
	// ACDom facts); a ceiling of 5 leaves no room for a 2-fact application,
	// so the engine must stop at 4 rather than overshoot to 6.
	th := parser.MustParseTheory(`Q(X) -> R(X,d).`)
	d := database.FromAtoms(parser.MustParseFacts(`Q(a). Q(b).`))
	for _, opts := range []Options{
		{MaxFacts: 5},
		{Budget: &budget.T{MaxFacts: 5}},
	} {
		res, err := Run(th, d, opts)
		if opts.Budget != nil && !errors.Is(err, budget.ErrFactLimit) {
			t.Fatalf("budget err = %v, want ErrFactLimit", err)
		}
		if opts.Budget == nil && err != nil {
			t.Fatal(err)
		}
		if res.DB.Len() > 5 {
			t.Fatalf("Len = %d exceeds MaxFacts 5", res.DB.Len())
		}
		if !res.Truncated || !errors.Is(res.Reason, budget.ErrFactLimit) {
			t.Fatalf("Truncated=%v Reason=%v, want ErrFactLimit", res.Truncated, res.Reason)
		}
	}
	// With room for exactly one application (ceiling 6) the run stops at 6.
	res, err := Run(th, d, Options{MaxFacts: 6})
	if err != nil {
		t.Fatal(err)
	}
	if res.DB.Len() != 6 {
		t.Fatalf("Len = %d, want exactly 6", res.DB.Len())
	}
}

// Result.Rounds counts the rounds that applied at least one trigger —
// including a final round whose applications were all duplicates.

func TestRoundsCountsProductiveRounds(t *testing.T) {
	// Round 1 derives Q(a); round 2 fires Q(a) → P(a), which adds nothing
	// (P(a) is input) but still applies a trigger. Both rounds count.
	th := parser.MustParseTheory(`P(X) -> Q(X). Q(X) -> P(X).`)
	d := database.FromAtoms(parser.MustParseFacts(`P(a).`))
	res, err := Run(th, d, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if !res.Saturated {
		t.Fatalf("run must saturate, got %+v", res)
	}
	if res.Steps != 2 {
		t.Fatalf("Steps = %d, want 2", res.Steps)
	}
	if res.Rounds != 2 {
		t.Fatalf("Rounds = %d, want 2 (the duplicate-only final round counts)", res.Rounds)
	}
}

func TestRoundsCeilingReportsCeiling(t *testing.T) {
	th := parser.MustParseTheory(infiniteTheory)
	d := database.FromAtoms(parser.MustParseFacts(`N(a).`))
	res, err := Run(th, d, Options{MaxRounds: 3})
	if err != nil {
		t.Fatal(err)
	}
	if !res.Truncated || !errors.Is(res.Reason, budget.ErrRoundLimit) {
		t.Fatalf("Truncated=%v Reason=%v, want ErrRoundLimit", res.Truncated, res.Reason)
	}
	if res.Rounds != 3 {
		t.Fatalf("Rounds = %d, want the ceiling 3 (that many productive rounds ran)", res.Rounds)
	}
	res, err = Run(th, d, Options{Budget: &budget.T{MaxRounds: 3}})
	if !errors.Is(err, budget.ErrRoundLimit) {
		t.Fatalf("err = %v, want ErrRoundLimit", err)
	}
	if res.Rounds != 3 {
		t.Fatalf("budget-governed Rounds = %d, want 3", res.Rounds)
	}
}
