// Package chase implements the (oblivious and restricted) chase of a
// database with respect to a theory (Section 2 of the paper), with fair
// breadth-first scheduling, and the chase-tree construction of Section 4.
//
// The chase of an existential theory is infinite in general; Options
// provides null-depth and fact budgets that truncate the construction.
// A truncated result is a sound under-approximation of chase(Σ, D): every
// returned atom is entailed. EXPERIMENTS.md justifies, per experiment,
// the depth at which the relevant ground consequences are complete.
package chase

import (
	"errors"
	"fmt"
	"strings"
	"sync"

	"guardedrules/internal/budget"
	"guardedrules/internal/core"
	"guardedrules/internal/database"
	"guardedrules/internal/hom"
)

// Variant selects the chase flavor.
type Variant int

const (
	// Oblivious applies every trigger once, regardless of whether the head
	// is already satisfied (the chase of the paper, Section 2).
	Oblivious Variant = iota
	// Restricted applies a trigger only when the head is not yet satisfied
	// by an extension of the trigger homomorphism. It produces a smaller,
	// homomorphically equivalent result.
	Restricted
)

// Options configures a chase run.
type Options struct {
	Variant Variant
	// MaxDepth bounds the null-creation depth: a null created by a trigger
	// whose image contains terms of depth d gets depth d+1; constants have
	// depth 0. Triggers that would create nulls deeper than MaxDepth are
	// skipped (and the run marked truncated). 0 means unbounded.
	MaxDepth int
	// MaxFacts aborts the run once the database holds this many facts.
	// 0 means the default of 1,000,000.
	MaxFacts int
	// MaxRounds bounds the number of breadth-first rounds. 0 = 10,000.
	MaxRounds int
	// Workers sets the number of goroutines collecting triggers per round
	// (the database is read-only during collection, so rule matching
	// parallelizes). 0 or 1 means sequential. The result is identical to
	// the sequential one: triggers are merged in rule order.
	Workers int
	// Budget, when non-nil, governs the run: its context/deadline cancels
	// the chase between trigger applications, and its ceilings override
	// the legacy Max* fields above. A budget-governed run that exhausts a
	// ceiling returns the partial Result together with a typed
	// *budget.Error (errors.Is-matchable), whereas the legacy ints above
	// truncate softly: Truncated=true, Reason set, nil error.
	Budget *budget.T
}

func (o Options) workers() int {
	if o.Workers < 1 {
		return 1
	}
	return o.Workers
}

func (o Options) maxFacts() int {
	if o.MaxFacts == 0 {
		return 1_000_000
	}
	return o.MaxFacts
}

func (o Options) maxRounds() int {
	if o.MaxRounds == 0 {
		return 10_000
	}
	return o.MaxRounds
}

// Result is the outcome of a chase run.
type Result struct {
	// DB is the chase database, including the input facts.
	DB *database.Database
	// Saturated is true when a fixpoint was reached: no applicable trigger
	// remains, so DB is exactly chase(Σ, D) (up to the variant).
	Saturated bool
	// Truncated is true when a depth, fact or round budget was hit, or the
	// run was canceled.
	Truncated bool
	// Reason is the budget sentinel explaining a truncation
	// (budget.ErrDepthLimit, budget.ErrFactLimit, budget.ErrRoundLimit,
	// budget.ErrCanceled, ...). Nil when the run saturated.
	Reason error
	// Usage is the resource-usage snapshot of the run.
	Usage budget.Usage
	// Steps is the number of trigger applications.
	Steps int
	// Rounds is the number of breadth-first rounds executed.
	Rounds int
	// Depth maps each created null to its creation depth.
	Depth map[core.Term]int
}

// Entails reports whether the ground atom was derived. Only meaningful as
// a complete decision when Saturated is true; on truncated runs a true
// answer is still sound.
func (r *Result) Entails(a core.Atom) bool { return r.DB.Has(a) }

// trigger is a rule paired with a body homomorphism.
type trigger struct {
	rule *core.Rule
	sub  core.Subst
}

// engine carries the mutable state of a run.
type engine struct {
	opts    Options
	db      *database.Database
	depth   map[core.Term]int
	applied map[string]bool // oblivious-mode trigger memo
	nulls   int
	steps   int
	trunc   bool
	reason  error // budget sentinel recorded at the first truncation
	// Precomputed per rule: a numeric id and the sorted universal
	// variables, so trigger keys are built without sorting or fmt.
	ruleID   map[*core.Rule]int
	ruleVars map[*core.Rule][]core.Term
	// hook observes every newly derived atom with its trigger; used by the
	// chase-tree construction.
	hook func(tr trigger, atom core.Atom)
}

// Run chases d0 with th. The input database is not modified. Negated body
// literals are evaluated against the current database; this is only
// meaningful when the negated relations are never derived by th itself
// (as in a single stratum of a stratified theory).
func Run(th *core.Theory, d0 *database.Database, opts Options) (*Result, error) {
	return run(th, d0, opts, nil)
}

func run(th *core.Theory, d0 *database.Database, opts Options, hook func(tr trigger, atom core.Atom)) (*Result, error) {
	if err := th.CheckSafe(); err != nil {
		return nil, fmt.Errorf("chase: %w", err)
	}
	e := &engine{
		opts:     opts,
		db:       d0.Clone(),
		depth:    make(map[core.Term]int),
		applied:  make(map[string]bool),
		hook:     hook,
		ruleID:   make(map[*core.Rule]int, len(th.Rules)),
		ruleVars: make(map[*core.Rule][]core.Term, len(th.Rules)),
	}
	for i, r := range th.Rules {
		e.ruleID[r] = i
		keep := r.UVars()
		for _, l := range r.Body {
			keep.AddAll(l.Atom.AnnVars())
		}
		e.ruleVars[r] = keep.Sorted()
	}
	bud := opts.Budget
	tk := budget.Start(bud)
	defer tk.Stop()
	// Effective ceilings: the budget overrides the legacy Options ints.
	// Legacy truncation stays soft (Truncated + Reason, nil error); hitting
	// a ceiling the budget itself declares is a typed error with a partial
	// result attached.
	maxFacts := budget.Cap(bud, func(b *budget.T) int { return b.MaxFacts }, opts.maxFacts())
	maxRounds := budget.Cap(bud, func(b *budget.T) int { return b.MaxRounds }, opts.maxRounds())
	maxSteps := 0
	budFacts, budRounds := false, false
	if bud != nil {
		maxSteps = bud.MaxSteps
		budFacts = bud.MaxFacts > 0
		budRounds = bud.MaxRounds > 0
	}

	res := &Result{Depth: e.depth}
	finish := func(err error) (*Result, error) {
		res.DB = e.db
		res.Steps = e.steps
		res.Truncated = e.trunc
		res.Saturated = !e.trunc
		res.Reason = e.reason
		res.Usage = tk.Usage()
		return res, err
	}
	// Delta-driven rounds: round 0 considers all facts; later rounds only
	// triggers whose body uses at least one fact derived in the previous
	// round.
	delta := e.db.UserFacts()
	for rounds := 0; ; rounds++ {
		tk.SetRounds(rounds)
		// Round checkpoint: cancellation and deadline are observed here and
		// between trigger applications below; the partial database (all
		// completed applications) stays attached to the result.
		if err := tk.Check(); err != nil {
			e.truncate(reasonOf(err))
			return finish(err)
		}
		if rounds >= maxRounds {
			e.truncate(budget.ErrRoundLimit)
			if budRounds {
				return finish(tk.Exhausted(budget.ErrRoundLimit))
			}
			break
		}
		res.Rounds = rounds
		trs := e.collect(th, delta, rounds == 0)
		if len(trs) == 0 {
			break
		}
		var newFacts []core.Atom
		overBudget := false
		for _, tr := range trs {
			if err := tk.Check(); err != nil {
				e.truncate(reasonOf(err))
				return finish(err)
			}
			if e.db.Len() >= maxFacts {
				e.truncate(budget.ErrFactLimit)
				if budFacts {
					return finish(tk.Exhausted(budget.ErrFactLimit))
				}
				overBudget = true
				break
			}
			if maxSteps > 0 && e.steps >= maxSteps {
				e.truncate(budget.ErrStepLimit)
				return finish(tk.Exhausted(budget.ErrStepLimit))
			}
			added, err := e.apply(tr)
			if err != nil {
				return finish(fmt.Errorf("chase: %w", err))
			}
			tk.AddFacts(len(added))
			tk.AddSteps(1)
			newFacts = append(newFacts, added...)
		}
		if overBudget {
			break
		}
		if len(newFacts) == 0 {
			break
		}
		delta = newFacts
	}
	return finish(nil)
}

// truncate marks the run truncated, recording the first reason.
func (e *engine) truncate(reason error) {
	e.trunc = true
	if e.reason == nil {
		e.reason = reason
	}
}

// reasonOf extracts the sentinel reason of a budget error, for recording
// in Result.Reason.
func reasonOf(err error) error {
	var be *budget.Error
	if errors.As(err, &be) {
		return be.Reason
	}
	return err
}

// collect gathers the applicable triggers for this round: candidates are
// found per rule (in parallel when Options.Workers > 1 — the database is
// only read during collection), then merged in rule order with global
// deduplication and admissibility checks, so the outcome is independent
// of the worker count.
func (e *engine) collect(th *core.Theory, delta []core.Atom, first bool) []trigger {
	deltaDB := database.FromAtoms(delta)
	perRule := make([][]trigger, len(th.Rules))
	workers := e.opts.workers()
	if workers > 1 && len(th.Rules) > 1 {
		sem := make(chan struct{}, workers)
		var wg sync.WaitGroup
		for i, r := range th.Rules {
			wg.Add(1)
			sem <- struct{}{}
			go func(i int, r *core.Rule) {
				defer wg.Done()
				defer func() { <-sem }()
				perRule[i] = e.collectRule(r, deltaDB, first)
			}(i, r)
		}
		wg.Wait()
	} else {
		for i, r := range th.Rules {
			perRule[i] = e.collectRule(r, deltaDB, first)
		}
	}
	var out []trigger
	seen := make(map[string]bool)
	for _, trs := range perRule {
		for _, tr := range trs {
			k := e.triggerKey(tr)
			if seen[k] {
				continue
			}
			seen[k] = true
			if e.admissible(tr, k) {
				out = append(out, tr)
			}
		}
	}
	return out
}

// collectRule finds this round's candidate triggers of one rule. It only
// reads the engine's database and precomputed tables, so calls for
// different rules may run concurrently.
func (e *engine) collectRule(r *core.Rule, deltaDB *database.Database, first bool) []trigger {
	var out []trigger
	body := r.PositiveBody()
	emit := func(s core.Subst) bool {
		// Negative literals: evaluated against the full current db.
		for _, l := range r.Body {
			if l.Negated && e.db.Has(s.ApplyAtom(l.Atom)) {
				return true
			}
		}
		out = append(out, trigger{rule: r, sub: restrictToRule(s, r, e.ruleVars[r])})
		return true
	}
	if first || len(body) == 0 {
		if len(body) == 0 {
			// Body-less rules fire once, in the first round.
			if first {
				emit(core.Subst{})
			}
			return out
		}
		hom.ForEach(body, e.db, nil, emit)
		return out
	}
	// Semi-naive: require some body atom matched in the delta.
	for i, b := range body {
		rest := make([]core.Atom, 0, len(body)-1)
		rest = append(rest, body[:i]...)
		rest = append(rest, body[i+1:]...)
		hom.ForEach([]core.Atom{b}, deltaDB, nil, func(s core.Subst) bool {
			hom.ForEach(rest, e.db, s, emit)
			return true
		})
	}
	return out
}

// admissible filters triggers per variant and depth budget.
func (e *engine) admissible(tr trigger, key string) bool {
	if e.applied[key] {
		return false
	}
	if e.opts.Variant == Restricted && e.headSatisfied(tr) {
		return false
	}
	if len(tr.rule.Exist) > 0 && e.opts.MaxDepth > 0 {
		d := 0
		for _, t := range tr.sub {
			if dd, ok := e.depth[t]; ok && dd > d {
				d = dd
			}
		}
		if d+1 > e.opts.MaxDepth {
			// Depth is a semantic under-approximation bound, never an error:
			// record the truncation and skip the trigger.
			e.truncate(budget.ErrDepthLimit)
			return false
		}
	}
	return true
}

// headSatisfied reports whether the head of the trigger is already
// entailed: some extension of the frontier assignment maps the head into
// the database.
func (e *engine) headSatisfied(tr trigger) bool {
	init := core.Subst{}
	ev := tr.rule.EVarSet()
	for v, t := range tr.sub {
		if !ev.Has(v) {
			init[v] = t
		}
	}
	return hom.Exists(tr.rule.Head, e.db, init)
}

// apply fires the trigger: existential variables become fresh nulls and
// the instantiated head atoms are added. It returns the atoms that were
// actually new.
func (e *engine) apply(tr trigger) ([]core.Atom, error) {
	key := e.triggerKey(tr)
	if e.applied[key] {
		return nil, nil
	}
	// Re-check satisfaction for the restricted variant: an earlier trigger
	// in this round may have satisfied the head meanwhile.
	if e.opts.Variant == Restricted && e.headSatisfied(tr) {
		e.applied[key] = true
		return nil, nil
	}
	e.applied[key] = true
	s := tr.sub.Clone()
	base := 0
	for _, t := range s {
		if d, ok := e.depth[t]; ok && d > base {
			base = d
		}
	}
	for _, v := range tr.rule.Exist {
		e.nulls++
		n := core.NewNull(fmt.Sprintf("n%d", e.nulls))
		e.depth[n] = base + 1
		s[v] = n
	}
	e.steps++
	var added []core.Atom
	// AddNotify also surfaces the ACDom facts derived for fresh head
	// constants, so ACDom-reading rules see them in the next delta.
	note := func(f core.Atom) { added = append(added, f) }
	for _, h := range tr.rule.Head {
		a := s.ApplyAtom(h)
		isNew, err := e.db.AddNotify(a, note)
		if err != nil {
			return added, fmt.Errorf("rule %s: %w", tr.rule.Label, err)
		}
		if isNew && e.hook != nil {
			e.hook(tr, a)
		}
	}
	return added, nil
}

// restrictToRule keeps only the bindings of the rule's own variables
// (hom search may receive init substitutions carrying more).
func restrictToRule(s core.Subst, r *core.Rule, vars []core.Term) core.Subst {
	out := make(core.Subst, len(vars))
	for _, v := range vars {
		if t, ok := s[v]; ok {
			out[v] = t
		}
	}
	return out
}

// triggerKey identifies a (rule, homomorphism) pair. Variables are
// serialized in the rule's precomputed order.
func (e *engine) triggerKey(tr trigger) string {
	var sb strings.Builder
	sb.WriteByte(byte(e.ruleID[tr.rule]))
	sb.WriteByte(byte(e.ruleID[tr.rule] >> 8))
	sb.WriteByte(byte(e.ruleID[tr.rule] >> 16))
	for _, v := range e.ruleVars[tr.rule] {
		t := tr.sub[v]
		sb.WriteByte(byte('0' + t.Kind))
		sb.WriteString(t.Name)
		sb.WriteByte(0)
	}
	return sb.String()
}
