// Package chase implements the (oblivious and restricted) chase of a
// database with respect to a theory (Section 2 of the paper), with fair
// breadth-first scheduling, and the chase-tree construction of Section 4.
//
// The chase of an existential theory is infinite in general; Options
// provides null-depth and fact budgets that truncate the construction.
// A truncated result is a sound under-approximation of chase(Σ, D): every
// returned atom is entailed. EXPERIMENTS.md justifies, per experiment,
// the depth at which the relevant ground consequences are complete.
//
// The engine runs in the database's interned id space (DESIGN.md has the
// full mapping to the paper's trigger definition): rule bodies are
// compiled once to hom.CAtom slot programs, a trigger — the paper's pair
// (σ, h) of a rule and a body homomorphism — is represented as the packed
// uint32 id tuple of h's images over the rule's variables, and the
// trigger memo is a (ruleID, id-tuple) hash set. Because interned ids are
// bijective with terms, distinct triggers can never collide — unlike the
// previous name-serialized trigger keys, where a separator byte inside a
// constant name could conflate two triggers and silently drop one
// (see triggerkey_regression_test.go).
package chase

import (
	"errors"
	"fmt"
	"runtime/debug"
	"strconv"

	"guardedrules/internal/budget"
	"guardedrules/internal/core"
	"guardedrules/internal/database"
	"guardedrules/internal/hom"
	"guardedrules/internal/par"
)

// Variant selects the chase flavor.
type Variant int

const (
	// Oblivious applies every trigger once, regardless of whether the head
	// is already satisfied (the chase of the paper, Section 2).
	Oblivious Variant = iota
	// Restricted applies a trigger only when the head is not yet satisfied
	// by an extension of the trigger homomorphism. It produces a smaller,
	// homomorphically equivalent result.
	Restricted
)

// Options configures a chase run.
type Options struct {
	Variant Variant
	// MaxDepth bounds the null-creation depth: a null created by a trigger
	// whose image contains terms of depth d gets depth d+1; constants have
	// depth 0. Triggers that would create nulls deeper than MaxDepth are
	// skipped (and the run marked truncated). 0 means unbounded.
	MaxDepth int
	// MaxFacts caps the database size: a trigger application stops before
	// any added fact (including derived ACDom facts) would push Len beyond
	// the cap, so the returned database never exceeds it. 0 means the
	// default of 1,000,000.
	MaxFacts int
	// MaxRounds bounds the number of breadth-first rounds. 0 = 10,000.
	MaxRounds int
	// Workers sets the number of goroutines collecting triggers per round
	// (the database is read-only during collection, so trigger matching
	// parallelizes across (rule × delta-shard) work items). 0 or 1 means
	// sequential. The result is byte-identical to the sequential one:
	// work items are merged in deterministic order.
	Workers int
	// Budget, when non-nil, governs the run: its context/deadline cancels
	// the chase between trigger applications, and its ceilings override
	// the legacy Max* fields above. A budget-governed run that exhausts a
	// ceiling returns the partial Result together with a typed
	// *budget.Error (errors.Is-matchable), whereas the legacy ints above
	// truncate softly: Truncated=true, Reason set, nil error.
	Budget *budget.T
}

func (o Options) workers() int {
	if o.Workers < 1 {
		return 1
	}
	return o.Workers
}

func (o Options) maxFacts() int {
	if o.MaxFacts == 0 {
		return 1_000_000
	}
	return o.MaxFacts
}

func (o Options) maxRounds() int {
	if o.MaxRounds == 0 {
		return 10_000
	}
	return o.MaxRounds
}

// Result is the outcome of a chase run.
type Result struct {
	// DB is the chase database, including the input facts.
	DB *database.Database
	// Saturated is true when a fixpoint was reached: no applicable trigger
	// remains, so DB is exactly chase(Σ, D) (up to the variant).
	Saturated bool
	// Truncated is true when a depth, fact or round budget was hit, or the
	// run was canceled.
	Truncated bool
	// Reason is the budget sentinel explaining a truncation
	// (budget.ErrDepthLimit, budget.ErrFactLimit, budget.ErrRoundLimit,
	// budget.ErrCanceled, ...). Nil when the run saturated.
	Reason error
	// Usage is the resource-usage snapshot of the run.
	Usage budget.Usage
	// Steps is the number of trigger applications.
	Steps int
	// Rounds is the number of breadth-first rounds that applied at least
	// one trigger. A saturating run's final round — which finds no
	// applicable trigger — is not counted, and a run truncated by a round
	// ceiling reports the ceiling itself (it executed that many productive
	// rounds), not ceiling-1.
	Rounds int
	// Depth maps each created null to its creation depth.
	Depth map[core.Term]int
}

// Entails reports whether the ground atom was derived. Only meaningful as
// a complete decision when Saturated is true; on truncated runs a true
// answer is still sound.
func (r *Result) Entails(a core.Atom) bool { return r.DB.Has(a) }

// hookFn observes every newly derived atom together with the rule and
// the (restricted, exist-free) substitution of the trigger that produced
// it; used by the chase-tree and provenance constructions. The subst is
// owned by the engine but stable for the duration of the call.
type hookFn func(r *core.Rule, sub core.Subst, atom core.Atom)

// runFn is the signature shared by the id-space engine (run) and the
// term-space reference engine (legacyRun); RunTree/RunWithProvenance are
// parameterized over it so the differential suite can drive both.
type runFn func(th *core.Theory, d0 database.Store, opts Options, hook hookFn) (*Result, error)

// unboundID marks a rule variable with no binding in a trigger tuple
// (a variable occurring only in negated literals that the search never
// bound). Interned ids are dense from 0, so the sentinel is unreachable
// for any realistic database.
const unboundID = ^uint32(0)

// pollInterval is how many candidate matches a worker processes between
// cancellation polls inside a single work item.
const pollInterval = 64

// seqThreshold is the delta size (facts) below which a round's
// collection runs sequentially: goroutine fan-out costs more than the
// joins it splits.
const seqThreshold = 128

// crule is a rule compiled to the id space: its positive body, negated
// atoms and head atoms as slot programs over one shared variable-slot
// space, plus the slot of every rule variable (the trigger tuple layout)
// and of every existential variable.
type crule struct {
	rule  *core.Rule
	idx   int
	body  []hom.CAtom // positive body, original order
	neg   []hom.CAtom // negated atoms, body order
	heads []hom.CAtom
	nvars int
	// headEpoch is the intern epoch the heads were last resolved at;
	// headSatisfied skips the re-resolution while it is current.
	headEpoch int
	// ruleVars are the rule's universal and annotation variables in
	// sorted order; a trigger is the packed tuple of their images.
	// varSlots[i] is the slot of ruleVars[i] (-1 when the variable has no
	// slot, which cannot happen for safe rules).
	ruleVars []core.Term
	varSlots []int
	// existSlots[i] is the slot of rule.Exist[i] in the heads (-1 when
	// the existential variable occurs in no head atom; the null is still
	// minted, matching the term-space engine).
	existSlots []int
}

func (cr *crule) resolve(db *database.Database) {
	for i := range cr.body {
		cr.body[i].Resolve(db)
	}
	for i := range cr.neg {
		cr.neg[i].Resolve(db)
	}
}

// trig is a collected trigger: a compiled rule and the packed id tuple
// of its variable images (width len(cr.ruleVars)).
type trig struct {
	cr  *crule
	ids []uint32
}

// deltaGroup is one relation's slice of the previous round's delta: n
// packed id tuples of width w, in derivation order. For ACDom/1 the
// tuples replay the constants of every delta fact (see prepareDelta).
type deltaGroup struct {
	w   int
	n   int
	ids []uint32
}

// engine carries the mutable state of a run.
type engine struct {
	opts       Options
	db         *database.Database
	depth      map[core.Term]int // public: null term -> creation depth
	depthID    []int32           // by interned id, 0 for input terms
	applied    *triggerSet       // persistent trigger memo
	nulls      int
	steps      int
	trunc      bool
	overBudget bool
	reason     error // budget sentinel recorded at the first truncation
	maxFacts   int
	rules      []crule
	// ruleEpoch is the intern epoch the rules' bodies were last resolved
	// at (-1 = never); collect skips the per-round re-resolution while no
	// new term has been interned.
	ruleEpoch  int
	st         *hom.State // single-threaded state for admissible/apply
	hook       hookFn
	roundAdded []core.Atom // facts added this round, in insertion order
	noteFn     func(core.Atom)
	groups     map[core.RelKey]*deltaGroup
}

// Run chases d0 with th. The input database is not modified. Negated body
// literals are evaluated against the current database; this is only
// meaningful when the negated relations are never derived by th itself
// (as in a single stratum of a stratified theory).
func Run(th *core.Theory, d0 database.Store, opts Options) (*Result, error) {
	return run(th, d0, opts, nil)
}

func newEngine(th *core.Theory, d0 database.Store, opts Options, hook hookFn) *engine {
	e := &engine{
		opts:    opts,
		db:      d0.Clone(),
		depth:   make(map[core.Term]int),
		applied: newTriggerSet(),
		hook:    hook,
		rules:   make([]crule, len(th.Rules)),
	}
	e.ruleEpoch = -1
	maxNvars := 0
	for i, r := range th.Rules {
		cr := &e.rules[i]
		cr.rule, cr.idx = r, i
		cr.headEpoch = -1
		slots := make(map[core.Term]int)
		for _, a := range r.PositiveBody() {
			cr.body = append(cr.body, hom.Compile(a, slots))
		}
		for _, l := range r.Body {
			if l.Negated {
				cr.neg = append(cr.neg, hom.Compile(l.Atom, slots))
			}
		}
		for _, h := range r.Head {
			cr.heads = append(cr.heads, hom.Compile(h, slots))
		}
		cr.nvars = len(slots)
		keep := r.UVars()
		for _, l := range r.Body {
			keep.AddAll(l.Atom.AnnVars())
		}
		cr.ruleVars = keep.Sorted()
		cr.varSlots = make([]int, len(cr.ruleVars))
		for j, v := range cr.ruleVars {
			if s, ok := slots[v]; ok {
				cr.varSlots[j] = s
			} else {
				cr.varSlots[j] = -1
			}
		}
		cr.existSlots = make([]int, len(r.Exist))
		for j, v := range r.Exist {
			if s, ok := slots[v]; ok {
				cr.existSlots[j] = s
			} else {
				cr.existSlots[j] = -1
			}
		}
		if cr.nvars > maxNvars {
			maxNvars = cr.nvars
		}
	}
	e.st = hom.NewState(e.db, maxNvars)
	e.noteFn = func(f core.Atom) { e.roundAdded = append(e.roundAdded, f) }
	return e
}

func run(th *core.Theory, d0 database.Store, opts Options, hook hookFn) (res *Result, err error) {
	// Engine boundary: a panic anywhere in the run — worker panics are
	// already converted by par.RunUnits, this seam catches the
	// coordinator's own — surfaces as one failed request, never a dead
	// process. No partial result: a mid-application panic may leave the
	// working database half-updated, unlike the discarded-buffer
	// cancellation path.
	defer func() {
		if v := recover(); v != nil {
			res, err = nil, fmt.Errorf("chase: %w", &par.PanicError{Unit: -1, Value: v, Stack: debug.Stack()})
		}
	}()
	if err := th.CheckSafe(); err != nil {
		return nil, fmt.Errorf("chase: %w", err)
	}
	e := newEngine(th, d0, opts, hook)
	bud := opts.Budget
	tk := budget.Start(bud)
	defer tk.Stop()
	// Effective ceilings: the budget overrides the legacy Options ints.
	// Legacy truncation stays soft (Truncated + Reason, nil error); hitting
	// a ceiling the budget itself declares is a typed error with a partial
	// result attached.
	e.maxFacts = budget.Cap(bud, func(b *budget.T) int { return b.MaxFacts }, opts.maxFacts())
	maxRounds := budget.Cap(bud, func(b *budget.T) int { return b.MaxRounds }, opts.maxRounds())
	maxSteps := 0
	budFacts, budRounds := false, false
	if bud != nil {
		maxSteps = bud.MaxSteps
		budFacts = bud.MaxFacts > 0
		budRounds = bud.MaxRounds > 0
	}

	res = &Result{Depth: e.depth}
	finish := func(err error) (*Result, error) {
		res.DB = e.db
		res.Steps = e.steps
		res.Truncated = e.trunc
		res.Saturated = !e.trunc
		res.Reason = e.reason
		res.Usage = tk.Usage()
		return res, err
	}
	// Delta-driven rounds: round 0 considers all facts; later rounds only
	// triggers whose body uses at least one fact derived in the previous
	// round.
	for first := true; ; first = false {
		tk.SetRounds(res.Rounds)
		// Round checkpoint: cancellation and deadline are observed here and
		// between trigger applications below; the partial database (all
		// completed applications) stays attached to the result.
		if err := tk.Check(); err != nil {
			e.truncate(reasonOf(err))
			return finish(err)
		}
		if res.Rounds >= maxRounds {
			e.truncate(budget.ErrRoundLimit)
			if budRounds {
				return finish(tk.Exhausted(budget.ErrRoundLimit))
			}
			break
		}
		trs, cerr := e.collect(first, tk)
		if cerr != nil {
			// A contained worker panic: nothing from this round was merged;
			// the database still holds exactly the completed rounds.
			return finish(fmt.Errorf("chase: %w", cerr))
		}
		if len(trs) == 0 {
			break
		}
		e.roundAdded = e.roundAdded[:0]
		counted := false
		for _, tr := range trs {
			if err := tk.Check(); err != nil {
				e.truncate(reasonOf(err))
				return finish(err)
			}
			if e.db.Len() >= e.maxFacts {
				e.truncate(budget.ErrFactLimit)
				if budFacts {
					return finish(tk.Exhausted(budget.ErrFactLimit))
				}
				e.overBudget = true
				break
			}
			if maxSteps > 0 && e.steps >= maxSteps {
				e.truncate(budget.ErrStepLimit)
				return finish(tk.Exhausted(budget.ErrStepLimit))
			}
			before := len(e.roundAdded)
			fired, err := e.apply(tr)
			if err != nil {
				return finish(fmt.Errorf("chase: %w", err))
			}
			tk.AddFacts(len(e.roundAdded) - before)
			tk.AddSteps(1)
			if fired && !counted {
				counted = true
				res.Rounds++
			}
			if e.overBudget {
				if budFacts {
					return finish(tk.Exhausted(budget.ErrFactLimit))
				}
				break
			}
		}
		if e.overBudget || len(e.roundAdded) == 0 {
			break
		}
		e.prepareDelta()
	}
	return finish(nil)
}

// truncate marks the run truncated, recording the first reason.
func (e *engine) truncate(reason error) {
	e.trunc = true
	if e.reason == nil {
		e.reason = reason
	}
}

// reasonOf extracts the sentinel reason of a budget error, for recording
// in Result.Reason.
func reasonOf(err error) error {
	var be *budget.Error
	if errors.As(err, &be) {
		return be.Reason
	}
	return err
}

// unit is one trigger-collection work item: a full search of a rule's
// body (round 0, pos < 0) or a (rule × body position × delta block)
// semi-naive item whose pattern atom must match one of the block's delta
// tuples. Contiguous blocks keep the merged trigger order identical to
// the sequential enumeration.
type unit struct {
	cr     *crule
	pos    int
	g      *deltaGroup
	lo, hi int
}

// collect gathers the applicable triggers for this round. Work items are
// evaluated over a fixed worker pool (the database is only read), each
// buffering packed trigger tuples; a single-threaded merge in work-item
// order then deduplicates and filters for admissibility, so the outcome
// is byte-identical for every worker count. A panic contained by the
// pool aborts the round before any merge: the error is returned and the
// buffers are dropped.
func (e *engine) collect(first bool, tk *budget.Tracker) ([]trig, error) {
	workers := e.opts.workers()
	var units []unit
	if first {
		for i := range e.rules {
			units = append(units, unit{cr: &e.rules[i], pos: -1})
		}
	} else {
		total := 0
		for _, g := range e.groups {
			total += g.n
		}
		nb := 1
		if workers > 1 && total >= seqThreshold {
			nb = workers
		}
		for i := range e.rules {
			cr := &e.rules[i]
			for pi := range cr.body {
				g := e.groups[cr.body[pi].RK]
				if g == nil {
					continue
				}
				blocks := nb
				if blocks > g.n {
					blocks = g.n
				}
				per := (g.n + blocks - 1) / blocks
				for lo := 0; lo < g.n; lo += per {
					hi := lo + per
					if hi > g.n {
						hi = g.n
					}
					units = append(units, unit{cr: cr, pos: pi, g: g, lo: lo, hi: hi})
				}
			}
		}
	}
	// Re-resolve compiled constants against the frozen database once,
	// before the fan-out (workers only read the compiled rules) — skipped
	// entirely when no new term was interned since the last resolve:
	// every TermID answer is then unchanged.
	if ep := e.db.InternEpoch(); ep != e.ruleEpoch {
		for i := range e.rules {
			e.rules[i].resolve(e.db)
		}
		e.ruleEpoch = ep
	}
	bufs := make([][]uint32, len(units))
	counts := make([]int, len(units))
	if err := par.RunUnits(len(units), workers, tk.Canceled, func(u int) {
		bufs[u], counts[u] = e.runUnit(units[u], first, tk.Canceled)
	}); err != nil {
		return nil, err
	}
	// Merge in unit order: global dedup (the per-round seen set, marked
	// before admissibility like the trigger memo) then admissibility.
	seen := newTriggerSet()
	var out []trig
	for ui := range units {
		cr := units[ui].cr
		w := len(cr.varSlots)
		buf := bufs[ui]
		for k := 0; k < counts[ui]; k++ {
			ids := buf[k*w : k*w+w]
			if !seen.add(uint32(cr.idx), ids) {
				continue
			}
			if e.admissible(cr, ids) {
				out = append(out, trig{cr: cr, ids: ids})
			}
		}
	}
	return out, nil
}

// runUnit enumerates one work item's candidate triggers into a packed
// buffer. It runs on a worker goroutine: the database and compiled rules
// are read-only, all mutable search state is local.
func (e *engine) runUnit(u unit, first bool, canceled func() bool) ([]uint32, int) {
	cr := u.cr
	st := hom.NewState(e.db, cr.nvars)
	var buf []uint32
	count := 0
	polls := 0
	var scratch [64]byte
	leaf := func() bool {
		if polls++; polls%pollInterval == 0 && canceled() {
			return false // abort enumeration; the run loop observes the cancellation
		}
		// Negative literals: evaluated against the full current db.
		for j := range cr.neg {
			key, ok := st.PackApplied(scratch[:0], &cr.neg[j])
			if ok && e.db.SeenKey(cr.neg[j].RK, key) {
				return true
			}
		}
		for _, slot := range cr.varSlots {
			if slot >= 0 && st.Bd[slot] {
				buf = append(buf, st.B[slot])
			} else {
				buf = append(buf, unboundID)
			}
		}
		count++
		return true
	}
	if u.pos < 0 {
		if len(cr.body) == 0 {
			// Body-less rules fire once, in the first round.
			if first {
				leaf()
			}
			return buf, count
		}
		st.ForEach(cr.body, leaf)
		return buf, count
	}
	// Semi-naive: the pattern atom must match a delta tuple of the block;
	// the rest of the body is searched over the full database.
	done := make([]bool, len(cr.body))
	done[u.pos] = true
	pa := &cr.body[u.pos]
	w := u.g.w
	for j := u.lo; j < u.hi; j++ {
		mark := st.Mark()
		if st.Match(pa, u.g.ids[j*w:j*w+w]) {
			if !st.Search(cr.body, done, leaf) {
				st.Unwind(mark)
				break
			}
		}
		st.Unwind(mark)
	}
	return buf, count
}

// seed binds the trigger tuple's ids onto the shared state (unbound
// sentinel positions stay unbound); unseed undoes it.
func (e *engine) seed(cr *crule, ids []uint32) {
	for j, s := range cr.varSlots {
		if s >= 0 && ids[j] != unboundID {
			e.st.Bind(s, ids[j])
		}
	}
}

func (e *engine) unseed(cr *crule) {
	for _, s := range cr.varSlots {
		if s >= 0 {
			e.st.Unbind(s)
		}
	}
}

// admissible filters triggers per variant and depth budget.
func (e *engine) admissible(cr *crule, ids []uint32) bool {
	if e.applied.has(uint32(cr.idx), ids) {
		return false
	}
	if e.opts.Variant == Restricted && e.headSatisfied(cr, ids) {
		return false
	}
	if len(cr.rule.Exist) > 0 && e.opts.MaxDepth > 0 {
		d := 0
		for _, id := range ids {
			if id == unboundID {
				continue
			}
			if dd := e.depthOf(id); dd > d {
				d = dd
			}
		}
		if d+1 > e.opts.MaxDepth {
			// Depth is a semantic under-approximation bound, never an error:
			// record the truncation and skip the trigger.
			e.truncate(budget.ErrDepthLimit)
			return false
		}
	}
	return true
}

// headSatisfied reports whether the head of the trigger is already
// entailed: some extension of the trigger assignment (the existential
// slots stay free) maps the head into the database.
func (e *engine) headSatisfied(cr *crule, ids []uint32) bool {
	// The database grows between calls (triggers of the same round apply
	// one by one), so head constants may need re-resolving — but only
	// when a new term was actually interned since this rule's last
	// resolve, which the intern epoch tracks exactly.
	if ep := e.db.InternEpoch(); ep != cr.headEpoch {
		for i := range cr.heads {
			cr.heads[i].Resolve(e.db)
		}
		cr.headEpoch = ep
	}
	e.seed(cr, ids)
	ok := e.st.Exists(cr.heads)
	e.unseed(cr)
	return ok
}

// apply fires the trigger: existential variables become fresh nulls and
// the instantiated head atoms are added. It reports whether the trigger
// actually fired (was not memoized or pre-satisfied). Added facts are
// appended to e.roundAdded via the notify callback.
func (e *engine) apply(tr trig) (bool, error) {
	cr := tr.cr
	if e.applied.has(uint32(cr.idx), tr.ids) {
		return false, nil
	}
	// Re-check satisfaction for the restricted variant: an earlier trigger
	// in this round may have satisfied the head meanwhile.
	if e.opts.Variant == Restricted && e.headSatisfied(cr, tr.ids) {
		e.applied.add(uint32(cr.idx), tr.ids)
		return false, nil
	}
	e.applied.add(uint32(cr.idx), tr.ids)
	base := 0
	for _, id := range tr.ids {
		if id == unboundID {
			continue
		}
		if d := e.depthOf(id); d > base {
			base = d
		}
	}
	e.seed(cr, tr.ids)
	for j := range cr.rule.Exist {
		e.nulls++
		n := core.NewNull("n" + strconv.Itoa(e.nulls))
		id := e.db.InternTerm(n)
		e.setDepth(id, base+1)
		e.depth[n] = base + 1
		if s := cr.existSlots[j]; s >= 0 {
			e.st.Bind(s, id)
		}
	}
	e.steps++
	var sub core.Subst
	if e.hook != nil {
		sub = e.subOf(cr, tr.ids)
	}
	var applyErr error
	// AddNotify also surfaces the ACDom facts derived for fresh head
	// constants, so ACDom-reading rules see them in the next delta.
	for hi := range cr.heads {
		a := e.st.Materialize(&cr.heads[hi])
		// Enforce the fact ceiling per added fact (including the ACDom
		// facts this Add would derive): the database never exceeds it.
		if e.db.Len()+e.db.AddCost(a) > e.maxFacts {
			e.truncate(budget.ErrFactLimit)
			e.overBudget = true
			break
		}
		isNew, err := e.db.AddNotify(a, e.noteFn)
		if err != nil {
			applyErr = fmt.Errorf("rule %s: %w", cr.rule.Label, err)
			break
		}
		if isNew && e.hook != nil {
			e.hook(cr.rule, sub, a)
		}
	}
	e.unseed(cr)
	for _, s := range cr.existSlots {
		if s >= 0 {
			e.st.Unbind(s)
		}
	}
	return true, applyErr
}

// subOf materializes the trigger's substitution over the rule variables
// (exist variables excluded), for the tree/provenance hooks.
func (e *engine) subOf(cr *crule, ids []uint32) core.Subst {
	s := make(core.Subst, len(cr.ruleVars))
	for i, v := range cr.ruleVars {
		if ids[i] != unboundID {
			s[v] = e.db.Term(ids[i])
		}
	}
	return s
}

func (e *engine) depthOf(id uint32) int {
	if int(id) < len(e.depthID) {
		return int(e.depthID[id])
	}
	return 0
}

func (e *engine) setDepth(id uint32, d int) {
	for int(id) >= len(e.depthID) {
		e.depthID = append(e.depthID, 0)
	}
	e.depthID[id] = int32(d)
}

// prepareDelta compiles this round's added facts into per-relation delta
// groups for the next round's semi-naive collection.
//
// For every relation but ACDom/1 the group is the tail of the database's
// id-tuple log — new facts of a relation are appended in derivation
// order. ACDom/1 is special: the semi-naive contract (mirroring a
// per-round delta database, which re-derives ACDom(c) for every constant
// of every delta fact) requires the ACDom delta to cover all constants
// occurring in the round's added facts — not only the globally fresh
// ones — in first-occurrence order, plus any explicitly derived ACDom
// facts. An ACDom-reading rule joined against a delta containing a
// known constant must still see that constant.
func (e *engine) prepareDelta() {
	acdomRK := core.RelKey{Name: core.ACDom, Arity: 1}
	counts := make(map[core.RelKey]int)
	var acdomIDs []uint32
	seenConst := make(map[uint32]bool)
	noteID := func(t core.Term) {
		if !t.IsConst() {
			return
		}
		id, ok := e.db.TermID(t)
		if !ok {
			return
		}
		if !seenConst[id] {
			seenConst[id] = true
			acdomIDs = append(acdomIDs, id)
		}
	}
	for _, a := range e.roundAdded {
		if a.Relation == core.ACDom {
			if a.Key() == acdomRK {
				// Explicit/derived ACDom facts join the replay list (the
				// arg may be a null if a rule head derived one).
				id, ok := e.db.TermID(a.Args[0])
				if ok && !seenConst[id] {
					seenConst[id] = true
					acdomIDs = append(acdomIDs, id)
				}
				continue
			}
			counts[a.Key()]++ // odd-arity ACDom: plain tail group
			continue
		}
		counts[a.Key()]++
		for _, t := range a.Args {
			noteID(t)
		}
		for _, t := range a.Annotation {
			noteID(t)
		}
	}
	e.groups = make(map[core.RelKey]*deltaGroup, len(counts)+1)
	for rk, n := range counts {
		w := rk.Arity + rk.AnnArity
		all := e.db.IDTuples(rk)
		e.groups[rk] = &deltaGroup{w: w, n: n, ids: all[len(all)-n*w:]}
	}
	if len(acdomIDs) > 0 {
		e.groups[acdomRK] = &deltaGroup{w: 1, n: len(acdomIDs), ids: acdomIDs}
	}
}
