package chase

import (
	"fmt"
	"math"

	"guardedrules/internal/core"
	"guardedrules/internal/database"
)

// RunWithHook chases d0 with th like Run, additionally invoking hook on
// every newly derived atom together with the rule and the (restricted,
// existential-free) substitution of the trigger that produced it. Fresh
// nulls appear in the atom's arguments at the rule head's existential
// positions, not in the substitution. The termination analyzer's
// critical-instance check observes null lineage through this seam.
func RunWithHook(th *core.Theory, d0 database.Store, opts Options, hook func(r *core.Rule, sub core.Subst, atom core.Atom)) (*Result, error) {
	return run(th, d0, opts, hook)
}

// RunCertified chases d0 to fixpoint with no default fact or round
// ceiling: it is the serving path for theories whose termination a
// static certificate guarantees (internal/termination). bound, when
// positive, is the certificate's derived fact bound and is asserted, not
// merely enforced — a run that fails to saturate within it returns a
// certification-violation error, because a sound certificate makes that
// impossible. bound 0 means the certificate proves finiteness without
// pricing it (JA or critical-instance certificates); the run is then
// genuinely unbounded in facts and rounds.
//
// The caller must pass the chase variant its certificate covers: WA and
// JA certificates cover Restricted only, critical-instance certificates
// cover both variants (see internal/termination).
//
// Cancellation still works: opts.Budget's context and timeout are
// honored, but its fact/round/step ceilings are ignored — a certified
// run is budget-free by construction.
func RunCertified(th *core.Theory, d0 database.Store, bound int, opts Options) (*Result, error) {
	opts.MaxDepth = 0
	opts.MaxRounds = math.MaxInt
	if bound > 0 {
		// +1 of headroom: the engine's pre-application cap check would
		// otherwise fire on the round's remaining (memoized) triggers when
		// the fixpoint lands exactly on the bound.
		opts.MaxFacts = bound + 1
	} else {
		opts.MaxFacts = math.MaxInt
	}
	if b := opts.Budget; b != nil {
		nb := *b
		nb.MaxFacts, nb.MaxRounds, nb.MaxSteps = 0, 0, 0
		opts.Budget = &nb
	}
	res, err := run(th, d0, opts, nil)
	if err != nil {
		// Only cancellation/deadline can surface here; the partial result
		// stays attached as with any governed run.
		return res, err
	}
	if !res.Saturated {
		return res, fmt.Errorf("chase: certified run did not saturate within the derived bound of %d facts (%v): termination certificate violated", bound, res.Reason)
	}
	return res, nil
}
