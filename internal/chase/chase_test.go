package chase

import (
	"testing"

	"guardedrules/internal/core"
	"guardedrules/internal/database"
	"guardedrules/internal/hom"
	"guardedrules/internal/parser"
)

const sigmaP = `
Publication(X) -> exists K1,K2. Keywords(X,K1,K2).
Keywords(X,K1,K2) -> hasTopic(X,K1).
hasTopic(X,Z), hasAuthor(X,U), hasAuthor(Y,U),
  hasTopic(Y,Z2), Scientific(Z2), citedIn(Y,X) -> Scientific(Z).
hasAuthor(X,Y), hasTopic(X,Z), Scientific(Z) -> Q(Y).
`

const exampleDB = `
Publication(p1). Publication(p2).
citedIn(p1,p2).
hasAuthor(p1,a1). hasAuthor(p2,a1). hasAuthor(p2,a2).
hasTopic(p1,t1). Scientific(t1).
`

func mustRun(t *testing.T, theory, facts string, opts Options) *Result {
	t.Helper()
	th := parser.MustParseTheory(theory)
	d := database.FromAtoms(parser.MustParseFacts(facts))
	res, err := Run(th, d, opts)
	if err != nil {
		t.Fatal(err)
	}
	return res
}

// Example 1/2 of the paper: the chase must witness Q(a1) and Q(a2).
func TestRunningExampleEntailments(t *testing.T) {
	for _, v := range []Variant{Oblivious, Restricted} {
		res := mustRun(t, sigmaP, exampleDB, Options{Variant: v})
		if !res.Saturated {
			t.Fatalf("variant %v: chase must terminate", v)
		}
		for _, c := range []string{"a1", "a2"} {
			if !res.Entails(core.NewAtom("Q", core.Const(c))) {
				t.Errorf("variant %v: Q(%s) must be entailed", v, c)
			}
		}
		if res.Entails(core.NewAtom("Q", core.Const("t1"))) {
			t.Errorf("variant %v: Q(t1) must not be entailed", v)
		}
		if res.Entails(core.NewAtom("Scientific", core.Const("t2"))) {
			t.Errorf("variant %v: unknown constant must not appear", v)
		}
	}
}

// Example 7 of the paper: guarded theory deriving D(c) through nulls.
func TestExampleSevenChase(t *testing.T) {
	res := mustRun(t, `
		A(X) -> exists Y. R(X,Y).
		R(X,Y) -> S(Y,Y).
		S(X,Y) -> exists Z. T(X,Y,Z).
		T(X,X,Y) -> B(X).
		C(X), R(X,Y), B(Y) -> D(X).
	`, `A(c). C(c).`, Options{})
	if !res.Saturated {
		t.Fatal("chase must terminate")
	}
	if !res.Entails(core.NewAtom("D", core.Const("c"))) {
		t.Error("D(c) must be entailed (Example 7)")
	}
}

func TestDatalogChaseIsFixpoint(t *testing.T) {
	res := mustRun(t, `
		E(X,Y) -> T(X,Y).
		T(X,Y), T(Y,Z) -> T(X,Z).
	`, `E(a,b). E(b,c). E(c,d).`, Options{})
	if !res.Saturated {
		t.Fatal("datalog chase must saturate")
	}
	want := [][2]string{{"a", "b"}, {"a", "c"}, {"a", "d"}, {"b", "c"}, {"b", "d"}, {"c", "d"}}
	for _, p := range want {
		if !res.Entails(core.NewAtom("T", core.Const(p[0]), core.Const(p[1]))) {
			t.Errorf("T(%s,%s) missing", p[0], p[1])
		}
	}
	if res.Entails(core.NewAtom("T", core.Const("b"), core.Const("a"))) {
		t.Error("T(b,a) must not be derived")
	}
}

func TestInfiniteChaseTruncation(t *testing.T) {
	res := mustRun(t, `
		Person(X) -> exists Y. hasParent(X,Y).
		hasParent(X,Y) -> Person(Y).
	`, `Person(adam).`, Options{MaxDepth: 3})
	if res.Saturated || !res.Truncated {
		t.Error("depth-bounded run of an infinite chase must be truncated")
	}
	// Depth 3 gives exactly 3 ancestors.
	n := 0
	for _, d := range res.Depth {
		if d > 3 {
			t.Errorf("null beyond depth bound: %d", d)
		}
		n++
	}
	if n != 3 {
		t.Errorf("expected 3 nulls at depth bound 3, got %d", n)
	}
}

func TestMaxFactsTruncation(t *testing.T) {
	res := mustRun(t, `
		Person(X) -> exists Y. hasParent(X,Y).
		hasParent(X,Y) -> Person(Y).
	`, `Person(adam).`, Options{MaxFacts: 30})
	if !res.Truncated {
		t.Error("fact budget must truncate")
	}
	if res.DB.Len() > 40 {
		t.Errorf("database grew far beyond budget: %d", res.DB.Len())
	}
}

// The restricted chase result must be homomorphically equivalent to the
// oblivious one on terminating instances.
func TestRestrictedEquivalentToOblivious(t *testing.T) {
	ob := mustRun(t, sigmaP, exampleDB, Options{Variant: Oblivious})
	re := mustRun(t, sigmaP, exampleDB, Options{Variant: Restricted})
	if re.DB.Len() > ob.DB.Len() {
		t.Error("restricted chase must not be larger than oblivious")
	}
	if !hom.Equivalent(ob.DB.UserFacts(), re.DB.UserFacts()) {
		t.Error("restricted and oblivious chase must be hom-equivalent")
	}
	ok, diff := database.SameGroundAtoms(ob.DB, re.DB)
	if !ok {
		t.Errorf("ground atoms must agree: %s", diff)
	}
}

func TestRestrictedAvoidsRedundantNulls(t *testing.T) {
	// R(x,y) already satisfies the head of A(x) → ∃y R(x,y).
	res := mustRun(t, `A(X) -> exists Y. R(X,Y).`, `A(a). R(a,b).`, Options{Variant: Restricted})
	if len(res.DB.Nulls()) != 0 {
		t.Errorf("restricted chase must not invent a null: %v", res.DB.Nulls())
	}
	ob := mustRun(t, `A(X) -> exists Y. R(X,Y).`, `A(a). R(a,b).`, Options{Variant: Oblivious})
	if len(ob.DB.Nulls()) != 1 {
		t.Errorf("oblivious chase must fire anyway: %v", ob.DB.Nulls())
	}
}

func TestConstantRuleFiresOnce(t *testing.T) {
	res := mustRun(t, `-> Scientific(logic). Scientific(X) -> Topic(X).`, `Dummy(d).`, Options{})
	if !res.Entails(core.NewAtom("Topic", core.Const("logic"))) {
		t.Error("constant rules must seed the chase")
	}
	if res.Steps != 2 {
		t.Errorf("expected 2 steps, got %d", res.Steps)
	}
}

func TestNegationAgainstEDB(t *testing.T) {
	res := mustRun(t, `Node(X), not Red(X) -> Green(X).`, `Node(a). Node(b). Red(a).`, Options{})
	if res.Entails(core.NewAtom("Green", core.Const("a"))) {
		t.Error("negation must block Green(a)")
	}
	if !res.Entails(core.NewAtom("Green", core.Const("b"))) {
		t.Error("Green(b) must be derived")
	}
}

func TestZeroAryHeads(t *testing.T) {
	res := mustRun(t, `A(X), B(X) -> Accept().`, `A(a). B(a).`, Options{})
	if !res.Entails(core.NewAtom("Accept")) {
		t.Error("zero-ary atom must be derivable")
	}
}

func TestChaseTreeRunningExample(t *testing.T) {
	th := parser.MustParseTheory(sigmaP)
	d := database.FromAtoms(parser.MustParseFacts(exampleDB))
	tree, res, err := RunTree(th, d, Options{Variant: Oblivious})
	if err != nil {
		t.Fatal(err)
	}
	if !res.Saturated {
		t.Fatal("chase must terminate")
	}
	if err := tree.VerifyProposition2(th, d); err != nil {
		t.Errorf("Proposition 2 violated: %v", err)
	}
	// Non-root nodes hold the Keywords atoms over nulls; each has at most
	// m = 3 terms.
	if len(tree.Nodes) < 3 {
		t.Errorf("expected ≥3 nodes (root + two Keywords bags), got %d", len(tree.Nodes))
	}
	// The tree atoms are exactly the chase atoms.
	if !hom.Equivalent(tree.AllAtoms(), res.DB.UserFacts()) {
		t.Error("tree atoms must cover the chase")
	}
	// Width bound from Section 4: max(|D terms|+k, m).
	dTerms := len(d.Terms())
	if w := tree.Width(); w+1 > dTerms && w+1 > th.MaxArity() {
		t.Errorf("width %d exceeds bound", w)
	}
}

func TestChaseTreeRejectsNonNormal(t *testing.T) {
	th := parser.MustParseTheory(`A(X) -> P(X), Q(X).`)
	if _, _, err := RunTree(th, database.New(), Options{}); err == nil {
		t.Error("multi-atom heads must be rejected")
	}
	th2 := parser.MustParseTheory(`R(X,Y), R(Y,Z) -> P(X,Z).`)
	if _, _, err := RunTree(th2, database.New(), Options{}); err == nil {
		t.Error("non-frontier-guarded rules must be rejected")
	}
}

func TestChaseTreeDeepNesting(t *testing.T) {
	// A linear chain of nulls: each node refers to the previous null only.
	th := parser.MustParseTheory(`
		A(X) -> exists Y. R(X,Y).
		R(X,Y) -> A(Y).
	`)
	d := database.FromAtoms(parser.MustParseFacts(`A(c).`))
	tree, res, err := RunTree(th, d, Options{MaxDepth: 4})
	if err != nil {
		t.Fatal(err)
	}
	if res.Saturated {
		t.Error("infinite chase must be truncated")
	}
	if err := tree.VerifyProposition2(th, d); err != nil {
		t.Errorf("Proposition 2 violated: %v", err)
	}
	if tree.Depth() < 3 {
		t.Errorf("expected a chain of depth ≥3, got %d", tree.Depth())
	}
}

func TestEntailsOnlyGroundMeaningful(t *testing.T) {
	res := mustRun(t, `A(X) -> exists Y. R(X,Y).`, `A(a).`, Options{})
	if res.Entails(core.NewAtom("R", core.Const("a"), core.Const("b"))) {
		t.Error("R(a,b) is not entailed; nulls are not constants")
	}
}

// Universality property (Section 2): there is a homomorphism from
// chase(Σ, D) into every solution of (Σ, D). Solutions are built by
// chasing supersets of D.
func TestChaseUniversality(t *testing.T) {
	th := parser.MustParseTheory(sigmaP)
	base := parser.MustParseFacts(exampleDB)
	d := database.FromAtoms(base)
	chaseRes, err := Run(th, d, Options{Variant: Restricted})
	if err != nil {
		t.Fatal(err)
	}
	extras := [][]core.Atom{
		parser.MustParseFacts(`Publication(p3). hasAuthor(p3,a9).`),
		parser.MustParseFacts(`Scientific(t9). hasTopic(p1,t9).`),
		parser.MustParseFacts(`Keywords(p1,k1,k2). Keywords(p2,k3,k4).`),
	}
	for i, extra := range extras {
		bigger := database.FromAtoms(append(append([]core.Atom(nil), base...), extra...))
		sol, err := Run(th, bigger, Options{Variant: Restricted})
		if err != nil {
			t.Fatal(err)
		}
		if !sol.Saturated {
			t.Fatalf("solution %d not saturated", i)
		}
		// sol.DB is a solution of (Σ, D): it contains D and satisfies Σ.
		if !hom.IntoAtoms(chaseRes.DB.UserFacts(), sol.DB.UserFacts()) {
			t.Errorf("no homomorphism from the chase into solution %d", i)
		}
	}
}

// The chase result itself satisfies the theory (it is a solution).
func TestChaseIsASolution(t *testing.T) {
	th := parser.MustParseTheory(sigmaP)
	d := database.FromAtoms(parser.MustParseFacts(exampleDB))
	res, err := Run(th, d, Options{Variant: Restricted})
	if err != nil {
		t.Fatal(err)
	}
	if !res.Saturated {
		t.Fatal("must saturate")
	}
	// Every rule: every body homomorphism extends to a head homomorphism.
	for _, r := range th.Rules {
		body := r.PositiveBody()
		ok := hom.ForEach(body, res.DB, nil, func(s core.Subst) bool {
			init := core.Subst{}
			ev := r.EVarSet()
			for v, tval := range s {
				if !ev.Has(v) {
					init[v] = tval
				}
			}
			return hom.Exists(r.Head, res.DB, init)
		})
		if !ok {
			t.Errorf("rule %s violated in the chase result", r.Label)
		}
	}
}

func TestMaxRoundsTruncation(t *testing.T) {
	res := mustRun(t, `
		E(X,Y) -> T(X,Y).
		T(X,Y), T(Y,Z) -> T(X,Z).
	`, `E(a,b). E(b,c). E(c,d). E(d,e).`, Options{MaxRounds: 1})
	if !res.Truncated {
		t.Error("round budget must truncate")
	}
}

// Parallel trigger collection must produce exactly the same database as
// the sequential run (triggers merge in rule order).
func TestParallelChaseDeterministic(t *testing.T) {
	th := parser.MustParseTheory(sigmaP)
	d := database.FromAtoms(parser.MustParseFacts(exampleDB))
	seq, err := Run(th, d, Options{Variant: Restricted, MaxDepth: 6})
	if err != nil {
		t.Fatal(err)
	}
	for _, workers := range []int{2, 4, 8} {
		par, err := Run(th, d, Options{Variant: Restricted, MaxDepth: 6, Workers: workers})
		if err != nil {
			t.Fatal(err)
		}
		if par.Steps != seq.Steps {
			t.Errorf("workers=%d: steps %d vs %d", workers, par.Steps, seq.Steps)
		}
		if par.DB.String() != seq.DB.String() {
			t.Errorf("workers=%d: databases differ", workers)
		}
	}
}

func TestParallelChaseBiggerWorkload(t *testing.T) {
	th := parser.MustParseTheory(`
		ACDom2(X) -> Obj(X).
		Obj(X) -> exists U. OMin(X,U).
		OMin(X,U), Obj(Y) -> exists V. Edge(X,Y,U,V).
		Edge(X,Y,U,V) -> Seen(Y,V).
	`)
	d := database.New()
	for i := 0; i < 5; i++ {
		d.Add(core.NewAtom("ACDom2", core.Const(string(rune('a'+i)))))
	}
	seq, err := Run(th, d, Options{Variant: Restricted, MaxDepth: 3})
	if err != nil {
		t.Fatal(err)
	}
	par, err := Run(th, d, Options{Variant: Restricted, MaxDepth: 3, Workers: 4})
	if err != nil {
		t.Fatal(err)
	}
	if seq.DB.Len() != par.DB.Len() || seq.Steps != par.Steps {
		t.Errorf("parallel diverged: %d/%d facts, %d/%d steps",
			seq.DB.Len(), par.DB.Len(), seq.Steps, par.Steps)
	}
}
