package chase

import (
	"strings"
	"testing"

	"guardedrules/internal/core"
	"guardedrules/internal/database"
	"guardedrules/internal/parser"
)

func TestProvenanceExampleSeven(t *testing.T) {
	th := parser.MustParseTheory(`
		A(X) -> exists Y. R(X,Y).
		R(X,Y) -> S(Y,Y).
		S(X,Y) -> exists Z. T(X,Y,Z).
		T(X,X,Y) -> B(X).
		C(X), R(X,Y), B(Y) -> D(X).
	`)
	d := database.FromAtoms(parser.MustParseFacts(`A(c). C(c).`))
	res, prov, err := RunWithProvenance(th, d, Options{Variant: Oblivious})
	if err != nil {
		t.Fatal(err)
	}
	target := core.NewAtom("D", core.Const("c"))
	if !res.Entails(target) {
		t.Fatal("D(c) must be derived")
	}
	tree := prov.Explain(target, d)
	if tree == nil {
		t.Fatal("no proof tree for D(c)")
	}
	// The derivation of Example 7 passes through all five rules: the tree
	// must contain the null-borne atoms R(c,n), S(n,n), T(n,n,m), B(n).
	rendered := tree.String()
	for _, rel := range []string{"R(", "S(", "T(", "B(", "D("} {
		if !strings.Contains(rendered, rel) {
			t.Errorf("proof tree misses %s...:\n%s", rel, rendered)
		}
	}
	if tree.Depth() < 4 {
		t.Errorf("expected a deep proof (≥4), got %d:\n%s", tree.Depth(), rendered)
	}
	// Leaves are the input facts.
	if !strings.Contains(rendered, "A(c)  [input]") || !strings.Contains(rendered, "C(c)  [input]") {
		t.Errorf("input leaves missing:\n%s", rendered)
	}
}

func TestProvenanceInputFactsHaveNoEntry(t *testing.T) {
	th := parser.MustParseTheory(`A(X) -> B(X).`)
	d := database.FromAtoms(parser.MustParseFacts(`A(a).`))
	_, prov, err := RunWithProvenance(th, d, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if _, ok := prov[core.NewAtom("A", core.Const("a")).String()]; ok {
		t.Error("input facts must have no derivation")
	}
	node := prov.Explain(core.NewAtom("A", core.Const("a")), d)
	if node == nil || node.Rule != "" {
		t.Errorf("input fact must explain as a leaf: %v", node)
	}
}

func TestProvenanceUnknownAtom(t *testing.T) {
	th := parser.MustParseTheory(`A(X) -> B(X).`)
	d := database.FromAtoms(parser.MustParseFacts(`A(a).`))
	_, prov, err := RunWithProvenance(th, d, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if prov.Explain(core.NewAtom("Z", core.Const("zz")), d) != nil {
		t.Error("unknown atoms must not explain")
	}
}

func TestProvenanceFirstDerivationKept(t *testing.T) {
	// B(a) is derivable via two rules; provenance keeps the first.
	th := parser.MustParseTheory(`
		A(X) -> B(X).
		C(X) -> B(X).
	`)
	d := database.FromAtoms(parser.MustParseFacts(`A(a). C(a).`))
	_, prov, err := RunWithProvenance(th, d, Options{})
	if err != nil {
		t.Fatal(err)
	}
	der, ok := prov[core.NewAtom("B", core.Const("a")).String()]
	if !ok || len(der.Premises) != 1 {
		t.Fatalf("derivation missing: %+v", der)
	}
}

func TestProofNodeMetrics(t *testing.T) {
	th := parser.MustParseTheory(`
		E(X,Y) -> T(X,Y).
		T(X,Y), E(Y,Z) -> T(X,Z).
	`)
	d := database.FromAtoms(parser.MustParseFacts(`E(a,b). E(b,c). E(c,d).`))
	_, prov, err := RunWithProvenance(th, d, Options{})
	if err != nil {
		t.Fatal(err)
	}
	tree := prov.Explain(core.NewAtom("T", core.Const("a"), core.Const("d")), d)
	if tree == nil {
		t.Fatal("T(a,d) must be derivable")
	}
	if tree.Depth() != 3 {
		t.Errorf("T(a,d) proof depth: %d (want 3: T(a,b)→T(a,c)→T(a,d))", tree.Depth())
	}
	if tree.Size() < 5 {
		t.Errorf("proof size too small: %d", tree.Size())
	}
}
