package chase

import (
	"errors"
	"testing"

	"guardedrules/internal/budget"
	"guardedrules/internal/database"
	"guardedrules/internal/par"
	"guardedrules/internal/parser"
)

// A panic injected at a chase checkpoint is contained at the engine
// boundary: Run returns a typed *par.PanicError instead of crashing the
// caller, and a clean re-run still saturates.
func TestChasePanicContained(t *testing.T) {
	th := parser.MustParseTheory(`
		A(X) -> exists Y. R(X,Y).
		R(X,Y) -> B(Y).
		E(X,Y) -> T(X,Y).
		T(X,Y), T(Y,Z) -> T(X,Z).
	`)
	facts := parser.MustParseFacts("A(a). E(a,b). E(b,c). E(c,d).")

	sawPanic := false
	for _, n := range []int{1, 2, 3, 5, 8} {
		res, err := Run(th, database.FromAtoms(facts), Options{Workers: 4, Budget: budget.PanicAt(n)})
		if err == nil {
			continue // injection point beyond the run's checkpoints
		}
		sawPanic = true
		var pe *par.PanicError
		if !errors.As(err, &pe) {
			t.Fatalf("n=%d: err = %v, want contained *par.PanicError", n, err)
		}
		if _, ok := pe.Value.(budget.InjectedPanic); !ok {
			t.Fatalf("n=%d: recovered value %v, want budget.InjectedPanic", n, pe.Value)
		}
		if res != nil {
			t.Fatalf("n=%d: panicked chase must not return a result (the working db may be half-applied)", n)
		}
	}
	if !sawPanic {
		t.Fatal("sweep never triggered an injected panic")
	}

	res, err := Run(th, database.FromAtoms(facts), Options{Workers: 4})
	if err != nil || !res.Saturated {
		t.Fatalf("clean re-run after panic sweep: res=%+v err=%v", res, err)
	}
}
