package chase

import (
	"fmt"
	"strings"

	"guardedrules/internal/budget"
	"guardedrules/internal/core"
	"guardedrules/internal/database"
)

// Derivation records why the chase added an atom: the rule that fired and
// the instantiated premises of its body.
type Derivation struct {
	RuleLabel string
	Premises  []core.Atom
}

// Provenance maps derived atoms (by their rendering) to their first
// derivation. Input facts have no entry.
type Provenance map[string]Derivation

// RunWithProvenance chases like Run while recording, for every derived
// atom, the rule and premises that produced it first.
func RunWithProvenance(th *core.Theory, d0 database.Store, opts Options) (*Result, Provenance, error) {
	return runWithProvenance(run, th, d0, opts)
}

func runWithProvenance(rf runFn, th *core.Theory, d0 database.Store, opts Options) (*Result, Provenance, error) {
	prov := make(Provenance)
	res, err := rf(th, d0, opts, func(r *core.Rule, sub core.Subst, atom core.Atom) {
		key := atom.String()
		if _, ok := prov[key]; ok {
			return
		}
		var premises []core.Atom
		for _, l := range r.Body {
			if !l.Negated {
				premises = append(premises, sub.ApplyAtom(l.Atom))
			}
		}
		prov[key] = Derivation{RuleLabel: r.Label, Premises: premises}
	})
	if err != nil {
		if budget.IsBudget(err) && res != nil {
			// Provenance of the partial run is complete for every atom it
			// derived; return it alongside the typed error.
			return res, prov, err
		}
		return nil, nil, err
	}
	return res, prov, nil
}

// ProofNode is a node of an explanation tree.
type ProofNode struct {
	Atom     core.Atom
	Rule     string // empty for input facts
	Children []*ProofNode
}

// Explain builds the proof tree of a derived atom: derived premises
// recurse, input facts become leaves. It returns nil when the atom was
// neither derived nor present in the input database.
func (p Provenance) Explain(atom core.Atom, input database.Store) *ProofNode {
	return p.explain(atom, input, make(map[string]bool))
}

func (p Provenance) explain(atom core.Atom, input database.Store, onPath map[string]bool) *ProofNode {
	key := atom.String()
	der, derived := p[key]
	if !derived {
		if input.Has(atom) {
			return &ProofNode{Atom: atom}
		}
		return nil
	}
	if onPath[key] {
		// The first derivation of an atom cannot depend on the atom itself
		// (the chase is inflationary), but guard against malformed input.
		return &ProofNode{Atom: atom, Rule: der.RuleLabel}
	}
	onPath[key] = true
	defer delete(onPath, key)
	node := &ProofNode{Atom: atom, Rule: der.RuleLabel}
	for _, prem := range der.Premises {
		child := p.explain(prem, input, onPath)
		if child == nil {
			child = &ProofNode{Atom: prem}
		}
		node.Children = append(node.Children, child)
	}
	return node
}

// String renders the proof tree, one atom per line, indented by depth.
func (n *ProofNode) String() string {
	var sb strings.Builder
	var rec func(node *ProofNode, depth int)
	rec = func(node *ProofNode, depth int) {
		sb.WriteString(strings.Repeat("  ", depth))
		switch {
		case node.Rule == "" && len(node.Children) == 0:
			fmt.Fprintf(&sb, "%v  [input]\n", node.Atom)
		case node.Rule == "":
			fmt.Fprintf(&sb, "%v  [derived]\n", node.Atom)
		default:
			fmt.Fprintf(&sb, "%v  [rule %s]\n", node.Atom, node.Rule)
		}
		for _, c := range node.Children {
			rec(c, depth+1)
		}
	}
	rec(n, 0)
	return sb.String()
}

// Size counts the nodes of the proof tree.
func (n *ProofNode) Size() int {
	s := 1
	for _, c := range n.Children {
		s += c.Size()
	}
	return s
}

// Depth returns the height of the proof tree (a single node has depth 0).
func (n *ProofNode) Depth() int {
	d := 0
	for _, c := range n.Children {
		if cd := c.Depth() + 1; cd > d {
			d = cd
		}
	}
	return d
}
