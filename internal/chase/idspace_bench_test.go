package chase

import (
	"fmt"
	"runtime"
	"testing"

	"guardedrules/internal/gen"
	"guardedrules/internal/parser"
)

// Engine comparison on the A2 workload (the running example over a
// citation graph): the id-space engine vs the retained term-space
// reference, sequential.
func BenchmarkEngineA2(b *testing.B) {
	th := parser.MustParseTheory(sigmaP)
	d := gen.CitationGraph(8)
	opts := Options{Variant: Oblivious, MaxDepth: 6, MaxFacts: 2_000_000}
	b.Run("legacy", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if _, err := legacyRun(th, d, opts, nil); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("idspace", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if _, err := run(th, d, opts, nil); err != nil {
				b.Fatal(err)
			}
		}
	})
}

// Worker scaling of the re-sharded trigger collection on a wide
// restricted chase (many triggers per round).
func BenchmarkChaseParallel(b *testing.B) {
	th := parser.MustParseTheory(sigmaP)
	d := gen.CitationGraph(48)
	nW := runtime.GOMAXPROCS(0)
	for _, w := range []int{1, 2, 4, nW} {
		b.Run(fmt.Sprintf("workers=%d", w), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				opts := Options{Variant: Restricted, MaxDepth: 4, MaxFacts: 2_000_000, Workers: w}
				if _, err := run(th, d, opts, nil); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}
