package chase

// triggerSet is a hash set of triggers keyed by (rule id, packed id
// tuple). Entries live in a shared uint32 arena — [rule, width,
// ids...] — and the open-addressing table stores 1-based arena offsets,
// so membership tests never allocate and never serialize terms. Because
// interned ids identify terms bijectively, two distinct triggers always
// have distinct keys (the property the old name-serialized keys lacked).
type triggerSet struct {
	arena []uint32
	table []int32 // 1-based offsets into arena; 0 = empty
	n     int
}

func newTriggerSet() *triggerSet {
	return &triggerSet{table: make([]int32, 64)}
}

func hashTrigger(rule uint32, ids []uint32) uint64 {
	h := uint64(14695981039346656037) // FNV-1a
	mix := func(v uint32) {
		for s := 0; s < 32; s += 8 {
			h ^= uint64(byte(v >> s))
			h *= 1099511628211
		}
	}
	mix(rule)
	for _, id := range ids {
		mix(id)
	}
	return h
}

func (ts *triggerSet) equal(off int32, rule uint32, ids []uint32) bool {
	e := ts.arena[off-1:]
	if e[0] != rule || int(e[1]) != len(ids) {
		return false
	}
	for i, id := range ids {
		if e[2+i] != id {
			return false
		}
	}
	return true
}

// has reports membership.
func (ts *triggerSet) has(rule uint32, ids []uint32) bool {
	mask := uint64(len(ts.table) - 1)
	for i := hashTrigger(rule, ids) & mask; ; i = (i + 1) & mask {
		off := ts.table[i]
		if off == 0 {
			return false
		}
		if ts.equal(off, rule, ids) {
			return true
		}
	}
}

// add inserts the trigger, reporting true when it was absent.
func (ts *triggerSet) add(rule uint32, ids []uint32) bool {
	if ts.n*4 >= len(ts.table)*3 {
		ts.grow()
	}
	mask := uint64(len(ts.table) - 1)
	i := hashTrigger(rule, ids) & mask
	for {
		off := ts.table[i]
		if off == 0 {
			break
		}
		if ts.equal(off, rule, ids) {
			return false
		}
		i = (i + 1) & mask
	}
	off := int32(len(ts.arena) + 1)
	ts.arena = append(ts.arena, rule, uint32(len(ids)))
	ts.arena = append(ts.arena, ids...)
	ts.table[i] = off
	ts.n++
	return true
}

func (ts *triggerSet) grow() {
	old := ts.table
	ts.table = make([]int32, len(old)*2)
	mask := uint64(len(ts.table) - 1)
	for _, off := range old {
		if off == 0 {
			continue
		}
		e := ts.arena[off-1:]
		w := int(e[1])
		i := hashTrigger(e[0], e[2:2+w]) & mask
		for ts.table[i] != 0 {
			i = (i + 1) & mask
		}
		ts.table[i] = off
	}
}
