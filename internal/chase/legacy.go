package chase

import (
	"fmt"
	"strings"
	"sync"

	"guardedrules/internal/budget"
	"guardedrules/internal/core"
	"guardedrules/internal/database"
	"guardedrules/internal/hom"
)

// This file keeps the previous term-space chase engine as a reference
// implementation for the differential suite (idspace_diff_test.go): the
// id-space engine must produce byte-identical results on databases with
// benign constant names. The engine is retained verbatim except for two
// bug fixes applied to both engines — the Rounds off-by-one and the
// MaxFacts overshoot — and the hook signature shared with RunTree /
// RunWithProvenance. Its name-serialized trigger key still carries the
// collision bug (see legacyTriggerKey); triggerkey_regression_test.go
// demonstrates the resulting under-derivation.

// legacyTrigger is a rule paired with a body homomorphism.
type legacyTrigger struct {
	rule *core.Rule
	sub  core.Subst
}

// legacyEngine carries the mutable state of a legacy run.
type legacyEngine struct {
	opts       Options
	db         *database.Database
	depth      map[core.Term]int
	applied    map[string]bool // oblivious-mode trigger memo
	nulls      int
	steps      int
	trunc      bool
	overBudget bool
	reason     error // budget sentinel recorded at the first truncation
	maxFacts   int
	// Precomputed per rule: a numeric id and the sorted universal
	// variables, so trigger keys are built without sorting or fmt.
	ruleID   map[*core.Rule]int
	ruleVars map[*core.Rule][]core.Term
	hook     hookFn
}

// legacyRun is the term-space reference chase; same contract as Run.
func legacyRun(th *core.Theory, d0 database.Store, opts Options, hook hookFn) (*Result, error) {
	if err := th.CheckSafe(); err != nil {
		return nil, fmt.Errorf("chase: %w", err)
	}
	e := &legacyEngine{
		opts:     opts,
		db:       d0.Clone(),
		depth:    make(map[core.Term]int),
		applied:  make(map[string]bool),
		hook:     hook,
		ruleID:   make(map[*core.Rule]int, len(th.Rules)),
		ruleVars: make(map[*core.Rule][]core.Term, len(th.Rules)),
	}
	for i, r := range th.Rules {
		e.ruleID[r] = i
		keep := r.UVars()
		for _, l := range r.Body {
			keep.AddAll(l.Atom.AnnVars())
		}
		e.ruleVars[r] = keep.Sorted()
	}
	bud := opts.Budget
	tk := budget.Start(bud)
	defer tk.Stop()
	e.maxFacts = budget.Cap(bud, func(b *budget.T) int { return b.MaxFacts }, opts.maxFacts())
	maxRounds := budget.Cap(bud, func(b *budget.T) int { return b.MaxRounds }, opts.maxRounds())
	maxSteps := 0
	budFacts, budRounds := false, false
	if bud != nil {
		maxSteps = bud.MaxSteps
		budFacts = bud.MaxFacts > 0
		budRounds = bud.MaxRounds > 0
	}

	res := &Result{Depth: e.depth}
	finish := func(err error) (*Result, error) {
		res.DB = e.db
		res.Steps = e.steps
		res.Truncated = e.trunc
		res.Saturated = !e.trunc
		res.Reason = e.reason
		res.Usage = tk.Usage()
		return res, err
	}
	delta := e.db.UserFacts()
	for first := true; ; first = false {
		tk.SetRounds(res.Rounds)
		if err := tk.Check(); err != nil {
			e.truncate(reasonOf(err))
			return finish(err)
		}
		if res.Rounds >= maxRounds {
			e.truncate(budget.ErrRoundLimit)
			if budRounds {
				return finish(tk.Exhausted(budget.ErrRoundLimit))
			}
			break
		}
		trs := e.collect(th, delta, first)
		if len(trs) == 0 {
			break
		}
		var newFacts []core.Atom
		counted := false
		for _, tr := range trs {
			if err := tk.Check(); err != nil {
				e.truncate(reasonOf(err))
				return finish(err)
			}
			if e.db.Len() >= e.maxFacts {
				e.truncate(budget.ErrFactLimit)
				if budFacts {
					return finish(tk.Exhausted(budget.ErrFactLimit))
				}
				e.overBudget = true
				break
			}
			if maxSteps > 0 && e.steps >= maxSteps {
				e.truncate(budget.ErrStepLimit)
				return finish(tk.Exhausted(budget.ErrStepLimit))
			}
			added, fired, err := e.apply(tr)
			if err != nil {
				return finish(fmt.Errorf("chase: %w", err))
			}
			tk.AddFacts(len(added))
			tk.AddSteps(1)
			if fired && !counted {
				counted = true
				res.Rounds++
			}
			newFacts = append(newFacts, added...)
			if e.overBudget {
				if budFacts {
					return finish(tk.Exhausted(budget.ErrFactLimit))
				}
				break
			}
		}
		if e.overBudget || len(newFacts) == 0 {
			break
		}
		delta = newFacts
	}
	return finish(nil)
}

func (e *legacyEngine) truncate(reason error) {
	e.trunc = true
	if e.reason == nil {
		e.reason = reason
	}
}

// collect gathers the applicable triggers for this round: candidates are
// found per rule (in parallel when Options.Workers > 1), then merged in
// rule order with global deduplication and admissibility checks.
func (e *legacyEngine) collect(th *core.Theory, delta []core.Atom, first bool) []legacyTrigger {
	deltaDB := database.FromAtoms(delta)
	perRule := make([][]legacyTrigger, len(th.Rules))
	workers := e.opts.workers()
	if workers > 1 && len(th.Rules) > 1 {
		sem := make(chan struct{}, workers)
		var wg sync.WaitGroup
		for i, r := range th.Rules {
			wg.Add(1)
			sem <- struct{}{}
			go func(i int, r *core.Rule) {
				defer wg.Done()
				defer func() { <-sem }()
				perRule[i] = e.collectRule(r, deltaDB, first)
			}(i, r)
		}
		wg.Wait()
	} else {
		for i, r := range th.Rules {
			perRule[i] = e.collectRule(r, deltaDB, first)
		}
	}
	var out []legacyTrigger
	seen := make(map[string]bool)
	for _, trs := range perRule {
		for _, tr := range trs {
			k := e.triggerKey(tr)
			if seen[k] {
				continue
			}
			seen[k] = true
			if e.admissible(tr, k) {
				out = append(out, tr)
			}
		}
	}
	return out
}

func (e *legacyEngine) collectRule(r *core.Rule, deltaDB *database.Database, first bool) []legacyTrigger {
	var out []legacyTrigger
	body := r.PositiveBody()
	emit := func(s core.Subst) bool {
		for _, l := range r.Body {
			if l.Negated && e.db.Has(s.ApplyAtom(l.Atom)) {
				return true
			}
		}
		out = append(out, legacyTrigger{rule: r, sub: restrictToRule(s, r, e.ruleVars[r])})
		return true
	}
	if first || len(body) == 0 {
		if len(body) == 0 {
			if first {
				emit(core.Subst{})
			}
			return out
		}
		hom.ForEach(body, e.db, nil, emit)
		return out
	}
	for i, b := range body {
		rest := make([]core.Atom, 0, len(body)-1)
		rest = append(rest, body[:i]...)
		rest = append(rest, body[i+1:]...)
		hom.ForEach([]core.Atom{b}, deltaDB, nil, func(s core.Subst) bool {
			hom.ForEach(rest, e.db, s, emit)
			return true
		})
	}
	return out
}

func (e *legacyEngine) admissible(tr legacyTrigger, key string) bool {
	if e.applied[key] {
		return false
	}
	if e.opts.Variant == Restricted && e.headSatisfied(tr) {
		return false
	}
	if len(tr.rule.Exist) > 0 && e.opts.MaxDepth > 0 {
		d := 0
		for _, t := range tr.sub {
			if dd, ok := e.depth[t]; ok && dd > d {
				d = dd
			}
		}
		if d+1 > e.opts.MaxDepth {
			e.truncate(budget.ErrDepthLimit)
			return false
		}
	}
	return true
}

func (e *legacyEngine) headSatisfied(tr legacyTrigger) bool {
	init := core.Subst{}
	ev := tr.rule.EVarSet()
	for v, t := range tr.sub {
		if !ev.Has(v) {
			init[v] = t
		}
	}
	return hom.Exists(tr.rule.Head, e.db, init)
}

func (e *legacyEngine) apply(tr legacyTrigger) ([]core.Atom, bool, error) {
	key := e.triggerKey(tr)
	if e.applied[key] {
		return nil, false, nil
	}
	if e.opts.Variant == Restricted && e.headSatisfied(tr) {
		e.applied[key] = true
		return nil, false, nil
	}
	e.applied[key] = true
	s := tr.sub.Clone()
	base := 0
	for _, t := range s {
		if d, ok := e.depth[t]; ok && d > base {
			base = d
		}
	}
	for _, v := range tr.rule.Exist {
		e.nulls++
		n := core.NewNull(fmt.Sprintf("n%d", e.nulls))
		e.depth[n] = base + 1
		s[v] = n
	}
	e.steps++
	var added []core.Atom
	note := func(f core.Atom) { added = append(added, f) }
	for _, h := range tr.rule.Head {
		a := s.ApplyAtom(h)
		if e.db.Len()+e.db.AddCost(a) > e.maxFacts {
			e.truncate(budget.ErrFactLimit)
			e.overBudget = true
			break
		}
		isNew, err := e.db.AddNotify(a, note)
		if err != nil {
			return added, true, fmt.Errorf("rule %s: %w", tr.rule.Label, err)
		}
		if isNew && e.hook != nil {
			e.hook(tr.rule, tr.sub, a)
		}
	}
	return added, true, nil
}

// restrictToRule keeps only the bindings of the rule's own variables
// (hom search may receive init substitutions carrying more).
func restrictToRule(s core.Subst, r *core.Rule, vars []core.Term) core.Subst {
	out := make(core.Subst, len(vars))
	for _, v := range vars {
		if t, ok := s[v]; ok {
			out[v] = t
		}
	}
	return out
}

// legacyTriggerKey (kept under its historical method name) identifies a
// (rule, homomorphism) pair by serializing variable images as
// kind-byte + name + NUL. The serialization is ambiguous: a NUL byte
// followed by a kind character inside a constant name makes two distinct
// homomorphisms produce the same key, so one of the two triggers is
// silently dropped — the bug the id-space trigger set fixes.
func (e *legacyEngine) triggerKey(tr legacyTrigger) string {
	var sb strings.Builder
	sb.WriteByte(byte(e.ruleID[tr.rule]))
	sb.WriteByte(byte(e.ruleID[tr.rule] >> 8))
	sb.WriteByte(byte(e.ruleID[tr.rule] >> 16))
	for _, v := range e.ruleVars[tr.rule] {
		t := tr.sub[v]
		sb.WriteByte(byte('0' + t.Kind))
		sb.WriteString(t.Name)
		sb.WriteByte(0)
	}
	return sb.String()
}
