package chase

import (
	"testing"

	"guardedrules/internal/core"
	"guardedrules/internal/database"
)

// Regression test for the trigger-key serialization collision (same class
// as PR 1's R("a,0b") == R(a,b) fact-store bug): the old triggerKey
// concatenated, per variable, byte('0'+Kind) + Name + NUL. Two distinct
// substitutions whose term names embed the separator and a kind byte can
// therefore serialize identically, so the second trigger was deduplicated
// away and the oblivious chase silently under-derived.
//
// Collision pair (rule P(X,Y) -> Q(X,Y), both terms constants, kind byte
// '0'):
//
//	{X = "a\x000b", Y = "c"}  ->  "0" "a\x000b" NUL "0" "c" NUL
//	{X = "a", Y = "b\x000c"}  ->  "0" "a" NUL "0" "b\x000c" NUL
//
// both of which are the byte string "0a\x000b\x000c\x00". The id-space
// trigger keys (ruleID + interned id tuple) cannot collide: distinct terms
// have distinct ids.
func TestTriggerKeyCollisionRegression(t *testing.T) {
	x, y := core.Var("X"), core.Var("Y")
	r := &core.Rule{
		Body:  []core.Literal{{Atom: core.NewAtom("P", x, y)}},
		Head:  []core.Atom{core.NewAtom("Q", x, y)},
		Label: "collide",
	}
	th := &core.Theory{Rules: []*core.Rule{r}}

	// byte('0'+core.Constant) == '0' is the kind byte the old key wrote
	// for constants; embed it next to the NUL separator.
	kind := string(byte('0' + core.Constant))
	a0b := core.Const("a\x00" + kind + "b")
	c := core.Const("c")
	a := core.Const("a")
	b0c := core.Const("b\x00" + kind + "c")

	d := database.New()
	d.Add(core.NewAtom("P", a0b, c))
	d.Add(core.NewAtom("P", a, b0c))

	res, err := Run(th, d, Options{Variant: Oblivious})
	if err != nil {
		t.Fatal(err)
	}
	if !res.Saturated {
		t.Fatal("chase must saturate")
	}
	for _, q := range []core.Atom{
		core.NewAtom("Q", a0b, c),
		core.NewAtom("Q", a, b0c),
	} {
		if !res.Entails(q) {
			t.Errorf("missing %v: distinct triggers collided in the trigger key", q)
		}
	}
	if res.Steps != 2 {
		t.Errorf("expected 2 trigger applications, got %d", res.Steps)
	}
}
