package chase

import (
	"context"
	"errors"
	"testing"
	"time"

	"guardedrules/internal/budget"
	"guardedrules/internal/database"
	"guardedrules/internal/parser"
)

// A non-terminating theory: every element spawns a successor, forever.
const infiniteTheory = `N(X) -> exists Y. E(X,Y). E(X,Y) -> N(Y).`

func TestBudgetFactLimitReturnsPartial(t *testing.T) {
	th := parser.MustParseTheory(infiniteTheory)
	d := database.FromAtoms(parser.MustParseFacts(`N(a).`))
	res, err := Run(th, d, Options{Budget: &budget.T{MaxFacts: 30}})
	if !errors.Is(err, budget.ErrFactLimit) {
		t.Fatalf("err = %v, want ErrFactLimit", err)
	}
	if res == nil || res.DB == nil {
		t.Fatal("budget exhaustion must return the partial result")
	}
	if !res.Truncated || !errors.Is(res.Reason, budget.ErrFactLimit) {
		t.Fatalf("Truncated=%v Reason=%v, want truncated ErrFactLimit", res.Truncated, res.Reason)
	}
	if res.DB.Len() < 30 {
		t.Fatalf("partial db has %d facts, want >= 30", res.DB.Len())
	}
	var be *budget.Error
	if !errors.As(err, &be) || be.Usage.Facts == 0 {
		t.Fatalf("error must carry a usage snapshot, got %v", err)
	}
}

func TestBudgetRoundAndStepLimits(t *testing.T) {
	th := parser.MustParseTheory(infiniteTheory)
	d := database.FromAtoms(parser.MustParseFacts(`N(a).`))
	if _, err := Run(th, d, Options{Budget: &budget.T{MaxRounds: 3}}); !errors.Is(err, budget.ErrRoundLimit) {
		t.Fatalf("MaxRounds err = %v, want ErrRoundLimit", err)
	}
	if _, err := Run(th, d, Options{Budget: &budget.T{MaxSteps: 4}}); !errors.Is(err, budget.ErrStepLimit) {
		t.Fatalf("MaxSteps err = %v, want ErrStepLimit", err)
	}
}

// Legacy Max* options must keep their soft-truncation contract: no error,
// Truncated set, and now a typed Reason recorded.
func TestLegacyTruncationStaysSoft(t *testing.T) {
	th := parser.MustParseTheory(infiniteTheory)
	d := database.FromAtoms(parser.MustParseFacts(`N(a).`))
	res, err := Run(th, d, Options{MaxFacts: 30})
	if err != nil {
		t.Fatalf("legacy MaxFacts must not error, got %v", err)
	}
	if !res.Truncated || !errors.Is(res.Reason, budget.ErrFactLimit) {
		t.Fatalf("Truncated=%v Reason=%v, want soft ErrFactLimit", res.Truncated, res.Reason)
	}
	res, err = Run(th, d, Options{MaxDepth: 2})
	if err != nil {
		t.Fatalf("MaxDepth must not error, got %v", err)
	}
	if !res.Truncated || !errors.Is(res.Reason, budget.ErrDepthLimit) {
		t.Fatalf("Truncated=%v Reason=%v, want soft ErrDepthLimit", res.Truncated, res.Reason)
	}
}

func TestContextCancelStopsRun(t *testing.T) {
	th := parser.MustParseTheory(infiniteTheory)
	d := database.FromAtoms(parser.MustParseFacts(`N(a).`))
	ctx, cancel := context.WithCancel(context.Background())
	cancel() // cancel before the run: the first checkpoint must observe it
	res, err := Run(th, d, Options{Budget: &budget.T{Ctx: ctx}})
	if !errors.Is(err, budget.ErrCanceled) || !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want ErrCanceled matching context.Canceled", err)
	}
	if res == nil || res.DB == nil {
		t.Fatal("canceled run must still return the partial result")
	}
}

func TestDeadlineStopsRun(t *testing.T) {
	th := parser.MustParseTheory(infiniteTheory)
	d := database.FromAtoms(parser.MustParseFacts(`N(a).`))
	res, err := Run(th, d, Options{Budget: &budget.T{Timeout: time.Nanosecond}})
	if !errors.Is(err, budget.ErrDeadline) {
		t.Fatalf("err = %v, want ErrDeadline", err)
	}
	if res == nil || !errors.Is(res.Reason, budget.ErrDeadline) {
		t.Fatalf("result must record the deadline reason, got %+v", res)
	}
}

// Fault injection: cancel the chase at every checkpoint in turn. Each
// canceled run must return a well-formed partial result and a typed
// cancellation error; once n exceeds the total checkpoint count the run
// completes and must be byte-identical to an ungoverned run.
func TestFailAtEveryCheckpoint(t *testing.T) {
	th := parser.MustParseTheory(sigmaP)
	facts := parser.MustParseFacts(exampleDB)
	full, err := Run(th, database.FromAtoms(facts), Options{})
	if err != nil || !full.Saturated {
		t.Fatalf("reference run failed: %v", err)
	}
	for n := 1; ; n++ {
		if n > 10_000 {
			t.Fatal("fault injection never ran to completion")
		}
		res, err := Run(th, database.FromAtoms(facts), Options{Budget: budget.FailAt(n)})
		if err == nil {
			if !res.Saturated {
				t.Fatalf("n=%d: uncanceled run must saturate", n)
			}
			if res.DB.Len() != full.DB.Len() {
				t.Fatalf("n=%d: completed run has %d facts, want %d", n, res.DB.Len(), full.DB.Len())
			}
			break
		}
		if !errors.Is(err, budget.ErrCanceled) {
			t.Fatalf("n=%d: err = %v, want ErrCanceled", n, err)
		}
		if res == nil || res.DB == nil || !res.Truncated {
			t.Fatalf("n=%d: canceled run must return a truncated partial result", n)
		}
		// Soundness of the partial: every fact is in the full chase too
		// (modulo null renaming; ground facts suffice here).
		for _, a := range res.DB.UserFacts() {
			if a.IsGround() && !full.DB.Has(a) {
				t.Fatalf("n=%d: partial contains ground fact %v absent from full run", n, a)
			}
		}
	}
}

// The budget threads through RunTree and RunWithProvenance as well.
func TestBudgetThroughTreeAndProvenance(t *testing.T) {
	th := parser.MustParseTheory(`A(X) -> exists Y. R(X,Y). R(X,Y) -> A(Y).`)
	d := database.FromAtoms(parser.MustParseFacts(`A(c).`))
	if _, _, err := RunTree(th, d, Options{Budget: &budget.T{MaxRounds: 2}}); !errors.Is(err, budget.ErrRoundLimit) {
		t.Fatalf("RunTree err = %v, want ErrRoundLimit", err)
	}
	if _, _, err := RunWithProvenance(th, d, Options{Budget: &budget.T{MaxRounds: 2}}); !errors.Is(err, budget.ErrRoundLimit) {
		t.Fatalf("RunWithProvenance err = %v, want ErrRoundLimit", err)
	}
}

// A truncated chase is a sound under-approximation: the answers it
// supports are a subset of the saturated run's.
func TestTruncatedAnswersAreSubset(t *testing.T) {
	th := parser.MustParseTheory(sigmaP)
	facts := parser.MustParseFacts(exampleDB)
	full, err := Run(th, database.FromAtoms(facts), Options{})
	if err != nil {
		t.Fatal(err)
	}
	part, err := Run(th, database.FromAtoms(facts), Options{MaxFacts: full.DB.Len() - 2})
	if err != nil {
		t.Fatal(err)
	}
	if !part.Truncated {
		t.Skip("truncation budget did not bind")
	}
	for _, a := range part.DB.UserFacts() {
		if a.IsGround() && !full.DB.Has(a) {
			t.Fatalf("truncated run derived %v, absent from the full chase", a)
		}
	}
}
