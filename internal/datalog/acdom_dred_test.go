package datalog

import (
	"fmt"
	"testing"

	"guardedrules/internal/budget"
	"guardedrules/internal/core"
	"guardedrules/internal/database"
	"guardedrules/internal/parser"
)

// TestDRedACDomSelfSupport pins the counting trap of refcount-maintained
// ACDom under DRed: with `ACDom(X) -> R(X).` the derived R(c) supports
// its own ACDom(c) guard, so retracting the last real base fact must not
// leave the pair alive on mutual support. From scratch, the empty base
// derives nothing.
func TestDRedACDomSelfSupport(t *testing.T) {
	const th = `ACDom(X) -> R(X).`
	for _, w := range workerCounts() {
		t.Run(fmt.Sprintf("workers=%d", w), func(t *testing.T) {
			base := database.FromAtoms(parser.MustParseFacts(`B(c).`))
			h := newDiffHarness(t, th, base, Options{Workers: w})
			h.apply(nil, parser.MustParseFacts(`B(c).`))
			if got := h.m.Current().Len(); got != 0 {
				t.Fatalf("maintained db after retracting the only base fact has %d facts, want 0:\n%s",
					got, h.m.Current().String())
			}
		})
	}
}

// TestDRedACDomSelfSupportDiamond is the diamond variant: the constant
// stays alive via an independent base fact, so the self-supporting
// derivation must survive the first retraction and die with the second.
func TestDRedACDomSelfSupportDiamond(t *testing.T) {
	const th = `ACDom(X) -> R(X).`
	base := database.FromAtoms(parser.MustParseFacts(`B(c). D(c).`))
	h := newDiffHarness(t, th, base, Options{Workers: 1})
	rc := core.NewAtom("R", core.Const("c"))
	h.apply(nil, parser.MustParseFacts(`B(c).`))
	if !h.m.Current().Has(rc) {
		t.Fatal("R(c) died while D(c) still supports ACDom(c)")
	}
	h.apply(nil, parser.MustParseFacts(`D(c).`))
	if h.m.Current().Has(rc) {
		t.Fatal("R(c) survived on pure self-support")
	}
}

// TestDRedACDomIntroducedConstant exercises the cascade through a
// rule-introduced constant: d enters the domain only through derived
// F facts, and Seen(d) must track exactly the survival of some F(_,d).
func TestDRedACDomIntroducedConstant(t *testing.T) {
	const th = `B(X) -> F(X, d).
		ACDom(Y) -> Seen(Y).`
	for _, w := range workerCounts() {
		t.Run(fmt.Sprintf("workers=%d", w), func(t *testing.T) {
			base := database.FromAtoms(parser.MustParseFacts(`B(c). B(e).`))
			h := newDiffHarness(t, th, base, Options{Workers: w})
			seenD := core.NewAtom("Seen", core.Const("d"))
			h.apply(nil, parser.MustParseFacts(`B(c).`))
			if !h.m.Current().Has(seenD) {
				t.Fatal("Seen(d) died while F(e,d) still derives it")
			}
			h.apply(nil, parser.MustParseFacts(`B(e).`))
			if got := h.m.Current().Len(); got != 0 {
				t.Fatalf("maintained db after retracting every base fact has %d facts, want 0:\n%s",
					got, h.m.Current().String())
			}
		})
	}
}

// TestDRedACDomCrossStratum drives the cross-stratum doom case: the
// stratum-0 reader rule must not resurrect R0(c) on the strength of
// higher-stratum supports (P, Q) that are themselves doomed once the
// base fact dies.
func TestDRedACDomCrossStratum(t *testing.T) {
	const th = `ACDom(X) -> R0(X).
		B(X), not N(X) -> P(X).
		P(X) -> Q(X).`
	for _, w := range workerCounts() {
		t.Run(fmt.Sprintf("workers=%d", w), func(t *testing.T) {
			base := database.FromAtoms(parser.MustParseFacts(`B(c).`))
			h := newDiffHarness(t, th, base, Options{Workers: w})
			h.apply(nil, parser.MustParseFacts(`B(c).`))
			if got := h.m.Current().Len(); got != 0 {
				t.Fatalf("maintained db after retracting the only base fact has %d facts, want 0:\n%s",
					got, h.m.Current().String())
			}
			// Re-adding the base fact rebuilds the whole tower.
			h.apply(parser.MustParseFacts(`B(c).`), nil)
			for _, rel := range []string{"R0", "P", "Q"} {
				if !h.m.Current().Has(core.NewAtom(rel, core.Const("c"))) {
					t.Fatalf("%s(c) missing after re-adding B(c)", rel)
				}
			}
		})
	}
}

// TestDRedACDomRegressionSubscribeShape mirrors the repo's subscription
// regression theory (`ACDom(Y) -> Seen(Y).`) over a mixed batch,
// including a retract+add in one batch that must leave the fixpoint
// exactly at the from-scratch result of the new base.
func TestDRedACDomRegressionSubscribeShape(t *testing.T) {
	const th = `ACDom(Y) -> Seen(Y).
		E(X,Y) -> T(X,Y).
		T(X,Y), T(Y,Z) -> T(X,Z).`
	for _, w := range workerCounts() {
		t.Run(fmt.Sprintf("workers=%d", w), func(t *testing.T) {
			base := database.FromAtoms(parser.MustParseFacts(`E(a, b). E(b, c).`))
			h := newDiffHarness(t, th, base, Options{Workers: w})
			h.apply(nil, parser.MustParseFacts(`E(b, c).`))
			h.apply(parser.MustParseFacts(`E(b, d).`), parser.MustParseFacts(`E(a, b).`))
			h.apply(nil, parser.MustParseFacts(`E(b, d).`))
			if got := h.m.Current().Len(); got != 0 {
				t.Fatalf("empty base left %d facts:\n%s", got, h.m.Current().String())
			}
		})
	}
}

// TestDRedACDomFailAtSweep drives the self-support cascade through every
// injected checkpoint failure: a failing Apply must leave the handle at
// the pre-batch materialization, and the eventual clean run must land on
// the from-scratch fixpoint.
func TestDRedACDomFailAtSweep(t *testing.T) {
	const th = `B(X) -> F(X, d).
		ACDom(Y) -> Seen(Y).`
	del := parser.MustParseFacts(`B(c).`)
	add := parser.MustParseFacts(`B(g).`)
	h := newDiffHarness(t, th, database.FromAtoms(parser.MustParseFacts(`B(c). B(e).`)), Options{Workers: 1})
	before := h.m.Current().String()
	completed := false
	for fail := 1; fail <= 200; fail++ {
		opts := Options{Workers: 1, Budget: budget.FailAt(fail)}
		_, _, err := h.m.Apply(add, del, opts)
		if err == nil {
			completed = true
			break
		}
		if !budget.IsBudget(err) {
			t.Fatalf("FailAt(%d): unexpected error kind: %v", fail, err)
		}
		if got := h.m.Current().String(); got != before {
			t.Fatalf("FailAt(%d): failed Apply mutated the pre-batch version", fail)
		}
	}
	if !completed {
		t.Fatal("batch never completed within 200 checkpoints")
	}
	for _, f := range del {
		delete(h.shadow, factKey(f))
	}
	for _, f := range add {
		h.shadow[factKey(f)] = f
	}
	h.check()
}
