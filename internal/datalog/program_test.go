package datalog

import (
	"sync"
	"testing"

	"guardedrules/internal/database"
	"guardedrules/internal/gen"
	"guardedrules/internal/parser"
)

// A compiled Program must give the same fixpoint as the one-shot
// evaluator, and stay reusable across databases.
func TestProgramMatchesEvalSemiNaive(t *testing.T) {
	th := parser.MustParseTheory(`
		E(X,Y) -> T(X,Y).
		T(X,Y), T(Y,Z) -> T(X,Z).
		Node(X), not T(X,X) -> Acyclic(X).
	`)
	p, err := Compile(th)
	if err != nil {
		t.Fatal(err)
	}
	if p.Rules() != 3 || p.Strata() < 2 {
		t.Fatalf("rules=%d strata=%d", p.Rules(), p.Strata())
	}
	for _, n := range []int{4, 9} {
		d := gen.Path(n)
		d.Add(parser.MustParseFacts("Node(v0).")[0])
		want, err := EvalSemiNaive(th, d)
		if err != nil {
			t.Fatal(err)
		}
		got, err := p.Eval(d, Options{})
		if err != nil {
			t.Fatal(err)
		}
		if same, diff := database.SameGroundAtoms(want, got); !same {
			t.Fatalf("n=%d: %s", n, diff)
		}
	}
}

// One Program shared by many goroutines over distinct databases must not
// race (the compiled templates are read-only; per-run state is private).
// Run under -race.
func TestProgramConcurrentEval(t *testing.T) {
	th := parser.MustParseTheory(`
		E(X,Y) -> T(X,Y).
		T(X,Y), T(Y,Z) -> T(X,Z).
	`)
	p, err := Compile(th)
	if err != nil {
		t.Fatal(err)
	}
	d := gen.Path(12)
	want, err := p.Eval(d, Options{Workers: 1})
	if err != nil {
		t.Fatal(err)
	}
	wantStr := want.String()
	var wg sync.WaitGroup
	errs := make(chan error, 16)
	for g := 0; g < 16; g++ {
		wg.Add(1)
		go func(workers int) {
			defer wg.Done()
			got, err := p.Eval(d, Options{Workers: workers})
			if err != nil {
				errs <- err
				return
			}
			if got.String() != wantStr {
				t.Error("concurrent Eval diverged from sequential result")
			}
		}(1 + g%4)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}
}
