package datalog

import (
	"errors"
	"fmt"
	"strings"
	"testing"

	"guardedrules/internal/budget"
	"guardedrules/internal/core"
	"guardedrules/internal/database"
	"guardedrules/internal/gen"
	"guardedrules/internal/parser"
)

// Differential suite for the cost-based planner: for every (theory,
// database, planner, worker count) cell the semi-naive fixpoint must
// render byte-identically — Database.String() is sorted, so this pins
// the derived fact set across join orders, access paths, and merge
// interleavings at once — and must agree with the chase-based reference
// evaluator on ground atoms. The corpus includes gen.AdversarialNames
// databases, whose constants embed NUL bytes: they would collide under
// sloppy key packing, so they guard the packed-id dedup paths
// (database seen-sets, the worker-local keyset) too.
func TestPlannerDifferentialCorpus(t *testing.T) {
	planners := []struct {
		name string
		p    Planner
	}{{"cost", PlannerCost}, {"greedy", PlannerGreedy}}
	for seed := int64(0); seed < 8; seed++ {
		theories := []struct {
			name string
			th   *core.Theory
		}{
			{"guarded", datalogOnly(gen.RandomGuardedTheory(8, seed))},
			{"fg", datalogOnly(gen.RandomFrontierGuardedTheory(gen.FGTheoryOptions{Rules: 8, Seed: seed}))},
		}
		for _, tc := range theories {
			if len(tc.th.Rules) == 0 {
				continue
			}
			dbs := []struct {
				name string
				d    *database.Database
			}{
				{"ab", gen.ABDatabase(8, seed)},
				{"adversarial", gen.AdversarialNames(12, seed)},
			}
			for _, dc := range dbs {
				ref, err := EvalViaChase(tc.th, dc.d)
				if err != nil {
					t.Fatalf("seed %d %s/%s: chase: %v", seed, tc.name, dc.name, err)
				}
				var want string
				for _, pl := range planners {
					for _, workers := range []int{1, 2, 4, 8} {
						fix, err := EvalSemiNaiveOpts(tc.th, dc.d,
							Options{Workers: workers, Planner: pl.p})
						if err != nil {
							t.Fatalf("seed %d %s/%s %s workers=%d: %v",
								seed, tc.name, dc.name, pl.name, workers, err)
						}
						got := fix.String()
						if want == "" {
							want = got
						} else if got != want {
							t.Fatalf("seed %d %s/%s: %s workers=%d output differs from first cell",
								seed, tc.name, dc.name, pl.name, workers)
						}
						if ok, diff := database.SameGroundAtoms(fix, ref); !ok {
							t.Fatalf("seed %d %s/%s %s workers=%d: disagrees with chase: %s",
								seed, tc.name, dc.name, pl.name, workers, diff)
						}
					}
				}
			}
		}
	}
}

// TestPlannerFailAtSweep injects a cancellation at every checkpoint of a
// parallel run, for both planners: each faulted run must return the
// typed cancellation error and a partial database that is a subset of
// the fixpoint, and the first non-faulted run must be byte-identical to
// the ungoverned reference. This walks the planner and plan-runner code
// paths (replan, Prepare, SearchPlan leaves) through every shutdown
// interleaving the checkpoint counter can express.
func TestPlannerFailAtSweep(t *testing.T) {
	thSrc, factSrc := chainTheoryAndFacts(32)
	th := parser.MustParseTheory(thSrc)
	facts := parser.MustParseFacts(factSrc)
	for _, pl := range []struct {
		name string
		p    Planner
	}{{"cost", PlannerCost}, {"greedy", PlannerGreedy}} {
		t.Run(pl.name, func(t *testing.T) {
			full, err := EvalSemiNaiveOpts(th, database.FromAtoms(facts),
				Options{Workers: 8, Planner: pl.p})
			if err != nil {
				t.Fatal(err)
			}
			want := dump(full)
			for n := 1; ; n += 5 {
				if n > 100_000 {
					t.Fatal("fault injection never ran to completion")
				}
				db, err := EvalSemiNaiveOpts(th, database.FromAtoms(facts),
					Options{Workers: 8, Planner: pl.p, Budget: budget.FailAt(n)})
				if err == nil {
					if got := dump(db); got != want {
						t.Fatalf("n=%d: completed governed run differs from reference", n)
					}
					break
				}
				if !errors.Is(err, budget.ErrCanceled) {
					t.Fatalf("n=%d: err = %v, want ErrCanceled", n, err)
				}
				if db == nil {
					t.Fatalf("n=%d: canceled eval must return the partial database", n)
				}
				for _, line := range strings.Split(dump(db), "\n") {
					if line != "" && !strings.Contains(want, line) {
						t.Fatalf("n=%d: partial database holds %s, not in the fixpoint", n, line)
					}
				}
			}
		})
	}
}

// TestPlannerStatsCounters checks that a cost-planned run reports
// planner activity through Options.Stats: plans are recomputed per
// round, and a join with two statically bound positions builds and
// probes a hash table.
func TestPlannerStatsCounters(t *testing.T) {
	th := parser.MustParseTheory(`
		E(X,Y) -> T(X,Y).
		T(X,Y), T(Y,Z), E(X,Z) -> Tri(X,Z).
	`)
	var sb strings.Builder
	for i := 0; i < 24; i++ {
		for j := 1; j <= 3; j++ {
			fmt.Fprintf(&sb, "E(c%d,c%d). ", i, (i+j)%24)
		}
	}
	var js JoinStats
	if _, err := EvalSemiNaiveOpts(th, database.FromAtoms(parser.MustParseFacts(sb.String())),
		Options{Stats: &js}); err != nil {
		t.Fatal(err)
	}
	if js.RoundPlans.Load() == 0 {
		t.Error("no round plans recorded")
	}
	if js.ProbeSteps.Load() == 0 {
		t.Error("no probe steps planned: the Tri join binds E(X,Z) at two positions")
	}
	if js.HashTables.Load() == 0 {
		t.Error("no hash tables built for the probe steps")
	}
}
