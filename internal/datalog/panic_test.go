package datalog

import (
	"errors"
	"runtime"
	"testing"
	"time"

	"guardedrules/internal/budget"
	"guardedrules/internal/database"
	"guardedrules/internal/par"
	"guardedrules/internal/parser"
)

// A panic on an engine worker goroutine (injected deterministically at a
// budget checkpoint — the workers poll Check at the top of every unit)
// must come back as a typed per-request error, never escape to the
// caller's goroutine or kill the process, leave the database a sound
// partial fixpoint, and leak zero goroutines. Run under -race in CI.
func TestEvalWorkerPanicContained(t *testing.T) {
	thSrc, factSrc := chainTheoryAndFacts(32)
	th := parser.MustParseTheory(thSrc)
	facts := parser.MustParseFacts(factSrc)

	full, err := EvalSemiNaiveOpts(th, database.FromAtoms(facts), Options{Workers: 8})
	if err != nil {
		t.Fatal(err)
	}

	before := runtime.NumGoroutine()
	sawPanic := false
	for _, n := range []int{1, 2, 3, 5, 8, 13} {
		db, err := EvalSemiNaiveOpts(th, database.FromAtoms(facts),
			Options{Workers: 8, Budget: budget.PanicAt(n)})
		if err == nil {
			continue // checkpoint n beyond the run's total; nothing injected
		}
		sawPanic = true
		var pe *par.PanicError
		if !errors.As(err, &pe) {
			t.Fatalf("n=%d: err = %v, want a contained *par.PanicError", n, err)
		}
		if _, ok := pe.Value.(budget.InjectedPanic); !ok {
			t.Fatalf("n=%d: recovered value %v, want budget.InjectedPanic", n, pe.Value)
		}
		if db == nil {
			t.Fatalf("n=%d: panicked eval must still return the partial database", n)
		}
		for _, a := range db.UserFacts() {
			if !full.Has(a) {
				t.Fatalf("n=%d: partial contains %v, absent from fixpoint", n, a)
			}
		}
	}
	if !sawPanic {
		t.Fatal("sweep never triggered an injected panic")
	}

	deadline := time.Now().Add(5 * time.Second)
	for runtime.NumGoroutine() > before {
		if time.Now().After(deadline) {
			buf := make([]byte, 1<<16)
			t.Fatalf("goroutine leak after panic containment: %d before, %d after\n%s",
				before, runtime.NumGoroutine(), buf[:runtime.Stack(buf, true)])
		}
		time.Sleep(10 * time.Millisecond)
	}

	// The engine stays healthy after contained panics: a clean re-run is
	// byte-identical to the reference.
	again, err := EvalSemiNaiveOpts(th, database.FromAtoms(facts), Options{Workers: 8})
	if err != nil {
		t.Fatal(err)
	}
	if dump(again) != dump(full) {
		t.Fatal("re-run after panic sweep differs from reference")
	}
}
