package datalog

import (
	"fmt"
	"math/rand"
	"testing"
	"testing/quick"

	"guardedrules/internal/core"
	"guardedrules/internal/database"
	"guardedrules/internal/parser"
)

func eval(t *testing.T, theory, facts string) *database.Database {
	t.Helper()
	th := parser.MustParseTheory(theory)
	d := database.FromAtoms(parser.MustParseFacts(facts))
	out, err := Eval(th, d)
	if err != nil {
		t.Fatal(err)
	}
	return out
}

func TestTransitiveClosure(t *testing.T) {
	out := eval(t, `
		E(X,Y) -> T(X,Y).
		E(X,Y), T(Y,Z) -> T(X,Z).
	`, `E(a,b). E(b,c). E(c,d).`)
	for _, p := range [][2]string{{"a", "d"}, {"b", "d"}, {"a", "c"}} {
		if !out.Has(core.NewAtom("T", core.Const(p[0]), core.Const(p[1]))) {
			t.Errorf("T(%s,%s) missing", p[0], p[1])
		}
	}
	if out.Has(core.NewAtom("T", core.Const("d"), core.Const("a"))) {
		t.Error("T(d,a) must not hold")
	}
}

func TestStratifiedNegation(t *testing.T) {
	// Reachable and unreachable nodes.
	out := eval(t, `
		Start(X) -> Reach(X).
		Reach(X), E(X,Y) -> Reach(Y).
		Node(X), not Reach(X) -> Unreach(X).
	`, `Start(a). E(a,b). E(c,d). Node(a). Node(b). Node(c). Node(d).`)
	if !out.Has(core.NewAtom("Unreach", core.Const("c"))) || !out.Has(core.NewAtom("Unreach", core.Const("d"))) {
		t.Error("c,d must be unreachable")
	}
	if out.Has(core.NewAtom("Unreach", core.Const("a"))) || out.Has(core.NewAtom("Unreach", core.Const("b"))) {
		t.Error("a,b are reachable")
	}
}

func TestStratifyLevels(t *testing.T) {
	th := parser.MustParseTheory(`
		E(X,Y) -> R(X,Y).
		R(X,Y), not S(Y) -> P(X).
		E(X,Y) -> S(X).
		P(X), not Q2(X) -> W(X).
		P(X) -> Q2(X).
	`)
	strata, err := Stratify(th)
	if err != nil {
		t.Fatal(err)
	}
	if len(strata) < 3 {
		t.Errorf("expected at least 3 strata, got %d", len(strata))
	}
	// Heads must never be negated in the same or later strata.
	headStratum := map[string]int{}
	for i, rules := range strata {
		for _, r := range rules {
			for _, h := range r.Head {
				headStratum[h.Relation] = i
			}
		}
	}
	for i, rules := range strata {
		for _, r := range rules {
			for _, l := range r.Body {
				if l.Negated {
					if hs, ok := headStratum[l.Atom.Relation]; ok && hs >= i {
						t.Errorf("negated %s in stratum %d but defined in %d", l.Atom.Relation, i, hs)
					}
				}
			}
		}
	}
}

func TestUnstratifiable(t *testing.T) {
	th := parser.MustParseTheory(`
		P(X), not Q2(X) -> R(X).
		R(X) -> Q2(X).
		Q2(X) -> P(X).
	`)
	if _, err := Stratify(th); err == nil {
		t.Error("negation through recursion must be rejected")
	}
}

func TestEvalRejectsExistentials(t *testing.T) {
	th := parser.MustParseTheory(`A(X) -> exists Y. R(X,Y).`)
	if _, err := Eval(th, database.New()); err == nil {
		t.Error("Eval must reject existential rules")
	}
}

func TestIsSemipositive(t *testing.T) {
	sp := parser.MustParseTheory(`
		R(X), not In(X) -> P(X).
		P(X) -> W(X).
	`)
	if !IsSemipositive(sp) {
		t.Error("negation on input-only relation is semipositive")
	}
	nsp := parser.MustParseTheory(`
		R(X) -> P(X).
		R(X), not P(X) -> W(X).
	`)
	if IsSemipositive(nsp) {
		t.Error("negation on derived relation is not semipositive")
	}
}

func TestAnswersSortedAndGround(t *testing.T) {
	th := parser.MustParseTheory(`E(X,Y) -> Q(Y,X).`)
	d := database.FromAtoms(parser.MustParseFacts(`E(b,a). E(a,c).`))
	ans, err := Answers(th, "Q", d)
	if err != nil {
		t.Fatal(err)
	}
	if len(ans) != 2 {
		t.Fatalf("answers: %v", ans)
	}
	if ans[0][0] != core.Const("a") || ans[0][1] != core.Const("b") {
		t.Errorf("answers not sorted: %v", ans)
	}
}

func TestSameAnswers(t *testing.T) {
	a := [][]core.Term{{core.Const("a")}, {core.Const("b")}}
	b := [][]core.Term{{core.Const("b")}, {core.Const("a")}}
	if ok, _ := SameAnswers(a, b); !ok {
		t.Error("order must not matter")
	}
	c := [][]core.Term{{core.Const("a")}}
	if ok, diff := SameAnswers(a, c); ok || diff == "" {
		t.Error("difference must be detected")
	}
}

// Property: transitive closure computed by the engine equals the
// Floyd-Warshall closure on random digraphs.
func TestTransitiveClosureProperty(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	th := parser.MustParseTheory(`
		E(X,Y) -> T(X,Y).
		E(X,Y), T(Y,Z) -> T(X,Z).
	`)
	f := func(seed uint16) bool {
		n := 2 + rng.Intn(5)
		adj := make([][]bool, n)
		for i := range adj {
			adj[i] = make([]bool, n)
		}
		d := database.New()
		names := make([]core.Term, n)
		for i := range names {
			names[i] = core.Const(fmt.Sprintf("v%d", i))
			// Ensure every node is in the active domain.
			d.Add(core.NewAtom("Node", names[i]))
		}
		for e := 0; e < n; e++ {
			u, v := rng.Intn(n), rng.Intn(n)
			adj[u][v] = true
			d.Add(core.NewAtom("E", names[u], names[v]))
		}
		// Floyd-Warshall.
		reach := make([][]bool, n)
		for i := range reach {
			reach[i] = append([]bool(nil), adj[i]...)
		}
		for k := 0; k < n; k++ {
			for i := 0; i < n; i++ {
				for j := 0; j < n; j++ {
					if reach[i][k] && reach[k][j] {
						reach[i][j] = true
					}
				}
			}
		}
		out, err := Eval(th, d)
		if err != nil {
			return false
		}
		for i := 0; i < n; i++ {
			for j := 0; j < n; j++ {
				if out.Has(core.NewAtom("T", names[i], names[j])) != reach[i][j] {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Error(err)
	}
}

// Property: semipositive programs are monotone in the positive input
// relations.
func TestSemipositiveMonotonicity(t *testing.T) {
	th := parser.MustParseTheory(`
		E(X,Y) -> T(X,Y).
		E(X,Y), T(Y,Z) -> T(X,Z).
	`)
	small := database.FromAtoms(parser.MustParseFacts(`E(a,b).`))
	big := database.FromAtoms(parser.MustParseFacts(`E(a,b). E(b,c).`))
	outS, _ := Eval(th, small)
	outB, _ := Eval(th, big)
	for _, f := range outS.GroundAtoms() {
		if !outB.Has(f) {
			t.Errorf("monotonicity violated: %v", f)
		}
	}
}
