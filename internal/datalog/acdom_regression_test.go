package datalog

import (
	"testing"

	"guardedrules/internal/core"
	"guardedrules/internal/database"
	"guardedrules/internal/parser"
)

// Regression for the Stratify soundness bug: without the implicit
// head→ACDom edges, the ACDom-reading rule was scheduled in a stratum
// below the rule introducing the fresh head constant c1, so Seen(c1) was
// never derived (ACDom(c1) only appears after Marked(c1) is inserted).
func TestStratifyACDomAfterConstantIntroduction(t *testing.T) {
	th := parser.MustParseTheory(`
		ACDom(Y) -> Seen(Y).
		Start(X), not Blocked(X) -> Marked(c1).
	`)
	d := database.FromAtoms(parser.MustParseFacts(`Start(a).`))
	for name, eval := range map[string]func(*core.Theory, database.Store) (*database.Database, error){
		"semi-naive": EvalSemiNaive,
		"via-chase":  EvalViaChase,
	} {
		fix, err := eval(th, d)
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		for _, c := range []string{"a", "c1"} {
			if !fix.Has(core.NewAtom("Seen", core.Const(c))) {
				t.Errorf("%s: Seen(%s) missing", name, c)
			}
		}
	}
}

// The same hazard inside a single stratum: with no negation everything is
// level 0, so the ACDom-reading rule and the constant-introducing rule
// share a stratum, and the derived ACDom fact must enter the semi-naive
// delta (AddNotify) for Seen(c1) to be found.
func TestACDomDeltaWithinStratum(t *testing.T) {
	th := parser.MustParseTheory(`
		ACDom(Y) -> Seen(Y).
		Start(X) -> Marked(c1).
	`)
	d := database.FromAtoms(parser.MustParseFacts(`Start(a).`))
	for name, eval := range map[string]func(*core.Theory, database.Store) (*database.Database, error){
		"semi-naive": EvalSemiNaive,
		"via-chase":  EvalViaChase,
	} {
		fix, err := eval(th, d)
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		if !fix.Has(core.NewAtom("Seen", core.Const("c1"))) {
			t.Errorf("%s: Seen(c1) missing", name)
		}
	}
}

// Chained constant introduction: the first fresh constant triggers a rule
// that introduces a second one; both must reach the ACDom-reading rule.
func TestACDomChainedConstantIntroduction(t *testing.T) {
	th := parser.MustParseTheory(`
		ACDom(Y) -> Seen(Y).
		Start(X) -> Marked(c1).
		Marked(X) -> Tagged(c2).
	`)
	d := database.FromAtoms(parser.MustParseFacts(`Start(a).`))
	fix, err := EvalSemiNaive(th, d)
	if err != nil {
		t.Fatal(err)
	}
	for _, c := range []string{"a", "c1", "c2"} {
		if !fix.Has(core.NewAtom("Seen", core.Const(c))) {
			t.Errorf("Seen(%s) missing", c)
		}
	}
}

// The implicit edges must not reject stratified programs whose heads
// cannot grow the domain: head constants that already occur in the
// positive body introduce nothing, so no edge to ACDom is added and
// negation over such heads stays stratifiable.
func TestStratifyACDomEdgesOnlyForFreshConstants(t *testing.T) {
	th := parser.MustParseTheory(`
		ACDom(X), not P(X) -> Q2(X).
		R(c1) -> P(c1).
	`)
	if _, err := Stratify(th); err != nil {
		t.Fatalf("head constant bound by the body must not create an ACDom cycle: %v", err)
	}
	// A genuinely fresh head constant under negation through ACDom is a
	// real negative cycle and must be rejected.
	bad := parser.MustParseTheory(`
		ACDom(X), not P(X) -> Q2(X).
		Q2(X) -> P(c9).
	`)
	if _, err := Stratify(bad); err == nil {
		t.Error("fresh constant feeding ACDom through negation must be unstratifiable")
	}
}
