package datalog

import (
	"fmt"
	"testing"

	"guardedrules/internal/core"
	"guardedrules/internal/database"
	"guardedrules/internal/parser"
)

const ancestorProgram = `
	Par(X,Y) -> Anc(X,Y).
	Par(X,Z), Anc(Z,Y) -> Anc(X,Y).
`

// forest builds two disjoint descendant chains rooted at a and z.
func forest(n int) *database.Database {
	d := database.New()
	for i := 0; i+1 < n; i++ {
		d.Add(core.NewAtom("Par", core.Const(fmt.Sprintf("a%d", i)), core.Const(fmt.Sprintf("a%d", i+1))))
		d.Add(core.NewAtom("Par", core.Const(fmt.Sprintf("z%d", i)), core.Const(fmt.Sprintf("z%d", i+1))))
	}
	return d
}

func TestMagicAnswersMatchFullEvaluation(t *testing.T) {
	th := parser.MustParseTheory(ancestorProgram)
	d := forest(8)
	query := core.NewAtom("Anc", core.Const("a0"), core.Var("Y"))
	magicAns, _, err := AnswerWithMagic(th, query, d)
	if err != nil {
		t.Fatal(err)
	}
	full, err := Eval(th, d)
	if err != nil {
		t.Fatal(err)
	}
	var fullAns [][]core.Term
	for _, f := range full.Facts(core.RelKey{Name: "Anc", Arity: 2}) {
		if f.Args[0] == core.Const("a0") {
			fullAns = append(fullAns, f.Args)
		}
	}
	if ok, diff := SameAnswers(magicAns, fullAns); !ok {
		t.Errorf("magic answers differ: %s", diff)
	}
	if len(magicAns) != 7 {
		t.Errorf("expected 7 descendants of a0, got %d", len(magicAns))
	}
}

// The point of magic sets: evaluation must not touch the irrelevant
// z-chain.
func TestMagicIsGoalDirected(t *testing.T) {
	th := parser.MustParseTheory(ancestorProgram)
	d := forest(16)
	query := core.NewAtom("Anc", core.Const("a0"), core.Var("Y"))
	_, fix, err := AnswerWithMagic(th, query, d)
	if err != nil {
		t.Fatal(err)
	}
	full, err := Eval(th, d)
	if err != nil {
		t.Fatal(err)
	}
	// Full evaluation derives Anc for both chains (O(n²) facts); the magic
	// evaluation only follows a0's chain.
	fullAnc := len(full.Facts(core.RelKey{Name: "Anc", Arity: 2}))
	var magicAnc int
	for _, rk := range fix.Relations() {
		if rk.Name == "Anc__bf" {
			magicAnc = len(fix.Facts(rk))
		}
		if rk.Name == "Anc" {
			t.Error("magic program must not derive the unadorned relation")
		}
	}
	if magicAnc == 0 {
		t.Fatal("no adorned facts derived")
	}
	// The z-chain is never explored, so the adorned fact count is half of
	// the full evaluation's (the a-side work remains quadratic for this
	// left-recursive ancestor program — the classical behaviour).
	if magicAnc >= fullAnc {
		t.Errorf("magic evaluation not goal-directed: %d adorned vs %d full facts", magicAnc, fullAnc)
	}
	// No z-constants in the derived adorned facts.
	for _, f := range fix.Facts(core.RelKey{Name: "Anc__bf", Arity: 2}) {
		if f.Args[0].Name[0] == 'z' || f.Args[1].Name[0] == 'z' {
			t.Errorf("irrelevant fact derived: %v", f)
		}
	}
}

func TestMagicBoundSecondArgument(t *testing.T) {
	th := parser.MustParseTheory(ancestorProgram)
	d := forest(6)
	// Who are the ancestors of a4? Query Anc(X, a4): adornment fb.
	query := core.NewAtom("Anc", core.Var("X"), core.Const("a4"))
	ans, _, err := AnswerWithMagic(th, query, d)
	if err != nil {
		t.Fatal(err)
	}
	if len(ans) != 4 {
		t.Errorf("expected 4 ancestors of a4, got %d: %v", len(ans), ans)
	}
}

func TestMagicFullyBoundQuery(t *testing.T) {
	th := parser.MustParseTheory(ancestorProgram)
	d := forest(6)
	yes, _, err := AnswerWithMagic(th, core.NewAtom("Anc", core.Const("a0"), core.Const("a3")), d)
	if err != nil {
		t.Fatal(err)
	}
	if len(yes) != 1 {
		t.Errorf("Anc(a0,a3) must hold: %v", yes)
	}
	no, _, err := AnswerWithMagic(th, core.NewAtom("Anc", core.Const("a3"), core.Const("a0")), d)
	if err != nil {
		t.Fatal(err)
	}
	if len(no) != 0 {
		t.Errorf("Anc(a3,a0) must not hold: %v", no)
	}
}

func TestMagicThroughEDBJoin(t *testing.T) {
	// Same-generation: the classic magic-sets stress test.
	th := parser.MustParseTheory(`
		Flat(X,Y) -> Sg(X,Y).
		Up(X,X1), Sg(X1,Y1), Down(Y1,Y) -> Sg(X,Y).
	`)
	d := database.FromAtoms(parser.MustParseFacts(`
		Up(a,b). Up(c,b).
		Flat(b,b).
		Down(b,a). Down(b,c).
	`))
	ans, _, err := AnswerWithMagic(th, core.NewAtom("Sg", core.Const("a"), core.Var("Y")), d)
	if err != nil {
		t.Fatal(err)
	}
	// a is same-generation with a and c (via up-flat-down).
	want := map[string]bool{"a": true, "c": true}
	got := map[string]bool{}
	for _, tu := range ans {
		got[tu[1].Name] = true
	}
	for w := range want {
		if !got[w] {
			t.Errorf("Sg(a,%s) missing (got %v)", w, ans)
		}
	}
}

func TestMagicRejectsUnsupported(t *testing.T) {
	neg := parser.MustParseTheory(`R(X), not S(X) -> P(X).`)
	if _, err := MagicRewrite(neg, core.NewAtom("P", core.Var("X"))); err == nil {
		t.Error("negation must be rejected")
	}
	ex := parser.MustParseTheory(`A(X) -> exists Y. R(X,Y).`)
	if _, err := MagicRewrite(ex, core.NewAtom("R", core.Var("X"), core.Var("Y"))); err == nil {
		t.Error("existential rules must be rejected")
	}
	edb := parser.MustParseTheory(`R(X) -> P(X).`)
	if _, err := MagicRewrite(edb, core.NewAtom("R", core.Var("X"))); err == nil {
		t.Error("EDB query relation must be rejected")
	}
}

// Randomized: magic answers equal filtered full answers on random graphs.
func TestMagicRandomized(t *testing.T) {
	th := parser.MustParseTheory(`
		E(X,Y) -> T(X,Y).
		E(X,Z), T(Z,Y) -> T(X,Y).
	`)
	for seed := int64(0); seed < 10; seed++ {
		d := database.New()
		n := 6
		for e := 0; e < 9; e++ {
			u := core.Const(fmt.Sprintf("v%d", (int(seed)+e*3)%n))
			v := core.Const(fmt.Sprintf("v%d", (int(seed)*2+e*5)%n))
			d.Add(core.NewAtom("E", u, v))
		}
		query := core.NewAtom("T", core.Const("v0"), core.Var("Y"))
		magicAns, _, err := AnswerWithMagic(th, query, d)
		if err != nil {
			t.Fatal(err)
		}
		full, err := Eval(th, d)
		if err != nil {
			t.Fatal(err)
		}
		var fullAns [][]core.Term
		for _, f := range full.Facts(core.RelKey{Name: "T", Arity: 2}) {
			if f.Args[0] == core.Const("v0") {
				fullAns = append(fullAns, f.Args)
			}
		}
		if ok, diff := SameAnswers(magicAns, fullAns); !ok {
			t.Errorf("seed %d: %s", seed, diff)
		}
	}
}
