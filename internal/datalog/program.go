package datalog

import (
	"fmt"

	"guardedrules/internal/budget"
	"guardedrules/internal/core"
	"guardedrules/internal/database"
)

// Program is a Datalog program compiled once and evaluated many times:
// the stratification, the per-stratum semi-naive work items (rule ×
// positive-body-position, with the remaining body reordered
// most-bound-first), and the round-0 body orderings are all computed at
// Compile time and shared across evaluations.
//
// A Program is immutable after Compile and safe for concurrent use: Eval
// clones the input database and compiles the shared delta items into
// per-run id-space programs (id resolution is per-database, so the
// compiled templates themselves are never written after construction).
// This is the compile-once/query-many seam the serving layer
// (internal/kbcache) builds on: stratify/reorder/compile happen once per
// theory, per-query work is only the fixpoint itself.
type Program struct {
	th     *core.Theory
	strata []compiledStratum
}

// compiledStratum is one stratum's reusable compiled form.
type compiledStratum struct {
	rules []*core.Rule
	items []deltaItem
	// round0 holds each rule's positive body reordered most-bound-first,
	// for the full (non-delta) evaluation of round 0.
	round0 [][]core.Atom
}

// Compile validates the theory as stratified Datalog and builds its
// reusable evaluation plan. The returned Program references the theory's
// rules; callers must not mutate them afterwards.
func Compile(th *core.Theory) (*Program, error) {
	for _, r := range th.Rules {
		if !r.IsDatalog() {
			return nil, fmt.Errorf("datalog: rule %s has existential variables", r.Label)
		}
	}
	strata, err := Stratify(th)
	if err != nil {
		return nil, err
	}
	p := &Program{th: th, strata: make([]compiledStratum, len(strata))}
	for i, rules := range strata {
		cs := &p.strata[i]
		cs.rules = rules
		cs.items = deltaItemsOf(rules)
		cs.round0 = make([][]core.Atom, len(rules))
		for j, r := range rules {
			cs.round0[j] = reorderMostBound(r.PositiveBody(), nil)
		}
	}
	return p, nil
}

// Theory returns the compiled program's rules.
func (p *Program) Theory() *core.Theory { return p.th }

// Strata reports the number of strata of the compiled program.
func (p *Program) Strata() int { return len(p.strata) }

// Rules reports the number of rules of the compiled program.
func (p *Program) Rules() int { return len(p.th.Rules) }

// Eval computes the stratified fixpoint over d with the compiled plan.
// The input database is not modified. On budget exhaustion the partial
// database — every fully merged round — is returned together with a
// typed *budget.Error, exactly like EvalSemiNaiveOpts.
func (p *Program) Eval(d *database.Database, opts Options) (*database.Database, error) {
	tk := budget.Start(opts.Budget)
	defer tk.Stop()
	out := d.Clone()
	for i := range p.strata {
		if err := evalStratum(&p.strata[i], out, opts, tk); err != nil {
			if budget.IsBudget(err) {
				return out, fmt.Errorf("datalog: stratum %d: %w", i, err)
			}
			return nil, fmt.Errorf("datalog: stratum %d: %w", i, err)
		}
	}
	return out, nil
}

// Answers evaluates the compiled program over d and extracts the
// all-constant q-tuples, in sorted textual order. On budget exhaustion
// the answers of the partial fixpoint are returned (a sound
// under-approximation) alongside the typed error.
func (p *Program) Answers(q string, d *database.Database, opts Options) ([][]core.Term, error) {
	fix, err := p.Eval(d, opts)
	if err != nil {
		if fix != nil && budget.IsBudget(err) {
			return CollectAnswers(fix, q), err
		}
		return nil, err
	}
	return CollectAnswers(fix, q), nil
}
