package datalog

import (
	"errors"
	"fmt"
	"runtime/debug"

	"guardedrules/internal/budget"
	"guardedrules/internal/core"
	"guardedrules/internal/database"
	"guardedrules/internal/par"
)

// Program is a Datalog program compiled once and evaluated many times:
// the stratification and the per-stratum work-item templates — one
// round-0 template per rule, one semi-naive template per (rule ×
// positive-body-position), each with compiled id-space atoms, slot
// assignments and the legacy greedy join order — are all computed at
// Compile time and shared across evaluations. The join plans themselves
// are not fixed here: the evaluator re-plans every work item each round
// from the database's live cardinality statistics (see Options.Planner),
// so the compile-time artifact is the plan *shape* (templates, slots,
// candidate orders) while the per-round choice is data-driven.
//
// A Program is immutable after Compile and safe for concurrent use: Eval
// clones the input database and instantiates the shared templates into
// per-run copies (constant-id resolution is per-database, so the
// templates themselves are never written after construction). This is
// the compile-once/query-many seam the serving layer (internal/kbcache)
// builds on: stratify/compile happen once per theory, per-query work is
// the fixpoint plus its per-round planning.
type Program struct {
	th     *core.Theory
	strata []compiledStratum
	// hasNeg reports whether any rule has a negated literal; programs
	// without negation take the monotone fast path of incremental
	// insertion (no block/unblock sweeps are ever needed).
	hasNeg bool
	// readsACDom reports whether any rule body reads the maintained
	// ACDom relation. Only such programs can derive facts FROM domain
	// membership, which is what makes refcount-maintained ACDom unsound
	// under deletion (a derived fact can support its own ACDom guard);
	// incremental retraction runs its trusted-support cascade only when
	// this is set.
	readsACDom bool
	// lastStratum maps every derived relation to the last stratum with a
	// rule deriving it: its facts are final once that stratum's
	// over-deletion completed. Relations absent from the map are EDB.
	lastStratum map[core.RelKey]int
}

// compiledStratum is one stratum's reusable compiled form.
type compiledStratum struct {
	rules []*core.Rule
	// round0 holds one template per rule (full positive body, no delta
	// pattern) for the full evaluation of round 0.
	round0 []ctempl
	// items holds one template per (rule, positive body position).
	items []ctempl
	// negItems holds one maintenance template per (rule, negated
	// literal): the pattern is the negated atom, rest the full positive
	// body, heads the rule heads. DRed matches added facts against it to
	// over-delete newly blocked firings, and deleted facts to re-derive
	// newly unblocked ones.
	negItems []ctempl
	// redItems holds one template per (rule, head position): the pattern
	// is the head atom, rest the full positive body, no heads. DRed's
	// rederivation phase matches an over-deleted fact against it to ask
	// whether some surviving body instantiation still derives it.
	redItems []ctempl
	// headRels is the set of relations this stratum's rules can derive.
	headRels map[core.RelKey]bool
}

// Compile validates the theory as stratified Datalog and builds its
// reusable evaluation plan. The returned Program references the theory's
// rules; callers must not mutate them afterwards.
func Compile(th *core.Theory) (*Program, error) {
	for _, r := range th.Rules {
		if !r.IsDatalog() {
			return nil, fmt.Errorf("datalog: rule %s has existential variables", r.Label)
		}
	}
	strata, err := Stratify(th)
	if err != nil {
		return nil, err
	}
	p := &Program{th: th, strata: make([]compiledStratum, len(strata)),
		lastStratum: make(map[core.RelKey]int)}
	for i, rules := range strata {
		cs := &p.strata[i]
		cs.rules = rules
		cs.round0 = make([]ctempl, len(rules))
		cs.headRels = make(map[core.RelKey]bool)
		for j, r := range rules {
			cs.round0[j] = compileTemplate(r, -1)
			for bi := range r.PositiveBody() {
				cs.items = append(cs.items, compileTemplate(r, bi))
			}
			for _, l := range r.Body {
				if l.Negated {
					cs.negItems = append(cs.negItems, compileAuxTemplate(r, l.Atom, true))
					p.hasNeg = true
				}
				if l.Atom.Relation == core.ACDom {
					p.readsACDom = true
				}
			}
			for _, h := range r.Head {
				cs.redItems = append(cs.redItems, compileAuxTemplate(r, h, false))
				cs.headRels[h.Key()] = true
				p.lastStratum[h.Key()] = i
			}
		}
	}
	return p, nil
}

// Theory returns the compiled program's rules.
func (p *Program) Theory() *core.Theory { return p.th }

// Strata reports the number of strata of the compiled program.
func (p *Program) Strata() int { return len(p.strata) }

// Rules reports the number of rules of the compiled program.
func (p *Program) Rules() int { return len(p.th.Rules) }

// Eval computes the stratified fixpoint over d with the compiled plan.
// The input database is not modified. On budget exhaustion the partial
// database — every fully merged round — is returned together with a
// typed *budget.Error, exactly like EvalSemiNaiveOpts.
func (p *Program) Eval(d database.Store, opts Options) (res *database.Database, err error) {
	tk := budget.Start(opts.Budget)
	defer tk.Stop()
	out := d.Clone()
	// The engine boundary never panics: worker panics are already
	// converted by par.RunUnits, and this seam catches the coordinator's
	// own (merge loop, checkpoint injection), so a fault anywhere in an
	// evaluation surfaces as one failed request, not a dead process. The
	// partial database stays attached — completed merges only, a sound
	// under-approximation.
	defer func() {
		if v := recover(); v != nil {
			res, err = out, fmt.Errorf("datalog: %w", &par.PanicError{Unit: -1, Value: v, Stack: debug.Stack()})
		}
	}()
	for i := range p.strata {
		if err := evalStratum(&p.strata[i], out, opts, tk); err != nil {
			// Budget exhaustion and contained worker panics both leave the
			// database a well-formed partial fixpoint (the failing round's
			// buffers were discarded before any merge), so the partial
			// result rides along with the typed error.
			var pe *par.PanicError
			if budget.IsBudget(err) || errors.As(err, &pe) {
				return out, fmt.Errorf("datalog: stratum %d: %w", i, err)
			}
			return nil, fmt.Errorf("datalog: stratum %d: %w", i, err)
		}
	}
	return out, nil
}

// Answers evaluates the compiled program over d and extracts the
// all-constant q-tuples, in sorted textual order. On budget exhaustion
// the answers of the partial fixpoint are returned (a sound
// under-approximation) alongside the typed error.
func (p *Program) Answers(q string, d database.Store, opts Options) ([][]core.Term, error) {
	fix, err := p.Eval(d, opts)
	if err != nil {
		if fix != nil && budget.IsBudget(err) {
			return CollectAnswers(fix, q), err
		}
		return nil, err
	}
	return CollectAnswers(fix, q), nil
}
