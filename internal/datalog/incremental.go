package datalog

import (
	"encoding/binary"
	"fmt"
	"runtime/debug"
	"sort"

	"guardedrules/internal/budget"
	"guardedrules/internal/core"
	"guardedrules/internal/database"
	"guardedrules/internal/hom"
	"guardedrules/internal/par"
)

// factKey returns a canonical injective byte encoding of a ground atom,
// used as the map key of the incremental bookkeeping sets. Atom.String
// is NOT injective (a constant named "a, b" renders like two arguments),
// so the key is built from length-prefixed fields: relation name,
// annotation terms, argument terms, each term tagged with its kind.
func factKey(a core.Atom) string {
	b := make([]byte, 0, 16+2*len(a.Relation))
	b = binary.AppendUvarint(b, uint64(len(a.Relation)))
	b = append(b, a.Relation...)
	b = binary.AppendUvarint(b, uint64(len(a.Annotation)))
	for _, t := range a.Annotation {
		b = appendTermKey(b, t)
	}
	b = binary.AppendUvarint(b, uint64(len(a.Args)))
	for _, t := range a.Args {
		b = appendTermKey(b, t)
	}
	return string(b)
}

func appendTermKey(b []byte, t core.Term) []byte {
	b = append(b, byte(t.Kind))
	b = binary.AppendUvarint(b, uint64(len(t.Name)))
	return append(b, t.Name...)
}

// Delta is the net answer-set change of one Apply: the facts present
// after the batch but not before, and vice versa. Both slices are sorted
// by canonical fact key, so equal deltas are structurally identical.
type Delta struct {
	Added   []core.Atom
	Removed []core.Atom
}

// Maintained is an incrementally maintained fixpoint: a compiled program
// together with its current materialization and the base (explicit) fact
// set. Apply folds a batch of base-fact insertions and retractions into
// the materialization without recomputing it from scratch — insertion
// resumes the semi-naive fixpoint with the new facts as the initial
// delta, deletion runs DRed (delete-and-rederive) over the stratified
// program — and the maintained database is always byte-identical
// (Database.String) to a from-scratch evaluation of the current base, at
// any worker count.
//
// A Maintained value is not safe for concurrent use; callers serialize
// Apply (the serving layer holds one writer per mutable DB). The
// databases returned by Current and Apply are immutable snapshots:
// Apply never mutates a previously returned database.
type Maintained struct {
	p    *Program
	cur  *database.Database
	base map[string]core.Atom
	// baseConst counts, per constant, its occurrences across the base
	// facts (arguments and annotation, with multiplicity). Maintained
	// only for ACDom-reading programs (nil otherwise): the retraction
	// cascade uses it to decide in O(1) whether a constant's domain
	// membership is still grounded in the base after the staged batch.
	baseConst map[core.Term]int
}

// constOccs calls fn for every constant occurrence of f (arguments and
// annotation, with multiplicity).
func constOccs(f core.Atom, fn func(core.Term)) {
	for _, t := range f.Args {
		if t.IsConst() {
			fn(t)
		}
	}
	for _, t := range f.Annotation {
		if t.IsConst() {
			fn(t)
		}
	}
}

// NewMaintained evaluates the program over base and returns a maintained
// handle positioned at that fixpoint. The base fact set is snapshotted
// from base.UserFacts(); explicitly added ACDom facts are not part of it
// and cannot be retracted through Apply.
func NewMaintained(p *Program, base database.Store, opts Options) (*Maintained, error) {
	fix, err := p.Eval(base, opts)
	if err != nil {
		return nil, err
	}
	m := &Maintained{p: p, cur: fix, base: make(map[string]core.Atom, base.Len())}
	if p.readsACDom {
		m.baseConst = make(map[core.Term]int)
	}
	for _, f := range base.UserFacts() {
		m.base[factKey(f)] = f
		if m.baseConst != nil {
			constOccs(f, func(t core.Term) { m.baseConst[t]++ })
		}
	}
	return m, nil
}

// Program returns the compiled program of the handle.
func (m *Maintained) Program() *Program { return m.p }

// Current returns the current materialized fixpoint. The returned
// database must be treated as read-only; it remains valid (and
// unchanged) after subsequent Apply calls.
func (m *Maintained) Current() *database.Database { return m.cur }

// BaseLen returns the number of base (explicit) facts.
func (m *Maintained) BaseLen() int { return len(m.base) }

// Apply folds a batch of base-fact mutations into the maintained
// fixpoint: retractions are staged first, then additions (so a retract
// and an add of the same fact in one batch cancel). Facts retracted that
// are not in the base, and facts added that already are, are ignored.
// On success it returns the new materialization and the net delta of the
// derived fact set. On any error — budget exhaustion (checkpoints run
// through the same tracker as every other engine), a contained panic, a
// non-ground fact — the handle is unchanged: the current materialization
// is still the pre-batch version.
func (m *Maintained) Apply(add, retract []core.Atom, opts Options) (res *database.Database, delta Delta, err error) {
	// Stage the batch against the base set.
	baseDel := make(map[string]core.Atom)
	for _, f := range retract {
		if !f.IsGround() {
			return nil, Delta{}, fmt.Errorf("datalog: apply: retract %s: %w", f, database.ErrNotGround)
		}
		k := factKey(f)
		if _, ok := m.base[k]; ok {
			baseDel[k] = f
		}
	}
	baseAdd := make(map[string]core.Atom)
	for _, f := range add {
		if !f.IsGround() {
			return nil, Delta{}, fmt.Errorf("datalog: apply: add %s: %w", f, database.ErrNotGround)
		}
		k := factKey(f)
		if _, ok := baseDel[k]; ok {
			delete(baseDel, k)
			continue
		}
		if _, ok := m.base[k]; ok {
			continue
		}
		baseAdd[k] = f
	}
	if len(baseAdd)+len(baseDel) == 0 {
		return m.cur, Delta{}, nil
	}
	inBase := func(k string) bool {
		if _, ok := baseAdd[k]; ok {
			return true
		}
		if _, ok := baseDel[k]; ok {
			return false
		}
		_, ok := m.base[k]
		return ok
	}

	// Net and gross change tracking. The net sets cancel (a fact deleted
	// then rederived never surfaces in the delta); the gross logs drive
	// the DRed frontiers and the forced deltas, in event order.
	addedSet := make(map[string]core.Atom)
	removedSet := make(map[string]core.Atom)
	var grossAdds, grossDels []core.Atom
	noteAdd := func(a core.Atom) {
		k := factKey(a)
		if _, ok := removedSet[k]; ok {
			delete(removedSet, k)
		} else {
			addedSet[k] = a
		}
		grossAdds = append(grossAdds, a)
	}
	noteDel := func(a core.Atom) {
		k := factKey(a)
		if _, ok := addedSet[k]; ok {
			delete(addedSet, k)
		} else {
			removedSet[k] = a
		}
		grossDels = append(grossDels, a)
	}

	tk := budget.Start(opts.Budget)
	defer tk.Stop()
	// Same panic seam as Program.Eval: a fault anywhere in maintenance
	// surfaces as one failed batch, with the handle untouched.
	defer func() {
		if v := recover(); v != nil {
			res, delta, err = nil, Delta{}, fmt.Errorf("datalog: apply: %w",
				&par.PanicError{Unit: -1, Value: v, Stack: debug.Stack()})
		}
	}()

	// occDelta is the batch's net effect on base constant occurrences;
	// together with baseConst it answers "does the post-batch base still
	// contain t" during the retraction cascade of ACDom-reading programs.
	var occDelta map[core.Term]int
	if m.baseConst != nil {
		occDelta = make(map[core.Term]int)
		for _, f := range baseDel {
			constOccs(f, func(t core.Term) { occDelta[t]-- })
		}
		for _, f := range baseAdd {
			constOccs(f, func(t core.Term) { occDelta[t]++ })
		}
	}

	addsList := sortedFacts(baseAdd)
	var work *database.Database
	if len(baseDel) == 0 && !m.p.hasNeg {
		work, err = m.applyMonotone(addsList, opts, tk, noteAdd)
	} else {
		work, err = m.applyDRed(addsList, sortedFacts(baseDel), inBase, occDelta, opts, tk, noteAdd, noteDel, &grossAdds, &grossDels, addedSet, removedSet)
	}
	if err != nil {
		return nil, Delta{}, err
	}

	// Commit: the staged base changes and the new materialization become
	// visible atomically from the caller's perspective (no error path
	// below this point).
	for k := range baseDel {
		delete(m.base, k)
	}
	for k, f := range baseAdd {
		m.base[k] = f
	}
	if m.baseConst != nil {
		for t, n := range occDelta {
			if m.baseConst[t] += n; m.baseConst[t] <= 0 {
				delete(m.baseConst, t)
			}
		}
	}
	m.cur = work
	return work, Delta{Added: sortedFactVals(addedSet), Removed: sortedFactVals(removedSet)}, nil
}

// applyMonotone is the insertion-only fast path for programs without
// negation: the fixpoint is monotone in the base, so resuming the
// semi-naive loop with the inserted facts as the initial delta computes
// exactly the from-scratch fixpoint of the grown base.
func (m *Maintained) applyMonotone(adds []core.Atom, opts Options, tk *budget.Tracker, noteAdd func(core.Atom)) (*database.Database, error) {
	work := m.cur.Clone()
	var grossAdds []core.Atom
	onAdd := func(a core.Atom) { grossAdds = append(grossAdds, a); noteAdd(a) }
	for i := range m.p.strata {
		cs := &m.p.strata[i]
		items := instantiate(cs.items)
		jc := hom.NewJoinCache(work)
		var bufs [][]core.Atom
		if i == 0 {
			bufs = [][]core.Atom{adds}
		}
		// Everything inserted so far — the batch plus all lower-strata
		// derivations — is the initial delta of this stratum: any new
		// firing of a stratum-i rule must use at least one of them.
		force := grossAdds[:len(grossAdds):len(grossAdds)]
		if err := runDeltaRounds(items, work, opts, tk, jc, m.noteBuilds(jc, opts.Stats), bufs, force, onAdd); err != nil {
			return nil, fmt.Errorf("datalog: apply: stratum %d: %w", i, err)
		}
	}
	return work, nil
}

// applyDRed handles batches with deletions (or programs with negation,
// where even pure insertions can retract derived facts) by
// delete-and-rederive, stratum by stratum: over-delete every derivation
// that may have used a deleted fact or become blocked by an added one
// (phase D, joined against the pristine pre-batch database — a safe
// over-approximation), re-add over-deleted facts still in the base or
// still one-step derivable (phase R), then resume the semi-naive
// insertion rounds with the rederived and added facts as the delta
// (phase I, including firings newly unblocked by deletions).
//
// Every deletion runs through retractCascade: for ACDom-reading
// programs, a constant whose last trusted support dies drags its
// remaining (possibly self-supporting) derived supports into the
// frontier too — see the method comment for why refcounts alone
// under-delete there.
func (m *Maintained) applyDRed(adds, dels []core.Atom, inBase func(string) bool, occDelta map[core.Term]int, opts Options, tk *budget.Tracker, noteAdd, noteDel func(core.Atom), grossAdds, grossDels *[]core.Atom, addedSet, removedSet map[string]core.Atom) (*database.Database, error) {
	old := m.cur
	work := old.Clone()
	js := opts.Stats
	planner := opts.Planner
	maxFacts := 0
	if opts.Budget != nil {
		maxFacts = opts.Budget.MaxFacts
	}

	// Base retractions come first; cascaded ACDom deaths ride the same
	// notification into the deletion frontier.
	for _, f := range dels {
		if err := m.retractCascade(work, f, 0, occDelta, tk, noteDel); err != nil {
			return nil, fmt.Errorf("datalog: apply: retract %s: %w", f, err)
		}
	}

	for i := range m.p.strata {
		cs := &m.p.strata[i]
		jcOld := hom.NewJoinCache(old)
		jc := hom.NewJoinCache(work)

		// Phase D: over-deletion. Joins run against the frozen pre-batch
		// database — every derivation that existed before the batch and
		// touched a deleted fact (or was blocked-to-be by an added one)
		// is a deletion candidate; rederivation repairs the overshoot.
		dItems := instantiate(cs.items)
		for j := range dItems {
			dItems[j].resolve(old)
			dItems[j].replan(old, planner, jcOld, js)
		}
		deleteHeads := func(cands []core.Atom) error {
			for _, h := range cands {
				if !work.Has(h) {
					continue
				}
				if err := m.retractCascade(work, h, i, occDelta, tk, noteDel); err != nil {
					return fmt.Errorf("datalog: apply: over-delete %s: %w", h, err)
				}
			}
			return nil
		}
		if len(cs.negItems) > 0 && len(*grossAdds) > 0 {
			// Block sweep: an added fact matching a negated literal kills
			// the firings it now blocks. The template's own negated
			// literals are checked against the pre-batch database, so a
			// fact that was already present (e.g. over-deleted elsewhere
			// and rederived) blocks nothing spuriously.
			bItems := instantiate(cs.negItems)
			for j := range bItems {
				bItems[j].resolve(old)
				bItems[j].replan(old, planner, jcOld, js)
			}
			cands, err := sweepMatches(bItems, old, (*grossAdds)[:len(*grossAdds):len(*grossAdds)], jcOld, tk)
			if err != nil {
				return nil, err
			}
			if err := deleteHeads(cands); err != nil {
				return nil, err
			}
		}
		for cursor := 0; cursor < len(*grossDels); {
			// Round checkpoint: FailAt injection and cancellation observe
			// over-deletion rounds exactly like semi-naive merge rounds.
			if err := tk.Check(); err != nil {
				return nil, err
			}
			batch := (*grossDels)[cursor:]
			cursor = len(*grossDels)
			cands, err := sweepMatches(dItems, old, batch, jcOld, tk)
			if err != nil {
				return nil, err
			}
			if err := deleteHeads(cands); err != nil {
				return nil, err
			}
		}

		// Phase R: rederivation. An over-deleted fact of this stratum's
		// head relations returns if it is in the effective new base, or
		// if some surviving body instantiation still derives it (the
		// diamond case: a retracted base fact that is independently
		// derivable must not lose its derived copy).
		rItems := instantiate(cs.redItems)
		for j := range rItems {
			rItems[j].resolve(work)
			rItems[j].replan(work, planner, jc, js)
		}
		readds := 0
		for _, k := range sortedKeys(removedSet) {
			f, live := removedSet[k]
			if !live || f.Relation == core.ACDom || !cs.headRels[f.Key()] {
				continue
			}
			if !inBase(k) && !oneStepDerivable(&f, rItems, work, jc, tk) {
				continue
			}
			if maxFacts > 0 && tk.Usage().Facts+readds+work.AddCost(f) > maxFacts {
				tk.AddFacts(readds)
				return nil, tk.Exhausted(budget.ErrFactLimit)
			}
			if _, err := work.AddNotify(f, func(a core.Atom) { noteAdd(a); readds++ }); err != nil {
				return nil, fmt.Errorf("datalog: apply: rederive %s: %w", f, err)
			}
		}
		tk.AddFacts(readds)
		if err := tk.Check(); err != nil {
			return nil, err
		}

		// Phase I: insertion. Deletions may have unblocked firings of
		// this stratum's negated rules — their heads join the candidate
		// buffers (the emitter re-checks every negated literal against
		// the current database, so nothing still blocked fires). The
		// batch additions are offered at EVERY stratum, not just the
		// first: a batch-added fact of a higher-stratum head relation can
		// be over-deleted by that stratum's phase D after it merged at
		// stratum 0, and phase R only watches the net-removed set (the
		// deletion canceled against the earlier add). The merge dedups,
		// so re-offering already-present facts costs one lookup each.
		var bufs [][]core.Atom
		if len(adds) > 0 {
			bufs = append(bufs, adds)
		}
		if len(cs.negItems) > 0 && len(*grossDels) > 0 {
			uItems := instantiate(cs.negItems)
			for j := range uItems {
				uItems[j].resolve(work)
				uItems[j].replan(work, planner, jc, js)
			}
			ubuf, err := unblockCandidates(uItems, work, (*grossDels)[:len(*grossDels):len(*grossDels)], jc, tk)
			if err != nil {
				return nil, err
			}
			if len(ubuf) > 0 {
				bufs = append(bufs, ubuf)
			}
		}
		items := instantiate(cs.items)
		force := (*grossAdds)[:len(*grossAdds):len(*grossAdds)]
		if err := runDeltaRounds(items, work, opts, tk, jc, m.noteBuilds(jc, js), bufs, force, noteAdd); err != nil {
			return nil, fmt.Errorf("datalog: apply: stratum %d: %w", i, err)
		}
	}
	return work, nil
}

// retractCascade removes f from work (with ACDom refcount maintenance
// via DeleteNotify) and closes the refcount blind spot of ACDom-reading
// programs: ACDom is maintained by occurrence counting, and counting is
// unsound under deletion once rules derive facts FROM domain membership
// — with `ACDom(X) -> R(X)`, the derived R(c) supports its own ACDom(c)
// guard, so retracting the last real support leaves the pair alive on
// mutual support and DRed's phase D never sees the ACDom deletion.
//
// The repair is a trusted-support test per constant of every deleted
// fact: a constant is trusted while the post-batch base still contains
// it (baseConst adjusted by occDelta), its ACDom fact is explicitly
// pinned, or it occurs in a fact of a relation whose last deriving
// stratum precedes the current one (those facts are final — phase D
// can no longer touch them — and base facts exist from stratum 0, so
// the timing matches a from-scratch stratified run). When a deletion
// drops an occurrence of an untrusted constant, every remaining fact
// containing it is suspect of circular support and joins the deletion
// worklist; the last support's DeleteNotify then retracts ACDom(c) with
// notification, feeding DRed's frontier. All of this is a safe
// over-approximation in the DRed sense: the suspect facts sit at
// strata >= the current one (a surviving earlier-stratum fact would
// have made the constant trusted), so their rederivation phases are
// still ahead and restore whatever a surviving derivation justifies.
//
// Programs that never read ACDom skip the test entirely: their ACDom
// facts have no consequences, and refcounts alone maintain them
// exactly.
func (m *Maintained) retractCascade(work *database.Database, f core.Atom, stratum int, occDelta map[core.Term]int, tk *budget.Tracker, noteDel func(core.Atom)) error {
	if !m.p.readsACDom {
		_, err := work.DeleteNotify(f, noteDel)
		return err
	}
	trusted := func(t core.Term) bool {
		if m.baseConst[t]+occDelta[t] > 0 || work.ACDomPinned(t) {
			return true
		}
		for rk, last := range m.p.lastStratum {
			if last < stratum && work.TermOccursIn(rk, t) {
				return true
			}
		}
		return false
	}
	// cascaded marks constants whose remaining supports were already
	// enqueued in this call: every fact on the worklist is deleted before
	// returning, so re-testing them while the queue drains is redundant.
	var cascaded map[core.Term]bool
	queue := []core.Atom{f}
	for n := 0; len(queue) > 0; n++ {
		if n%64 == 63 {
			// Checkpoint: a huge cascade observes cancellation and FailAt
			// injection like every other engine loop.
			if err := tk.Check(); err != nil {
				return err
			}
		}
		a := queue[0]
		queue = queue[1:]
		removed, err := work.DeleteNotify(a, noteDel)
		if err != nil {
			return err
		}
		if !removed || a.Relation == core.ACDom {
			continue
		}
		constOccs(a, func(t core.Term) {
			if cascaded[t] || work.ACDomSupport(t) == 0 || trusted(t) {
				return // refcount already cascaded, or membership still grounded
			}
			if cascaded == nil {
				cascaded = make(map[core.Term]bool)
			}
			cascaded[t] = true
			queue = append(queue, work.FactsContaining(t)...)
		})
	}
	return nil
}

// noteBuilds returns the hash-table counter hook shared with
// evalStratum, bound to one join cache.
func (m *Maintained) noteBuilds(jc *hom.JoinCache, js *JoinStats) func() {
	prev := 0
	return func() {
		if js != nil && jc.Builds() != prev {
			js.HashTables.Add(int64(jc.Builds() - prev))
		}
		prev = jc.Builds()
	}
}

// collector is the phase-D match sink: unlike the emitter it
// materializes every ground head — facts already present are exactly the
// over-deletion candidates — deduplicating within one item via the
// packed-id keyset. Negated literals are checked against the same frozen
// database the join runs over.
type collector struct {
	c       *citem
	st      *hom.State
	db      *database.Database
	tk      *budget.Tracker
	out     []core.Atom
	local   keyset
	scratch []uint32
	polls   int
}

func (e *collector) leaf() bool {
	if e.polls++; e.polls%pollInterval == 0 && e.tk.Canceled() {
		return false
	}
	c := e.c
	for i := range c.neg {
		ids, ok := e.st.PackIDs(e.scratch[:0], &c.neg[i])
		if ok && e.db.SeenIDs(c.neg[i].RK, ids) {
			return true
		}
	}
	for i := range c.heads {
		h := &c.heads[i]
		ids, ok := e.st.PackIDs(e.scratch[:0], h)
		if !ok {
			e.out = append(e.out, e.st.Materialize(h))
			continue
		}
		if !e.local.add(uint32(i), ids) {
			continue
		}
		e.out = append(e.out, e.st.Materialize(h))
	}
	return true
}

// sweepMatches matches each fact's id tuple against every item whose
// pattern relation matches and collects all ground heads of the
// resulting body matches in db. Facts with terms never interned in db
// are skipped: no derivation in db can have touched them.
func sweepMatches(items []citem, db *database.Database, facts []core.Atom, jc *hom.JoinCache, tk *budget.Tracker) ([]core.Atom, error) {
	groups := groupTuples(db, facts)
	var out []core.Atom
	for i := range items {
		c := &items[i]
		g := groups[c.pattern.RK]
		if g == nil || !c.patternOK() {
			continue
		}
		em := &collector{c: c, st: hom.NewState(db, c.t.nvars), db: db, tk: tk,
			scratch: make([]uint32, 0, 16)}
		w := c.pattern.RK.Arity + c.pattern.RK.AnnArity
		for j := 0; j < g.n; j++ {
			mark := em.st.Mark()
			if em.st.Match(&c.pattern, g.ids[j*w:(j+1)*w]) {
				if !em.st.SearchPlan(c.rest, &c.plan, jc, em.leaf) {
					em.st.Unwind(mark)
					if err := tk.Check(); err != nil {
						return nil, err
					}
				}
			}
			em.st.Unwind(mark)
		}
		out = append(out, em.out...)
	}
	return out, nil
}

// unblockCandidates matches deleted facts against the negated-literal
// templates over the CURRENT database: a deletion that falsified a
// negated literal may have unblocked firings. The emitter's leaf
// re-checks every negated literal (including the pattern's own) against
// the current database and skips heads already present, so the returned
// atoms are genuine insertion candidates.
func unblockCandidates(items []citem, db *database.Database, facts []core.Atom, jc *hom.JoinCache, tk *budget.Tracker) ([]core.Atom, error) {
	groups := groupTuples(db, facts)
	var out []core.Atom
	for i := range items {
		c := &items[i]
		g := groups[c.pattern.RK]
		if g == nil || !c.patternOK() {
			continue
		}
		em := &emitter{c: c, st: hom.NewState(db, c.t.nvars), db: db, tk: tk,
			scratch: make([]uint32, 0, 16)}
		w := c.pattern.RK.Arity + c.pattern.RK.AnnArity
		for j := 0; j < g.n; j++ {
			mark := em.st.Mark()
			if em.st.Match(&c.pattern, g.ids[j*w:(j+1)*w]) {
				if !em.st.SearchPlan(c.rest, &c.plan, jc, em.leaf) {
					em.st.Unwind(mark)
					if err := tk.Check(); err != nil {
						return nil, err
					}
				}
			}
			em.st.Unwind(mark)
		}
		out = append(out, em.out...)
	}
	return out, nil
}

// tupleGroup is a flat list of same-relation id tuples.
type tupleGroup struct {
	n   int
	ids []uint32
}

func groupTuples(db *database.Database, facts []core.Atom) map[core.RelKey]*tupleGroup {
	groups := make(map[core.RelKey]*tupleGroup)
	var scratch []uint32
	for _, f := range facts {
		ids, ok := db.FactIDs(scratch[:0], f)
		if !ok {
			continue
		}
		rk := f.Key()
		g := groups[rk]
		if g == nil {
			g = &tupleGroup{}
			groups[rk] = g
		}
		g.ids = append(g.ids, ids...)
		g.n++
	}
	return groups
}

// oneStepDerivable reports whether some body instantiation in db still
// derives f, by matching f against the head-pattern templates of its
// stratum and searching the positive body, with every negated literal
// checked against db.
func oneStepDerivable(f *core.Atom, items []citem, db *database.Database, jc *hom.JoinCache, tk *budget.Tracker) bool {
	var tuple []uint32
	rk := f.Key()
	for i := range items {
		c := &items[i]
		if c.pattern.RK != rk || !c.patternOK() {
			continue
		}
		ids, ok := db.FactIDs(tuple[:0], *f)
		if !ok {
			return false
		}
		tuple = ids
		st := hom.NewState(db, c.t.nvars)
		found := false
		polls := 0
		var scratch []uint32
		mark := st.Mark()
		if st.Match(&c.pattern, tuple) {
			st.SearchPlan(c.rest, &c.plan, jc, func() bool {
				if polls++; polls%pollInterval == 0 && tk.Canceled() {
					return false
				}
				for k := range c.neg {
					nids, ok := st.PackIDs(scratch[:0], &c.neg[k])
					if ok && db.SeenIDs(c.neg[k].RK, nids) {
						return true // this instantiation is blocked; keep searching
					}
				}
				found = true
				return false
			})
		}
		st.Unwind(mark)
		if found {
			return true
		}
	}
	return false
}

func sortedFacts(m map[string]core.Atom) []core.Atom {
	keys := sortedKeys(m)
	out := make([]core.Atom, 0, len(keys))
	for _, k := range keys {
		out = append(out, m[k])
	}
	return out
}

func sortedFactVals(m map[string]core.Atom) []core.Atom {
	if len(m) == 0 {
		return nil
	}
	return sortedFacts(m)
}

func sortedKeys(m map[string]core.Atom) []string {
	keys := make([]string, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	return keys
}
