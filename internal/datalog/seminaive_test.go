package datalog

import (
	"fmt"
	"math/rand"
	"testing"
	"time"

	"guardedrules/internal/core"
	"guardedrules/internal/database"
	"guardedrules/internal/parser"
)

// The native evaluator and the chase-based one must agree exactly.
func TestSemiNaiveAgreesWithChaseEval(t *testing.T) {
	cases := []struct{ theory, facts string }{
		{
			`E(X,Y) -> T(X,Y). E(X,Y), T(Y,Z) -> T(X,Z).`,
			`E(a,b). E(b,c). E(c,d). E(d,a).`,
		},
		{
			`Start(X) -> Reach(X).
			 Reach(X), E(X,Y) -> Reach(Y).
			 Node(X), not Reach(X) -> Unreach(X).`,
			`Start(a). E(a,b). E(c,d). Node(a). Node(b). Node(c). Node(d).`,
		},
		{
			`R(X,Y), S(Y,Z) -> R(X,Z). S(X,Y) -> R(X,Y).`,
			`S(a,b). S(b,c). S(c,a).`,
		},
		{
			`-> P(k). P(X) -> Q2(X).`,
			`Dummy(d).`,
		},
	}
	for _, c := range cases {
		th := parser.MustParseTheory(c.theory)
		d := database.FromAtoms(parser.MustParseFacts(c.facts))
		a, err := EvalSemiNaive(th, d)
		if err != nil {
			t.Fatal(err)
		}
		b, err := EvalViaChase(th, d)
		if err != nil {
			t.Fatal(err)
		}
		if ok, diff := database.SameGroundAtoms(a, b); !ok {
			t.Errorf("theory %q: %s", c.theory, diff)
		}
	}
}

// Randomized agreement on random rule sets and graphs.
func TestSemiNaiveAgreesRandomized(t *testing.T) {
	rng := rand.New(rand.NewSource(17))
	th := parser.MustParseTheory(`
		E(X,Y) -> T(X,Y).
		T(X,Y), T(Y,Z) -> T(X,Z).
		T(X,X) -> Cyclic(X).
		Node(X), not Cyclic(X) -> Acyclic(X).
	`)
	for trial := 0; trial < 20; trial++ {
		d := database.New()
		n := 3 + rng.Intn(4)
		for i := 0; i < n; i++ {
			d.Add(core.NewAtom("Node", core.Const(fmt.Sprintf("v%d", i))))
		}
		for e := 0; e < n+2; e++ {
			d.Add(core.NewAtom("E",
				core.Const(fmt.Sprintf("v%d", rng.Intn(n))),
				core.Const(fmt.Sprintf("v%d", rng.Intn(n)))))
		}
		a, err := EvalSemiNaive(th, d)
		if err != nil {
			t.Fatal(err)
		}
		b, err := EvalViaChase(th, d)
		if err != nil {
			t.Fatal(err)
		}
		if ok, diff := database.SameGroundAtoms(a, b); !ok {
			t.Fatalf("trial %d: %s", trial, diff)
		}
	}
}

// The native evaluator must not mutate the input database.
func TestSemiNaiveInputUntouched(t *testing.T) {
	th := parser.MustParseTheory(`E(X,Y) -> T(X,Y).`)
	d := database.FromAtoms(parser.MustParseFacts(`E(a,b).`))
	if _, err := EvalSemiNaive(th, d); err != nil {
		t.Fatal(err)
	}
	if d.Has(core.NewAtom("T", core.Const("a"), core.Const("b"))) {
		t.Error("input database was mutated")
	}
}

// Performance sanity: on a 64-node path, the native evaluator must beat
// the chase-based one by a wide margin (it skips the trigger memo).
func TestSemiNaiveFasterThanChaseEval(t *testing.T) {
	if testing.Short() {
		t.Skip("timing test")
	}
	th := parser.MustParseTheory(`
		E(X,Y) -> T(X,Y).
		T(X,Y), T(Y,Z) -> T(X,Z).
	`)
	d := database.New()
	for i := 0; i+1 < 48; i++ {
		d.Add(core.NewAtom("E", core.Const(fmt.Sprintf("v%d", i)), core.Const(fmt.Sprintf("v%d", i+1))))
	}
	t0 := time.Now()
	a, err := EvalSemiNaive(th, d)
	if err != nil {
		t.Fatal(err)
	}
	native := time.Since(t0)
	t1 := time.Now()
	b, err := EvalViaChase(th, d)
	if err != nil {
		t.Fatal(err)
	}
	viaChase := time.Since(t1)
	if ok, diff := database.SameGroundAtoms(a, b); !ok {
		t.Fatal(diff)
	}
	t.Logf("native=%v viaChase=%v", native, viaChase)
	if native > viaChase {
		t.Errorf("native evaluator slower than chase: %v vs %v", native, viaChase)
	}
}
