package datalog

import (
	"fmt"
	"math/rand"
	"testing"

	"guardedrules/internal/budget"
	"guardedrules/internal/core"
	"guardedrules/internal/database"
	"guardedrules/internal/gen"
	"guardedrules/internal/parser"
)

// diffHarness drives a Maintained handle and a shadow base set through a
// mutation sequence, asserting after every batch that the maintained
// database is byte-identical to a from-scratch evaluation of the shadow
// base.
type diffHarness struct {
	t      *testing.T
	p      *Program
	m      *Maintained
	opts   Options
	shadow map[string]core.Atom
}

func newDiffHarness(t *testing.T, thSrc string, base *database.Database, opts Options) *diffHarness {
	t.Helper()
	p, err := Compile(parser.MustParseTheory(thSrc))
	if err != nil {
		t.Fatalf("Compile: %v", err)
	}
	m, err := NewMaintained(p, base, opts)
	if err != nil {
		t.Fatalf("NewMaintained: %v", err)
	}
	h := &diffHarness{t: t, p: p, m: m, opts: opts, shadow: make(map[string]core.Atom)}
	for _, f := range base.UserFacts() {
		h.shadow[factKey(f)] = f
	}
	return h
}

// apply folds one batch into both the handle and the shadow base and
// checks byte-identity against the from-scratch fixpoint.
func (h *diffHarness) apply(add, retract []core.Atom) Delta {
	h.t.Helper()
	_, delta, err := h.m.Apply(add, retract, h.opts)
	if err != nil {
		h.t.Fatalf("Apply: %v", err)
	}
	staged := make(map[string]bool)
	for _, f := range retract {
		k := factKey(f)
		if _, ok := h.shadow[k]; ok {
			delete(h.shadow, k)
			staged[k] = true
		}
	}
	for _, f := range add {
		h.shadow[factKey(f)] = f
	}
	h.check()
	return delta
}

func (h *diffHarness) check() {
	h.t.Helper()
	base := database.New()
	for _, k := range sortedKeys(h.shadow) {
		base.Add(h.shadow[k])
	}
	want, err := h.p.Eval(base, h.opts)
	if err != nil {
		h.t.Fatalf("from-scratch Eval: %v", err)
	}
	if got := h.m.Current().String(); got != want.String() {
		h.t.Fatalf("maintained database diverged from from-scratch fixpoint\nmaintained:\n%s\nfrom-scratch:\n%s", got, want.String())
	}
}

const tcTheory = `E(X,Y) -> T(X,Y).
	T(X,Y), T(Y,Z) -> T(X,Z).`

// absTheory covers the A/B/C/R/S signature of the gen corpora with
// recursion across two strata and stratified negation on top.
const absTheory = `R(X,Y) -> P(X,Y).
	P(X,Y), R(Y,Z) -> P(X,Z).
	A(X) -> D(X).
	S(X,Y), D(X) -> P(X,Y).
	B(X), not P(X,X) -> Q(X).
	C(X), not Q(X) -> Z(X).`

// acdomTheory reads the maintained domain relation — the shape that
// makes refcount-only ACDom maintenance unsound under deletion — with a
// rule-introduced constant (s) so the cascade also covers constants that
// exist only through derived facts.
const acdomTheory = `ACDom(X) -> Dom(X).
	E(X,Y), Dom(Y) -> Reach(X,Y).
	A(X) -> W(X, s).`

func workerCounts() []int { return []int{1, 4} }

func TestIncrementalInsertResume(t *testing.T) {
	for _, w := range workerCounts() {
		t.Run(fmt.Sprintf("workers=%d", w), func(t *testing.T) {
			h := newDiffHarness(t, tcTheory, gen.Path(12), Options{Workers: w})
			// Append an edge: the closure grows along the path.
			h.apply(parser.MustParseFacts(`E(v11, w0).`), nil)
			// Close the cycle back to the start.
			h.apply(parser.MustParseFacts(`E(w0, v0).`), nil)
			// A disconnected island, then a bridge to it.
			h.apply(parser.MustParseFacts(`E(i0, i1). E(i1, i2).`), nil)
			h.apply(parser.MustParseFacts(`E(v5, i0).`), nil)
		})
	}
}

func TestIncrementalRetractDRed(t *testing.T) {
	for _, w := range workerCounts() {
		t.Run(fmt.Sprintf("workers=%d", w), func(t *testing.T) {
			h := newDiffHarness(t, tcTheory, gen.Path(10), Options{Workers: w})
			// Cut the path in the middle: the closure across the cut dies.
			h.apply(nil, parser.MustParseFacts(`E(v4, v5).`))
			// Reconnect differently, then remove an endpoint edge.
			h.apply(parser.MustParseFacts(`E(v4, v7).`), parser.MustParseFacts(`E(v8, v9).`))
			// Mixed batch touching both sides of the earlier cut.
			h.apply(parser.MustParseFacts(`E(v9, v0).`), parser.MustParseFacts(`E(v0, v1). E(v4, v7).`))
		})
	}
}

// TestIncrementalDiamondRetract pins the DRed over-deletion trap of the
// issue: retracting a base fact that is independently derivable must not
// lose the derived copy.
func TestIncrementalDiamondRetract(t *testing.T) {
	const diamond = `Src(X) -> L(X).
		Src(X) -> Rt(X).
		L(X) -> T(X).
		Rt(X) -> T(X).`
	for _, w := range workerCounts() {
		t.Run(fmt.Sprintf("workers=%d", w), func(t *testing.T) {
			base := database.FromAtoms(parser.MustParseFacts(`Src(a). T(a). L(b).`))
			h := newDiffHarness(t, diamond, base, Options{Workers: w})
			// T(a) is a base fact AND derivable via both diamond arms:
			// retracting the base copy must keep the derived one.
			h.apply(nil, parser.MustParseFacts(`T(a).`))
			if !h.m.Current().Has(parser.MustParseFacts(`T(a).`)[0]) {
				t.Fatal("retracting base T(a) lost the independently derived copy")
			}
			// Killing Src(a) removes both arms; now T(a) must die.
			h.apply(nil, parser.MustParseFacts(`Src(a).`))
			if h.m.Current().Has(parser.MustParseFacts(`T(a).`)[0]) {
				t.Fatal("T(a) survived with no derivation and no base copy")
			}
		})
	}
}

// TestIncrementalACDomSurvives pins the ACDom half of the diamond trap:
// a constant that stays alive via a different fact keeps its ACDom fact
// when one supporting occurrence is retracted, and loses it only when
// the last one dies.
func TestIncrementalACDomSurvives(t *testing.T) {
	const th = `ACDom(X), Mark(X) -> Active(X).`
	base := database.FromAtoms(parser.MustParseFacts(`R(a, b). S(b). Mark(b).`))
	h := newDiffHarness(t, th, base, Options{Workers: 1})
	acB := core.NewAtom(core.ACDom, core.Const("b"))
	h.apply(nil, parser.MustParseFacts(`R(a, b).`))
	if !h.m.Current().Has(acB) {
		t.Fatal("ACDom(b) died while S(b) still supports b")
	}
	h.apply(nil, parser.MustParseFacts(`S(b).`))
	if !h.m.Current().Has(acB) {
		t.Fatal("ACDom(b) died while Mark(b) still supports b")
	}
	d := h.apply(nil, parser.MustParseFacts(`Mark(b).`))
	if h.m.Current().Has(acB) {
		t.Fatal("ACDom(b) survived the death of its last supporting fact")
	}
	found := false
	for _, a := range d.Removed {
		if a.Relation == core.ACDom {
			found = true
		}
	}
	if !found {
		t.Fatalf("delta.Removed %v does not report the ACDom death", d.Removed)
	}
}

// TestIncrementalNegation exercises block (an added fact falsifies a
// previously satisfied negated literal) and unblock (a deletion
// re-enables a blocked firing) across strata.
func TestIncrementalNegation(t *testing.T) {
	const th = `E(X,Y) -> R(X,Y).
		R(X,Y), R(Y,Z) -> R(X,Z).
		Node(X), not R(X,X) -> Acyclic(X).
		Node(X), not Acyclic(X) -> Cyclic(X).`
	for _, w := range workerCounts() {
		t.Run(fmt.Sprintf("workers=%d", w), func(t *testing.T) {
			base := database.FromAtoms(parser.MustParseFacts(`Node(a). Node(b). Node(c). E(a, b). E(b, a).`))
			h := newDiffHarness(t, th, base, Options{Workers: w})
			// Block: closing c onto itself kills Acyclic(c), derives Cyclic(c).
			h.apply(parser.MustParseFacts(`E(c, c).`), nil)
			// Unblock: breaking the a↔b cycle revives Acyclic(a)/Acyclic(b).
			h.apply(nil, parser.MustParseFacts(`E(b, a).`))
			// Mixed batch: re-close one cycle, open another.
			h.apply(parser.MustParseFacts(`E(b, a).`), parser.MustParseFacts(`E(c, c).`))
		})
	}
}

// TestIncrementalDifferentialRandom runs randomized mutation sequences
// over the gen corpora — including AdversarialNames, whose constant
// names embed NUL bytes and separator characters — and checks
// byte-identity against from-scratch recomputation after every batch.
func TestIncrementalDifferentialRandom(t *testing.T) {
	corpora := []struct {
		name string
		db   *database.Database
	}{
		{"Path", gen.Path(10)},
		{"RandomGraph", gen.RandomGraph(8, 20, 11)},
		{"ABDatabase", gen.ABDatabase(18, 5)},
		{"AdversarialNames", gen.AdversarialNames(18, 7)},
	}
	theories := []struct {
		name string
		src  string
	}{
		{"tc", tcTheory},
		{"abs", absTheory},
		{"acdom", acdomTheory},
	}
	for _, th := range theories {
		for _, c := range corpora {
			for _, w := range workerCounts() {
				t.Run(fmt.Sprintf("%s/%s/workers=%d", th.name, c.name, w), func(t *testing.T) {
					rng := rand.New(rand.NewSource(42))
					h := newDiffHarness(t, th.src, c.db, Options{Workers: w})
					universe := append([]core.Atom(nil), c.db.UserFacts()...)
					// Extra candidate facts recombine the corpus constants.
					consts := c.db.Constants()
					if len(consts) > 1 {
						for i := 0; i < 8; i++ {
							x := consts[rng.Intn(len(consts))]
							y := consts[rng.Intn(len(consts))]
							universe = append(universe,
								core.NewAtom("E", x, y),
								core.NewAtom("R", x, y),
								core.NewAtom("A", x))
						}
					}
					for step := 0; step < 8; step++ {
						var add, del []core.Atom
						for i := 0; i < 1+rng.Intn(3); i++ {
							add = append(add, universe[rng.Intn(len(universe))])
						}
						for i := 0; i < rng.Intn(3); i++ {
							del = append(del, universe[rng.Intn(len(universe))])
						}
						h.apply(add, del)
					}
				})
			}
		}
	}
}

// TestIncrementalFailAtSweep drives one mixed batch through every
// checkpoint-injected failure point: each failing Apply must leave the
// handle at exactly the pre-batch materialization, and the eventual
// clean Apply must land on the from-scratch fixpoint.
func TestIncrementalFailAtSweep(t *testing.T) {
	add := parser.MustParseFacts(`E(v9, x0). E(x0, v0).`)
	del := parser.MustParseFacts(`E(v3, v4). E(v7, v8).`)
	for _, w := range workerCounts() {
		t.Run(fmt.Sprintf("workers=%d", w), func(t *testing.T) {
			h := newDiffHarness(t, tcTheory, gen.Path(10), Options{Workers: w})
			before := h.m.Current().String()
			beforeDB := h.m.Current()
			completed := false
			for fail := 1; fail <= 200; fail++ {
				opts := Options{Workers: w, Budget: budget.FailAt(fail)}
				_, _, err := h.m.Apply(add, del, opts)
				if err == nil {
					completed = true
					break
				}
				if !budget.IsBudget(err) {
					t.Fatalf("FailAt(%d): unexpected error kind: %v", fail, err)
				}
				if h.m.Current() != beforeDB {
					t.Fatalf("FailAt(%d): failed Apply swapped the materialization", fail)
				}
				if got := h.m.Current().String(); got != before {
					t.Fatalf("FailAt(%d): failed Apply mutated the pre-batch version", fail)
				}
			}
			if !completed {
				t.Fatal("batch never completed within 200 checkpoints")
			}
			// The successful injected run must equal the clean fixpoint.
			for _, f := range del {
				delete(h.shadow, factKey(f))
			}
			for _, f := range add {
				h.shadow[factKey(f)] = f
			}
			h.check()
		})
	}
}

// TestIncrementalBatchSemantics pins the staging rules: retract of an
// absent fact and add of a present fact are no-ops, retract-then-add of
// the same fact in one batch cancels.
func TestIncrementalBatchSemantics(t *testing.T) {
	h := newDiffHarness(t, tcTheory, gen.Path(5), Options{Workers: 1})
	e01 := parser.MustParseFacts(`E(v0, v1).`)
	// Retract + add the same base fact: net no-op.
	if d := h.apply(e01, e01); len(d.Added) != 0 || len(d.Removed) != 0 {
		t.Fatalf("cancel batch produced delta %+v", d)
	}
	// Add a present fact, retract an absent one: both ignored.
	if d := h.apply(e01, parser.MustParseFacts(`E(z, z).`)); len(d.Added) != 0 || len(d.Removed) != 0 {
		t.Fatalf("no-op batch produced delta %+v", d)
	}
	// Empty batch returns the same database.
	dbBefore := h.m.Current()
	res, _, err := h.m.Apply(nil, nil, h.opts)
	if err != nil || res != dbBefore {
		t.Fatalf("empty batch: res=%p want %p err=%v", res, dbBefore, err)
	}
	// Non-ground facts are rejected with the typed error.
	if _, _, err := h.m.Apply([]core.Atom{core.NewAtom("E", core.Var("X"), core.Const("a"))}, nil, h.opts); err == nil {
		t.Fatal("non-ground add accepted")
	}
}

// TestIncrementalDeltaReported checks the net delta of a batch: facts
// deleted and rederived do not surface, genuine changes do, and both
// sides are sorted deterministically.
func TestIncrementalDeltaReported(t *testing.T) {
	h := newDiffHarness(t, tcTheory, gen.Path(4), Options{Workers: 1})
	d := h.apply(parser.MustParseFacts(`E(v3, v0).`), nil)
	if len(d.Removed) != 0 {
		t.Fatalf("pure insertion reported removals: %v", d.Removed)
	}
	// Closing the cycle derives T pairs in both directions plus E(v3,v0).
	if len(d.Added) == 0 {
		t.Fatal("insertion reported an empty added delta")
	}
	d = h.apply(nil, parser.MustParseFacts(`E(v3, v0).`))
	if len(d.Added) != 0 {
		t.Fatalf("pure retraction reported additions: %v", d.Added)
	}
	if len(d.Removed) == 0 {
		t.Fatal("retraction reported an empty removed delta")
	}
}
