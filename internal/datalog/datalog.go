// Package datalog implements bottom-up evaluation of Datalog programs
// (existential-free theories) with stratified negation: stratification via
// the predicate dependency graph, and per-stratum semi-naive fixpoints.
package datalog

import (
	"fmt"
	"sort"

	"guardedrules/internal/budget"
	"guardedrules/internal/chase"
	"guardedrules/internal/core"
	"guardedrules/internal/database"
)

// Stratify partitions the rules into strata Σ1,...,Σn (Definition 22): a
// rule is placed in the stratum of its head relations, head levels are ≥
// body levels for positive dependencies and strictly greater for negative
// ones. It returns an error when no stratification exists (a negative
// cycle) or when a rule has existential variables.
// Existential rules are allowed (Section 8 stratifies existential
// theories); stratification only concerns relation dependencies.
func Stratify(th *core.Theory) ([][]*core.Rule, error) {
	// Collect relations and dependency edges.
	type edge struct {
		from, to string
		negative bool
	}
	var edges []edge
	rels := make(map[string]bool)
	readsACDom := false
	for _, r := range th.Rules {
		for _, h := range r.Head {
			rels[h.Relation] = true
			for _, l := range r.Body {
				rels[l.Atom.Relation] = true
				edges = append(edges, edge{l.Atom.Relation, h.Relation, l.Negated})
				if l.Atom.Relation == core.ACDom {
					readsACDom = true
				}
			}
		}
	}
	// The built-in ACDom relation is maintained by the database: deriving
	// a fact with a fresh constant implicitly derives an ACDom fact. Head
	// variables are bound to terms of existing facts (already in the
	// domain) and existential variables become nulls (never in ACDom), so
	// fresh domain constants can only come from constants written in rule
	// heads that no positive body atom mentions. Such heads carry an
	// implicit positive dependency edge to ACDom — without it, an
	// ACDom-reading rule could be stratified below a rule introducing a
	// new head constant and miss its derivations.
	if readsACDom {
		for _, r := range th.Rules {
			if !introducesConstants(r) {
				continue
			}
			rels[core.ACDom] = true
			for _, h := range r.Head {
				if h.Relation != core.ACDom {
					edges = append(edges, edge{h.Relation, core.ACDom, false})
				}
			}
		}
	}
	// Level assignment by iterated relaxation; n·|edges| passes suffice,
	// and a level exceeding the relation count certifies a negative cycle.
	level := make(map[string]int)
	n := len(rels)
	for changed, iter := true, 0; changed; iter++ {
		changed = false
		if iter > n*n+len(edges)+1 {
			return nil, fmt.Errorf("datalog: theory is not stratified (negation through recursion)")
		}
		for _, e := range edges {
			need := level[e.from]
			if e.negative {
				need++
			}
			if level[e.to] < need {
				if need > n {
					return nil, fmt.Errorf("datalog: theory is not stratified (negation through recursion involving %s)", e.to)
				}
				level[e.to] = need
				changed = true
			}
		}
	}
	// Group rules by the level of their head relations. Multi-head rules
	// must have all heads on one level; normalization guarantees this for
	// the paper's constructions, but mixed heads are handled by taking the
	// maximum (sound because levels only order evaluation).
	maxLevel := 0
	for _, l := range level {
		if l > maxLevel {
			maxLevel = l
		}
	}
	strata := make([][]*core.Rule, maxLevel+1)
	for _, r := range th.Rules {
		l := 0
		for _, h := range r.Head {
			if level[h.Relation] > l {
				l = level[h.Relation]
			}
		}
		strata[l] = append(strata[l], r)
	}
	// Drop empty strata.
	var out [][]*core.Rule
	for _, s := range strata {
		if len(s) > 0 {
			out = append(out, s)
		}
	}
	if len(out) == 0 {
		out = [][]*core.Rule{{}}
	}
	return out, nil
}

// introducesConstants reports whether firing the rule can put a constant
// into the active domain that was not there before: some head atom writes
// a constant that no positive body atom mentions (a match of the positive
// body witnesses that its constants already occur in facts).
func introducesConstants(r *core.Rule) bool {
	bodyConsts := make(core.TermSet)
	for _, l := range r.Body {
		if l.Negated {
			continue
		}
		for _, t := range l.Atom.Args {
			if t.IsConst() {
				bodyConsts.Add(t)
			}
		}
		for _, t := range l.Atom.Annotation {
			if t.IsConst() {
				bodyConsts.Add(t)
			}
		}
	}
	for _, h := range r.Head {
		for _, t := range h.Args {
			if t.IsConst() && !bodyConsts.Has(t) {
				return true
			}
		}
		for _, t := range h.Annotation {
			if t.IsConst() && !bodyConsts.Has(t) {
				return true
			}
		}
	}
	return false
}

// IsSemipositive reports whether every negated atom refers to a relation
// that never occurs in a head (negation on input relations only).
func IsSemipositive(th *core.Theory) bool {
	heads := make(map[string]bool)
	for _, r := range th.Rules {
		for _, h := range r.Head {
			heads[h.Relation] = true
		}
	}
	for _, r := range th.Rules {
		for _, l := range r.Body {
			if l.Negated && heads[l.Atom.Relation] {
				return false
			}
		}
	}
	return true
}

// Eval computes the stratified fixpoint of a Datalog program over the
// database, using the native semi-naive evaluator. Rules must have no
// existential variables.
func Eval(th *core.Theory, d database.Store) (*database.Database, error) {
	return EvalSemiNaive(th, d)
}

// EvalViaChase computes the same fixpoint through the generic chase
// engine. It exists for the ablation benchmarks: the chase keeps a
// trigger memo that Datalog does not need, so EvalSemiNaive dominates it.
func EvalViaChase(th *core.Theory, d database.Store) (*database.Database, error) {
	for _, r := range th.Rules {
		if !r.IsDatalog() {
			return nil, fmt.Errorf("datalog: rule %s has existential variables", r.Label)
		}
	}
	strata, err := Stratify(th)
	if err != nil {
		return nil, err
	}
	cur := d.Clone()
	for i, rules := range strata {
		res, err := chase.Run(core.NewTheory(rules...), cur, chase.Options{
			Variant:   chase.Restricted,
			MaxRounds: 1_000_000,
			MaxFacts:  50_000_000,
		})
		if err != nil {
			return nil, fmt.Errorf("datalog: stratum %d: %w", i, err)
		}
		if !res.Saturated {
			return nil, fmt.Errorf("datalog: stratum %d did not saturate", i)
		}
		cur = res.DB
	}
	return cur, nil
}

// Answers evaluates the query (Σ, Q) over D (Section 2): the set of
// constant tuples ~c with Q(~c) in the fixpoint. Tuples are returned in
// sorted textual order.
func Answers(th *core.Theory, q string, d database.Store) ([][]core.Term, error) {
	return AnswersOpts(th, q, d, Options{})
}

// AnswersOpts is Answers with explicit engine options. On budget
// exhaustion the answers of the partial fixpoint are returned (a sound
// under-approximation) alongside the typed error.
func AnswersOpts(th *core.Theory, q string, d database.Store, opts Options) ([][]core.Term, error) {
	fix, err := EvalSemiNaiveOpts(th, d, opts)
	if err != nil {
		if fix != nil && budget.IsBudget(err) {
			return CollectAnswers(fix, q), err
		}
		return nil, err
	}
	return CollectAnswers(fix, q), nil
}

// CollectAnswers extracts the all-constant Q-tuples of a database.
func CollectAnswers(d database.Store, q string) [][]core.Term {
	var out [][]core.Term
	for _, rk := range d.Relations() {
		if rk.Name != q {
			continue
		}
		for _, a := range d.Facts(rk) {
			allConst := true
			for _, t := range a.Args {
				if !t.IsConst() {
					allConst = false
					break
				}
			}
			if allConst {
				out = append(out, append([]core.Term(nil), a.Args...))
			}
		}
	}
	sort.Slice(out, func(i, j int) bool { return tupleLess(out[i], out[j]) })
	return out
}

func tupleLess(a, b []core.Term) bool {
	for i := range a {
		if i >= len(b) {
			return false
		}
		if a[i].Name != b[i].Name {
			return a[i].Name < b[i].Name
		}
	}
	return len(a) < len(b)
}

// SameAnswers reports whether two answer sets are equal, and a witness
// difference if not.
func SameAnswers(a, b [][]core.Term) (bool, string) {
	key := func(t []core.Term) string {
		s := ""
		for _, x := range t {
			s += x.String() + ","
		}
		return s
	}
	am := make(map[string]bool, len(a))
	for _, t := range a {
		am[key(t)] = true
	}
	bm := make(map[string]bool, len(b))
	for _, t := range b {
		bm[key(t)] = true
	}
	for k := range am {
		if !bm[k] {
			return false, "only in first: " + k
		}
	}
	for k := range bm {
		if !am[k] {
			return false, "only in second: " + k
		}
	}
	return true, ""
}
