package datalog

import (
	"context"
	"errors"
	"fmt"
	"runtime"
	"sort"
	"strings"
	"testing"
	"time"

	"guardedrules/internal/budget"
	"guardedrules/internal/database"
	"guardedrules/internal/parser"
)

// chainTheoryAndFacts builds transitive closure over an n-node chain: the
// fixpoint takes Θ(log n) rounds with Θ(n²) facts, enough work to keep
// all 8 workers busy mid-stratum.
func chainTheoryAndFacts(n int) (string, string) {
	th := `
		E(X,Y) -> T(X,Y).
		T(X,Y), T(Y,Z) -> T(X,Z).
	`
	var sb strings.Builder
	for i := 0; i < n; i++ {
		fmt.Fprintf(&sb, "E(c%d,c%d). ", i, i+1)
	}
	return th, sb.String()
}

func dump(d *database.Database) string {
	facts := d.UserFacts()
	lines := make([]string, len(facts))
	for i, a := range facts {
		lines[i] = a.String()
	}
	sort.Strings(lines)
	return strings.Join(lines, "\n")
}

// Satellite: the parallel worker pool must observe cancellation
// mid-stratum, drain deterministically, and leak zero goroutines; the
// non-canceled re-run must be byte-identical to an ungoverned run.
func TestWorkerPoolCancellationNoLeak(t *testing.T) {
	thSrc, factSrc := chainTheoryAndFacts(48)
	th := parser.MustParseTheory(thSrc)
	facts := parser.MustParseFacts(factSrc)

	full, err := EvalSemiNaiveOpts(th, database.FromAtoms(facts), Options{Workers: 8})
	if err != nil {
		t.Fatal(err)
	}
	want := dump(full)

	before := runtime.NumGoroutine()
	sawCancel := false
	for n := 1; ; n += 7 { // stride keeps the sweep fast; still hits many interleavings
		if n > 100_000 {
			t.Fatal("fault injection never ran to completion")
		}
		db, err := EvalSemiNaiveOpts(th, database.FromAtoms(facts),
			Options{Workers: 8, Budget: budget.FailAt(n)})
		if err == nil {
			if got := dump(db); got != want {
				t.Fatalf("n=%d: completed governed run differs from reference\ngot  %d facts\nwant %d facts",
					n, db.Len(), full.Len())
			}
			break
		}
		sawCancel = true
		if !errors.Is(err, budget.ErrCanceled) {
			t.Fatalf("n=%d: err = %v, want ErrCanceled", n, err)
		}
		if db == nil {
			t.Fatalf("n=%d: canceled eval must return the partial database", n)
		}
		// Partial soundness: completed rounds only, so every fact is in
		// the full fixpoint.
		for _, a := range db.UserFacts() {
			if !full.Has(a) {
				t.Fatalf("n=%d: partial contains %v, absent from fixpoint", n, a)
			}
		}
	}
	if !sawCancel {
		t.Fatal("sweep never observed a mid-run cancellation; injection broken")
	}

	// Workers must all have drained: allow the runtime a moment to retire
	// exiting goroutines, then require the count back at (or below) the
	// pre-test level.
	deadline := time.Now().Add(5 * time.Second)
	for {
		if runtime.NumGoroutine() <= before {
			break
		}
		if time.Now().After(deadline) {
			buf := make([]byte, 1<<16)
			t.Fatalf("goroutine leak: %d before, %d after\n%s",
				before, runtime.NumGoroutine(), buf[:runtime.Stack(buf, true)])
		}
		runtime.Gosched()
		time.Sleep(10 * time.Millisecond)
	}

	// Byte-identical non-canceled re-run.
	again, err := EvalSemiNaiveOpts(th, database.FromAtoms(facts), Options{Workers: 8})
	if err != nil {
		t.Fatal(err)
	}
	if dump(again) != want {
		t.Fatal("re-run after cancellation sweep differs from reference")
	}
}

func TestEvalBudgetCeilings(t *testing.T) {
	thSrc, factSrc := chainTheoryAndFacts(24)
	th := parser.MustParseTheory(thSrc)
	d := database.FromAtoms(parser.MustParseFacts(factSrc))

	db, err := EvalSemiNaiveOpts(th, d, Options{Budget: &budget.T{MaxRounds: 1}})
	if !errors.Is(err, budget.ErrRoundLimit) {
		t.Fatalf("MaxRounds err = %v, want ErrRoundLimit", err)
	}
	if db == nil || db.Len() < d.Len() {
		t.Fatal("round-limited eval must return the partial database")
	}

	db, err = EvalSemiNaiveOpts(th, d, Options{Budget: &budget.T{MaxFacts: 10}})
	if !errors.Is(err, budget.ErrFactLimit) {
		t.Fatalf("MaxFacts err = %v, want ErrFactLimit", err)
	}
	if db == nil {
		t.Fatal("fact-limited eval must return the partial database")
	}

	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := EvalSemiNaiveOpts(th, d, Options{Budget: &budget.T{Ctx: ctx}}); !errors.Is(err, context.Canceled) {
		t.Fatalf("canceled ctx err = %v, want context.Canceled match", err)
	}
}
