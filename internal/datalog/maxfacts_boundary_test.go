package datalog

import (
	"errors"
	"fmt"
	"strings"
	"testing"

	"guardedrules/internal/budget"
	"guardedrules/internal/database"
	"guardedrules/internal/parser"
)

// These tests pin the per-fact MaxFacts contract of the semi-naive merge
// (the chase analogue lives in chase/budget_boundary_test.go): the
// ceiling caps *derived* facts, it is checked before every single
// insertion — including the ACDom facts a head constant derives — and a
// fact whose cost would push past the ceiling is never added, so the
// partial database never overshoots, not even transiently inside a
// round.

// TestMaxFactsPerFactBoundary sweeps the ceiling across every possible
// value for a chain-closure fixpoint and checks, at each ceiling, that
// the run either completes exactly or stops with the typed error and a
// partial database that (a) never exceeds the ceiling and (b) is a
// subset of the full fixpoint.
func TestMaxFactsPerFactBoundary(t *testing.T) {
	thSrc, factSrc := chainTheoryAndFacts(12)
	th := parser.MustParseTheory(thSrc)
	facts := parser.MustParseFacts(factSrc)
	input := database.FromAtoms(facts).Len()

	full, err := EvalSemiNaiveOpts(th, database.FromAtoms(facts), Options{Workers: 4})
	if err != nil {
		t.Fatal(err)
	}
	derivedFull := full.Len() - input
	want := dump(full)

	for m := 1; m <= derivedFull+1; m++ {
		db, err := EvalSemiNaiveOpts(th, database.FromAtoms(facts),
			Options{Workers: 4, Budget: &budget.T{MaxFacts: m}})
		if db == nil {
			t.Fatalf("m=%d: no database returned", m)
		}
		derived := db.Len() - input
		if derived > m {
			t.Fatalf("m=%d: derived %d facts, ceiling exceeded", m, derived)
		}
		if m >= derivedFull {
			if err != nil {
				t.Fatalf("m=%d: fixpoint fits the ceiling, got %v", m, err)
			}
			if dump(db) != want {
				t.Fatalf("m=%d: completed run differs from reference", m)
			}
			continue
		}
		if !errors.Is(err, budget.ErrFactLimit) {
			t.Fatalf("m=%d: err = %v, want ErrFactLimit", m, err)
		}
		// Partial soundness: every derived fact is in the full fixpoint.
		for _, line := range strings.Split(dump(db), "\n") {
			if line == "" {
				continue
			}
			if !strings.Contains(want, line) {
				t.Fatalf("m=%d: partial database holds %s, not in the fixpoint", m, line)
			}
		}
	}
}

// TestMaxFactsACDomAtBoundary drives the boundary with a rule whose head
// introduces a fresh constant: the first application costs two facts —
// the head plus the derived ACDom fact — so a ceiling of 1 must admit
// nothing, a ceiling of 2 exactly the first application, and a ceiling
// equal to the total must complete without error.
func TestMaxFactsACDomAtBoundary(t *testing.T) {
	th := parser.MustParseTheory(`Q(X) -> R(X,d).`)
	facts := parser.MustParseFacts(`Q(a). Q(b).`)
	input := database.FromAtoms(facts).Len() // Q(a), Q(b), ACDom(a), ACDom(b)
	if input != 4 {
		t.Fatalf("input database has %d facts, want 4", input)
	}
	// Derivations, in merge order: R(a,d) [+ACDom(d), cost 2], R(b,d) [cost 1].
	cases := []struct {
		m, derived int
		complete   bool
	}{
		{m: 1, derived: 0},                 // the 2-fact application must stop short
		{m: 2, derived: 2},                 // first application lands exactly at the ceiling
		{m: 3, derived: 3, complete: true}, // everything fits, no error
	}
	for _, c := range cases {
		t.Run(fmt.Sprintf("m=%d", c.m), func(t *testing.T) {
			db, err := EvalSemiNaiveOpts(th, database.FromAtoms(facts),
				Options{Budget: &budget.T{MaxFacts: c.m}})
			if c.complete {
				if err != nil {
					t.Fatalf("err = %v, want clean completion at the exact ceiling", err)
				}
			} else if !errors.Is(err, budget.ErrFactLimit) {
				t.Fatalf("err = %v, want ErrFactLimit", err)
			}
			if got := db.Len() - input; got != c.derived {
				t.Fatalf("derived %d facts, want %d", got, c.derived)
			}
			ra := parser.MustParseFacts(`R(a,d).`)[0]
			acd := parser.MustParseFacts(`ACDom(d).`)[0]
			if c.derived >= 2 && (!db.Has(ra) || !db.Has(acd)) {
				t.Fatal("first application admitted but R(a,d)/ACDom(d) missing")
			}
			if c.derived == 0 && db.Has(acd) {
				t.Fatal("ACDom(d) leaked past a ceiling of 1")
			}
		})
	}
}

// TestMaxFactsBoundaryAllWorkerCounts re-runs the exact-boundary case in
// parallel: the merge is single-writer, so the admitted prefix — and
// therefore the partial database — must be identical at every worker
// count.
func TestMaxFactsBoundaryAllWorkerCounts(t *testing.T) {
	thSrc, factSrc := chainTheoryAndFacts(16)
	th := parser.MustParseTheory(thSrc)
	facts := parser.MustParseFacts(factSrc)
	for _, m := range []int{5, 17, 50} {
		var want string
		for _, workers := range []int{1, 2, 4, 8} {
			db, err := EvalSemiNaiveOpts(th, database.FromAtoms(facts),
				Options{Workers: workers, Budget: &budget.T{MaxFacts: m}})
			if !errors.Is(err, budget.ErrFactLimit) {
				t.Fatalf("m=%d workers=%d: err = %v, want ErrFactLimit", m, workers, err)
			}
			got := db.String()
			if workers == 1 {
				want = got
				continue
			}
			if got != want {
				t.Fatalf("m=%d workers=%d: partial database differs from sequential", m, workers)
			}
		}
	}
}
