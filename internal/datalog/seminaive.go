package datalog

import (
	"fmt"

	"guardedrules/internal/core"
	"guardedrules/internal/database"
	"guardedrules/internal/hom"
)

// evalStratum computes the fixpoint of one stratum with a native
// semi-naive loop: in every round, each rule is evaluated once per body
// position, requiring that position to match a fact derived in the
// previous round. Unlike the chase engine, no trigger memo is kept —
// Datalog inference is idempotent, so the delta discipline alone prevents
// rederivation storms.
//
// Negated literals are evaluated against the current database; callers
// guarantee stratification (the negated relations are fully computed).
func evalStratum(rules []*core.Rule, db *database.Database, maxRounds int) error {
	// Round 0: full evaluation.
	delta := make([]core.Atom, 0, db.Len())
	delta = append(delta, db.UserFacts()...)
	firstRound := true
	for round := 0; ; round++ {
		if round > maxRounds {
			return fmt.Errorf("datalog: stratum exceeded %d rounds", maxRounds)
		}
		var next []core.Atom
		emit := func(r *core.Rule) func(core.Subst) bool {
			return func(s core.Subst) bool {
				for _, l := range r.Body {
					if l.Negated && db.Has(s.ApplyAtom(l.Atom)) {
						return true
					}
				}
				for _, h := range r.Head {
					a := s.ApplyAtom(h)
					if db.Add(a) {
						next = append(next, a)
					}
				}
				return true
			}
		}
		deltaDB := database.FromAtoms(delta)
		for _, r := range rules {
			body := r.PositiveBody()
			if len(body) == 0 {
				if firstRound {
					emit(r)(core.Subst{})
				}
				continue
			}
			if firstRound {
				hom.ForEach(body, db, nil, emit(r))
				continue
			}
			for i, b := range body {
				rest := make([]core.Atom, 0, len(body)-1)
				rest = append(rest, body[:i]...)
				rest = append(rest, body[i+1:]...)
				e := emit(r)
				hom.ForEach([]core.Atom{b}, deltaDB, nil, func(s core.Subst) bool {
					hom.ForEach(rest, db, s, e)
					return true
				})
			}
		}
		firstRound = false
		if len(next) == 0 {
			return nil
		}
		delta = next
	}
}

// EvalSemiNaive computes the stratified fixpoint with the native
// semi-naive evaluator. It is the default engine behind Eval; the
// chase-based EvalViaChase remains available for the ablation benchmarks.
func EvalSemiNaive(th *core.Theory, d *database.Database) (*database.Database, error) {
	for _, r := range th.Rules {
		if !r.IsDatalog() {
			return nil, fmt.Errorf("datalog: rule %s has existential variables", r.Label)
		}
	}
	strata, err := Stratify(th)
	if err != nil {
		return nil, err
	}
	out := d.Clone()
	for i, rules := range strata {
		if err := evalStratum(rules, out, 1_000_000); err != nil {
			return nil, fmt.Errorf("datalog: stratum %d: %w", i, err)
		}
	}
	return out, nil
}
