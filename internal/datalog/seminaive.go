package datalog

import (
	"fmt"
	"runtime"

	"guardedrules/internal/budget"
	"guardedrules/internal/core"
	"guardedrules/internal/database"
	"guardedrules/internal/hom"
	"guardedrules/internal/par"
)

// Options configures the semi-naive evaluator.
type Options struct {
	// Workers is the number of goroutines evaluating join work items per
	// round; 0 means runtime.GOMAXPROCS(0), 1 forces sequential
	// evaluation. The derived fact set is identical for every worker
	// count: the database is read-only while workers run, and their
	// buffers are merged by a single writer in work-item order.
	Workers int
	// MaxRounds bounds the rounds per stratum (0 = 1,000,000).
	MaxRounds int
	// Budget, when non-nil, governs the run: cancellation and deadline are
	// observed mid-stratum (workers drain between units and every
	// pollInterval delta facts; a canceled round's buffers are not
	// merged), and its ceilings override MaxRounds and cap derived facts.
	// On exhaustion EvalSemiNaiveOpts returns the partial database —
	// every completed round's facts — with a typed *budget.Error.
	Budget *budget.T
}

func (o Options) workers() int {
	if o.Workers == 0 {
		return runtime.GOMAXPROCS(0)
	}
	if o.Workers < 1 {
		return 1
	}
	return o.Workers
}

func (o Options) maxRounds() int {
	if o.MaxRounds == 0 {
		return 1_000_000
	}
	return o.MaxRounds
}

// deltaItem is one semi-naive work item of a stratum: a rule together with
// the body position required to match the previous round's delta. The
// remaining body atoms are pre-ordered most-bound-first (greedy join
// reorder seeded with the delta pattern's variables), so the backtracking
// search starts from the most constrained atoms.
type deltaItem struct {
	rule    *core.Rule
	pattern core.Atom   // body atom that must match a delta fact
	rk      core.RelKey // pattern.Key(), precomputed
	rest    []core.Atom // remaining positive body, reordered
}

// reorderMostBound greedily orders atoms so that each next atom has the
// most already-bound variables (ties: fewest unbound variables, then
// original position). bound is the set of variables known to be bound
// before the first atom is matched; it is not modified.
func reorderMostBound(atoms []core.Atom, bound core.TermSet) []core.Atom {
	if len(atoms) < 2 {
		return atoms
	}
	b := make(core.TermSet, len(bound))
	b.AddAll(bound)
	remaining := append([]core.Atom(nil), atoms...)
	out := make([]core.Atom, 0, len(atoms))
	for len(remaining) > 0 {
		besti, bestBound, bestUnbound := 0, -1, 0
		for i, a := range remaining {
			nb, nu := 0, 0
			for v := range a.AllVars() {
				if b.Has(v) {
					nb++
				} else {
					nu++
				}
			}
			if nb > bestBound || nb == bestBound && nu < bestUnbound {
				besti, bestBound, bestUnbound = i, nb, nu
			}
		}
		pick := remaining[besti]
		out = append(out, pick)
		b.AddAll(pick.AllVars())
		remaining = append(remaining[:besti], remaining[besti+1:]...)
	}
	return out
}

// deltaItemsOf precomputes the per-round work items of a stratum, one per
// (rule, positive body position).
func deltaItemsOf(rules []*core.Rule) []deltaItem {
	var items []deltaItem
	for _, r := range rules {
		body := r.PositiveBody()
		for i, b := range body {
			rest := make([]core.Atom, 0, len(body)-1)
			rest = append(rest, body[:i]...)
			rest = append(rest, body[i+1:]...)
			items = append(items, deltaItem{
				rule:    r,
				pattern: b,
				rk:      b.Key(),
				rest:    reorderMostBound(rest, b.AllVars()),
			})
		}
	}
	return items
}

// cpos is a compiled flat atom position: a variable slot (slot >= 0) or a
// constant (slot < 0). term keeps the original term for materialization;
// id is the constant's interned id, re-resolved each round.
type cpos struct {
	slot int
	term core.Term
	id   uint32
}

// catom is an atom compiled to id space: its relation key plus one cpos
// per flat position (arguments, then annotation). ok reports whether all
// constants were interned at the last resolve; when false the atom can
// match no fact, and no instantiation of it can be in the database.
type catom struct {
	atom core.Atom
	rk   core.RelKey
	pos  []cpos
	ok   bool
}

// citem is a deltaItem compiled to id space. Variable slots are scoped
// per item; nvars sizes the binding arrays.
type citem struct {
	rule    *core.Rule
	pattern catom
	rest    []catom
	neg     []catom
	heads   []catom
	nvars   int
}

func compileAtom(a core.Atom, slots map[core.Term]int) catom {
	ca := catom{atom: a, rk: a.Key()}
	add := func(t core.Term) {
		p := cpos{slot: -1, term: t}
		if t.IsVar() {
			s, ok := slots[t]
			if !ok {
				s = len(slots)
				slots[t] = s
			}
			p.slot = s
		}
		ca.pos = append(ca.pos, p)
	}
	for _, t := range a.Args {
		add(t)
	}
	for _, t := range a.Annotation {
		add(t)
	}
	return ca
}

// compileItems compiles the stratum's work items to id space, so that the
// per-round delta joins run entirely on integer tuples: no term structs
// are hashed and no substitution maps are built in the inner loop.
func compileItems(items []deltaItem) []citem {
	out := make([]citem, len(items))
	for i := range items {
		it := &items[i]
		slots := make(map[core.Term]int)
		c := citem{rule: it.rule}
		c.pattern = compileAtom(it.pattern, slots)
		for _, a := range it.rest {
			c.rest = append(c.rest, compileAtom(a, slots))
		}
		for _, l := range it.rule.Body {
			if l.Negated {
				c.neg = append(c.neg, compileAtom(l.Atom, slots))
			}
		}
		for _, h := range it.rule.Head {
			c.heads = append(c.heads, compileAtom(h, slots))
		}
		c.nvars = len(slots)
		out[i] = c
	}
	return out
}

// resolve re-resolves the constants of every compiled atom against the
// frozen database. Called once per round by the single writer before
// workers start; workers then only read the compiled items.
func (c *citem) resolve(db *database.Database) {
	resolveAtom(&c.pattern, db)
	for i := range c.rest {
		resolveAtom(&c.rest[i], db)
	}
	for i := range c.neg {
		resolveAtom(&c.neg[i], db)
	}
	for i := range c.heads {
		resolveAtom(&c.heads[i], db)
	}
}

func resolveAtom(ca *catom, db *database.Database) {
	ca.ok = true
	for k := range ca.pos {
		p := &ca.pos[k]
		if p.slot >= 0 {
			continue
		}
		id, ok := db.TermID(p.term)
		if !ok {
			ca.ok = false
			return
		}
		p.id = id
	}
}

// joinState is the per-unit mutable state of the id-space join: variable
// bindings by slot, a bound mask, and the undo trail.
type joinState struct {
	db    *database.Database
	b     []uint32
	bd    []bool
	trail []int
}

// match unifies ca against a fact's id tuple, recording fresh bindings on
// the trail. On failure the caller unwinds to its trail mark.
func (st *joinState) match(ca *catom, ids []uint32) bool {
	for k := range ca.pos {
		p := &ca.pos[k]
		id := ids[k]
		if p.slot < 0 {
			if p.id != id {
				return false
			}
			continue
		}
		if st.bd[p.slot] {
			if st.b[p.slot] != id {
				return false
			}
			continue
		}
		st.bd[p.slot] = true
		st.b[p.slot] = id
		st.trail = append(st.trail, p.slot)
	}
	return true
}

func (st *joinState) unwind(mark int) {
	for _, s := range st.trail[mark:] {
		st.bd[s] = false
	}
	st.trail = st.trail[:mark]
}

// searchRest backtracks over the remaining body atoms, picking at each
// step the tightest index among the atom's bound positions (mirroring
// hom.bestIndex), and calls leaf for every full match.
func (st *joinState) searchRest(rest []catom, i int, leaf func()) {
	if i == len(rest) {
		leaf()
		return
	}
	ca := &rest[i]
	if !ca.ok {
		return
	}
	bestPos, bestCount := -1, 0
	var bestID uint32
	for k := range ca.pos {
		p := &ca.pos[k]
		var id uint32
		switch {
		case p.slot < 0:
			id = p.id
		case st.bd[p.slot]:
			id = st.b[p.slot]
		default:
			continue
		}
		n := st.db.CountWithID(ca.rk, k, id)
		if bestPos < 0 || n < bestCount {
			bestPos, bestID, bestCount = k, id, n
			if n == 0 {
				return
			}
		}
	}
	w := len(ca.pos)
	tuples := st.db.IDTuples(ca.rk)
	try := func(ix int) bool {
		mark := len(st.trail)
		if st.match(ca, tuples[ix*w:(ix+1)*w]) {
			st.searchRest(rest, i+1, leaf)
		}
		st.unwind(mark)
		return true
	}
	if bestPos >= 0 {
		st.db.ForEachIndexWithID(ca.rk, bestPos, bestID, try)
		return
	}
	for ix := 0; ix < len(st.db.Facts(ca.rk)); ix++ {
		try(ix)
	}
}

// appendID32 appends id to dst in the little-endian encoding of the
// database's packed keys, so keys built here compare against SeenKey.
func appendID32(dst []byte, id uint32) []byte {
	return append(dst, byte(id), byte(id>>8), byte(id>>16), byte(id>>24))
}

// packApplied appends the packed id key of ca's instantiation under the
// current bindings; ok is false when a constant is uninterned or a
// variable unbound — the instantiation then cannot be in the database.
func (st *joinState) packApplied(dst []byte, ca *catom) ([]byte, bool) {
	if !ca.ok {
		return dst, false
	}
	for k := range ca.pos {
		p := &ca.pos[k]
		switch {
		case p.slot < 0:
			dst = appendID32(dst, p.id)
		case st.bd[p.slot]:
			dst = appendID32(dst, st.b[p.slot])
		default:
			return dst, false
		}
	}
	return dst, true
}

// materialize builds the instantiated atom: bound slots become their
// interned terms; constants and unbound variables keep their original
// term (an unbound head variable yields a non-ground atom, which the
// merge rejects exactly as the substitution-based path did).
func (st *joinState) materialize(ca *catom) core.Atom {
	at := func(k int) core.Term {
		p := &ca.pos[k]
		if p.slot >= 0 && st.bd[p.slot] {
			return st.db.Term(st.b[p.slot])
		}
		return p.term
	}
	out := core.Atom{Relation: ca.atom.Relation}
	n := len(ca.atom.Args)
	out.Args = make([]core.Term, n)
	for k := 0; k < n; k++ {
		out.Args[k] = at(k)
	}
	if ca.atom.Annotation != nil {
		out.Annotation = make([]core.Term, len(ca.atom.Annotation))
		for k := range ca.atom.Annotation {
			out.Annotation[k] = at(n + k)
		}
	}
	return out
}

// pollInterval is how many join results a worker processes between
// cancellation polls inside a single unit, bounding the drain latency of
// a unit with a huge delta shard.
const pollInterval = 64

// seqThreshold is the round size (delta facts) below which a round runs
// sequentially: goroutine fan-out costs more than the joins it splits.
const seqThreshold = 128

// evalStratum computes the fixpoint of one stratum with a parallel
// semi-naive loop. Each round freezes the database, fans (rule ×
// delta-position × delta-shard) work items out over the worker pool —
// workers only read the database and buffer candidate head atoms — and
// then a single writer merges the buffers in work-item order. The merge
// uses AddNotify so that ACDom facts derived from fresh head constants
// enter the next delta; without this, ACDom-reading rules in the same
// stratum would miss constants introduced mid-fixpoint.
//
// Negated literals are evaluated against the current database; callers
// guarantee stratification (the negated relations are fully computed, and
// Stratify's implicit head→ACDom edges extend the guarantee to ACDom).
//
// Cancellation protocol: workers poll the tracker between units and every
// pollInterval delta facts inside a unit, then drain; runUnits always
// waits for the pool, so no goroutine outlives the call. The buffers of a
// canceled round are discarded, never merged — the database then holds
// exactly the completed rounds, a well-formed partial fixpoint.
func evalStratum(cs *compiledStratum, db *database.Database, opts Options, tk *budget.Tracker) error {
	rules := cs.rules
	workers := opts.workers()
	// Compile the shared (immutable) delta items into per-run id-space
	// programs: constant-id resolution is per-database, so the citems are
	// private to this evaluation while the templates stay shareable across
	// concurrent Program.Eval calls.
	items := compileItems(cs.items)
	maxRounds := budget.Cap(opts.Budget, func(b *budget.T) int { return b.MaxRounds }, opts.maxRounds())
	maxFacts := 0
	if opts.Budget != nil {
		maxFacts = opts.Budget.MaxFacts
	}

	// emitInto returns the callback buffering r's instantiated heads into
	// *out. db is frozen during a round, so its seen-set is a stable
	// prefilter; a unit-local seen-set on the same packed id keys
	// additionally drops within-unit duplicates (in recursive rules the
	// same new fact is typically re-derived many times per round), so
	// candidates are materialized only when genuinely unseen. Remaining
	// cross-unit duplicates are resolved by the single-writer merge.
	emitInto := func(r *core.Rule, out *[]core.Atom) func(core.Subst) bool {
		headRK := make([]core.RelKey, len(r.Head))
		local := make([]map[string]bool, len(r.Head))
		for i, h := range r.Head {
			headRK[i] = h.Key()
			local[i] = make(map[string]bool)
		}
		var scratch [64]byte
		polls := 0
		return func(s core.Subst) bool {
			if polls++; polls%pollInterval == 0 && tk.Canceled() {
				return false // abort enumeration; the round's buffers are dropped
			}
			for _, l := range r.Body {
				if l.Negated && db.HasApplied(l.Atom, s) {
					return true
				}
			}
			for i, h := range r.Head {
				key, ok := db.AppliedKey(scratch[:0], h, s)
				if !ok {
					// A head constant not yet interned: certainly new, but
					// with no id key to dedup on; the merge dedups it.
					*out = append(*out, s.ApplyAtom(h))
					continue
				}
				if db.SeenKey(headRK[i], key) || local[i][string(key)] {
					continue
				}
				local[i][string(key)] = true
				*out = append(*out, s.ApplyAtom(h))
			}
			return true
		}
	}

	// Round 0: full evaluation, one work unit per rule.
	bufs := make([][]core.Atom, len(rules))
	par.RunUnits(len(rules), workers, tk.Canceled, func(u int) {
		_ = tk.Check() // checkpoint: counts toward FailAt injection
		r := rules[u]
		body := cs.round0[u]
		emit := emitInto(r, &bufs[u])
		if len(body) == 0 {
			emit(core.Subst{})
			return
		}
		hom.ForEach(body, db, nil, emit)
	})

	for round := 0; ; round++ {
		tk.SetRounds(round)
		// Merge-point checkpoint: a canceled or expired run returns here
		// with the previous rounds' facts intact and this round's buffers
		// discarded.
		if err := tk.Check(); err != nil {
			return err
		}
		if round > maxRounds {
			return fmt.Errorf("datalog: stratum exceeded %d rounds: %w",
				maxRounds, tk.Exhausted(budget.ErrRoundLimit))
		}
		// Single-writer merge; newly inserted facts — including derived
		// ACDom facts — form the next delta.
		deltaCount := make(map[core.RelKey]int)
		ndelta := 0
		note := func(a core.Atom) { deltaCount[a.Key()]++; ndelta++ }
		for _, buf := range bufs {
			for _, a := range buf {
				if _, err := db.AddNotify(a, note); err != nil {
					return fmt.Errorf("datalog: merge: %w", err)
				}
			}
		}
		tk.AddFacts(ndelta)
		if ndelta == 0 {
			return nil
		}
		if maxFacts > 0 && tk.Usage().Facts >= maxFacts {
			return tk.Exhausted(budget.ErrFactLimit)
		}
		// Freeze the round: re-resolve compiled constants, then slice each
		// relation's delta — the newly merged tail of its id-tuple array.
		for i := range items {
			items[i].resolve(db)
		}
		type group struct {
			n, w int
			ids  []uint32
		}
		groups := make(map[core.RelKey]group, len(deltaCount))
		for rk, k := range deltaCount {
			w := rk.Arity + rk.AnnArity
			all := db.IDTuples(rk)
			groups[rk] = group{n: k, w: w, ids: all[len(all)-k*w:]}
		}
		// Fan out (item × shard) units; shards stripe each item's delta
		// facts so a round dominated by one rule still parallelizes.
		shards := workers
		if ndelta < seqThreshold {
			shards = 1
		}
		type unit struct {
			c     *citem
			shard int
		}
		var units []unit
		for i := range items {
			c := &items[i]
			g, found := groups[c.pattern.rk]
			if !found || !c.pattern.ok {
				continue
			}
			n := shards
			if g.n < n {
				n = g.n
			}
			for s := 0; s < n; s++ {
				units = append(units, unit{c, s})
			}
		}
		bufs = make([][]core.Atom, len(units))
		par.RunUnits(len(units), workers, tk.Canceled, func(u int) {
			_ = tk.Check() // checkpoint: counts toward FailAt injection
			c := units[u].c
			g := groups[c.pattern.rk]
			n := shards
			if g.n < n {
				n = g.n
			}
			st := &joinState{db: db, b: make([]uint32, c.nvars), bd: make([]bool, c.nvars)}
			out := &bufs[u]
			local := make([]map[string]bool, len(c.heads))
			for i := range local {
				local[i] = make(map[string]bool)
			}
			var scratch [64]byte
			leaf := func() {
				for i := range c.neg {
					key, ok := st.packApplied(scratch[:0], &c.neg[i])
					if ok && db.SeenKey(c.neg[i].rk, key) {
						return
					}
				}
				for i := range c.heads {
					h := &c.heads[i]
					key, ok := st.packApplied(scratch[:0], h)
					if !ok {
						// A head constant not yet interned (or an unbound
						// head variable): no id key to dedup on; buffer and
						// let the merge decide.
						*out = append(*out, st.materialize(h))
						continue
					}
					if db.SeenKey(h.rk, key) || local[i][string(key)] {
						continue
					}
					local[i][string(key)] = true
					*out = append(*out, st.materialize(h))
				}
			}
			polls := 0
			for j := units[u].shard; j < g.n; j += n {
				if polls++; polls%pollInterval == 0 && tk.Canceled() {
					return // drain: this unit's buffer will be discarded
				}
				mark := len(st.trail)
				if st.match(&c.pattern, g.ids[j*g.w:(j+1)*g.w]) {
					st.searchRest(c.rest, 0, leaf)
				}
				st.unwind(mark)
			}
		})
	}
}

// EvalSemiNaive computes the stratified fixpoint with the native
// semi-naive evaluator and default options (parallel across all CPUs). It
// is the default engine behind Eval; the chase-based EvalViaChase remains
// available for the ablation benchmarks.
func EvalSemiNaive(th *core.Theory, d *database.Database) (*database.Database, error) {
	return EvalSemiNaiveOpts(th, d, Options{})
}

// EvalSemiNaiveOpts is EvalSemiNaive with explicit options. On budget
// exhaustion (cancellation, deadline, or a ceiling of opts.Budget) it
// returns the partial database — all fully merged rounds — together with
// a typed error satisfying errors.Is against the budget sentinels.
func EvalSemiNaiveOpts(th *core.Theory, d *database.Database, opts Options) (*database.Database, error) {
	p, err := Compile(th)
	if err != nil {
		return nil, err
	}
	return p.Eval(d, opts)
}
